// Build throughput: parallel intra-shard HNSW construction (ROADMAP item
// "parallel intra-shard graph build", compounding the Fig. 10 cross-shard
// speedup).
//
// Sweeps build threads {1, 2, 4, 8} over one shard-sized corpus (default
// 50k SIFT-like vectors; PPANNS_BENCH_N rescales) and reports, per point,
// build wall time, vectors/sec, speedup vs the sequential AddBatch baseline,
// and post-build recall@10 against brute-force ground truth side by side
// with the sequential graph's recall. The graph is what the PP-ANNS scheme
// builds over SAP ciphertexts; the builder's cost and quality are
// data-agnostic, so the sweep runs on the raw vectors.
//
// Every point is also emitted as one JSON line into
// BENCH_build_throughput.json (override with PPANNS_BENCH_JSON) so the build
// trajectory is machine-readable across PRs.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "eval/metrics.h"
#include "index/hnsw.h"

namespace {

using namespace ppanns;
using namespace ppanns::bench;

double Recall(const HnswIndex& index, const Dataset& ds, std::size_t k,
              std::size_t ef) {
  std::vector<std::vector<VectorId>> results;
  results.reserve(ds.queries.size());
  for (std::size_t i = 0; i < ds.queries.size(); ++i) {
    std::vector<VectorId> ids;
    for (const Neighbor& r : index.Search(ds.queries.row(i), k, ef)) {
      ids.push_back(r.id);
    }
    results.push_back(std::move(ids));
  }
  return MeanRecallAtK(results, ds.ground_truth, k);
}

}  // namespace

int main() {
  PrintBanner("Build throughput: parallel intra-shard HNSW construction",
              "beyond the paper — ROADMAP parallel graph build (cf. Fig. 10)");

  const std::size_t k = 10;
  const std::size_t n = EnvSize("PPANNS_BENCH_N", 50'000);
  const std::size_t ef = 128;
  Dataset ds = MakeOrLoadDataset(SyntheticKind::kSiftLike, n, DefaultQ(), k,
                                 /*seed=*/909);
  const HnswParams params = DefaultHnsw(909);
  std::FILE* json = OpenBenchJson("build_throughput");

  // Sequential baseline: the classic one-at-a-time AddBatch build.
  Timer seq_timer;
  HnswIndex sequential(ds.base.dim(), params);
  sequential.AddBatch(ds.base);
  const double seq_seconds = seq_timer.ElapsedSeconds();
  const double seq_recall = Recall(sequential, ds, k, ef);
  std::printf("corpus: %zu x %zu (m=%zu efc=%zu), sequential build %.2fs "
              "(%.0f vec/s), recall@%zu %.4f\n\n",
              ds.base.size(), ds.base.dim(), params.m, params.ef_construction,
              seq_seconds, ds.base.size() / seq_seconds, k, seq_recall);

  std::printf("%-8s %10s %12s %10s %10s %12s\n", "threads", "build(s)",
              "vec/s", "speedup", "recall@10", "d(recall)");
  for (std::size_t threads : {1, 2, 4, 8}) {
    Timer timer;
    HnswIndex index(ds.base.dim(), params);
    index.AddBatchParallel(ds.base, &ThreadPool::Global(), threads);
    const double seconds = timer.ElapsedSeconds();
    const double recall = Recall(index, ds, k, ef);
    std::printf("%-8zu %10.2f %12.0f %9.2fx %10.4f %+12.4f\n", threads,
                seconds, ds.base.size() / seconds, seq_seconds / seconds,
                recall, recall - seq_recall);
    if (json != nullptr) {
      std::fprintf(json,
                   "{\"bench\":\"build_throughput\",\"n\":%zu,\"dim\":%zu,"
                   "\"m\":%zu,\"ef_construction\":%zu,\"threads\":%zu,"
                   "\"build_seconds\":%.4f,\"vectors_per_sec\":%.1f,"
                   "\"speedup_vs_sequential\":%.3f,"
                   "\"sequential_build_seconds\":%.4f,\"recall_at_10\":%.4f,"
                   "\"sequential_recall_at_10\":%.4f,\"recall_delta\":%.4f}\n",
                   ds.base.size(), ds.base.dim(), params.m,
                   params.ef_construction, threads, seconds,
                   ds.base.size() / seconds, seq_seconds / seconds,
                   seq_seconds, recall, seq_recall, recall - seq_recall);
      std::fflush(json);
    }
  }
  std::printf("\nexpected shape: vectors/sec scales with threads on multicore "
              "hardware (>= 2x at 4 threads on a 50k shard) while recall@10 "
              "stays within 1%% of the sequential graph.\n");
  if (json != nullptr) std::fclose(json);
  return 0;
}
