// Reproduces the paper's HE exclusion (Section III: "we exclude HE-based
// methods due to their significant computational overhead [44]"): one secure
// distance comparison under Paillier HE vs AME vs DCE vs plaintext, at
// SIFT-like dimensionality. Quantifies the orders-of-magnitude gap that
// justifies dropping HE from the paper's evaluation figures.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "crypto/ame.h"
#include "crypto/dce.h"
#include "crypto/paillier.h"

int main() {
  using namespace ppanns;
  using namespace ppanns::bench;

  PrintBanner("Section III: why HE-based SDC is excluded",
              "per-comparison cost: plaintext vs DCE vs AME vs Paillier-HE");

  const std::size_t d = EnvSize("PPANNS_BENCH_HE_DIM", 128);
  const std::size_t he_bits = EnvSize("PPANNS_BENCH_HE_BITS", 512);
  Rng rng(1212);

  // Integer-quantized SIFT-like vectors.
  std::vector<std::int64_t> o(d), p(d), q(d);
  std::vector<float> of(d), pf(d), qf(d);
  for (std::size_t i = 0; i < d; ++i) {
    o[i] = rng.UniformInt(0, 255);
    p[i] = rng.UniformInt(0, 255);
    q[i] = rng.UniformInt(0, 255);
    of[i] = static_cast<float>(o[i]);
    pf[i] = static_cast<float>(p[i]);
    qf[i] = static_cast<float>(q[i]);
  }

  std::printf("dimension d = %zu, Paillier modulus = %zu bits\n\n", d, he_bits);
  std::printf("%-22s %16s %12s\n", "method", "one SDC (us)", "vs plaintext");

  // Plaintext: two distance computations + compare.
  double plain_us;
  {
    const int reps = 20000;
    Timer t;
    volatile float sink = 0;
    for (int i = 0; i < reps; ++i) {
      sink = sink + (SquaredL2(of.data(), qf.data(), d) <
                     SquaredL2(pf.data(), qf.data(), d));
    }
    plain_us = t.ElapsedMicros() / reps;
    std::printf("%-22s %16.3f %11.0fx\n", "plaintext", plain_us, 1.0);
  }

  // DCE.
  {
    auto dce = DceScheme::KeyGen(d, rng, 1500.0);
    PPANNS_CHECK(dce.ok());
    const DceCiphertext co = dce->Encrypt(of.data(), rng);
    const DceCiphertext cp = dce->Encrypt(pf.data(), rng);
    const DceTrapdoor tq = dce->GenTrapdoor(qf.data(), rng);
    const int reps = 20000;
    Timer t;
    volatile double sink = 0;
    for (int i = 0; i < reps; ++i) {
      sink = sink + DceScheme::DistanceComp(co, cp, tq);
    }
    const double us = t.ElapsedMicros() / reps;
    std::printf("%-22s %16.3f %11.0fx\n", "DCE (ours)", us, us / plain_us);
  }

  // AME.
  {
    auto ame = AmeScheme::KeyGen(d, rng, 1500.0);
    PPANNS_CHECK(ame.ok());
    const AmeCiphertext co = ame->Encrypt(of.data(), rng);
    const AmeCiphertext cp = ame->Encrypt(pf.data(), rng);
    const AmeTrapdoor tq = ame->GenTrapdoor(qf.data(), rng);
    const int reps = 50;
    Timer t;
    volatile double sink = 0;
    for (int i = 0; i < reps; ++i) {
      sink = sink + AmeScheme::DistanceComp(co, cp, tq);
    }
    const double us = t.ElapsedMicros() / reps;
    std::printf("%-22s %16.3f %11.0fx\n", "AME", us, us / plain_us);
  }

  // Paillier HE: one comparison = two encrypted distances (2d scalar-mul
  // modexps) + two decryptions at the user.
  {
    auto he = Paillier::KeyGen(he_bits, rng);
    PPANNS_CHECK(he.ok());
    HeDistanceProtocol protocol(*he);
    const auto eo = protocol.EncryptVector(o, rng);
    const auto ep = protocol.EncryptVector(p, rng);

    const int reps = 3;
    Timer t;
    volatile std::int64_t sink = 0;
    for (int i = 0; i < reps; ++i) {
      const auto da = protocol.DistanceCiphertext(eo, q, rng);
      const auto db = protocol.DistanceCiphertext(ep, q, rng);
      sink = sink + (protocol.DecryptDistance(da) < protocol.DecryptDistance(db));
    }
    const double us = t.ElapsedMicros() / reps;
    std::printf("%-22s %16.3f %11.0fx\n", "Paillier-HE", us, us / plain_us);
  }

  std::printf("\nexpected shape (paper): HE is orders of magnitude beyond "
              "even AME — hence its exclusion from Figs. 6-9. DCE stays "
              "within a small factor of plaintext.\n");
  return 0;
}
