// Fig. 11 (ours, beyond the paper): tail latency of the serving tier with a
// straggling shard, and what hedged replication buys back.
//
// Setup: a sharded, replicated package (default 4 shards x 2 replicas) with
// an injected fixed delay (default 50 ms) on one replica of one shard — the
// classic straggler. Three serving modes run the same query stream:
//
//   sync          — the barrier gather (ShardedCloudServer::Search): every
//                   query waits for the slow replica, so p50 == the injected
//                   delay.
//   async-hedged  — SearchAsync with a hedging deadline: the straggling
//                   shard misses the deadline, the work is re-dispatched to
//                   its healthy replica, the first answer wins and the loser
//                   aborts mid-scan through the cancellation token in its
//                   SearchContext. p99 should sit near hedge_ms + healthy
//                   latency, far below the injected delay.
//   async-prescan — the same hedged run with mid-scan cancellation disabled
//                   (AsyncOptions::mid_scan_cancel = false): a loser checks
//                   the claim only when its work item starts, like a remote
//                   server that cannot be recalled, and then runs its full
//                   delay + scan. Identical winner ids and recall; the
//                   wasted_nodes / wasted_scans delta against async-hedged
//                   is what mid-scan abort buys back in pool capacity.
//   failover      — the slow replica is marked down instead of slow: the
//                   scatter never touches it. The floor the hedge aims for,
//                   and a check that failover ids match the healthy run.
//
// A healthy baseline (no delay) calibrates. Recall is identical across all
// modes by construction (replicas are byte-identical; the merge spends the
// same candidate budget) — printed to prove it, pinned by
// tests/core/async_serving_test.cc.
//
// Every measured point is emitted as one JSON line into
// BENCH_fig11_tail_latency.json (override with PPANNS_BENCH_JSON) so the
// tail-latency trajectory is machine-readable across PRs. The wasted-work
// fields (wasted_nodes, wasted_scans: loser work observed by the cluster's
// cumulative cancellation counters across the mode's run, plus
// nodes_visited: winner work summed over queries) make the mid-scan-abort
// win part of the BENCH_* trajectory.
//
// Knobs: PPANNS_BENCH_N / PPANNS_BENCH_Q (bench_util), PPANNS_BENCH_DELAY_MS
// (injected straggler delay), PPANNS_BENCH_HEDGE_MS (hedging deadline).

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "core/ppanns_service.h"
#include "core/sharded_cloud_server.h"
#include "eval/metrics.h"

namespace {

using namespace ppanns;
using namespace ppanns::bench;

struct TailPoint {
  std::string mode;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double mean_ms = 0.0;
  double recall = 0.0;
  std::size_t hedged = 0;
  std::size_t partial = 0;
  std::size_t nodes_visited = 0;  ///< winner scans, summed over queries
  std::size_t wasted_nodes = 0;   ///< loser scans (cumulative-counter delta)
  std::size_t wasted_scans = 0;
  std::vector<std::vector<VectorId>> ids;  ///< for winner-id equality checks
};

/// Runs the query stream one-at-a-time (per-query latency is the object of
/// study; batching would hide the straggler behind other queries' work).
/// Wasted loser work is attributed by deltas of the cluster's cumulative
/// cancellation counters (which drain in-flight losers before reading, so a
/// mode never bleeds into the next).
TailPoint MeasureMode(const std::string& mode, const PpannsService& service,
                      const std::vector<QueryToken>& tokens,
                      const Dataset& ds, std::size_t k,
                      const SearchSettings& settings, bool use_async,
                      const AsyncOptions& async) {
  TailPoint point;
  point.mode = mode;
  const ShardedCloudServer& cluster = service.sharded_server();
  const std::size_t nodes_before = cluster.CancelledWorkNodes();
  const std::size_t scans_before = cluster.CancelledScans();
  std::vector<double> latencies_ms;
  latencies_ms.reserve(tokens.size());
  point.ids.reserve(tokens.size());
  double total_ms = 0.0;
  for (const QueryToken& token : tokens) {
    Timer t;
    Result<SearchResult> r = use_async
                                 ? service.SearchAsync(token, k, settings, async)
                                 : service.Search(token, k, settings);
    const double ms = t.ElapsedMillis();
    PPANNS_CHECK(r.ok());
    latencies_ms.push_back(ms);
    total_ms += ms;
    point.hedged += r->counters.hedged_requests;
    point.partial += r->partial ? 1 : 0;
    point.nodes_visited += r->counters.nodes_visited;
    point.ids.push_back(r->ids);
  }
  point.wasted_nodes = cluster.CancelledWorkNodes() - nodes_before;
  point.wasted_scans = cluster.CancelledScans() - scans_before;
  point.p50_ms = Percentile(latencies_ms, 50.0);
  point.p99_ms = Percentile(latencies_ms, 99.0);
  point.mean_ms = total_ms / static_cast<double>(tokens.size());
  point.recall = MeanRecallAtK(point.ids, ds.ground_truth, k);
  return point;
}

void EmitJson(std::FILE* json, const TailPoint& p, std::size_t n,
              std::size_t num_shards, std::size_t num_replicas,
              double delay_ms, double hedge_ms, std::size_t k) {
  if (json == nullptr) return;
  std::fprintf(json,
               "{\"bench\":\"fig11_tail_latency\",\"mode\":\"%s\","
               "\"n\":%zu,\"num_shards\":%zu,\"num_replicas\":%zu,"
               "\"delay_ms\":%.1f,\"hedge_ms\":%.1f,\"k\":%zu,"
               "\"p50_ms\":%.3f,\"p99_ms\":%.3f,\"mean_ms\":%.3f,"
               "\"recall_at_k\":%.4f,\"hedged_requests\":%zu,"
               "\"partial_results\":%zu,\"nodes_visited\":%zu,"
               "\"wasted_nodes\":%zu,\"wasted_scans\":%zu}\n",
               p.mode.c_str(), n, num_shards, num_replicas, delay_ms, hedge_ms,
               k, p.p50_ms, p.p99_ms, p.mean_ms, p.recall, p.hedged,
               p.partial, p.nodes_visited, p.wasted_nodes, p.wasted_scans);
  std::fflush(json);
}

}  // namespace

int main() {
  PrintBanner("Fig. 11: tail latency with a straggling shard replica",
              "async scatter-gather + per-shard replication (beyond the "
              "paper; ROADMAP serving north-star)");

  const std::size_t k = 10;
  const std::size_t n = EnvSize("PPANNS_BENCH_N", 10'000);
  const std::size_t nq = DefaultQ();
  const std::size_t num_shards = 4, num_replicas = 2;
  const double delay_ms =
      static_cast<double>(EnvSize("PPANNS_BENCH_DELAY_MS", 50));
  const double hedge_ms =
      static_cast<double>(EnvSize("PPANNS_BENCH_HEDGE_MS", 5));
  const SearchSettings settings{.k_prime = 8 * k, .ef_search = 128};
  std::FILE* json = OpenBenchJson("fig11_tail_latency");

  Dataset dataset =
      MakeOrLoadDataset(SyntheticKind::kSiftLike, n, nq, k, /*seed=*/808);
  Rng stat_rng(808 + 17);
  const DatasetStats stats = ComputeStats(dataset.base, stat_rng);

  PpannsParams params;
  params.dcpe_beta = ChooseBeta(dataset, k, 0.5);
  params.dce_scale_hint = std::max(stats.mean_norm, 1e-3);
  params.hnsw = DefaultHnsw(808);
  params.num_shards = num_shards;
  params.num_replicas = num_replicas;
  params.seed = 808;

  auto owner = DataOwner::Create(dataset.base.dim(), params);
  PPANNS_CHECK(owner.ok());
  PpannsService service{
      ShardedCloudServer(owner->EncryptAndIndexSharded(dataset.base))};
  QueryClient client(owner->ShareKeys(), 808 + 23);
  const std::vector<QueryToken> tokens = EncryptQueries(client, dataset.queries);

  const AsyncOptions async{.hedge_ms = hedge_ms};
  ShardedCloudServer& cluster = service.sharded_server_mutable();

  std::printf("cluster: %zu shards x %zu replicas, n=%zu, %zu queries; "
              "straggler: shard 0 replica 0 +%.0f ms; hedge %.1f ms\n\n",
              num_shards, num_replicas, n, tokens.size(), delay_ms, hedge_ms);
  std::printf("%-22s %9s %9s %9s %7s %7s %8s %10s %8s\n", "mode", "p50(ms)",
              "p99(ms)", "mean(ms)", "recall", "hedged", "partial",
              "wasted-nd", "w-scans");

  auto run = [&](const std::string& mode, bool use_async,
                 const AsyncOptions& opts) {
    TailPoint p = MeasureMode(mode, service, tokens, dataset, k, settings,
                              use_async, opts);
    std::printf("%-22s %9.2f %9.2f %9.2f %7.3f %7zu %8zu %10zu %8zu\n",
                p.mode.c_str(), p.p50_ms, p.p99_ms, p.mean_ms, p.recall,
                p.hedged, p.partial, p.wasted_nodes, p.wasted_scans);
    EmitJson(json, p, n, num_shards, num_replicas, delay_ms, hedge_ms, k);
    return p;
  };

  // Healthy cluster: both paths at their floor.
  run("healthy-sync", false, async);
  run("healthy-async", true, async);

  // Inject the straggler: one replica of shard 0 answers late. Mid-scan
  // cancellation (the default) against the pre-scan-only baseline: same
  // winner ids, same recall — the delta is the losers' wasted work.
  cluster.SetReplicaDelayMs(0, 0, static_cast<int>(delay_ms));
  run("straggler-sync", false, async);
  const TailPoint midscan = run("straggler-async", true, async);
  AsyncOptions prescan = async;
  prescan.mid_scan_cancel = false;
  const TailPoint prescan_point =
      run("straggler-async-prescan", true, prescan);
  PPANNS_CHECK(midscan.ids == prescan_point.ids);  // identical winner ids

  // Replica loss instead of slowness: the scatter never touches the dead
  // replica, so this is the latency floor hedging converges to.
  cluster.SetReplicaDelayMs(0, 0, 0);
  cluster.SetReplicaDown(0, 0, true);
  run("failover", false, async);
  cluster.SetReplicaDown(0, 0, false);

  std::printf(
      "\nexpected shape: straggler-sync p50/p99 ~= %.0f ms (every query waits "
      "for the slow replica); straggler-async p99 well below it (the hedge "
      "re-dispatches after %.1f ms and the healthy replica wins); "
      "straggler-async wasted_nodes well below straggler-async-prescan at "
      "identical winner ids (the loser aborts mid-scan instead of finishing "
      "a scan nobody reads); failover matches the healthy floor; recall "
      "identical everywhere (replicas are byte-identical, the merge budget "
      "is unchanged).\n",
      delay_ms, hedge_ms);
  if (json != nullptr) std::fclose(json);
  return 0;
}
