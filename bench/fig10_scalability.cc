// Fig. 10: scalability — per-query latency at fixed accuracy as the
// database grows. The paper samples Sift1B/Deep1B at 25/50/75/100M; we
// sweep four sizes in the same 1:2:3:4 ratio (default 20k..80k, paper scale
// via PPANNS_BENCH_FULL / PPANNS_BENCH_N). The claim under reproduction:
// latency grows sublinearly in n.

#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace ppanns;
  using namespace ppanns::bench;

  PrintBanner("Fig. 10: scalability with database size",
              "Figure 10 (Section VII-C), SIFT-like and Deep-like samples");

  const std::size_t k = 10;
  const std::size_t base = EnvSize("PPANNS_BENCH_N", FullScale() ? 25'000'000 : 10'000);
  const std::vector<std::size_t> sizes = {base, 2 * base, 3 * base, 4 * base};

  std::printf("%s\n", FormatHeader().c_str());
  for (SyntheticKind kind : {SyntheticKind::kSiftLike, SyntheticKind::kDeepLike}) {
    double first_latency = 0.0;
    for (std::size_t n : sizes) {
      BenchSystem sys = BuildSystem(kind, n, DefaultQ(), k, /*seed=*/707);
      SearchSettings settings{.k_prime = 16 * k, .ef_search = 200};
      OperatingPoint p = MeasureServer(*sys.server, sys.tokens,
                                       sys.dataset.ground_truth, k, settings);
      char param[32];
      std::snprintf(param, sizeof(param), "n=%zu", n);
      std::printf("%s\n", FormatRow(sys.dataset.name, param, p).c_str());
      if (first_latency == 0.0) first_latency = p.mean_latency_ms;
    }
    std::printf("\n");
  }
  std::printf("expected shape (paper): latency grows sublinearly — 4x data "
              "should cost well under 4x latency (graph search is ~log n).\n");
  return 0;
}
