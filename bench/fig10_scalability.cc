// Fig. 10 + sharding: scalability with database size and shard count.
//
// Part 1 reproduces the paper's claim (Section VII-C): per-query latency at
// fixed accuracy grows sublinearly as the database grows (the paper samples
// Sift1B/Deep1B at 25/50/75/100M; we sweep four sizes in the same 1:2:3:4
// ratio, default 10k..40k, paper scale via PPANNS_BENCH_FULL /
// PPANNS_BENCH_N).
//
// Part 2 goes beyond the paper along the ROADMAP north-star: it sweeps
// num_shards in {1, 2, 4, 8} at the smallest and largest size and measures
// (a) build time — per-shard graph construction parallelizes across cores;
// the shards=1 baseline (EncryptAndIndexParallel) builds its single graph
// sequentially with the same parallel DCE pass, so the speedup column
// isolates the graph-build parallelism — and (b) batched search throughput
// and recall through the PpannsService scatter-gather path at the same
// total candidate budget.
//
// Every measured point is also emitted as one JSON line into
// BENCH_fig10_scalability.json (override with PPANNS_BENCH_JSON) so the
// perf trajectory is machine-readable across PRs.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "core/ppanns_service.h"
#include "core/sharded_cloud_server.h"
#include "eval/metrics.h"

namespace {

using namespace ppanns;
using namespace ppanns::bench;

struct ShardPoint {
  std::size_t n = 0;
  std::size_t num_shards = 0;
  double build_seconds = 0.0;
  double batch_wall_seconds = 0.0;
  double batch_qps = 0.0;
  double recall = 0.0;
};

/// Builds the stack at `num_shards` (1 = the paper's sequential single-index
/// build) and measures build time plus one batched scatter-gather pass.
ShardPoint MeasureSharded(const Dataset& dataset, double beta, double scale,
                          std::size_t num_shards, std::size_t k,
                          const SearchSettings& settings, std::uint64_t seed) {
  PpannsParams params;
  params.dcpe_beta = beta;
  params.dce_scale_hint = scale;
  params.hnsw = DefaultHnsw(seed);
  params.num_shards = static_cast<std::uint32_t>(num_shards);
  params.seed = seed;

  auto owner = DataOwner::Create(dataset.base.dim(), params);
  PPANNS_CHECK(owner.ok());

  ShardPoint point;
  point.n = dataset.base.size();
  point.num_shards = num_shards;

  // The shards=1 baseline uses EncryptAndIndexParallel: its graph build is
  // the sequential single-index one, but its DCE pass and SAP stream match
  // the sharded builder's, so the speedup column isolates the per-shard
  // graph parallelism and the recall rows share identical ciphertexts.
  Timer build;
  PpannsService service =
      num_shards == 1
          ? PpannsService{CloudServer(
                owner->EncryptAndIndexParallel(dataset.base))}
          : PpannsService{ShardedCloudServer(
                owner->EncryptAndIndexSharded(dataset.base))};
  point.build_seconds = build.ElapsedSeconds();

  QueryClient client(owner->ShareKeys(), seed + 23);
  const std::vector<QueryToken> tokens = EncryptQueries(client, dataset.queries);
  auto batch = service.SearchBatch(tokens, k, settings);
  PPANNS_CHECK(batch.ok());
  point.batch_wall_seconds = batch->counters.wall_seconds;
  point.batch_qps = tokens.size() / batch->counters.wall_seconds;

  std::vector<std::vector<VectorId>> ids;
  ids.reserve(batch->results.size());
  for (const SearchResult& r : batch->results) ids.push_back(r.ids);
  point.recall = MeanRecallAtK(ids, dataset.ground_truth, k);
  return point;
}

void EmitJson(std::FILE* json, const std::string& dataset,
              const ShardPoint& p, std::size_t k,
              const SearchSettings& settings) {
  if (json == nullptr) return;
  std::fprintf(json,
               "{\"bench\":\"fig10_scalability\",\"dataset\":\"%s\","
               "\"n\":%zu,\"num_shards\":%zu,\"k\":%zu,\"k_prime\":%zu,"
               "\"ef_search\":%zu,\"build_seconds\":%.4f,"
               "\"batch_wall_seconds\":%.4f,\"batch_qps\":%.1f,"
               "\"recall_at_k\":%.4f}\n",
               dataset.c_str(), p.n, p.num_shards, k, settings.k_prime,
               settings.ef_search, p.build_seconds, p.batch_wall_seconds,
               p.batch_qps, p.recall);
  std::fflush(json);
}

}  // namespace

int main() {
  PrintBanner("Fig. 10: scalability with database size and shard count",
              "Figure 10 (Section VII-C) + sharded scatter-gather serving");

  const std::size_t k = 10;
  const std::size_t base = EnvSize("PPANNS_BENCH_N", FullScale() ? 25'000'000 : 10'000);
  const std::vector<std::size_t> sizes = {base, 2 * base, 3 * base, 4 * base};
  const SearchSettings settings{.k_prime = 16 * k, .ef_search = 200};
  std::FILE* json = OpenBenchJson("fig10_scalability");

  // ---- Part 1: latency vs n at one shard (the paper's figure).
  std::printf("%s\n", FormatHeader().c_str());
  for (SyntheticKind kind : {SyntheticKind::kSiftLike, SyntheticKind::kDeepLike}) {
    for (std::size_t n : sizes) {
      BenchSystem sys = BuildSystem(kind, n, DefaultQ(), k, /*seed=*/707);
      OperatingPoint p = MeasureServer(*sys.server, sys.tokens,
                                      sys.dataset.ground_truth, k, settings);
      char param[32];
      std::snprintf(param, sizeof(param), "n=%zu", n);
      std::printf("%s\n", FormatRow(sys.dataset.name, param, p).c_str());
    }
    std::printf("\n");
  }
  std::printf("expected shape (paper): latency grows sublinearly — 4x data "
              "should cost well under 4x latency (graph search is ~log n).\n\n");

  // ---- Part 2: shard sweep at the smallest and largest size.
  std::printf("sharded build + batched scatter-gather (SIFT-like):\n");
  std::printf("%-10s %-8s %12s %12s %10s %8s\n", "n", "shards",
              "build(s)", "speedup", "batch QPS", "recall");
  for (std::size_t n : {sizes.front(), sizes.back()}) {
    Dataset dataset = MakeOrLoadDataset(SyntheticKind::kSiftLike, n,
                                        DefaultQ(), k, /*seed=*/707);
    Rng stat_rng(707 + 17);
    const DatasetStats stats = ComputeStats(dataset.base, stat_rng);
    const double beta = ChooseBeta(dataset, k, 0.5);
    const double scale = std::max(stats.mean_norm, 1e-3);

    double sequential_build = 0.0;
    for (std::size_t num_shards : {1, 2, 4, 8}) {
      ShardPoint p = MeasureSharded(dataset, beta, scale, num_shards, k,
                                    settings, /*seed=*/707);
      if (num_shards == 1) sequential_build = p.build_seconds;
      std::printf("%-10zu %-8zu %12.2f %11.2fx %10.1f %8.3f\n", p.n,
                  p.num_shards, p.build_seconds,
                  sequential_build / p.build_seconds, p.batch_qps, p.recall);
      EmitJson(json, dataset.name, p, k, settings);
    }
    std::printf("\n");
  }
  std::printf("expected shape: build time drops with shard count (independent "
              "per-shard graphs build in parallel) while recall holds — the "
              "merge refines the same total candidate budget.\n");
  if (json != nullptr) std::fclose(json);
  return 0;
}
