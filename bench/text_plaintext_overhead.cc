// In-text claim (Section VII-B, last paragraph): at Recall@10 = 0.9 the
// PP-ANNS scheme costs 5x / 7x / 3x / 4x a plaintext HNSW search on
// Sift1M / Gist / Glove / Deep1M. This bench regenerates that comparison:
// plaintext HNSW vs our encrypted filter+refine at matched recall.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "eval/metrics.h"

int main() {
  using namespace ppanns;
  using namespace ppanns::bench;

  PrintBanner("In-text: overhead vs plaintext HNSW at Recall@10 ~= 0.9",
              "Section VII-B closing comparison (5x/7x/3x/4x)");

  const std::size_t k = 10;
  const double target = 0.88;  // matched operating point

  std::printf("%-14s %12s %14s %14s %10s\n", "dataset", "recall",
              "plain_ms", "ppanns_ms", "overhead");
  for (SyntheticKind kind : AllKinds()) {
    const std::size_t n = DefaultN(kind);
    BenchSystem sys = BuildSystem(kind, n, DefaultQ(), k, /*seed=*/808);
    const Dataset& ds = sys.dataset;

    // Plaintext HNSW (same graph parameters, raw vectors).
    HnswIndex plain(ds.base.dim(), DefaultHnsw(808));
    plain.AddBatch(ds.base);

    // Find the cheapest plaintext ef reaching the target.
    double plain_ms = -1.0, plain_recall = 0.0;
    for (std::size_t ef : {20u, 40u, 80u, 160u, 320u, 640u}) {
      std::vector<std::vector<VectorId>> results;
      Timer t;
      for (std::size_t i = 0; i < ds.queries.size(); ++i) {
        auto res = plain.Search(ds.queries.row(i), k, ef);
        std::vector<VectorId> ids;
        for (const auto& r : res) ids.push_back(r.id);
        results.push_back(std::move(ids));
      }
      const double ms = t.ElapsedMillis() / ds.queries.size();
      plain_recall = MeanRecallAtK(results, ds.ground_truth, k);
      if (plain_recall >= target) {
        plain_ms = ms;
        break;
      }
    }

    // Cheapest encrypted operating point reaching the target.
    double enc_ms = -1.0, enc_recall = 0.0;
    for (std::size_t ratio : {4u, 8u, 16u, 32u, 64u, 128u}) {
      SearchSettings settings{
          .k_prime = ratio * k,
          .ef_search = std::max<std::size_t>(ratio * k, 64)};
      OperatingPoint p = MeasureServer(*sys.server, sys.tokens,
                                       ds.ground_truth, k, settings);
      enc_recall = p.recall;
      if (p.recall >= target) {
        enc_ms = p.mean_latency_ms;
        break;
      }
    }

    if (plain_ms < 0 || enc_ms < 0) {
      std::printf("%-14s target not reached (plain %.3f, enc %.3f)\n",
                  ds.name.c_str(), plain_recall, enc_recall);
      continue;
    }
    std::printf("%-14s %12.4f %14.4f %14.4f %9.2fx\n", ds.name.c_str(),
                enc_recall, plain_ms, enc_ms, enc_ms / plain_ms);
  }
  std::printf("\nexpected shape (paper): overhead of roughly 3x-7x — "
              "encrypted search pays the DCPE-noise recall penalty (larger "
              "k', ef) plus the DCE refine, but stays within one order of "
              "magnitude of plaintext HNSW.\n");
  return 0;
}
