// Kernel throughput: the SIMD distance-kernel layer and the int8 SQ filter
// tier (ROADMAP "SIMD distance kernels"; the filter-phase cost model of
// Section VII rides on raw scan speed).
//
// Sweeps dim in {64, 128, 384, 960} x {scalar, simd, simd+sq} over an
// exhaustive flat scan (the filter-stage workload with every index
// overhead stripped away) and reports, per point, the filter-stage scan cost
// (via SearchStats::filter_seconds — for the float configs the whole scan IS
// the filter stage; for sq it is the int8 code scan + shortlist selection),
// end-to-end search cost, both speedups against the forced-scalar float
// scan, and recall@10 against the exact scan's ids. The scalar and simd
// rows are exact by construction; the sq row re-ranks a 16x-oversampled
// int8 shortlist with exact float distances, so its recall stays at 1.0
// while the scan runs on one byte per dimension.
//
// Every point is also emitted as one JSON line into
// BENCH_kernel_throughput.json (override with PPANNS_BENCH_JSON) so the
// kernel trajectory is machine-readable across PRs.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/search_context.h"
#include "common/timer.h"
#include "index/sq8.h"
#include "linalg/kernels.h"

namespace {

using namespace ppanns;
using namespace ppanns::bench;

FloatMatrix RandomRows(std::size_t n, std::size_t dim, Rng& rng) {
  FloatMatrix m(n, dim);
  for (float& v : m.data()) v = static_cast<float>(rng.Gaussian(0.0, 10.0));
  return m;
}

struct Point {
  double seconds = 0.0;         // end-to-end search wall time
  double filter_seconds = 0.0;  // filter-stage portion (SearchStats)
  double recall = 0.0;
};

// One timed pass: `queries` top-k searches on `index`, returning wall time
// and the filter-stage portion (SearchStats::filter_seconds). `got` is
// filled with the result ids when non-null.
Point RunPass(const BruteForceIndex& index, const FloatMatrix& queries,
              std::size_t k, std::vector<std::vector<VectorId>>* got) {
  // A stats-only context: collects per-stage filter/refine wall times
  // without forcing the guarded scan path.
  SearchContext ctx;
  Point p;
  Timer timer;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    std::vector<VectorId> ids;
    for (const Neighbor& n : index.Search(queries.row(i), k, &ctx)) {
      ids.push_back(n.id);
    }
    if (got != nullptr) got->push_back(std::move(ids));
  }
  p.seconds = timer.ElapsedSeconds();
  p.filter_seconds = ctx.stats.filter_seconds;
  return p;
}

double RecallAgainst(const std::vector<std::vector<VectorId>>& got,
                     const std::vector<std::vector<VectorId>>& truth) {
  std::size_t hits = 0, want = 0;
  for (std::size_t i = 0; i < got.size(); ++i) {
    want += truth[i].size();
    for (VectorId id : got[i]) {
      for (VectorId t : truth[i]) {
        if (id == t) {
          ++hits;
          break;
        }
      }
    }
  }
  return want > 0 ? static_cast<double>(hits) / want : 1.0;
}

}  // namespace

int main() {
  PrintBanner("Kernel throughput: SIMD distance kernels + int8 SQ filter tier",
              "beyond the paper — ROADMAP SIMD kernels (filter-stage cost, "
              "Section VII)");

  const std::size_t k = 10;
  const std::size_t q = DefaultQ();
  std::FILE* json = OpenBenchJson("kernel_throughput");

  std::printf("active kernel backend: %s\n\n", ActiveKernelName());
  std::printf("%-6s %-10s %12s %12s %10s %10s %10s\n", "dim", "config",
              "filter(ns/r)", "total(ns/r)", "f-speedup", "speedup",
              "recall@10");

  for (const std::size_t dim : {std::size_t{64}, std::size_t{128},
                                std::size_t{384}, std::size_t{960}}) {
    // High dims scan more bytes per row; shrink n to keep runtimes flat.
    const std::size_t base = EnvSize("PPANNS_BENCH_N", 20'000);
    const std::size_t n = dim >= 384 ? base / 4 : base;
    Rng rng(0xC0DE + dim);
    const FloatMatrix data = RandomRows(n, dim, rng);
    const FloatMatrix queries = RandomRows(q, dim, rng);

    BruteForceIndex plain(dim);
    BruteForceIndex sq(dim, SqParams{.enabled = true, .refine_factor = 16,
                                     .train_min = 256});
    for (std::size_t i = 0; i < n; ++i) {
      plain.Add(data.row(i));
      sq.Add(data.row(i));
    }

    // Ground truth: the exact scan's ids (kernel-independent — every
    // dispatch path returns identical ids, pinned by the kernel tests).
    std::vector<std::vector<VectorId>> truth;
    truth.reserve(q);
    for (std::size_t i = 0; i < q; ++i) {
      std::vector<VectorId> ids;
      for (const Neighbor& r : plain.Search(queries.row(i), k)) {
        ids.push_back(r.id);
      }
      truth.push_back(std::move(ids));
    }

    struct Config {
      const char* name;
      const BruteForceIndex* index;
      KernelIsa isa;
    };
    const Config configs[] = {
        {"scalar", &plain, KernelIsa::kScalar},
        {"simd", &plain, ActiveKernelIsa()},
        {"simd+sq", &sq, ActiveKernelIsa()},
    };

    // Warm-up, then PPANNS_BENCH_REPS (default 9) timed passes per config,
    // keeping each config's fastest pass. Reps are interleaved across
    // configs so noise bursts on shared runners (where one pass can be 2x
    // off) hit every config alike, and min-over-reps then estimates each
    // config's true cost from its quietest window.
    const std::size_t reps = EnvSize("PPANNS_BENCH_REPS", 9);
    Point best[3];
    std::vector<std::vector<VectorId>> got[3];
    for (std::size_t c = 0; c < 3; ++c) {
      ScopedKernelIsa guard(configs[c].isa);
      (void)configs[c].index->Search(queries.row(0), k);
    }
    for (std::size_t rep = 0; rep < reps; ++rep) {
      for (std::size_t c = 0; c < 3; ++c) {
        ScopedKernelIsa guard(configs[c].isa);
        const Point p = RunPass(*configs[c].index, queries, k,
                                rep == 0 ? &got[c] : nullptr);
        if (rep == 0 || p.filter_seconds < best[c].filter_seconds) {
          best[c].seconds = p.seconds;
          best[c].filter_seconds = p.filter_seconds;
        }
      }
    }

    for (std::size_t c = 0; c < 3; ++c) {
      const Config& cfg = configs[c];
      Point p = best[c];
      p.recall = RecallAgainst(got[c], truth);
      const double scalar_seconds = best[0].seconds;
      const double scalar_filter_seconds = best[0].filter_seconds;
      const double row_ns = p.seconds / q / n * 1e9;
      const double filter_row_ns = p.filter_seconds / q / n * 1e9;
      const double speedup = scalar_seconds / p.seconds;
      const double filter_speedup = scalar_filter_seconds / p.filter_seconds;
      std::printf("%-6zu %-10s %12.1f %12.1f %9.2fx %9.2fx %10.4f\n", dim,
                  cfg.name, filter_row_ns, row_ns, filter_speedup, speedup,
                  p.recall);
      if (json != nullptr) {
        std::fprintf(json,
                     "{\"bench\":\"kernel_throughput\",\"dim\":%zu,\"n\":%zu,"
                     "\"queries\":%zu,\"config\":\"%s\",\"kernel\":\"%s\","
                     "\"seconds\":%.5f,\"filter_seconds\":%.5f,"
                     "\"row_ns\":%.2f,\"filter_row_ns\":%.2f,"
                     "\"speedup_vs_scalar\":%.3f,"
                     "\"filter_speedup_vs_scalar\":%.3f,"
                     "\"recall_at_10\":%.4f}\n",
                     dim, n, q, cfg.name, ActiveKernelName(), p.seconds,
                     p.filter_seconds, row_ns, filter_row_ns, speedup,
                     filter_speedup, p.recall);
      }
    }
    std::printf("\n");
  }
  if (json != nullptr) std::fclose(json);
  return 0;
}
