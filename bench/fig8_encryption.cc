// Fig. 8: per-vector encryption cost of DCPE vs DCE vs AME at each
// dataset's dimensionality. The paper's ordering: DCPE << DCE << AME.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "crypto/ame.h"

int main() {
  using namespace ppanns;
  using namespace ppanns::bench;

  PrintBanner("Fig. 8: vector encryption cost (us/vector)",
              "Figure 8 (Section VII-B)");

  const std::size_t batch = EnvSize("PPANNS_BENCH_ENC_BATCH", 200);
  std::printf("%-12s %6s %14s %14s %14s\n", "dataset", "dim", "DCPE_us",
              "DCE_us", "AME_us");

  for (SyntheticKind kind : AllKinds()) {
    const std::size_t dim = PaperDim(kind);
    Rng rng(505);
    FloatMatrix data = GenerateSynthetic(kind, batch, dim, rng);
    Rng stat_rng(506);
    const DatasetStats stats = ComputeStats(data, stat_rng, 100);
    const double scale = std::max(stats.mean_norm, 1e-3);

    auto dcpe = DcpeScheme::Create(dim, 1024.0, stats.max_abs_coord * 0.1);
    auto dce = DceScheme::KeyGen(dim, rng, scale);
    auto ame = AmeScheme::KeyGen(dim, rng, scale);
    PPANNS_CHECK(dcpe.ok() && dce.ok() && ame.ok());

    // Warm caches / CPU clocks before each timed loop.
    std::vector<float> sap_out(dim);
    for (std::size_t i = 0; i < std::min<std::size_t>(batch, 50); ++i) {
      dcpe->Encrypt(data.row(i), sap_out.data(), rng);
      DceCiphertext warm = dce->Encrypt(data.row(i), rng);
      if (warm.data.empty()) return 1;
    }

    Timer t_dcpe;
    for (std::size_t i = 0; i < batch; ++i) {
      dcpe->Encrypt(data.row(i), sap_out.data(), rng);
    }
    const double us_dcpe = t_dcpe.ElapsedMicros() / batch;

    Timer t_dce;
    for (std::size_t i = 0; i < batch; ++i) {
      DceCiphertext c = dce->Encrypt(data.row(i), rng);
      if (c.data.empty()) return 1;  // keep the work observable
    }
    const double us_dce = t_dce.ElapsedMicros() / batch;

    // AME is ~2 orders heavier: amortize over fewer vectors.
    const std::size_t ame_batch = std::max<std::size_t>(batch / 20, 5);
    Timer t_ame;
    for (std::size_t i = 0; i < ame_batch; ++i) {
      AmeCiphertext c = ame->Encrypt(data.row(i), rng);
      if (c.rows.rows() == 0) return 1;
    }
    const double us_ame = t_ame.ElapsedMicros() / ame_batch;

    std::printf("%-12s %6zu %14.2f %14.2f %14.2f\n", PaperName(kind).c_str(),
                dim, us_dcpe, us_dce, us_ame);
  }
  std::printf("\nexpected shape (paper): DCPE cheapest (O(d) noise), DCE in "
              "the middle (O(d^2) projections), AME costliest (32 matrix "
              "products at (2d+6)^2).\n");
  return 0;
}
