// Fig. 9: server-side and user-side per-query cost of all four systems at
// Recall@10 ~= 0.9 (each system's cheapest operating point reaching it),
// plus communication volume. Reproduces both Fig. 9 bars.

#include <cstdio>

#include "baselines/pacm_ann.h"
#include "baselines/pri_ann.h"
#include "baselines/rs_sann.h"
#include "bench/bench_util.h"
#include "common/timer.h"
#include "eval/metrics.h"

namespace {

using namespace ppanns;
using namespace ppanns::bench;

struct CostRow {
  double recall = 0.0;
  double server_ms = 0.0;
  double user_ms = 0.0;
  double comm_kb = 0.0;
  bool reached = false;
};

void Print(const std::string& dataset, const std::string& system,
           const CostRow& row) {
  if (!row.reached) {
    std::printf("%-14s %-10s %10s (recall target not reached; best %.3f)\n",
                dataset.c_str(), system.c_str(), "-", row.recall);
    return;
  }
  std::printf("%-14s %-10s %10.4f %12.4f %12.4f %12.2f\n", dataset.c_str(),
              system.c_str(), row.recall, row.server_ms, row.user_ms,
              row.comm_kb);
}

}  // namespace

int main() {
  PrintBanner("Fig. 9: server/user cost at Recall@10 ~= 0.9",
              "Figure 9 (Section VII-B); user cost measured on this machine");

  const std::size_t k = 10;
  const double target = 0.9;

  std::printf("%-14s %-10s %10s %12s %12s %12s\n", "dataset", "system",
              "recall", "server_ms", "user_ms", "comm_KB");
  for (SyntheticKind kind : AllKinds()) {
    const std::size_t n = DefaultN(kind);
    const std::size_t nq = DefaultQ();
    BenchSystem sys = BuildSystem(kind, n, nq, k, /*seed=*/606);
    const Dataset& ds = sys.dataset;

    // ---- Ours: smallest Ratio_k reaching the target. User cost = query
    // token generation (measured).
    {
      CostRow row;
      for (std::size_t ratio : {2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
        SearchSettings settings{
            .k_prime = ratio * k,
            .ef_search = std::max<std::size_t>(ratio * k, 64)};
        OperatingPoint p = MeasureServer(*sys.server, sys.tokens,
                                         ds.ground_truth, k, settings);
        row.recall = p.recall;
        if (p.recall >= target) {
          row.server_ms = p.mean_latency_ms;
          // Measure user-side token generation.
          QueryClient client(sys.owner->ShareKeys(), 607);
          Timer t;
          for (std::size_t i = 0; i < ds.queries.size(); ++i) {
            QueryToken tok = client.EncryptQuery(ds.queries.row(i));
            if (tok.sap.empty()) return 1;
          }
          row.user_ms = t.ElapsedMillis() / ds.queries.size();
          row.comm_kb =
              (sys.tokens[0].ByteSize() + k * sizeof(VectorId)) / 1024.0;
          row.reached = true;
          break;
        }
      }
      Print(ds.name, "PP-ANNS", row);
    }

    // ---- RS-SANN: grow the probe budget until the target (or give up).
    {
      RsSannParams params;
      params.lsh = LshParams{.num_tables = 12,
                             .num_hashes = 3,
                             .bucket_width = MeanKnnDistance(ds, k) * 3.0};
      auto rs = RsSannSystem::Build(ds.base, params);
      PPANNS_CHECK(rs.ok());
      CostRow row;
      for (std::size_t probes : {2u, 6u, 12u, 24u, 48u}) {
        std::vector<std::vector<VectorId>> results;
        CostBreakdown total;
        for (std::size_t i = 0; i < ds.queries.size(); ++i) {
          auto out = rs->Search(ds.queries.row(i), k, probes);
          total += out.cost;
          results.push_back(std::move(out.ids));
        }
        row.recall = MeanRecallAtK(results, ds.ground_truth, k);
        if (row.recall >= target) {
          row.server_ms = total.server_seconds / ds.queries.size() * 1e3;
          row.user_ms = total.user_seconds / ds.queries.size() * 1e3;
          row.comm_kb = double(total.comm_bytes) / ds.queries.size() / 1024.0;
          row.reached = true;
          break;
        }
      }
      Print(ds.name, "RS-SANN", row);
    }

    // ---- PRI-ANN (fixed probes; report whatever recall it reaches).
    {
      PriAnnParams params;
      params.lsh = LshParams{.num_tables = 12,
                             .num_hashes = 3,
                             .bucket_width = MeanKnnDistance(ds, k) * 3.0};
      auto pri = PriAnnSystem::Build(ds.base, params);
      PPANNS_CHECK(pri.ok());
      CostRow row;
      std::vector<std::vector<VectorId>> results;
      CostBreakdown total;
      for (std::size_t i = 0; i < ds.queries.size(); ++i) {
        auto out = pri->Search(ds.queries.row(i), k);
        total += out.cost;
        results.push_back(std::move(out.ids));
      }
      row.recall = MeanRecallAtK(results, ds.ground_truth, k);
      row.server_ms = total.server_seconds / ds.queries.size() * 1e3;
      row.user_ms = total.user_seconds / ds.queries.size() * 1e3;
      row.comm_kb = double(total.comm_bytes) / ds.queries.size() / 1024.0;
      row.reached = row.recall >= target;
      if (!row.reached) {
        // Report the bars anyway (the paper's point is their magnitude).
        row.reached = true;
      }
      Print(ds.name, "PRI-ANN", row);
    }

    // ---- PACM-ANN: grow ef until the target.
    {
      PacmAnnParams params;
      params.hnsw = DefaultHnsw(608);
      auto pacm = PacmAnnSystem::Build(ds.base, params);
      PPANNS_CHECK(pacm.ok());
      CostRow row;
      for (std::size_t ef : {32u, 64u, 128u, 256u}) {
        pacm->set_ef_search(ef);
        std::vector<std::vector<VectorId>> results;
        CostBreakdown total;
        for (std::size_t i = 0; i < ds.queries.size(); ++i) {
          auto out = pacm->Search(ds.queries.row(i), k);
          total += out.cost;
          results.push_back(std::move(out.ids));
        }
        row.recall = MeanRecallAtK(results, ds.ground_truth, k);
        if (row.recall >= target) {
          row.server_ms = total.server_seconds / ds.queries.size() * 1e3;
          row.user_ms = total.user_seconds / ds.queries.size() * 1e3;
          row.comm_kb = double(total.comm_bytes) / ds.queries.size() / 1024.0;
          row.reached = true;
          break;
        }
      }
      Print(ds.name, "PACM-ANN", row);
    }
    std::printf("\n");
  }
  std::printf("expected shape (paper): PP-ANNS has the smallest server cost, "
              "near-zero user cost and KB-scale communication; RS-SANN/PRI-ANN "
              "ship candidate sets (user-heavy), PACM-ANN pays per-hop "
              "PIR + rounds.\n");
  return 0;
}
