// Security demonstration (Section III-A): end-to-end KPA against every
// "enhanced" ASPE variant — the motivation for DCE. Prints, per variant,
// the number of leaked pairs used and the plaintext recovery error.

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "crypto/aspe.h"
#include "crypto/kpa_attack.h"
#include "linalg/matrix.h"

int main() {
  using namespace ppanns;
  using namespace ppanns::bench;

  PrintBanner("Section III-A: KPA against ASPE variants",
              "Theorem 1, Corollaries 1-2, Theorem 2");

  const std::size_t d = EnvSize("PPANNS_BENCH_KPA_DIM", 16);
  Rng rng(909);

  std::printf("%-14s %10s %14s %16s %12s\n", "variant", "leaks",
              "query_err", "database_err", "attack_ms");
  struct VariantCase {
    AspeVariant variant;
    const char* name;
    std::size_t dim;
  };
  for (const VariantCase vc :
       {VariantCase{AspeVariant::kLinear, "linear", d},
        VariantCase{AspeVariant::kExponential, "exponential", d},
        VariantCase{AspeVariant::kLogarithmic, "logarithmic", d},
        VariantCase{AspeVariant::kSquare, "square", std::min<std::size_t>(d, 8)}}) {
    auto scheme = AspeScheme::KeyGen(vc.dim, vc.variant, rng, 1.0);
    PPANNS_CHECK(scheme.ok());
    AspeKpaAttack attack(*scheme);
    const std::size_t m = attack.RequiredLeaks();

    // Leaked plaintext subset.
    Matrix leaked(m, vc.dim);
    std::vector<std::vector<double>> leaked_rows;
    for (std::size_t i = 0; i < m; ++i) {
      std::vector<double> p(vc.dim);
      for (auto& v : p) v = rng.Uniform(-1, 1);
      std::copy(p.begin(), p.end(), leaked.row(i));
      leaked_rows.push_back(std::move(p));
    }

    Timer timer;

    // Stage 1: recover m queries (with their blinding scalars).
    std::vector<RecoveredQuery> queries;
    std::vector<AspeTrapdoor> trapdoors;
    double query_err = 0.0;
    for (std::size_t j = 0; j < m; ++j) {
      std::vector<double> q(vc.dim);
      for (auto& v : q) v = rng.Uniform(-1, 1);
      AspeTrapdoor tq = scheme->GenTrapdoor(q.data(), rng);
      std::vector<double> leakage(m);
      for (std::size_t i = 0; i < m; ++i) {
        leakage[i] = scheme->Leakage(scheme->Encrypt(leaked_rows[i].data()), tq);
      }
      auto rec = attack.RecoverQuery(leaked, leakage);
      PPANNS_CHECK(rec.ok());
      for (std::size_t i = 0; i < vc.dim; ++i) {
        query_err = std::max(query_err, std::fabs(rec->q[i] - q[i]));
      }
      queries.push_back(std::move(*rec));
      trapdoors.push_back(std::move(tq));
    }

    // Stage 2: recover an unseen database vector.
    std::vector<double> target(vc.dim);
    for (auto& v : target) v = rng.Uniform(-1, 1);
    const AspeCiphertext ct = scheme->Encrypt(target.data());
    std::vector<double> target_leakage(m);
    for (std::size_t j = 0; j < m; ++j) {
      target_leakage[j] = scheme->Leakage(ct, trapdoors[j]);
    }
    auto rec_p = attack.RecoverDataVector(queries, target_leakage);
    PPANNS_CHECK(rec_p.ok());
    double db_err = 0.0;
    for (std::size_t i = 0; i < vc.dim; ++i) {
      db_err = std::max(db_err, std::fabs((*rec_p)[i] - target[i]));
    }

    std::printf("%-14s %10zu %14.2e %16.2e %12.2f\n", vc.name, m, query_err,
                db_err, timer.ElapsedMillis());
  }
  std::printf("\nexpected shape (paper): every variant broken — recovery "
              "error at numerical noise level. This is why the scheme needs "
              "DCE (comparison-only leakage) instead of ASPE.\n");
  return 0;
}
