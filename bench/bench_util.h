// Shared plumbing for the per-figure bench binaries.
//
// Every binary prints the rows/series of one table or figure from the
// paper's evaluation (Section VII). Defaults are scaled to finish in seconds
// on a laptop-class machine; env vars rescale:
//   PPANNS_BENCH_N      base vectors per dataset (default 20000; GIST 4000)
//   PPANNS_BENCH_Q      query count              (default 50)
//   PPANNS_BENCH_FULL=1 paper-scale parameters (n=1M, m=40, efc=600) — hours.

#ifndef PPANNS_BENCH_BENCH_UTIL_H_
#define PPANNS_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/cloud_server.h"
#include "core/data_owner.h"
#include "core/query_client.h"
#include "datagen/synthetic.h"
#include "eval/runner.h"
#include "index/brute_force.h"

namespace ppanns::bench {

inline std::size_t EnvSize(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
}

inline bool FullScale() { return EnvSize("PPANNS_BENCH_FULL", 0) != 0; }

/// Scaled-down defaults; GIST (d=960) gets a smaller base set.
inline std::size_t DefaultN(SyntheticKind kind) {
  const std::size_t base = FullScale() ? 1'000'000 : 20'000;
  const std::size_t n = EnvSize("PPANNS_BENCH_N", base);
  return (kind == SyntheticKind::kGistLike && !FullScale()) ? n / 5 : n;
}

inline std::size_t DefaultQ() {
  return EnvSize("PPANNS_BENCH_Q", FullScale() ? 1000 : 50);
}

inline HnswParams DefaultHnsw(std::uint64_t seed) {
  // Paper setup: m=40, efConstruction=600 (Section VII-A); scaled default
  // keeps build times in seconds.
  if (FullScale()) return HnswParams{.m = 40, .ef_construction = 600, .seed = seed};
  return HnswParams{.m = 16, .ef_construction = 200, .seed = seed};
}

/// Mean distance to the k-th nearest neighbor over a query sample — the
/// scale against which the SAP noise bound beta is meaningful.
inline double MeanKnnDistance(const Dataset& ds, std::size_t k) {
  double sum = 0.0;
  std::size_t count = 0;
  for (const auto& gt : ds.ground_truth) {
    if (gt.size() >= k) {
      sum += std::sqrt(static_cast<double>(gt[k - 1].distance));
      ++count;
    }
  }
  return count > 0 ? sum / count : 1.0;
}

/// beta tuned like the paper (Section VII-A): large enough to blur exact
/// neighborhoods (filter-only recall around ~0.5 at k'=k), small enough for
/// the refine phase to recover accuracy. `fraction` of the k-NN distance.
inline double ChooseBeta(const Dataset& ds, std::size_t k, double fraction) {
  return fraction * MeanKnnDistance(ds, k);
}

struct BenchSystem {
  Dataset dataset;
  DatasetStats stats;
  double beta = 0.0;
  std::unique_ptr<DataOwner> owner;
  std::unique_ptr<CloudServer> server;
  std::vector<QueryToken> tokens;
};

/// Builds the full PP-ANNS stack over one dataset kind. `beta_fraction` = 0
/// picks the default 0.5 * d(k-NN). `index_kind` selects the filter-phase
/// substrate (Algorithm 2 line 1); all backends share the same ciphertexts.
inline BenchSystem BuildSystem(SyntheticKind kind, std::size_t n,
                               std::size_t nq, std::size_t gt_k,
                               std::uint64_t seed, double beta_fraction = 0.5,
                               IndexKind index_kind = IndexKind::kHnsw) {
  BenchSystem sys;
  sys.dataset = MakeOrLoadDataset(kind, n, nq, gt_k, seed);
  Rng stat_rng(seed + 17);
  sys.stats = ComputeStats(sys.dataset.base, stat_rng);
  sys.beta = ChooseBeta(sys.dataset, gt_k, beta_fraction);

  PpannsParams params;
  params.dcpe_beta = sys.beta;
  params.dce_scale_hint = std::max(sys.stats.mean_norm, 1e-3);
  params.index_kind = index_kind;
  params.hnsw = DefaultHnsw(seed);
  params.ivf.num_lists = FullScale() ? 1024 : 64;
  // Plaintext units (FilterOptions rescales into SAP ciphertext space): wide
  // enough that true neighbors usually share buckets.
  params.lsh.bucket_width = std::max(1e-3, MeanKnnDistance(sys.dataset, gt_k) * 3.0);
  params.seed = seed;

  auto owner = DataOwner::Create(sys.dataset.base.dim(), params);
  PPANNS_CHECK(owner.ok());
  sys.owner = std::make_unique<DataOwner>(std::move(*owner));
  sys.server =
      std::make_unique<CloudServer>(sys.owner->EncryptAndIndex(sys.dataset.base));
  QueryClient client(sys.owner->ShareKeys(), seed + 23);
  sys.tokens = EncryptQueries(client, sys.dataset.queries);
  return sys;
}

inline const std::vector<SyntheticKind>& AllKinds() {
  static const std::vector<SyntheticKind> kinds = {
      SyntheticKind::kSiftLike, SyntheticKind::kGistLike,
      SyntheticKind::kGloveLike, SyntheticKind::kDeepLike};
  return kinds;
}

/// Opens the machine-readable sidecar for a bench binary: one JSON object
/// per line, so perf trajectories land in BENCH_<name>.json next to the
/// human-readable stdout tables. PPANNS_BENCH_JSON overrides the path;
/// PPANNS_BENCH_JSON=0 disables the sidecar. May return nullptr — callers
/// must guard.
inline std::FILE* OpenBenchJson(const char* bench_name) {
  const char* env = std::getenv("PPANNS_BENCH_JSON");
  if (env != nullptr && std::string(env) == "0") return nullptr;
  const std::string path = (env != nullptr && *env != '\0')
                               ? std::string(env)
                               : std::string("BENCH_") + bench_name + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: cannot open %s for JSON output\n",
                 path.c_str());
  }
  return f;
}

inline void PrintBanner(const char* title, const char* paper_ref) {
  std::printf("=================================================================\n");
  std::printf("%s\n", title);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("scale: %s (PPANNS_BENCH_N=%zu, PPANNS_BENCH_Q=%zu)\n",
              FullScale() ? "FULL (paper)" : "scaled-down",
              EnvSize("PPANNS_BENCH_N", 0), EnvSize("PPANNS_BENCH_Q", 0));
  std::printf("=================================================================\n");
}

}  // namespace ppanns::bench

#endif  // PPANNS_BENCH_BENCH_UTIL_H_
