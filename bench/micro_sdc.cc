// Micro-benchmarks (google-benchmark) for the secure-distance-comparison
// primitives of Sections III/IV: plaintext distance vs DCPE distance vs one
// DCE comparison (4d+32 MACs) vs one AME comparison (64d^2+... MACs), plus
// encryption and trapdoor generation costs. These are the per-op numbers
// behind Fig. 6 / Fig. 8.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "common/types.h"
#include "crypto/ame.h"
#include "crypto/dce.h"
#include "crypto/dcpe.h"

namespace ppanns {
namespace {

std::vector<float> RandomFloats(std::size_t d, Rng& rng) {
  std::vector<float> v(d);
  for (auto& x : v) x = static_cast<float>(rng.Uniform(-1, 1));
  return v;
}

void BM_PlaintextDistance(benchmark::State& state) {
  const std::size_t d = state.range(0);
  Rng rng(1);
  const auto a = RandomFloats(d, rng), b = RandomFloats(d, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SquaredL2(a.data(), b.data(), d));
  }
}
BENCHMARK(BM_PlaintextDistance)->Arg(96)->Arg(128)->Arg(960);

void BM_DcpeDistance(benchmark::State& state) {
  // Same cost as plaintext (the paper's point about the filter phase).
  const std::size_t d = state.range(0);
  Rng rng(2);
  auto scheme = DcpeScheme::Create(d, 1024.0, 1.0);
  PPANNS_CHECK(scheme.ok());
  auto a = RandomFloats(d, rng), b = RandomFloats(d, rng);
  std::vector<float> ca(d), cb(d);
  scheme->Encrypt(a.data(), ca.data(), rng);
  scheme->Encrypt(b.data(), cb.data(), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SquaredL2(ca.data(), cb.data(), d));
  }
}
BENCHMARK(BM_DcpeDistance)->Arg(96)->Arg(128)->Arg(960);

void BM_DceComparison(benchmark::State& state) {
  const std::size_t d = state.range(0);
  Rng rng(3);
  auto scheme = DceScheme::KeyGen(d, rng, 1.0);
  PPANNS_CHECK(scheme.ok());
  const auto o = RandomFloats(d, rng), p = RandomFloats(d, rng),
             q = RandomFloats(d, rng);
  const DceCiphertext co = scheme->Encrypt(o.data(), rng);
  const DceCiphertext cp = scheme->Encrypt(p.data(), rng);
  const DceTrapdoor tq = scheme->GenTrapdoor(q.data(), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(DceScheme::DistanceComp(co, cp, tq));
  }
}
BENCHMARK(BM_DceComparison)->Arg(96)->Arg(128)->Arg(960);

void BM_AmeComparison(benchmark::State& state) {
  const std::size_t d = state.range(0);
  Rng rng(4);
  auto scheme = AmeScheme::KeyGen(d, rng, 1.0);
  PPANNS_CHECK(scheme.ok());
  const auto o = RandomFloats(d, rng), p = RandomFloats(d, rng),
             q = RandomFloats(d, rng);
  const AmeCiphertext co = scheme->Encrypt(o.data(), rng);
  const AmeCiphertext cp = scheme->Encrypt(p.data(), rng);
  const AmeTrapdoor tq = scheme->GenTrapdoor(q.data(), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(AmeScheme::DistanceComp(co, cp, tq));
  }
}
BENCHMARK(BM_AmeComparison)->Arg(96)->Arg(128);

void BM_DceEncrypt(benchmark::State& state) {
  const std::size_t d = state.range(0);
  Rng rng(5);
  auto scheme = DceScheme::KeyGen(d, rng, 1.0);
  PPANNS_CHECK(scheme.ok());
  const auto p = RandomFloats(d, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheme->Encrypt(p.data(), rng));
  }
}
BENCHMARK(BM_DceEncrypt)->Arg(96)->Arg(128);

void BM_DceTrapdoor(benchmark::State& state) {
  const std::size_t d = state.range(0);
  Rng rng(6);
  auto scheme = DceScheme::KeyGen(d, rng, 1.0);
  PPANNS_CHECK(scheme.ok());
  const auto q = RandomFloats(d, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheme->GenTrapdoor(q.data(), rng));
  }
}
BENCHMARK(BM_DceTrapdoor)->Arg(96)->Arg(128);

void BM_DcpeEncrypt(benchmark::State& state) {
  const std::size_t d = state.range(0);
  Rng rng(7);
  auto scheme = DcpeScheme::Create(d, 1024.0, 1.0);
  PPANNS_CHECK(scheme.ok());
  const auto p = RandomFloats(d, rng);
  std::vector<float> out(d);
  for (auto _ : state) {
    scheme->Encrypt(p.data(), out.data(), rng);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_DcpeEncrypt)->Arg(96)->Arg(128);

}  // namespace
}  // namespace ppanns

BENCHMARK_MAIN();
