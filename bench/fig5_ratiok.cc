// Fig. 5: effect of Ratio_k = k'/k on the full filter-and-refine search.
// Larger k' raises the recall ceiling (more candidates refined exactly) at
// the cost of more DCE comparisons.

#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace ppanns;
  using namespace ppanns::bench;

  PrintBanner("Fig. 5: effect of Ratio_k on search performance",
              "Figure 5 (Section VII-A), filter+refine, k=10");

  const std::size_t k = 10;
  const std::vector<std::size_t> ratios = {1, 2, 4, 8, 16, 32, 64, 128};

  std::printf("%s\n", FormatHeader().c_str());
  for (SyntheticKind kind : AllKinds()) {
    BenchSystem sys =
        BuildSystem(kind, DefaultN(kind), DefaultQ(), k, /*seed=*/202);
    for (std::size_t ratio : ratios) {
      const std::size_t k_prime = ratio * k;
      SearchSettings settings{
          .k_prime = k_prime,
          .ef_search = std::max<std::size_t>(k_prime, 64)};
      const OperatingPoint point = MeasureServer(
          *sys.server, sys.tokens, sys.dataset.ground_truth, k, settings);
      char param[32];
      std::snprintf(param, sizeof(param), "Ratio_k=%zu", ratio);
      std::printf("%s\n", FormatRow(sys.dataset.name, param, point).c_str());
    }
    std::printf("\n");
  }
  std::printf("expected shape (paper): recall ceiling rises with Ratio_k "
              "while QPS falls; the knee sits at Ratio_k ~ 8-32.\n");
  return 0;
}
