// Table I: statistics of the evaluation datasets. Prints the same columns
// the paper reports (#dimensions, #vectors, #queries) for the four datasets
// (real files when present under data/, synthetic stand-ins otherwise),
// plus the derived quantities the scheme's keys depend on (M, mean norm).

#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace ppanns;
  using namespace ppanns::bench;

  PrintBanner("Table I: statistics of datasets",
              "Table I (Section VII), plus key-tuning statistics");

  std::printf("%-12s %12s %10s %10s %12s %12s %12s\n", "dataset", "#dims",
              "#vectors", "#queries", "max|coord|", "mean||p||", "beta_range");
  for (SyntheticKind kind : AllKinds()) {
    const std::size_t n = DefaultN(kind);
    const std::size_t nq = DefaultQ();
    Dataset ds = MakeOrLoadDataset(kind, n, nq, /*gt_k=*/0, /*seed=*/7);
    Rng rng(11);
    const DatasetStats stats = ComputeStats(ds.base, rng);
    char range[64];
    std::snprintf(range, sizeof(range), "[%.1f,%.0f]",
                  DcpeScheme::MinBeta(stats.max_abs_coord),
                  DcpeScheme::MaxBeta(stats.max_abs_coord, stats.dim));
    std::printf("%-12s %12zu %10zu %10zu %12.2f %12.2f %12s\n",
                ds.name.c_str(), stats.dim, stats.n, ds.queries.size(),
                stats.max_abs_coord, stats.mean_norm, range);
  }
  std::printf("\nPaper-scale counts (Table I): Sift1M/Gist/Deep1M = 1,000,000 "
              "vectors; Glove = 1,183,514;\nqueries = 10,000 (1,000 for Gist). "
              "Set PPANNS_BENCH_FULL=1 PPANNS_BENCH_N=1000000 to regenerate "
              "at full scale.\n");
  return 0;
}
