// Fig. 6: latency-vs-recall of HNSW-DCE (ours) against HNSW-AME (same
// filter, AME refine) and HNSW(filter) (no refine). The paper reports
// >=100x speedup of DCE over AME and near-zero refine overhead vs
// filter-only.
//
// AME is O(d^2) per comparison and its trapdoor is 16 (2d+6)^2 matrices
// (~475 MB at GIST's d=960!), so this bench runs every arm on a reduced
// database/query count per dataset — the DCE and AME arms always share the
// same data, graph, and settings, so the relative latencies (the figure's
// content) are preserved. Env: PPANNS_BENCH_AME_N / PPANNS_BENCH_AME_Q.

#include <cstdio>

#include "baselines/hnsw_ame.h"
#include "bench/bench_util.h"
#include "common/timer.h"
#include "eval/metrics.h"

int main() {
  using namespace ppanns;
  using namespace ppanns::bench;

  PrintBanner("Fig. 6: HNSW-AME vs HNSW-DCE vs HNSW(filter)",
              "Figure 6 (Section VII-B), latency (ms) vs Recall@10");

  const std::size_t k = 10;
  const std::vector<std::size_t> ratios = {2, 8};

  std::printf("%s\n", FormatHeader().c_str());
  for (SyntheticKind kind : AllKinds()) {
    const bool is_gist = kind == SyntheticKind::kGistLike;
    const std::size_t n =
        EnvSize("PPANNS_BENCH_AME_N", is_gist ? 400 : 3000);
    const std::size_t nq = EnvSize("PPANNS_BENCH_AME_Q", is_gist ? 2 : 5);

    BenchSystem sys = BuildSystem(kind, n, nq, k, /*seed=*/303);

    PpannsParams params;
    params.dcpe_beta = sys.beta;
    params.dce_scale_hint = std::max(sys.stats.mean_norm, 1e-3);
    params.hnsw = DefaultHnsw(303);
    params.seed = 303;
    auto ame_sys = HnswAmeSystem::Build(sys.dataset.base, params);
    PPANNS_CHECK(ame_sys.ok());

    for (std::size_t ratio : ratios) {
      const std::size_t k_prime = ratio * k;
      SearchSettings settings{
          .k_prime = k_prime,
          .ef_search = std::max<std::size_t>(k_prime, 64)};
      char param[32];
      std::snprintf(param, sizeof(param), "Ratio_k=%zu", ratio);

      // Ours (HNSW-DCE).
      OperatingPoint ours = MeasureServer(*sys.server, sys.tokens,
                                          sys.dataset.ground_truth, k, settings);
      std::printf("%s\n",
                  FormatRow(sys.dataset.name + "/DCE", param, ours).c_str());

      // Filter-only.
      SearchSettings filter_only = settings;
      filter_only.refine = false;
      OperatingPoint filt = MeasureServer(
          *sys.server, sys.tokens, sys.dataset.ground_truth, k, filter_only);
      std::printf("%s\n",
                  FormatRow(sys.dataset.name + "/filter", param, filt).c_str());

      // HNSW-AME, same data/graph/settings.
      std::vector<std::vector<VectorId>> ame_results;
      double ame_seconds = 0.0, ame_filter = 0.0, ame_refine = 0.0;
      for (std::size_t i = 0; i < nq; ++i) {
        AmeQueryToken token = ame_sys->EncryptQuery(sys.dataset.queries.row(i));
        Timer t;
        SearchResult r = ame_sys->Search(token, k, settings);
        ame_seconds += t.ElapsedSeconds();
        ame_filter += r.counters.filter_seconds;
        ame_refine += r.counters.refine_seconds;
        ame_results.push_back(std::move(r.ids));
      }
      OperatingPoint ame_point;
      ame_point.recall =
          MeanRecallAtK(ame_results, sys.dataset.ground_truth, k);
      ame_point.qps = nq / ame_seconds;
      ame_point.mean_latency_ms = ame_seconds / nq * 1e3;
      ame_point.mean_filter_ms = ame_filter / nq * 1e3;
      ame_point.mean_refine_ms = ame_refine / nq * 1e3;
      std::printf("%s\n",
                  FormatRow(sys.dataset.name + "/AME", param, ame_point).c_str());
    }
    std::printf("\n");
  }
  std::printf("expected shape (paper): DCE latency ~= filter-only; AME 2-4 "
              "orders of magnitude slower at the same recall.\n");
  return 0;
}
