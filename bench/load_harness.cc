// Closed-loop load harness for the serving tier: measures what the trapdoor
// result cache and the per-endpoint RPC connection pools buy under realistic
// key skew, and gates the claims that justify shipping them.
//
// Three scenarios, all driven by closed-loop clients (each thread issues its
// next query the moment the previous one returns, so offered load tracks
// capacity and queueing shows up as latency):
//
//   cache  — client ramp x Zipf skew sweep over a fixed population of
//            pre-encrypted trapdoors, cache off vs on. Closed-loop clients
//            make per-client-count p99 a misleading comparison (hits are
//            instant, so cache-on clients spend their wall time in misses
//            and offered load triples), so the gate compares knee points:
//            at skew >= 1.0 some cache-on ramp point must DOMINATE the best
//            cache-off point — at least its QPS and strictly lower p99 —
//            with a non-zero hit rate. Repeats hit because the *same
//            trapdoor bytes* are re-presented (trapdoor encryption is
//            randomized, so a re-encrypted query would — correctly — miss).
//   mixed  — searches race an insert/delete mutator (serialized by a
//            harness-level reader/writer lock, honoring the facade's
//            mutate-vs-search contract) against a cache-enabled service
//            while a byte-identical twin with no cache absorbs the same
//            mutations. Gate: after quiescing, every distinct trapdoor must
//            answer id-for-id identically on both — a cached entry that
//            survives invalidation wrongly cannot hide here.
//   pool   — the same package served over real loopback sockets through
//            ConnectShardedService with pool_size 1 vs 4, DCE-heavy
//            responses, client ramp to saturation. Gate: pool 4 must reach
//            higher saturation QPS than pool 1 — enforced only when the
//            host has >= 4 hardware threads (one core cannot exercise
//            parallel socket readers; the numbers are still reported).
//
// Every cell lands as a JSON line in BENCH_load_harness.json.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "core/ppanns_service.h"
#include "core/sharded_database.h"
#include "net/remote_shard.h"
#include "net/shard_server.h"

namespace {

using namespace ppanns;

/// Zipf(s) sampler over [0, n): P(i) proportional to (i+1)^-s, drawn by
/// binary search over the cumulative weights. s = 0 is uniform. Rank order
/// is the token index, so token 0 is the hottest key.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double skew) : cdf_(n) {
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      total += std::pow(static_cast<double>(i + 1), -skew);
      cdf_[i] = total;
    }
  }

  std::size_t Pick(Rng& rng) const {
    const double u = rng.Uniform(0.0, cdf_.back());
    const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
    return std::min<std::size_t>(
        static_cast<std::size_t>(it - cdf_.begin()), cdf_.size() - 1);
  }

 private:
  std::vector<double> cdf_;
};

double Percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const std::size_t idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

struct PhaseResult {
  std::size_t ops = 0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double hit_rate = -1.0;  ///< -1 = cache disabled for this phase
};

/// The mixed phase's search-vs-mutation serialization: searches hold the
/// lock shared, the mutator holds it exclusive — the harness-level
/// embodiment of the facade contract that callers serialize Insert/Delete
/// against their own searches. `write_pending` gives the writer priority:
/// glibc's shared_mutex prefers readers, and a closed-loop reader stream
/// would otherwise starve the mutator indefinitely.
struct MutatorGate {
  std::shared_mutex mu;
  std::atomic<bool> write_pending{false};
};

/// Runs `clients` closed-loop threads against `svc` for `seconds`. When
/// `gate` is non-null every search passes through it (see MutatorGate).
PhaseResult RunClosedLoop(PpannsService& svc, const std::vector<QueryToken>& tokens,
                          std::size_t k, const SearchSettings& settings,
                          const ZipfSampler& zipf, std::size_t clients,
                          double seconds, std::uint64_t seed,
                          MutatorGate* gate = nullptr) {
  const ResultCacheStats before = svc.result_cache_enabled()
                                      ? svc.result_cache_stats()
                                      : ResultCacheStats{};
  std::vector<std::vector<double>> lat(clients);
  std::vector<std::thread> threads;
  threads.reserve(clients);
  Timer wall;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(seconds);
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      Rng rng(seed + 7919 * (c + 1));
      auto& samples = lat[c];
      while (std::chrono::steady_clock::now() < deadline) {
        const std::size_t pick = zipf.Pick(rng);
        Timer t;
        if (gate != nullptr) {
          while (gate->write_pending.load(std::memory_order_acquire)) {
            std::this_thread::yield();
          }
          std::shared_lock<std::shared_mutex> lock(gate->mu);
          auto r = svc.Search(tokens[pick], k, settings);
          PPANNS_CHECK(r.ok());
        } else {
          auto r = svc.Search(tokens[pick], k, settings);
          PPANNS_CHECK(r.ok());
        }
        samples.push_back(t.ElapsedMillis());
      }
    });
  }
  for (auto& t : threads) t.join();
  const double wall_s = wall.ElapsedMillis() / 1000.0;

  PhaseResult out;
  std::vector<double> all;
  for (const auto& v : lat) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  out.ops = all.size();
  out.qps = wall_s > 0 ? static_cast<double>(all.size()) / wall_s : 0.0;
  out.p50_ms = Percentile(all, 0.50);
  out.p99_ms = Percentile(all, 0.99);
  if (svc.result_cache_enabled()) {
    const ResultCacheStats after = svc.result_cache_stats();
    const std::size_t hits = after.hits - before.hits;
    const std::size_t misses = after.misses - before.misses;
    out.hit_rate = (hits + misses) > 0
                       ? static_cast<double>(hits) /
                             static_cast<double>(hits + misses)
                       : 0.0;
  }
  return out;
}

}  // namespace

int main() {
  using namespace ppanns::bench;

  PrintBanner("Extension: serving-tier load harness",
              "result cache + RPC connection pools under closed-loop skew");

  const std::size_t k = 10;
  const SyntheticKind kind = SyntheticKind::kSiftLike;
  const std::size_t n = std::max<std::size_t>(DefaultN(kind) / 2, 2000);
  // Distinct trapdoors ~4x the cache capacity: the hit rate is then a
  // property of the skew (uniform ~capacity/keys, Zipf >> that), not a
  // everything-fits freebie.
  const std::size_t keys = std::max<std::size_t>(
      EnvSize("PPANNS_BENCH_KEYS", 1024), 64);
  const std::size_t cache_capacity = keys / 4;
  const std::size_t insert_pool = 256;
  const double phase_s = FullScale() ? 2.0 : 0.7;
  const std::size_t cores = std::thread::hardware_concurrency();

  Dataset ds = MakeOrLoadDataset(kind, n + insert_pool, keys, 0, 811);
  FloatMatrix initial(0, ds.base.dim());
  FloatMatrix pool(0, ds.base.dim());
  for (std::size_t i = 0; i < n; ++i) initial.Append(ds.base.row(i));
  for (std::size_t i = n; i < ds.base.size(); ++i) pool.Append(ds.base.row(i));

  Rng stat_rng(812);
  const DatasetStats stats = ComputeStats(initial, stat_rng);
  PpannsParams params;
  params.dcpe_beta = 0.0;  // deterministic twins: isolate caching effects
  params.dce_scale_hint = std::max(stats.mean_norm, 1e-3);
  params.index_kind = IndexKind::kBruteForce;  // flat per-op cost: queueing
                                               // effects dominate the knee
  params.num_shards = 2;
  params.seed = 813;

  auto owner = DataOwner::Create(ds.base.dim(), params);
  PPANNS_CHECK(owner.ok());

  // One serialized package; every scenario deserializes its own copy so all
  // services (and the mixed scenario's twin) start byte-identical.
  BinaryWriter base_writer;
  owner->EncryptAndIndexSharded(initial).Serialize(&base_writer);
  const std::vector<std::uint8_t> base_bytes = base_writer.buffer();
  auto load = [&base_bytes]() {
    BinaryReader r(base_bytes);
    auto db = ShardedEncryptedDatabase::Deserialize(&r);
    PPANNS_CHECK(db.ok());
    return PpannsService{ShardedCloudServer(std::move(*db))};
  };

  QueryClient client(owner->ShareKeys(), 814);
  std::vector<QueryToken> tokens;
  tokens.reserve(keys);
  for (std::size_t i = 0; i < keys; ++i) {
    tokens.push_back(client.EncryptQuery(ds.queries.row(i)));
  }
  const SearchSettings settings{.k_prime = 4 * k};

  std::FILE* jf = OpenBenchJson("load_harness");
  int exit_code = 0;

  // ---- Scenario 1: cache off/on x skew x client ramp.
  std::printf("\ncorpus n=%zu, 2 shards, %zu distinct trapdoors, cache "
              "capacity %zu, %zu-core host\n\n",
              n, keys, cache_capacity, cores);
  std::printf("%-8s %6s %8s %8s %10s %10s %10s %9s\n", "scenario", "skew",
              "cache", "clients", "qps", "p50_ms", "p99_ms", "hit_rate");

  PpannsService svc = load();
  const std::vector<double> skews = {0.0, 1.1};
  const std::vector<std::size_t> ramp = {1, 2, 4};
  std::vector<PhaseResult> knee_off, knee_on;  // ramp points at skew >= 1.0
  for (const double skew : skews) {
    const ZipfSampler zipf(keys, skew);
    for (const bool cache_on : {false, true}) {
      if (cache_on) {
        svc.EnableResultCache({.capacity = cache_capacity});  // fresh + cold
      } else {
        svc.DisableResultCache();
      }
      for (const std::size_t clients : ramp) {
        const PhaseResult r = RunClosedLoop(svc, tokens, k, settings, zipf,
                                            clients, phase_s,
                                            900 + clients);
        char hit_buf[16] = "-";
        if (r.hit_rate >= 0) {
          std::snprintf(hit_buf, sizeof(hit_buf), "%.3f", r.hit_rate);
        }
        std::printf("%-8s %6.1f %8s %8zu %10.0f %10.3f %10.3f %9s\n",
                    "cache", skew, cache_on ? "on" : "off", clients, r.qps,
                    r.p50_ms, r.p99_ms, hit_buf);
        if (jf != nullptr) {
          std::fprintf(jf,
                       "{\"scenario\": \"cache\", \"skew\": %.1f, \"cache\": "
                       "%s, \"capacity\": %zu, \"keys\": %zu, \"clients\": "
                       "%zu, \"ops\": %zu, \"qps\": %.1f, \"p50_ms\": %.3f, "
                       "\"p99_ms\": %.3f, \"hit_rate\": %.4f}\n",
                       skew, cache_on ? "true" : "false", cache_capacity,
                       keys, clients, r.ops, r.qps, r.p50_ms, r.p99_ms,
                       r.hit_rate < 0 ? 0.0 : r.hit_rate);
        }
        if (skew >= 1.0) (cache_on ? knee_on : knee_off).push_back(r);
      }
    }
  }

  // Knee comparison at skew >= 1.0: the cache must move the
  // throughput-vs-p99 curve — some cache-on ramp point must carry at least
  // the best cache-off throughput at strictly lower p99.
  PhaseResult best_off;
  for (const PhaseResult& r : knee_off) {
    if (r.qps > best_off.qps) best_off = r;
  }
  PhaseResult best_on;
  bool cache_gate_ok = false;
  for (const PhaseResult& r : knee_on) {
    if (r.qps >= best_off.qps && r.p99_ms < best_off.p99_ms &&
        r.hit_rate > 0.0) {
      if (!cache_gate_ok || r.p99_ms < best_on.p99_ms) best_on = r;
      cache_gate_ok = true;
    }
  }

  // ---- Scenario 2: searches + mutations against a cache-enabled service,
  // id-equality against a mutated-in-lockstep twin with no cache.
  PpannsService cached = load();
  cached.EnableResultCache({.capacity = cache_capacity});
  PpannsService plain = load();
  MutatorGate gate;
  std::atomic<bool> stop_mutator{false};
  std::size_t mutations = 0;
  std::vector<VectorId> live;
  live.reserve(n + insert_pool);
  for (std::size_t i = 0; i < n; ++i) {
    live.push_back(static_cast<VectorId>(i));
  }
  std::thread mutator([&] {
    Rng rng(815);
    std::size_t pool_next = 0;
    while (!stop_mutator.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      gate.write_pending.store(true, std::memory_order_release);
      std::unique_lock<std::shared_mutex> lock(gate.mu);
      gate.write_pending.store(false, std::memory_order_release);
      if ((rng.NextUint64() & 1) != 0 && pool_next < pool.size()) {
        // Encrypt once, insert the same ciphertext into both twins.
        EncryptedVector ev = owner->EncryptOne(pool.row(pool_next++));
        auto a = cached.Insert(ev);
        auto b = plain.Insert(ev);
        PPANNS_CHECK(a.ok() && b.ok() && *a == *b);
        live.push_back(*a);
      } else {
        const auto idx = static_cast<std::size_t>(
            rng.UniformInt(0, static_cast<std::int64_t>(live.size()) - 1));
        const VectorId victim = live[idx];
        PPANNS_CHECK(cached.Delete(victim).ok());
        PPANNS_CHECK(plain.Delete(victim).ok());
        live[idx] = live.back();
        live.pop_back();
      }
      ++mutations;
    }
  });
  const ZipfSampler hot(keys, 1.1);
  const PhaseResult mixed = RunClosedLoop(cached, tokens, k, settings, hot, 2,
                                          2.0 * phase_s, 1700, &gate);
  stop_mutator.store(true, std::memory_order_release);
  mutator.join();

  // Quiesced: every distinct trapdoor, twice on the cached twin (the second
  // answer comes from the cache) against the uncached oracle.
  bool ids_equal = true;
  for (const QueryToken& token : tokens) {
    auto first = cached.Search(token, k, settings);
    auto replay = cached.Search(token, k, settings);
    auto oracle = plain.Search(token, k, settings);
    PPANNS_CHECK(first.ok() && replay.ok() && oracle.ok());
    if (first->ids != oracle->ids || replay->ids != oracle->ids) {
      ids_equal = false;
    }
  }
  const ResultCacheStats mixed_stats = cached.result_cache_stats();
  std::printf("\nmixed: %zu searches raced %zu mutations; hit_rate %.3f, "
              "stale_evictions %zu; post-quiesce ids %s the uncached twin "
              "(%zu trapdoors)\n",
              mixed.ops, mutations, mixed.hit_rate,
              mixed_stats.stale_evictions,
              ids_equal ? "MATCH" : "DIVERGE FROM", tokens.size());
  if (jf != nullptr) {
    std::fprintf(jf,
                 "{\"scenario\": \"mixed\", \"ops\": %zu, \"mutations\": "
                 "%zu, \"qps\": %.1f, \"p99_ms\": %.3f, \"hit_rate\": %.4f, "
                 "\"stale_evictions\": %zu, \"ids_checked\": %zu, "
                 "\"ids_equal\": %s}\n",
                 mixed.ops, mutations, mixed.qps, mixed.p99_ms,
                 mixed.hit_rate, mixed_stats.stale_evictions, tokens.size(),
                 ids_equal ? "true" : "false");
  }

  // ---- Scenario 3: pool_size 1 vs 4 over loopback sockets, DCE-heavy
  // responses (the refine payload is what serializes on a single stream).
  PpannsService backend = load();
  ShardServer shard_server(&backend, std::vector<std::uint32_t>{});
  PPANNS_CHECK(shard_server.Start(0).ok());
  const std::string endpoint =
      "127.0.0.1:" + std::to_string(shard_server.port());
  const SearchSettings heavy{.k_prime = 8 * k};
  const ZipfSampler uniform(keys, 0.0);
  const std::vector<std::size_t> remote_ramp = {2, 4, 8};
  std::printf("\n%-8s %6s %8s %10s %10s %10s\n", "scenario", "pool",
              "clients", "qps", "p50_ms", "p99_ms");
  double sat_qps[2] = {0.0, 0.0};
  const std::size_t pool_sizes[2] = {1, 4};
  for (int arm = 0; arm < 2; ++arm) {
    auto remote = ConnectShardedService({endpoint}, pool_sizes[arm]);
    PPANNS_CHECK(remote.ok());
    PpannsService rsvc{std::move(*remote)};
    for (const std::size_t clients : remote_ramp) {
      const PhaseResult r = RunClosedLoop(rsvc, tokens, k, heavy, uniform,
                                          clients, phase_s, 2500 + clients);
      sat_qps[arm] = std::max(sat_qps[arm], r.qps);
      std::printf("%-8s %6zu %8zu %10.0f %10.3f %10.3f\n", "pool",
                  pool_sizes[arm], clients, r.qps, r.p50_ms, r.p99_ms);
      if (jf != nullptr) {
        std::fprintf(jf,
                     "{\"scenario\": \"pool\", \"pool_size\": %zu, "
                     "\"clients\": %zu, \"ops\": %zu, \"qps\": %.1f, "
                     "\"p50_ms\": %.3f, \"p99_ms\": %.3f}\n",
                     pool_sizes[arm], clients, r.ops, r.qps, r.p50_ms,
                     r.p99_ms);
      }
    }
  }
  const bool pool_gate_enforced = cores >= 4;

  if (jf != nullptr) {
    std::fprintf(jf,
                 "{\"scenario\": \"summary\", \"knee_qps_off\": %.1f, "
                 "\"knee_p99_off_ms\": %.3f, \"knee_qps_on\": %.1f, "
                 "\"knee_p99_on_ms\": %.3f, \"knee_hit_rate\": %.4f, "
                 "\"cache_gate_ok\": %s, "
                 "\"sat_qps_pool1\": %.1f, \"sat_qps_pool4\": %.1f, "
                 "\"cores\": %zu, \"pool_gate_enforced\": %s, "
                 "\"ids_equal\": %s}\n",
                 best_off.qps, best_off.p99_ms, best_on.qps, best_on.p99_ms,
                 best_on.hit_rate, cache_gate_ok ? "true" : "false",
                 sat_qps[0], sat_qps[1], cores,
                 pool_gate_enforced ? "true" : "false",
                 ids_equal ? "true" : "false");
    std::fclose(jf);
  }

  // ---- Gates.
  if (!cache_gate_ok) {
    std::fprintf(stderr,
                 "FAIL: at skew 1.1 no cache-on ramp point dominated the "
                 "best cache-off knee (%.0f qps @ p99 %.3f ms)\n",
                 best_off.qps, best_off.p99_ms);
    exit_code = 1;
  }
  if (!ids_equal) {
    std::fprintf(stderr, "FAIL: cached answers diverged from the uncached "
                 "twin after the mutation phase\n");
    exit_code = 1;
  }
  if (pool_gate_enforced && !(sat_qps[1] > sat_qps[0])) {
    std::fprintf(stderr,
                 "FAIL: pool_size 4 saturation QPS (%.0f) did not beat "
                 "pool_size 1 (%.0f) on a %zu-core host\n",
                 sat_qps[1], sat_qps[0], cores);
    exit_code = 1;
  } else if (!pool_gate_enforced) {
    std::printf("\npool gate skipped: %zu-core host cannot drive parallel "
                "socket readers (reported, not enforced)\n", cores);
  }

  std::printf("\ntakeaway: under Zipf skew the trapdoor cache moves the "
              "knee — %.0f qps @ p99 %.3f ms without it, %.0f qps @ p99 "
              "%.3f ms with it (hit rate %.0f%%); connection pools add "
              "parallel byte streams per endpoint (saturation %.0f -> %.0f "
              "qps), and every cached answer stays id-identical to a fresh "
              "search across live mutation.\n",
              best_off.qps, best_off.p99_ms, best_on.qps, best_on.p99_ms,
              100.0 * best_on.hit_rate, sat_qps[0], sat_qps[1]);
  return exit_code;
}
