// Fig. 7: QPS vs Recall@10 of our PP-ANNS scheme against RS-SANN,
// PACM-ANN and PRI-ANN. Baseline QPS is end-to-end (server + user +
// simulated network per netsim's 1 Gbps / 1 ms model); ours is server-side
// + one round, as in the paper's single-server non-interactive setting.

#include <cstdio>

#include "baselines/pacm_ann.h"
#include "baselines/pri_ann.h"
#include "baselines/rs_sann.h"
#include "bench/bench_util.h"
#include "common/timer.h"
#include "eval/metrics.h"

namespace {

using namespace ppanns;
using namespace ppanns::bench;

struct Row {
  double recall;
  double qps;
};

void Print(const std::string& dataset, const std::string& system,
           const std::string& param, Row row) {
  std::printf("%-14s %-10s %-14s %8.4f %12.2f\n", dataset.c_str(),
              system.c_str(), param.c_str(), row.recall, row.qps);
}

}  // namespace

int main() {
  PrintBanner("Fig. 7: comparison with baseline PP-ANNS systems",
              "Figure 7 (Section VII-B), QPS vs Recall@10, all four datasets");

  const std::size_t k = 10;
  const NetworkModel net;

  std::printf("%-14s %-10s %-14s %8s %12s\n", "dataset", "system", "param",
              "recall", "QPS");
  for (SyntheticKind kind : AllKinds()) {
    const std::size_t n = DefaultN(kind);
    const std::size_t nq = DefaultQ();
    BenchSystem sys = BuildSystem(kind, n, nq, k, /*seed=*/404);
    const Dataset& ds = sys.dataset;

    // ---- Ours: sweep Ratio_k for the trade-off curve.
    for (std::size_t ratio : {4u, 16u, 64u}) {
      SearchSettings settings{.k_prime = ratio * k,
                              .ef_search = std::max<std::size_t>(ratio * k, 64)};
      std::vector<std::vector<VectorId>> results;
      double total = 0.0;
      for (std::size_t i = 0; i < sys.tokens.size(); ++i) {
        Timer t;
        SearchResult r = sys.server->Search(sys.tokens[i], k, settings);
        CostBreakdown cost;
        cost.server_seconds = t.ElapsedSeconds();
        cost.comm_bytes = sys.tokens[i].ByteSize() + k * sizeof(VectorId);
        cost.comm_rounds = 1;
        total += cost.TotalSeconds(net);
        results.push_back(std::move(r.ids));
      }
      Print(ds.name, "PP-ANNS", "Ratio_k=" + std::to_string(ratio),
            {MeanRecallAtK(results, ds.ground_truth, k),
             sys.tokens.size() / total});
    }

    // ---- Ours, alternative filter substrates (the pluggable
    // SecureFilterIndex slot): same ciphertexts, different k'-ANNS backend.
    for (IndexKind alt : {IndexKind::kIvf, IndexKind::kLsh}) {
      BenchSystem alt_sys = BuildSystem(kind, n, nq, k, /*seed=*/404,
                                        /*beta_fraction=*/0.5, alt);
      SearchSettings settings{.k_prime = 16 * k};
      std::vector<std::vector<VectorId>> results;
      double total = 0.0;
      for (std::size_t i = 0; i < alt_sys.tokens.size(); ++i) {
        Timer t;
        SearchResult r = alt_sys.server->Search(alt_sys.tokens[i], k, settings);
        CostBreakdown cost;
        cost.server_seconds = t.ElapsedSeconds();
        cost.comm_bytes = alt_sys.tokens[i].ByteSize() + k * sizeof(VectorId);
        cost.comm_rounds = 1;
        total += cost.TotalSeconds(net);
        results.push_back(std::move(r.ids));
      }
      Print(ds.name, std::string("PP-ANNS(") + IndexKindName(alt) + ")",
            "Ratio_k=16",
            {MeanRecallAtK(results, ds.ground_truth, k),
             alt_sys.tokens.size() / total});
    }

    // ---- RS-SANN: sweep the multiprobe budget.
    {
      RsSannParams params;
      params.lsh = LshParams{.num_tables = 12,
                             .num_hashes = 3,
                             .bucket_width = MeanKnnDistance(ds, k) * 3.0};
      auto rs = RsSannSystem::Build(ds.base, params);
      PPANNS_CHECK(rs.ok());
      for (std::size_t probes : {2u, 6u, 12u}) {
        std::vector<std::vector<VectorId>> results;
        double total = 0.0;
        for (std::size_t i = 0; i < ds.queries.size(); ++i) {
          auto out = rs->Search(ds.queries.row(i), k, probes);
          total += out.cost.TotalSeconds(net);
          results.push_back(std::move(out.ids));
        }
        Print(ds.name, "RS-SANN", "probes=" + std::to_string(probes),
              {MeanRecallAtK(results, ds.ground_truth, k),
               ds.queries.size() / total});
      }
    }

    // ---- PRI-ANN.
    {
      PriAnnParams params;
      params.lsh = LshParams{.num_tables = 12,
                             .num_hashes = 3,
                             .bucket_width = MeanKnnDistance(ds, k) * 3.0};
      auto pri = PriAnnSystem::Build(ds.base, params);
      PPANNS_CHECK(pri.ok());
      std::vector<std::vector<VectorId>> results;
      double total = 0.0;
      for (std::size_t i = 0; i < ds.queries.size(); ++i) {
        auto out = pri->Search(ds.queries.row(i), k);
        total += out.cost.TotalSeconds(net);
        results.push_back(std::move(out.ids));
      }
      Print(ds.name, "PRI-ANN", "probes=8",
            {MeanRecallAtK(results, ds.ground_truth, k),
             ds.queries.size() / total});
    }

    // ---- PACM-ANN: sweep the user-driven beam width.
    {
      PacmAnnParams params;
      params.hnsw = DefaultHnsw(405);
      auto pacm = PacmAnnSystem::Build(ds.base, params);
      PPANNS_CHECK(pacm.ok());
      for (std::size_t ef : {32u, 64u, 128u}) {
        pacm->set_ef_search(ef);
        std::vector<std::vector<VectorId>> results;
        double total = 0.0;
        for (std::size_t i = 0; i < ds.queries.size(); ++i) {
          auto out = pacm->Search(ds.queries.row(i), k);
          total += out.cost.TotalSeconds(net);
          results.push_back(std::move(out.ids));
        }
        Print(ds.name, "PACM-ANN", "ef=" + std::to_string(ef),
              {MeanRecallAtK(results, ds.ground_truth, k),
               ds.queries.size() / total});
      }
    }
    std::printf("\n");
  }
  std::printf("expected shape (paper): PP-ANNS 1-3 orders of magnitude higher "
              "QPS than every baseline at Recall@10 in [0.85, 0.95].\n");
  return 0;
}
