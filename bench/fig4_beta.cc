// Fig. 4: effect of the DCPE noise bound beta on the *filter-phase-only*
// QPS-recall trade-off (k' = k = 10), one series per beta per dataset.
// beta = 0 means no noise (the leakage-maximal reference); larger beta
// lowers the attainable recall ceiling — the privacy/accuracy dial.

#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace ppanns;
  using namespace ppanns::bench;

  PrintBanner("Fig. 4: effect of beta on filter-phase search",
              "Figure 4 (Section VII-A), filter phase only, k'=k=10");

  const std::size_t k = 10;
  const std::vector<double> beta_fractions = {0.0, 0.25, 0.75, 1.5};
  const std::vector<std::size_t> ef_values = {10, 20, 40, 80, 160, 320};

  std::printf("%s\n", FormatHeader().c_str());
  for (SyntheticKind kind : AllKinds()) {
    const std::size_t n = DefaultN(kind);
    for (double fraction : beta_fractions) {
      BenchSystem sys = BuildSystem(kind, n, DefaultQ(), k, /*seed=*/101,
                                    fraction);
      for (std::size_t ef : ef_values) {
        SearchSettings settings{.k_prime = k, .ef_search = ef, .refine = false};
        const OperatingPoint point = MeasureServer(
            *sys.server, sys.tokens, sys.dataset.ground_truth, k, settings);
        char label[64], param[64];
        std::snprintf(label, sizeof(label), "%s", sys.dataset.name.c_str());
        std::snprintf(param, sizeof(param), "b=%.2f/ef=%zu", sys.beta, ef);
        std::printf("%s\n", FormatRow(label, param, point).c_str());
      }
    }
    std::printf("\n");
  }
  std::printf("expected shape (paper): recall ceiling falls as beta grows; "
              "beta=0 reaches ~1.0.\n");
  return 0;
}
