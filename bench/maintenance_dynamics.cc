// Extension experiment for Section V-D (index maintenance): sustained
// insert/delete churn against a 4-shard serving tier — with and without
// tombstone compaction — plus the WAL crash-replay equivalence check. The
// paper discusses the maintenance algorithms but reports no experiment;
// this bench supplies one and doubles as the live-mutation regression gate:
//   * recall@10 after 50% churn must stay within 0.05 of the pre-churn
//     baseline once compaction has collected the tombstones;
//   * a service replayed from WAL after a simulated crash must answer every
//     query with ids identical to the uncrashed run.
// p50/p99 latencies are reported (and land in the JSON artifact) but are
// not gated — wall-clock noise is not a correctness signal in CI.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "core/ppanns_service.h"
#include "core/sharded_database.h"
#include "eval/metrics.h"
#include "index/brute_force.h"

int main() {
  using namespace ppanns;
  using namespace ppanns::bench;

  PrintBanner("Extension: live mutation at scale (Section V-D)",
              "4-shard churn, tombstone compaction, WAL crash replay");

  const std::size_t k = 10;
  const SyntheticKind kind = SyntheticKind::kSiftLike;
  const std::size_t n = std::max<std::size_t>(DefaultN(kind) / 2, 2000);
  // 50% churn: as many mutations as half the corpus, split evenly between
  // inserts (from a reserved pool) and deletes (random live victims).
  const std::size_t churn_ops = n / 2;
  const std::size_t inserts = churn_ops / 2;
  const std::size_t deletes = churn_ops - inserts;

  Dataset ds = MakeOrLoadDataset(kind, n + inserts, DefaultQ(), 0, 616);
  FloatMatrix initial(0, ds.base.dim());
  FloatMatrix pool(0, ds.base.dim());
  for (std::size_t i = 0; i < n; ++i) initial.Append(ds.base.row(i));
  for (std::size_t i = n; i < ds.base.size(); ++i) pool.Append(ds.base.row(i));

  Rng stat_rng(617);
  const DatasetStats stats = ComputeStats(initial, stat_rng);
  PpannsParams params;
  params.dcpe_beta = 0.0;  // isolate maintenance effects from SAP noise
  params.dce_scale_hint = std::max(stats.mean_norm, 1e-3);
  params.hnsw = DefaultHnsw(618);
  params.num_shards = 4;
  params.seed = 618;

  auto owner = DataOwner::Create(ds.base.dim(), params);
  PPANNS_CHECK(owner.ok());

  // One serialized base package; every experiment arm deserializes its own
  // copy, so all arms start from byte-identical state (including identical
  // HNSW graphs — Serialize does not persist the level RNG, which is
  // exactly why crash-replay equivalence compares two loaded-from-base
  // services rather than the original builder).
  BinaryWriter base_writer;
  owner->EncryptAndIndexSharded(initial).Serialize(&base_writer);
  const std::vector<std::uint8_t> base_bytes = base_writer.buffer();
  auto load = [&base_bytes]() {
    BinaryReader r(base_bytes);
    auto db = ShardedEncryptedDatabase::Deserialize(&r);
    PPANNS_CHECK(db.ok());
    return PpannsService{ShardedCloudServer(std::move(*db))};
  };

  QueryClient client(owner->ShareKeys(), 619);
  std::vector<QueryToken> tokens;
  tokens.reserve(ds.queries.size());
  for (std::size_t i = 0; i < ds.queries.size(); ++i) {
    tokens.push_back(client.EncryptQuery(ds.queries.row(i)));
  }
  const SearchSettings settings{.k_prime = 8 * k, .ef_search = 160};

  // Live-membership tracking for exact ground truth; global ids index
  // all_vectors (initial rows are ids 0..n-1, pool row i becomes id n+i —
  // insert routing is deterministic, so the id assignment is too).
  FloatMatrix all_vectors = initial;
  for (std::size_t i = 0; i < pool.size(); ++i) all_vectors.Append(pool.row(i));
  const std::vector<bool> alive0 = [&] {
    std::vector<bool> a(all_vectors.size(), false);
    for (std::size_t i = 0; i < n; ++i) a[i] = true;
    return a;
  }();

  auto measure = [&](PpannsService& svc, const std::vector<bool>& alive) {
    FloatMatrix live(0, ds.base.dim());
    std::vector<VectorId> live_ids;
    for (std::size_t i = 0; i < all_vectors.size(); ++i) {
      if (alive[i]) {
        live.Append(all_vectors.row(i));
        live_ids.push_back(static_cast<VectorId>(i));
      }
    }
    double recall = 0.0;
    std::vector<double> lat_ms;
    lat_ms.reserve(tokens.size());
    for (std::size_t i = 0; i < tokens.size(); ++i) {
      Timer t;
      auto r = svc.Search(tokens[i], k, settings);
      lat_ms.push_back(t.ElapsedMillis());
      PPANNS_CHECK(r.ok());
      auto want = BruteForceKnn(live, ds.queries.row(i), k);
      std::vector<Neighbor> gt;
      gt.reserve(want.size());
      for (const auto& w : want) {
        gt.push_back(Neighbor{live_ids[w.id], w.distance});
      }
      recall += RecallAtK(r->ids, gt, k);
    }
    std::sort(lat_ms.begin(), lat_ms.end());
    auto pct = [&lat_ms](double p) {
      if (lat_ms.empty()) return 0.0;
      const std::size_t idx = static_cast<std::size_t>(
          p * static_cast<double>(lat_ms.size() - 1) + 0.5);
      return lat_ms[std::min(idx, lat_ms.size() - 1)];
    };
    return std::pair<double, std::pair<double, double>>{
        recall / static_cast<double>(tokens.size()), {pct(0.50), pct(0.99)}};
  };

  // One fixed op sequence (seeded), applied identically to every arm:
  // interleaved inserts and deletes in a random 50/50 order.
  auto apply_churn = [&](PpannsService& svc, std::vector<bool>& alive) {
    Rng op_rng(620);
    std::size_t pool_next = 0, deletes_done = 0;
    double insert_ms = 0.0, delete_ms = 0.0;
    while (pool_next < inserts || deletes_done < deletes) {
      bool do_insert;
      if (pool_next >= inserts) {
        do_insert = false;
      } else if (deletes_done >= deletes) {
        do_insert = true;
      } else {
        do_insert = (op_rng.NextUint64() & 1) != 0;
      }
      if (do_insert) {
        EncryptedVector ev = owner->EncryptOne(pool.row(pool_next));
        Timer t;
        auto id = svc.Insert(ev);
        insert_ms += t.ElapsedMillis();
        PPANNS_CHECK(id.ok());
        PPANNS_CHECK(*id == n + pool_next);
        alive[*id] = true;
        ++pool_next;
      } else {
        for (;;) {
          const auto victim = static_cast<VectorId>(op_rng.UniformInt(
              0, static_cast<std::int64_t>(alive.size()) - 1));
          if (!alive[victim]) continue;
          Timer t;
          PPANNS_CHECK(svc.Delete(victim).ok());
          delete_ms += t.ElapsedMillis();
          alive[victim] = false;
          ++deletes_done;
          break;
        }
      }
    }
    return std::pair<double, double>{insert_ms / static_cast<double>(inserts),
                                     delete_ms / static_cast<double>(deletes)};
  };

  // ---- Arm 0: pre-churn baseline.
  PpannsService baseline = load();
  auto [recall_pre, lat_pre] = measure(baseline, alive0);

  // ---- Arm 1: churn, tombstones left in place (the naive server).
  PpannsService naive = std::move(baseline);
  std::vector<bool> alive = alive0;
  auto [insert_ms, delete_ms] = apply_churn(naive, alive);
  auto [recall_naive, lat_naive] = measure(naive, alive);
  double max_tombstones = 0.0;
  for (std::size_t s = 0; s < naive.num_shards(); ++s) {
    max_tombstones =
        std::max(max_tombstones, naive.sharded_server().tombstone_ratio(s));
  }

  // ---- Arm 2: the same churn, then a compaction sweep at threshold 0.1
  // (every shard carries ~20% tombstones after this mix, so all rebuild).
  PpannsService compacted = load();
  std::vector<bool> alive2 = alive0;
  apply_churn(compacted, alive2);
  PPANNS_CHECK(alive == alive2);  // identical op sequences
  ShardedCloudServer::MaintenanceOptions mopts;
  mopts.compact_threshold = 0.1;
  Timer compact_timer;
  const std::size_t compactions =
      compacted.sharded_server_mutable().MaybeCompact(mopts).value();
  const double compact_ms = compact_timer.ElapsedMillis();
  auto [recall_compacted, lat_compacted] = measure(compacted, alive);
  double max_tombstones_after = 0.0;
  for (std::size_t s = 0; s < compacted.num_shards(); ++s) {
    max_tombstones_after = std::max(
        max_tombstones_after, compacted.sharded_server().tombstone_ratio(s));
  }

  std::printf("\ncorpus n=%zu, 4 shards, churn=%zu ops (%zu ins / %zu del), "
              "%zu queries\n", n, churn_ops, inserts, deletes, tokens.size());
  std::printf("churn cost: %.3f ms/insert, %.3f ms/delete; compaction sweep: "
              "%zu shard(s) in %.1f ms\n", insert_ms, delete_ms, compactions,
              compact_ms);
  std::printf("%-22s %10s %10s %10s %12s\n", "arm", "recall@10", "p50_ms",
              "p99_ms", "tombstones");
  std::printf("%-22s %10.4f %10.3f %10.3f %12s\n", "pre-churn", recall_pre,
              lat_pre.first, lat_pre.second, "-");
  std::printf("%-22s %10.4f %10.3f %10.3f %11.1f%%\n", "churn (naive)",
              recall_naive, lat_naive.first, lat_naive.second,
              100.0 * max_tombstones);
  std::printf("%-22s %10.4f %10.3f %10.3f %11.1f%%\n", "churn + compaction",
              recall_compacted, lat_compacted.first, lat_compacted.second,
              100.0 * max_tombstones_after);

  // ---- Arm 3: WAL crash replay. A service with a WAL attached applies the
  // same churn, then "crashes" (no checkpoint). A fresh service loaded from
  // the same base replays the surviving log; its answers must be id-for-id
  // identical to the uncrashed run's.
  const std::string wal_dir = "bench_maintenance_wal";
  std::filesystem::remove_all(wal_dir);
  PpannsService uncrashed = load();
  PPANNS_CHECK(uncrashed.AttachWal(wal_dir).ok());
  std::vector<bool> alive3 = alive0;
  apply_churn(uncrashed, alive3);
  const WalStats wal_stats = uncrashed.wal_stats();

  PpannsService revived = load();
  auto replayed = revived.ReplayWal(wal_dir);
  PPANNS_CHECK(replayed.ok());
  bool replay_ids_equal = true;
  for (const QueryToken& token : tokens) {
    auto a = uncrashed.Search(token, k, settings);
    auto b = revived.Search(token, k, settings);
    PPANNS_CHECK(a.ok() && b.ok());
    if (a->ids != b->ids) replay_ids_equal = false;
  }
  std::filesystem::remove_all(wal_dir);
  std::printf("\nWAL: %zu record(s) replayed across %zu segment(s) "
              "(%zu bytes); crash-replay ids %s the uncrashed run\n",
              *replayed, wal_stats.segments, wal_stats.bytes,
              replay_ids_equal ? "MATCH" : "DIVERGE FROM");

  if (std::FILE* jf = OpenBenchJson("maintenance_dynamics")) {
    std::fprintf(jf,
                 "{\"n\": %zu, \"shards\": 4, \"churn_ops\": %zu,\n"
                 " \"recall_pre\": %.4f, \"recall_naive\": %.4f, "
                 "\"recall_compacted\": %.4f,\n"
                 " \"p50_pre_ms\": %.3f, \"p99_pre_ms\": %.3f,\n"
                 " \"p50_naive_ms\": %.3f, \"p99_naive_ms\": %.3f,\n"
                 " \"p50_compacted_ms\": %.3f, \"p99_compacted_ms\": %.3f,\n"
                 " \"insert_ms\": %.3f, \"delete_ms\": %.3f,\n"
                 " \"compactions\": %zu, \"compact_ms\": %.1f,\n"
                 " \"max_tombstone_ratio\": %.4f, "
                 "\"max_tombstone_ratio_after\": %.4f,\n"
                 " \"wal_records_replayed\": %zu, \"wal_segments\": %zu, "
                 "\"wal_bytes\": %zu,\n"
                 " \"wal_replay_ids_equal\": %s}\n",
                 n, churn_ops, recall_pre, recall_naive, recall_compacted,
                 lat_pre.first, lat_pre.second, lat_naive.first,
                 lat_naive.second, lat_compacted.first, lat_compacted.second,
                 insert_ms, delete_ms, compactions, compact_ms,
                 max_tombstones, max_tombstones_after, *replayed,
                 wal_stats.segments, wal_stats.bytes,
                 replay_ids_equal ? "true" : "false");
    std::fclose(jf);
  }

  // ---- Gates (deterministic quantities only).
  int exit_code = 0;
  if (!replay_ids_equal) {
    std::fprintf(stderr, "FAIL: WAL crash replay diverged from the uncrashed "
                 "run\n");
    exit_code = 1;
  }
  if (recall_compacted < recall_pre - 0.05) {
    std::fprintf(stderr, "FAIL: recall@10 after churn + compaction (%.4f) "
                 "fell more than 0.05 below the pre-churn baseline (%.4f)\n",
                 recall_compacted, recall_pre);
    exit_code = 1;
  }
  if (compactions == 0) {
    std::fprintf(stderr, "FAIL: the compaction sweep rebuilt no shard at "
                 "threshold %.2f despite ~%.0f%% tombstones\n",
                 mopts.compact_threshold, 100.0 * max_tombstones);
    exit_code = 1;
  }
  std::printf("\ntakeaway: 50%% churn costs recall while tombstones sit in "
              "the graphs; one compaction sweep rebuilds the dirty shards "
              "off the serving path and restores the pre-churn operating "
              "point, and the WAL makes the whole mutation stream "
              "crash-recoverable without re-encryption.\n");
  return exit_code;
}
