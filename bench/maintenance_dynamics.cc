// Extension experiment for Section V-D (index maintenance): sustained
// insert/delete churn on the encrypted index — insertion latency, deletion
// (repair) latency, and recall stability across churn epochs. The paper
// discusses the maintenance algorithms but reports no experiment; this
// bench supplies one.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "eval/metrics.h"
#include "index/brute_force.h"

int main() {
  using namespace ppanns;
  using namespace ppanns::bench;

  PrintBanner("Extension: index maintenance dynamics (Section V-D)",
              "insert/delete churn on the encrypted index");

  const std::size_t k = 10;
  const SyntheticKind kind = SyntheticKind::kSiftLike;
  const std::size_t n = DefaultN(kind) / 2;
  const std::size_t churn = std::max<std::size_t>(n / 20, 50);

  // Build with an extra pool of vectors reserved for later insertion.
  Dataset ds = MakeOrLoadDataset(kind, n + churn * 4, DefaultQ(), 0, 616);
  FloatMatrix initial(0, ds.base.dim());
  FloatMatrix pool(0, ds.base.dim());
  for (std::size_t i = 0; i < n; ++i) initial.Append(ds.base.row(i));
  for (std::size_t i = n; i < ds.base.size(); ++i) pool.Append(ds.base.row(i));

  Rng rng(617);
  const DatasetStats stats = ComputeStats(initial, rng);
  PpannsParams params;
  params.dcpe_beta = 0.0;  // isolate maintenance effects from SAP noise
  params.dce_scale_hint = std::max(stats.mean_norm, 1e-3);
  params.hnsw = DefaultHnsw(618);
  params.seed = 618;

  auto owner = DataOwner::Create(ds.base.dim(), params);
  PPANNS_CHECK(owner.ok());
  CloudServer server(owner->EncryptAndIndex(initial));
  QueryClient client(owner->ShareKeys(), 619);

  // Live membership tracking for exact ground truth per epoch.
  std::vector<bool> alive(n + pool.size(), false);
  for (std::size_t i = 0; i < n; ++i) alive[i] = true;
  FloatMatrix all_vectors = initial;
  for (std::size_t i = 0; i < pool.size(); ++i) all_vectors.Append(pool.row(i));

  auto measure_recall = [&]() {
    FloatMatrix live(0, ds.base.dim());
    std::vector<VectorId> live_ids;
    for (std::size_t i = 0; i < all_vectors.size(); ++i) {
      if (alive[i]) {
        live.Append(all_vectors.row(i));
        live_ids.push_back(static_cast<VectorId>(i));
      }
    }
    double recall = 0.0;
    for (std::size_t i = 0; i < ds.queries.size(); ++i) {
      QueryToken token = client.EncryptQuery(ds.queries.row(i));
      SearchResult r = server.Search(
          token, k, SearchSettings{.k_prime = 8 * k, .ef_search = 160});
      auto want = BruteForceKnn(live, ds.queries.row(i), k);
      std::vector<Neighbor> gt;
      for (const auto& w : want) gt.push_back(Neighbor{live_ids[w.id], w.distance});
      recall += RecallAtK(r.ids, gt, k);
    }
    return recall / ds.queries.size();
  };

  std::printf("%-8s %10s %14s %14s %10s\n", "epoch", "size", "insert_ms",
              "delete_ms", "recall");
  std::printf("%-8s %10zu %14s %14s %10.4f\n", "0", server.size(), "-", "-",
              measure_recall());

  std::size_t pool_next = 0;
  Rng victim_rng(620);
  for (int epoch = 1; epoch <= 4; ++epoch) {
    // Insert `churn` fresh vectors.
    Timer insert_timer;
    for (std::size_t i = 0; i < churn && pool_next < pool.size(); ++i, ++pool_next) {
      EncryptedVector ev = owner->EncryptOne(pool.row(pool_next));
      const VectorId id = server.Insert(ev);
      alive[id] = true;
    }
    const double insert_ms = insert_timer.ElapsedMillis() / churn;

    // Delete `churn` random live vectors (server-side repair).
    Timer delete_timer;
    std::size_t deleted = 0;
    while (deleted < churn) {
      const auto candidate = static_cast<VectorId>(
          victim_rng.UniformInt(0, static_cast<std::int64_t>(server.index().capacity()) - 1));
      if (!alive[candidate]) continue;
      if (server.Delete(candidate).ok()) {
        alive[candidate] = false;
        ++deleted;
      }
    }
    const double delete_ms = delete_timer.ElapsedMillis() / churn;

    std::printf("%-8d %10zu %14.3f %14.3f %10.4f\n", epoch, server.size(),
                insert_ms, delete_ms, measure_recall());
  }
  std::printf("\ntakeaway: insertions cost one graph-link search; deletions "
              "pay the in-neighbor repair (Section V-D) but recall stays "
              "flat across churn epochs.\n");
  return 0;
}
