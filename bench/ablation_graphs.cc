// Extension experiment: substitute the index's proximity graph, as Section
// V-A says the scheme permits ("our approach can leverage other proximity
// graph-based approaches ... to substitute HNSW"). Compares HNSW vs flat
// NSW built over the SAME SAP ciphertexts as the filter-phase substrate.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "eval/metrics.h"
#include "index/ivf.h"
#include "index/nsw.h"

int main() {
  using namespace ppanns;
  using namespace ppanns::bench;

  PrintBanner("Extension: HNSW vs flat NSW as the filter-phase graph",
              "Section V-A substitutability note");

  const std::size_t k = 10;
  std::printf("%-14s %-8s %-8s %8s %12s\n", "dataset", "graph", "ef",
              "recall", "QPS");
  for (SyntheticKind kind :
       {SyntheticKind::kSiftLike, SyntheticKind::kGloveLike}) {
    const std::size_t n = DefaultN(kind) / 2;
    Dataset ds = MakeOrLoadDataset(kind, n, DefaultQ(), k, /*seed=*/515);
    Rng rng(516);
    const DatasetStats stats = ComputeStats(ds.base, rng);
    const double beta = ChooseBeta(ds, k, 0.5);

    auto dcpe = DcpeScheme::Create(ds.base.dim(), 1024.0, beta);
    PPANNS_CHECK(dcpe.ok());
    FloatMatrix encrypted = dcpe->EncryptMatrix(ds.base, rng);

    HnswIndex hnsw(ds.base.dim(), DefaultHnsw(517));
    hnsw.AddBatch(encrypted);
    NswGraph nsw(ds.base.dim(),
                 NswParams{.m = 24, .ef_construction = 200});
    nsw.AddBatch(encrypted);
    nsw.ReseatEntryPoint(rng);

    // Encrypted queries for both graphs (same SAP key).
    std::vector<std::vector<float>> enc_queries(ds.queries.size(),
                                                std::vector<float>(ds.base.dim()));
    for (std::size_t i = 0; i < ds.queries.size(); ++i) {
      dcpe->Encrypt(ds.queries.row(i), enc_queries[i].data(), rng);
    }

    // IVF over the same ciphertexts (the paper's third index family).
    IvfIndex ivf(ds.base.dim(), IvfParams{.num_lists = 128});
    ivf.Train(encrypted, rng);
    ivf.AddBatch(encrypted);

    for (std::size_t ef : {40u, 80u, 160u}) {
      for (int which = 0; which < 3; ++which) {
        std::vector<std::vector<VectorId>> results;
        Timer t;
        for (std::size_t i = 0; i < ds.queries.size(); ++i) {
          std::vector<Neighbor> res;
          switch (which) {
            case 0:
              res = hnsw.Search(enc_queries[i].data(), k, ef);
              break;
            case 1:
              res = nsw.Search(enc_queries[i].data(), k, ef);
              break;
            default:
              // Map the beam knob to a probe budget of similar selectivity.
              res = ivf.Search(enc_queries[i].data(), k, ef / 10);
              break;
          }
          std::vector<VectorId> ids;
          for (const auto& r : res) ids.push_back(r.id);
          results.push_back(std::move(ids));
        }
        const double secs = t.ElapsedSeconds();
        static const char* kNames[] = {"HNSW", "NSW", "IVF"};
        std::printf("%-14s %-8s %-8zu %8.4f %12.1f\n", ds.name.c_str(),
                    kNames[which], ef,
                    MeanRecallAtK(results, ds.ground_truth, k),
                    ds.queries.size() / secs);
      }
    }
    std::printf("\n");
  }
  std::printf("takeaway: both graphs serve as the filter substrate; HNSW's "
              "hierarchy buys routing speed at equal recall, matching the "
              "paper's choice of HNSW as the default.\n");
  return 0;
}
