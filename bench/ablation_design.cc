// Ablation bench for the design choices DESIGN.md calls out:
//  (a) graph built over SAP ciphertexts vs plaintext vectors (privacy/
//      accuracy cost of the Section V-A choice),
//  (b) comparison-heap refine (O(k' log k) DCE calls) vs naive full sort of
//      the candidate set (O(k' log k') calls),
//  (c) DCE key matrices from the conditioned Q*D construction vs raw
//      Gaussian LU inverses (numerical-robustness rationale in DESIGN.md).

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "core/comparison_heap.h"
#include "eval/metrics.h"

namespace {

using namespace ppanns;
using namespace ppanns::bench;

void AblateGraphSubstrate() {
  std::printf("--- (a) HNSW over SAP ciphertexts vs plaintext ---\n");
  const std::size_t k = 10;
  BenchSystem sys = BuildSystem(SyntheticKind::kSiftLike,
                                DefaultN(SyntheticKind::kSiftLike), DefaultQ(),
                                k, /*seed=*/111);
  const Dataset& ds = sys.dataset;

  HnswIndex plain(ds.base.dim(), DefaultHnsw(111));
  plain.AddBatch(ds.base);

  std::printf("%-22s %8s %8s\n", "graph substrate", "recall", "edges=");
  for (std::size_t ef : {40u, 160u}) {
    std::vector<std::vector<VectorId>> plain_results;
    for (std::size_t i = 0; i < ds.queries.size(); ++i) {
      auto res = plain.Search(ds.queries.row(i), k, ef);
      std::vector<VectorId> ids;
      for (const auto& r : res) ids.push_back(r.id);
      plain_results.push_back(std::move(ids));
    }
    SearchSettings settings{.k_prime = k, .ef_search = ef, .refine = false};
    OperatingPoint enc = MeasureServer(*sys.server, sys.tokens,
                                       ds.ground_truth, k, settings);
    std::printf("plaintext/ef=%-9zu %8.4f\n", ef,
                MeanRecallAtK(plain_results, ds.ground_truth, k));
    std::printf("sap-cipher/ef=%-8zu %8.4f\n", ef, enc.recall);
  }
  std::printf("takeaway: SAP graph costs recall at fixed ef (paper accepts "
              "this and pays it back in the refine phase).\n\n");
}

void AblateRefineStrategy() {
  std::printf("--- (b) comparison-heap refine vs full-sort refine ---\n");
  const std::size_t k = 10;
  BenchSystem sys = BuildSystem(SyntheticKind::kDeepLike,
                                DefaultN(SyntheticKind::kDeepLike), DefaultQ(),
                                k, /*seed=*/112);
  const auto& dce_cts = sys.server->dce_ciphertexts();

  std::printf("%-14s %10s %14s\n", "strategy", "Ratio_k", "DCE comps/query");
  for (std::size_t ratio : {8u, 32u, 128u}) {
    const std::size_t k_prime = ratio * k;
    double heap_comps = 0.0, sort_comps = 0.0;
    for (std::size_t i = 0; i < sys.tokens.size(); ++i) {
      const QueryToken& token = sys.tokens[i];
      SearchSettings settings{
          .k_prime = k_prime,
          .ef_search = std::max<std::size_t>(k_prime, 64),
          .refine = false};
      SearchResult filter = sys.server->Search(token, k_prime, settings);

      // Heap refine (what the scheme does).
      std::size_t heap_count = 0;
      ComparisonHeap heap(k, [&](VectorId a, VectorId b) {
        ++heap_count;
        return DceScheme::Closer(dce_cts[a], dce_cts[b], token.trapdoor);
      });
      for (VectorId id : filter.ids) heap.Offer(id);
      heap.ExtractSorted();
      heap_comps += heap_count;

      // Naive refine: comparison-sort all k' candidates.
      std::size_t sort_count = 0;
      std::vector<VectorId> ids = filter.ids;
      std::sort(ids.begin(), ids.end(), [&](VectorId a, VectorId b) {
        ++sort_count;
        return DceScheme::Closer(dce_cts[a], dce_cts[b], token.trapdoor);
      });
      sort_comps += sort_count;
    }
    std::printf("%-14s %10zu %14.1f\n", "heap", ratio,
                heap_comps / sys.tokens.size());
    std::printf("%-14s %10zu %14.1f\n", "full-sort", ratio,
                sort_comps / sys.tokens.size());
  }
  std::printf("takeaway: the heap does O(k' log k) comparisons vs the "
              "sort's O(k' log k'); the gap widens with Ratio_k.\n\n");
}

void AblateKeyConditioning() {
  std::printf("--- (c) conditioned (Q*D) vs Gaussian+LU key matrices ---\n");
  // Measure DCE sign-agreement on close comparisons under both key styles.
  const std::size_t d = 64;
  Rng rng(113);

  // Style 1: library construction (Q*D). Style 2 emulation: we inflate the
  // conditioning by scaling kv vectors adversarially is not possible from
  // outside the API, so instead we compare against sign decisions at
  // SIFT-scale magnitudes where conditioning matters most.
  for (double scale : {1.0, 255.0}) {
    auto scheme = DceScheme::KeyGen(d, rng, scale * std::sqrt(double(d)));
    PPANNS_CHECK(scheme.ok());
    std::size_t agree = 0, total = 0;
    Rng trial_rng(114);
    for (int t = 0; t < 300; ++t) {
      std::vector<double> o(d), p(d), q(d);
      for (std::size_t i = 0; i < d; ++i) {
        o[i] = trial_rng.Uniform(-scale, scale);
        q[i] = trial_rng.Uniform(-scale, scale);
      }
      p = o;
      p[t % d] += scale * 1e-5;  // near-tie comparison
      double dist_o = 0, dist_p = 0;
      for (std::size_t i = 0; i < d; ++i) {
        dist_o += (o[i] - q[i]) * (o[i] - q[i]);
        dist_p += (p[i] - q[i]) * (p[i] - q[i]);
      }
      if (dist_o == dist_p) continue;
      const DceCiphertext co = scheme->Encrypt(o.data(), trial_rng);
      const DceCiphertext cp = scheme->Encrypt(p.data(), trial_rng);
      const DceTrapdoor tq = scheme->GenTrapdoor(q.data(), trial_rng);
      const double z = DceScheme::DistanceComp(co, cp, tq);
      agree += ((z < 0) == (dist_o < dist_p));
      ++total;
    }
    std::printf("scale=%-8.0f near-tie sign agreement: %zu/%zu\n", scale,
                agree, total);
  }
  std::printf("takeaway: the Q*D keys keep near-tie comparisons exact even "
              "at SIFT magnitudes (relative gaps of 1e-5).\n");
}

}  // namespace

int main() {
  PrintBanner("Ablations: design choices of this implementation",
              "DESIGN.md section 3 (ablation row)");
  AblateGraphSubstrate();
  AblateRefineStrategy();
  AblateKeyConditioning();
  return 0;
}
