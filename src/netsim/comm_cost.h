// Communication and cost accounting for client/server protocols.
//
// The paper's Fig. 7 / Fig. 9 compare where each PP-ANNS system spends its
// time: server compute, user compute, and client<->server communication.
// Our baselines run their real compute on this machine and account
// communication through this simulator: every message adds bytes, every
// synchronous exchange adds a round trip. Simulated wall-clock =
// rounds * RTT + bytes / bandwidth, with a configurable link (defaults:
// 1 Gbps, 1 ms RTT — a same-region cloud link).

#ifndef PPANNS_NETSIM_COMM_COST_H_
#define PPANNS_NETSIM_COMM_COST_H_

#include <cstddef>
#include <cstdint>

namespace ppanns {

/// Link model used to convert traffic into simulated seconds.
struct NetworkModel {
  double bandwidth_bytes_per_sec = 125e6;  ///< 1 Gbps
  double rtt_seconds = 1e-3;               ///< 1 ms round trip
};

/// Accumulates the traffic of one protocol run.
class CommLedger {
 public:
  /// Records a message of `bytes` in either direction.
  void AddMessage(std::size_t bytes) { total_bytes_ += bytes; }
  /// Records one synchronous round trip.
  void AddRound() { ++rounds_; }

  std::size_t total_bytes() const { return total_bytes_; }
  std::size_t rounds() const { return rounds_; }

  double SimulatedSeconds(const NetworkModel& model) const {
    return static_cast<double>(rounds_) * model.rtt_seconds +
           static_cast<double>(total_bytes_) / model.bandwidth_bytes_per_sec;
  }

  void Reset() {
    total_bytes_ = 0;
    rounds_ = 0;
  }

 private:
  std::size_t total_bytes_ = 0;
  std::size_t rounds_ = 0;
};

/// One query's cost breakdown, reported by every end-to-end system so the
/// Fig. 9 bars can be regenerated uniformly.
struct CostBreakdown {
  double server_seconds = 0.0;  ///< measured server-side compute
  double user_seconds = 0.0;    ///< measured user-side compute
  std::size_t comm_bytes = 0;
  std::size_t comm_rounds = 0;

  double TotalSeconds(const NetworkModel& model) const {
    CommLedger ledger;
    ledger.AddMessage(comm_bytes);
    for (std::size_t i = 0; i < comm_rounds; ++i) ledger.AddRound();
    return server_seconds + user_seconds + ledger.SimulatedSeconds(model);
  }

  CostBreakdown& operator+=(const CostBreakdown& other) {
    server_seconds += other.server_seconds;
    user_seconds += other.user_seconds;
    comm_bytes += other.comm_bytes;
    comm_rounds += other.comm_rounds;
    return *this;
  }
};

}  // namespace ppanns

#endif  // PPANNS_NETSIM_COMM_COST_H_
