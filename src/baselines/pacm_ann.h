// PACM-ANN baseline (Zhou, Shi, Fanti — PACMANN, ePrint 2024/1600) —
// Section VII-B.
//
// Architecture: the proximity graph lives on the server, but the *user*
// drives the greedy graph walk: every beam expansion privately fetches the
// expanded node's adjacency list and vector via PIR, in interactive rounds.
//
// Reimplementation per DESIGN.md: the graph walk runs for real over our
// HNSW graph (counting every visited node — this is genuine user-side
// compute); each visited node's fetch is charged one sublinear PIR server
// scan (executed as a real O(sqrt(n)) memory pass, matching PACMANN's
// sublinear PIR) plus the transfer of the node payload, and the walk
// proceeds in batched rounds. This preserves the structural costs Fig. 7 /
// Fig. 9 attribute to PACM-ANN: many interactive rounds and user-side
// distance computations.

#ifndef PPANNS_BASELINES_PACM_ANN_H_
#define PPANNS_BASELINES_PACM_ANN_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/types.h"
#include "index/hnsw.h"
#include "netsim/comm_cost.h"

namespace ppanns {

struct PacmAnnParams {
  HnswParams hnsw;
  std::size_t ef_search = 64;
  std::size_t fetch_batch = 8;     ///< node fetches batched per round
  double pir_expansion = 4.0;      ///< response bytes per plaintext byte
  std::uint64_t seed = 0x9ac;
};

class PacmAnnSystem {
 public:
  struct QueryOutcome {
    std::vector<VectorId> ids;
    CostBreakdown cost;
  };

  static Result<PacmAnnSystem> Build(const FloatMatrix& data,
                                     PacmAnnParams params);

  QueryOutcome Search(const float* q, std::size_t k) const;

  /// Beam width knob (recall/efficiency trade-off, like our ef_search).
  void set_ef_search(std::size_t ef) { params_.ef_search = ef; }

  std::size_t size() const { return index_->size(); }

 private:
  PacmAnnSystem(std::unique_ptr<HnswIndex> index, PacmAnnParams params,
                std::size_t n);

  /// One sublinear PIR evaluation: a real O(sqrt n) memory pass.
  float PirServerScan() const;

  std::unique_ptr<HnswIndex> index_;
  PacmAnnParams params_;
  std::size_t dim_;
  std::vector<float> pir_workload_;  ///< sqrt(n)-sized scan target
};

}  // namespace ppanns

#endif  // PPANNS_BASELINES_PACM_ANN_H_
