#include "baselines/pri_ann.h"

#include <queue>

#include "common/timer.h"

namespace ppanns {

Result<PriAnnSystem> PriAnnSystem::Build(const FloatMatrix& data,
                                         PriAnnParams params) {
  if (data.empty()) return Status::InvalidArgument("PRI-ANN: empty database");
  Rng rng(params.seed);
  auto lsh = std::make_unique<LshIndex>(data.dim(), params.lsh, rng);
  lsh->AddBatch(data);
  return PriAnnSystem(std::move(lsh), params, data.dim(), data.size());
}

float PriAnnSystem::PirServerScan() const {
  // DPF-style PIR evaluates a predicate against every table entry; the
  // equivalent real work here is one pass over a 2n-element array.
  float acc = 0.0f;
  for (const float v : pir_workload_) acc += v * 1.000001f;
  return acc;
}

PriAnnSystem::QueryOutcome PriAnnSystem::Search(const float* q,
                                                std::size_t k) const {
  QueryOutcome out;

  // --- Server: per retrieved table, one PIR scan over the bucket table,
  // then candidate materialization.
  Timer server_timer;
  float sink = 0.0f;
  for (std::size_t t = 0; t < params_.lsh.num_tables; ++t) sink += PirServerScan();
  const std::vector<VectorId> candidates =
      lsh_->Candidates(q, params_.probes_per_table);
  out.cost.server_seconds = server_timer.ElapsedSeconds();
  // Keep the scan from being optimized away.
  if (sink == -1.0f) out.cost.server_seconds += 1.0;

  // --- Communication: single round; PIR queries up (one DPF key per table,
  // ~lambda * log n bits each, approximated at 1 KiB), expanded candidate
  // vectors down.
  out.cost.comm_rounds = 1;
  const std::size_t plain_bytes = candidates.size() * (dim_ * sizeof(float));
  out.cost.comm_bytes =
      params_.lsh.num_tables * 1024 +
      static_cast<std::size_t>(plain_bytes * params_.pir_expansion);

  // --- User: rank the retrieved candidates exactly.
  Timer user_timer;
  std::priority_queue<Neighbor> heap;
  const FloatMatrix& vectors = lsh_->data();
  for (VectorId id : candidates) {
    const float dist = SquaredL2(vectors.row(id), q, dim_);
    if (heap.size() < k) {
      heap.push(Neighbor{id, dist});
    } else if (dist < heap.top().distance) {
      heap.pop();
      heap.push(Neighbor{id, dist});
    }
  }
  out.ids.resize(heap.size());
  for (std::size_t i = heap.size(); i > 0; --i) {
    out.ids[i - 1] = heap.top().id;
    heap.pop();
  }
  out.cost.user_seconds = user_timer.ElapsedSeconds();
  return out;
}

}  // namespace ppanns
