// HNSW-AME — the paper's own ablation baseline (Section VII-B, Fig. 6):
// identical filter phase (HNSW over DCPE/SAP ciphertexts), but the refine
// phase performs its secure distance comparisons with AME instead of DCE.
// Each AME comparison costs O(d^2) vs DCE's O(d), which is where the >=100x
// end-to-end gap comes from.
//
// This class bundles the owner and server halves for benchmarking
// convenience; the trust split is the same as the main scheme.

#ifndef PPANNS_BASELINES_HNSW_AME_H_
#define PPANNS_BASELINES_HNSW_AME_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/types.h"
#include "core/cloud_server.h"
#include "core/keys.h"
#include "crypto/ame.h"

namespace ppanns {

/// Query token for HNSW-AME: SAP ciphertext + AME trapdoor (16 matrices).
struct AmeQueryToken {
  std::vector<float> sap;
  AmeTrapdoor trapdoor;
};

class HnswAmeSystem {
 public:
  /// Encrypts `data` under DCPE + AME and builds the HNSW graph over the
  /// SAP ciphertexts (same graph parameters as the main scheme).
  static Result<HnswAmeSystem> Build(const FloatMatrix& data,
                                     const PpannsParams& params);

  /// User-side query encryption.
  AmeQueryToken EncryptQuery(const float* q);

  /// Server-side filter-and-refine with AME comparisons in the refine heap.
  SearchResult Search(const AmeQueryToken& token, std::size_t k,
                      const SearchSettings& settings = {}) const;

  std::size_t size() const { return index_.size(); }
  const HnswIndex& index() const { return index_; }

 private:
  HnswAmeSystem(HnswIndex index, std::vector<AmeCiphertext> cts,
                std::shared_ptr<AmeScheme> ame, DcpeScheme dcpe,
                std::uint64_t seed)
      : index_(std::move(index)),
        ame_cts_(std::move(cts)),
        ame_(std::move(ame)),
        dcpe_(std::move(dcpe)),
        rng_(seed ^ 0xA3E) {}

  HnswIndex index_;
  std::vector<AmeCiphertext> ame_cts_;
  std::shared_ptr<AmeScheme> ame_;
  DcpeScheme dcpe_;
  Rng rng_;
};

}  // namespace ppanns

#endif  // PPANNS_BASELINES_HNSW_AME_H_
