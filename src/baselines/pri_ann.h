// PRI-ANN baseline (Servan-Schreiber et al., S&P 2022) — Section VII-B.
//
// Architecture: LSH buckets are fetched by the client through single-round
// private information retrieval, so the server learns neither the query nor
// which buckets matched; the user ranks the retrieved candidates locally.
//
// Reimplementation per DESIGN.md: LSH candidate generation and the user-side
// ranking run for real; the PIR layer is modeled by its dominant costs —
// the server performs work linear in the bucket-table size per retrieved
// table (executed as a real memory scan, not a sleep), and responses carry a
// constant ciphertext-expansion factor. One round of communication, as in
// the original (distributed point functions; no server-to-server traffic).

#ifndef PPANNS_BASELINES_PRI_ANN_H_
#define PPANNS_BASELINES_PRI_ANN_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/types.h"
#include "index/lsh.h"
#include "netsim/comm_cost.h"

namespace ppanns {

struct PriAnnParams {
  LshParams lsh;
  std::size_t probes_per_table = 8;
  double pir_expansion = 4.0;  ///< response bytes per plaintext byte
  std::uint64_t seed = 0x9a1;
};

class PriAnnSystem {
 public:
  struct QueryOutcome {
    std::vector<VectorId> ids;
    CostBreakdown cost;
  };

  static Result<PriAnnSystem> Build(const FloatMatrix& data, PriAnnParams params);

  QueryOutcome Search(const float* q, std::size_t k) const;

  std::size_t size() const { return lsh_->size(); }

 private:
  PriAnnSystem(std::unique_ptr<LshIndex> lsh, PriAnnParams params,
               std::size_t dim, std::size_t n)
      : lsh_(std::move(lsh)), params_(params), dim_(dim), n_(n),
        pir_workload_(n * 2, 1.0f) {}

  /// Executes the linear PIR server scan for one table retrieval (real
  /// compute standing in for the DPF evaluation over the bucket table).
  float PirServerScan() const;

  std::unique_ptr<LshIndex> lsh_;
  PriAnnParams params_;
  std::size_t dim_;
  std::size_t n_;
  std::vector<float> pir_workload_;
};

}  // namespace ppanns

#endif  // PPANNS_BASELINES_PRI_ANN_H_
