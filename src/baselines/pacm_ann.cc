#include "baselines/pacm_ann.h"

#include <cmath>

#include "common/timer.h"

namespace ppanns {

PacmAnnSystem::PacmAnnSystem(std::unique_ptr<HnswIndex> index,
                             PacmAnnParams params, std::size_t n)
    : index_(std::move(index)),
      params_(params),
      dim_(index_->dim()),
      pir_workload_(
          static_cast<std::size_t>(std::sqrt(static_cast<double>(n))) * 16 + 16,
          1.0f) {}

Result<PacmAnnSystem> PacmAnnSystem::Build(const FloatMatrix& data,
                                           PacmAnnParams params) {
  if (data.empty()) return Status::InvalidArgument("PACM-ANN: empty database");
  auto index = std::make_unique<HnswIndex>(data.dim(), params.hnsw);
  index->AddBatch(data);
  return PacmAnnSystem(std::move(index), params, data.size());
}

float PacmAnnSystem::PirServerScan() const {
  float acc = 0.0f;
  for (const float v : pir_workload_) acc += v * 1.000001f;
  return acc;
}

PacmAnnSystem::QueryOutcome PacmAnnSystem::Search(const float* q,
                                                  std::size_t k) const {
  QueryOutcome out;

  // --- User: drives the graph walk. The walk itself is the user's compute
  // (distance evaluations on fetched vectors).
  Timer user_timer;
  std::size_t visited = 0;
  const std::vector<Neighbor> result =
      index_->Search(q, k, params_.ef_search, &visited);
  out.cost.user_seconds = user_timer.ElapsedSeconds();
  out.ids.reserve(result.size());
  for (const Neighbor& n : result) out.ids.push_back(n.id);

  // --- Server: one sublinear PIR evaluation per fetched node.
  Timer server_timer;
  float sink = 0.0f;
  for (std::size_t i = 0; i < visited; ++i) sink += PirServerScan();
  out.cost.server_seconds = server_timer.ElapsedSeconds();
  if (sink == -1.0f) out.cost.server_seconds += 1.0;

  // --- Communication: every fetched node ships its vector + adjacency list
  // (PIR-expanded); fetches are batched into interactive rounds.
  const std::size_t node_bytes =
      dim_ * sizeof(float) + params_.hnsw.max_m0() * sizeof(VectorId);
  out.cost.comm_bytes = static_cast<std::size_t>(
      static_cast<double>(visited * node_bytes) * params_.pir_expansion);
  out.cost.comm_rounds =
      (visited + params_.fetch_batch - 1) / params_.fetch_batch;
  return out;
}

}  // namespace ppanns
