// RS-SANN baseline (Peng et al., Information Sciences 2017) — Section VII-B.
//
// Architecture: the database is AES-CTR encrypted (distance-incomparable);
// an LSH index supplies candidates server-side; the *user* downloads the
// encrypted candidates, decrypts them, and performs the refine phase locally.
//
// Reimplementation per DESIGN.md: the LSH index, AES layer, candidate
// lookup, user-side decrypt + exact ranking all execute for real; the
// client<->server link is accounted through netsim (1 round; candidate blobs
// dominate the traffic). This preserves what Fig. 7 / Fig. 9 measure: heavy
// user-side cost and communication that grows with the candidate count
// needed for high recall.

#ifndef PPANNS_BASELINES_RS_SANN_H_
#define PPANNS_BASELINES_RS_SANN_H_

#include <array>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/types.h"
#include "crypto/aes.h"
#include "index/lsh.h"
#include "netsim/comm_cost.h"

namespace ppanns {

struct RsSannParams {
  LshParams lsh;
  std::size_t probes_per_table = 8;  ///< multi-probe budget for recall
  std::uint64_t seed = 0x25;
};

/// End-to-end RS-SANN system (owner + server + user halves bundled for
/// benchmarking; the ciphertext/key separation is preserved internally).
class RsSannSystem {
 public:
  struct QueryOutcome {
    std::vector<VectorId> ids;
    CostBreakdown cost;
  };

  static Result<RsSannSystem> Build(const FloatMatrix& data, RsSannParams params);

  /// Executes one query end-to-end, reporting the cost split.
  /// `probes_override` != SIZE_MAX replaces the configured multiprobe
  /// budget (recall/cost sweep knob).
  QueryOutcome Search(const float* q, std::size_t k,
                      std::size_t probes_override = SIZE_MAX) const;

  std::size_t size() const { return lsh_->size(); }

 private:
  RsSannSystem(std::unique_ptr<LshIndex> lsh, Aes128 aes,
               std::vector<std::vector<std::uint8_t>> blobs, RsSannParams params,
               std::size_t dim)
      : lsh_(std::move(lsh)), aes_(aes), blobs_(std::move(blobs)),
        params_(params), dim_(dim) {}

  std::unique_ptr<LshIndex> lsh_;
  Aes128 aes_;  ///< user-side key; server stores only blobs_
  std::vector<std::vector<std::uint8_t>> blobs_;  ///< AES-CTR ciphertexts
  RsSannParams params_;
  std::size_t dim_;
};

}  // namespace ppanns

#endif  // PPANNS_BASELINES_RS_SANN_H_
