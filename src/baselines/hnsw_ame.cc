#include "baselines/hnsw_ame.h"

#include "common/timer.h"
#include "core/comparison_heap.h"

namespace ppanns {

Result<HnswAmeSystem> HnswAmeSystem::Build(const FloatMatrix& data,
                                           const PpannsParams& params) {
  Rng rng(params.seed);
  Result<DcpeScheme> dcpe =
      DcpeScheme::Create(data.dim(), params.dcpe_s, params.dcpe_beta);
  if (!dcpe.ok()) return dcpe.status();
  Result<AmeScheme> ame =
      AmeScheme::KeyGen(data.dim(), rng, params.dce_scale_hint);
  if (!ame.ok()) return ame.status();
  auto ame_ptr = std::make_shared<AmeScheme>(std::move(*ame));

  HnswIndex index(data.dim(), params.hnsw);
  std::vector<AmeCiphertext> cts;
  cts.reserve(data.size());
  std::vector<float> sap(data.dim());
  for (std::size_t i = 0; i < data.size(); ++i) {
    dcpe->Encrypt(data.row(i), sap.data(), rng);
    index.Add(sap.data());
    cts.push_back(ame_ptr->Encrypt(data.row(i), rng));
  }
  return HnswAmeSystem(std::move(index), std::move(cts), std::move(ame_ptr),
                       std::move(*dcpe), params.seed);
}

AmeQueryToken HnswAmeSystem::EncryptQuery(const float* q) {
  AmeQueryToken token;
  token.sap.resize(index_.dim());
  dcpe_.Encrypt(q, token.sap.data(), rng_);
  token.trapdoor = ame_->GenTrapdoor(q, rng_);
  return token;
}

SearchResult HnswAmeSystem::Search(const AmeQueryToken& token, std::size_t k,
                                   const SearchSettings& settings) const {
  SearchResult result;
  if (k == 0 || index_.size() == 0) return result;
  const std::size_t k_prime =
      settings.k_prime > 0 ? std::max(settings.k_prime, k) : 4 * k;
  const std::size_t ef =
      settings.ef_search > 0 ? settings.ef_search : std::max<std::size_t>(k_prime, 64);

  Timer filter_timer;
  const std::vector<Neighbor> candidates =
      index_.Search(token.sap.data(), k_prime, ef);
  result.counters.filter_seconds = filter_timer.ElapsedSeconds();
  result.counters.filter_candidates = candidates.size();

  if (!settings.refine) {
    const std::size_t out_k = std::min(k, candidates.size());
    for (std::size_t i = 0; i < out_k; ++i) result.ids.push_back(candidates[i].id);
    return result;
  }

  Timer refine_timer;
  std::size_t* comparisons = &result.counters.dce_comparisons;
  ComparisonHeap heap(k, [this, &token, comparisons](VectorId a, VectorId b) {
    ++*comparisons;
    return AmeScheme::Closer(ame_cts_[a], ame_cts_[b], token.trapdoor);
  });
  for (const Neighbor& cand : candidates) heap.Offer(cand.id);
  result.ids = heap.ExtractSorted();
  result.counters.refine_seconds = refine_timer.ElapsedSeconds();
  return result;
}

}  // namespace ppanns
