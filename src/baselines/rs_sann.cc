#include "baselines/rs_sann.h"

#include <algorithm>
#include <queue>

#include "common/timer.h"

namespace ppanns {

Result<RsSannSystem> RsSannSystem::Build(const FloatMatrix& data,
                                         RsSannParams params) {
  if (data.empty()) return Status::InvalidArgument("RS-SANN: empty database");
  Rng rng(params.seed);

  // Owner: derive the AES key, encrypt every vector, build the LSH index.
  std::array<std::uint8_t, Aes128::kKeySize> key{};
  for (auto& b : key) b = static_cast<std::uint8_t>(rng.UniformInt(0, 255));
  Aes128 aes(key);

  auto lsh = std::make_unique<LshIndex>(data.dim(), params.lsh, rng);
  lsh->AddBatch(data);

  std::vector<std::vector<std::uint8_t>> blobs;
  blobs.reserve(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    blobs.push_back(aes.EncryptFloats(/*nonce=*/i, data.row(i), data.dim()));
  }
  return RsSannSystem(std::move(lsh), aes, std::move(blobs), params, data.dim());
}

RsSannSystem::QueryOutcome RsSannSystem::Search(
    const float* q, std::size_t k, std::size_t probes_override) const {
  QueryOutcome out;
  const std::size_t probes = probes_override != static_cast<std::size_t>(-1)
                                 ? probes_override
                                 : params_.probes_per_table;

  // --- Server: LSH bucket lookup -> candidate ids; gather their blobs.
  Timer server_timer;
  const std::vector<VectorId> candidates = lsh_->Candidates(q, probes);
  std::size_t blob_bytes = 0;
  for (VectorId id : candidates) blob_bytes += blobs_[id].size();
  out.cost.server_seconds = server_timer.ElapsedSeconds();

  // --- Communication: query hashes up, candidate blobs + ids down; one
  // synchronous round.
  out.cost.comm_rounds = 1;
  out.cost.comm_bytes = params_.lsh.num_tables * params_.lsh.num_hashes * 8 +
                        blob_bytes + candidates.size() * sizeof(VectorId);

  // --- User: decrypt candidates and rank exactly (the refine phase happens
  // client-side; this is RS-SANN's structural cost).
  Timer user_timer;
  std::vector<float> plain(dim_);
  std::priority_queue<Neighbor> heap;
  for (VectorId id : candidates) {
    aes_.DecryptFloats(id, blobs_[id], plain.data(), dim_);
    const float dist = SquaredL2(plain.data(), q, dim_);
    if (heap.size() < k) {
      heap.push(Neighbor{id, dist});
    } else if (dist < heap.top().distance) {
      heap.pop();
      heap.push(Neighbor{id, dist});
    }
  }
  out.ids.resize(heap.size());
  for (std::size_t i = heap.size(); i > 0; --i) {
    out.ids[i - 1] = heap.top().id;
    heap.pop();
  }
  out.cost.user_seconds = user_timer.ElapsedSeconds();
  return out;
}

}  // namespace ppanns
