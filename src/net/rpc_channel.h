// RpcChannel — one client connection to a ShardServer, shared by every
// RemoteShardClient that dispatches to that endpoint.
//
// Concurrency model: callers (pool workers running hedged dispatches) write
// requests under a mutex and park in Call(); a dedicated reader thread drains
// response frames and routes each to its waiting caller by request id, so
// many scans can be in flight on one connection and each response unblocks
// its caller the moment it arrives — per-shard results stream back as they
// complete instead of being serialized behind each other.
//
// Cancellation: Call() polls the caller's SearchContext (~1 ms cadence)
// while parked. The first observed trip sends one CANCEL frame for the
// request and keeps waiting (briefly) for the response the server still
// owes — which carries the remote scan's partial SearchStats, so a hedge
// loser's wasted remote work is accounted exactly like an in-process one.
//
// Failure: a dead connection fails every parked call with IOError, marks the
// channel unhealthy (dispatchers then skip it like a down replica), and
// stays dead — reconnection is a topology-assembly concern, not a
// mid-query one.

#ifndef PPANNS_NET_RPC_CHANNEL_H_
#define PPANNS_NET_RPC_CHANNEL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/search_context.h"
#include "common/status.h"
#include "net/frame.h"
#include "net/socket.h"
#include "net/wire.h"

namespace ppanns {

class RpcChannel {
 public:
  /// Connects, performs the versioned Hello handshake, and starts the reader
  /// thread. Fails on connect errors, a version-range mismatch, or a
  /// malformed handshake reply.
  static Result<std::shared_ptr<RpcChannel>> Connect(
      const std::string& endpoint);

  ~RpcChannel();
  RpcChannel(const RpcChannel&) = delete;
  RpcChannel& operator=(const RpcChannel&) = delete;

  /// The topology the server advertised in its handshake.
  const HelloOkMessage& server_info() const { return server_info_; }
  const std::string& endpoint() const { return endpoint_; }

  /// False once the connection has died; calls fail fast with IOError.
  bool healthy() const { return healthy_.load(std::memory_order_acquire); }

  /// One filter RPC: sends the request, parks until its response arrives,
  /// polling `ctx` and sending a CANCEL frame on the first observed trip.
  /// IOError on a dead connection or a cancelled call whose response never
  /// came within the grace window.
  Status CallFilter(const FilterRequestMessage& request, SearchContext* ctx,
                    FilterResponseMessage* response);

 private:
  RpcChannel(Socket socket, std::string endpoint, HelloOkMessage info);

  struct PendingCall {
    bool done = false;
    std::vector<std::uint8_t> payload;  ///< raw FilterResponse message body
  };

  void ReaderLoop();
  /// Marks the channel dead and fails every parked call. Idempotent.
  void FailAllPending(const Status& reason);
  Status SendFrame(FrameType type, std::uint64_t request_id,
                   const std::vector<std::uint8_t>& payload);

  Socket socket_;
  const std::string endpoint_;
  HelloOkMessage server_info_;
  std::atomic<bool> healthy_{true};
  Status death_reason_;  ///< guarded by mu_; set once when healthy_ drops

  std::mutex write_mu_;  ///< serializes frame writes (frames must not interleave)

  std::mutex mu_;  ///< guards pending_ and PendingCall bodies
  std::condition_variable cv_;
  std::map<std::uint64_t, PendingCall*> pending_;
  std::atomic<std::uint64_t> next_request_id_{1};

  std::thread reader_;
};

}  // namespace ppanns

#endif  // PPANNS_NET_RPC_CHANNEL_H_
