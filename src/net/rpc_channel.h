// RpcChannel — one client connection to a ShardServer, shared by every
// RemoteShardClient that dispatches to that endpoint.
//
// Concurrency model: callers (pool workers running hedged dispatches) write
// requests under a mutex and park in Call(); a dedicated reader thread drains
// response frames and routes each to its waiting caller by request id, so
// many scans can be in flight on one connection and each response unblocks
// its caller the moment it arrives — per-shard results stream back as they
// complete instead of being serialized behind each other.
//
// Cancellation: Call() polls the caller's SearchContext (~1 ms cadence)
// while parked. The first observed trip sends one CANCEL frame for the
// request and keeps waiting (briefly) for the response the server still
// owes — which carries the remote scan's partial SearchStats, so a hedge
// loser's wasted remote work is accounted exactly like an in-process one.
//
// Failure: a dead connection fails every parked call with IOError, marks the
// channel unhealthy (dispatchers then skip it like a down replica), and
// stays dead — reconnection is a topology-assembly concern, not a
// mid-query one.

#ifndef PPANNS_NET_RPC_CHANNEL_H_
#define PPANNS_NET_RPC_CHANNEL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/search_context.h"
#include "common/status.h"
#include "net/frame.h"
#include "net/socket.h"
#include "net/wire.h"

namespace ppanns {

class RpcChannel {
 public:
  /// Connects, performs the versioned Hello handshake, and starts the reader
  /// thread. Fails on connect errors, a version-range mismatch, or a
  /// malformed handshake reply.
  static Result<std::shared_ptr<RpcChannel>> Connect(
      const std::string& endpoint);

  ~RpcChannel();
  RpcChannel(const RpcChannel&) = delete;
  RpcChannel& operator=(const RpcChannel&) = delete;

  /// The topology the server advertised in its handshake.
  const HelloOkMessage& server_info() const { return server_info_; }
  const std::string& endpoint() const { return endpoint_; }

  /// False once the connection has died; calls fail fast with IOError.
  bool healthy() const { return healthy_.load(std::memory_order_acquire); }

  /// One filter RPC: sends the request, parks until its response arrives,
  /// polling `ctx` and sending a CANCEL frame on the first observed trip.
  /// IOError on a dead connection or a cancelled call whose response never
  /// came within the grace window.
  Status CallFilter(const FilterRequestMessage& request, SearchContext* ctx,
                    FilterResponseMessage* response);

 private:
  RpcChannel(Socket socket, std::string endpoint, HelloOkMessage info);

  struct PendingCall {
    bool done = false;
    std::vector<std::uint8_t> payload;  ///< raw FilterResponse message body
  };

  void ReaderLoop();
  /// Marks the channel dead and fails every parked call. Idempotent.
  void FailAllPending(const Status& reason);
  Status SendFrame(FrameType type, std::uint64_t request_id,
                   const std::vector<std::uint8_t>& payload);

  Socket socket_;
  const std::string endpoint_;
  HelloOkMessage server_info_;
  std::atomic<bool> healthy_{true};
  Status death_reason_;  ///< guarded by mu_; set once when healthy_ drops

  std::mutex write_mu_;  ///< serializes frame writes (frames must not interleave)

  std::mutex mu_;  ///< guards pending_ and PendingCall bodies
  std::condition_variable cv_;
  std::map<std::uint64_t, PendingCall*> pending_;
  std::atomic<std::uint64_t> next_request_id_{1};

  std::thread reader_;
};

/// RpcChannelPool — N parallel RpcChannels (TCP streams) to one endpoint.
///
/// One stream already pipelines many in-flight scans (the reader thread
/// demultiplexes by request id), but it still serializes at the byte level:
/// every large DCE response queues behind its predecessors on the same
/// socket, and one reader thread deserializes all of them. Under a
/// concurrent scatter that head-of-line blocking caps throughput. The pool
/// spreads calls across `pool_size` independent streams — least-inflight
/// pick, ties to the lowest index so a single caller keeps deterministic
/// stream affinity — giving the endpoint pool_size sockets, reader threads,
/// and server-side connection handlers.
///
/// Semantics are unchanged from a bare channel: a CANCEL frame travels on
/// the stream that carries its request (RpcChannel handles that
/// internally), deadline rebasing happens above in RemoteShardClient, and
/// failure degrades per stream — the pool stays healthy while ANY stream
/// lives, so a single dead socket no longer looks like a down replica.
/// Calls on a fully dead pool fail fast with the first stream's death
/// reason. Thread-safe.
class RpcChannelPool {
 public:
  /// Connects `pool_size` (>= 1) streams to the endpoint; fails if any
  /// single connect/handshake fails.
  static Result<std::shared_ptr<RpcChannelPool>> Connect(
      const std::string& endpoint, std::size_t pool_size = 1);

  /// The topology the server advertised (first stream's handshake).
  const HelloOkMessage& server_info() const {
    return streams_.front()->channel->server_info();
  }
  const std::string& endpoint() const {
    return streams_.front()->channel->endpoint();
  }
  std::size_t size() const { return streams_.size(); }

  /// True while at least one stream is alive.
  bool healthy() const;

  /// One filter RPC over the least-loaded live stream.
  Status CallFilter(const FilterRequestMessage& request, SearchContext* ctx,
                    FilterResponseMessage* response);

 private:
  struct Stream {
    std::shared_ptr<RpcChannel> channel;
    /// Calls currently parked on this stream; the dispatch heuristic.
    std::atomic<std::int64_t> inflight{0};
  };

  RpcChannelPool() = default;

  std::vector<std::unique_ptr<Stream>> streams_;
};

}  // namespace ppanns

#endif  // PPANNS_NET_RPC_CHANNEL_H_
