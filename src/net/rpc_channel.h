// RpcChannel — one client connection to a ShardServer, shared by every
// RemoteShardClient that dispatches to that endpoint.
//
// Concurrency model: callers (pool workers running hedged dispatches, the
// owner's mutation path, the pool's health prober) write requests under a
// mutex and park in Call(); a dedicated reader thread drains response frames
// and routes each to its waiting caller by request id, so many RPCs can be
// in flight on one connection and each response unblocks its caller the
// moment it arrives — results stream back as they complete instead of being
// serialized behind each other.
//
// Cancellation: Call() polls the caller's SearchContext (~1 ms cadence)
// while parked. The first observed trip sends one CANCEL frame for the
// request and keeps waiting (briefly) for the response the server still
// owes — which carries the remote scan's partial SearchStats, so a hedge
// loser's wasted remote work is accounted exactly like an in-process one.
// Mutation/info/ping calls pass no context — they are not cancellable.
//
// Failure: a dead connection fails every parked call with IOError, marks the
// channel unhealthy (dispatchers then skip it like a down replica), and
// stays dead. A dead *channel* is not a dead *endpoint*, though —
// RpcChannelPool re-dials dead streams with capped exponential backoff from
// its health thread, so a bounced server rejoins the pool without operator
// intervention.

#ifndef PPANNS_NET_RPC_CHANNEL_H_
#define PPANNS_NET_RPC_CHANNEL_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/search_context.h"
#include "common/status.h"
#include "net/frame.h"
#include "net/socket.h"
#include "net/wire.h"

namespace ppanns {

class RpcChannel {
 public:
  /// Connects, performs the versioned Hello handshake — answering the
  /// server's HMAC challenge with `auth_key` if it sends one — and starts
  /// the reader thread. Fails on connect errors, a version-range mismatch,
  /// a malformed handshake reply, or a challenge arriving with no key to
  /// answer it (FailedPrecondition).
  static Result<std::shared_ptr<RpcChannel>> Connect(
      const std::string& endpoint,
      const std::vector<std::uint8_t>& auth_key = {});

  ~RpcChannel();
  RpcChannel(const RpcChannel&) = delete;
  RpcChannel& operator=(const RpcChannel&) = delete;

  /// The topology the server advertised in its handshake.
  const HelloOkMessage& server_info() const { return server_info_; }
  const std::string& endpoint() const { return endpoint_; }
  /// The protocol version the handshake settled on; mutation/info/health
  /// frames require >= 2.
  std::uint32_t negotiated_version() const { return server_info_.version; }

  /// False once the connection has died; calls fail fast with IOError.
  bool healthy() const { return healthy_.load(std::memory_order_acquire); }
  /// Why the channel died (OK while healthy). Thread-safe.
  Status death_reason() const;

  /// One filter RPC: sends the request, parks until its response arrives,
  /// polling `ctx` and sending a CANCEL frame on the first observed trip.
  /// IOError on a dead connection or a cancelled call whose response never
  /// came within the grace window.
  Status CallFilter(const FilterRequestMessage& request, SearchContext* ctx,
                    FilterResponseMessage* response);

  /// One mutation RPC (`type` is kInsertRequest / kDeleteRequest /
  /// kMaintenanceRequest, `payload` its serialized message). Not
  /// cancellable — a mutation in flight must run to its response.
  Status CallMutation(FrameType type, const std::vector<std::uint8_t>& payload,
                      MutationResponseMessage* response);

  /// One info snapshot RPC (empty request payload).
  Status CallInfo(InfoResponseMessage* response);

  /// One health probe; the Pong carries the server's current state_version.
  Status CallPing(PongMessage* response);

 private:
  RpcChannel(Socket socket, std::string endpoint, HelloOkMessage info);

  struct PendingCall {
    bool done = false;
    FrameType type = FrameType::kFilterResponse;  ///< what actually arrived
    std::vector<std::uint8_t> payload;            ///< raw response body
  };

  void ReaderLoop();
  /// Marks the channel dead and fails every parked call. Idempotent.
  void FailAllPending(const Status& reason);
  Status SendFrame(FrameType type, std::uint64_t request_id,
                   const std::vector<std::uint8_t>& payload);
  /// The request/response core every typed Call* wraps: send `request_type`
  /// with `payload`, park for the response, verify it is `expected`, hand
  /// back its raw body. `ctx` may be null (not cancellable).
  Status Call(FrameType request_type, const std::vector<std::uint8_t>& payload,
              FrameType expected, SearchContext* ctx,
              std::vector<std::uint8_t>* response_payload);

  Socket socket_;
  const std::string endpoint_;
  HelloOkMessage server_info_;
  std::atomic<bool> healthy_{true};
  Status death_reason_;  ///< guarded by mu_; set once when healthy_ drops

  std::mutex write_mu_;  ///< serializes frame writes (frames must not interleave)

  mutable std::mutex mu_;  ///< guards pending_ and PendingCall bodies
  std::condition_variable cv_;
  std::map<std::uint64_t, PendingCall*> pending_;
  std::atomic<std::uint64_t> next_request_id_{1};

  std::thread reader_;
};

/// RpcChannelPool — N parallel RpcChannels (TCP streams) to one endpoint,
/// self-healing.
///
/// One stream already pipelines many in-flight scans (the reader thread
/// demultiplexes by request id), but it still serializes at the byte level:
/// every large DCE response queues behind its predecessors on the same
/// socket, and one reader thread deserializes all of them. Under a
/// concurrent scatter that head-of-line blocking caps throughput. The pool
/// spreads calls across `pool_size` independent streams — least-inflight
/// pick, ties to the lowest index so a single caller keeps deterministic
/// stream affinity — giving the endpoint pool_size sockets, reader threads,
/// and server-side connection handlers.
///
/// Self-healing (Options::health_interval_ms > 0): a background thread
/// pings every live stream each interval — so `healthy()` tracks real
/// server liveness, which is what flips the gather's down flags instead of
/// a manual `--down` — and re-dials dead streams with capped exponential
/// backoff (100 ms doubling to 2 s), so a bounced server rejoins the pool
/// automatically. Each Pong's state_version is folded into the shared
/// `epoch_fence` (monotonic max), propagating server-side structural
/// epochs into the gather's cache invalidation between mutations.
///
/// Semantics are unchanged from a bare channel: a CANCEL frame travels on
/// the stream that carries its request (RpcChannel handles that
/// internally), deadline rebasing happens above in RemoteShardClient, and
/// failure degrades per stream — the pool stays healthy while ANY stream
/// lives. Calls on a fully dead pool fail fast with the most recent
/// diagnosable death reason: a non-EOF error (connect refused, protocol
/// violation) is kept in preference to the generic "connection closed", so
/// a failing re-dial stays visible in the error. Thread-safe.
class RpcChannelPool {
 public:
  struct Options {
    std::size_t pool_size = 1;
    /// Shared auth key for every (re-)dial; empty = unauthenticated.
    std::vector<std::uint8_t> auth_key;
    /// Health-probe and re-dial cadence; 0 disables the health thread
    /// (streams then stay dead once failed, the pre-PR-10 behavior).
    int health_interval_ms = 0;
    /// When set, every Pong's state_version is max-folded into this fence.
    std::shared_ptr<std::atomic<std::uint64_t>> epoch_fence;
  };

  /// Connects `pool_size` (>= 1) streams to the endpoint; fails if any
  /// single connect/handshake fails.
  static Result<std::shared_ptr<RpcChannelPool>> Connect(
      const std::string& endpoint, std::size_t pool_size = 1);
  static Result<std::shared_ptr<RpcChannelPool>> Connect(
      const std::string& endpoint, const Options& options);

  ~RpcChannelPool();
  RpcChannelPool(const RpcChannelPool&) = delete;
  RpcChannelPool& operator=(const RpcChannelPool&) = delete;

  /// The topology the server advertised (first stream's handshake,
  /// snapshotted at connect time — stable across re-dials).
  const HelloOkMessage& server_info() const { return server_info_; }
  const std::string& endpoint() const { return endpoint_; }
  std::size_t size() const { return streams_.size(); }
  /// Streams currently connected and healthy (the operator-facing pool
  /// health number).
  std::size_t live_streams() const;

  /// True while at least one stream is alive.
  bool healthy() const;
  /// The most recent diagnosable death reason (OK while any stream lives).
  Status last_death_reason() const;

  /// One filter RPC over the least-loaded live stream.
  Status CallFilter(const FilterRequestMessage& request, SearchContext* ctx,
                    FilterResponseMessage* response);
  /// One mutation RPC over the least-loaded live stream.
  Status CallMutation(FrameType type, const std::vector<std::uint8_t>& payload,
                      MutationResponseMessage* response);
  /// One info snapshot over the least-loaded live stream.
  Status CallInfo(InfoResponseMessage* response);

 private:
  struct Stream {
    /// Replaced wholesale by the health thread on a successful re-dial;
    /// read under streams_mu_ (callers copy the shared_ptr out).
    std::shared_ptr<RpcChannel> channel;
    /// Calls currently parked on this stream; the dispatch heuristic.
    std::atomic<std::int64_t> inflight{0};
    /// Re-dial backoff state; touched only by the health thread.
    std::chrono::milliseconds backoff{0};
    std::chrono::steady_clock::time_point next_redial{};
    bool reported_dead = false;  ///< death reason already recorded
  };

  RpcChannelPool() = default;

  void HealthLoop();
  void NoteDeath(const Status& reason);
  std::shared_ptr<RpcChannel> ChannelAt(std::size_t i) const;
  /// Least-inflight live stream, or null when every stream is dead.
  Stream* PickLive(std::shared_ptr<RpcChannel>* channel);

  std::string endpoint_;
  HelloOkMessage server_info_;
  Options options_;

  mutable std::mutex streams_mu_;  ///< guards Stream::channel pointers
  std::vector<std::unique_ptr<Stream>> streams_;

  mutable std::mutex death_mu_;
  Status last_death_reason_;  ///< most recent non-EOF-preferred reason

  std::atomic<bool> stop_health_{false};
  std::mutex health_mu_;
  std::condition_variable health_cv_;
  std::thread health_thread_;
};

}  // namespace ppanns

#endif  // PPANNS_NET_RPC_CHANNEL_H_
