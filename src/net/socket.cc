#include "net/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <string>

namespace ppanns {

namespace {

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Status Socket::WriteAll(const std::uint8_t* data, std::size_t n) {
  std::size_t sent = 0;
  while (sent < n) {
    // MSG_NOSIGNAL: a peer that vanished mid-write must surface as a Status,
    // not kill the process with SIGPIPE.
    const ssize_t w = ::send(fd_, data + sent, n - sent, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Errno("socket write");
    }
    if (w == 0) return Status::IOError("socket write: connection closed");
    sent += static_cast<std::size_t>(w);
  }
  return Status::OK();
}

Status Socket::ReadExact(std::uint8_t* data, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd_, data + got, n - got, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Errno("socket read");
    }
    if (r == 0) return Status::IOError("socket read: connection closed");
    got += static_cast<std::size_t>(r);
  }
  return Status::OK();
}

void Socket::SetNoDelay() {
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void Socket::Shutdown() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<Socket> ConnectTcp(const std::string& endpoint) {
  const std::size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos || colon + 1 >= endpoint.size()) {
    return Status::InvalidArgument("endpoint '" + endpoint +
                                   "' is not host:port");
  }
  std::string host = endpoint.substr(0, colon);
  const std::string port_str = endpoint.substr(colon + 1);
  char* end = nullptr;
  const unsigned long port = std::strtoul(port_str.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || port == 0 || port > 65535) {
    return Status::InvalidArgument("endpoint '" + endpoint +
                                   "' has an invalid port");
  }
  if (host == "localhost") host = "127.0.0.1";

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("endpoint '" + endpoint +
                                   "' is not an IPv4 address");
  }

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  Socket sock(fd);
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) return Errno("connect to " + endpoint);
  sock.SetNoDelay();
  return sock;
}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
  }
  return *this;
}

Result<Listener> Listener::Bind(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  Listener listener;
  listener.fd_ = fd;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    return Errno("bind to 127.0.0.1:" + std::to_string(port));
  }
  if (::listen(fd, 16) < 0) return Errno("listen");

  // Report the kernel-chosen port when the caller asked for an ephemeral one.
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    return Errno("getsockname");
  }
  listener.port_ = ntohs(bound.sin_port);
  return listener;
}

Result<Socket> Listener::Accept() {
  for (;;) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      Socket sock(fd);
      sock.SetNoDelay();
      return sock;
    }
    if (errno == EINTR) continue;
    return Errno("accept");
  }
}

void Listener::Shutdown() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Listener::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace ppanns
