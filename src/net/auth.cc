#include "net/auth.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <random>

#include "common/io.h"

namespace ppanns {
namespace {

// FIPS 180-4 section 4.2.2 round constants.
constexpr std::uint32_t kK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

inline std::uint32_t Rotr(std::uint32_t x, int s) {
  return (x >> s) | (x << (32 - s));
}

/// Incremental SHA-256 over 64-byte blocks; enough state for HMAC's
/// two-pass structure without heap allocation.
struct Sha256State {
  std::uint32_t h[8] = {0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
                        0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};
  std::uint8_t block[64];
  std::size_t block_len = 0;
  std::uint64_t total_bytes = 0;

  void Compress(const std::uint8_t* p) {
    std::uint32_t w[64];
    for (int i = 0; i < 16; ++i) {
      w[i] = (std::uint32_t{p[4 * i]} << 24) | (std::uint32_t{p[4 * i + 1]} << 16) |
             (std::uint32_t{p[4 * i + 2]} << 8) | std::uint32_t{p[4 * i + 3]};
    }
    for (int i = 16; i < 64; ++i) {
      const std::uint32_t s0 =
          Rotr(w[i - 15], 7) ^ Rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
      const std::uint32_t s1 =
          Rotr(w[i - 2], 17) ^ Rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
      w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }
    std::uint32_t a = h[0], b = h[1], c = h[2], d = h[3];
    std::uint32_t e = h[4], f = h[5], g = h[6], hh = h[7];
    for (int i = 0; i < 64; ++i) {
      const std::uint32_t s1 = Rotr(e, 6) ^ Rotr(e, 11) ^ Rotr(e, 25);
      const std::uint32_t ch = (e & f) ^ (~e & g);
      const std::uint32_t t1 = hh + s1 + ch + kK[i] + w[i];
      const std::uint32_t s0 = Rotr(a, 2) ^ Rotr(a, 13) ^ Rotr(a, 22);
      const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
      const std::uint32_t t2 = s0 + maj;
      hh = g;
      g = f;
      f = e;
      e = d + t1;
      d = c;
      c = b;
      b = a;
      a = t1 + t2;
    }
    h[0] += a;
    h[1] += b;
    h[2] += c;
    h[3] += d;
    h[4] += e;
    h[5] += f;
    h[6] += g;
    h[7] += hh;
  }

  void Update(const std::uint8_t* data, std::size_t n) {
    total_bytes += n;
    while (n > 0) {
      if (block_len == 0 && n >= 64) {
        Compress(data);
        data += 64;
        n -= 64;
        continue;
      }
      const std::size_t take = std::min<std::size_t>(64 - block_len, n);
      std::memcpy(block + block_len, data, take);
      block_len += take;
      data += take;
      n -= take;
      if (block_len == 64) {
        Compress(block);
        block_len = 0;
      }
    }
  }

  std::array<std::uint8_t, kAuthDigestBytes> Final() {
    const std::uint64_t bit_len = total_bytes * 8;
    const std::uint8_t pad = 0x80;
    Update(&pad, 1);
    const std::uint8_t zero = 0;
    while (block_len != 56) Update(&zero, 1);
    std::uint8_t len_be[8];
    for (int i = 0; i < 8; ++i) {
      len_be[i] = static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
    }
    Update(len_be, 8);
    std::array<std::uint8_t, kAuthDigestBytes> out;
    for (int i = 0; i < 8; ++i) {
      out[4 * i] = static_cast<std::uint8_t>(h[i] >> 24);
      out[4 * i + 1] = static_cast<std::uint8_t>(h[i] >> 16);
      out[4 * i + 2] = static_cast<std::uint8_t>(h[i] >> 8);
      out[4 * i + 3] = static_cast<std::uint8_t>(h[i]);
    }
    return out;
  }
};

}  // namespace

std::array<std::uint8_t, kAuthDigestBytes> Sha256(const std::uint8_t* data,
                                                  std::size_t n) {
  Sha256State state;
  state.Update(data, n);
  return state.Final();
}

std::array<std::uint8_t, kAuthDigestBytes> HmacSha256(
    const std::vector<std::uint8_t>& key, const std::uint8_t* msg,
    std::size_t n) {
  constexpr std::size_t kBlock = 64;
  std::uint8_t k0[kBlock] = {};
  if (key.size() > kBlock) {
    const auto digest = Sha256(key.data(), key.size());
    std::memcpy(k0, digest.data(), digest.size());
  } else if (!key.empty()) {
    std::memcpy(k0, key.data(), key.size());
  }
  std::uint8_t ipad[kBlock], opad[kBlock];
  for (std::size_t i = 0; i < kBlock; ++i) {
    ipad[i] = static_cast<std::uint8_t>(k0[i] ^ 0x36);
    opad[i] = static_cast<std::uint8_t>(k0[i] ^ 0x5c);
  }
  Sha256State inner;
  inner.Update(ipad, kBlock);
  inner.Update(msg, n);
  const auto inner_digest = inner.Final();
  Sha256State outer;
  outer.Update(opad, kBlock);
  outer.Update(inner_digest.data(), inner_digest.size());
  return outer.Final();
}

bool ConstantTimeEqual(const std::uint8_t* a, const std::uint8_t* b,
                       std::size_t n) {
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < n; ++i) diff |= static_cast<std::uint8_t>(a[i] ^ b[i]);
  return diff == 0;
}

std::array<std::uint8_t, kAuthDigestBytes> MakeAuthNonce() {
  static std::atomic<std::uint64_t> counter{0};
  std::random_device rd;
  std::uint8_t seed[kAuthDigestBytes + 8];
  for (std::size_t i = 0; i < kAuthDigestBytes; i += 4) {
    const std::uint32_t r = rd();
    std::memcpy(seed + i, &r, 4);
  }
  const std::uint64_t c = counter.fetch_add(1, std::memory_order_relaxed);
  std::memcpy(seed + kAuthDigestBytes, &c, 8);
  return Sha256(seed, sizeof(seed));
}

Result<std::vector<std::uint8_t>> LoadAuthKey(const std::string& path) {
  auto blob = ReadFile(path);
  if (!blob.ok()) return blob.status();
  std::vector<std::uint8_t> key = std::move(*blob);
  if (!key.empty() && key.back() == '\n') key.pop_back();
  if (!key.empty() && key.back() == '\r') key.pop_back();
  if (key.empty()) {
    return Status::InvalidArgument("auth key file is empty: " + path);
  }
  return key;
}

}  // namespace ppanns
