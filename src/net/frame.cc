#include "net/frame.h"

#include <cstring>
#include <string>

#include "net/socket.h"

namespace ppanns {

bool KnownFrameType(std::uint8_t raw) {
  switch (static_cast<FrameType>(raw)) {
    case FrameType::kHello:
    case FrameType::kHelloOk:
    case FrameType::kFilterRequest:
    case FrameType::kFilterResponse:
    case FrameType::kCancel:
    case FrameType::kInsertRequest:
    case FrameType::kDeleteRequest:
    case FrameType::kMaintenanceRequest:
    case FrameType::kMutationResponse:
    case FrameType::kInfoRequest:
    case FrameType::kInfoResponse:
    case FrameType::kPing:
    case FrameType::kPong:
    case FrameType::kAuthChallenge:
    case FrameType::kAuthResponse:
      return true;
  }
  return false;
}

const char* FrameTypeName(FrameType type) {
  switch (type) {
    case FrameType::kHello:
      return "hello";
    case FrameType::kHelloOk:
      return "hello_ok";
    case FrameType::kFilterRequest:
      return "filter_request";
    case FrameType::kFilterResponse:
      return "filter_response";
    case FrameType::kCancel:
      return "cancel";
    case FrameType::kInsertRequest:
      return "insert_request";
    case FrameType::kDeleteRequest:
      return "delete_request";
    case FrameType::kMaintenanceRequest:
      return "maintenance_request";
    case FrameType::kMutationResponse:
      return "mutation_response";
    case FrameType::kInfoRequest:
      return "info_request";
    case FrameType::kInfoResponse:
      return "info_response";
    case FrameType::kPing:
      return "ping";
    case FrameType::kPong:
      return "pong";
    case FrameType::kAuthChallenge:
      return "auth_challenge";
    case FrameType::kAuthResponse:
      return "auth_response";
  }
  return "unknown";
}

void EncodeFrame(const Frame& frame, BinaryWriter* out) {
  const std::uint32_t length =
      static_cast<std::uint32_t>(kFrameFixedBytes + frame.payload.size());
  out->Put<std::uint32_t>(length);
  out->Put<std::uint8_t>(static_cast<std::uint8_t>(frame.type));
  out->Put<std::uint64_t>(frame.request_id);
  out->PutBytes(frame.payload.data(), frame.payload.size());
}

Status DecodeFrame(const std::uint8_t* data, std::size_t size, Frame* out,
                   std::size_t* consumed) {
  if (size < kFrameLengthBytes) {
    return Status::OutOfRange("frame: truncated length prefix");
  }
  std::uint32_t length = 0;
  std::memcpy(&length, data, sizeof(length));
  if (length < kFrameFixedBytes) {
    return Status::IOError("frame: declared length " + std::to_string(length) +
                           " is below the fixed header size");
  }
  if (length > kMaxFrameBytes) {
    return Status::IOError("frame: declared length " + std::to_string(length) +
                           " exceeds the " + std::to_string(kMaxFrameBytes) +
                           "-byte frame cap");
  }
  if (size - kFrameLengthBytes < length) {
    return Status::OutOfRange("frame: truncated body (declared " +
                              std::to_string(length) + " bytes, have " +
                              std::to_string(size - kFrameLengthBytes) + ")");
  }
  const std::uint8_t* body = data + kFrameLengthBytes;
  const std::uint8_t raw_type = body[0];
  if (!KnownFrameType(raw_type)) {
    return Status::IOError("frame: unknown frame type " +
                           std::to_string(raw_type));
  }
  out->type = static_cast<FrameType>(raw_type);
  std::memcpy(&out->request_id, body + 1, sizeof(out->request_id));
  const std::size_t payload_size = length - kFrameFixedBytes;
  out->payload.assign(body + kFrameFixedBytes,
                      body + kFrameFixedBytes + payload_size);
  if (consumed != nullptr) *consumed = kFrameLengthBytes + length;
  return Status::OK();
}

Status ReadFrame(Socket* socket, Frame* out) {
  std::uint8_t len_bytes[kFrameLengthBytes];
  PPANNS_RETURN_IF_ERROR(socket->ReadExact(len_bytes, sizeof(len_bytes)));
  std::uint32_t length = 0;
  std::memcpy(&length, len_bytes, sizeof(length));
  if (length < kFrameFixedBytes || length > kMaxFrameBytes) {
    return Status::IOError("frame: declared length " + std::to_string(length) +
                           " outside protocol bounds");
  }
  std::vector<std::uint8_t> buf(kFrameLengthBytes + length);
  std::memcpy(buf.data(), len_bytes, kFrameLengthBytes);
  PPANNS_RETURN_IF_ERROR(
      socket->ReadExact(buf.data() + kFrameLengthBytes, length));
  return DecodeFrame(buf.data(), buf.size(), out);
}

}  // namespace ppanns
