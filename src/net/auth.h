// Shared-key connection authentication for PP-RPC.
//
// The serving tier binds to loopback, but a production deployment puts the
// gather and the shard servers on different hosts — the listener must be
// able to refuse strangers before a single request frame is parsed. The
// mechanism is a classic HMAC challenge–response over a pre-shared key
// (`--auth-key-file` on both binaries):
//
//   client            server
//     | ---- hello ---->|
//     |<-- challenge ---|   32 random bytes, fresh per connection
//     | --- response -->|   HMAC-SHA256(key, nonce)
//     |<-- hello_ok ----|   (or silent teardown on a bad MAC)
//
// The key never crosses the wire, a response replayed from one connection
// is useless on another (fresh nonce), and an unkeyed server skips the
// exchange entirely so existing deployments keep working. This
// authenticates the peer; it does not encrypt the stream — the payloads
// are ciphertexts already (that is the point of the scheme), so transport
// privacy is TLS's job when it arrives.
//
// SHA-256 and HMAC are implemented here from the FIPS 180-4 / RFC 2104
// definitions: the repo takes no crypto dependency and src/crypto/ has no
// hash primitive to reuse (pinned against RFC 4231 vectors in
// tests/net/auth_test.cc).

#ifndef PPANNS_NET_AUTH_H_
#define PPANNS_NET_AUTH_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace ppanns {

/// Digest width of SHA-256; also the auth nonce and MAC length on the wire.
inline constexpr std::size_t kAuthDigestBytes = 32;

/// One-shot SHA-256 (FIPS 180-4) of `n` bytes at `data`.
std::array<std::uint8_t, kAuthDigestBytes> Sha256(const std::uint8_t* data,
                                                  std::size_t n);

/// HMAC-SHA256 (RFC 2104) of `n` bytes at `msg` under `key` (any length;
/// keys longer than the 64-byte block are pre-hashed per the RFC).
std::array<std::uint8_t, kAuthDigestBytes> HmacSha256(
    const std::vector<std::uint8_t>& key, const std::uint8_t* msg,
    std::size_t n);

/// Constant-time equality over `n` bytes — MAC comparison must not leak a
/// matching prefix through timing.
bool ConstantTimeEqual(const std::uint8_t* a, const std::uint8_t* b,
                       std::size_t n);

/// A fresh 32-byte challenge nonce (std::random_device mixed with a
/// process-wide counter, so even a weak random_device never repeats within
/// a process).
std::array<std::uint8_t, kAuthDigestBytes> MakeAuthNonce();

/// Loads the shared key from `path`: the raw file bytes with one trailing
/// newline (LF or CRLF) stripped, so `echo secret > key` works. Empty keys
/// are refused — an empty file authenticates nobody.
Result<std::vector<std::uint8_t>> LoadAuthKey(const std::string& path);

}  // namespace ppanns

#endif  // PPANNS_NET_AUTH_H_
