#include "net/wire.h"

#include <string>

#include "net/frame.h"

namespace ppanns {

namespace {

/// The highest Status::Code value the protocol can carry; a response naming
/// anything above this was corrupted (or written by a newer peer than the
/// negotiated version allows).
constexpr std::uint8_t kMaxStatusCode =
    static_cast<std::uint8_t>(Status::Code::kResourceExhausted);
constexpr std::uint8_t kMaxEarlyExit =
    static_cast<std::uint8_t>(EarlyExit::kBudgetExhausted);

Status FromWireCode(std::uint8_t code, const std::string& message) {
  switch (static_cast<Status::Code>(code)) {
    case Status::Code::kOk:
      return Status::OK();
    case Status::Code::kInvalidArgument:
      return Status::InvalidArgument(message);
    case Status::Code::kNotFound:
      return Status::NotFound(message);
    case Status::Code::kOutOfRange:
      return Status::OutOfRange(message);
    case Status::Code::kFailedPrecondition:
      return Status::FailedPrecondition(message);
    case Status::Code::kInternal:
      return Status::Internal(message);
    case Status::Code::kIOError:
      return Status::IOError(message);
    case Status::Code::kNotSupported:
      return Status::NotSupported(message);
    case Status::Code::kDeadlineExceeded:
      return Status::DeadlineExceeded(message);
    case Status::Code::kResourceExhausted:
      return Status::ResourceExhausted(message);
  }
  return Status::Internal("wire: unrepresentable status code " +
                          std::to_string(code));
}

}  // namespace

// ---- HelloMessage -----------------------------------------------------------

void HelloMessage::Serialize(BinaryWriter* out) const {
  out->Put<std::uint32_t>(magic);
  out->Put<std::uint32_t>(version_min);
  out->Put<std::uint32_t>(version_max);
}

Result<HelloMessage> HelloMessage::Deserialize(BinaryReader* in) {
  HelloMessage msg;
  PPANNS_RETURN_IF_ERROR(in->Get(&msg.magic));
  PPANNS_RETURN_IF_ERROR(in->Get(&msg.version_min));
  PPANNS_RETURN_IF_ERROR(in->Get(&msg.version_max));
  if (msg.magic != kProtocolMagic) {
    return Status::IOError("hello: bad protocol magic");
  }
  if (msg.version_min > msg.version_max) {
    return Status::IOError("hello: inverted version range");
  }
  return msg;
}

std::size_t HelloMessage::ByteSize() const { return 3 * sizeof(std::uint32_t); }

// ---- HelloOkMessage ---------------------------------------------------------

void HelloOkMessage::Serialize(BinaryWriter* out) const {
  out->Put<std::uint32_t>(version);
  out->Put<std::uint32_t>(num_shards);
  out->Put<std::uint32_t>(num_replicas);
  out->Put<std::uint64_t>(dim);
  out->Put<std::uint8_t>(index_kind);
  out->Put<std::uint64_t>(size);
  out->Put<std::uint64_t>(capacity);
  out->Put<std::uint64_t>(storage_bytes);
  out->PutVector(served_shards);
  // v2 field, appended last so a v1 peer's byte stream is untouched.
  if (version >= 2) out->Put<std::uint64_t>(state_version);
}

Result<HelloOkMessage> HelloOkMessage::Deserialize(BinaryReader* in) {
  HelloOkMessage msg;
  PPANNS_RETURN_IF_ERROR(in->Get(&msg.version));
  PPANNS_RETURN_IF_ERROR(in->Get(&msg.num_shards));
  PPANNS_RETURN_IF_ERROR(in->Get(&msg.num_replicas));
  PPANNS_RETURN_IF_ERROR(in->Get(&msg.dim));
  PPANNS_RETURN_IF_ERROR(in->Get(&msg.index_kind));
  PPANNS_RETURN_IF_ERROR(in->Get(&msg.size));
  PPANNS_RETURN_IF_ERROR(in->Get(&msg.capacity));
  PPANNS_RETURN_IF_ERROR(in->Get(&msg.storage_bytes));
  PPANNS_RETURN_IF_ERROR(in->GetVector(&msg.served_shards));
  if (msg.version >= 2) {
    PPANNS_RETURN_IF_ERROR(in->Get(&msg.state_version));
  }
  if (msg.num_shards == 0 || msg.num_replicas == 0) {
    return Status::IOError("hello_ok: empty topology");
  }
  if (msg.index_kind > static_cast<std::uint8_t>(IndexKind::kBruteForce)) {
    return Status::IOError("hello_ok: unknown index kind " +
                           std::to_string(msg.index_kind));
  }
  for (std::uint32_t s : msg.served_shards) {
    if (s >= msg.num_shards) {
      return Status::IOError("hello_ok: served shard " + std::to_string(s) +
                             " outside the advertised " +
                             std::to_string(msg.num_shards) + "-shard topology");
    }
  }
  return msg;
}

std::size_t HelloOkMessage::ByteSize() const {
  return 3 * sizeof(std::uint32_t) + sizeof(std::uint8_t) +
         4 * sizeof(std::uint64_t) +  // dim, size, capacity, storage_bytes
         sizeof(std::uint64_t) +      // served_shards length prefix
         served_shards.size() * sizeof(std::uint32_t) +
         (version >= 2 ? sizeof(std::uint64_t) : 0);  // state_version
}

// ---- FilterRequestMessage ---------------------------------------------------

void FilterRequestMessage::Serialize(BinaryWriter* out) const {
  out->Put<std::uint32_t>(shard);
  out->Put<std::uint32_t>(replica);
  token.Serialize(out);
  out->Put<std::uint64_t>(k_prime);
  out->Put<std::uint64_t>(ef_search);
  out->Put<std::uint64_t>(node_budget);
  out->Put<std::int64_t>(deadline_budget_us);
  out->Put<std::int64_t>(admission_floor_us);
  out->Put<std::uint8_t>(want_dce);
}

Result<FilterRequestMessage> FilterRequestMessage::Deserialize(
    BinaryReader* in) {
  FilterRequestMessage msg;
  PPANNS_RETURN_IF_ERROR(in->Get(&msg.shard));
  PPANNS_RETURN_IF_ERROR(in->Get(&msg.replica));
  auto token = QueryToken::Deserialize(in);
  if (!token.ok()) return token.status();
  msg.token = std::move(*token);
  PPANNS_RETURN_IF_ERROR(in->Get(&msg.k_prime));
  PPANNS_RETURN_IF_ERROR(in->Get(&msg.ef_search));
  PPANNS_RETURN_IF_ERROR(in->Get(&msg.node_budget));
  PPANNS_RETURN_IF_ERROR(in->Get(&msg.deadline_budget_us));
  PPANNS_RETURN_IF_ERROR(in->Get(&msg.admission_floor_us));
  PPANNS_RETURN_IF_ERROR(in->Get(&msg.want_dce));
  if (msg.k_prime == 0) {
    return Status::IOError("filter_request: k_prime must be positive");
  }
  if (msg.deadline_budget_us < -1) {
    return Status::IOError("filter_request: negative deadline budget");
  }
  if (msg.admission_floor_us < 0) {
    return Status::IOError("filter_request: negative admission floor");
  }
  return msg;
}

std::size_t FilterRequestMessage::ByteSize() const {
  return 2 * sizeof(std::uint32_t) + token.ByteSize() +
         3 * sizeof(std::uint64_t) + 2 * sizeof(std::int64_t) +
         sizeof(std::uint8_t);
}

// ---- FilterResponseMessage --------------------------------------------------

void FilterResponseMessage::Serialize(BinaryWriter* out) const {
  out->Put<std::uint8_t>(status_code);
  out->PutString(status_message);
  out->Put<std::uint8_t>(scanned);
  out->Put<std::uint8_t>(early_exit);
  out->Put<std::uint64_t>(nodes_visited);
  out->Put<std::uint64_t>(distance_computations);
  out->Put<std::uint64_t>(dce_comparisons);
  out->PutVector(candidates);
  out->Put<std::uint64_t>(dce_block);
  out->PutVector(dce_data);
}

Result<FilterResponseMessage> FilterResponseMessage::Deserialize(
    BinaryReader* in) {
  FilterResponseMessage msg;
  PPANNS_RETURN_IF_ERROR(in->Get(&msg.status_code));
  PPANNS_RETURN_IF_ERROR(in->GetString(&msg.status_message));
  PPANNS_RETURN_IF_ERROR(in->Get(&msg.scanned));
  PPANNS_RETURN_IF_ERROR(in->Get(&msg.early_exit));
  PPANNS_RETURN_IF_ERROR(in->Get(&msg.nodes_visited));
  PPANNS_RETURN_IF_ERROR(in->Get(&msg.distance_computations));
  PPANNS_RETURN_IF_ERROR(in->Get(&msg.dce_comparisons));
  PPANNS_RETURN_IF_ERROR(in->GetVector(&msg.candidates));
  PPANNS_RETURN_IF_ERROR(in->Get(&msg.dce_block));
  PPANNS_RETURN_IF_ERROR(in->GetVector(&msg.dce_data));
  if (msg.status_code > kMaxStatusCode) {
    return Status::IOError("filter_response: unknown status code " +
                           std::to_string(msg.status_code));
  }
  if (msg.early_exit > kMaxEarlyExit) {
    return Status::IOError("filter_response: unknown early-exit reason " +
                           std::to_string(msg.early_exit));
  }
  // The DCE payload must be exactly candidates * 4 blocks; checked by
  // division so a crafted block length cannot pass via multiply overflow.
  if (msg.dce_block == 0) {
    if (!msg.dce_data.empty()) {
      return Status::IOError("filter_response: DCE payload without a block "
                             "length");
    }
  } else if (msg.dce_block > kMaxFrameBytes) {
    // Also rules out 4 * block overflowing below.
    return Status::IOError("filter_response: implausible DCE block length " +
                           std::to_string(msg.dce_block));
  } else {
    const std::size_t per_candidate = 4 * static_cast<std::size_t>(msg.dce_block);
    if (msg.dce_data.size() % per_candidate != 0 ||
        msg.dce_data.size() / per_candidate != msg.candidates.size()) {
      return Status::IOError(
          "filter_response: DCE payload shape mismatch (" +
          std::to_string(msg.dce_data.size()) + " doubles for " +
          std::to_string(msg.candidates.size()) + " candidates of block " +
          std::to_string(msg.dce_block) + ")");
    }
  }
  return msg;
}

std::size_t FilterResponseMessage::ByteSize() const {
  return 3 * sizeof(std::uint8_t) +                          // code, scanned, exit
         sizeof(std::uint64_t) + status_message.size() +     // string
         3 * sizeof(std::uint64_t) +                         // stats
         sizeof(std::uint64_t) + candidates.size() * sizeof(Neighbor) +
         sizeof(std::uint64_t) +                             // dce_block
         sizeof(std::uint64_t) + dce_data.size() * sizeof(double);
}

Status FilterResponseMessage::ToStatus() const {
  return FromWireCode(status_code, status_message);
}

void FilterResponseMessage::SetStatus(const Status& st) {
  status_code = static_cast<std::uint8_t>(st.code());
  status_message = st.message();
}

// ---- InsertRequestMessage ---------------------------------------------------

void InsertRequestMessage::Serialize(BinaryWriter* out) const {
  out->PutVector(sap);
  out->Put<std::uint64_t>(dce_block);
  out->PutVector(dce_data);
}

Result<InsertRequestMessage> InsertRequestMessage::Deserialize(
    BinaryReader* in) {
  InsertRequestMessage msg;
  PPANNS_RETURN_IF_ERROR(in->GetVector(&msg.sap));
  PPANNS_RETURN_IF_ERROR(in->Get(&msg.dce_block));
  PPANNS_RETURN_IF_ERROR(in->GetVector(&msg.dce_data));
  if (msg.sap.empty()) {
    return Status::IOError("insert_request: empty SAP ciphertext");
  }
  if (msg.dce_block == 0 || msg.dce_block > kMaxFrameBytes) {
    // The upper bound also rules out 4 * block overflowing below.
    return Status::IOError("insert_request: implausible DCE block length " +
                           std::to_string(msg.dce_block));
  }
  if (msg.dce_data.size() != 4 * static_cast<std::size_t>(msg.dce_block)) {
    return Status::IOError("insert_request: DCE payload shape mismatch (" +
                           std::to_string(msg.dce_data.size()) +
                           " doubles for block " +
                           std::to_string(msg.dce_block) + ")");
  }
  return msg;
}

std::size_t InsertRequestMessage::ByteSize() const {
  return sizeof(std::uint64_t) + sap.size() * sizeof(float) +
         sizeof(std::uint64_t) +  // dce_block
         sizeof(std::uint64_t) + dce_data.size() * sizeof(double);
}

// ---- DeleteRequestMessage ---------------------------------------------------

void DeleteRequestMessage::Serialize(BinaryWriter* out) const {
  out->Put<std::uint64_t>(global_id);
}

Result<DeleteRequestMessage> DeleteRequestMessage::Deserialize(
    BinaryReader* in) {
  DeleteRequestMessage msg;
  PPANNS_RETURN_IF_ERROR(in->Get(&msg.global_id));
  return msg;
}

std::size_t DeleteRequestMessage::ByteSize() const {
  return sizeof(std::uint64_t);
}

// ---- MaintenanceRequestMessage ----------------------------------------------

void MaintenanceRequestMessage::Serialize(BinaryWriter* out) const {
  out->Put<std::uint8_t>(op);
  out->Put<std::uint32_t>(shard);
  out->Put<double>(compact_threshold);
  out->Put<double>(split_skew);
  out->Put<std::uint64_t>(min_split_size);
  out->Put<std::uint64_t>(build_threads);
}

Result<MaintenanceRequestMessage> MaintenanceRequestMessage::Deserialize(
    BinaryReader* in) {
  MaintenanceRequestMessage msg;
  PPANNS_RETURN_IF_ERROR(in->Get(&msg.op));
  PPANNS_RETURN_IF_ERROR(in->Get(&msg.shard));
  PPANNS_RETURN_IF_ERROR(in->Get(&msg.compact_threshold));
  PPANNS_RETURN_IF_ERROR(in->Get(&msg.split_skew));
  PPANNS_RETURN_IF_ERROR(in->Get(&msg.min_split_size));
  PPANNS_RETURN_IF_ERROR(in->Get(&msg.build_threads));
  if (msg.op > 2) {
    return Status::IOError("maintenance_request: unknown op " +
                           std::to_string(msg.op));
  }
  if (!(msg.compact_threshold >= 0.0) || !(msg.split_skew >= 0.0)) {
    // Also rejects NaN, which would silently disable every threshold check.
    return Status::IOError("maintenance_request: negative or NaN threshold");
  }
  return msg;
}

std::size_t MaintenanceRequestMessage::ByteSize() const {
  return sizeof(std::uint8_t) + sizeof(std::uint32_t) + 2 * sizeof(double) +
         2 * sizeof(std::uint64_t);
}

// ---- MutationResponseMessage ------------------------------------------------

void MutationResponseMessage::Serialize(BinaryWriter* out) const {
  out->Put<std::uint8_t>(status_code);
  out->PutString(status_message);
  out->Put<std::uint64_t>(id);
  out->Put<std::uint64_t>(state_version);
  out->Put<std::uint64_t>(size);
  out->Put<std::uint64_t>(ops);
}

Result<MutationResponseMessage> MutationResponseMessage::Deserialize(
    BinaryReader* in) {
  MutationResponseMessage msg;
  PPANNS_RETURN_IF_ERROR(in->Get(&msg.status_code));
  PPANNS_RETURN_IF_ERROR(in->GetString(&msg.status_message));
  PPANNS_RETURN_IF_ERROR(in->Get(&msg.id));
  PPANNS_RETURN_IF_ERROR(in->Get(&msg.state_version));
  PPANNS_RETURN_IF_ERROR(in->Get(&msg.size));
  PPANNS_RETURN_IF_ERROR(in->Get(&msg.ops));
  if (msg.status_code > kMaxStatusCode) {
    return Status::IOError("mutation_response: unknown status code " +
                           std::to_string(msg.status_code));
  }
  return msg;
}

std::size_t MutationResponseMessage::ByteSize() const {
  return sizeof(std::uint8_t) + sizeof(std::uint64_t) +
         status_message.size() +  // string
         4 * sizeof(std::uint64_t);
}

Status MutationResponseMessage::ToStatus() const {
  return FromWireCode(status_code, status_message);
}

void MutationResponseMessage::SetStatus(const Status& st) {
  status_code = static_cast<std::uint8_t>(st.code());
  status_message = st.message();
}

// ---- InfoResponseMessage ----------------------------------------------------

void InfoResponseMessage::Serialize(BinaryWriter* out) const {
  out->Put<std::uint64_t>(state_version);
  out->Put<std::uint64_t>(size);
  out->Put<std::uint64_t>(capacity);
  out->Put<std::uint64_t>(storage_bytes);
  out->Put<std::uint8_t>(wal_attached);
  out->Put<std::uint64_t>(wal_segments);
  out->Put<std::uint64_t>(wal_bytes);
  out->PutVector(served_shards);
  out->PutVector(tombstone_ratios);
  out->PutVector(compaction_epochs);
}

Result<InfoResponseMessage> InfoResponseMessage::Deserialize(BinaryReader* in) {
  InfoResponseMessage msg;
  PPANNS_RETURN_IF_ERROR(in->Get(&msg.state_version));
  PPANNS_RETURN_IF_ERROR(in->Get(&msg.size));
  PPANNS_RETURN_IF_ERROR(in->Get(&msg.capacity));
  PPANNS_RETURN_IF_ERROR(in->Get(&msg.storage_bytes));
  PPANNS_RETURN_IF_ERROR(in->Get(&msg.wal_attached));
  PPANNS_RETURN_IF_ERROR(in->Get(&msg.wal_segments));
  PPANNS_RETURN_IF_ERROR(in->Get(&msg.wal_bytes));
  PPANNS_RETURN_IF_ERROR(in->GetVector(&msg.served_shards));
  PPANNS_RETURN_IF_ERROR(in->GetVector(&msg.tombstone_ratios));
  PPANNS_RETURN_IF_ERROR(in->GetVector(&msg.compaction_epochs));
  if (msg.tombstone_ratios.size() != msg.served_shards.size() ||
      msg.compaction_epochs.size() != msg.served_shards.size()) {
    return Status::IOError(
        "info_response: per-shard arrays misaligned with served_shards");
  }
  return msg;
}

std::size_t InfoResponseMessage::ByteSize() const {
  return 4 * sizeof(std::uint64_t) + sizeof(std::uint8_t) +
         2 * sizeof(std::uint64_t) +  // wal_segments, wal_bytes
         sizeof(std::uint64_t) + served_shards.size() * sizeof(std::uint32_t) +
         sizeof(std::uint64_t) + tombstone_ratios.size() * sizeof(double) +
         sizeof(std::uint64_t) +
         compaction_epochs.size() * sizeof(std::uint64_t);
}

// ---- PongMessage ------------------------------------------------------------

void PongMessage::Serialize(BinaryWriter* out) const {
  out->Put<std::uint64_t>(state_version);
  out->Put<std::uint64_t>(size);
}

Result<PongMessage> PongMessage::Deserialize(BinaryReader* in) {
  PongMessage msg;
  PPANNS_RETURN_IF_ERROR(in->Get(&msg.state_version));
  PPANNS_RETURN_IF_ERROR(in->Get(&msg.size));
  return msg;
}

std::size_t PongMessage::ByteSize() const {
  return 2 * sizeof(std::uint64_t);
}

// ---- AuthChallengeMessage / AuthResponseMessage -----------------------------

void AuthChallengeMessage::Serialize(BinaryWriter* out) const {
  out->PutVector(nonce);
}

Result<AuthChallengeMessage> AuthChallengeMessage::Deserialize(
    BinaryReader* in) {
  AuthChallengeMessage msg;
  PPANNS_RETURN_IF_ERROR(in->GetVector(&msg.nonce));
  if (msg.nonce.size() != 32) {
    return Status::IOError("auth_challenge: nonce must be 32 bytes, got " +
                           std::to_string(msg.nonce.size()));
  }
  return msg;
}

std::size_t AuthChallengeMessage::ByteSize() const {
  return sizeof(std::uint64_t) + nonce.size();
}

void AuthResponseMessage::Serialize(BinaryWriter* out) const {
  out->PutVector(mac);
}

Result<AuthResponseMessage> AuthResponseMessage::Deserialize(BinaryReader* in) {
  AuthResponseMessage msg;
  PPANNS_RETURN_IF_ERROR(in->GetVector(&msg.mac));
  if (msg.mac.size() != 32) {
    return Status::IOError("auth_response: MAC must be 32 bytes, got " +
                           std::to_string(msg.mac.size()));
  }
  return msg;
}

std::size_t AuthResponseMessage::ByteSize() const {
  return sizeof(std::uint64_t) + mac.size();
}

}  // namespace ppanns
