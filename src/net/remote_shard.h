// RemoteShardClient — the ShardTransport stub that speaks the net/wire.h
// protocol to a ShardServer — plus the topology assembly that turns a list
// of endpoints into a remote ShardedCloudServer.
//
// The gather node built this way holds *no* shard data: no SAP vectors, no
// DCE ciphertexts, no index. Candidates come back as global ids and the
// refine phase runs over ciphertexts shipped per response — the same
// information the in-process gather reads in place, so result ids are
// identical across the process boundary (pinned by tests/net).

#ifndef PPANNS_NET_REMOTE_SHARD_H_
#define PPANNS_NET_REMOTE_SHARD_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/sharded_cloud_server.h"
#include "net/rpc_channel.h"
#include "net/shard_transport.h"

namespace ppanns {

/// Dispatches filter scans for one (shard, replica) to a remote ShardServer
/// over a shared per-endpoint RpcChannelPool: each call rides the
/// endpoint's least-loaded live TCP stream, so concurrent scatters stop
/// head-of-line blocking on one socket. Thread-safe (every stream
/// demultiplexes, the pool's pick is lock-free).
class RemoteShardClient final : public ShardTransport {
 public:
  RemoteShardClient(std::shared_ptr<RpcChannelPool> pool, std::uint32_t shard,
                    std::uint32_t replica)
      : pool_(std::move(pool)), shard_(shard), replica_(replica) {}

  /// Rebases the context's absolute deadline to a relative per-RPC budget,
  /// sends the scan, and folds the response's SearchStats and early-exit
  /// reason back into `ctx` — remote work is accounted exactly like local
  /// work, including a cancelled loser's partial progress.
  Status Filter(const QueryToken& token, const ShardFilterOptions& options,
                SearchContext* ctx, ShardFilterResult* out) const override;

  /// Healthy while ANY stream in the endpoint's pool is alive — a single
  /// dead socket degrades capacity, not availability.
  bool Healthy() const override { return pool_->healthy(); }
  bool remote() const override { return true; }

  std::uint32_t shard() const { return shard_; }
  std::uint32_t replica() const { return replica_; }

 private:
  std::shared_ptr<RpcChannelPool> pool_;
  std::uint32_t shard_;
  std::uint32_t replica_;
};

/// The mutation/maintenance stub for one endpoint: speaks the v2 mutation
/// frames over the endpoint's shared stream pool. Every call is
/// NotSupported when the handshake settled on v1 (an old server). One
/// endpoint loads the FULL package — served_shards only scopes what it
/// *scans* — so the gather broadcasts each mutation through every
/// endpoint's RemoteMutationClient to keep them byte-identical.
class RemoteMutationClient final : public MutationTransport {
 public:
  explicit RemoteMutationClient(std::shared_ptr<RpcChannelPool> pool)
      : pool_(std::move(pool)) {}

  Result<MutationOutcome> Insert(const EncryptedVector& v) override;
  Result<MutationOutcome> Delete(VectorId global_id) override;
  Result<MutationOutcome> Maintain(const MaintenanceCommand& cmd) override;
  const std::string& endpoint() const override { return pool_->endpoint(); }

  /// One operator-facing info snapshot (`ppanns_cli info --connect`).
  Result<InfoResponseMessage> Info() const;

 private:
  /// Shared call shape: version gate, send, translate the response into a
  /// MutationOutcome (transport failures stay in the Result).
  Result<MutationOutcome> Call(FrameType type,
                               const std::vector<std::uint8_t>& payload) const;

  std::shared_ptr<RpcChannelPool> pool_;
};

/// Knobs of a cluster connection.
struct ConnectOptions {
  /// TCP streams per endpoint (>= 1); every stub on the endpoint shares the
  /// pool.
  std::size_t pool_size = 1;
  /// Shared HMAC key for keyed servers (net/auth.h); empty = plain.
  std::vector<std::uint8_t> auth_key;
  /// Health-probe/re-dial cadence per pool; 0 disables self-healing (a dead
  /// stream then stays dead, the pre-PR-10 behavior).
  int health_interval_ms = 0;
};

/// A connected remote cluster: the gather server plus the handles an
/// operator-facing caller needs for observability (per-endpoint pools) and
/// epoch tracking (the shared fence).
struct ConnectedCluster {
  ShardedCloudServer server;
  /// The cluster's structural-epoch fence: max post-apply state_version
  /// reported by any mutation response or health ping. Shared with the
  /// server (state_version()) and every pool (Pong folding).
  std::shared_ptr<std::atomic<std::uint64_t>> epoch_fence;
  /// One pool per endpoint, aligned with `endpoints` — for live_streams()
  /// health readouts and Info() snapshots.
  std::vector<std::shared_ptr<RpcChannelPool>> pools;
  std::vector<std::string> endpoints;
};

/// Connects to every endpoint ("host:port"), validates that the advertised
/// topologies agree, that together they cover every shard, and assembles a
/// remote ShardedCloudServer: transports_[s][r] routes filter scans to the
/// first endpoint that serves shard s (later duplicates are ignored). When
/// every endpoint negotiated protocol v2, the server also gets one
/// RemoteMutationClient per endpoint (mutations broadcast to all, keeping
/// endpoints byte-identical) and the shared epoch fence; against a mixed or
/// v1 cluster the mutation surface stays NotSupported. Errors:
///   InvalidArgument    — no endpoints, pool_size = 0, or endpoints
///                        disagree on topology
///   FailedPrecondition — some shard is served by no endpoint, or a keyed
///                        server challenged a keyless client
///   IOError            — connect/handshake failure
Result<ConnectedCluster> ConnectCluster(
    const std::vector<std::string>& endpoints,
    const ConnectOptions& options = {});

/// Compatibility wrapper: ConnectCluster with default options except
/// `pool_size`, returning just the server (fence and pools ride inside the
/// transports, so mutation and self-healing still work where enabled).
Result<ShardedCloudServer> ConnectShardedService(
    const std::vector<std::string>& endpoints, std::size_t pool_size = 1);

}  // namespace ppanns

#endif  // PPANNS_NET_REMOTE_SHARD_H_
