// RemoteShardClient — the ShardTransport stub that speaks the net/wire.h
// protocol to a ShardServer — plus the topology assembly that turns a list
// of endpoints into a remote ShardedCloudServer.
//
// The gather node built this way holds *no* shard data: no SAP vectors, no
// DCE ciphertexts, no index. Candidates come back as global ids and the
// refine phase runs over ciphertexts shipped per response — the same
// information the in-process gather reads in place, so result ids are
// identical across the process boundary (pinned by tests/net).

#ifndef PPANNS_NET_REMOTE_SHARD_H_
#define PPANNS_NET_REMOTE_SHARD_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/sharded_cloud_server.h"
#include "net/rpc_channel.h"
#include "net/shard_transport.h"

namespace ppanns {

/// Dispatches filter scans for one (shard, replica) to a remote ShardServer
/// over a shared per-endpoint RpcChannelPool: each call rides the
/// endpoint's least-loaded live TCP stream, so concurrent scatters stop
/// head-of-line blocking on one socket. Thread-safe (every stream
/// demultiplexes, the pool's pick is lock-free).
class RemoteShardClient final : public ShardTransport {
 public:
  RemoteShardClient(std::shared_ptr<RpcChannelPool> pool, std::uint32_t shard,
                    std::uint32_t replica)
      : pool_(std::move(pool)), shard_(shard), replica_(replica) {}

  /// Rebases the context's absolute deadline to a relative per-RPC budget,
  /// sends the scan, and folds the response's SearchStats and early-exit
  /// reason back into `ctx` — remote work is accounted exactly like local
  /// work, including a cancelled loser's partial progress.
  Status Filter(const QueryToken& token, const ShardFilterOptions& options,
                SearchContext* ctx, ShardFilterResult* out) const override;

  /// Healthy while ANY stream in the endpoint's pool is alive — a single
  /// dead socket degrades capacity, not availability.
  bool Healthy() const override { return pool_->healthy(); }
  bool remote() const override { return true; }

  std::uint32_t shard() const { return shard_; }
  std::uint32_t replica() const { return replica_; }

 private:
  std::shared_ptr<RpcChannelPool> pool_;
  std::uint32_t shard_;
  std::uint32_t replica_;
};

/// Connects to every endpoint ("host:port"), validates that the advertised
/// topologies agree, that together they cover every shard, and assembles a
/// remote ShardedCloudServer: transports_[s][r] routes to the first endpoint
/// that serves shard s (later duplicates are ignored). `pool_size` TCP
/// streams are opened per endpoint (default 1 — the original
/// one-socket-per-endpoint behavior); every stub on that endpoint shares
/// the pool. Errors:
///   InvalidArgument    — no endpoints, pool_size = 0, or endpoints
///                        disagree on topology
///   FailedPrecondition — some shard is served by no endpoint
///   IOError            — connect/handshake failure
Result<ShardedCloudServer> ConnectShardedService(
    const std::vector<std::string>& endpoints, std::size_t pool_size = 1);

}  // namespace ppanns

#endif  // PPANNS_NET_REMOTE_SHARD_H_
