// ShardTransport — the dispatch seam between the gather node and one shard
// replica.
//
// ShardedCloudServer scatter-gathers through this interface only, so a
// replica can live in-process (a CloudServer behind a function call) or
// across a socket (a RemoteShardClient speaking the net/wire.h protocol)
// without the hedging, failover, load-aware dispatch, or deadline machinery
// noticing. The contract mirrors the in-process filter work item:
//  * Filter runs one k'-ANNS scan and returns the shard's top-k' candidates
//    in *global* ids;
//  * the SearchContext threads through — its cancellation flags and deadline
//    bound the scan (locally via CancelProbe, remotely via the rebased
//    budget and the CANCEL frame), and its SearchStats accumulate the work
//    the scan actually did, local or remote;
//  * when `want_dce` is set, the candidates' DCE ciphertexts come back
//    alongside (a remote gather node holds no shard data, so the refine
//    phase needs them shipped; local transports skip this — the gather reads
//    the ciphertexts in place).

#ifndef PPANNS_NET_SHARD_TRANSPORT_H_
#define PPANNS_NET_SHARD_TRANSPORT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/search_context.h"
#include "common/status.h"
#include "common/types.h"
#include "core/query_client.h"
#include "crypto/dce.h"

namespace ppanns {

/// Per-scan knobs a transport forwards to the replica.
struct ShardFilterOptions {
  std::size_t k_prime = 0;
  std::size_t ef_search = 0;  ///< 0 = backend default
  /// Ship the candidates' DCE ciphertexts back with the answer. Local
  /// transports ignore this (the gather reads ciphertexts in place).
  bool want_dce = false;
  /// Admission floor in milliseconds, forwarded so a remote server can shed
  /// a scan whose deadline budget cannot cover it (kResourceExhausted)
  /// before burning any work. 0 disables.
  double admission_ms = 0.0;
};

/// One shard replica's answer to a filter scan.
struct ShardFilterResult {
  /// The replica's top-k' in global ids, best first.
  std::vector<Neighbor> candidates;
  /// DCE ciphertexts aligned with `candidates` when want_dce was honored;
  /// empty otherwise.
  std::vector<DceCiphertext> dce;
  /// True when a filter scan actually started (false: cancelled or shed
  /// before any work — nothing to account as wasted).
  bool scanned = false;
};

/// One dispatchable shard replica. Implementations must be safe for
/// concurrent Filter calls (the batch scatter fans many queries at once).
class ShardTransport {
 public:
  virtual ~ShardTransport() = default;

  /// Runs one filter scan. A non-OK Status means the scan could not run or
  /// finish (dead connection, server-side shed); `out` is then empty and the
  /// caller treats the dispatch like a cancelled one. Cooperative stops
  /// (deadline, cancellation, budget) are NOT errors: the partial answer
  /// returns OK and `ctx` carries the early-exit reason and stats.
  virtual Status Filter(const QueryToken& token,
                        const ShardFilterOptions& options, SearchContext* ctx,
                        ShardFilterResult* out) const = 0;

  /// False once the transport can no longer serve (e.g. its connection
  /// died). The dispatcher skips unhealthy transports like down replicas.
  virtual bool Healthy() const { return true; }

  /// True for transports that cross a process boundary.
  virtual bool remote() const = 0;
};

/// Forward declaration — the full ciphertext pair lives in core.
struct EncryptedVector;

/// One structural-maintenance command, topology-blind: the same triple of
/// (sweep, compact-shard, split-shard) ShardedCloudServer runs locally,
/// expressed so it can cross the wire as a MaintenanceRequestMessage.
struct MaintenanceCommand {
  enum class Op : std::uint8_t { kSweep = 0, kCompactShard = 1, kSplitShard = 2 };
  Op op = Op::kSweep;
  std::uint32_t shard = 0;       ///< target (compact/split only)
  double compact_threshold = 0.3;
  double split_skew = 0.0;
  std::size_t min_split_size = 64;
  std::size_t build_threads = 1;
};

/// What a mutation did on the other side of the seam. `state_version` and
/// `size` are post-apply — the epoch fence the gather folds into its cache
/// invalidation epoch and uses to check that replicated endpoints agree.
struct MutationOutcome {
  Status status = Status::OK();  ///< the apply's own Status (IO errors are
                                 ///< the transport call's Result instead)
  VectorId id = 0;               ///< assigned global id (inserts)
  std::uint64_t state_version = 0;
  std::uint64_t size = 0;
  std::size_t ops = 0;           ///< shards rebuilt (sweeps)
};

/// The mutation/maintenance side of the seam — one endpoint that holds real
/// shard data (in practice: one ppanns_shard_server, whose process loads
/// the full package). ShardedCloudServer broadcasts every mutation to all
/// attached MutationTransports and requires their outcomes to agree, which
/// keeps replicated endpoints byte-identical the same way deterministic
/// insert routing does in-process. A non-OK Result means the command never
/// reached the endpoint (dead pool); a reached-but-refused apply comes back
/// OK with `outcome.status` carrying the refusal.
class MutationTransport {
 public:
  virtual ~MutationTransport() = default;

  virtual Result<MutationOutcome> Insert(const EncryptedVector& v) = 0;
  virtual Result<MutationOutcome> Delete(VectorId global_id) = 0;
  virtual Result<MutationOutcome> Maintain(const MaintenanceCommand& cmd) = 0;

  /// The endpoint this transport mutates ("host:port"), for error messages.
  virtual const std::string& endpoint() const = 0;
};

}  // namespace ppanns

#endif  // PPANNS_NET_SHARD_TRANSPORT_H_
