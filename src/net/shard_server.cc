#include "net/shard_server.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <string>
#include <thread>
#include <utility>

#include "common/serialize.h"
#include "net/auth.h"
#include "net/frame.h"

namespace ppanns {

namespace {

/// Injected straggler latency, served in 1 ms slices so a CANCEL frame (or
/// the request's rebased deadline) wakes the scan out of it promptly — the
/// same shape as the in-process delay knob.
void InterruptibleDelay(int delay_ms, SearchContext* ctx) {
  for (int slice = 0; slice < delay_ms; ++slice) {
    if (ctx->ShouldStop(ctx->stats.nodes_visited)) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

}  // namespace

// One accepted connection. Scan threads hold it by shared_ptr, so a scan
// that finishes after Stop() still has a live socket (already shut down —
// its write just fails) and live bookkeeping to decrement.
struct ShardServer::Connection {
  explicit Connection(Socket s) : socket(std::move(s)) {}

  Socket socket;
  std::thread reader;
  std::mutex write_mu;  ///< response frames must not interleave

  std::mutex mu;  ///< guards inflight
  /// Cancel flag of every scan in flight on this connection, by request id —
  /// where a kCancel frame is routed.
  std::map<std::uint64_t, std::shared_ptr<std::atomic<bool>>> inflight;

  std::atomic<int> pending{0};  ///< scan threads not yet finished
  std::mutex done_mu;
  std::condition_variable done_cv;
};

ShardServer::ShardServer(PpannsService* service,
                         std::vector<std::uint32_t> served_shards,
                         Options options)
    : service_(service),
      served_shards_(std::move(served_shards)),
      options_(std::move(options)) {
  // A server needs the actual replicas behind it; a remote (stub-backed)
  // facade has none to serve.
  PPANNS_CHECK(service_->sharded());
  PPANNS_CHECK(!service_->sharded_server().remote());
  if (served_shards_.empty()) {
    for (std::size_t s = 0; s < service_->num_shards(); ++s) {
      served_shards_.push_back(static_cast<std::uint32_t>(s));
    }
  }
  for (std::uint32_t s : served_shards_) {
    PPANNS_CHECK(s < service_->num_shards());
  }
}

ShardServer::~ShardServer() { Stop(); }

bool ShardServer::Serves(std::uint32_t shard) const {
  return std::find(served_shards_.begin(), served_shards_.end(), shard) !=
         served_shards_.end();
}

Status ShardServer::Start(std::uint16_t port) {
  PPANNS_CHECK(!running_.load(std::memory_order_acquire));
  auto listener = Listener::Bind(port);
  if (!listener.ok()) return listener.status();
  listener_ = std::move(*listener);
  port_ = listener_.port();
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void ShardServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  listener_.Shutdown();
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.Close();

  std::vector<std::shared_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns.swap(conns_);
  }
  for (const auto& conn : conns) {
    // Abort every in-flight scan, then unblock and join the reader.
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      for (auto& [id, flag] : conn->inflight) {
        flag->store(true, std::memory_order_release);
      }
    }
    conn->socket.Shutdown();
    if (conn->reader.joinable()) conn->reader.join();
  }
  // Readers are gone, so no new scans can be submitted; drain the ones still
  // running (they cancel at their next probe).
  for (const auto& conn : conns) {
    std::unique_lock<std::mutex> lock(conn->done_mu);
    conn->done_cv.wait(lock, [&conn] {
      return conn->pending.load(std::memory_order_acquire) == 0;
    });
  }
}

void ShardServer::AcceptLoop() {
  while (running_.load(std::memory_order_acquire)) {
    auto sock = listener_.Accept();
    if (!sock.ok()) return;  // Stop() shut the listener down
    auto conn = std::make_shared<Connection>(std::move(*sock));
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      if (!running_.load(std::memory_order_acquire)) return;  // racing Stop()
      conns_.push_back(conn);
    }
    conn->reader = std::thread([this, conn] {
      ServeConnection(conn);
      // Reader is done — rejected handshake, protocol violation, or peer
      // EOF. Hang up so the peer sees EOF instead of a silent stall (scans
      // still in flight only Shutdown the socket; their writes fail clean).
      conn->socket.Shutdown();
    });
  }
}

template <typename Message>
bool ShardServer::WriteMessage(const std::shared_ptr<Connection>& conn,
                               FrameType type, std::uint64_t request_id,
                               const Message& payload) {
  BinaryWriter payload_writer;
  payload.Serialize(&payload_writer);
  BinaryWriter frame;
  EncodeFrame(Frame{type, request_id, payload_writer.TakeBuffer()}, &frame);
  std::lock_guard<std::mutex> lock(conn->write_mu);
  return conn->socket.WriteAll(frame.buffer().data(), frame.buffer().size())
      .ok();
}

void ShardServer::ServeConnection(const std::shared_ptr<Connection>& conn) {
  // ---- Handshake: the first frame must be a well-formed Hello whose version
  // range intersects ours. Anything else — wrong magic, disjoint versions, a
  // stray frame — closes the connection before any state is built.
  Frame hello;
  if (!ReadFrame(&conn->socket, &hello).ok() ||
      hello.type != FrameType::kHello) {
    return;
  }
  BinaryReader hello_reader(hello.payload.data(), hello.payload.size());
  auto client = HelloMessage::Deserialize(&hello_reader);
  if (!client.ok()) return;
  if (client->version_min > kProtocolVersionMax ||
      client->version_max < kProtocolVersionMin) {
    return;
  }

  // ---- Authentication (keyed servers only): one fresh nonce out, one MAC
  // back, constant-time compare. Every failure path is a silent teardown —
  // before the MAC verifies, the peer gets no frame and no explanation.
  if (!options_.auth_key.empty()) {
    AuthChallengeMessage challenge;
    const auto nonce = MakeAuthNonce();
    challenge.nonce.assign(nonce.begin(), nonce.end());
    if (!WriteMessage(conn, FrameType::kAuthChallenge, hello.request_id,
                      challenge)) {
      return;
    }
    Frame answer;
    if (!ReadFrame(&conn->socket, &answer).ok() ||
        answer.type != FrameType::kAuthResponse) {
      return;
    }
    BinaryReader answer_reader(answer.payload.data(), answer.payload.size());
    auto mac = AuthResponseMessage::Deserialize(&answer_reader);
    if (!mac.ok()) return;
    const auto expected = HmacSha256(options_.auth_key, challenge.nonce.data(),
                                     challenge.nonce.size());
    if (mac->mac.size() != expected.size() ||
        !ConstantTimeEqual(mac->mac.data(), expected.data(),
                           expected.size())) {
      return;
    }
  }

  HelloOkMessage ok;
  ok.version = std::min(kProtocolVersionMax, client->version_max);
  ok.num_shards = static_cast<std::uint32_t>(service_->num_shards());
  ok.num_replicas = static_cast<std::uint32_t>(service_->num_replicas());
  ok.dim = service_->dim();
  ok.index_kind = static_cast<std::uint8_t>(service_->index_kind());
  ok.size = service_->size();
  ok.capacity = sharded().capacity();
  ok.storage_bytes = service_->StorageBytes();
  ok.served_shards = served_shards_;
  // v2 field; Serialize only emits it when ok.version >= 2, so a v1 client
  // still gets the bytes it expects.
  ok.state_version = sharded().state_version();
  if (!WriteMessage(conn, FrameType::kHelloOk, hello.request_id, ok)) return;

  // ---- Frame loop. Scans go to dedicated threads so a slow one never
  // blocks the connection; responses stream back out of order as scans
  // complete. Mutations, info, and pings are handled inline — mutations must
  // serialize anyway, and inline handling keeps one connection's mutations
  // naturally ordered. A malformed request or an out-of-protocol frame tears
  // the connection down (the client's channel reports IOError and marks
  // itself unhealthy).
  const bool v2 = ok.version >= 2;
  for (;;) {
    Frame frame;
    if (!ReadFrame(&conn->socket, &frame).ok()) return;
    switch (frame.type) {
      case FrameType::kFilterRequest: {
        BinaryReader reader(frame.payload.data(), frame.payload.size());
        auto parsed = FilterRequestMessage::Deserialize(&reader);
        if (!parsed.ok()) return;
        auto request =
            std::make_shared<FilterRequestMessage>(std::move(*parsed));
        auto flag = std::make_shared<std::atomic<bool>>(false);
        {
          std::lock_guard<std::mutex> lock(conn->mu);
          conn->inflight.emplace(frame.request_id, flag);
        }
        // Count before spawning: Stop() joins this reader first, then waits
        // pending out, so `this` outlives every scan. Each scan gets a
        // dedicated thread rather than a pooled worker — scans park in
        // injected delays and slow index walks, and routing them through the
        // process-wide pool would serialize concurrent requests behind a
        // straggler on small machines (exactly the coupling a hedging gather
        // node must not see).
        conn->pending.fetch_add(1, std::memory_order_acq_rel);
        const std::uint64_t id = frame.request_id;
        std::thread([this, conn, id, request, flag] {
          RunFilter(conn, id, request, flag);
        }).detach();
        break;
      }
      case FrameType::kCancel: {
        std::lock_guard<std::mutex> lock(conn->mu);
        auto it = conn->inflight.find(frame.request_id);
        if (it != conn->inflight.end()) {
          it->second->store(true, std::memory_order_release);
        }
        break;  // unknown id: the scan already finished — nothing to abort
      }
      case FrameType::kInsertRequest:
      case FrameType::kDeleteRequest:
      case FrameType::kMaintenanceRequest:
        // Mutation frames exist from v2 on; a v1 peer sending one is out of
        // protocol.
        if (!v2 || !HandleMutation(conn, frame)) return;
        break;
      case FrameType::kInfoRequest:
        if (!v2 || !HandleInfo(conn, frame.request_id)) return;
        break;
      case FrameType::kPing:
        if (!v2 || !HandlePing(conn, frame.request_id)) return;
        break;
      default:
        return;  // clients never send hello_ok / filter_response / pong
    }
  }
}

bool ShardServer::HandleMutation(const std::shared_ptr<Connection>& conn,
                                 const Frame& frame) {
  MutationResponseMessage response;

  // Exclusive against every filter scan on this server: the mutation
  // contract makes the caller serialize mutation against its own searches,
  // and over the wire this server is that caller.
  std::unique_lock<std::shared_mutex> serve_lock(serve_mu_);

  switch (frame.type) {
    case FrameType::kInsertRequest: {
      BinaryReader reader(frame.payload.data(), frame.payload.size());
      auto parsed = InsertRequestMessage::Deserialize(&reader);
      if (!parsed.ok()) return false;
      EncryptedVector v;
      v.sap = std::move(parsed->sap);
      v.dce.block = static_cast<std::size_t>(parsed->dce_block);
      v.dce.data = std::move(parsed->dce_data);
      // Through the facade: validation, the attached WAL (append before
      // apply), and the cache epoch bump all happen exactly as for a local
      // caller.
      auto id = service_->Insert(v);
      if (id.ok()) {
        response.id = static_cast<std::uint64_t>(*id);
      } else {
        response.SetStatus(id.status());
      }
      break;
    }
    case FrameType::kDeleteRequest: {
      BinaryReader reader(frame.payload.data(), frame.payload.size());
      auto parsed = DeleteRequestMessage::Deserialize(&reader);
      if (!parsed.ok()) return false;
      response.SetStatus(
          service_->Delete(static_cast<VectorId>(parsed->global_id)));
      response.id = parsed->global_id;
      break;
    }
    case FrameType::kMaintenanceRequest: {
      BinaryReader reader(frame.payload.data(), frame.payload.size());
      auto parsed = MaintenanceRequestMessage::Deserialize(&reader);
      if (!parsed.ok()) return false;
      ShardedCloudServer& server = service_->sharded_server_mutable();
      switch (parsed->op) {
        case 0: {  // threshold sweep
          ShardedCloudServer::MaintenanceOptions options;
          options.compact_threshold = parsed->compact_threshold;
          options.split_skew = parsed->split_skew;
          options.min_split_size =
              static_cast<std::size_t>(parsed->min_split_size);
          options.build_threads =
              static_cast<std::size_t>(parsed->build_threads);
          auto ops = server.MaybeCompact(options);
          if (ops.ok()) {
            response.ops = static_cast<std::uint64_t>(*ops);
          } else {
            response.SetStatus(ops.status());
          }
          break;
        }
        case 1:
          response.SetStatus(
              server.CompactShard(static_cast<std::size_t>(parsed->shard)));
          if (response.status_code == 0) response.ops = 1;
          break;
        case 2:
          response.SetStatus(
              server.SplitShard(static_cast<std::size_t>(parsed->shard)));
          if (response.status_code == 0) response.ops = 1;
          break;
        default:
          return false;  // Deserialize validates op <= 2; defensive
      }
      break;
    }
    default:
      return false;  // caller dispatches only mutation frames here
  }

  // The epoch fence: post-apply observables on every mutation response, OK
  // or refused — the gather folds state_version into its cache invalidation
  // and checks that replicated endpoints agree.
  response.state_version = sharded().state_version();
  response.size = service_->size();
  serve_lock.unlock();
  return WriteMessage(conn, FrameType::kMutationResponse, frame.request_id,
                      response);
}

bool ShardServer::HandleInfo(const std::shared_ptr<Connection>& conn,
                             std::uint64_t request_id) {
  InfoResponseMessage info;
  // Shared with filter scans (pure reads), excluded against mutations so
  // the snapshot is never half-applied.
  std::shared_lock<std::shared_mutex> serve_lock(serve_mu_);
  info.state_version = sharded().state_version();
  info.size = service_->size();
  info.capacity = sharded().capacity();
  info.storage_bytes = service_->StorageBytes();
  info.wal_attached = service_->wal_attached() ? 1 : 0;
  if (service_->wal_attached()) {
    const WalStats stats = service_->wal_stats();
    info.wal_segments = stats.segments;
    info.wal_bytes = stats.bytes;
  }
  // Maintenance may have split shards past the handshake-time list; expose
  // every shard that currently exists when this endpoint serves all of them,
  // the configured scope otherwise.
  info.served_shards = served_shards_;
  info.tombstone_ratios.reserve(info.served_shards.size());
  info.compaction_epochs.reserve(info.served_shards.size());
  for (std::uint32_t s : info.served_shards) {
    info.tombstone_ratios.push_back(sharded().tombstone_ratio(s));
    info.compaction_epochs.push_back(sharded().last_compaction_epoch(s));
  }
  serve_lock.unlock();
  return WriteMessage(conn, FrameType::kInfoResponse, request_id, info);
}

bool ShardServer::HandlePing(const std::shared_ptr<Connection>& conn,
                             std::uint64_t request_id) {
  PongMessage pong;
  pong.state_version = sharded().state_version();
  pong.size = service_->size();
  return WriteMessage(conn, FrameType::kPong, request_id, pong);
}

void ShardServer::RunFilter(const std::shared_ptr<Connection>& conn,
                            std::uint64_t request_id,
                            std::shared_ptr<FilterRequestMessage> request,
                            std::shared_ptr<std::atomic<bool>> cancel_flag) {
  FilterResponseMessage response;

  // Re-anchor the relative deadline budget against this host's clock — the
  // gather's absolute deadline means nothing here.
  SearchContext ctx;
  ctx.AddCancelFlag(cancel_flag.get());
  if (request->deadline_budget_us >= 0) {
    ctx.set_deadline(SearchContext::Clock::now() +
                     std::chrono::microseconds(request->deadline_budget_us));
  }
  ctx.set_node_budget(static_cast<std::size_t>(request->node_budget));

  if (!Serves(request->shard)) {
    response.SetStatus(Status::InvalidArgument(
        "shard " + std::to_string(request->shard) +
        " is not served by this endpoint"));
  } else if (request->admission_floor_us > 0 &&
             request->deadline_budget_us >= 0 &&
             request->deadline_budget_us < request->admission_floor_us) {
    // Server-side admission: the budget that survived the wire cannot cover
    // the floor, so shed before burning any scan work.
    response.SetStatus(Status::ResourceExhausted(
        "admission: deadline budget " +
        std::to_string(request->deadline_budget_us) +
        "us is below the admission floor " +
        std::to_string(request->admission_floor_us) + "us"));
  } else {
    InterruptibleDelay(scan_delay_ms_.load(std::memory_order_relaxed), &ctx);
    ShardFilterOptions options;
    options.k_prime = static_cast<std::size_t>(request->k_prime);
    options.ef_search = static_cast<std::size_t>(request->ef_search);
    options.want_dce = request->want_dce != 0;
    ShardFilterResult result;
    // Shared lock: scans run concurrently with each other, never with a
    // mutation mid-apply. Taken after the injected delay so the straggler
    // knob does not stall real mutations.
    std::shared_lock<std::shared_mutex> serve_lock(serve_mu_);
    const Status st =
        sharded().FilterShard(request->shard, request->replica, request->token,
                              options, &ctx, &result);
    serve_lock.unlock();
    if (!st.ok()) {
      response.SetStatus(st);
    } else {
      response.scanned = result.scanned ? 1 : 0;
      response.candidates = std::move(result.candidates);
      if (!result.dce.empty()) {
        response.dce_block = result.dce.front().block;
        response.dce_data.reserve(result.dce.size() * 4 * result.dce.front().block);
        for (const DceCiphertext& ct : result.dce) {
          response.dce_data.insert(response.dce_data.end(), ct.data.begin(),
                                   ct.data.end());
        }
      }
    }
  }

  // Partial stats ride back on every outcome — cancelled, shed, or complete —
  // so the gather accounts remote work exactly like in-process work.
  response.early_exit = static_cast<std::uint8_t>(ctx.early_exit());
  response.nodes_visited = ctx.stats.nodes_visited;
  response.distance_computations = ctx.stats.distance_computations;
  response.dce_comparisons = ctx.stats.dce_comparisons;

  // Best effort: a failed write means the connection is dying and the
  // reader/Stop() path owns the teardown.
  WriteMessage(conn, FrameType::kFilterResponse, request_id, response);

  {
    std::lock_guard<std::mutex> lock(conn->mu);
    conn->inflight.erase(request_id);
  }
  if (conn->pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lock(conn->done_mu);
    conn->done_cv.notify_all();
  }
}

}  // namespace ppanns
