#include "net/rpc_channel.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <string>
#include <utility>

#include "common/serialize.h"
#include "net/auth.h"
#include "net/frame.h"

namespace ppanns {

namespace {

/// How long a cancelled call keeps waiting for the response the server still
/// owes. Generous against scheduling noise; the server's cancellation probe
/// fires within kCancelCheckStride scan steps (or the next 1 ms delay
/// slice), so a healthy server answers orders of magnitude sooner.
constexpr auto kCancelGrace = std::chrono::seconds(5);
/// Cadence of the context poll while parked in Call().
constexpr auto kPollInterval = std::chrono::milliseconds(1);
/// Re-dial backoff: first retry after 100 ms, doubling to a 2 s cap — fast
/// enough that a bounced server rejoins within one smoke-test window, slow
/// enough that a permanently dead endpoint costs one connect attempt every
/// two seconds.
constexpr auto kRedialInitialBackoff = std::chrono::milliseconds(100);
constexpr auto kRedialMaxBackoff = std::chrono::milliseconds(2000);

/// A death reason worth keeping over the generic peer-went-away one: socket
/// EOF surfaces as "connection closed" (socket.cc), which says nothing
/// about *why* a re-dial keeps failing — connect refused or a protocol
/// violation does.
bool DiagnosableReason(const Status& st) {
  return !st.ok() && st.message().find("connection closed") == std::string::npos;
}

void FoldIntoFence(std::atomic<std::uint64_t>* fence, std::uint64_t version) {
  std::uint64_t cur = fence->load(std::memory_order_acquire);
  while (version > cur &&
         !fence->compare_exchange_weak(cur, version,
                                       std::memory_order_acq_rel)) {
  }
}

}  // namespace

Result<std::shared_ptr<RpcChannel>> RpcChannel::Connect(
    const std::string& endpoint, const std::vector<std::uint8_t>& auth_key) {
  auto socket = ConnectTcp(endpoint);
  if (!socket.ok()) return socket.status();

  // Handshake runs synchronously before the reader thread exists: Hello out,
  // then (on a keyed server) one challenge to answer, then exactly one
  // HelloOk back.
  BinaryWriter hello_writer;
  HelloMessage{}.Serialize(&hello_writer);
  Frame hello_frame{FrameType::kHello, 0, hello_writer.TakeBuffer()};
  BinaryWriter frame_writer;
  EncodeFrame(hello_frame, &frame_writer);
  PPANNS_RETURN_IF_ERROR(socket->WriteAll(frame_writer.buffer().data(),
                                          frame_writer.buffer().size()));

  Frame reply;
  PPANNS_RETURN_IF_ERROR(ReadFrame(&*socket, &reply));
  if (reply.type == FrameType::kAuthChallenge) {
    if (auth_key.empty()) {
      return Status::FailedPrecondition(
          "handshake: server requires authentication and no auth key is "
          "configured (--auth-key-file)");
    }
    BinaryReader challenge_reader(reply.payload.data(), reply.payload.size());
    auto challenge = AuthChallengeMessage::Deserialize(&challenge_reader);
    if (!challenge.ok()) return challenge.status();
    const auto mac =
        HmacSha256(auth_key, challenge->nonce.data(), challenge->nonce.size());
    AuthResponseMessage response;
    response.mac.assign(mac.begin(), mac.end());
    BinaryWriter response_writer;
    response.Serialize(&response_writer);
    BinaryWriter auth_frame;
    EncodeFrame(Frame{FrameType::kAuthResponse, 0,
                      response_writer.TakeBuffer()},
                &auth_frame);
    PPANNS_RETURN_IF_ERROR(socket->WriteAll(auth_frame.buffer().data(),
                                            auth_frame.buffer().size()));
    Status read = ReadFrame(&*socket, &reply);
    if (!read.ok()) {
      // A keyed server answers a bad MAC with silent teardown; translate the
      // raw EOF into the diagnosis the operator needs.
      return Status::FailedPrecondition(
          "handshake: server rejected the auth response (wrong shared key?): " +
          read.ToString());
    }
  }
  if (reply.type != FrameType::kHelloOk) {
    return Status::IOError("handshake: expected hello_ok, got " +
                           std::string(FrameTypeName(reply.type)));
  }
  BinaryReader reader(reply.payload.data(), reply.payload.size());
  auto info = HelloOkMessage::Deserialize(&reader);
  if (!info.ok()) return info.status();
  if (info->version < kProtocolVersionMin ||
      info->version > kProtocolVersionMax) {
    return Status::FailedPrecondition(
        "handshake: server chose protocol version " +
        std::to_string(info->version) + ", this client speaks [" +
        std::to_string(kProtocolVersionMin) + ", " +
        std::to_string(kProtocolVersionMax) + "]");
  }

  return std::shared_ptr<RpcChannel>(
      new RpcChannel(std::move(*socket), endpoint, std::move(*info)));
}

RpcChannel::RpcChannel(Socket socket, std::string endpoint, HelloOkMessage info)
    : socket_(std::move(socket)),
      endpoint_(std::move(endpoint)),
      server_info_(std::move(info)) {
  reader_ = std::thread([this] { ReaderLoop(); });
}

RpcChannel::~RpcChannel() {
  FailAllPending(Status::IOError("channel destroyed"));
  socket_.Shutdown();
  if (reader_.joinable()) reader_.join();
}

Status RpcChannel::death_reason() const {
  std::lock_guard<std::mutex> lock(mu_);
  return death_reason_;
}

void RpcChannel::ReaderLoop() {
  for (;;) {
    Frame frame;
    Status st = ReadFrame(&socket_, &frame);
    if (!st.ok()) {
      FailAllPending(st);
      return;
    }
    switch (frame.type) {
      case FrameType::kFilterResponse:
      case FrameType::kMutationResponse:
      case FrameType::kInfoResponse:
      case FrameType::kPong:
        break;  // response frames, routed by request id below
      default:
        FailAllPending(Status::IOError("protocol: unexpected " +
                                       std::string(FrameTypeName(frame.type)) +
                                       " frame from server"));
        return;
    }
    std::lock_guard<std::mutex> lock(mu_);
    auto it = pending_.find(frame.request_id);
    if (it == pending_.end()) continue;  // caller gave up (grace expired)
    it->second->type = frame.type;
    it->second->payload = std::move(frame.payload);
    it->second->done = true;
    cv_.notify_all();
  }
}

void RpcChannel::FailAllPending(const Status& reason) {
  bool expected = true;
  if (!healthy_.compare_exchange_strong(expected, false,
                                        std::memory_order_acq_rel)) {
    return;  // already dead; first reason wins
  }
  std::lock_guard<std::mutex> lock(mu_);
  death_reason_ = reason;
  for (auto& [id, call] : pending_) call->done = true;
  cv_.notify_all();
}

Status RpcChannel::SendFrame(FrameType type, std::uint64_t request_id,
                             const std::vector<std::uint8_t>& payload) {
  BinaryWriter writer;
  EncodeFrame(Frame{type, request_id, payload}, &writer);
  std::lock_guard<std::mutex> lock(write_mu_);
  return socket_.WriteAll(writer.buffer().data(), writer.buffer().size());
}

Status RpcChannel::Call(FrameType request_type,
                        const std::vector<std::uint8_t>& payload,
                        FrameType expected, SearchContext* ctx,
                        std::vector<std::uint8_t>* response_payload) {
  if (!healthy()) {
    std::lock_guard<std::mutex> lock(mu_);
    return death_reason_.ok() ? Status::IOError("channel is closed")
                              : death_reason_;
  }
  const std::uint64_t id =
      next_request_id_.fetch_add(1, std::memory_order_relaxed);

  PendingCall call;
  {
    std::lock_guard<std::mutex> lock(mu_);
    pending_.emplace(id, &call);
  }
  Status sent = SendFrame(request_type, id, payload);
  if (!sent.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    pending_.erase(id);
    return sent;
  }

  // Park until the response lands, polling the context so a tripped deadline
  // or cancellation flag turns into one CANCEL frame. After cancelling we
  // keep waiting a bounded grace for the response the server still owes —
  // it carries the remote scan's partial stats. Calls without a context
  // (mutations, info, pings) park until the response or channel death.
  bool cancel_sent = false;
  std::chrono::steady_clock::time_point grace_deadline{};
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait_for(lock, kPollInterval, [&call] { return call.done; });
    if (call.done) break;
    if (!healthy()) break;  // FailAllPending flips done, but don't rely on races
    if (ctx != nullptr && !cancel_sent &&
        ctx->ShouldStop(ctx->stats.nodes_visited)) {
      cancel_sent = true;
      grace_deadline = std::chrono::steady_clock::now() + kCancelGrace;
      lock.unlock();
      // Best-effort: a failed CANCEL write means the connection is dying and
      // the reader will fail this call shortly.
      SendFrame(FrameType::kCancel, id, {});
      lock.lock();
      continue;
    }
    if (cancel_sent && std::chrono::steady_clock::now() >= grace_deadline) {
      pending_.erase(id);
      return Status::IOError(
          "rpc: cancelled call got no response within the grace window");
    }
  }
  pending_.erase(id);
  if (!healthy()) {
    return death_reason_.ok() ? Status::IOError("channel died mid-call")
                              : death_reason_;
  }
  lock.unlock();

  if (call.type != expected) {
    return Status::IOError("protocol: expected " +
                           std::string(FrameTypeName(expected)) + ", got " +
                           std::string(FrameTypeName(call.type)) +
                           " for request " + std::to_string(id));
  }
  *response_payload = std::move(call.payload);
  return Status::OK();
}

Status RpcChannel::CallFilter(const FilterRequestMessage& request,
                              SearchContext* ctx,
                              FilterResponseMessage* response) {
  BinaryWriter payload_writer;
  request.Serialize(&payload_writer);
  std::vector<std::uint8_t> body;
  PPANNS_RETURN_IF_ERROR(Call(FrameType::kFilterRequest,
                              payload_writer.buffer(),
                              FrameType::kFilterResponse, ctx, &body));
  BinaryReader reader(body.data(), body.size());
  auto parsed = FilterResponseMessage::Deserialize(&reader);
  if (!parsed.ok()) return parsed.status();
  *response = std::move(*parsed);
  return Status::OK();
}

Status RpcChannel::CallMutation(FrameType type,
                                const std::vector<std::uint8_t>& payload,
                                MutationResponseMessage* response) {
  std::vector<std::uint8_t> body;
  PPANNS_RETURN_IF_ERROR(
      Call(type, payload, FrameType::kMutationResponse, nullptr, &body));
  BinaryReader reader(body.data(), body.size());
  auto parsed = MutationResponseMessage::Deserialize(&reader);
  if (!parsed.ok()) return parsed.status();
  *response = std::move(*parsed);
  return Status::OK();
}

Status RpcChannel::CallInfo(InfoResponseMessage* response) {
  std::vector<std::uint8_t> body;
  PPANNS_RETURN_IF_ERROR(
      Call(FrameType::kInfoRequest, {}, FrameType::kInfoResponse, nullptr,
           &body));
  BinaryReader reader(body.data(), body.size());
  auto parsed = InfoResponseMessage::Deserialize(&reader);
  if (!parsed.ok()) return parsed.status();
  *response = std::move(*parsed);
  return Status::OK();
}

Status RpcChannel::CallPing(PongMessage* response) {
  std::vector<std::uint8_t> body;
  PPANNS_RETURN_IF_ERROR(
      Call(FrameType::kPing, {}, FrameType::kPong, nullptr, &body));
  BinaryReader reader(body.data(), body.size());
  auto parsed = PongMessage::Deserialize(&reader);
  if (!parsed.ok()) return parsed.status();
  *response = std::move(*parsed);
  return Status::OK();
}

// ---- RpcChannelPool ---------------------------------------------------------

Result<std::shared_ptr<RpcChannelPool>> RpcChannelPool::Connect(
    const std::string& endpoint, std::size_t pool_size) {
  Options options;
  options.pool_size = pool_size;
  return Connect(endpoint, options);
}

Result<std::shared_ptr<RpcChannelPool>> RpcChannelPool::Connect(
    const std::string& endpoint, const Options& options) {
  if (options.pool_size == 0) {
    return Status::InvalidArgument("connect: pool_size must be positive");
  }
  auto pool = std::shared_ptr<RpcChannelPool>(new RpcChannelPool());
  pool->endpoint_ = endpoint;
  pool->options_ = options;
  pool->streams_.reserve(options.pool_size);
  for (std::size_t i = 0; i < options.pool_size; ++i) {
    auto channel = RpcChannel::Connect(endpoint, options.auth_key);
    if (!channel.ok()) return channel.status();
    auto stream = std::make_unique<Stream>();
    stream->channel = std::move(*channel);
    pool->streams_.push_back(std::move(stream));
  }
  pool->server_info_ = pool->streams_.front()->channel->server_info();
  if (options.health_interval_ms > 0) {
    pool->health_thread_ = std::thread([raw = pool.get()] {
      raw->HealthLoop();
    });
  }
  return pool;
}

RpcChannelPool::~RpcChannelPool() {
  stop_health_.store(true, std::memory_order_release);
  health_cv_.notify_all();
  if (health_thread_.joinable()) health_thread_.join();
}

std::shared_ptr<RpcChannel> RpcChannelPool::ChannelAt(std::size_t i) const {
  std::lock_guard<std::mutex> lock(streams_mu_);
  return streams_[i]->channel;
}

std::size_t RpcChannelPool::live_streams() const {
  std::size_t live = 0;
  std::lock_guard<std::mutex> lock(streams_mu_);
  for (const auto& stream : streams_) {
    if (stream->channel != nullptr && stream->channel->healthy()) ++live;
  }
  return live;
}

bool RpcChannelPool::healthy() const {
  std::lock_guard<std::mutex> lock(streams_mu_);
  for (const auto& stream : streams_) {
    if (stream->channel != nullptr && stream->channel->healthy()) return true;
  }
  return false;
}

Status RpcChannelPool::last_death_reason() const {
  std::lock_guard<std::mutex> lock(death_mu_);
  return last_death_reason_.ok()
             ? Status::IOError("pool: every stream to " + endpoint_ +
                               " is dead")
             : last_death_reason_;
}

void RpcChannelPool::NoteDeath(const Status& reason) {
  if (reason.ok()) return;
  std::lock_guard<std::mutex> lock(death_mu_);
  // Keep the most recent reason, but never let a bare EOF ("connection
  // closed") overwrite a diagnosable one — after a kill the interesting
  // error is the connect-refused from the failing re-dial, not the EOF that
  // preceded it.
  if (DiagnosableReason(reason) || !DiagnosableReason(last_death_reason_)) {
    last_death_reason_ = reason;
  }
}

RpcChannelPool::Stream* RpcChannelPool::PickLive(
    std::shared_ptr<RpcChannel>* channel) {
  // Least-inflight over the live streams; ties go to the lowest index, so a
  // lone caller sticks to stream 0 and pool_size=1 is byte-for-byte the old
  // single-channel behavior. The count is a heuristic (racy reads are fine):
  // a stream picked twice concurrently still demultiplexes correctly.
  std::lock_guard<std::mutex> lock(streams_mu_);
  Stream* pick = nullptr;
  std::int64_t best = 0;
  for (const auto& stream : streams_) {
    if (stream->channel == nullptr || !stream->channel->healthy()) continue;
    const std::int64_t inflight =
        stream->inflight.load(std::memory_order_relaxed);
    if (pick == nullptr || inflight < best) {
      pick = stream.get();
      best = inflight;
    }
  }
  if (pick != nullptr) *channel = pick->channel;
  return pick;
}

Status RpcChannelPool::CallFilter(const FilterRequestMessage& request,
                                  SearchContext* ctx,
                                  FilterResponseMessage* response) {
  std::shared_ptr<RpcChannel> channel;
  Stream* pick = PickLive(&channel);
  if (pick == nullptr) return last_death_reason();
  pick->inflight.fetch_add(1, std::memory_order_relaxed);
  const Status st = channel->CallFilter(request, ctx, response);
  pick->inflight.fetch_sub(1, std::memory_order_relaxed);
  if (!st.ok()) NoteDeath(channel->death_reason());
  return st;
}

Status RpcChannelPool::CallMutation(FrameType type,
                                    const std::vector<std::uint8_t>& payload,
                                    MutationResponseMessage* response) {
  std::shared_ptr<RpcChannel> channel;
  Stream* pick = PickLive(&channel);
  if (pick == nullptr) return last_death_reason();
  pick->inflight.fetch_add(1, std::memory_order_relaxed);
  const Status st = channel->CallMutation(type, payload, response);
  pick->inflight.fetch_sub(1, std::memory_order_relaxed);
  if (!st.ok()) NoteDeath(channel->death_reason());
  return st;
}

Status RpcChannelPool::CallInfo(InfoResponseMessage* response) {
  std::shared_ptr<RpcChannel> channel;
  Stream* pick = PickLive(&channel);
  if (pick == nullptr) return last_death_reason();
  pick->inflight.fetch_add(1, std::memory_order_relaxed);
  const Status st = channel->CallInfo(response);
  pick->inflight.fetch_sub(1, std::memory_order_relaxed);
  if (!st.ok()) NoteDeath(channel->death_reason());
  return st;
}

void RpcChannelPool::HealthLoop() {
  const auto interval = std::chrono::milliseconds(options_.health_interval_ms);
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(health_mu_);
      health_cv_.wait_for(lock, interval, [this] {
        return stop_health_.load(std::memory_order_acquire);
      });
    }
    if (stop_health_.load(std::memory_order_acquire)) return;

    for (std::size_t i = 0; i < streams_.size(); ++i) {
      if (stop_health_.load(std::memory_order_acquire)) return;
      Stream* stream = streams_[i].get();
      std::shared_ptr<RpcChannel> channel = ChannelAt(i);

      if (channel != nullptr && channel->healthy()) {
        // Liveness probe; a v1 server would fail the channel on a Ping
        // frame, so probe only when the handshake settled on v2.
        if (channel->negotiated_version() < 2) continue;
        PongMessage pong;
        const Status st = channel->CallPing(&pong);
        if (st.ok()) {
          stream->backoff = std::chrono::milliseconds(0);
          stream->reported_dead = false;
          if (options_.epoch_fence != nullptr) {
            FoldIntoFence(options_.epoch_fence.get(), pong.state_version);
          }
        } else {
          NoteDeath(channel->death_reason());
          stream->reported_dead = true;
        }
        continue;
      }

      // Dead stream: record why once, then re-dial on the backoff schedule.
      if (channel != nullptr && !stream->reported_dead) {
        NoteDeath(channel->death_reason());
        stream->reported_dead = true;
      }
      const auto now = std::chrono::steady_clock::now();
      if (now < stream->next_redial) continue;
      auto redialed = RpcChannel::Connect(endpoint_, options_.auth_key);
      if (redialed.ok()) {
        {
          std::lock_guard<std::mutex> lock(streams_mu_);
          stream->channel = std::move(*redialed);
        }
        stream->backoff = std::chrono::milliseconds(0);
        stream->reported_dead = false;
        if (options_.epoch_fence != nullptr) {
          FoldIntoFence(options_.epoch_fence.get(),
                        ChannelAt(i)->server_info().state_version);
        }
      } else {
        NoteDeath(redialed.status());
        stream->backoff =
            stream->backoff.count() == 0
                ? kRedialInitialBackoff
                : std::min(stream->backoff * 2, kRedialMaxBackoff);
        stream->next_redial = now + stream->backoff;
      }
    }
  }
}

}  // namespace ppanns
