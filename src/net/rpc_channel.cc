#include "net/rpc_channel.h"

#include <chrono>
#include <cstring>
#include <string>
#include <utility>

#include "common/serialize.h"
#include "net/frame.h"

namespace ppanns {

namespace {

/// How long a cancelled call keeps waiting for the response the server still
/// owes. Generous against scheduling noise; the server's cancellation probe
/// fires within kCancelCheckStride scan steps (or the next 1 ms delay
/// slice), so a healthy server answers orders of magnitude sooner.
constexpr auto kCancelGrace = std::chrono::seconds(5);
/// Cadence of the context poll while parked in Call().
constexpr auto kPollInterval = std::chrono::milliseconds(1);

}  // namespace

Result<std::shared_ptr<RpcChannel>> RpcChannel::Connect(
    const std::string& endpoint) {
  auto socket = ConnectTcp(endpoint);
  if (!socket.ok()) return socket.status();

  // Handshake runs synchronously before the reader thread exists: Hello out,
  // exactly one HelloOk back.
  BinaryWriter hello_writer;
  HelloMessage{}.Serialize(&hello_writer);
  Frame hello_frame{FrameType::kHello, 0, hello_writer.TakeBuffer()};
  BinaryWriter frame_writer;
  EncodeFrame(hello_frame, &frame_writer);
  PPANNS_RETURN_IF_ERROR(socket->WriteAll(frame_writer.buffer().data(),
                                          frame_writer.buffer().size()));

  Frame reply;
  PPANNS_RETURN_IF_ERROR(ReadFrame(&*socket, &reply));
  if (reply.type != FrameType::kHelloOk) {
    return Status::IOError("handshake: expected hello_ok, got " +
                           std::string(FrameTypeName(reply.type)));
  }
  BinaryReader reader(reply.payload.data(), reply.payload.size());
  auto info = HelloOkMessage::Deserialize(&reader);
  if (!info.ok()) return info.status();
  if (info->version < kProtocolVersionMin ||
      info->version > kProtocolVersionMax) {
    return Status::FailedPrecondition(
        "handshake: server chose protocol version " +
        std::to_string(info->version) + ", this client speaks [" +
        std::to_string(kProtocolVersionMin) + ", " +
        std::to_string(kProtocolVersionMax) + "]");
  }

  return std::shared_ptr<RpcChannel>(
      new RpcChannel(std::move(*socket), endpoint, std::move(*info)));
}

RpcChannel::RpcChannel(Socket socket, std::string endpoint, HelloOkMessage info)
    : socket_(std::move(socket)),
      endpoint_(std::move(endpoint)),
      server_info_(std::move(info)) {
  reader_ = std::thread([this] { ReaderLoop(); });
}

RpcChannel::~RpcChannel() {
  FailAllPending(Status::IOError("channel destroyed"));
  socket_.Shutdown();
  if (reader_.joinable()) reader_.join();
}

void RpcChannel::ReaderLoop() {
  for (;;) {
    Frame frame;
    Status st = ReadFrame(&socket_, &frame);
    if (!st.ok()) {
      FailAllPending(st);
      return;
    }
    if (frame.type != FrameType::kFilterResponse) {
      FailAllPending(Status::IOError("protocol: unexpected " +
                                     std::string(FrameTypeName(frame.type)) +
                                     " frame from server"));
      return;
    }
    std::lock_guard<std::mutex> lock(mu_);
    auto it = pending_.find(frame.request_id);
    if (it == pending_.end()) continue;  // caller gave up (grace expired)
    it->second->payload = std::move(frame.payload);
    it->second->done = true;
    cv_.notify_all();
  }
}

void RpcChannel::FailAllPending(const Status& reason) {
  bool expected = true;
  if (!healthy_.compare_exchange_strong(expected, false,
                                        std::memory_order_acq_rel)) {
    return;  // already dead; first reason wins
  }
  std::lock_guard<std::mutex> lock(mu_);
  death_reason_ = reason;
  for (auto& [id, call] : pending_) call->done = true;
  cv_.notify_all();
}

Status RpcChannel::SendFrame(FrameType type, std::uint64_t request_id,
                             const std::vector<std::uint8_t>& payload) {
  BinaryWriter writer;
  EncodeFrame(Frame{type, request_id, payload}, &writer);
  std::lock_guard<std::mutex> lock(write_mu_);
  return socket_.WriteAll(writer.buffer().data(), writer.buffer().size());
}

Status RpcChannel::CallFilter(const FilterRequestMessage& request,
                              SearchContext* ctx,
                              FilterResponseMessage* response) {
  if (!healthy()) {
    std::lock_guard<std::mutex> lock(mu_);
    return death_reason_.ok() ? Status::IOError("channel is closed")
                              : death_reason_;
  }
  const std::uint64_t id =
      next_request_id_.fetch_add(1, std::memory_order_relaxed);
  BinaryWriter payload_writer;
  request.Serialize(&payload_writer);

  PendingCall call;
  {
    std::lock_guard<std::mutex> lock(mu_);
    pending_.emplace(id, &call);
  }
  Status sent = SendFrame(FrameType::kFilterRequest, id,
                          payload_writer.buffer());
  if (!sent.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    pending_.erase(id);
    return sent;
  }

  // Park until the response lands, polling the context so a tripped deadline
  // or cancellation flag turns into one CANCEL frame. After cancelling we
  // keep waiting a bounded grace for the response the server still owes —
  // it carries the remote scan's partial stats.
  bool cancel_sent = false;
  std::chrono::steady_clock::time_point grace_deadline{};
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait_for(lock, kPollInterval, [&call] { return call.done; });
    if (call.done) break;
    if (!healthy()) break;  // FailAllPending flips done, but don't rely on races
    if (ctx != nullptr && !cancel_sent &&
        ctx->ShouldStop(ctx->stats.nodes_visited)) {
      cancel_sent = true;
      grace_deadline = std::chrono::steady_clock::now() + kCancelGrace;
      lock.unlock();
      // Best-effort: a failed CANCEL write means the connection is dying and
      // the reader will fail this call shortly.
      SendFrame(FrameType::kCancel, id, {});
      lock.lock();
      continue;
    }
    if (cancel_sent && std::chrono::steady_clock::now() >= grace_deadline) {
      pending_.erase(id);
      return Status::IOError(
          "rpc: cancelled call got no response within the grace window");
    }
  }
  pending_.erase(id);
  if (!healthy()) {
    return death_reason_.ok() ? Status::IOError("channel died mid-call")
                              : death_reason_;
  }
  lock.unlock();

  BinaryReader reader(call.payload.data(), call.payload.size());
  auto parsed = FilterResponseMessage::Deserialize(&reader);
  if (!parsed.ok()) return parsed.status();
  *response = std::move(*parsed);
  return Status::OK();
}

Result<std::shared_ptr<RpcChannelPool>> RpcChannelPool::Connect(
    const std::string& endpoint, std::size_t pool_size) {
  if (pool_size == 0) {
    return Status::InvalidArgument("connect: pool_size must be positive");
  }
  auto pool = std::shared_ptr<RpcChannelPool>(new RpcChannelPool());
  pool->streams_.reserve(pool_size);
  for (std::size_t i = 0; i < pool_size; ++i) {
    auto channel = RpcChannel::Connect(endpoint);
    if (!channel.ok()) return channel.status();
    auto stream = std::make_unique<Stream>();
    stream->channel = std::move(*channel);
    pool->streams_.push_back(std::move(stream));
  }
  return pool;
}

bool RpcChannelPool::healthy() const {
  for (const auto& stream : streams_) {
    if (stream->channel->healthy()) return true;
  }
  return false;
}

Status RpcChannelPool::CallFilter(const FilterRequestMessage& request,
                                  SearchContext* ctx,
                                  FilterResponseMessage* response) {
  // Least-inflight over the live streams; ties go to the lowest index, so a
  // lone caller sticks to stream 0 and pool_size=1 is byte-for-byte the old
  // single-channel behavior. The count is a heuristic (racy reads are fine):
  // a stream picked twice concurrently still demultiplexes correctly.
  Stream* pick = nullptr;
  std::int64_t best = 0;
  for (const auto& stream : streams_) {
    if (!stream->channel->healthy()) continue;
    const std::int64_t inflight =
        stream->inflight.load(std::memory_order_relaxed);
    if (pick == nullptr || inflight < best) {
      pick = stream.get();
      best = inflight;
    }
  }
  if (pick == nullptr) {
    // Fully dead: let the first stream fail fast with its death reason, the
    // same error a bare channel would report.
    return streams_.front()->channel->CallFilter(request, ctx, response);
  }
  pick->inflight.fetch_add(1, std::memory_order_relaxed);
  const Status st = pick->channel->CallFilter(request, ctx, response);
  pick->inflight.fetch_sub(1, std::memory_order_relaxed);
  return st;
}

}  // namespace ppanns
