#include "net/remote_shard.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <utility>

#include "common/serialize.h"
#include "common/types.h"
#include "core/encrypted_database.h"

namespace ppanns {

Status RemoteShardClient::Filter(const QueryToken& token,
                                 const ShardFilterOptions& options,
                                 SearchContext* ctx,
                                 ShardFilterResult* out) const {
  // A dispatch that is already cancelled (or past its deadline) never goes on
  // the wire — same shape as the in-process pre-scan check.
  if (ctx != nullptr && ctx->ShouldStop(ctx->stats.nodes_visited)) {
    return Status::OK();
  }

  FilterRequestMessage request;
  request.shard = shard_;
  request.replica = replica_;
  request.token = token;
  request.k_prime = options.k_prime;
  request.ef_search = options.ef_search;
  request.want_dce = options.want_dce ? 1 : 0;
  request.admission_floor_us = static_cast<std::int64_t>(
      std::llround(std::max(0.0, options.admission_ms) * 1000.0));
  if (ctx != nullptr) {
    request.node_budget = ctx->node_budget();
    if (ctx->has_deadline()) {
      // Rebase the absolute deadline to a relative budget: clocks on two
      // hosts share no epoch. An already-expired deadline ships as 0 so the
      // server sheds immediately instead of scanning.
      const auto remaining = std::chrono::duration_cast<std::chrono::microseconds>(
          ctx->deadline() - SearchContext::Clock::now());
      request.deadline_budget_us = std::max<std::int64_t>(0, remaining.count());
    }
  }

  FilterResponseMessage response;
  PPANNS_RETURN_IF_ERROR(pool_->CallFilter(request, ctx, &response));

  // The response's stats and early-exit reason fold into the caller's context
  // whatever the outcome — a shed or cancelled remote scan's partial work is
  // accounted exactly like an in-process one.
  if (ctx != nullptr) {
    SearchStats remote;
    remote.nodes_visited = response.nodes_visited;
    remote.distance_computations = response.distance_computations;
    remote.dce_comparisons = response.dce_comparisons;
    ctx->stats.Merge(remote);
    ctx->AdoptEarlyExit(static_cast<EarlyExit>(response.early_exit));
  }
  PPANNS_RETURN_IF_ERROR(response.ToStatus());

  out->scanned = response.scanned != 0;
  out->candidates = std::move(response.candidates);
  if (response.dce_block > 0 && !response.dce_data.empty()) {
    const std::size_t per = 4 * static_cast<std::size_t>(response.dce_block);
    out->dce.reserve(out->candidates.size());
    for (std::size_t i = 0; i < out->candidates.size(); ++i) {
      DceCiphertext ct;
      ct.block = static_cast<std::size_t>(response.dce_block);
      ct.data.assign(response.dce_data.begin() + i * per,
                     response.dce_data.begin() + (i + 1) * per);
      out->dce.push_back(std::move(ct));
    }
  }
  return Status::OK();
}

// ---- RemoteMutationClient ---------------------------------------------------

Result<MutationOutcome> RemoteMutationClient::Call(
    FrameType type, const std::vector<std::uint8_t>& payload) const {
  if (pool_->server_info().version < 2) {
    return Status::NotSupported(
        "mutation: endpoint " + pool_->endpoint() +
        " negotiated protocol version " +
        std::to_string(pool_->server_info().version) +
        ", mutation frames require >= 2");
  }
  MutationResponseMessage response;
  PPANNS_RETURN_IF_ERROR(pool_->CallMutation(type, payload, &response));
  MutationOutcome outcome;
  outcome.status = response.ToStatus();
  outcome.id = static_cast<VectorId>(response.id);
  outcome.state_version = response.state_version;
  outcome.size = response.size;
  outcome.ops = static_cast<std::size_t>(response.ops);
  return outcome;
}

Result<MutationOutcome> RemoteMutationClient::Insert(const EncryptedVector& v) {
  InsertRequestMessage request;
  request.sap = v.sap;
  request.dce_block = static_cast<std::uint64_t>(v.dce.block);
  request.dce_data = v.dce.data;
  BinaryWriter payload;
  request.Serialize(&payload);
  return Call(FrameType::kInsertRequest, payload.buffer());
}

Result<MutationOutcome> RemoteMutationClient::Delete(VectorId global_id) {
  DeleteRequestMessage request;
  request.global_id = static_cast<std::uint64_t>(global_id);
  BinaryWriter payload;
  request.Serialize(&payload);
  return Call(FrameType::kDeleteRequest, payload.buffer());
}

Result<MutationOutcome> RemoteMutationClient::Maintain(
    const MaintenanceCommand& cmd) {
  MaintenanceRequestMessage request;
  request.op = static_cast<std::uint8_t>(cmd.op);
  request.shard = cmd.shard;
  request.compact_threshold = cmd.compact_threshold;
  request.split_skew = cmd.split_skew;
  request.min_split_size = static_cast<std::uint64_t>(cmd.min_split_size);
  request.build_threads = static_cast<std::uint64_t>(cmd.build_threads);
  BinaryWriter payload;
  request.Serialize(&payload);
  return Call(FrameType::kMaintenanceRequest, payload.buffer());
}

Result<InfoResponseMessage> RemoteMutationClient::Info() const {
  if (pool_->server_info().version < 2) {
    return Status::NotSupported(
        "info: endpoint " + pool_->endpoint() +
        " negotiated protocol version " +
        std::to_string(pool_->server_info().version) +
        ", the info frame requires >= 2");
  }
  InfoResponseMessage response;
  PPANNS_RETURN_IF_ERROR(pool_->CallInfo(&response));
  return response;
}

// ---- Cluster assembly -------------------------------------------------------

Result<ConnectedCluster> ConnectCluster(
    const std::vector<std::string>& endpoints, const ConnectOptions& options) {
  if (endpoints.empty()) {
    return Status::InvalidArgument("connect: no endpoints given");
  }

  // One fence for the whole cluster: pools fold Pong epochs into it, the
  // gather folds mutation-response epochs, state_version() reads it.
  auto fence = std::make_shared<std::atomic<std::uint64_t>>(0);
  RpcChannelPool::Options pool_options;
  pool_options.pool_size = options.pool_size;
  pool_options.auth_key = options.auth_key;
  pool_options.health_interval_ms = options.health_interval_ms;
  pool_options.epoch_fence = fence;

  std::vector<std::shared_ptr<RpcChannelPool>> channels;
  channels.reserve(endpoints.size());
  for (const std::string& endpoint : endpoints) {
    auto channel = RpcChannelPool::Connect(endpoint, pool_options);
    if (!channel.ok()) return channel.status();
    // Seed the fence with the handshake-time epoch (v1 servers report 0).
    const std::uint64_t seed = (*channel)->server_info().state_version;
    std::uint64_t cur = fence->load(std::memory_order_acquire);
    while (seed > cur &&
           !fence->compare_exchange_weak(cur, seed,
                                         std::memory_order_acq_rel)) {
    }
    channels.push_back(std::move(*channel));
  }

  const HelloOkMessage& first = channels.front()->server_info();
  for (const auto& channel : channels) {
    const HelloOkMessage& info = channel->server_info();
    if (info.num_shards != first.num_shards ||
        info.num_replicas != first.num_replicas || info.dim != first.dim ||
        info.index_kind != first.index_kind ||
        info.capacity != first.capacity) {
      return Status::InvalidArgument(
          "connect: endpoint " + channel->endpoint() +
          " advertises a different topology than " +
          channels.front()->endpoint());
    }
  }
  if (first.num_shards == 0 || first.num_replicas == 0) {
    return Status::InvalidArgument("connect: server advertises empty topology");
  }

  ShardedCloudServer::RemoteTopology topology;
  topology.num_shards = first.num_shards;
  topology.num_replicas = first.num_replicas;
  topology.dim = static_cast<std::size_t>(first.dim);
  topology.index_kind = static_cast<IndexKind>(first.index_kind);
  topology.size = static_cast<std::size_t>(first.size);
  topology.capacity = static_cast<std::size_t>(first.capacity);
  topology.storage_bytes = static_cast<std::size_t>(first.storage_bytes);

  // Route every shard to the first endpoint that serves it; each replica rank
  // of that shard gets its own stub over the endpoint's shared stream pool.
  std::vector<std::vector<std::unique_ptr<ShardTransport>>> transports(
      first.num_shards);
  for (std::uint32_t s = 0; s < first.num_shards; ++s) {
    std::shared_ptr<RpcChannelPool> owner;
    for (const auto& channel : channels) {
      const auto& served = channel->server_info().served_shards;
      if (std::find(served.begin(), served.end(), s) != served.end()) {
        owner = channel;
        break;
      }
    }
    if (owner == nullptr) {
      return Status::FailedPrecondition(
          "connect: shard " + std::to_string(s) +
          " is served by none of the given endpoints");
    }
    transports[s].reserve(first.num_replicas);
    for (std::uint32_t r = 0; r < first.num_replicas; ++r) {
      transports[s].push_back(
          std::make_unique<RemoteShardClient>(owner, s, r));
    }
  }

  ConnectedCluster cluster{ShardedCloudServer(topology, std::move(transports)),
                           fence, channels, endpoints};

  // The mutation path needs EVERY endpoint on v2: each one loads the full
  // package, so a broadcast that skipped a v1 endpoint would silently
  // diverge the replicas. Against a mixed or v1 cluster the mutation
  // surface stays NotSupported (read-only gather, the pre-v2 behavior).
  const bool all_v2 = std::all_of(
      channels.begin(), channels.end(),
      [](const auto& channel) { return channel->server_info().version >= 2; });
  if (all_v2) {
    std::vector<std::unique_ptr<MutationTransport>> mutators;
    mutators.reserve(channels.size());
    for (const auto& channel : channels) {
      mutators.push_back(std::make_unique<RemoteMutationClient>(channel));
    }
    cluster.server.AttachMutationTransports(std::move(mutators));
  }
  cluster.server.AttachRemoteEpochFence(fence);
  return cluster;
}

Result<ShardedCloudServer> ConnectShardedService(
    const std::vector<std::string>& endpoints, std::size_t pool_size) {
  ConnectOptions options;
  options.pool_size = pool_size;
  auto cluster = ConnectCluster(endpoints, options);
  if (!cluster.ok()) return cluster.status();
  return std::move(cluster->server);
}

}  // namespace ppanns
