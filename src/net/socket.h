// Thin RAII wrappers over blocking POSIX TCP sockets — everything the RPC
// layer needs and nothing more: connect/listen/accept, exact-length reads,
// full-length writes, and an unblockable shutdown for clean teardown.
//
// Blocking sockets on pool threads (not an event loop) keep the layer small
// and debuggable; the serving tier's concurrency comes from the ThreadPool
// and the per-request demultiplexing in RpcChannel, not from epoll.

#ifndef PPANNS_NET_SOCKET_H_
#define PPANNS_NET_SOCKET_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace ppanns {

/// A connected TCP stream socket. Move-only; the destructor closes.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Writes all `n` bytes (looping over partial writes). IOError on a closed
  /// or failed connection; SIGPIPE is suppressed.
  Status WriteAll(const std::uint8_t* data, std::size_t n);

  /// Reads exactly `n` bytes. IOError on EOF or failure (a clean peer close
  /// mid-message is an error at this layer — frames are never split).
  Status ReadExact(std::uint8_t* data, std::size_t n);

  /// Disables Nagle's algorithm — RPC frames are latency-sensitive and
  /// already batched by construction.
  void SetNoDelay();

  /// Unblocks any thread stuck in ReadExact/WriteAll on this socket (they
  /// return IOError) without racing the destructor's close.
  void Shutdown();

  void Close();

 private:
  int fd_ = -1;
};

/// Connects to IPv4 `host:port` ("127.0.0.1:9000"; "localhost" resolves).
Result<Socket> ConnectTcp(const std::string& endpoint);

/// A listening TCP socket bound to 127.0.0.1. The serving tier now has an
/// optional shared-key handshake (net/auth.h, --auth-key-file), but the
/// listener stays loopback-only: the auth layer proves key possession, it
/// does not encrypt the stream, so ciphertext frames still should not
/// transit an untrusted network.
class Listener {
 public:
  /// Binds and listens; port 0 picks an ephemeral port, readable via port().
  static Result<Listener> Bind(std::uint16_t port);

  Listener() = default;
  ~Listener() { Close(); }
  Listener(Listener&& other) noexcept
      : fd_(other.fd_), port_(other.port_) {
    other.fd_ = -1;
  }
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  bool valid() const { return fd_ >= 0; }
  std::uint16_t port() const { return port_; }

  /// Blocks for one connection. IOError after Shutdown/Close — the accept
  /// loop's exit signal.
  Result<Socket> Accept();

  /// Unblocks a thread stuck in Accept without closing the fd under it.
  void Shutdown();

  void Close();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace ppanns

#endif  // PPANNS_NET_SOCKET_H_
