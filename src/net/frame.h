// Length-prefixed binary framing for the shard RPC protocol.
//
// Every message on a connection travels as one frame:
//
//   [u32 length][u8 type][u64 request_id][payload ...]
//
// `length` counts everything after itself (type + request id + payload),
// little-endian like the rest of the serialization layer. The decoder is the
// trust boundary of the distributed tier: frames arrive from the network, so
// every field is range-checked and a malformed, truncated, or oversized frame
// comes back as a clean Status — never a crash, an over-read, or an
// unbounded allocation (kMaxFrameBytes caps what a single length prefix can
// demand before any buffer is sized).

#ifndef PPANNS_NET_FRAME_H_
#define PPANNS_NET_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/serialize.h"
#include "common/status.h"

namespace ppanns {

/// Frame discriminator. Serialized on the wire — keep values stable.
enum class FrameType : std::uint8_t {
  kHello = 1,           ///< client -> server: version handshake
  kHelloOk = 2,         ///< server -> client: chosen version + topology
  kFilterRequest = 3,   ///< client -> server: one (shard, replica) scan
  kFilterResponse = 4,  ///< server -> client: candidates + stats (or Status)
  kCancel = 5,          ///< client -> server: abort the named request
  // Protocol v2 additions: mutation, observability, health, auth.
  kInsertRequest = 6,       ///< client -> server: insert one EncryptedVector
  kDeleteRequest = 7,       ///< client -> server: tombstone one global id
  kMaintenanceRequest = 8,  ///< client -> server: compact/split/sweep
  kMutationResponse = 9,    ///< server -> client: Status + post-apply epoch
  kInfoRequest = 10,        ///< client -> server: package/WAL snapshot ask
  kInfoResponse = 11,       ///< server -> client: the snapshot
  kPing = 12,               ///< client -> server: health probe
  kPong = 13,               ///< server -> client: liveness + state_version
  kAuthChallenge = 14,      ///< server -> client: fresh HMAC nonce
  kAuthResponse = 15,       ///< client -> server: HMAC(key, nonce)
};

/// True when `raw` names a FrameType this protocol version understands.
bool KnownFrameType(std::uint8_t raw);

/// "hello" | "hello_ok" | "filter_request" | "filter_response" | "cancel".
const char* FrameTypeName(FrameType type);

/// Bytes of the length prefix itself (not counted by `length`).
inline constexpr std::size_t kFrameLengthBytes = sizeof(std::uint32_t);
/// Fixed bytes inside `length`: the type byte and the request id.
inline constexpr std::size_t kFrameFixedBytes =
    sizeof(std::uint8_t) + sizeof(std::uint64_t);
/// Upper bound on `length`: caps the allocation a single crafted prefix can
/// demand and bounds every read loop. 64 MiB fits any realistic k' response
/// (candidates + DCE ciphertexts) with two orders of magnitude to spare.
inline constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

/// One decoded frame: the envelope fields plus the raw message payload.
struct Frame {
  FrameType type = FrameType::kHello;
  std::uint64_t request_id = 0;
  std::vector<std::uint8_t> payload;
};

/// Appends the complete wire encoding of `frame` to `out`.
void EncodeFrame(const Frame& frame, BinaryWriter* out);

/// Decodes one complete frame from the front of [data, data + size).
/// `consumed`, when non-null, receives the total frame size on success.
/// Errors (all without reading past `size` or allocating beyond the
/// declared payload):
///   OutOfRange — input shorter than the declared frame
///   IOError    — length below the fixed minimum, length above
///                kMaxFrameBytes, or an unknown frame type
Status DecodeFrame(const std::uint8_t* data, std::size_t size, Frame* out,
                   std::size_t* consumed = nullptr);

class Socket;

/// Reads exactly one frame off a blocking socket: the length prefix first,
/// then the declared body (bounds-checked before any allocation). IOError on
/// transport failure or a framing violation — the caller tears the
/// connection down either way.
Status ReadFrame(Socket* socket, Frame* out);

}  // namespace ppanns

#endif  // PPANNS_NET_FRAME_H_
