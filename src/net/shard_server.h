// ShardServer — hosts one or more shard replicas of a ShardedCloudServer
// behind a TCP listener, speaking the net/frame.h + net/wire.h protocol.
//
// Threading model: one accept thread; one reader thread per connection that
// parses frames and dispatches filter scans onto the global ThreadPool, so a
// slow scan never blocks the connection — responses are written out of order
// as scans complete (that is the streaming: the gather's RpcChannel demuxes
// them by request id). A per-connection write mutex keeps response frames
// from interleaving.
//
// Cancellation: every in-flight scan registers a per-request atomic flag; a
// kCancel frame naming the request id raises it and the scan's CancelProbe
// aborts within a stride. The response is still sent — carrying the partial
// SearchStats so the gather accounts the remote loser's wasted work.
//
// Admission: a request whose deadline_budget_us cannot cover its
// admission_floor_us is shed with kResourceExhausted before any scan work.

#ifndef PPANNS_NET_SHARD_SERVER_H_
#define PPANNS_NET_SHARD_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"
#include "core/sharded_cloud_server.h"
#include "net/socket.h"
#include "net/wire.h"

namespace ppanns {

class ShardServer {
 public:
  /// Serves the given shard ids of `service` (which must be local — it holds
  /// the actual replicas — and must outlive the server). An empty
  /// `served_shards` serves every shard.
  ShardServer(const ShardedCloudServer* service,
              std::vector<std::uint32_t> served_shards);
  ~ShardServer();

  ShardServer(const ShardServer&) = delete;
  ShardServer& operator=(const ShardServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 = kernel-chosen ephemeral port) and starts
  /// accepting connections.
  Status Start(std::uint16_t port);

  /// The bound port (after a successful Start).
  std::uint16_t port() const { return port_; }

  /// Injects `ms` of delay before every scan this server runs — test hook
  /// for deadline/cancellation/hedging suites, same knob as the in-process
  /// SetReplicaDelay.
  void set_scan_delay_ms(int ms) {
    scan_delay_ms_.store(ms, std::memory_order_relaxed);
  }

  /// Stops accepting, tears down every connection, and joins all threads.
  /// In-flight scans are cancelled and drained. Idempotent.
  void Stop();

 private:
  /// One accepted connection: its socket, its reader thread, and the scans
  /// still in flight on the pool. Held by shared_ptr so a pool task finishing
  /// after Stop() still has a live object to decrement.
  struct Connection;

  void AcceptLoop();
  void ServeConnection(const std::shared_ptr<Connection>& conn);
  /// Runs one filter scan and writes its response frame. Pool-side.
  void RunFilter(const std::shared_ptr<Connection>& conn,
                 std::uint64_t request_id,
                 std::shared_ptr<FilterRequestMessage> request,
                 std::shared_ptr<std::atomic<bool>> cancel_flag);

  bool Serves(std::uint32_t shard) const;

  const ShardedCloudServer* service_;
  std::vector<std::uint32_t> served_shards_;
  std::atomic<int> scan_delay_ms_{0};

  Listener listener_;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::thread accept_thread_;

  std::mutex conns_mu_;
  std::vector<std::shared_ptr<Connection>> conns_;
};

}  // namespace ppanns

#endif  // PPANNS_NET_SHARD_SERVER_H_
