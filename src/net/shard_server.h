// ShardServer — hosts one or more shard replicas of a ShardedCloudServer
// behind a TCP listener, speaking the net/frame.h + net/wire.h protocol.
//
// The server fronts a PpannsService facade (not a bare ShardedCloudServer):
// mutations arriving over the wire go through the facade's validation and —
// when the operator attached one (`ppanns_shard_server --wal-dir`) — its
// write-ahead log, so a remote Insert is exactly as durable as a local one.
//
// Threading model: one accept thread; one reader thread per connection that
// parses frames and dispatches filter scans onto dedicated threads, so a
// slow scan never blocks the connection — responses are written out of order
// as scans complete (that is the streaming: the gather's RpcChannel demuxes
// them by request id). Mutation, info, and ping frames are handled inline on
// the reader thread: mutations must serialize anyway (facade contract), and
// inline handling makes each connection's mutations naturally ordered. A
// server-wide reader/writer lock keeps filter scans and mutations apart —
// the mutation contract says callers serialize mutation against their own
// searches, and over the wire the server IS that caller.
//
// Cancellation: every in-flight scan registers a per-request atomic flag; a
// kCancel frame naming the request id raises it and the scan's CancelProbe
// aborts within a stride. The response is still sent — carrying the partial
// SearchStats so the gather accounts the remote loser's wasted work.
//
// Admission: a request whose deadline_budget_us cannot cover its
// admission_floor_us is shed with kResourceExhausted before any scan work.
//
// Authentication (Options::auth_key non-empty): the handshake becomes
// Hello -> AuthChallenge (fresh 32-byte nonce) -> AuthResponse
// (HMAC-SHA256(key, nonce), constant-time compare) -> HelloOk. A wrong or
// missing MAC tears the connection down silently — an unauthenticated peer
// never gets a frame served, and learns nothing about why.

#ifndef PPANNS_NET_SHARD_SERVER_H_
#define PPANNS_NET_SHARD_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <thread>
#include <vector>

#include "common/status.h"
#include "core/ppanns_service.h"
#include "net/frame.h"
#include "net/socket.h"
#include "net/wire.h"

namespace ppanns {

class ShardServer {
 public:
  struct Options {
    /// Shared HMAC key; non-empty arms the challenge–response handshake.
    std::vector<std::uint8_t> auth_key;
  };

  /// Serves the given shard ids of `service` (which must front a local
  /// ShardedCloudServer — it holds the actual replicas — and must outlive
  /// the server). An empty `served_shards` serves every shard. Mutations
  /// always apply to the whole package regardless of `served_shards` (the
  /// scope only limits which shards this endpoint *scans* for the gather).
  ShardServer(PpannsService* service, std::vector<std::uint32_t> served_shards,
              Options options = {});
  ~ShardServer();

  ShardServer(const ShardServer&) = delete;
  ShardServer& operator=(const ShardServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 = kernel-chosen ephemeral port) and starts
  /// accepting connections.
  Status Start(std::uint16_t port);

  /// The bound port (after a successful Start).
  std::uint16_t port() const { return port_; }

  /// Injects `ms` of delay before every scan this server runs — test hook
  /// for deadline/cancellation/hedging suites, same knob as the in-process
  /// SetReplicaDelay.
  void set_scan_delay_ms(int ms) {
    scan_delay_ms_.store(ms, std::memory_order_relaxed);
  }

  /// Stops accepting, tears down every connection, and joins all threads.
  /// In-flight scans are cancelled and drained. Idempotent.
  void Stop();

 private:
  /// One accepted connection: its socket, its reader thread, and the scans
  /// still in flight on the pool. Held by shared_ptr so a pool task finishing
  /// after Stop() still has a live object to decrement.
  struct Connection;

  void AcceptLoop();
  void ServeConnection(const std::shared_ptr<Connection>& conn);
  /// Runs one filter scan and writes its response frame. Scan-thread-side.
  void RunFilter(const std::shared_ptr<Connection>& conn,
                 std::uint64_t request_id,
                 std::shared_ptr<FilterRequestMessage> request,
                 std::shared_ptr<std::atomic<bool>> cancel_flag);
  /// Applies one mutation frame inline and writes its MutationResponse.
  /// Returns false when the connection should be torn down (malformed
  /// payload or a dead socket).
  bool HandleMutation(const std::shared_ptr<Connection>& conn,
                      const struct Frame& frame);
  bool HandleInfo(const std::shared_ptr<Connection>& conn,
                  std::uint64_t request_id);
  bool HandlePing(const std::shared_ptr<Connection>& conn,
                  std::uint64_t request_id);
  /// Serializes `payload` into a `type` frame and writes it under the
  /// connection's write mutex. Returns false on a dead socket.
  template <typename Message>
  bool WriteMessage(const std::shared_ptr<Connection>& conn, FrameType type,
                    std::uint64_t request_id, const Message& payload);

  bool Serves(std::uint32_t shard) const;
  const ShardedCloudServer& sharded() const {
    return service_->sharded_server();
  }

  PpannsService* service_;
  std::vector<std::uint32_t> served_shards_;
  Options options_;
  std::atomic<int> scan_delay_ms_{0};

  /// Filter scans hold this shared; mutations hold it exclusive — the
  /// server is the "caller" of the mutation contract and must serialize its
  /// own searches against its own mutations.
  std::shared_mutex serve_mu_;

  Listener listener_;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::thread accept_thread_;

  std::mutex conns_mu_;
  std::vector<std::shared_ptr<Connection>> conns_;
};

}  // namespace ppanns

#endif  // PPANNS_NET_SHARD_SERVER_H_
