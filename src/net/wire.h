// Wire messages of the shard RPC protocol — the payloads carried inside
// net/frame.h frames.
//
// Every message follows the repo's serialization contract: Serialize appends
// the exact bytes ByteSize() predicts, Deserialize consumes them with full
// bounds/shape validation (these bytes arrive from the network). The
// cryptographic token reuses QueryToken's own wire format; everything the
// serving tier adds — per-RPC deadline budget, node budget, admission floor,
// the response's SearchStats — travels here, so SearchContext semantics
// survive the process boundary:
//  * the gather's *absolute* deadline is rebased to a *relative*
//    `deadline_budget_us` (clocks on two hosts share no epoch); the server
//    re-anchors it against its own steady clock;
//  * cancellation is a kCancel frame naming the request id; the server routes
//    it to the scan's cancellation flag, and the response still comes back —
//    carrying the partial SearchStats, so the gather can account the remote
//    loser's wasted work exactly like an in-process hedge loser.

#ifndef PPANNS_NET_WIRE_H_
#define PPANNS_NET_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/search_context.h"
#include "common/serialize.h"
#include "common/status.h"
#include "common/types.h"
#include "core/query_client.h"
#include "crypto/dce.h"

namespace ppanns {

/// First bytes of every Hello: rejects a stray client that dialed the wrong
/// port before any length field is trusted. ASCII "PPRP" (PP-ANNS RPC).
inline constexpr std::uint32_t kProtocolMagic = 0x50525050u;
/// Protocol versions this build can speak. The handshake intersects the
/// client's [min, max] with the server's; an empty intersection is a clean
/// handshake failure, not a parse error mid-stream.
inline constexpr std::uint32_t kProtocolVersionMin = 1;
inline constexpr std::uint32_t kProtocolVersionMax = 1;

/// Client -> server, first frame on every connection.
struct HelloMessage {
  std::uint32_t magic = kProtocolMagic;
  std::uint32_t version_min = kProtocolVersionMin;
  std::uint32_t version_max = kProtocolVersionMax;

  void Serialize(BinaryWriter* out) const;
  static Result<HelloMessage> Deserialize(BinaryReader* in);
  std::size_t ByteSize() const;
};

/// Server -> client: the negotiated version plus the topology of the package
/// behind this endpoint — everything the gather node needs to assemble a
/// remote ShardedCloudServer without ever seeing the ciphertext database.
struct HelloOkMessage {
  std::uint32_t version = kProtocolVersionMax;  ///< chosen protocol version
  std::uint32_t num_shards = 0;                 ///< S of the whole package
  std::uint32_t num_replicas = 0;               ///< R per shard
  std::uint64_t dim = 0;
  std::uint8_t index_kind = 0;                  ///< IndexKind
  std::uint64_t size = 0;                       ///< live vectors, all shards
  std::uint64_t capacity = 0;                   ///< next global id
  std::uint64_t storage_bytes = 0;
  /// Shard ids this endpoint actually serves (a server may host a subset).
  std::vector<std::uint32_t> served_shards;

  void Serialize(BinaryWriter* out) const;
  static Result<HelloOkMessage> Deserialize(BinaryReader* in);
  std::size_t ByteSize() const;
};

/// Client -> server: one (shard, replica) filter scan.
struct FilterRequestMessage {
  std::uint32_t shard = 0;
  std::uint32_t replica = 0;
  QueryToken token;
  std::uint64_t k_prime = 0;
  std::uint64_t ef_search = 0;
  std::uint64_t node_budget = 0;  ///< 0 = unlimited
  /// Remaining wall-clock budget in microseconds at send time; -1 = no
  /// deadline. The server re-anchors: deadline = its now() + budget.
  std::int64_t deadline_budget_us = -1;
  /// Admission floor in microseconds; > 0 asks the server to shed the scan
  /// with kResourceExhausted when the budget cannot cover the floor.
  std::int64_t admission_floor_us = 0;
  /// Ask for the candidates' DCE ciphertexts in the response (the gather
  /// node holds no shard data, so the refine phase needs them shipped).
  std::uint8_t want_dce = 0;

  void Serialize(BinaryWriter* out) const;
  static Result<FilterRequestMessage> Deserialize(BinaryReader* in);
  std::size_t ByteSize() const;
};

/// Server -> client: the scan's outcome. Always sent, even for a cancelled
/// or shed scan — the Status and the partial SearchStats ride back so the
/// gather can account remote work exactly like in-process work.
struct FilterResponseMessage {
  std::uint8_t status_code = 0;  ///< Status::Code; 0 = OK
  std::string status_message;
  std::uint8_t scanned = 0;      ///< did a filter scan actually start?
  std::uint8_t early_exit = 0;   ///< EarlyExit of the remote scan
  std::uint64_t nodes_visited = 0;
  std::uint64_t distance_computations = 0;
  std::uint64_t dce_comparisons = 0;
  /// Per-shard top-k' in *global* ids (the server owns the manifest slice).
  std::vector<Neighbor> candidates;
  /// DCE ciphertexts aligned with `candidates`, flattened as
  /// candidates.size() * 4 * dce_block doubles; empty when want_dce was 0.
  std::uint64_t dce_block = 0;
  std::vector<double> dce_data;

  void Serialize(BinaryWriter* out) const;
  static Result<FilterResponseMessage> Deserialize(BinaryReader* in);
  std::size_t ByteSize() const;

  Status ToStatus() const;                    ///< status_code + message
  void SetStatus(const Status& st);
};

/// kCancel frames carry no payload — the request id in the frame header
/// names the scan to abort.

}  // namespace ppanns

#endif  // PPANNS_NET_WIRE_H_
