// Wire messages of the shard RPC protocol — the payloads carried inside
// net/frame.h frames.
//
// Every message follows the repo's serialization contract: Serialize appends
// the exact bytes ByteSize() predicts, Deserialize consumes them with full
// bounds/shape validation (these bytes arrive from the network). The
// cryptographic token reuses QueryToken's own wire format; everything the
// serving tier adds — per-RPC deadline budget, node budget, admission floor,
// the response's SearchStats — travels here, so SearchContext semantics
// survive the process boundary:
//  * the gather's *absolute* deadline is rebased to a *relative*
//    `deadline_budget_us` (clocks on two hosts share no epoch); the server
//    re-anchors it against its own steady clock;
//  * cancellation is a kCancel frame naming the request id; the server routes
//    it to the scan's cancellation flag, and the response still comes back —
//    carrying the partial SearchStats, so the gather can account the remote
//    loser's wasted work exactly like an in-process hedge loser.

#ifndef PPANNS_NET_WIRE_H_
#define PPANNS_NET_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/search_context.h"
#include "common/serialize.h"
#include "common/status.h"
#include "common/types.h"
#include "core/query_client.h"
#include "crypto/dce.h"

namespace ppanns {

/// First bytes of every Hello: rejects a stray client that dialed the wrong
/// port before any length field is trusted. ASCII "PPRP" (PP-ANNS RPC).
inline constexpr std::uint32_t kProtocolMagic = 0x50525050u;
/// Protocol versions this build can speak. The handshake intersects the
/// client's [min, max] with the server's; an empty intersection is a clean
/// handshake failure, not a parse error mid-stream.
/// v1: handshake + filter/cancel. v2 adds mutation
/// (insert/delete/maintenance + mutation_response with the post-apply
/// state_version), the info snapshot, ping/pong health probes, the HMAC
/// auth challenge–response, and a state_version field on hello_ok. Min
/// stays 1: a v2 server still serves a v1 client read-only.
inline constexpr std::uint32_t kProtocolVersionMin = 1;
inline constexpr std::uint32_t kProtocolVersionMax = 2;

/// Client -> server, first frame on every connection.
struct HelloMessage {
  std::uint32_t magic = kProtocolMagic;
  std::uint32_t version_min = kProtocolVersionMin;
  std::uint32_t version_max = kProtocolVersionMax;

  void Serialize(BinaryWriter* out) const;
  static Result<HelloMessage> Deserialize(BinaryReader* in);
  std::size_t ByteSize() const;
};

/// Server -> client: the negotiated version plus the topology of the package
/// behind this endpoint — everything the gather node needs to assemble a
/// remote ShardedCloudServer without ever seeing the ciphertext database.
struct HelloOkMessage {
  std::uint32_t version = kProtocolVersionMax;  ///< chosen protocol version
  std::uint32_t num_shards = 0;                 ///< S of the whole package
  std::uint32_t num_replicas = 0;               ///< R per shard
  std::uint64_t dim = 0;
  std::uint8_t index_kind = 0;                  ///< IndexKind
  std::uint64_t size = 0;                       ///< live vectors, all shards
  std::uint64_t capacity = 0;                   ///< next global id
  std::uint64_t storage_bytes = 0;
  /// Shard ids this endpoint actually serves (a server may host a subset).
  std::vector<std::uint32_t> served_shards;
  /// Structural epoch of the package behind this endpoint (v2 field —
  /// serialized only when the negotiated `version` is >= 2, so the message
  /// stays byte-compatible with v1 peers). Seeds the gather's epoch fence.
  std::uint64_t state_version = 0;

  void Serialize(BinaryWriter* out) const;
  static Result<HelloOkMessage> Deserialize(BinaryReader* in);
  std::size_t ByteSize() const;
};

/// Client -> server: one (shard, replica) filter scan.
struct FilterRequestMessage {
  std::uint32_t shard = 0;
  std::uint32_t replica = 0;
  QueryToken token;
  std::uint64_t k_prime = 0;
  std::uint64_t ef_search = 0;
  std::uint64_t node_budget = 0;  ///< 0 = unlimited
  /// Remaining wall-clock budget in microseconds at send time; -1 = no
  /// deadline. The server re-anchors: deadline = its now() + budget.
  std::int64_t deadline_budget_us = -1;
  /// Admission floor in microseconds; > 0 asks the server to shed the scan
  /// with kResourceExhausted when the budget cannot cover the floor.
  std::int64_t admission_floor_us = 0;
  /// Ask for the candidates' DCE ciphertexts in the response (the gather
  /// node holds no shard data, so the refine phase needs them shipped).
  std::uint8_t want_dce = 0;

  void Serialize(BinaryWriter* out) const;
  static Result<FilterRequestMessage> Deserialize(BinaryReader* in);
  std::size_t ByteSize() const;
};

/// Server -> client: the scan's outcome. Always sent, even for a cancelled
/// or shed scan — the Status and the partial SearchStats ride back so the
/// gather can account remote work exactly like in-process work.
struct FilterResponseMessage {
  std::uint8_t status_code = 0;  ///< Status::Code; 0 = OK
  std::string status_message;
  std::uint8_t scanned = 0;      ///< did a filter scan actually start?
  std::uint8_t early_exit = 0;   ///< EarlyExit of the remote scan
  std::uint64_t nodes_visited = 0;
  std::uint64_t distance_computations = 0;
  std::uint64_t dce_comparisons = 0;
  /// Per-shard top-k' in *global* ids (the server owns the manifest slice).
  std::vector<Neighbor> candidates;
  /// DCE ciphertexts aligned with `candidates`, flattened as
  /// candidates.size() * 4 * dce_block doubles; empty when want_dce was 0.
  std::uint64_t dce_block = 0;
  std::vector<double> dce_data;

  void Serialize(BinaryWriter* out) const;
  static Result<FilterResponseMessage> Deserialize(BinaryReader* in);
  std::size_t ByteSize() const;

  Status ToStatus() const;                    ///< status_code + message
  void SetStatus(const Status& st);
};

/// kCancel frames carry no payload — the request id in the frame header
/// names the scan to abort.

// ---- Protocol v2: mutation, observability, health, auth ---------------------

/// Client -> server: insert one EncryptedVector (the owner's ciphertext
/// pair, exactly what PpannsService::Insert is handed in-process). The DCE
/// ciphertext travels flattened like FilterResponseMessage's refine payload.
struct InsertRequestMessage {
  std::vector<float> sap;          ///< SAP ciphertext, length dim
  std::uint64_t dce_block = 0;     ///< DCE block length (d_pad + 4)
  std::vector<double> dce_data;    ///< 4 * dce_block doubles

  void Serialize(BinaryWriter* out) const;
  static Result<InsertRequestMessage> Deserialize(BinaryReader* in);
  std::size_t ByteSize() const;
};

/// Client -> server: tombstone one global id.
struct DeleteRequestMessage {
  std::uint64_t global_id = 0;

  void Serialize(BinaryWriter* out) const;
  static Result<DeleteRequestMessage> Deserialize(BinaryReader* in);
  std::size_t ByteSize() const;
};

/// Client -> server: one structural-maintenance command. `op` 0 is a
/// threshold sweep (MaybeCompact over every shard), 1 compacts `shard`,
/// 2 splits `shard`; the remaining fields mirror
/// ShardedCloudServer::MaintenanceOptions.
struct MaintenanceRequestMessage {
  std::uint8_t op = 0;  ///< 0 = sweep, 1 = compact shard, 2 = split shard
  std::uint32_t shard = 0;
  double compact_threshold = 0.3;
  double split_skew = 0.0;
  std::uint64_t min_split_size = 64;
  std::uint64_t build_threads = 1;

  void Serialize(BinaryWriter* out) const;
  static Result<MaintenanceRequestMessage> Deserialize(BinaryReader* in);
  std::size_t ByteSize() const;
};

/// Server -> client: outcome of any mutation frame. Besides the Status it
/// always carries the post-apply `state_version` and live size — the epoch
/// fence data the gather folds into its ResultCache invalidation epoch, so
/// a remote mutation stale-evicts cached answers exactly like a local one.
struct MutationResponseMessage {
  std::uint8_t status_code = 0;  ///< Status::Code; 0 = OK
  std::string status_message;
  std::uint64_t id = 0;             ///< assigned global id (inserts)
  std::uint64_t state_version = 0;  ///< structural epoch after the apply
  std::uint64_t size = 0;           ///< live vectors after the apply
  std::uint64_t ops = 0;            ///< shards rebuilt (maintenance sweeps)

  void Serialize(BinaryWriter* out) const;
  static Result<MutationResponseMessage> Deserialize(BinaryReader* in);
  std::size_t ByteSize() const;

  Status ToStatus() const;
  void SetStatus(const Status& st);
};

/// kInfoRequest frames carry no payload. Server -> client reply: the
/// operator-facing snapshot behind this endpoint — epoch state, WAL
/// attachment, and per-served-shard tombstone ratios (aligned with
/// `served_shards`), so `ppanns_cli info --connect` can show cluster state
/// without holding a byte of ciphertext.
struct InfoResponseMessage {
  std::uint64_t state_version = 0;
  std::uint64_t size = 0;
  std::uint64_t capacity = 0;
  std::uint64_t storage_bytes = 0;
  std::uint8_t wal_attached = 0;
  std::uint64_t wal_segments = 0;
  std::uint64_t wal_bytes = 0;
  std::vector<std::uint32_t> served_shards;
  /// Per-served-shard tombstone ratio / last-compaction epoch, index-aligned
  /// with served_shards (equal lengths enforced on deserialize).
  std::vector<double> tombstone_ratios;
  std::vector<std::uint64_t> compaction_epochs;

  void Serialize(BinaryWriter* out) const;
  static Result<InfoResponseMessage> Deserialize(BinaryReader* in);
  std::size_t ByteSize() const;
};

/// Server -> client reply to a kPing (which carries no payload): liveness
/// plus the current structural epoch, so routine health probes double as
/// epoch-fence propagation — a compaction applied directly on a shard
/// server reaches the gather's cache invalidation within one ping interval.
struct PongMessage {
  std::uint64_t state_version = 0;
  std::uint64_t size = 0;

  void Serialize(BinaryWriter* out) const;
  static Result<PongMessage> Deserialize(BinaryReader* in);
  std::size_t ByteSize() const;
};

/// Server -> client, between hello and hello_ok on a keyed server: a fresh
/// 32-byte nonce the client must MAC (net/auth.h) to prove key possession.
struct AuthChallengeMessage {
  std::vector<std::uint8_t> nonce;  ///< exactly kAuthDigestBytes

  void Serialize(BinaryWriter* out) const;
  static Result<AuthChallengeMessage> Deserialize(BinaryReader* in);
  std::size_t ByteSize() const;
};

/// Client -> server: HMAC-SHA256(key, nonce). A bad MAC tears the
/// connection down before any request frame is parsed.
struct AuthResponseMessage {
  std::vector<std::uint8_t> mac;  ///< exactly kAuthDigestBytes

  void Serialize(BinaryWriter* out) const;
  static Result<AuthResponseMessage> Deserialize(BinaryReader* in);
  std::size_t ByteSize() const;
};

}  // namespace ppanns

#endif  // PPANNS_NET_WIRE_H_
