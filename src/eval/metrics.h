// Accuracy and throughput metrics (Section VII: Recall@k, QPS, latency).

#ifndef PPANNS_EVAL_METRICS_H_
#define PPANNS_EVAL_METRICS_H_

#include <cstddef>
#include <vector>

#include "common/types.h"

namespace ppanns {

/// Recall@k of one result list against the exact neighbors:
/// |result ∩ gt[0..k)| / k. `result` may be shorter than k.
double RecallAtK(const std::vector<VectorId>& result,
                 const std::vector<Neighbor>& ground_truth, std::size_t k);

/// Mean Recall@k over a query batch.
double MeanRecallAtK(const std::vector<std::vector<VectorId>>& results,
                     const std::vector<std::vector<Neighbor>>& ground_truth,
                     std::size_t k);

/// Latency percentile (seconds) from a sample of per-query latencies.
double Percentile(std::vector<double> latencies, double pct);

}  // namespace ppanns

#endif  // PPANNS_EVAL_METRICS_H_
