#include "eval/runner.h"

#include <cstdio>

#include "common/timer.h"
#include "eval/metrics.h"

namespace ppanns {

OperatingPoint MeasureServer(
    const CloudServer& server, const std::vector<QueryToken>& tokens,
    const std::vector<std::vector<Neighbor>>& ground_truth, std::size_t k,
    const SearchSettings& settings) {
  OperatingPoint point;
  if (tokens.empty()) return point;
  PPANNS_CHECK(tokens.size() <= ground_truth.size());

  std::vector<std::vector<VectorId>> results(tokens.size());
  std::vector<double> latencies(tokens.size());
  double total_seconds = 0.0;
  double filter_s = 0.0, refine_s = 0.0, comparisons = 0.0, candidates = 0.0;

  for (std::size_t i = 0; i < tokens.size(); ++i) {
    Timer timer;
    SearchResult r = server.Search(tokens[i], k, settings);
    const double elapsed = timer.ElapsedSeconds();
    latencies[i] = elapsed;
    total_seconds += elapsed;
    results[i] = std::move(r.ids);
    filter_s += r.counters.filter_seconds;
    refine_s += r.counters.refine_seconds;
    comparisons += static_cast<double>(r.counters.dce_comparisons);
    candidates += static_cast<double>(r.counters.filter_candidates);
  }

  const double n = static_cast<double>(tokens.size());
  point.recall = MeanRecallAtK(results, ground_truth, k);
  point.qps = n / total_seconds;
  point.mean_latency_ms = total_seconds / n * 1e3;
  point.p99_latency_ms = Percentile(latencies, 99.0) * 1e3;
  point.mean_filter_ms = filter_s / n * 1e3;
  point.mean_refine_ms = refine_s / n * 1e3;
  point.mean_dce_comparisons = comparisons / n;
  point.mean_filter_candidates = candidates / n;
  return point;
}

std::vector<QueryToken> EncryptQueries(QueryClient& client,
                                       const FloatMatrix& queries) {
  std::vector<QueryToken> tokens;
  tokens.reserve(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    tokens.push_back(client.EncryptQuery(queries.row(i)));
  }
  return tokens;
}

std::string FormatHeader() {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%-18s %-14s %8s %10s %10s %10s %10s",
                "series", "param", "recall", "QPS", "lat_ms", "filter_ms",
                "refine_ms");
  return buf;
}

std::string FormatRow(const std::string& label, const std::string& param,
                      const OperatingPoint& p) {
  char buf[200];
  std::snprintf(buf, sizeof(buf),
                "%-18s %-14s %8.4f %10.1f %10.4f %10.4f %10.4f",
                label.c_str(), param.c_str(), p.recall, p.qps,
                p.mean_latency_ms, p.mean_filter_ms, p.mean_refine_ms);
  return buf;
}

}  // namespace ppanns
