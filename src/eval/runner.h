// Measurement harness: runs a query batch through a CloudServer
// single-threaded (the paper's methodology) and reports the operating point
// (Recall@k, QPS, latency, counter totals). Bench binaries sweep ef_search /
// k' / beta through this.

#ifndef PPANNS_EVAL_RUNNER_H_
#define PPANNS_EVAL_RUNNER_H_

#include <cstddef>
#include <string>
#include <vector>

#include "core/cloud_server.h"
#include "core/query_client.h"

namespace ppanns {

/// One point on a recall-vs-throughput curve.
struct OperatingPoint {
  double recall = 0.0;
  double qps = 0.0;
  double mean_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
  double mean_filter_ms = 0.0;
  double mean_refine_ms = 0.0;
  double mean_dce_comparisons = 0.0;
  double mean_filter_candidates = 0.0;
};

/// Runs all tokens through `server` with `settings`; recall against
/// `ground_truth` at `k`.
OperatingPoint MeasureServer(const CloudServer& server,
                             const std::vector<QueryToken>& tokens,
                             const std::vector<std::vector<Neighbor>>& ground_truth,
                             std::size_t k, const SearchSettings& settings);

/// Pre-encrypts a query batch (user-side work, excluded from server QPS).
std::vector<QueryToken> EncryptQueries(QueryClient& client,
                                       const FloatMatrix& queries);

/// Formats one table row "label  param  recall  qps  latency" for the bench
/// binaries' stdout (the series the paper's figures plot).
std::string FormatRow(const std::string& label, const std::string& param,
                      const OperatingPoint& point);
/// The matching header.
std::string FormatHeader();

}  // namespace ppanns

#endif  // PPANNS_EVAL_RUNNER_H_
