#include "eval/metrics.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/status.h"

namespace ppanns {

double RecallAtK(const std::vector<VectorId>& result,
                 const std::vector<Neighbor>& ground_truth, std::size_t k) {
  if (k == 0) return 0.0;
  const std::size_t gt_k = std::min(k, ground_truth.size());
  std::unordered_set<VectorId> truth;
  truth.reserve(gt_k);
  for (std::size_t i = 0; i < gt_k; ++i) truth.insert(ground_truth[i].id);

  std::size_t hits = 0;
  const std::size_t upto = std::min(k, result.size());
  for (std::size_t i = 0; i < upto; ++i) {
    if (truth.count(result[i]) > 0) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(k);
}

double MeanRecallAtK(const std::vector<std::vector<VectorId>>& results,
                     const std::vector<std::vector<Neighbor>>& ground_truth,
                     std::size_t k) {
  PPANNS_CHECK(results.size() == ground_truth.size());
  if (results.empty()) return 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    total += RecallAtK(results[i], ground_truth[i], k);
  }
  return total / results.size();
}

double Percentile(std::vector<double> latencies, double pct) {
  if (latencies.empty()) return 0.0;
  std::sort(latencies.begin(), latencies.end());
  const double rank = pct / 100.0 * (latencies.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(rank));
  const std::size_t hi = std::min(lo + 1, latencies.size() - 1);
  const double frac = rank - lo;
  return latencies[lo] * (1.0 - frac) + latencies[hi] * frac;
}

}  // namespace ppanns
