#include "core/cloud_server.h"

#include <algorithm>

#include "common/timer.h"
#include "core/comparison_heap.h"

namespace ppanns {

SearchResult CloudServer::Search(const QueryToken& token, std::size_t k,
                                 const SearchSettings& settings,
                                 SearchContext* ctx) const {
  SearchResult result;
  if (k == 0 || db_.index->size() == 0) return result;

  // Run with a local context when the caller passed none, so the result
  // counters always report what the query cost.
  SearchContext local;
  if (ctx == nullptr) ctx = &local;
  ApplyContextSettings(ctx, settings);

  const std::size_t k_prime = ResolveKPrime(settings, k);

  // ---- Filter phase (Algorithm 2, line 1): k'-ANNS over SAP ciphertexts on
  // the configured backend; distances are computed on the encrypted vectors
  // at plaintext cost. The backend probes `ctx` from its hot loop.
  Timer filter_timer;
  const std::vector<Neighbor> candidates =
      db_.index->Search(token.sap.data(), k_prime, settings.ef_search, ctx);
  result.counters.filter_seconds = filter_timer.ElapsedSeconds();
  result.counters.filter_candidates = candidates.size();

  if (!settings.refine) {
    // Filter-only variant: the SAP ranking is final (approximate).
    const std::size_t out_k = std::min(k, candidates.size());
    result.ids.reserve(out_k);
    for (std::size_t i = 0; i < out_k; ++i) result.ids.push_back(candidates[i].id);
    FillCounters(&result.counters, *ctx);
    return result;
  }

  // ---- Refine phase (Algorithm 2, lines 2-9): exact DCE comparisons. The
  // context is probed between heap offers (candidate granularity — DCE
  // comparisons are orders of magnitude costlier than a row scan).
  Timer refine_timer;
  std::size_t* comparisons = &result.counters.dce_comparisons;
  ComparisonHeap heap(k, [this, &token, comparisons](VectorId a, VectorId b) {
    ++*comparisons;
    return DceScheme::Closer(db_.dce[a], db_.dce[b], token.trapdoor);
  });
  // Blocked offers: gather a block of candidates and prefetch their DCE
  // ciphertext payloads, then run the comparison-heavy offers over warm
  // lines. Offers apply in candidate order, so ids match the unblocked loop;
  // the abandon probe keeps candidate granularity (it runs as each candidate
  // is gathered).
  VectorId block[kKernelBlock];
  std::size_t ci = 0;
  bool abandoned = false;
  while (ci < candidates.size() && !abandoned) {
    std::size_t bn = 0;
    for (; ci < candidates.size() && bn < kKernelBlock; ++ci) {
      if (ctx->ShouldAbandon()) {
        abandoned = true;
        break;
      }
      const VectorId id = candidates[ci].id;
      PrefetchRead(db_.dce[id].data.data());
      block[bn++] = id;
    }
    heap.OfferBatch(block, bn);
  }
  result.ids = heap.ExtractSorted();
  result.counters.refine_seconds = refine_timer.ElapsedSeconds();
  ctx->stats.dce_comparisons += result.counters.dce_comparisons;
  FillCounters(&result.counters, *ctx);
  return result;
}

VectorId CloudServer::Insert(const EncryptedVector& v) {
  PPANNS_CHECK(v.sap.size() == db_.index->dim());
  const VectorId id = db_.index->Add(v.sap.data());
  PPANNS_CHECK(id == db_.dce.size());
  db_.dce.push_back(v.dce);
  return id;
}

Status CloudServer::Delete(VectorId id) {
  PPANNS_RETURN_IF_ERROR(db_.index->Remove(id));
  // Blank the DCE ciphertext: the server drops the deleted payload while
  // keeping ids stable.
  db_.dce[id].data.clear();
  db_.dce[id].data.shrink_to_fit();
  return Status::OK();
}

std::size_t CloudServer::StorageBytes() const {
  // SAP layer + index structure + DCE layer.
  return db_.index->StorageBytes() + db_.DceBytes();
}

}  // namespace ppanns
