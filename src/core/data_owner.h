// The data owner role (Fig. 1, step 0-1): generates keys, encrypts the
// database under both layers, builds the privacy-preserving index over the
// SAP ciphertexts, and produces the package outsourced to the cloud.

#ifndef PPANNS_CORE_DATA_OWNER_H_
#define PPANNS_CORE_DATA_OWNER_H_

#include <memory>

#include "common/rng.h"
#include "common/status.h"
#include "common/types.h"
#include "core/encrypted_database.h"
#include "core/keys.h"
#include "core/sharded_database.h"

namespace ppanns {

/// The data-owner role (Fig. 1, steps 0-1): generates or wraps the secret
/// key bundle, encrypts a plaintext corpus under both layers (DCPE/SAP for
/// the filter index, DCE for exact refinement), builds the
/// privacy-preserving filter index over the SAP ciphertexts only, and
/// produces the package outsourced to the cloud — flat
/// (EncryptedDatabase) or sharded/replicated (ShardedEncryptedDatabase).
/// Owns the randomness: for a fixed (seed, data, params) every build is
/// byte-deterministic regardless of thread scheduling at the default
/// params.build_threads == 1. With build_threads > 1 the intra-shard HNSW
/// construction itself runs concurrently: the ciphertexts and every node's
/// level remain deterministic, but graph edge sets may vary run-to-run
/// through insertion interleaving (recall-equivalent; pinned by tests).
class DataOwner {
 public:
  /// Generates fresh keys for d-dimensional data.
  static Result<DataOwner> Create(std::size_t dim, const PpannsParams& params);

  /// Wraps an existing key bundle (e.g. loaded from a keygen file) instead
  /// of generating one; validates that the keys match `dim`.
  static Result<DataOwner> FromKeys(SecretKeysPtr keys, std::size_t dim,
                                    const PpannsParams& params);

  /// Encrypts every row of `data` (DCPE + DCE) and builds the filter index
  /// (params.index_kind) over the SAP ciphertexts (never the plaintexts —
  /// Section V-A). The result is everything the cloud server receives.
  EncryptedDatabase EncryptAndIndex(const FloatMatrix& data);

  /// Same output contract, but computes the DCE layer (the expensive part:
  /// O(d^2) per vector) on the global thread pool, and — when
  /// params.build_threads > 1 — fans the graph construction itself across
  /// that many fine-grained-locking build stripes
  /// (SecureFilterIndex::BuildParallel). Per-row encryption randomness is
  /// derived from the owner seed and the row index, so the ciphertexts are
  /// deterministic for a given (seed, data) regardless of thread scheduling.
  EncryptedDatabase EncryptAndIndexParallel(const FloatMatrix& data);

  /// Partitions the dataset round-robin across params.num_shards shards and
  /// produces the sharded outsourced package. Per-shard graph construction
  /// runs in parallel on the global ThreadPool, and params.build_threads > 1
  /// additionally parallelizes *inside* each shard's HNSW build (fine-grained
  /// per-node locking), so construction can use up to
  /// num_shards x build_threads cores. Consumes
  /// owner randomness exactly like EncryptAndIndexParallel (sequential
  /// SAP-only pass in global row order, per-row derived DCE randomness), so
  /// for a given (seed, data) every row's SAP ciphertext is identical under
  /// any shard count and the package is deterministic regardless of thread
  /// scheduling.
  ///
  /// When params.num_replicas is R > 1, each shard is emitted R times as
  /// byte-identical replicas (copies of the finished primary), so the
  /// serving tier can fail over on replica loss and hedge slow replicas
  /// with provably identical results.
  ShardedEncryptedDatabase EncryptAndIndexSharded(const FloatMatrix& data);

  /// Encrypts a single new vector for insertion (Section V-D); the pair is
  /// sent to the server, which links it into the graph.
  EncryptedVector EncryptOne(const float* v);

  /// Hands the secret key bundle to an authorized query user (step 0).
  SecretKeysPtr ShareKeys() const { return keys_; }

  std::size_t dim() const { return dim_; }
  const PpannsParams& params() const { return params_; }

 private:
  DataOwner(std::size_t dim, PpannsParams params, SecretKeysPtr keys)
      : dim_(dim), params_(std::move(params)), keys_(std::move(keys)),
        rng_(params_.seed ^ 0xD07A0A37) {}

  /// Constructs the empty filter index configured by params_.index_kind;
  /// `shard` decorrelates the randomized structures across shards.
  std::unique_ptr<SecureFilterIndex> MakeFilterIndex(ShardId shard = 0) const;

  std::size_t dim_;
  PpannsParams params_;
  SecretKeysPtr keys_;
  Rng rng_;
};

}  // namespace ppanns

#endif  // PPANNS_CORE_DATA_OWNER_H_
