#include "core/encrypted_database.h"

namespace ppanns {

void EncryptedDatabase::Serialize(BinaryWriter* out) const {
  out->Put<std::uint32_t>(0x50504442);  // "PPDB"
  out->Put<std::uint32_t>(1);
  index.Serialize(out);
  out->Put<std::uint64_t>(dce.size());
  for (const auto& c : dce) {
    out->Put<std::uint64_t>(c.block);
    out->PutVector(c.data);
  }
}

Result<EncryptedDatabase> EncryptedDatabase::Deserialize(BinaryReader* in) {
  std::uint32_t magic = 0, version = 0;
  PPANNS_RETURN_IF_ERROR(in->Get(&magic));
  if (magic != 0x50504442) return Status::IOError("EncryptedDatabase: bad magic");
  PPANNS_RETURN_IF_ERROR(in->Get(&version));
  if (version != 1) {
    return Status::IOError("EncryptedDatabase: unsupported version");
  }
  Result<HnswIndex> index = HnswIndex::Deserialize(in);
  if (!index.ok()) return index.status();

  std::uint64_t n = 0;
  PPANNS_RETURN_IF_ERROR(in->Get(&n));
  std::vector<DceCiphertext> dce(n);
  for (auto& c : dce) {
    std::uint64_t block = 0;
    PPANNS_RETURN_IF_ERROR(in->Get(&block));
    c.block = block;
    PPANNS_RETURN_IF_ERROR(in->GetVector(&c.data));
    if (c.data.size() != 4 * c.block) {
      return Status::IOError("EncryptedDatabase: bad ciphertext size");
    }
  }
  EncryptedDatabase db{std::move(*index), std::move(dce)};
  if (db.dce.size() != db.index.capacity()) {
    return Status::IOError("EncryptedDatabase: index/ciphertext mismatch");
  }
  return db;
}

}  // namespace ppanns
