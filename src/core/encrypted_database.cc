#include "core/encrypted_database.h"

#include "index/hnsw.h"

namespace ppanns {
namespace {

constexpr std::uint32_t kMagic = 0x50504442;  // "PPDB"
// v1 stored a bare HnswIndex payload; v2 stores the self-describing
// SecureFilterIndex envelope (backend kind + payload). Both load.
constexpr std::uint32_t kVersion = 2;

}  // namespace

void EncryptedDatabase::Serialize(BinaryWriter* out) const {
  PPANNS_CHECK(index != nullptr);
  out->Put<std::uint32_t>(kMagic);
  out->Put<std::uint32_t>(kVersion);
  index->Serialize(out);
  out->Put<std::uint64_t>(dce.size());
  for (const auto& c : dce) {
    out->Put<std::uint64_t>(c.block);
    out->PutVector(c.data);
  }
}

Result<EncryptedDatabase> EncryptedDatabase::Deserialize(BinaryReader* in) {
  std::uint32_t magic = 0, version = 0;
  PPANNS_RETURN_IF_ERROR(in->Get(&magic));
  if (magic != kMagic) return Status::IOError("EncryptedDatabase: bad magic");
  PPANNS_RETURN_IF_ERROR(in->Get(&version));

  std::unique_ptr<SecureFilterIndex> index;
  if (version == 1) {
    // Legacy package: implicit HNSW backend.
    Result<HnswIndex> hnsw = HnswIndex::Deserialize(in);
    if (!hnsw.ok()) return hnsw.status();
    index = WrapHnswIndex(std::move(*hnsw));
  } else if (version == kVersion) {
    Result<std::unique_ptr<SecureFilterIndex>> loaded =
        DeserializeSecureFilterIndex(in);
    if (!loaded.ok()) return loaded.status();
    index = std::move(*loaded);
  } else {
    return Status::IOError("EncryptedDatabase: unsupported version");
  }

  std::uint64_t n = 0;
  PPANNS_RETURN_IF_ERROR(in->Get(&n));
  std::vector<DceCiphertext> dce(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    DceCiphertext& c = dce[i];
    std::uint64_t block = 0;
    PPANNS_RETURN_IF_ERROR(in->Get(&block));
    c.block = block;
    PPANNS_RETURN_IF_ERROR(in->GetVector(&c.data));
    // An empty payload is the tombstone of a deleted vector (the id keeps
    // its slot) and is only legal if the index agrees the id is dead — the
    // refine phase reads 4*block doubles from every live candidate. Live
    // ciphertexts must have the full four blocks.
    if (c.data.empty()) {
      if (i >= index->capacity() || !index->IsDeleted(static_cast<VectorId>(i))) {
        return Status::IOError("EncryptedDatabase: blank ciphertext for live vector");
      }
    } else if (c.data.size() != 4 * c.block) {
      return Status::IOError("EncryptedDatabase: bad ciphertext size");
    }
  }
  EncryptedDatabase db{std::move(index), std::move(dce)};
  if (db.dce.size() != db.index->capacity()) {
    return Status::IOError("EncryptedDatabase: index/ciphertext mismatch");
  }
  return db;
}

}  // namespace ppanns
