// Key material and parameters of the PP-ANNS scheme (Section V).
//
// The scheme composes two encryption layers over the same database:
//  * DCPE/SAP ciphertexts — approximate-distance layer; the HNSW graph is
//    built over these, and the filter phase computes distances on them.
//  * DCE ciphertexts — exact-comparison layer; the refine phase uses them
//    through DistanceComp only.
// The secret keys of both layers stay with the data owner and authorized
// query users; the cloud server receives only ciphertexts and the index.

#ifndef PPANNS_CORE_KEYS_H_
#define PPANNS_CORE_KEYS_H_

#include <cstdint>
#include <memory>

#include "crypto/dce.h"
#include "crypto/dcpe.h"
#include "crypto/key_io.h"
#include "index/secure_filter_index.h"

namespace ppanns {

/// Tunable parameters of the scheme.
struct PpannsParams {
  double dcpe_s = 1024.0;  ///< SAP scaling factor (paper recommendation)
  double dcpe_beta = 0.0;  ///< SAP noise bound; tuned per dataset (Fig. 4)
  double dce_scale_hint = 1.0;  ///< typical vector norm, for DCE blinding
  /// Filter-phase substrate (Algorithm 2, line 1) and its per-backend knobs.
  /// The kind is serialized with the encrypted database, so a loaded package
  /// reconstructs the same backend. `lsh.bucket_width` is in *plaintext*
  /// units; FilterOptions scales it by dcpe_s to match the SAP ciphertexts
  /// the index actually stores.
  IndexKind index_kind = IndexKind::kHnsw;
  HnswParams hnsw;         ///< graph construction parameters
  IvfParams ivf;           ///< inverted-file parameters
  LshParams lsh;           ///< hashing parameters
  /// Int8 scalar-quantized filter tier for the flat backends (ivf, brute):
  /// posting/linear scans run over a one-byte-per-dimension code mirror and
  /// an oversampled shortlist is re-ranked exactly (see index/sq8.h). Off by
  /// default — enabling it bumps the backend's serialized format version.
  SqParams sq;
  /// Number of database partitions (Section V north-star scaling). 1 keeps
  /// the paper's single-index layout; > 1 makes DataOwner produce a
  /// ShardedEncryptedDatabase whose per-shard indexes build in parallel and
  /// are searched scatter-gather by ShardedCloudServer.
  std::uint32_t num_shards = 1;
  /// Copies of every shard (serving-tier redundancy). 1 keeps the PR-2
  /// layout; R > 1 makes DataOwner emit R byte-identical replicas per shard,
  /// so ShardedCloudServer can fail over on replica loss and hedge slow
  /// replicas without changing any result id. Only meaningful with
  /// num_shards >= 1 sharded builds (EncryptAndIndexSharded).
  std::uint32_t num_replicas = 1;
  /// Intra-shard index build threads (the fine-grained-locking HNSW builder;
  /// other backends build sequentially regardless). 1 keeps the historical
  /// byte-deterministic sequential build. With B > 1 a sharded build runs
  /// num_shards x build_threads construction stripes, the graph's random
  /// skeleton (node levels) stays reproducible at a fixed B, and edge sets
  /// may vary run-to-run only through insertion interleaving (recall moves
  /// by well under a point). Build-time only — never serialized with the
  /// package (see docs/file-formats.md).
  std::uint32_t build_threads = 1;
  std::uint64_t seed = 0xC0FFEE;

  /// Resolves the per-backend options for index construction: LSH widths are
  /// rescaled into ciphertext space, and backend seeds are mixed with the
  /// deployment seed so two deployments never share projections. `shard`
  /// additionally decorrelates the randomized structures (HNSW levels, IVF
  /// centroids, LSH projections) across shards of one deployment.
  SecureFilterIndexOptions FilterOptions(ShardId shard = 0) const {
    SecureFilterIndexOptions options{hnsw, ivf, lsh, sq};
    // shard 0 reproduces the historical single-index options bit-for-bit.
    const std::uint64_t shard_mix =
        shard == 0 ? 0 : 0x9E3779B97F4A7C15ull * static_cast<std::uint64_t>(shard);
    options.hnsw.seed = hnsw.seed ^ shard_mix;
    options.lsh.bucket_width = lsh.bucket_width * dcpe_s;
    options.ivf.seed = ivf.seed ^ seed ^ shard_mix;
    options.lsh.seed = lsh.seed ^ seed ^ shard_mix;
    return options;
  }
};

/// The owner/user side key bundle.
struct SecretKeys {
  SecretKeys(DceScheme dce_in, DcpeScheme dcpe_in)
      : dce(std::move(dce_in)), dcpe(std::move(dcpe_in)) {}
  DceScheme dce;
  DcpeScheme dcpe;
};

using SecretKeysPtr = std::shared_ptr<const SecretKeys>;

/// Persists the full key bundle (Fig. 1 step 0 hand-off: owner -> authorized
/// user over a secure channel). Never send this to the cloud.
inline void SerializeSecretKeys(const SecretKeys& keys, BinaryWriter* out) {
  SerializeDceKey(keys.dce.key(), out);
  SerializeDcpeKey(keys.dcpe.key(), out);
}

inline Result<SecretKeysPtr> DeserializeSecretKeys(BinaryReader* in) {
  Result<DceSecretKey> dce_key = DeserializeDceKey(in);
  if (!dce_key.ok()) return dce_key.status();
  Result<DcpeSecretKey> dcpe_key = DeserializeDcpeKey(in);
  if (!dcpe_key.ok()) return dcpe_key.status();
  Result<DcpeScheme> dcpe = DcpeScheme::FromKey(*dcpe_key);
  if (!dcpe.ok()) return dcpe.status();
  return std::make_shared<const SecretKeys>(
      DceScheme::FromKey(std::move(*dce_key)), std::move(*dcpe));
}

}  // namespace ppanns

#endif  // PPANNS_CORE_KEYS_H_
