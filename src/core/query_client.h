// The query user role (Fig. 1, step 2): encrypts a query into the token
// sent to the cloud — the SAP ciphertext C_q^SAP (for the filter phase) and
// the DCE trapdoor T_q (for the refine phase). This is the *only* user-side
// computation per query (property P3): O(d^2) for the trapdoor, O(d) for
// the SAP ciphertext.

#ifndef PPANNS_CORE_QUERY_CLIENT_H_
#define PPANNS_CORE_QUERY_CLIENT_H_

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "common/serialize.h"
#include "core/keys.h"

namespace ppanns {

/// What the user sends to the server for one query.
struct QueryToken {
  std::vector<float> sap;  ///< C_q^SAP, length d
  DceTrapdoor trapdoor;    ///< T_q, length 2 d_pad + 16

  /// Wire format: the two length-prefixed payload vectors, nothing else
  /// (k and the search settings travel in the request envelope, not the
  /// cryptographic token).
  void Serialize(BinaryWriter* out) const {
    out->PutVector(sap);
    out->PutVector(trapdoor.data);
  }

  static Result<QueryToken> Deserialize(BinaryReader* in) {
    QueryToken token;
    PPANNS_RETURN_IF_ERROR(in->GetVector(&token.sap));
    PPANNS_RETURN_IF_ERROR(in->GetVector(&token.trapdoor.data));
    if (token.sap.empty() || token.trapdoor.data.empty()) {
      return Status::IOError("QueryToken: empty payload");
    }
    return token;
  }

  /// Upload size in bytes (communication accounting, Section V-C): exactly
  /// what Serialize writes — two uint64 length prefixes plus the payloads.
  std::size_t ByteSize() const {
    return 2 * sizeof(std::uint64_t) + sap.size() * sizeof(float) +
           trapdoor.data.size() * sizeof(double);
  }
};

class QueryClient {
 public:
  QueryClient(SecretKeysPtr keys, std::uint64_t seed)
      : keys_(std::move(keys)), rng_(seed) {}

  /// Encrypts a query vector. Randomized: repeated calls on the same query
  /// produce unlinkable tokens.
  QueryToken EncryptQuery(const float* q) {
    QueryToken token;
    token.sap.resize(keys_->dcpe.dim());
    keys_->dcpe.Encrypt(q, token.sap.data(), rng_);
    token.trapdoor = keys_->dce.GenTrapdoor(q, rng_);
    return token;
  }

 private:
  SecretKeysPtr keys_;
  Rng rng_;
};

}  // namespace ppanns

#endif  // PPANNS_CORE_QUERY_CLIENT_H_
