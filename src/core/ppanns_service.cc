#include "core/ppanns_service.h"

#include <string>

#include "common/thread_pool.h"
#include "common/timer.h"

namespace ppanns {
namespace {

/// Prefixes a validation error's message while keeping its code, so callers
/// can branch on the code identically for Search and SearchBatch.
Status Annotate(const Status& st, const std::string& prefix) {
  switch (st.code()) {
    case Status::Code::kInvalidArgument:
      return Status::InvalidArgument(prefix + st.message());
    case Status::Code::kFailedPrecondition:
      return Status::FailedPrecondition(prefix + st.message());
    default:
      return st;
  }
}

}  // namespace

Status PpannsService::ValidateQuery(const QueryToken& token, std::size_t k,
                                    const SearchSettings& settings) const {
  if (k == 0) return Status::InvalidArgument("Search: k must be positive");
  if (token.sap.size() != server_.index().dim()) {
    return Status::InvalidArgument(
        "Search: SAP ciphertext dimension " + std::to_string(token.sap.size()) +
        " does not match database dimension " +
        std::to_string(server_.index().dim()));
  }
  if (server_.size() == 0) {
    return Status::FailedPrecondition("Search: database is empty");
  }
  if (settings.refine) {
    // The refine phase multiplies the trapdoor against every candidate's DCE
    // blocks; a short trapdoor would read out of bounds.
    const std::size_t block = server_.dce_ciphertexts().front().block;
    if (token.trapdoor.data.size() != block) {
      return Status::InvalidArgument(
          "Search: trapdoor length " +
          std::to_string(token.trapdoor.data.size()) +
          " does not match DCE block length " + std::to_string(block));
    }
  }
  return Status::OK();
}

Result<SearchResult> PpannsService::Search(const QueryToken& token,
                                           std::size_t k,
                                           const SearchSettings& settings) const {
  PPANNS_RETURN_IF_ERROR(ValidateQuery(token, k, settings));
  return server_.Search(token, k, settings);
}

Result<BatchSearchResult> PpannsService::SearchBatch(
    std::span<const QueryToken> tokens, std::size_t k,
    const SearchSettings& settings) const {
  // Validate everything up front: a batch either runs in full or not at all,
  // so callers never get partially filled results.
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    Status st = ValidateQuery(tokens[i], k, settings);
    if (!st.ok()) {
      return Annotate(st, "SearchBatch: token " + std::to_string(i) + ": ");
    }
  }

  BatchSearchResult batch;
  batch.results.resize(tokens.size());
  Timer wall;
  ThreadPool::Global().ParallelFor(
      tokens.size(), [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          batch.results[i] = server_.Search(tokens[i], k, settings);
        }
      });
  batch.counters.wall_seconds = wall.ElapsedSeconds();

  batch.counters.num_queries = tokens.size();
  for (const SearchResult& r : batch.results) {
    batch.counters.total_filter_candidates += r.counters.filter_candidates;
    batch.counters.total_dce_comparisons += r.counters.dce_comparisons;
    batch.counters.total_filter_seconds += r.counters.filter_seconds;
    batch.counters.total_refine_seconds += r.counters.refine_seconds;
  }
  return batch;
}

Result<VectorId> PpannsService::Insert(const EncryptedVector& v) {
  if (v.sap.size() != server_.index().dim()) {
    return Status::InvalidArgument(
        "Insert: SAP ciphertext dimension " + std::to_string(v.sap.size()) +
        " does not match database dimension " +
        std::to_string(server_.index().dim()));
  }
  if (!server_.dce_ciphertexts().empty()) {
    const std::size_t block = server_.dce_ciphertexts().front().block;
    if (v.dce.block != block || v.dce.data.size() != 4 * block) {
      return Status::InvalidArgument(
          "Insert: DCE ciphertext shape does not match the database");
    }
  } else if (v.dce.data.size() != 4 * v.dce.block) {
    return Status::InvalidArgument("Insert: malformed DCE ciphertext");
  }
  return server_.Insert(v);
}

Status PpannsService::Delete(VectorId id) { return server_.Delete(id); }

}  // namespace ppanns
