#include "core/ppanns_service.h"

#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <utility>

#include "common/io.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/wal_records.h"

namespace ppanns {
namespace {

/// Prefixes a validation error's message while keeping its code, so callers
/// can branch on the code identically for Search and SearchBatch.
Status Annotate(const Status& st, const std::string& prefix) {
  switch (st.code()) {
    case Status::Code::kInvalidArgument:
      return Status::InvalidArgument(prefix + st.message());
    case Status::Code::kFailedPrecondition:
      return Status::FailedPrecondition(prefix + st.message());
    default:
      return st;
  }
}

}  // namespace

std::size_t PpannsService::size() const {
  return std::visit([](const auto& s) { return s.size(); }, server_);
}

std::size_t PpannsService::dim() const {
  if (const auto* s = std::get_if<ShardedCloudServer>(&server_)) {
    return s->dim();
  }
  return std::get<CloudServer>(server_).index().dim();
}

IndexKind PpannsService::index_kind() const {
  if (const auto* s = std::get_if<ShardedCloudServer>(&server_)) {
    return s->index_kind();
  }
  return std::get<CloudServer>(server_).index().kind();
}

std::size_t PpannsService::StorageBytes() const {
  return std::visit([](const auto& s) { return s.StorageBytes(); }, server_);
}

std::size_t PpannsService::num_shards() const {
  if (const auto* s = std::get_if<ShardedCloudServer>(&server_)) {
    return s->num_shards();
  }
  return 1;
}

std::size_t PpannsService::num_replicas() const {
  if (const auto* s = std::get_if<ShardedCloudServer>(&server_)) {
    return s->replication_factor();
  }
  return 1;
}

const CloudServer& PpannsService::server() const {
  PPANNS_CHECK(!sharded());
  return std::get<CloudServer>(server_);
}

const ShardedCloudServer& PpannsService::sharded_server() const {
  PPANNS_CHECK(sharded());
  return std::get<ShardedCloudServer>(server_);
}

ShardedCloudServer& PpannsService::sharded_server_mutable() {
  PPANNS_CHECK(sharded());
  return std::get<ShardedCloudServer>(server_);
}

void PpannsService::SerializeDatabase(BinaryWriter* out) const {
  std::visit([out](const auto& s) { s.SerializeDatabase(out); }, server_);
}

std::size_t PpannsService::ExpectedDceBlock() const {
  return DceScheme::TransformedDim(dim());
}

Status PpannsService::ValidateQuery(const QueryToken& token, std::size_t k,
                                    const SearchSettings& settings) const {
  if (k == 0) return Status::InvalidArgument("Search: k must be positive");
  if (token.sap.size() != dim()) {
    return Status::InvalidArgument(
        "Search: SAP ciphertext dimension " + std::to_string(token.sap.size()) +
        " does not match database dimension " + std::to_string(dim()));
  }
  if (size() == 0) {
    return Status::FailedPrecondition("Search: database is empty");
  }
  if (settings.refine) {
    // The refine phase multiplies the trapdoor against every candidate's DCE
    // blocks; a short trapdoor would read out of bounds.
    const std::size_t block = ExpectedDceBlock();
    if (token.trapdoor.data.size() != block) {
      return Status::InvalidArgument(
          "Search: trapdoor length " +
          std::to_string(token.trapdoor.data.size()) +
          " does not match DCE block length " + std::to_string(block));
    }
  }
  return Status::OK();
}

namespace {

/// The facade's deadline contract: a query whose context tripped the
/// deadline comes back as a Status, not a silently truncated result. (A
/// cancellation or an exhausted node budget stays a result — the caller
/// asked for both and reads the reason off counters.early_exit.)
bool DeadlineTripped(const SearchResult& result) {
  return result.counters.early_exit == EarlyExit::kDeadlineExpired;
}

Status DeadlineStatus(const SearchSettings& settings) {
  return Status::DeadlineExceeded(
      "Search: query deadline" +
      (settings.deadline_ms > 0.0
           ? " of " + std::to_string(settings.deadline_ms) + " ms"
           : std::string()) +
      " expired mid-execution");
}

/// Gather-side admission control, opt-in via settings.admission_ms: a query
/// whose remaining deadline budget is already below the floor is shed before
/// any dispatch — kResourceExhausted instead of burning shard work on a
/// query that would only come back kDeadlineExceeded. With admission off
/// (the default) the deadline contract is untouched: the query runs and
/// trips the deadline cooperatively.
Status CheckAdmission(const SearchSettings& settings,
                      const SearchContext* ctx) {
  if (settings.admission_ms <= 0.0) return Status::OK();
  double remaining_ms;
  if (ctx != nullptr && ctx->has_deadline()) {
    remaining_ms = std::chrono::duration<double, std::milli>(
                       ctx->deadline() - SearchContext::Clock::now())
                       .count();
  } else if (settings.deadline_ms > 0.0) {
    remaining_ms = settings.deadline_ms;
  } else {
    return Status::OK();  // no deadline: nothing to measure the floor against
  }
  if (remaining_ms < settings.admission_ms) {
    return Status::ResourceExhausted(
        "admission: remaining deadline budget " +
        std::to_string(remaining_ms) + " ms is below the admission floor " +
        std::to_string(settings.admission_ms) + " ms");
  }
  return Status::OK();
}

}  // namespace

std::uint64_t PpannsService::CacheEpoch() const {
  std::uint64_t epoch = cache_->mutation_epoch();
  if (const auto* s = std::get_if<ShardedCloudServer>(&server_);
      s != nullptr) {
    // Both terms are monotonic, so their sum is too: an entry stamped
    // before any mutation — through the facade or through background
    // maintenance — can never match again. On a remote gather
    // state_version() reads the cluster epoch fence, which every mutation
    // response and health ping advances, so a mutation applied over the
    // wire (or directly on a shard server) stale-evicts here the same way
    // a local one does.
    epoch += s->state_version();
  }
  return epoch;
}

void PpannsService::EnableResultCache(const ResultCacheOptions& options) {
  cache_ = std::make_unique<ResultCache>(options);
}

ResultCacheStats PpannsService::result_cache_stats() const {
  PPANNS_CHECK(cache_ != nullptr);
  return cache_->Stats();
}

Result<SearchResult> PpannsService::Search(const QueryToken& token,
                                           std::size_t k,
                                           const SearchSettings& settings,
                                           SearchContext* ctx) const {
  PPANNS_RETURN_IF_ERROR(ValidateQuery(token, k, settings));
  PPANNS_RETURN_IF_ERROR(CheckAdmission(settings, ctx));
  // The epoch is read BEFORE the search runs: a mutation that lands while
  // the query is in flight makes the inserted entry immediately stale —
  // conservative, never wrong.
  ResultCache::Key key;
  std::uint64_t epoch = 0;
  if (cache_ != nullptr) {
    key = ResultCache::MakeKey(token, k, settings);
    epoch = CacheEpoch();
    SearchResult cached;
    if (cache_->Lookup(key, epoch, &cached.ids)) {
      cached.counters.cache_hit = true;
      return cached;
    }
  }
  SearchContext local_ctx;
  if (ctx == nullptr) ctx = &local_ctx;
  SearchResult result = std::visit(
      [&](const auto& s) { return s.Search(token, k, settings, ctx); },
      server_);
  if (DeadlineTripped(result)) return DeadlineStatus(settings);
  if (cache_ != nullptr && CacheEligible(result)) {
    cache_->Insert(key, epoch, result.ids);
  }
  return result;
}

Result<SearchResult> PpannsService::SearchAsync(const QueryToken& token,
                                                std::size_t k,
                                                const SearchSettings& settings,
                                                const AsyncOptions& async,
                                                SearchContext* ctx) const {
  PPANNS_RETURN_IF_ERROR(ValidateQuery(token, k, settings));
  PPANNS_RETURN_IF_ERROR(CheckAdmission(settings, ctx));
  ResultCache::Key key;
  std::uint64_t epoch = 0;
  if (cache_ != nullptr) {
    key = ResultCache::MakeKey(token, k, settings);
    epoch = CacheEpoch();
    SearchResult cached;
    if (cache_->Lookup(key, epoch, &cached.ids)) {
      cached.counters.cache_hit = true;
      return cached;
    }
  }
  SearchContext local_ctx;
  if (ctx == nullptr) ctx = &local_ctx;
  Result<SearchResult> result = [&]() -> Result<SearchResult> {
    if (const auto* s = std::get_if<ShardedCloudServer>(&server_)) {
      return s->SearchAsync(token, k, settings, async, ctx);
    }
    // One index, one "replica": nothing to hedge or fail over to.
    return std::get<CloudServer>(server_).Search(token, k, settings, ctx);
  }();
  if (result.ok() && DeadlineTripped(*result)) return DeadlineStatus(settings);
  if (cache_ != nullptr && result.ok() && CacheEligible(*result)) {
    // Hedged/failed-over answers are id-identical to the sync path on the
    // shards that answered, and partial answers were excluded above — so
    // Search and SearchAsync share one cache.
    cache_->Insert(key, epoch, result->ids);
  }
  return result;
}

Result<BatchSearchResult> PpannsService::SearchBatch(
    std::span<const QueryToken> tokens, std::size_t k,
    const SearchSettings& settings) const {
  // Hedging off: the flat (query, shard) fan-out serves the whole batch.
  return SearchBatch(tokens, k, settings, AsyncOptions{.hedge_ms = 0.0});
}

Result<BatchSearchResult> PpannsService::SearchBatch(
    std::span<const QueryToken> tokens, std::size_t k,
    const SearchSettings& settings, const AsyncOptions& async) const {
  // Validate everything up front: a batch either runs in full or not at all,
  // so callers never get partially filled results.
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    Status st = ValidateQuery(tokens[i], k, settings);
    if (!st.ok()) {
      return Annotate(st, "SearchBatch: token " + std::to_string(i) + ": ");
    }
  }
  // All-or-nothing, admission edition: every query of the batch shares the
  // same settings-derived budget, so one shed sheds them all — before any
  // shard work starts.
  PPANNS_RETURN_IF_ERROR(CheckAdmission(settings, nullptr));

  BatchSearchResult batch;
  Timer wall;
  batch.results.resize(tokens.size());

  // Cache pass: answer what the cache can, collect the rest for the
  // scatter. Duplicate tokens inside one batch stay independent queries
  // (they miss together and the last insert wins) — ids are identical
  // either way, so no intra-batch coordination is worth the complexity.
  std::vector<ResultCache::Key> keys;
  std::vector<std::size_t> miss_index;
  std::uint64_t epoch = 0;
  if (cache_ != nullptr) {
    epoch = CacheEpoch();
    keys.resize(tokens.size());
    miss_index.reserve(tokens.size());
    for (std::size_t i = 0; i < tokens.size(); ++i) {
      keys[i] = ResultCache::MakeKey(tokens[i], k, settings);
      if (cache_->Lookup(keys[i], epoch, &batch.results[i].ids)) {
        batch.results[i].counters.cache_hit = true;
        ++batch.counters.total_cache_hits;
      } else {
        miss_index.push_back(i);
      }
    }
  }

  // The scatter itself, over whichever tokens were not served above.
  auto run = [&](std::span<const QueryToken> qs) -> std::vector<SearchResult> {
    if (const auto* s = std::get_if<ShardedCloudServer>(&server_)) {
      // Batch-level scatter: all Q*S (query, shard) filter items as one
      // flat fan-out — hedged through the claim-flag machinery when asked —
      // then per-query merge/refine. Same ids as a sequential loop, lower
      // tail latency for small batches.
      return async.hedge_ms > 0.0
                 ? s->SearchBatchScattered(qs, k, settings, async)
                 : s->SearchBatchScattered(qs, k, settings);
    }
    std::vector<SearchResult> out(qs.size());
    ThreadPool::Global().ParallelFor(
        qs.size(), [&](std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) {
            out[i] = std::get<CloudServer>(server_).Search(qs[i], k, settings);
          }
        });
    return out;
  };

  if (cache_ == nullptr) {
    batch.results = run(tokens);
  } else if (!miss_index.empty()) {
    if (miss_index.size() == tokens.size()) {
      batch.results = run(tokens);  // nothing hit: skip the gather copy
    } else {
      std::vector<QueryToken> miss_tokens;
      miss_tokens.reserve(miss_index.size());
      for (std::size_t i : miss_index) miss_tokens.push_back(tokens[i]);
      std::vector<SearchResult> miss_results = run(miss_tokens);
      for (std::size_t j = 0; j < miss_index.size(); ++j) {
        batch.results[miss_index[j]] = std::move(miss_results[j]);
      }
    }
  }
  batch.counters.wall_seconds = wall.ElapsedSeconds();

  batch.counters.num_queries = tokens.size();
  for (std::size_t i = 0; i < batch.results.size(); ++i) {
    const SearchResult& r = batch.results[i];
    // All-or-nothing deadline contract, batch edition: one expired query
    // fails the batch (its siblings shared the same per-query deadline and
    // were truncated the same way).
    if (DeadlineTripped(r)) return DeadlineStatus(settings);
    batch.counters.total_filter_candidates += r.counters.filter_candidates;
    batch.counters.total_dce_comparisons += r.counters.dce_comparisons;
    batch.counters.total_nodes_visited += r.counters.nodes_visited;
    batch.counters.total_distance_computations +=
        r.counters.distance_computations;
    batch.counters.total_hedged_requests += r.counters.hedged_requests;
    batch.counters.total_filter_seconds += r.counters.filter_seconds;
    batch.counters.total_refine_seconds += r.counters.refine_seconds;
    if (cache_ != nullptr && !r.counters.cache_hit && CacheEligible(r)) {
      cache_->Insert(keys[i], epoch, r.ids);
    }
  }
  return batch;
}

Status PpannsService::CheckMutable(const char* op) const {
  if (const auto* s = std::get_if<ShardedCloudServer>(&server_);
      s != nullptr && s->remote()) {
    return Status::NotSupported(
        std::string(op) +
        ": this gather node serves remote shards; apply maintenance on "
        "the shard servers' own database");
  }
  return Status::OK();
}

Status PpannsService::ValidateInsert(const EncryptedVector& v) const {
  if (v.sap.size() != dim()) {
    return Status::InvalidArgument(
        "Insert: SAP ciphertext dimension " + std::to_string(v.sap.size()) +
        " does not match database dimension " + std::to_string(dim()));
  }
  // The DCE shape is fully determined by the database dimension: four
  // contiguous blocks of 2*d_pad+16 doubles. Anything else would read or
  // compare out of bounds during refinement.
  const std::size_t block = ExpectedDceBlock();
  if (v.dce.block != block || v.dce.data.size() != 4 * block) {
    return Status::InvalidArgument(
        "Insert: DCE ciphertext shape (" + std::to_string(v.dce.data.size()) +
        " doubles, block " + std::to_string(v.dce.block) +
        ") does not match the database (4 blocks of " + std::to_string(block) +
        ")");
  }
  return Status::OK();
}

Result<VectorId> PpannsService::Insert(const EncryptedVector& v) {
  // No CheckMutable: a sharded server over remote shards routes the insert
  // through its attached MutationTransports (or refuses with NotSupported
  // itself when none are attached). The WAL below is the *gather's* log and
  // can only be attached on a local topology (AttachWal is gated).
  PPANNS_RETURN_IF_ERROR(ValidateInsert(v));
  if (wal_.has_value()) {
    // Append-before-apply: the mutation is durable before any in-memory
    // state changes, so a crash between the two replays it.
    Result<std::uint64_t> lsn =
        wal_->Append(WalRecordType::kInsert, EncodeWalInsert(v));
    if (!lsn.ok()) return lsn.status();
  }
  // Invalidate before applying: a search racing the mutation may cache a
  // pre-insert answer, but it will stamp it with the pre-bump epoch and
  // never serve it again — stale-conservative, never wrong.
  if (cache_ != nullptr) cache_->BumpMutationEpoch();
  if (auto* sharded = std::get_if<ShardedCloudServer>(&server_)) {
    return sharded->Insert(v);
  }
  return std::get<CloudServer>(server_).Insert(v);
}

Status PpannsService::Delete(VectorId id) {
  if (wal_.has_value()) {
    // Logged before validity is known: a Delete the server rejects
    // (NotFound, bad id) replays to the same rejection, which ReplayWal
    // skips — cheaper than a validate-log-apply dance against the manifest.
    Result<std::uint64_t> lsn =
        wal_->Append(WalRecordType::kRemove, EncodeWalRemove(id));
    if (!lsn.ok()) return lsn.status();
  }
  // Bumped even when the Delete is then rejected (NotFound): a spurious
  // wholesale invalidation is harmless, a missed one is not.
  if (cache_ != nullptr) cache_->BumpMutationEpoch();
  return std::visit([id](auto& s) { return s.Delete(id); }, server_);
}

Status PpannsService::AttachWal(const std::string& dir, WalOptions options) {
  PPANNS_RETURN_IF_ERROR(CheckMutable("AttachWal"));
  Result<WalWriter> writer = WalWriter::Open(dir, options);
  if (!writer.ok()) return writer.status();
  wal_.emplace(std::move(*writer));
  return Status::OK();
}

Result<std::size_t> PpannsService::ReplayWal(const std::string& dir) {
  PPANNS_RETURN_IF_ERROR(CheckMutable("ReplayWal"));
  Result<std::vector<WalRecord>> records = ReadWal(dir);
  if (!records.ok()) return records.status();
  // One bump covers the whole replay: entries only ever compare stamps for
  // equality, so any forward movement invalidates everything cached before.
  if (cache_ != nullptr && !records->empty()) cache_->BumpMutationEpoch();
  std::size_t applied = 0;
  for (const WalRecord& record : *records) {
    switch (record.type) {
      case WalRecordType::kInsert: {
        Result<EncryptedVector> ev = DecodeWalInsert(record.payload);
        if (!ev.ok()) return ev.status();
        // A record that framed correctly but does not fit the loaded
        // package (wrong dimension) is a mismatched checkpoint/log pair —
        // an error, not a skip.
        PPANNS_RETURN_IF_ERROR(ValidateInsert(*ev));
        // Apply directly, bypassing the attached WAL: these records are
        // already in the log.
        std::visit([&ev](auto& s) { (void)s.Insert(*ev); }, server_);
        break;
      }
      case WalRecordType::kRemove: {
        Result<VectorId> id = DecodeWalRemove(record.payload);
        if (!id.ok()) return id.status();
        const Status st =
            std::visit([&id](auto& s) { return s.Delete(*id); }, server_);
        // Append-before-apply: a logged Delete may have failed in the
        // original run too (double delete, compacted-away id) — the replay
        // reproduces the rejection, which is the correct final state.
        if (!st.ok() && st.code() != Status::Code::kNotFound &&
            st.code() != Status::Code::kInvalidArgument) {
          return st;
        }
        break;
      }
      default:
        return Status::IOError(
            "ReplayWal: unknown record type " +
            std::to_string(static_cast<int>(record.type)) + " at lsn " +
            std::to_string(record.lsn));
    }
    ++applied;
  }
  return applied;
}

Status PpannsService::Checkpoint(const std::string& path) {
  PPANNS_RETURN_IF_ERROR(CheckMutable("Checkpoint"));
  BinaryWriter out;
  SerializeDatabase(&out);
  // Write-temp-then-rename: the previous checkpoint survives a crash at any
  // point, and the WAL is truncated only after the new one is durable.
  const std::string tmp = path + ".tmp";
  PPANNS_RETURN_IF_ERROR(WriteFile(tmp, out.buffer()));
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    return Status::IOError("Checkpoint: rename " + tmp + " -> " + path +
                           ": " + ec.message());
  }
  if (wal_.has_value()) return wal_->Truncate();
  return Status::OK();
}

WalStats PpannsService::wal_stats() const {
  PPANNS_CHECK(wal_.has_value());
  return wal_->Stats();
}

}  // namespace ppanns
