// The cloud server role (Fig. 1 / Fig. 3): holds only ciphertexts and the
// privacy-preserving index, and answers encrypted queries with the
// filter-and-refine search of Algorithm 2. It never sees plaintext vectors,
// plaintext distances, or keys — its entire observable input is
// (EncryptedDatabase, QueryToken, k).

#ifndef PPANNS_CORE_CLOUD_SERVER_H_
#define PPANNS_CORE_CLOUD_SERVER_H_

#include <cstddef>
#include <vector>

#include "common/search_context.h"
#include "common/status.h"
#include "common/types.h"
#include "core/encrypted_database.h"
#include "core/query_client.h"

namespace ppanns {

/// Per-query search knobs (Section V-B).
struct SearchSettings {
  std::size_t k_prime = 0;    ///< filter-phase candidate count; 0 => 4*k
  /// Filter-phase search breadth: HNSW ef_search, IVF nprobe, LSH probes per
  /// table (the exact backend ignores it). 0 => backend default.
  std::size_t ef_search = 0;
  bool refine = true;         ///< false = filter-only (the Fig. 4/6 baseline)
  /// Per-query wall-clock deadline in milliseconds; <= 0 disables. The
  /// server resolves it into the query's SearchContext at entry, every hot
  /// loop it crosses stops cooperatively when it expires, and PpannsService
  /// turns the expiry into a DeadlineExceeded Status.
  double deadline_ms = 0.0;
  /// Per-query filter-phase node budget (rows scored per index scan;
  /// 0 = unlimited). An exhausted budget truncates the scan — the Riazi-style
  /// explicit bound on per-query server work — and is reported via
  /// SearchCounters::early_exit, not an error.
  std::size_t node_budget = 0;
  /// Admission floor in milliseconds; <= 0 disables (default). When set and
  /// the query carries a deadline, a query whose remaining budget is already
  /// below the floor is shed with kResourceExhausted *before* dispatch —
  /// load shedding at the gather node — and a remote shard server applies
  /// the same floor to the budget that survived the wire.
  double admission_ms = 0.0;
};

/// The filter-phase candidate budget rule (Section V-B): an explicit k' is
/// clamped to at least k; unset defaults to 4k. Shared by CloudServer and
/// ShardedCloudServer so both topologies spend the identical budget.
inline std::size_t ResolveKPrime(const SearchSettings& settings, std::size_t k) {
  return settings.k_prime > 0 ? std::max(settings.k_prime, k) : 4 * k;
}

/// Resolves the settings' deadline/budget knobs into the query's context at
/// server entry. Knobs the caller already set on the context win, so a
/// facade-created deadline is never overwritten. Shared by CloudServer and
/// ShardedCloudServer so every serving path bounds work identically.
inline void ApplyContextSettings(SearchContext* ctx,
                                 const SearchSettings& settings) {
  if (settings.deadline_ms > 0.0 && !ctx->has_deadline()) {
    ctx->set_deadline(SearchContext::Clock::now() +
                      std::chrono::duration_cast<SearchContext::Clock::duration>(
                          std::chrono::duration<double, std::milli>(
                              settings.deadline_ms)));
  }
  if (settings.node_budget > 0 && ctx->node_budget() == 0) {
    ctx->set_node_budget(settings.node_budget);
  }
}

/// Instrumentation for the cost analyses (Fig. 6 / Fig. 9) and the async
/// serving path (Fig. 11).
struct SearchCounters {
  std::size_t filter_candidates = 0;
  std::size_t dce_comparisons = 0;
  /// Hedge dispatches issued by the async scatter (a replica missed its
  /// deadline and the next one was tried). Always 0 on the sync path.
  std::size_t hedged_requests = 0;
  /// Replicas that were skipped because they were marked down.
  std::size_t replicas_skipped = 0;
  /// Database rows scored by the winning filter scans of this query, summed
  /// across shards (SearchStats::nodes_visited).
  std::size_t nodes_visited = 0;
  /// All vector-distance evaluations behind this query (superset of
  /// nodes_visited; includes IVF centroid ranking).
  std::size_t distance_computations = 0;
  /// Nodes scored by hedge work items that lost the claim race — wasted
  /// work, observed at gather time (losers still running when the gather
  /// completed land only in ShardedCloudServer::CancelledWorkNodes()).
  std::size_t hedge_wasted_nodes = 0;
  /// Why the query stopped early, if it did (cancellation, deadline, node
  /// budget); kNone for a query that ran to completion.
  EarlyExit early_exit = EarlyExit::kNone;
  /// True when the result was served from PpannsService's trapdoor-keyed
  /// result cache: the ids are a verbatim replay of an earlier identical
  /// query against the same database epoch, and every work counter above is
  /// zero because no filter/refine work ran.
  bool cache_hit = false;
  double filter_seconds = 0.0;
  double refine_seconds = 0.0;
};

/// Copies a finished context's SearchStats and early-exit reason into the
/// result counters — the last step of every serving path.
inline void FillCounters(SearchCounters* counters, const SearchContext& ctx) {
  counters->nodes_visited = ctx.stats.nodes_visited;
  counters->distance_computations = ctx.stats.distance_computations;
  counters->early_exit = ctx.early_exit();
}

/// Result returned to the user: ids only (4k bytes — the server cannot rank
/// by true distance values, and the user needs no more).
struct SearchResult {
  std::vector<VectorId> ids;
  /// True when at least one shard had no live replica and was excluded from
  /// the scatter: the ids cover only the shards that answered. Never set by
  /// a healthy cluster or a single-index server.
  bool partial = false;
  SearchCounters counters;
};

/// The paper-faithful cloud-server core: one encrypted database, one query
/// at a time, trusting its inputs (PpannsService adds validation and
/// batching; ShardedCloudServer scales it out). Holds only ciphertexts and
/// the filter index — its entire observable input is
/// (EncryptedDatabase, QueryToken, k).
class CloudServer {
 public:
  explicit CloudServer(EncryptedDatabase db) : db_(std::move(db)) {
    PPANNS_CHECK(db_.index != nullptr);
  }

  /// Algorithm 2: filter (k'-ANNS over SAP ciphertexts on the configured
  /// SecureFilterIndex backend) + refine (exact DCE comparisons through a
  /// comparison-only max-heap). Thread-safe: concurrent const searches are
  /// allowed (PpannsService::SearchBatch relies on this).
  ///
  /// The `ctx` overload is the cancellable execution path: the context
  /// (caller-owned, e.g. created by PpannsService) is threaded into the
  /// filter hot loop and probed between refine comparisons, the settings'
  /// deadline_ms / node_budget are resolved into it at entry, and the
  /// result's counters report its SearchStats and early-exit reason. A null
  /// context runs with a local one, so counters are always filled; ids are
  /// identical either way unless the context trips.
  SearchResult Search(const QueryToken& token, std::size_t k,
                      const SearchSettings& settings = {}) const {
    return Search(token, k, settings, nullptr);
  }
  SearchResult Search(const QueryToken& token, std::size_t k,
                      const SearchSettings& settings, SearchContext* ctx) const;

  /// Maintenance (Section V-D): link a freshly encrypted vector into the
  /// index / remove one and repair the affected structure.
  VectorId Insert(const EncryptedVector& v);
  Status Delete(VectorId id);

  std::size_t size() const { return db_.index->size(); }
  const SecureFilterIndex& index() const { return *db_.index; }
  const std::vector<DceCiphertext>& dce_ciphertexts() const { return db_.dce; }

  /// Total resident bytes of the outsourced package (space accounting).
  std::size_t StorageBytes() const;

  /// Snapshots the current package (including maintenance mutations) in the
  /// same format EncryptedDatabase::Serialize writes.
  void SerializeDatabase(BinaryWriter* out) const { db_.Serialize(out); }

 private:
  EncryptedDatabase db_;
};

}  // namespace ppanns

#endif  // PPANNS_CORE_CLOUD_SERVER_H_
