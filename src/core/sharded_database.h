// The sharded outsourced package: S replica groups of per-shard
// EncryptedDatabases plus the manifest that locates every global VectorId as
// a (shard, local id) pair.
//
// Sharding is the scaling seam of the serving stack (ROADMAP north-star):
// the data owner partitions the corpus at encryption time, per-shard filter
// indexes build independently (and therefore in parallel), and the
// ShardedCloudServer answers queries scatter-gather. Replication is the
// availability seam on top: every shard may carry R byte-identical replicas,
// so the serving tier can fail over on replica loss and hedge slow replicas
// without changing a single result id. The wire format is a versioned
// envelope that wraps the existing single-shard format unchanged, so every
// replica payload is itself a loadable EncryptedDatabase.

#ifndef PPANNS_CORE_SHARDED_DATABASE_H_
#define PPANNS_CORE_SHARDED_DATABASE_H_

#include <cstddef>
#include <vector>

#include "common/serialize.h"
#include "common/status.h"
#include "common/types.h"
#include "core/encrypted_database.h"

namespace ppanns {

/// Sentinel manifest entry for a global id whose stored vector was
/// physically dropped by tombstone compaction: the global id stays valid
/// forever (ids are never reused) but no longer maps to any slot. Delete on
/// a dead ref is NotFound; search can never surface one (the vector is
/// gone from every index).
inline constexpr ShardRef kDeadShardRef{0xFFFFFFFFu, 0xFFFFFFFFu};

inline bool IsDeadRef(const ShardRef& ref) {
  return ref.shard == kDeadShardRef.shard;
}

/// Maps global vector ids to their (shard, local id) location. Global ids
/// are dense in insertion order, exactly like single-shard VectorIds, so
/// callers never see the partitioning in the result contract. Replication is
/// invisible here: all replicas of a shard store the same local id space.
struct ShardManifest {
  /// entries[g] locates global id g. Exposed directly so tests can craft
  /// malformed manifests; every load path revalidates via Validate().
  std::vector<ShardRef> entries;

  /// Records the next global id as living at (shard, local); returns it.
  VectorId Append(ShardId shard, VectorId local) {
    entries.push_back(ShardRef{shard, local});
    return static_cast<VectorId>(entries.size() - 1);
  }

  std::size_t size() const { return entries.size(); }

  const ShardRef& at(VectorId global_id) const { return entries[global_id]; }

  /// Checks the manifest against the shards it claims to describe:
  /// every live entry's shard must exist, every local id must be in range,
  /// no two global ids may share a (shard, local) slot, and each shard's
  /// local id space [0, capacity) must be covered exactly by the live
  /// entries — together these reject overlapping id ranges and shard-count
  /// mismatches. Dead (kDeadShardRef) entries occupy no slot and are
  /// skipped; they only appear in compacted packages (envelope v3).
  Status Validate(const std::vector<std::size_t>& shard_capacities) const;

  /// Live (non-dead) entry count.
  std::size_t live_size() const {
    std::size_t n = 0;
    for (const ShardRef& ref : entries) n += IsDeadRef(ref) ? 0 : 1;
    return n;
  }

  void Serialize(BinaryWriter* out) const { out->PutVector(entries); }

  static Result<ShardManifest> Deserialize(BinaryReader* in) {
    ShardManifest m;
    PPANNS_RETURN_IF_ERROR(in->GetVector(&m.entries));
    return m;
  }
};

/// The complete sharded (and possibly replicated) outsourced package.
struct ShardedEncryptedDatabase {
  /// shards[s][r] is replica r of shard s. Replica 0 is the primary; an
  /// owner-built package stores R byte-identical replicas per shard (the
  /// whole point — any replica can answer for the shard with identical
  /// results). Every shard carries the same replica count.
  std::vector<std::vector<EncryptedDatabase>> shards;
  ShardManifest manifest;

  /// Monotonic count of structural maintenance operations (compactions and
  /// shard splits) applied to this package. 0 = never compacted — such
  /// packages serialize as the byte-stable v1/v2 envelopes; any compacted
  /// state writes the checksummed v3 envelope.
  std::uint64_t state_version = 0;
  /// Per-shard compaction generation (empty or size num_shards). Carried so
  /// a reloaded package reports the same maintenance history it had live.
  std::vector<std::uint64_t> compaction_epochs;

  std::size_t num_shards() const { return shards.size(); }

  /// Replicas per shard (uniform across shards; 1 for a PR-2 style package).
  std::size_t replication_factor() const {
    return shards.empty() ? 1 : shards.front().size();
  }

  /// Envelope: magic "PPSH", version, shard count, [v2: replica count], the
  /// per-(shard, replica) EncryptedDatabase payloads (each self-describing,
  /// replicas of one shard adjacent), then the manifest. A replication
  /// factor of 1 writes the version-1 envelope byte-for-byte, so unreplicated
  /// packages stay readable by older loaders. A compacted package
  /// (state_version > 0) writes the v3 envelope instead: replica count
  /// always present, state version + per-shard compaction epochs after the
  /// counts, and a CRC-32 + magic footer that rejects torn writes at load
  /// time (see docs/file-formats.md).
  void Serialize(BinaryWriter* out) const;

  /// Writes the envelope prefix (magic, version, shard count and — when
  /// num_replicas > 1 — the replica count) — shared with
  /// ShardedCloudServer::SerializeDatabase, which streams live shards
  /// instead of owning a ShardedEncryptedDatabase value.
  static void WriteEnvelopeHeader(BinaryWriter* out, std::uint32_t num_shards,
                                  std::uint32_t num_replicas);

  /// Writes the v3 envelope prefix (magic, version 3, counts, state
  /// version, per-shard compaction epochs). Returns the offset the trailing
  /// CRC covers from (the first byte after the magic); pass it to
  /// FinishEnvelopeV3 after the payloads and manifest have been written.
  static std::size_t WriteEnvelopeHeaderV3(
      BinaryWriter* out, std::uint32_t num_shards, std::uint32_t num_replicas,
      std::uint64_t state_version,
      const std::vector<std::uint64_t>& compaction_epochs);

  /// Appends the v3 footer: CRC-32 over [crc_begin, current end) plus a
  /// trailing magic. A load that fails either check is a torn write and is
  /// rejected, never half-applied.
  static void FinishEnvelopeV3(BinaryWriter* out, std::size_t crc_begin);

  /// Reads either envelope version, loading each replica through the
  /// existing EncryptedDatabase path, and rejects inconsistent packages:
  /// manifests with overlapping ids, out-of-range shards or coverage
  /// mismatches, and replica groups whose members disagree on capacity.
  static Result<ShardedEncryptedDatabase> Deserialize(BinaryReader* in);

  /// True if `bytes` starts with the sharded envelope magic — the cheap
  /// topology probe used by load paths that accept either format.
  static bool LooksSharded(const std::vector<std::uint8_t>& bytes);
};

}  // namespace ppanns

#endif  // PPANNS_CORE_SHARDED_DATABASE_H_
