// The sharded outsourced package: S per-shard EncryptedDatabases plus the
// manifest that locates every global VectorId as a (shard, local id) pair.
//
// Sharding is the scaling seam of the serving stack (ROADMAP north-star):
// the data owner partitions the corpus at encryption time, per-shard filter
// indexes build independently (and therefore in parallel), and the
// ShardedCloudServer answers queries scatter-gather. The wire format is a
// versioned envelope that wraps the existing single-shard format unchanged,
// so every shard payload is itself a loadable EncryptedDatabase.

#ifndef PPANNS_CORE_SHARDED_DATABASE_H_
#define PPANNS_CORE_SHARDED_DATABASE_H_

#include <cstddef>
#include <vector>

#include "common/serialize.h"
#include "common/status.h"
#include "common/types.h"
#include "core/encrypted_database.h"

namespace ppanns {

/// Maps global vector ids to their (shard, local id) location. Global ids
/// are dense in insertion order, exactly like single-shard VectorIds, so
/// callers never see the partitioning in the result contract.
struct ShardManifest {
  /// entries[g] locates global id g. Exposed directly so tests can craft
  /// malformed manifests; every load path revalidates via Validate().
  std::vector<ShardRef> entries;

  /// Records the next global id as living at (shard, local); returns it.
  VectorId Append(ShardId shard, VectorId local) {
    entries.push_back(ShardRef{shard, local});
    return static_cast<VectorId>(entries.size() - 1);
  }

  std::size_t size() const { return entries.size(); }

  const ShardRef& at(VectorId global_id) const { return entries[global_id]; }

  /// Checks the manifest against the shards it claims to describe:
  /// every entry's shard must exist, every local id must be in range, no two
  /// global ids may share a (shard, local) slot, and each shard's local id
  /// space [0, capacity) must be covered exactly — together these reject
  /// overlapping id ranges and shard-count mismatches.
  Status Validate(const std::vector<std::size_t>& shard_capacities) const;

  void Serialize(BinaryWriter* out) const { out->PutVector(entries); }

  static Result<ShardManifest> Deserialize(BinaryReader* in) {
    ShardManifest m;
    PPANNS_RETURN_IF_ERROR(in->GetVector(&m.entries));
    return m;
  }
};

/// The complete sharded outsourced package.
struct ShardedEncryptedDatabase {
  std::vector<EncryptedDatabase> shards;
  ShardManifest manifest;

  std::size_t num_shards() const { return shards.size(); }

  /// Envelope: magic "PPSH", version, shard count, the per-shard
  /// EncryptedDatabase payloads (each self-describing), then the manifest.
  void Serialize(BinaryWriter* out) const;

  /// Writes the envelope prefix (magic, version, shard count) — shared with
  /// ShardedCloudServer::SerializeDatabase, which streams live shards
  /// instead of owning a ShardedEncryptedDatabase value.
  static void WriteEnvelopeHeader(BinaryWriter* out, std::uint32_t num_shards);

  /// Reads the envelope, loading each shard through the existing
  /// EncryptedDatabase path, and rejects inconsistent manifests
  /// (overlapping ids, out-of-range shards, coverage mismatches).
  static Result<ShardedEncryptedDatabase> Deserialize(BinaryReader* in);

  /// True if `bytes` starts with the sharded envelope magic — the cheap
  /// topology probe used by load paths that accept either format.
  static bool LooksSharded(const std::vector<std::uint8_t>& bytes);
};

}  // namespace ppanns

#endif  // PPANNS_CORE_SHARDED_DATABASE_H_
