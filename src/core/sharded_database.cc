#include "core/sharded_database.h"

#include <cstring>
#include <string>

namespace ppanns {
namespace {

constexpr std::uint32_t kShardedMagic = 0x50505348;  // "PPSH"
// v1: no replication — one payload per shard. v2 inserts a replica count
// after the shard count and stores replication_factor payloads per shard,
// replicas of one shard adjacent. Both load; v1 is still written whenever
// the factor is 1 so unreplicated packages stay bit-compatible with PR 2.
constexpr std::uint32_t kShardedVersionV1 = 1;
constexpr std::uint32_t kShardedVersionV2 = 2;

// Upper bounds no legitimate deployment approaches; reject fuzzed counts
// before they turn into giant allocations.
constexpr std::uint32_t kMaxShards = 1u << 16;
constexpr std::uint32_t kMaxReplicas = 64;

}  // namespace

Status ShardManifest::Validate(
    const std::vector<std::size_t>& shard_capacities) const {
  std::size_t total_capacity = 0;
  for (std::size_t cap : shard_capacities) total_capacity += cap;
  if (entries.size() != total_capacity) {
    return Status::IOError(
        "ShardManifest: " + std::to_string(entries.size()) +
        " entries cannot cover " + std::to_string(total_capacity) +
        " vectors across " + std::to_string(shard_capacities.size()) +
        " shards");
  }

  // One flag per (shard, local) slot; an entry hitting a set flag means two
  // global ids overlap on the same stored vector.
  std::vector<std::vector<bool>> seen(shard_capacities.size());
  for (std::size_t s = 0; s < shard_capacities.size(); ++s) {
    seen[s].assign(shard_capacities[s], false);
  }
  for (std::size_t g = 0; g < entries.size(); ++g) {
    const ShardRef& ref = entries[g];
    if (ref.shard >= shard_capacities.size()) {
      return Status::IOError("ShardManifest: global id " + std::to_string(g) +
                             " references shard " + std::to_string(ref.shard) +
                             " but the envelope has " +
                             std::to_string(shard_capacities.size()));
    }
    if (ref.local >= shard_capacities[ref.shard]) {
      return Status::IOError("ShardManifest: global id " + std::to_string(g) +
                             " references local id " +
                             std::to_string(ref.local) + " beyond shard " +
                             std::to_string(ref.shard) + " capacity " +
                             std::to_string(shard_capacities[ref.shard]));
    }
    if (seen[ref.shard][ref.local]) {
      return Status::IOError(
          "ShardManifest: overlapping entries — (shard " +
          std::to_string(ref.shard) + ", local " + std::to_string(ref.local) +
          ") is claimed by two global ids");
    }
    seen[ref.shard][ref.local] = true;
  }
  // entries.size() == total_capacity and no slot was hit twice, so every
  // slot is covered exactly once.
  return Status::OK();
}

void ShardedEncryptedDatabase::WriteEnvelopeHeader(
    BinaryWriter* out, std::uint32_t num_shards, std::uint32_t num_replicas) {
  out->Put<std::uint32_t>(kShardedMagic);
  if (num_replicas <= 1) {
    // Unreplicated packages keep the PR-2 wire bytes.
    out->Put<std::uint32_t>(kShardedVersionV1);
    out->Put<std::uint32_t>(num_shards);
    return;
  }
  out->Put<std::uint32_t>(kShardedVersionV2);
  out->Put<std::uint32_t>(num_shards);
  out->Put<std::uint32_t>(num_replicas);
}

void ShardedEncryptedDatabase::Serialize(BinaryWriter* out) const {
  WriteEnvelopeHeader(out, static_cast<std::uint32_t>(shards.size()),
                      static_cast<std::uint32_t>(replication_factor()));
  for (const std::vector<EncryptedDatabase>& group : shards) {
    for (const EncryptedDatabase& replica : group) replica.Serialize(out);
  }
  manifest.Serialize(out);
}

Result<ShardedEncryptedDatabase> ShardedEncryptedDatabase::Deserialize(
    BinaryReader* in) {
  std::uint32_t magic = 0, version = 0, num_shards = 0, num_replicas = 1;
  PPANNS_RETURN_IF_ERROR(in->Get(&magic));
  if (magic != kShardedMagic) {
    return Status::IOError("ShardedEncryptedDatabase: bad magic");
  }
  PPANNS_RETURN_IF_ERROR(in->Get(&version));
  if (version != kShardedVersionV1 && version != kShardedVersionV2) {
    return Status::IOError("ShardedEncryptedDatabase: unsupported version");
  }
  PPANNS_RETURN_IF_ERROR(in->Get(&num_shards));
  if (num_shards == 0 || num_shards > kMaxShards) {
    return Status::IOError("ShardedEncryptedDatabase: implausible shard count " +
                           std::to_string(num_shards));
  }
  if (version == kShardedVersionV2) {
    PPANNS_RETURN_IF_ERROR(in->Get(&num_replicas));
    if (num_replicas == 0 || num_replicas > kMaxReplicas) {
      return Status::IOError(
          "ShardedEncryptedDatabase: implausible replica count " +
          std::to_string(num_replicas));
    }
  }

  ShardedEncryptedDatabase db;
  db.shards.resize(num_shards);
  std::vector<std::size_t> capacities;
  capacities.reserve(num_shards);
  for (std::uint32_t s = 0; s < num_shards; ++s) {
    db.shards[s].reserve(num_replicas);
    for (std::uint32_t r = 0; r < num_replicas; ++r) {
      Result<EncryptedDatabase> replica = EncryptedDatabase::Deserialize(in);
      if (!replica.ok()) return replica.status();
      // Replicas of one shard must agree on the local id space, or the
      // manifest (validated against replica 0) would mislocate vectors on
      // failover.
      if (r > 0 && replica->index->capacity() != capacities[s]) {
        return Status::IOError(
            "ShardedEncryptedDatabase: shard " + std::to_string(s) +
            " replica " + std::to_string(r) + " capacity " +
            std::to_string(replica->index->capacity()) +
            " disagrees with replica 0 capacity " +
            std::to_string(capacities[s]));
      }
      if (r == 0) capacities.push_back(replica->index->capacity());
      db.shards[s].push_back(std::move(*replica));
    }
  }

  Result<ShardManifest> manifest = ShardManifest::Deserialize(in);
  if (!manifest.ok()) return manifest.status();
  PPANNS_RETURN_IF_ERROR(manifest->Validate(capacities));
  db.manifest = std::move(*manifest);
  return db;
}

bool ShardedEncryptedDatabase::LooksSharded(
    const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() < sizeof(std::uint32_t)) return false;
  std::uint32_t magic = 0;
  std::memcpy(&magic, bytes.data(), sizeof(magic));
  return magic == kShardedMagic;
}

}  // namespace ppanns
