#include "core/sharded_database.h"

#include <cstring>
#include <string>

#include "common/wal.h"

namespace ppanns {
namespace {

constexpr std::uint32_t kShardedMagic = 0x50505348;  // "PPSH"
// v1: no replication — one payload per shard. v2 inserts a replica count
// after the shard count and stores replication_factor payloads per shard,
// replicas of one shard adjacent. Both load; v1 is still written whenever
// the factor is 1 so unreplicated packages stay bit-compatible with PR 2.
// v3 is the live-mutation envelope: written only once a package has been
// structurally maintained (compaction / shard split, state_version > 0), it
// always carries the replica count, adds the state version and per-shard
// compaction epochs, allows dead (compacted-away) manifest entries, and
// closes with a CRC-32 + magic footer so a torn write is rejected at load
// instead of serving a half-state. Never-compacted packages keep writing
// v1/v2, so deterministic-build byte pins are unaffected.
constexpr std::uint32_t kShardedVersionV1 = 1;
constexpr std::uint32_t kShardedVersionV2 = 2;
constexpr std::uint32_t kShardedVersionV3 = 3;

// Upper bounds no legitimate deployment approaches; reject fuzzed counts
// before they turn into giant allocations.
constexpr std::uint32_t kMaxShards = 1u << 16;
constexpr std::uint32_t kMaxReplicas = 64;

}  // namespace

Status ShardManifest::Validate(
    const std::vector<std::size_t>& shard_capacities) const {
  std::size_t total_capacity = 0;
  for (std::size_t cap : shard_capacities) total_capacity += cap;
  // Dead refs occupy no slot, so the *live* entries must cover the stored
  // vectors exactly (a never-compacted manifest has no dead refs, and the
  // check degenerates to the original entries.size() comparison).
  if (live_size() != total_capacity) {
    return Status::IOError(
        "ShardManifest: " + std::to_string(live_size()) +
        " live entries cannot cover " + std::to_string(total_capacity) +
        " vectors across " + std::to_string(shard_capacities.size()) +
        " shards");
  }

  // One flag per (shard, local) slot; an entry hitting a set flag means two
  // global ids overlap on the same stored vector.
  std::vector<std::vector<bool>> seen(shard_capacities.size());
  for (std::size_t s = 0; s < shard_capacities.size(); ++s) {
    seen[s].assign(shard_capacities[s], false);
  }
  for (std::size_t g = 0; g < entries.size(); ++g) {
    const ShardRef& ref = entries[g];
    if (IsDeadRef(ref)) {
      if (ref.local != kDeadShardRef.local) {
        return Status::IOError("ShardManifest: global id " +
                               std::to_string(g) +
                               " has a malformed dead-ref sentinel");
      }
      continue;  // a compacted-away id occupies no slot
    }
    if (ref.shard >= shard_capacities.size()) {
      return Status::IOError("ShardManifest: global id " + std::to_string(g) +
                             " references shard " + std::to_string(ref.shard) +
                             " but the envelope has " +
                             std::to_string(shard_capacities.size()));
    }
    if (ref.local >= shard_capacities[ref.shard]) {
      return Status::IOError("ShardManifest: global id " + std::to_string(g) +
                             " references local id " +
                             std::to_string(ref.local) + " beyond shard " +
                             std::to_string(ref.shard) + " capacity " +
                             std::to_string(shard_capacities[ref.shard]));
    }
    if (seen[ref.shard][ref.local]) {
      return Status::IOError(
          "ShardManifest: overlapping entries — (shard " +
          std::to_string(ref.shard) + ", local " + std::to_string(ref.local) +
          ") is claimed by two global ids");
    }
    seen[ref.shard][ref.local] = true;
  }
  // entries.size() == total_capacity and no slot was hit twice, so every
  // slot is covered exactly once.
  return Status::OK();
}

void ShardedEncryptedDatabase::WriteEnvelopeHeader(
    BinaryWriter* out, std::uint32_t num_shards, std::uint32_t num_replicas) {
  out->Put<std::uint32_t>(kShardedMagic);
  if (num_replicas <= 1) {
    // Unreplicated packages keep the PR-2 wire bytes.
    out->Put<std::uint32_t>(kShardedVersionV1);
    out->Put<std::uint32_t>(num_shards);
    return;
  }
  out->Put<std::uint32_t>(kShardedVersionV2);
  out->Put<std::uint32_t>(num_shards);
  out->Put<std::uint32_t>(num_replicas);
}

std::size_t ShardedEncryptedDatabase::WriteEnvelopeHeaderV3(
    BinaryWriter* out, std::uint32_t num_shards, std::uint32_t num_replicas,
    std::uint64_t state_version,
    const std::vector<std::uint64_t>& compaction_epochs) {
  out->Put<std::uint32_t>(kShardedMagic);
  const std::size_t crc_begin = out->buffer().size();
  out->Put<std::uint32_t>(kShardedVersionV3);
  out->Put<std::uint32_t>(num_shards);
  out->Put<std::uint32_t>(num_replicas);
  out->Put<std::uint64_t>(state_version);
  for (std::uint32_t s = 0; s < num_shards; ++s) {
    out->Put<std::uint64_t>(s < compaction_epochs.size() ? compaction_epochs[s]
                                                         : 0);
  }
  return crc_begin;
}

void ShardedEncryptedDatabase::FinishEnvelopeV3(BinaryWriter* out,
                                                std::size_t crc_begin) {
  const std::uint32_t crc = Crc32(out->buffer().data() + crc_begin,
                                  out->buffer().size() - crc_begin);
  out->Put<std::uint32_t>(crc);
  out->Put<std::uint32_t>(kShardedMagic);
}

void ShardedEncryptedDatabase::Serialize(BinaryWriter* out) const {
  if (state_version > 0) {
    const std::size_t crc_begin = WriteEnvelopeHeaderV3(
        out, static_cast<std::uint32_t>(shards.size()),
        static_cast<std::uint32_t>(replication_factor()), state_version,
        compaction_epochs);
    for (const std::vector<EncryptedDatabase>& group : shards) {
      for (const EncryptedDatabase& replica : group) replica.Serialize(out);
    }
    manifest.Serialize(out);
    FinishEnvelopeV3(out, crc_begin);
    return;
  }
  WriteEnvelopeHeader(out, static_cast<std::uint32_t>(shards.size()),
                      static_cast<std::uint32_t>(replication_factor()));
  for (const std::vector<EncryptedDatabase>& group : shards) {
    for (const EncryptedDatabase& replica : group) replica.Serialize(out);
  }
  manifest.Serialize(out);
}

Result<ShardedEncryptedDatabase> ShardedEncryptedDatabase::Deserialize(
    BinaryReader* in) {
  std::uint32_t magic = 0, version = 0, num_shards = 0, num_replicas = 1;
  PPANNS_RETURN_IF_ERROR(in->Get(&magic));
  const std::size_t crc_begin = in->position();
  if (magic != kShardedMagic) {
    return Status::IOError("ShardedEncryptedDatabase: bad magic");
  }
  PPANNS_RETURN_IF_ERROR(in->Get(&version));
  if (version != kShardedVersionV1 && version != kShardedVersionV2 &&
      version != kShardedVersionV3) {
    return Status::IOError("ShardedEncryptedDatabase: unsupported version");
  }
  PPANNS_RETURN_IF_ERROR(in->Get(&num_shards));
  if (num_shards == 0 || num_shards > kMaxShards) {
    return Status::IOError("ShardedEncryptedDatabase: implausible shard count " +
                           std::to_string(num_shards));
  }
  if (version != kShardedVersionV1) {
    PPANNS_RETURN_IF_ERROR(in->Get(&num_replicas));
    if (num_replicas == 0 || num_replicas > kMaxReplicas) {
      return Status::IOError(
          "ShardedEncryptedDatabase: implausible replica count " +
          std::to_string(num_replicas));
    }
  }

  ShardedEncryptedDatabase db;
  if (version == kShardedVersionV3) {
    PPANNS_RETURN_IF_ERROR(in->Get(&db.state_version));
    if (db.state_version == 0) {
      return Status::IOError(
          "ShardedEncryptedDatabase: v3 envelope with zero state version");
    }
    db.compaction_epochs.resize(num_shards);
    for (std::uint32_t s = 0; s < num_shards; ++s) {
      PPANNS_RETURN_IF_ERROR(in->Get(&db.compaction_epochs[s]));
    }
  }
  db.shards.resize(num_shards);
  std::vector<std::size_t> capacities;
  capacities.reserve(num_shards);
  for (std::uint32_t s = 0; s < num_shards; ++s) {
    db.shards[s].reserve(num_replicas);
    for (std::uint32_t r = 0; r < num_replicas; ++r) {
      Result<EncryptedDatabase> replica = EncryptedDatabase::Deserialize(in);
      if (!replica.ok()) return replica.status();
      // Replicas of one shard must agree on the local id space, or the
      // manifest (validated against replica 0) would mislocate vectors on
      // failover.
      if (r > 0 && replica->index->capacity() != capacities[s]) {
        return Status::IOError(
            "ShardedEncryptedDatabase: shard " + std::to_string(s) +
            " replica " + std::to_string(r) + " capacity " +
            std::to_string(replica->index->capacity()) +
            " disagrees with replica 0 capacity " +
            std::to_string(capacities[s]));
      }
      if (r == 0) capacities.push_back(replica->index->capacity());
      db.shards[s].push_back(std::move(*replica));
    }
  }

  Result<ShardManifest> manifest = ShardManifest::Deserialize(in);
  if (!manifest.ok()) return manifest.status();
  if (version != kShardedVersionV3) {
    // Dead refs exist only in compacted (v3) packages; a v1/v2 envelope
    // carrying one is corrupt or crafted.
    for (const ShardRef& ref : manifest->entries) {
      if (IsDeadRef(ref)) {
        return Status::IOError(
            "ShardedEncryptedDatabase: dead manifest entry in a pre-v3 "
            "envelope");
      }
    }
  }
  PPANNS_RETURN_IF_ERROR(manifest->Validate(capacities));
  db.manifest = std::move(*manifest);

  if (version == kShardedVersionV3) {
    // Torn-write rejection: the footer CRC covers everything after the
    // magic up to the end of the manifest, then the magic repeats. A crash
    // mid-write leaves a short or mismatched footer and the load fails as a
    // whole — there is no half-applied state.
    const std::size_t crc_end = in->position();
    std::uint32_t crc = 0, footer_magic = 0;
    PPANNS_RETURN_IF_ERROR(in->Get(&crc));
    PPANNS_RETURN_IF_ERROR(in->Get(&footer_magic));
    const std::uint32_t want =
        Crc32(in->bytes() + crc_begin, crc_end - crc_begin);
    if (crc != want || footer_magic != kShardedMagic) {
      return Status::IOError(
          "ShardedEncryptedDatabase: torn v3 envelope (checksum/footer "
          "mismatch)");
    }
  }
  return db;
}

bool ShardedEncryptedDatabase::LooksSharded(
    const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() < sizeof(std::uint32_t)) return false;
  std::uint32_t magic = 0;
  std::memcpy(&magic, bytes.data(), sizeof(magic));
  return magic == kShardedMagic;
}

}  // namespace ppanns
