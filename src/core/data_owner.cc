#include "core/data_owner.h"

#include "common/thread_pool.h"

namespace ppanns {

Result<DataOwner> DataOwner::Create(std::size_t dim,
                                    const PpannsParams& params) {
  Rng key_rng(params.seed);
  Result<DceScheme> dce = DceScheme::KeyGen(dim, key_rng, params.dce_scale_hint);
  if (!dce.ok()) return dce.status();
  Result<DcpeScheme> dcpe =
      DcpeScheme::Create(dim, params.dcpe_s, params.dcpe_beta);
  if (!dcpe.ok()) return dcpe.status();

  auto keys =
      std::make_shared<const SecretKeys>(std::move(*dce), std::move(*dcpe));
  return DataOwner(dim, params, std::move(keys));
}

EncryptedDatabase DataOwner::EncryptAndIndex(const FloatMatrix& data) {
  PPANNS_CHECK(data.dim() == dim_);

  EncryptedDatabase db{MakeFilterIndex(), {}};
  db.dce.reserve(data.size());

  std::vector<float> sap(dim_);
  for (std::size_t i = 0; i < data.size(); ++i) {
    keys_->dcpe.Encrypt(data.row(i), sap.data(), rng_);
    // The index is built over SAP ciphertexts: its structure reflects only
    // approximate neighborhoods (privacy argument of Section V-A).
    const VectorId id = db.index->Add(sap.data());
    PPANNS_CHECK(id == db.dce.size());
    db.dce.push_back(keys_->dce.Encrypt(data.row(i), rng_));
  }
  return db;
}

EncryptedDatabase DataOwner::EncryptAndIndexParallel(const FloatMatrix& data) {
  PPANNS_CHECK(data.dim() == dim_);

  EncryptedDatabase db{MakeFilterIndex(), {}};
  db.dce.resize(data.size());

  // Sequential pass: SAP layer + index (insertion order matters).
  std::vector<float> sap(dim_);
  for (std::size_t i = 0; i < data.size(); ++i) {
    keys_->dcpe.Encrypt(data.row(i), sap.data(), rng_);
    db.index->Add(sap.data());
  }

  // Parallel pass: the DCE layer, with per-row derived randomness so the
  // package is independent of chunking and thread interleaving.
  const std::uint64_t base_seed = params_.seed ^ 0xDCE0DCE0DCE0ull;
  ThreadPool::Global().ParallelFor(
      data.size(), [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          Rng row_rng(base_seed ^ (0x9E3779B97F4A7C15ull * (i + 1)));
          db.dce[i] = keys_->dce.Encrypt(data.row(i), row_rng);
        }
      });
  return db;
}

std::unique_ptr<SecureFilterIndex> DataOwner::MakeFilterIndex() const {
  auto index =
      MakeSecureFilterIndex(params_.index_kind, dim_, params_.FilterOptions());
  PPANNS_CHECK(index.ok());  // dim_ was validated at Create
  return std::move(*index);
}

EncryptedVector DataOwner::EncryptOne(const float* v) {
  EncryptedVector out;
  out.sap.resize(dim_);
  keys_->dcpe.Encrypt(v, out.sap.data(), rng_);
  out.dce = keys_->dce.Encrypt(v, rng_);
  return out;
}

}  // namespace ppanns
