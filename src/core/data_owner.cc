#include "core/data_owner.h"

#include "common/thread_pool.h"

namespace ppanns {

Result<DataOwner> DataOwner::Create(std::size_t dim,
                                    const PpannsParams& params) {
  if (params.num_shards == 0) {
    return Status::InvalidArgument("DataOwner: num_shards must be >= 1");
  }
  if (params.num_replicas == 0) {
    return Status::InvalidArgument("DataOwner: num_replicas must be >= 1");
  }
  Rng key_rng(params.seed);
  Result<DceScheme> dce = DceScheme::KeyGen(dim, key_rng, params.dce_scale_hint);
  if (!dce.ok()) return dce.status();
  Result<DcpeScheme> dcpe =
      DcpeScheme::Create(dim, params.dcpe_s, params.dcpe_beta);
  if (!dcpe.ok()) return dcpe.status();

  auto keys =
      std::make_shared<const SecretKeys>(std::move(*dce), std::move(*dcpe));
  return DataOwner(dim, params, std::move(keys));
}

Result<DataOwner> DataOwner::FromKeys(SecretKeysPtr keys, std::size_t dim,
                                      const PpannsParams& params) {
  if (params.num_shards == 0) {
    return Status::InvalidArgument("DataOwner: num_shards must be >= 1");
  }
  if (params.num_replicas == 0) {
    return Status::InvalidArgument("DataOwner: num_replicas must be >= 1");
  }
  if (keys == nullptr) {
    return Status::InvalidArgument("DataOwner: null key bundle");
  }
  if (keys->dce.dim() != dim || keys->dcpe.dim() != dim) {
    return Status::InvalidArgument(
        "DataOwner: key bundle (DCE dim " + std::to_string(keys->dce.dim()) +
        ", DCPE dim " + std::to_string(keys->dcpe.dim()) +
        ") does not match data dimension " + std::to_string(dim));
  }
  return DataOwner(dim, params, std::move(keys));
}

EncryptedDatabase DataOwner::EncryptAndIndex(const FloatMatrix& data) {
  PPANNS_CHECK(data.dim() == dim_);
  // The parallel intra-shard builder needs every SAP row before the graph
  // fan-out starts, which is exactly the SAP-first randomness stream of
  // EncryptAndIndexParallel — delegate instead of duplicating it. The
  // historical row-interleaved stream below is preserved at the default
  // build_threads == 1.
  if (params_.build_threads > 1) return EncryptAndIndexParallel(data);

  EncryptedDatabase db{MakeFilterIndex(), {}};
  db.dce.reserve(data.size());

  std::vector<float> sap(dim_);
  for (std::size_t i = 0; i < data.size(); ++i) {
    keys_->dcpe.Encrypt(data.row(i), sap.data(), rng_);
    // The index is built over SAP ciphertexts: its structure reflects only
    // approximate neighborhoods (privacy argument of Section V-A).
    const VectorId id = db.index->Add(sap.data());
    PPANNS_CHECK(id == db.dce.size());
    db.dce.push_back(keys_->dce.Encrypt(data.row(i), rng_));
  }
  return db;
}

EncryptedDatabase DataOwner::EncryptAndIndexParallel(const FloatMatrix& data) {
  PPANNS_CHECK(data.dim() == dim_);

  EncryptedDatabase db{MakeFilterIndex(), {}};
  db.dce.resize(data.size());

  // Sequential SAP pass (the rng stream must stay in row order), then the
  // index build: sequential inserts at build_threads == 1, the fine-grained
  // locking bulk builder across build_threads stripes otherwise.
  if (params_.build_threads > 1) {
    FloatMatrix sap(data.size(), dim_);
    for (std::size_t i = 0; i < data.size(); ++i) {
      keys_->dcpe.Encrypt(data.row(i), sap.row(i), rng_);
    }
    db.index->BuildParallel(sap, &ThreadPool::Global(), params_.build_threads);
  } else {
    std::vector<float> sap(dim_);
    for (std::size_t i = 0; i < data.size(); ++i) {
      keys_->dcpe.Encrypt(data.row(i), sap.data(), rng_);
      db.index->Add(sap.data());
    }
  }

  // Parallel pass: the DCE layer, with per-row derived randomness so the
  // package is independent of chunking and thread interleaving.
  const std::uint64_t base_seed = params_.seed ^ 0xDCE0DCE0DCE0ull;
  ThreadPool::Global().ParallelFor(
      data.size(), [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          Rng row_rng(base_seed ^ (0x9E3779B97F4A7C15ull * (i + 1)));
          db.dce[i] = keys_->dce.Encrypt(data.row(i), row_rng);
        }
      });
  return db;
}

ShardedEncryptedDatabase DataOwner::EncryptAndIndexSharded(
    const FloatMatrix& data) {
  PPANNS_CHECK(data.dim() == dim_);
  const std::size_t num_shards = params_.num_shards;

  // Primaries first; replicas are stamped out of the finished primaries at
  // the end (they must be byte-identical, so copying beats rebuilding).
  std::vector<EncryptedDatabase> primaries;
  primaries.reserve(num_shards);
  for (std::size_t s = 0; s < num_shards; ++s) {
    primaries.push_back(
        EncryptedDatabase{MakeFilterIndex(static_cast<ShardId>(s)), {}});
  }
  ShardedEncryptedDatabase db;

  // Sequential SAP pass in global row order: the rng consumption matches
  // EncryptAndIndexParallel exactly (SAP-only pass, DCE randomness derived
  // per row), so the same (seed, data) yields the same SAP ciphertext per
  // row under any shard count. (EncryptAndIndex interleaves DCE draws into
  // the shared stream and therefore produces different SAP noise.)
  FloatMatrix sap(data.size(), dim_);
  for (std::size_t i = 0; i < data.size(); ++i) {
    keys_->dcpe.Encrypt(data.row(i), sap.row(i), rng_);
  }

  // Round-robin partition: global id i lives at (i % S, i / S). Recorded in
  // the manifest before the parallel passes so they can write into
  // pre-sized per-shard slots.
  for (std::size_t i = 0; i < data.size(); ++i) {
    db.manifest.Append(static_cast<ShardId>(i % num_shards),
                       static_cast<VectorId>(i / num_shards));
    primaries[i % num_shards].dce.emplace_back();
  }

  // Parallel per-shard graph build: each shard's insertions stay in local
  // order (ids are assigned in order either way), and independent shards
  // proceed concurrently. With build_threads > 1 each shard additionally
  // fans its own graph construction across that many stripes (BuildParallel
  // detects it is running inside a pool worker and uses dedicated threads),
  // so a sharded build uses up to num_shards x build_threads cores.
  const std::size_t build_threads = params_.build_threads;
  ThreadPool::Global().ParallelFor(
      num_shards, [&](std::size_t begin, std::size_t end) {
        for (std::size_t s = begin; s < end; ++s) {
          if (build_threads > 1) {
            // Round-robin shard s owns rows s, s+S, s+2S, ... — a strided
            // view straight into the shared SAP matrix, so the parallel
            // builder reads in place instead of materializing a per-shard
            // copy of the ciphertexts.
            const std::size_t shard_count =
                s < data.size()
                    ? (data.size() - s + num_shards - 1) / num_shards
                    : 0;
            const RowView shard_sap(shard_count > 0 ? sap.row(s) : nullptr,
                                    shard_count, dim_, num_shards * dim_);
            primaries[s].index->BuildParallel(shard_sap, &ThreadPool::Global(),
                                              build_threads);
            PPANNS_CHECK(primaries[s].index->capacity() == shard_sap.size());
          } else {
            for (std::size_t i = s; i < data.size(); i += num_shards) {
              const VectorId local = primaries[s].index->Add(sap.row(i));
              PPANNS_CHECK(local == i / num_shards);
            }
          }
        }
      });

  // Parallel DCE pass with the same per-row derived randomness as
  // EncryptAndIndexParallel: ciphertexts are identical across shard counts
  // and independent of chunking.
  const std::uint64_t base_seed = params_.seed ^ 0xDCE0DCE0DCE0ull;
  ThreadPool::Global().ParallelFor(
      data.size(), [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          Rng row_rng(base_seed ^ (0x9E3779B97F4A7C15ull * (i + 1)));
          primaries[i % num_shards].dce[i / num_shards] =
              keys_->dce.Encrypt(data.row(i), row_rng);
        }
      });

  // Replicate: R - 1 byte-identical copies per shard, produced by a
  // serialize/deserialize round-trip of the finished primary (the only deep
  // copy the package format guarantees is exact). Independent shards copy in
  // parallel.
  const std::size_t num_replicas = params_.num_replicas;
  db.shards.resize(num_shards);
  for (std::size_t s = 0; s < num_shards; ++s) {
    db.shards[s].reserve(num_replicas);
    db.shards[s].push_back(std::move(primaries[s]));
  }
  if (num_replicas > 1) {
    ThreadPool::Global().ParallelFor(
        num_shards, [&](std::size_t begin, std::size_t end) {
          for (std::size_t s = begin; s < end; ++s) {
            BinaryWriter snapshot;
            db.shards[s].front().Serialize(&snapshot);
            for (std::size_t r = 1; r < num_replicas; ++r) {
              BinaryReader reader(snapshot.buffer());
              Result<EncryptedDatabase> copy =
                  EncryptedDatabase::Deserialize(&reader);
              PPANNS_CHECK(copy.ok());  // round-trip of our own bytes
              db.shards[s].push_back(std::move(*copy));
            }
          }
        });
  }
  return db;
}

std::unique_ptr<SecureFilterIndex> DataOwner::MakeFilterIndex(
    ShardId shard) const {
  auto index = MakeSecureFilterIndex(params_.index_kind, dim_,
                                     params_.FilterOptions(shard));
  PPANNS_CHECK(index.ok());  // dim_ was validated at Create
  return std::move(*index);
}

EncryptedVector DataOwner::EncryptOne(const float* v) {
  EncryptedVector out;
  out.sap.resize(dim_);
  keys_->dcpe.Encrypt(v, out.sap.data(), rng_);
  out.dce = keys_->dce.Encrypt(v, rng_);
  return out;
}

}  // namespace ppanns
