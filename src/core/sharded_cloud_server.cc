#include "core/sharded_cloud_server.h"

#include <algorithm>
#include <string>

#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/comparison_heap.h"

namespace ppanns {

ShardedCloudServer::ShardedCloudServer(ShardedEncryptedDatabase db)
    : manifest_(std::move(db.manifest)) {
  PPANNS_CHECK(!db.shards.empty());
  shards_.reserve(db.shards.size());
  std::vector<std::size_t> capacities;
  capacities.reserve(db.shards.size());
  for (EncryptedDatabase& shard : db.shards) {
    capacities.push_back(shard.index->capacity());
    shards_.emplace_back(std::move(shard));
  }
  // Owner-built packages are consistent by construction and Deserialize
  // revalidates on load; an inconsistent manifest here is a programmer error.
  PPANNS_CHECK(manifest_.Validate(capacities).ok());

  local_to_global_.resize(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    local_to_global_[s].resize(capacities[s], kInvalidVectorId);
  }
  for (std::size_t g = 0; g < manifest_.size(); ++g) {
    const ShardRef& ref = manifest_.at(static_cast<VectorId>(g));
    local_to_global_[ref.shard][ref.local] = static_cast<VectorId>(g);
  }
}

SearchResult ShardedCloudServer::Search(const QueryToken& token, std::size_t k,
                                        const SearchSettings& settings) const {
  SearchResult result;
  if (k == 0 || size() == 0) return result;
  const std::size_t k_prime = ResolveKPrime(settings, k);

  // ---- Scatter (filter phase): every shard answers the full k'-ANNS over
  // its own index. Inside a batch worker the fan-out runs inline; standalone
  // calls parallelize across shards.
  Timer filter_timer;
  std::vector<std::vector<Neighbor>> per_shard(shards_.size());
  ThreadPool::Global().ParallelFor(
      shards_.size(), [&](std::size_t begin, std::size_t end) {
        for (std::size_t s = begin; s < end; ++s) {
          if (shards_[s].index().size() == 0) continue;
          per_shard[s] = shards_[s].index().Search(token.sap.data(), k_prime,
                                                   settings.ef_search);
        }
      });

  // ---- Gather: merge to the global SAP-top-k' under the same
  // (distance, global id) order an unsharded filter phase produces. Each
  // shard's top-k' is complete for that shard, so the merged prefix equals
  // the unsharded candidate list whenever the backends are exact.
  std::vector<Neighbor> merged;
  for (std::size_t s = 0; s < per_shard.size(); ++s) {
    for (const Neighbor& nb : per_shard[s]) {
      merged.push_back(Neighbor{local_to_global_[s][nb.id], nb.distance});
    }
  }
  std::sort(merged.begin(), merged.end());
  if (merged.size() > k_prime) merged.resize(k_prime);
  result.counters.filter_seconds = filter_timer.ElapsedSeconds();
  result.counters.filter_candidates = merged.size();

  if (!settings.refine) {
    const std::size_t out_k = std::min(k, merged.size());
    result.ids.reserve(out_k);
    for (std::size_t i = 0; i < out_k; ++i) result.ids.push_back(merged[i].id);
    return result;
  }

  // ---- Refine: one DCE ComparisonHeap over the merged budget, resolving
  // each global id to its shard's ciphertext through the manifest.
  Timer refine_timer;
  std::size_t* comparisons = &result.counters.dce_comparisons;
  ComparisonHeap heap(k, [this, &token, comparisons](VectorId a, VectorId b) {
    ++*comparisons;
    const ShardRef& ra = manifest_.at(a);
    const ShardRef& rb = manifest_.at(b);
    return DceScheme::Closer(shards_[ra.shard].dce_ciphertexts()[ra.local],
                             shards_[rb.shard].dce_ciphertexts()[rb.local],
                             token.trapdoor);
  });
  for (const Neighbor& cand : merged) {
    heap.Offer(cand.id);
  }
  result.ids = heap.ExtractSorted();
  result.counters.refine_seconds = refine_timer.ElapsedSeconds();
  return result;
}

VectorId ShardedCloudServer::Insert(const EncryptedVector& v) {
  // Least-loaded routing by live count; ties go to the lowest shard id so
  // routing is deterministic.
  std::size_t target = 0;
  for (std::size_t s = 1; s < shards_.size(); ++s) {
    if (shards_[s].size() < shards_[target].size()) target = s;
  }
  const VectorId local = shards_[target].Insert(v);
  const VectorId global_id =
      manifest_.Append(static_cast<ShardId>(target), local);
  PPANNS_CHECK(local == local_to_global_[target].size());
  local_to_global_[target].push_back(global_id);
  return global_id;
}

Status ShardedCloudServer::Delete(VectorId global_id) {
  if (global_id >= manifest_.size()) {
    return Status::InvalidArgument("Delete: global id " +
                                   std::to_string(global_id) +
                                   " was never assigned");
  }
  const ShardRef& ref = manifest_.at(global_id);
  Status st = shards_[ref.shard].Delete(ref.local);
  if (st.ok()) return st;
  // The per-shard status names the local id, which the caller never saw;
  // restate it in global terms.
  const std::string where = "Delete: global id " + std::to_string(global_id) +
                            " (shard " + std::to_string(ref.shard) +
                            ", local " + std::to_string(ref.local) + "): ";
  switch (st.code()) {
    case Status::Code::kNotFound:
      return Status::NotFound(where + st.message());
    case Status::Code::kInvalidArgument:
      return Status::InvalidArgument(where + st.message());
    default:
      return st;
  }
}

std::size_t ShardedCloudServer::size() const {
  std::size_t total = 0;
  for (const CloudServer& shard : shards_) total += shard.size();
  return total;
}

std::size_t ShardedCloudServer::StorageBytes() const {
  std::size_t total = manifest_.size() * sizeof(ShardRef);
  for (const CloudServer& shard : shards_) total += shard.StorageBytes();
  return total;
}

void ShardedCloudServer::SerializeDatabase(BinaryWriter* out) const {
  ShardedEncryptedDatabase::WriteEnvelopeHeader(
      out, static_cast<std::uint32_t>(shards_.size()));
  for (const CloudServer& shard : shards_) shard.SerializeDatabase(out);
  manifest_.Serialize(out);
}

}  // namespace ppanns
