#include "core/sharded_cloud_server.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <limits>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>

#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/comparison_heap.h"
#include "core/query_client.h"

namespace ppanns {

// Health flags, fault injection, load counters and the in-flight task count
// live behind a stable heap address: async work items outlive SearchAsync
// (hedge losers may still be draining when the winner returned) and may even
// outlive a move of the server object, so they capture Runtime* and
// CloudServer* — both stable — never `this`.
struct ShardedCloudServer::Runtime {
  Runtime(std::size_t num_shards, std::size_t num_replicas)
      : shards(num_shards),
        replicas(num_replicas),
        down(std::make_unique<std::atomic<bool>[]>(num_shards * num_replicas)),
        delay_ms(
            std::make_unique<std::atomic<int>[]>(num_shards * num_replicas)),
        inflight_replica(
            std::make_unique<std::atomic<int>[]>(num_shards * num_replicas)),
        requests(std::make_unique<std::atomic<std::size_t>[]>(num_shards *
                                                              num_replicas)) {
    for (std::size_t i = 0; i < num_shards * num_replicas; ++i) {
      down[i].store(false, std::memory_order_relaxed);
      delay_ms[i].store(0, std::memory_order_relaxed);
      inflight_replica[i].store(0, std::memory_order_relaxed);
      requests[i].store(0, std::memory_order_relaxed);
    }
  }

  std::size_t slot(std::size_t s, std::size_t r) const {
    return s * replicas + r;
  }

  std::size_t shards;
  std::size_t replicas;
  std::unique_ptr<std::atomic<bool>[]> down;
  std::unique_ptr<std::atomic<int>[]> delay_ms;
  /// Outstanding filter dispatches per replica (queued + executing, plus any
  /// AddReplicaLoad bias) — what the load-aware dispatcher minimizes.
  std::unique_ptr<std::atomic<int>[]> inflight_replica;
  /// Filter scans actually started per replica (observability).
  std::unique_ptr<std::atomic<std::size_t>[]> requests;
  /// Async work items still on the pool (including abandoned hedge losers);
  /// the destructor drains this before the shards are released.
  std::atomic<std::size_t> inflight{0};
  /// Lifetime totals of hedge work that lost the claim race: nodes the
  /// losers scored before aborting, and how many losing scans there were.
  /// The mid-scan-abort win is this counter staying near zero.
  std::atomic<std::size_t> cancelled_nodes{0};
  std::atomic<std::size_t> cancelled_scans{0};
};

namespace {

/// Simulated straggler: the injected latency of a filter work item, served
/// in 1 ms slices so a cancelled item (lost hedge, expired deadline) wakes
/// out of it at the next slice instead of sleeping uselessly to the end.
void InterruptibleDelay(int delay_ms, SearchContext* ctx) {
  for (int slice = 0; slice < delay_ms; ++slice) {
    if (ctx != nullptr && ctx->ShouldStop(ctx->stats.nodes_visited)) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

/// The in-process ShardTransport: one replica behind a function call. Holds
/// stable pointers only (CloudServer heap slot, the shard's local-to-global
/// row, the Runtime delay cell) — a dispatch can outlive a move of the
/// server object, exactly like the hedged work items always have.
class LocalShardTransport final : public ShardTransport {
 public:
  LocalShardTransport(const CloudServer* replica,
                      const std::vector<VectorId>* local_to_global,
                      const std::atomic<int>* delay_ms)
      : replica_(replica),
        local_to_global_(local_to_global),
        delay_ms_(delay_ms) {}

  Status Filter(const QueryToken& token, const ShardFilterOptions& options,
                SearchContext* ctx, ShardFilterResult* out) const override {
    InterruptibleDelay(delay_ms_->load(std::memory_order_acquire), ctx);
    if (replica_->index().size() == 0 ||
        (ctx != nullptr && ctx->ShouldStop(ctx->stats.nodes_visited))) {
      return Status::OK();  // cancelled/empty before any scan work
    }
    out->scanned = true;
    out->candidates = replica_->index().Search(
        token.sap.data(), options.k_prime, options.ef_search, ctx);
    for (Neighbor& nb : out->candidates) {
      nb.id = (*local_to_global_)[nb.id];
    }
    // want_dce is ignored: a local gather reads ciphertexts in place
    // (FilterShard attaches them for the RPC server path).
    return Status::OK();
  }

  bool remote() const override { return false; }

 private:
  const CloudServer* replica_;
  const std::vector<VectorId>* local_to_global_;
  const std::atomic<int>* delay_ms_;
};

}  // namespace

ShardedCloudServer::ShardedCloudServer(ShardedEncryptedDatabase db)
    : manifest_(std::move(db.manifest)) {
  PPANNS_CHECK(!db.shards.empty());
  const std::size_t num_replicas = db.shards.front().size();
  PPANNS_CHECK(num_replicas >= 1);
  replicas_.resize(db.shards.size());
  std::vector<std::size_t> capacities;
  capacities.reserve(db.shards.size());
  for (std::size_t s = 0; s < db.shards.size(); ++s) {
    // Uniform replica groups whose members agree on the local id space —
    // Deserialize enforces this on load, owner builds satisfy it by
    // construction.
    PPANNS_CHECK(db.shards[s].size() == num_replicas);
    replicas_[s].reserve(num_replicas);
    for (EncryptedDatabase& replica : db.shards[s]) {
      if (!replicas_[s].empty()) {
        PPANNS_CHECK(replica.index->capacity() ==
                     replicas_[s].front().index().capacity());
      }
      replicas_[s].emplace_back(std::move(replica));
    }
    capacities.push_back(replicas_[s].front().index().capacity());
  }
  // Owner-built packages are consistent by construction and Deserialize
  // revalidates on load; an inconsistent manifest here is a programmer error.
  PPANNS_CHECK(manifest_.Validate(capacities).ok());

  local_to_global_.resize(replicas_.size());
  for (std::size_t s = 0; s < replicas_.size(); ++s) {
    local_to_global_[s].resize(capacities[s], kInvalidVectorId);
  }
  for (std::size_t g = 0; g < manifest_.size(); ++g) {
    const ShardRef& ref = manifest_.at(static_cast<VectorId>(g));
    local_to_global_[ref.shard][ref.local] = static_cast<VectorId>(g);
  }

  runtime_ = std::make_unique<Runtime>(replicas_.size(), num_replicas);

  // Every replica gets its in-process transport; search paths dispatch only
  // through this seam, so remote stubs drop in without touching them.
  transports_.resize(replicas_.size());
  for (std::size_t s = 0; s < replicas_.size(); ++s) {
    transports_[s].reserve(num_replicas);
    for (std::size_t r = 0; r < num_replicas; ++r) {
      transports_[s].push_back(std::make_unique<LocalShardTransport>(
          &replicas_[s][r], &local_to_global_[s],
          &runtime_->delay_ms[runtime_->slot(s, r)]));
    }
  }
}

ShardedCloudServer::ShardedCloudServer(
    const RemoteTopology& topology,
    std::vector<std::vector<std::unique_ptr<ShardTransport>>> transports)
    : transports_(std::move(transports)), topology_(topology), remote_(true) {
  PPANNS_CHECK(!transports_.empty());
  PPANNS_CHECK(transports_.size() == topology.num_shards);
  for (const auto& group : transports_) {
    PPANNS_CHECK(group.size() == topology.num_replicas);
    for (const auto& transport : group) PPANNS_CHECK(transport != nullptr);
  }
  runtime_ =
      std::make_unique<Runtime>(topology.num_shards, topology.num_replicas);
}

// Out of line: Runtime is incomplete in the header.
ShardedCloudServer::ShardedCloudServer(ShardedCloudServer&&) noexcept = default;

ShardedCloudServer& ShardedCloudServer::operator=(
    ShardedCloudServer&& other) noexcept {
  if (this != &other) {
    // The shards and runtime about to be released may still be read by
    // abandoned async work items; wait them out like the destructor does.
    DrainAsyncWork();
    replicas_ = std::move(other.replicas_);
    manifest_ = std::move(other.manifest_);
    local_to_global_ = std::move(other.local_to_global_);
    transports_ = std::move(other.transports_);
    topology_ = other.topology_;
    remote_ = other.remote_;
    runtime_ = std::move(other.runtime_);
  }
  return *this;
}

ShardedCloudServer::~ShardedCloudServer() { DrainAsyncWork(); }

void ShardedCloudServer::DrainAsyncWork() const {
  if (runtime_ == nullptr) return;  // moved-from
  while (runtime_->inflight.load(std::memory_order_acquire) != 0) {
    std::this_thread::yield();
  }
}

void ShardedCloudServer::SetReplicaDown(std::size_t s, std::size_t r,
                                        bool down) {
  runtime_->down[runtime_->slot(s, r)].store(down, std::memory_order_release);
}

bool ShardedCloudServer::replica_down(std::size_t s, std::size_t r) const {
  // A replica is unserveable when the admin flagged it down OR its transport
  // can no longer reach it (a remote stub whose connection died) — failover
  // treats both identically.
  return runtime_->down[runtime_->slot(s, r)].load(
             std::memory_order_acquire) ||
         !transports_[s][r]->Healthy();
}

void ShardedCloudServer::SetReplicaDelayMs(std::size_t s, std::size_t r,
                                           int delay_ms) {
  runtime_->delay_ms[runtime_->slot(s, r)].store(delay_ms,
                                                 std::memory_order_release);
}

void ShardedCloudServer::AddReplicaLoad(std::size_t s, std::size_t r,
                                        int delta) {
  runtime_->inflight_replica[runtime_->slot(s, r)].fetch_add(
      delta, std::memory_order_acq_rel);
}

int ShardedCloudServer::replica_inflight(std::size_t s, std::size_t r) const {
  return runtime_->inflight_replica[runtime_->slot(s, r)].load(
      std::memory_order_acquire);
}

std::size_t ShardedCloudServer::replica_requests(std::size_t s,
                                                 std::size_t r) const {
  return runtime_->requests[runtime_->slot(s, r)].load(
      std::memory_order_acquire);
}

std::size_t ShardedCloudServer::CancelledWorkNodes() const {
  DrainAsyncWork();
  return runtime_->cancelled_nodes.load(std::memory_order_acquire);
}

std::size_t ShardedCloudServer::CancelledScans() const {
  DrainAsyncWork();
  return runtime_->cancelled_scans.load(std::memory_order_acquire);
}

std::size_t ShardedCloudServer::live_replicas(std::size_t s) const {
  std::size_t live = 0;
  for (std::size_t r = 0; r < replication_factor(); ++r) {
    if (!replica_down(s, r)) ++live;
  }
  return live;
}

int ShardedCloudServer::FirstLiveReplica(std::size_t s,
                                         std::size_t* skipped) const {
  for (std::size_t r = 0; r < replication_factor(); ++r) {
    if (!replica_down(s, r)) return static_cast<int>(r);
    if (skipped != nullptr) ++*skipped;
  }
  return -1;
}

int ShardedCloudServer::PickReplica(std::size_t s,
                                    std::size_t* skipped) const {
  int best = -1;
  int best_load = std::numeric_limits<int>::max();
  bool seen_live = false;
  for (std::size_t r = 0; r < replication_factor(); ++r) {
    if (replica_down(s, r)) {
      // Down replicas ahead of the first live one count as skipped, matching
      // the first-live accounting the counters have always reported.
      if (!seen_live && skipped != nullptr) ++*skipped;
      continue;
    }
    seen_live = true;
    const int load = runtime_->inflight_replica[runtime_->slot(s, r)].load(
        std::memory_order_acquire);
    if (load < best_load) {
      best_load = load;
      best = static_cast<int>(r);
    }
  }
  return best;
}

ShardFilterOptions ShardedCloudServer::MakeFilterOptions(
    std::size_t k_prime, const SearchSettings& settings) const {
  ShardFilterOptions options;
  options.k_prime = k_prime;
  options.ef_search = settings.ef_search;
  options.want_dce = remote_ && settings.refine;
  options.admission_ms = settings.admission_ms;
  return options;
}

Status ShardedCloudServer::FilterVia(std::size_t s, std::size_t r,
                                     const QueryToken& token,
                                     const ShardFilterOptions& options,
                                     SearchContext* ctx,
                                     ShardFilterResult* out) const {
  Runtime* const rt = runtime_.get();
  const std::size_t slot = rt->slot(s, r);
  rt->inflight_replica[slot].fetch_add(1, std::memory_order_acq_rel);
  const Status st = transports_[s][r]->Filter(token, options, ctx, out);
  if (out->scanned) rt->requests[slot].fetch_add(1, std::memory_order_acq_rel);
  rt->inflight_replica[slot].fetch_sub(1, std::memory_order_acq_rel);
  return st;
}

Status ShardedCloudServer::FilterShard(std::size_t s, std::size_t r,
                                       const QueryToken& token,
                                       const ShardFilterOptions& options,
                                       SearchContext* ctx,
                                       ShardFilterResult* out) const {
  PPANNS_CHECK(!remote_);
  if (s >= num_shards() || r >= replication_factor()) {
    return Status::InvalidArgument(
        "FilterShard: replica (" + std::to_string(s) + ", " +
        std::to_string(r) + ") is outside the " +
        std::to_string(num_shards()) + "x" +
        std::to_string(replication_factor()) + " topology");
  }
  if (options.k_prime == 0) {
    return Status::InvalidArgument("FilterShard: k' must be positive");
  }
  PPANNS_RETURN_IF_ERROR(FilterVia(s, r, token, options, ctx, out));
  if (options.want_dce) {
    // Ship the candidates' ciphertexts for the remote refine phase. Any
    // replica of the shard serves (ciphertexts are byte-identical); use the
    // one that answered.
    const CloudServer& source = replicas_[s][r];
    out->dce.reserve(out->candidates.size());
    for (const Neighbor& nb : out->candidates) {
      const ShardRef& ref = manifest_.at(nb.id);
      out->dce.push_back(source.dce_ciphertexts()[ref.local]);
    }
  }
  return Status::OK();
}

SearchResult ShardedCloudServer::MergeAndRefine(
    const QueryToken& token, std::size_t k, const SearchSettings& settings,
    std::size_t k_prime, std::vector<ShardFilterResult> per_shard,
    SearchContext* ctx) const {
  SearchResult result;

  // A remote gather refines over ciphertexts shipped in the answers; index
  // them by global id up front. (The map points into per_shard, which stays
  // alive through the refine below.)
  std::unordered_map<VectorId, const DceCiphertext*> shipped_dce;
  if (remote_ && settings.refine) {
    for (const ShardFilterResult& shard_result : per_shard) {
      const std::size_t n = std::min(shard_result.candidates.size(),
                                     shard_result.dce.size());
      for (std::size_t i = 0; i < n; ++i) {
        shipped_dce.emplace(shard_result.candidates[i].id,
                            &shard_result.dce[i]);
      }
    }
  }

  // ---- Gather: merge to the global SAP-top-k' under the same
  // (distance, global id) order an unsharded filter phase produces. Each
  // shard's top-k' is complete for that shard, so the merged prefix equals
  // the unsharded candidate list whenever the backends are exact.
  std::vector<Neighbor> merged;
  for (const ShardFilterResult& shard_result : per_shard) {
    merged.insert(merged.end(), shard_result.candidates.begin(),
                  shard_result.candidates.end());
  }
  std::sort(merged.begin(), merged.end());
  if (merged.size() > k_prime) merged.resize(k_prime);
  result.counters.filter_candidates = merged.size();

  if (!settings.refine) {
    const std::size_t out_k = std::min(k, merged.size());
    result.ids.reserve(out_k);
    for (std::size_t i = 0; i < out_k; ++i) result.ids.push_back(merged[i].id);
    if (ctx != nullptr) FillCounters(&result.counters, *ctx);
    return result;
  }

  // ---- Refine: one DCE ComparisonHeap over the merged budget. A local
  // server resolves each global id to its shard's ciphertext through the
  // manifest (any live replica serves the lookup — ciphertexts are identical
  // across replicas; the choice is pinned per shard up front so the
  // comparison hot loop does no health checks). A remote gather looks up the
  // shipped ciphertexts instead — same comparisons, same ids.
  std::vector<const CloudServer*> dce_source(replicas_.size());
  for (std::size_t s = 0; s < replicas_.size(); ++s) {
    const int r = FirstLiveReplica(s);
    dce_source[s] = r >= 0 ? &replicas_[s][r] : &replicas_[s].front();
  }

  Timer refine_timer;
  std::size_t* comparisons = &result.counters.dce_comparisons;
  ComparisonHeap heap(
      k, [this, &token, &dce_source, &shipped_dce,
          comparisons](VectorId a, VectorId b) {
        ++*comparisons;
        if (remote_) {
          return DceScheme::Closer(*shipped_dce.at(a), *shipped_dce.at(b),
                                   token.trapdoor);
        }
        const ShardRef& ra = manifest_.at(a);
        const ShardRef& rb = manifest_.at(b);
        return DceScheme::Closer(
            dce_source[ra.shard]->dce_ciphertexts()[ra.local],
            dce_source[rb.shard]->dce_ciphertexts()[rb.local], token.trapdoor);
      });
  // Blocked offers: gather a block of eligible candidates, prefetching each
  // one's DCE ciphertext payload, then run the comparison-heavy offers over
  // warm lines. Offers apply in candidate order, so ids match the unblocked
  // loop.
  VectorId block[kKernelBlock];
  std::size_t ci = 0;
  bool abandoned = false;
  while (ci < merged.size() && !abandoned) {
    std::size_t bn = 0;
    for (; ci < merged.size() && bn < kKernelBlock; ++ci) {
      // Candidate-granularity probe: DCE comparisons dwarf a row scan. A
      // spent filter budget does not abandon refinement — only cancellation
      // or the deadline does.
      if (ctx != nullptr && ctx->ShouldAbandon()) {
        abandoned = true;
        break;
      }
      const VectorId id = merged[ci].id;
      if (remote_) {
        // Defensive: never offer a candidate whose ciphertext did not ship
        // (a malformed remote answer) — the comparator must not throw.
        const auto it = shipped_dce.find(id);
        if (it == shipped_dce.end()) continue;
        PrefetchRead(it->second->data.data());
      } else {
        const ShardRef& ref = manifest_.at(id);
        PrefetchRead(
            dce_source[ref.shard]->dce_ciphertexts()[ref.local].data.data());
      }
      block[bn++] = id;
    }
    heap.OfferBatch(block, bn);
  }
  result.ids = heap.ExtractSorted();
  result.counters.refine_seconds = refine_timer.ElapsedSeconds();
  if (ctx != nullptr) {
    ctx->stats.dce_comparisons += result.counters.dce_comparisons;
    FillCounters(&result.counters, *ctx);
  }
  return result;
}

SearchResult ShardedCloudServer::Search(const QueryToken& token, std::size_t k,
                                        const SearchSettings& settings,
                                        SearchContext* ctx) const {
  SearchResult result;
  if (k == 0 || size() == 0) return result;
  SearchContext local_ctx;
  if (ctx == nullptr) ctx = &local_ctx;
  ApplyContextSettings(ctx, settings);
  const std::size_t k_prime = ResolveKPrime(settings, k);

  // ---- Scatter (filter phase): every shard answers the full k'-ANNS over
  // its least-loaded live replica. Inside a batch worker the fan-out runs
  // inline; standalone calls parallelize across shards. The gather below is
  // a barrier — the synchronous path's tail latency is the slowest replica.
  // Each shard scans under its own Child context (contexts are single-
  // threaded by design); the parent merges them after the barrier.
  Timer filter_timer;
  const std::size_t num_shards = transports_.size();
  const ShardFilterOptions options = MakeFilterOptions(k_prime, settings);
  std::vector<ShardFilterResult> per_shard(num_shards);
  std::vector<std::size_t> skipped(num_shards, 0);
  std::vector<char> shard_down(num_shards, 0);
  std::vector<SearchContext> children;
  children.reserve(num_shards);
  for (std::size_t s = 0; s < num_shards; ++s) children.push_back(ctx->Child());
  ThreadPool::Global().ParallelFor(
      num_shards, [&](std::size_t begin, std::size_t end) {
        for (std::size_t s = begin; s < end; ++s) {
          const int r = PickReplica(s, &skipped[s]);
          if (r < 0) {
            shard_down[s] = 1;
            continue;
          }
          // A failed dispatch (dead remote connection, server-side shed)
          // degrades like a dead shard: partial result, not a crash.
          if (!FilterVia(s, static_cast<std::size_t>(r), token, options,
                         &children[s], &per_shard[s])
                   .ok()) {
            shard_down[s] = 1;
          }
        }
      });
  for (const SearchContext& child : children) ctx->MergeChild(child);
  const double filter_seconds = filter_timer.ElapsedSeconds();

  result =
      MergeAndRefine(token, k, settings, k_prime, std::move(per_shard), ctx);
  result.counters.filter_seconds = filter_seconds;
  for (std::size_t s = 0; s < num_shards; ++s) {
    result.counters.replicas_skipped += skipped[s];
    if (shard_down[s]) result.partial = true;
  }
  return result;
}

ShardedCloudServer::ScatterOutcome ShardedCloudServer::RunHedgedScatter(
    std::span<const QueryToken> tokens, std::span<const ScatterItem> items,
    const ShardFilterOptions& options, const AsyncOptions& async,
    SearchContext* parent_ctx) const {
  ThreadPool& pool = ThreadPool::Global();
  const std::size_t num_items = items.size();
  const std::size_t num_replicas = replication_factor();
  Runtime* const rt = runtime_.get();

  ScatterOutcome outcome;
  outcome.answers.resize(num_items);
  outcome.stats.resize(num_items);
  outcome.exits.assign(num_items, EarlyExit::kNone);
  outcome.item_seconds.assign(num_items, 0.0);
  outcome.hedges.assign(num_items, 0);

  // Everything an abandoned work item may touch after this call returns
  // lives here, behind a shared_ptr: the token copies, the claim flags and
  // the answer slots. Work items additionally touch the CloudServers and the
  // local_to_global rows through stable heap pointers, guarded against
  // destruction by Runtime::inflight.
  struct ItemSlot {
    /// Raised by the first dispatch to finish — and, with mid_scan_cancel,
    /// registered as a cancellation source in every later dispatch's
    /// context, so losers abort mid-scan at their next probe. A remote
    /// loser's probe fires inside the RPC wait, turning into one CANCEL
    /// frame on the wire.
    std::atomic<bool> claimed{false};
    bool answered = false;         // guarded by Coordinator::mu
    ShardFilterResult answer;      // guarded by mu
    SearchStats stats;             // winner's scan stats, guarded by mu
    EarlyExit exit = EarlyExit::kNone;  // winner's reason, guarded by mu
    double seconds = 0.0;          // winner's delay + scan time, guarded by mu
  };
  struct Coordinator {
    std::vector<QueryToken> tokens;
    std::mutex mu;
    std::condition_variable cv;
    std::size_t pending = 0;  // items dispatched but not yet answered
    std::unique_ptr<ItemSlot[]> slots;
    /// Wasted work of losers that had already finished when the gather
    /// completed; the Runtime counters additionally catch late losers.
    std::atomic<std::size_t> wasted_nodes{0};
  };
  auto co = std::make_shared<Coordinator>();
  co->tokens.assign(tokens.begin(), tokens.end());
  co->slots = std::make_unique<ItemSlot[]>(num_items);
  co->pending = num_items;

  // One dispatch of one (query, shard) item on a chosen replica, through its
  // transport — in-process scan or remote RPC, the hedging machinery cannot
  // tell. The context is assembled at dispatch time: the caller's deadline
  // and cancellation flags (Child), plus — when mid-scan cancellation is on
  // — the item's claim flag. The item carries everything it touches by
  // stable pointer or shared_ptr, never `this`, because a loser can outlive
  // the calling search (its in-flight count is what the destructor drains).
  struct Dispatch {
    std::shared_ptr<Coordinator> co;
    const ShardTransport* transport;
    Runtime* rt;
    std::size_t item;
    std::size_t token_index;
    std::size_t replica_slot;  // rt->slot(s, r), for the load counters
    ShardFilterOptions options;
    SearchContext ctx;  // pre-assembled; stats stay local to this dispatch

    void operator()() {
      ItemSlot& slot = co->slots[item];
      if (slot.claimed.load(std::memory_order_acquire)) {
        // Lost before starting: nothing was wasted, nothing to record.
        Finish();
        return;
      }
      Timer item_timer;
      ShardFilterResult answer;
      const Status st = transport->Filter(co->tokens[token_index], options,
                                          &ctx, &answer);
      if (answer.scanned) {
        rt->requests[replica_slot].fetch_add(1, std::memory_order_acq_rel);
      }
      // A kCancelled exit means we lost only if the *claim* flag is up
      // (another dispatch won). A caller-raised flag with no claim yet
      // must still publish its partial answer — otherwise every dispatch
      // of the item would walk away and the gather would wait on
      // `pending` forever.
      const bool lost_race =
          ctx.early_exit() == EarlyExit::kCancelled &&
          slot.claimed.load(std::memory_order_acquire);
      if (lost_race) {
        if (answer.scanned) {
          // Lost the race after burning real work: account it. This counter
          // staying near zero is what mid-scan cancellation buys — locally
          // through the claim-flag probe, remotely through the CANCEL frame
          // (the response's partial stats land in `ctx`).
          rt->cancelled_nodes.fetch_add(ctx.stats.nodes_visited,
                                        std::memory_order_acq_rel);
          rt->cancelled_scans.fetch_add(1, std::memory_order_acq_rel);
          co->wasted_nodes.fetch_add(ctx.stats.nodes_visited,
                                     std::memory_order_acq_rel);
        }
        Finish();
        return;
      }
      if (!slot.claimed.exchange(true, std::memory_order_acq_rel)) {
        // First finisher wins — including a failed dispatch (dead remote
        // connection), which publishes its empty answer so the gather never
        // hangs; the transport's health flag steers future dispatches away.
        if (!st.ok()) answer = ShardFilterResult{};
        std::lock_guard<std::mutex> lock(co->mu);
        slot.answered = true;
        slot.answer = std::move(answer);
        slot.stats = ctx.stats;
        slot.exit = ctx.early_exit();
        slot.seconds = item_timer.ElapsedSeconds();
        --co->pending;
        co->cv.notify_all();
      } else if (answer.scanned) {
        // Claimed between our probe and the exchange: a straggler loss.
        rt->cancelled_nodes.fetch_add(ctx.stats.nodes_visited,
                                      std::memory_order_acq_rel);
        rt->cancelled_scans.fetch_add(1, std::memory_order_acq_rel);
        co->wasted_nodes.fetch_add(ctx.stats.nodes_visited,
                                   std::memory_order_acq_rel);
      }
      Finish();
    }

    void Finish() {
      rt->inflight_replica[replica_slot].fetch_sub(1,
                                                   std::memory_order_acq_rel);
      rt->inflight.fetch_sub(1, std::memory_order_acq_rel);
    }
  };

  const auto make_dispatch = [&](std::size_t item, std::size_t s,
                                 std::size_t r) {
    SearchContext ctx =
        parent_ctx != nullptr ? parent_ctx->Child() : SearchContext{};
    if (async.mid_scan_cancel) ctx.AddCancelFlag(&co->slots[item].claimed);
    const std::size_t slot = rt->slot(s, r);
    rt->inflight_replica[slot].fetch_add(1, std::memory_order_acq_rel);
    rt->inflight.fetch_add(1, std::memory_order_acq_rel);
    return Dispatch{co,
                    transports_[s][r].get(),
                    rt,
                    item,
                    items[item].token_index,
                    slot,
                    options,
                    std::move(ctx)};
  };

  // ---- Initial scatter: every item to the least-loaded live replica of
  // its shard, on the pool.
  std::vector<std::vector<std::uint8_t>> dispatched(
      num_items, std::vector<std::uint8_t>(num_replicas, 0));
  for (std::size_t i = 0; i < num_items; ++i) {
    const int r = PickReplica(items[i].shard, &outcome.replicas_skipped);
    if (r < 0) {
      // Callers exclude shards with no live replica, but SetReplicaDown is
      // an admin knob usable concurrently with serving: the shard's last
      // replica may have died between the caller's liveness scan and this
      // dispatch. Degrade like a dead shard — an empty answer — instead of
      // crashing the server.
      std::lock_guard<std::mutex> lock(co->mu);
      co->slots[i].answered = true;
      --co->pending;
      continue;
    }
    dispatched[i][static_cast<std::size_t>(r)] = 1;
    pool.Submit(make_dispatch(i, items[i].shard, static_cast<std::size_t>(r)));
  }

  // ---- Gather with hedging: wait in hedge_ms steps; at each missed
  // deadline, run the unanswered items on their shard's next-best live
  // replica INLINE on this thread. The gather thread is otherwise idle, so
  // a hedge makes progress even when every pool worker is stuck behind a
  // straggler (including on a single-worker pool); the loser aborts at its
  // next cancellation probe once the inline run claims the slot.
  const bool hedging = async.hedge_ms > 0.0;
  const bool has_deadline =
      parent_ctx != nullptr && parent_ctx->has_deadline();
  const auto query_deadline = has_deadline
                                  ? parent_ctx->deadline()
                                  : SearchContext::Clock::time_point::max();
  {
    std::unique_lock<std::mutex> lock(co->mu);
    const auto start = std::chrono::steady_clock::now();
    std::size_t level = 1;
    bool escalation_left = true;
    for (;;) {
      auto wake = query_deadline;
      if (hedging && escalation_left) {
        const auto hedge_deadline =
            start +
            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double, std::milli>(
                    async.hedge_ms * static_cast<double>(level)));
        wake = std::min(wake, hedge_deadline);
      }
      bool done;
      if (wake == SearchContext::Clock::time_point::max()) {
        co->cv.wait(lock, [&co] { return co->pending == 0; });
        done = true;
      } else {
        done = co->cv.wait_until(lock, wake,
                                 [&co] { return co->pending == 0; });
      }
      if (done) break;
      if (has_deadline && SearchContext::Clock::now() >= query_deadline) {
        // Query deadline: abandon the gather. In-flight dispatches observe
        // the same deadline through their contexts and stop on their own.
        parent_ctx->ShouldStop();
        break;
      }
      if (!hedging || !escalation_left) continue;

      // Escalate every unanswered item to its shard's next-best live
      // replica, inline. The lock is dropped while scanning so finishing
      // pool items can deliver their answers meanwhile.
      std::vector<std::pair<std::size_t, std::size_t>> to_run;  // (item, r)
      escalation_left = false;
      for (std::size_t i = 0; i < num_items; ++i) {
        if (co->slots[i].answered) continue;
        int best = -1;
        int best_load = std::numeric_limits<int>::max();
        std::size_t undispatched_live = 0;
        for (std::size_t r = 0; r < num_replicas; ++r) {
          if (dispatched[i][r] || replica_down(items[i].shard, r)) continue;
          ++undispatched_live;
          const int load =
              rt->inflight_replica[rt->slot(items[i].shard, r)].load(
                  std::memory_order_acquire);
          if (load < best_load) {
            best_load = load;
            best = static_cast<int>(r);
          }
        }
        if (best < 0) continue;
        dispatched[i][static_cast<std::size_t>(best)] = 1;
        ++outcome.hedges[i];
        ++outcome.hedged_requests;
        if (undispatched_live > 1) escalation_left = true;
        to_run.emplace_back(i, static_cast<std::size_t>(best));
      }
      ++level;
      if (to_run.empty()) continue;
      lock.unlock();
      for (const auto& [item, r] : to_run) {
        Dispatch hedge = make_dispatch(item, items[item].shard, r);
        hedge();
      }
      lock.lock();
    }

    // ---- Collect under the same lock that guards the answer slots. Losers
    // may still be running; they can no longer win the claim, so answered
    // slots are stable.
    for (std::size_t i = 0; i < num_items; ++i) {
      if (!co->slots[i].answered) continue;
      outcome.answers[i] = std::move(co->slots[i].answer);
      outcome.stats[i] = co->slots[i].stats;
      outcome.exits[i] = co->slots[i].exit;
      outcome.item_seconds[i] = co->slots[i].seconds;
    }
  }
  outcome.wasted_nodes = co->wasted_nodes.load(std::memory_order_acquire);
  return outcome;
}

Result<SearchResult> ShardedCloudServer::SearchAsync(
    const QueryToken& token, std::size_t k, const SearchSettings& settings,
    const AsyncOptions& async, SearchContext* ctx) const {
  ThreadPool& pool = ThreadPool::Global();
  if (pool.InWorker()) {
    // The gather thread doubles as the inline hedge executor; a pool worker
    // cannot play that role for itself, so fall back to the inline
    // synchronous scatter (ParallelFor's nested rule), which already avoids
    // the straggler wait across *queries* at the batch level.
    SearchResult result = Search(token, k, settings, ctx);
    if (result.partial && !async.allow_partial) {
      return Status::FailedPrecondition(
          "SearchAsync: a shard has no live replica and partial results are "
          "disabled");
    }
    return result;
  }

  SearchResult result;
  if (k == 0 || size() == 0) return result;
  SearchContext local_ctx;
  if (ctx == nullptr) ctx = &local_ctx;
  ApplyContextSettings(ctx, settings);
  const std::size_t k_prime = ResolveKPrime(settings, k);
  const std::size_t num_shards = transports_.size();

  // Resolve serveable shards; dead shards are excluded from the scatter.
  std::vector<ScatterItem> items;
  std::vector<int> item_of_shard(num_shards, -1);
  items.reserve(num_shards);
  bool partial = false;
  for (std::size_t s = 0; s < num_shards; ++s) {
    if (live_replicas(s) == 0) {
      partial = true;
      continue;
    }
    item_of_shard[s] = static_cast<int>(items.size());
    items.push_back(ScatterItem{0, s});
  }
  if (items.empty()) {
    return Status::FailedPrecondition(
        "SearchAsync: every replica of every shard is down");
  }
  if (partial && !async.allow_partial) {
    return Status::FailedPrecondition(
        "SearchAsync: a shard has no live replica and partial results are "
        "disabled");
  }

  Timer filter_timer;
  ScatterOutcome outcome =
      RunHedgedScatter(std::span(&token, 1), items,
                       MakeFilterOptions(k_prime, settings), async, ctx);
  const double filter_seconds = filter_timer.ElapsedSeconds();

  std::vector<ShardFilterResult> per_shard(num_shards);
  for (std::size_t s = 0; s < num_shards; ++s) {
    if (item_of_shard[s] < 0) continue;
    const std::size_t i = static_cast<std::size_t>(item_of_shard[s]);
    per_shard[s] = std::move(outcome.answers[i]);
    ctx->stats.Merge(outcome.stats[i]);
    ctx->AdoptEarlyExit(outcome.exits[i]);
  }

  result =
      MergeAndRefine(token, k, settings, k_prime, std::move(per_shard), ctx);
  result.counters.filter_seconds = filter_seconds;
  result.counters.hedged_requests = outcome.hedged_requests;
  result.counters.replicas_skipped = outcome.replicas_skipped;
  result.counters.hedge_wasted_nodes = outcome.wasted_nodes;
  result.partial = partial;
  return result;
}

std::vector<SearchResult> ShardedCloudServer::SearchBatchScattered(
    std::span<const QueryToken> tokens, std::size_t k,
    const SearchSettings& settings) const {
  const std::size_t num_queries = tokens.size();
  const std::size_t num_shards = transports_.size();
  std::vector<SearchResult> results(num_queries);
  if (num_queries == 0 || k == 0 || size() == 0) return results;
  const std::size_t k_prime = ResolveKPrime(settings, k);
  const ShardFilterOptions options = MakeFilterOptions(k_prime, settings);

  // Per-query contexts: the deadline/budget knobs bound every query of the
  // batch independently; stats land in that query's counters.
  std::vector<SearchContext> query_ctx(num_queries);
  for (SearchContext& ctx : query_ctx) ApplyContextSettings(&ctx, settings);

  // Resolve the serving replica of every shard once per batch (load-aware;
  // on an idle cluster this is the first live replica, as before).
  std::vector<int> serving(num_shards, -1);
  std::size_t skipped = 0;
  bool partial = false;
  for (std::size_t s = 0; s < num_shards; ++s) {
    serving[s] = PickReplica(s, &skipped);
    if (serving[s] < 0) partial = true;
  }

  // ---- Phase 1: one flat fan-out over all Q*S (query, shard) work items.
  // Work item (q, s) is independent of every other, so a small batch still
  // spreads across every core instead of leaving (cores - Q) idle. Each
  // item scans under a Child of its query's context.
  std::vector<std::vector<ShardFilterResult>> candidates(num_queries);
  for (auto& per_query : candidates) per_query.resize(num_shards);
  std::vector<double> item_seconds(num_queries * num_shards, 0.0);
  std::vector<SearchContext> item_ctx;
  item_ctx.reserve(num_queries * num_shards);
  for (std::size_t q = 0; q < num_queries; ++q) {
    for (std::size_t s = 0; s < num_shards; ++s) {
      item_ctx.push_back(query_ctx[q].Child());
    }
  }
  ThreadPool::Global().ParallelFor(
      num_queries * num_shards, [&](std::size_t begin, std::size_t end) {
        for (std::size_t item = begin; item < end; ++item) {
          const std::size_t q = item / num_shards;
          const std::size_t s = item % num_shards;
          if (serving[s] < 0) continue;
          Timer item_timer;
          // A failed dispatch leaves this (query, shard) answer empty — the
          // merge degrades like a dead shard.
          static_cast<void>(FilterVia(s, static_cast<std::size_t>(serving[s]),
                                      tokens[q], options, &item_ctx[item],
                                      &candidates[q][s]));
          item_seconds[item] = item_timer.ElapsedSeconds();
        }
      });
  for (std::size_t q = 0; q < num_queries; ++q) {
    for (std::size_t s = 0; s < num_shards; ++s) {
      query_ctx[q].MergeChild(item_ctx[q * num_shards + s]);
    }
  }

  // ---- Phase 2: per-query merge + refine, fanned across queries.
  ThreadPool::Global().ParallelFor(
      num_queries, [&](std::size_t begin, std::size_t end) {
        for (std::size_t q = begin; q < end; ++q) {
          results[q] = MergeAndRefine(tokens[q], k, settings, k_prime,
                                      std::move(candidates[q]), &query_ctx[q]);
          double filter_seconds = 0.0;
          for (std::size_t s = 0; s < num_shards; ++s) {
            filter_seconds += item_seconds[q * num_shards + s];
          }
          results[q].counters.filter_seconds = filter_seconds;
          results[q].counters.replicas_skipped = skipped;
          results[q].partial = partial;
        }
      });
  return results;
}

std::vector<SearchResult> ShardedCloudServer::SearchBatchScattered(
    std::span<const QueryToken> tokens, std::size_t k,
    const SearchSettings& settings, const AsyncOptions& async) const {
  // Hedging needs this thread as the gather/inline-hedge executor; from a
  // pool worker (or with hedging off) the flat ParallelFor path serves.
  if (async.hedge_ms <= 0.0 || ThreadPool::Global().InWorker()) {
    return SearchBatchScattered(tokens, k, settings);
  }
  const std::size_t num_queries = tokens.size();
  const std::size_t num_shards = transports_.size();
  std::vector<SearchResult> results(num_queries);
  if (num_queries == 0 || k == 0 || size() == 0) return results;
  const std::size_t k_prime = ResolveKPrime(settings, k);

  std::vector<SearchContext> query_ctx(num_queries);
  for (SearchContext& ctx : query_ctx) ApplyContextSettings(&ctx, settings);

  // Dead shards are excluded once for the whole batch.
  bool partial = false;
  std::vector<char> shard_live(num_shards, 0);
  for (std::size_t s = 0; s < num_shards; ++s) {
    if (live_replicas(s) > 0) {
      shard_live[s] = 1;
    } else {
      partial = true;
    }
  }

  // All Q*S (query, live shard) work items through the same hedged
  // claim-flag scatter SearchAsync uses — one coordinator, one gather.
  std::vector<ScatterItem> items;
  items.reserve(num_queries * num_shards);
  for (std::size_t q = 0; q < num_queries; ++q) {
    for (std::size_t s = 0; s < num_shards; ++s) {
      if (shard_live[s]) items.push_back(ScatterItem{q, s});
    }
  }
  if (items.empty()) return results;

  // The batch shares one deadline context source: every query's context
  // carries the same settings-derived deadline, so the first query's stands
  // in for the gather bound.
  ScatterOutcome outcome =
      RunHedgedScatter(tokens, items, MakeFilterOptions(k_prime, settings),
                       async, &query_ctx.front());

  std::vector<std::vector<ShardFilterResult>> candidates(num_queries);
  for (auto& per_query : candidates) per_query.resize(num_shards);
  std::vector<std::size_t> hedges_per_query(num_queries, 0);
  std::vector<double> seconds_per_query(num_queries, 0.0);
  for (std::size_t i = 0; i < items.size(); ++i) {
    candidates[items[i].token_index][items[i].shard] =
        std::move(outcome.answers[i]);
    query_ctx[items[i].token_index].stats.Merge(outcome.stats[i]);
    query_ctx[items[i].token_index].AdoptEarlyExit(outcome.exits[i]);
    hedges_per_query[items[i].token_index] += outcome.hedges[i];
    // Per-query attribution from the winning dispatches, matching the
    // unhedged path's item_seconds accounting (not the batch wall time,
    // which would inflate BatchCounters totals Q-fold).
    seconds_per_query[items[i].token_index] += outcome.item_seconds[i];
  }

  ThreadPool::Global().ParallelFor(
      num_queries, [&](std::size_t begin, std::size_t end) {
        for (std::size_t q = begin; q < end; ++q) {
          results[q] = MergeAndRefine(tokens[q], k, settings, k_prime,
                                      std::move(candidates[q]), &query_ctx[q]);
          results[q].counters.filter_seconds = seconds_per_query[q];
          results[q].counters.replicas_skipped = outcome.replicas_skipped;
          results[q].counters.hedged_requests = hedges_per_query[q];
          // Wasted loser work is a batch-wide observation; attribute it to
          // the batch's first result rather than replicating it Q times.
          results[q].counters.hedge_wasted_nodes =
              q == 0 ? outcome.wasted_nodes : 0;
          results[q].partial = partial;
        }
      });
  return results;
}

VectorId ShardedCloudServer::Insert(const EncryptedVector& v) {
  // The facade gates remote maintenance with a Status; reaching here on a
  // stub-backed server is a programmer error.
  PPANNS_CHECK(!remote_);
  // Abandoned hedge losers may still be reading the indexes and the
  // local-to-global rows this mutation is about to touch; they cancel fast
  // (claim flag / context probe), so wait them out before mutating.
  DrainAsyncWork();
  // Least-loaded routing by live count; ties go to the lowest shard id so
  // routing is deterministic.
  std::size_t target = 0;
  for (std::size_t s = 1; s < replicas_.size(); ++s) {
    if (replicas_[s].front().size() < replicas_[target].front().size()) {
      target = s;
    }
  }
  // Every replica of the target shard applies the insert, so replicas stay
  // identical and any of them can serve or fail over afterwards.
  const VectorId local = replicas_[target].front().Insert(v);
  for (std::size_t r = 1; r < replicas_[target].size(); ++r) {
    const VectorId replica_local = replicas_[target][r].Insert(v);
    PPANNS_CHECK(replica_local == local);
  }
  const VectorId global_id =
      manifest_.Append(static_cast<ShardId>(target), local);
  PPANNS_CHECK(local == local_to_global_[target].size());
  local_to_global_[target].push_back(global_id);
  return global_id;
}

Status ShardedCloudServer::Delete(VectorId global_id) {
  PPANNS_CHECK(!remote_);  // see Insert
  DrainAsyncWork();
  if (global_id >= manifest_.size()) {
    return Status::InvalidArgument("Delete: global id " +
                                   std::to_string(global_id) +
                                   " was never assigned");
  }
  const ShardRef& ref = manifest_.at(global_id);
  Status st = replicas_[ref.shard].front().Delete(ref.local);
  if (st.ok()) {
    // Replicas mirror the primary exactly, so the tombstone must land on
    // every one of them.
    for (std::size_t r = 1; r < replicas_[ref.shard].size(); ++r) {
      PPANNS_CHECK(replicas_[ref.shard][r].Delete(ref.local).ok());
    }
    return st;
  }
  // The per-shard status names the local id, which the caller never saw;
  // restate it in global terms.
  const std::string where = "Delete: global id " + std::to_string(global_id) +
                            " (shard " + std::to_string(ref.shard) +
                            ", local " + std::to_string(ref.local) + "): ";
  switch (st.code()) {
    case Status::Code::kNotFound:
      return Status::NotFound(where + st.message());
    case Status::Code::kInvalidArgument:
      return Status::InvalidArgument(where + st.message());
    default:
      return st;
  }
}

std::size_t ShardedCloudServer::size() const {
  if (remote_) return topology_.size;
  std::size_t total = 0;
  for (const std::vector<CloudServer>& group : replicas_) {
    total += group.front().size();
  }
  return total;
}

std::size_t ShardedCloudServer::StorageBytes() const {
  if (remote_) return topology_.storage_bytes;
  std::size_t total = manifest_.size() * sizeof(ShardRef);
  for (const std::vector<CloudServer>& group : replicas_) {
    for (const CloudServer& replica : group) total += replica.StorageBytes();
  }
  return total;
}

void ShardedCloudServer::SerializeDatabase(BinaryWriter* out) const {
  PPANNS_CHECK(!remote_);  // see Insert
  ShardedEncryptedDatabase::WriteEnvelopeHeader(
      out, static_cast<std::uint32_t>(replicas_.size()),
      static_cast<std::uint32_t>(replication_factor()));
  for (const std::vector<CloudServer>& group : replicas_) {
    for (const CloudServer& replica : group) replica.SerializeDatabase(out);
  }
  manifest_.Serialize(out);
}

}  // namespace ppanns
