#include "core/sharded_cloud_server.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>

#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/comparison_heap.h"
#include "core/query_client.h"

namespace ppanns {

// Health flags, fault injection and the in-flight task count live behind a
// stable heap address: async work items outlive SearchAsync (hedge losers
// keep running after the winner returned) and may even outlive a move of the
// server object, so they capture Runtime* and CloudServer* — both stable —
// never `this`.
struct ShardedCloudServer::Runtime {
  Runtime(std::size_t num_shards, std::size_t num_replicas)
      : shards(num_shards),
        replicas(num_replicas),
        down(std::make_unique<std::atomic<bool>[]>(num_shards * num_replicas)),
        delay_ms(
            std::make_unique<std::atomic<int>[]>(num_shards * num_replicas)) {
    for (std::size_t i = 0; i < num_shards * num_replicas; ++i) {
      down[i].store(false, std::memory_order_relaxed);
      delay_ms[i].store(0, std::memory_order_relaxed);
    }
  }

  std::size_t slot(std::size_t s, std::size_t r) const {
    return s * replicas + r;
  }

  std::size_t shards;
  std::size_t replicas;
  std::unique_ptr<std::atomic<bool>[]> down;
  std::unique_ptr<std::atomic<int>[]> delay_ms;
  /// Async work items still on the pool (including abandoned hedge losers);
  /// the destructor drains this before the shards are released.
  std::atomic<std::size_t> inflight{0};
};

namespace {

/// Simulated straggler: the injected latency of the filter work item.
void ApplyInjectedDelay(int delay_ms) {
  if (delay_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
  }
}

}  // namespace

ShardedCloudServer::ShardedCloudServer(ShardedEncryptedDatabase db)
    : manifest_(std::move(db.manifest)) {
  PPANNS_CHECK(!db.shards.empty());
  const std::size_t num_replicas = db.shards.front().size();
  PPANNS_CHECK(num_replicas >= 1);
  replicas_.resize(db.shards.size());
  std::vector<std::size_t> capacities;
  capacities.reserve(db.shards.size());
  for (std::size_t s = 0; s < db.shards.size(); ++s) {
    // Uniform replica groups whose members agree on the local id space —
    // Deserialize enforces this on load, owner builds satisfy it by
    // construction.
    PPANNS_CHECK(db.shards[s].size() == num_replicas);
    replicas_[s].reserve(num_replicas);
    for (EncryptedDatabase& replica : db.shards[s]) {
      if (!replicas_[s].empty()) {
        PPANNS_CHECK(replica.index->capacity() ==
                     replicas_[s].front().index().capacity());
      }
      replicas_[s].emplace_back(std::move(replica));
    }
    capacities.push_back(replicas_[s].front().index().capacity());
  }
  // Owner-built packages are consistent by construction and Deserialize
  // revalidates on load; an inconsistent manifest here is a programmer error.
  PPANNS_CHECK(manifest_.Validate(capacities).ok());

  local_to_global_.resize(replicas_.size());
  for (std::size_t s = 0; s < replicas_.size(); ++s) {
    local_to_global_[s].resize(capacities[s], kInvalidVectorId);
  }
  for (std::size_t g = 0; g < manifest_.size(); ++g) {
    const ShardRef& ref = manifest_.at(static_cast<VectorId>(g));
    local_to_global_[ref.shard][ref.local] = static_cast<VectorId>(g);
  }

  runtime_ = std::make_unique<Runtime>(replicas_.size(), num_replicas);
}

// Out of line: Runtime is incomplete in the header.
ShardedCloudServer::ShardedCloudServer(ShardedCloudServer&&) noexcept = default;

ShardedCloudServer& ShardedCloudServer::operator=(
    ShardedCloudServer&& other) noexcept {
  if (this != &other) {
    // The shards and runtime about to be released may still be read by
    // abandoned async work items; wait them out like the destructor does.
    DrainAsyncWork();
    replicas_ = std::move(other.replicas_);
    manifest_ = std::move(other.manifest_);
    local_to_global_ = std::move(other.local_to_global_);
    runtime_ = std::move(other.runtime_);
  }
  return *this;
}

ShardedCloudServer::~ShardedCloudServer() { DrainAsyncWork(); }

void ShardedCloudServer::DrainAsyncWork() const {
  if (runtime_ == nullptr) return;  // moved-from
  while (runtime_->inflight.load(std::memory_order_acquire) != 0) {
    std::this_thread::yield();
  }
}

void ShardedCloudServer::SetReplicaDown(std::size_t s, std::size_t r,
                                        bool down) {
  runtime_->down[runtime_->slot(s, r)].store(down, std::memory_order_release);
}

bool ShardedCloudServer::replica_down(std::size_t s, std::size_t r) const {
  return runtime_->down[runtime_->slot(s, r)].load(std::memory_order_acquire);
}

void ShardedCloudServer::SetReplicaDelayMs(std::size_t s, std::size_t r,
                                           int delay_ms) {
  runtime_->delay_ms[runtime_->slot(s, r)].store(delay_ms,
                                                 std::memory_order_release);
}

std::size_t ShardedCloudServer::live_replicas(std::size_t s) const {
  std::size_t live = 0;
  for (std::size_t r = 0; r < replication_factor(); ++r) {
    if (!replica_down(s, r)) ++live;
  }
  return live;
}

int ShardedCloudServer::FirstLiveReplica(std::size_t s,
                                         std::size_t* skipped) const {
  for (std::size_t r = 0; r < replication_factor(); ++r) {
    if (!replica_down(s, r)) return static_cast<int>(r);
    if (skipped != nullptr) ++*skipped;
  }
  return -1;
}

std::vector<Neighbor> ShardedCloudServer::FilterOnReplica(
    std::size_t s, std::size_t r, const QueryToken& token, std::size_t k_prime,
    std::size_t ef_search) const {
  ApplyInjectedDelay(
      runtime_->delay_ms[runtime_->slot(s, r)].load(std::memory_order_acquire));
  const CloudServer& replica = replicas_[s][r];
  if (replica.index().size() == 0) return {};
  std::vector<Neighbor> local =
      replica.index().Search(token.sap.data(), k_prime, ef_search);
  for (Neighbor& nb : local) nb.id = local_to_global_[s][nb.id];
  return local;
}

SearchResult ShardedCloudServer::MergeAndRefine(
    const QueryToken& token, std::size_t k, const SearchSettings& settings,
    std::size_t k_prime, std::vector<std::vector<Neighbor>> per_shard) const {
  SearchResult result;

  // ---- Gather: merge to the global SAP-top-k' under the same
  // (distance, global id) order an unsharded filter phase produces. Each
  // shard's top-k' is complete for that shard, so the merged prefix equals
  // the unsharded candidate list whenever the backends are exact.
  std::vector<Neighbor> merged;
  for (const std::vector<Neighbor>& shard_candidates : per_shard) {
    merged.insert(merged.end(), shard_candidates.begin(),
                  shard_candidates.end());
  }
  std::sort(merged.begin(), merged.end());
  if (merged.size() > k_prime) merged.resize(k_prime);
  result.counters.filter_candidates = merged.size();

  if (!settings.refine) {
    const std::size_t out_k = std::min(k, merged.size());
    result.ids.reserve(out_k);
    for (std::size_t i = 0; i < out_k; ++i) result.ids.push_back(merged[i].id);
    return result;
  }

  // ---- Refine: one DCE ComparisonHeap over the merged budget, resolving
  // each global id to its shard's ciphertext through the manifest. Any live
  // replica serves the lookup (ciphertexts are identical across replicas);
  // the choice is pinned per shard up front so the comparison hot loop does
  // no health checks.
  std::vector<const CloudServer*> dce_source(replicas_.size());
  for (std::size_t s = 0; s < replicas_.size(); ++s) {
    const int r = FirstLiveReplica(s);
    dce_source[s] = r >= 0 ? &replicas_[s][r] : &replicas_[s].front();
  }

  Timer refine_timer;
  std::size_t* comparisons = &result.counters.dce_comparisons;
  ComparisonHeap heap(
      k, [this, &token, &dce_source, comparisons](VectorId a, VectorId b) {
        ++*comparisons;
        const ShardRef& ra = manifest_.at(a);
        const ShardRef& rb = manifest_.at(b);
        return DceScheme::Closer(
            dce_source[ra.shard]->dce_ciphertexts()[ra.local],
            dce_source[rb.shard]->dce_ciphertexts()[rb.local], token.trapdoor);
      });
  for (const Neighbor& cand : merged) {
    heap.Offer(cand.id);
  }
  result.ids = heap.ExtractSorted();
  result.counters.refine_seconds = refine_timer.ElapsedSeconds();
  return result;
}

SearchResult ShardedCloudServer::Search(const QueryToken& token, std::size_t k,
                                        const SearchSettings& settings) const {
  SearchResult result;
  if (k == 0 || size() == 0) return result;
  const std::size_t k_prime = ResolveKPrime(settings, k);

  // ---- Scatter (filter phase): every shard answers the full k'-ANNS over
  // its first live replica. Inside a batch worker the fan-out runs inline;
  // standalone calls parallelize across shards. The gather below is a
  // barrier — the synchronous path's tail latency is the slowest replica.
  Timer filter_timer;
  const std::size_t num_shards = replicas_.size();
  std::vector<std::vector<Neighbor>> per_shard(num_shards);
  std::vector<std::size_t> skipped(num_shards, 0);
  std::vector<char> shard_down(num_shards, 0);
  ThreadPool::Global().ParallelFor(
      num_shards, [&](std::size_t begin, std::size_t end) {
        for (std::size_t s = begin; s < end; ++s) {
          const int r = FirstLiveReplica(s, &skipped[s]);
          if (r < 0) {
            shard_down[s] = 1;
            continue;
          }
          per_shard[s] = FilterOnReplica(s, static_cast<std::size_t>(r), token,
                                         k_prime, settings.ef_search);
        }
      });
  const double filter_seconds = filter_timer.ElapsedSeconds();

  result = MergeAndRefine(token, k, settings, k_prime, std::move(per_shard));
  result.counters.filter_seconds = filter_seconds;
  for (std::size_t s = 0; s < num_shards; ++s) {
    result.counters.replicas_skipped += skipped[s];
    if (shard_down[s]) result.partial = true;
  }
  return result;
}

Result<SearchResult> ShardedCloudServer::SearchAsync(
    const QueryToken& token, std::size_t k, const SearchSettings& settings,
    const AsyncOptions& async) const {
  ThreadPool& pool = ThreadPool::Global();
  if (pool.InWorker()) {
    // Hedging needs free workers to run the hedge on; inside a pool worker
    // the scatter runs inline (ParallelFor's nested rule), which already
    // avoids the straggler wait across *queries* at the batch level.
    SearchResult result = Search(token, k, settings);
    if (result.partial && !async.allow_partial) {
      return Status::FailedPrecondition(
          "SearchAsync: a shard has no live replica and partial results are "
          "disabled");
    }
    return result;
  }

  SearchResult empty;
  if (k == 0 || size() == 0) return empty;
  const std::size_t k_prime = ResolveKPrime(settings, k);
  const std::size_t num_shards = replicas_.size();
  const std::size_t num_replicas = replication_factor();
  Runtime* const rt = runtime_.get();

  // Everything an abandoned work item may touch after this call returns
  // lives here, behind a shared_ptr: the token copy, the claim flags and the
  // answer slots. Work items additionally touch the CloudServers and the
  // local_to_global rows through stable heap pointers, guarded against
  // destruction by Runtime::inflight.
  struct ShardSlot {
    std::atomic<bool> claimed{false};
    std::vector<Neighbor> answer;  // written once by the claiming task
  };
  struct Coordinator {
    QueryToken token;
    std::mutex mu;
    std::condition_variable cv;
    std::size_t pending = 0;  // shards dispatched but not yet answered
    std::unique_ptr<ShardSlot[]> shards;
  };
  auto co = std::make_shared<Coordinator>();
  co->token = token;
  co->shards = std::make_unique<ShardSlot[]>(num_shards);

  SearchResult result;
  Timer filter_timer;

  // One (query, shard-replica) work item. An injected straggler delay is
  // served in 1 ms slices that *requeue the item* between slices instead of
  // blocking a worker: the pool stays responsive (healthy items and hedges
  // interleave even on a single-core pool), and a lost hedge race cancels
  // cleanly — a requeued loser observes the claim flag and exits without
  // searching. The item carries everything it touches by stable pointer or
  // shared_ptr, never `this`, because a loser can outlive SearchAsync (its
  // in-flight count is what the server destructor drains).
  struct WorkItem {
    std::shared_ptr<Coordinator> co;
    const CloudServer* replica;
    const std::vector<VectorId>* l2g;
    Runtime* rt;
    std::size_t s;
    int delay_remaining_ms;
    std::size_t k_prime;
    std::size_t ef_search;

    void operator()() {
      ShardSlot& slot = co->shards[s];
      if (slot.claimed.load(std::memory_order_acquire)) {
        rt->inflight.fetch_sub(1, std::memory_order_acq_rel);  // lost: cancel
        return;
      }
      if (delay_remaining_ms > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        WorkItem next = *this;
        --next.delay_remaining_ms;
        // The in-flight count transfers to the continuation.
        ThreadPool::Global().Submit(std::move(next));
        return;
      }
      std::vector<Neighbor> local;
      if (replica->index().size() > 0) {
        local =
            replica->index().Search(co->token.sap.data(), k_prime, ef_search);
        for (Neighbor& nb : local) nb.id = (*l2g)[nb.id];
      }
      if (!slot.claimed.exchange(true, std::memory_order_acq_rel)) {
        std::lock_guard<std::mutex> lock(co->mu);
        slot.answer = std::move(local);
        --co->pending;
        co->cv.notify_all();
      }
      rt->inflight.fetch_sub(1, std::memory_order_acq_rel);
    }
  };

  const auto dispatch = [&pool, co, rt, this, k_prime,
                         &settings](std::size_t s, std::size_t r) {
    rt->inflight.fetch_add(1, std::memory_order_acq_rel);
    pool.Submit(WorkItem{
        co, &replicas_[s][r], &local_to_global_[s], rt, s,
        rt->delay_ms[rt->slot(s, r)].load(std::memory_order_acquire), k_prime,
        settings.ef_search});
  };

  // ---- Initial scatter: one work item per shard on its first live replica.
  std::vector<std::size_t> next_replica(num_shards, 0);
  std::vector<char> shard_failed(num_shards, 0);
  std::vector<char> shard_pending(num_shards, 0);
  std::size_t live_shards = 0;
  {
    std::lock_guard<std::mutex> lock(co->mu);
    for (std::size_t s = 0; s < num_shards; ++s) {
      std::size_t skipped = 0;
      const int r = FirstLiveReplica(s, &skipped);
      result.counters.replicas_skipped += skipped;
      if (r < 0) {
        shard_failed[s] = 1;
        continue;
      }
      ++live_shards;
      ++co->pending;
      shard_pending[s] = 1;
      next_replica[s] = static_cast<std::size_t>(r) + 1;
    }
  }
  if (live_shards == 0) {
    return Status::FailedPrecondition(
        "SearchAsync: every replica of every shard is down");
  }
  for (std::size_t s = 0; s < num_shards; ++s) {
    if (shard_pending[s]) dispatch(s, next_replica[s] - 1);
  }

  // ---- Gather with hedging: wait in hedge_ms steps; at each missed
  // deadline, fan the unanswered shards out to their next live replica.
  {
    std::unique_lock<std::mutex> lock(co->mu);
    const auto start = std::chrono::steady_clock::now();
    std::size_t level = 1;
    const bool hedging = async.hedge_ms > 0.0;
    for (;;) {
      if (!hedging) {
        co->cv.wait(lock, [&co] { return co->pending == 0; });
        break;
      }
      const auto deadline =
          start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                      std::chrono::duration<double, std::milli>(
                          async.hedge_ms * static_cast<double>(level)));
      if (co->cv.wait_until(lock, deadline,
                            [&co] { return co->pending == 0; })) {
        break;
      }
      bool any_replica_left = false;
      for (std::size_t s = 0; s < num_shards; ++s) {
        if (!shard_pending[s] ||
            co->shards[s].claimed.load(std::memory_order_acquire)) {
          continue;
        }
        // Next live replica for this shard, if any remains to hedge onto.
        while (next_replica[s] < num_replicas &&
               replica_down(s, next_replica[s])) {
          ++next_replica[s];
          ++result.counters.replicas_skipped;
        }
        if (next_replica[s] >= num_replicas) continue;
        const std::size_t r = next_replica[s]++;
        ++result.counters.hedged_requests;
        any_replica_left = next_replica[s] < num_replicas || any_replica_left;
        dispatch(s, r);
      }
      ++level;
      if (!any_replica_left) {
        // Every remaining replica has been dispatched; nothing more to
        // escalate to — wait for the first of them to answer each shard.
        co->cv.wait(lock, [&co] { return co->pending == 0; });
        break;
      }
    }
  }
  const double filter_seconds = filter_timer.ElapsedSeconds();

  // ---- Collect. Loser tasks may still be running; they can no longer win
  // the claim, so the answers are stable (the claiming writes happened
  // before the final --pending we just observed under co->mu).
  std::vector<std::vector<Neighbor>> per_shard(num_shards);
  bool partial = false;
  for (std::size_t s = 0; s < num_shards; ++s) {
    if (shard_failed[s]) {
      partial = true;
      continue;
    }
    per_shard[s] = std::move(co->shards[s].answer);
  }
  if (partial && !async.allow_partial) {
    return Status::FailedPrecondition(
        "SearchAsync: a shard has no live replica and partial results are "
        "disabled");
  }

  const std::size_t hedges = result.counters.hedged_requests;
  const std::size_t skipped = result.counters.replicas_skipped;
  result = MergeAndRefine(token, k, settings, k_prime, std::move(per_shard));
  result.counters.filter_seconds = filter_seconds;
  result.counters.hedged_requests = hedges;
  result.counters.replicas_skipped = skipped;
  result.partial = partial;
  return result;
}

std::vector<SearchResult> ShardedCloudServer::SearchBatchScattered(
    std::span<const QueryToken> tokens, std::size_t k,
    const SearchSettings& settings) const {
  const std::size_t num_queries = tokens.size();
  const std::size_t num_shards = replicas_.size();
  std::vector<SearchResult> results(num_queries);
  if (num_queries == 0 || k == 0 || size() == 0) return results;
  const std::size_t k_prime = ResolveKPrime(settings, k);

  // Resolve the serving replica of every shard once per batch.
  std::vector<int> serving(num_shards, -1);
  std::size_t skipped = 0;
  bool partial = false;
  for (std::size_t s = 0; s < num_shards; ++s) {
    serving[s] = FirstLiveReplica(s, &skipped);
    if (serving[s] < 0) partial = true;
  }

  // ---- Phase 1: one flat fan-out over all Q*S (query, shard) work items.
  // Work item (q, s) is independent of every other, so a small batch still
  // spreads across every core instead of leaving (cores - Q) idle.
  std::vector<std::vector<std::vector<Neighbor>>> candidates(num_queries);
  for (auto& per_query : candidates) per_query.resize(num_shards);
  std::vector<double> item_seconds(num_queries * num_shards, 0.0);
  ThreadPool::Global().ParallelFor(
      num_queries * num_shards, [&](std::size_t begin, std::size_t end) {
        for (std::size_t item = begin; item < end; ++item) {
          const std::size_t q = item / num_shards;
          const std::size_t s = item % num_shards;
          if (serving[s] < 0) continue;
          Timer item_timer;
          candidates[q][s] =
              FilterOnReplica(s, static_cast<std::size_t>(serving[s]),
                              tokens[q], k_prime, settings.ef_search);
          item_seconds[item] = item_timer.ElapsedSeconds();
        }
      });

  // ---- Phase 2: per-query merge + refine, fanned across queries.
  ThreadPool::Global().ParallelFor(
      num_queries, [&](std::size_t begin, std::size_t end) {
        for (std::size_t q = begin; q < end; ++q) {
          results[q] = MergeAndRefine(tokens[q], k, settings, k_prime,
                                      std::move(candidates[q]));
          double filter_seconds = 0.0;
          for (std::size_t s = 0; s < num_shards; ++s) {
            filter_seconds += item_seconds[q * num_shards + s];
          }
          results[q].counters.filter_seconds = filter_seconds;
          results[q].counters.replicas_skipped = skipped;
          results[q].partial = partial;
        }
      });
  return results;
}

VectorId ShardedCloudServer::Insert(const EncryptedVector& v) {
  // Abandoned hedge losers may still be reading the indexes and the
  // local-to-global rows this mutation is about to touch; they cancel fast
  // (claim flag), so wait them out before mutating.
  DrainAsyncWork();
  // Least-loaded routing by live count; ties go to the lowest shard id so
  // routing is deterministic.
  std::size_t target = 0;
  for (std::size_t s = 1; s < replicas_.size(); ++s) {
    if (replicas_[s].front().size() < replicas_[target].front().size()) {
      target = s;
    }
  }
  // Every replica of the target shard applies the insert, so replicas stay
  // identical and any of them can serve or fail over afterwards.
  const VectorId local = replicas_[target].front().Insert(v);
  for (std::size_t r = 1; r < replicas_[target].size(); ++r) {
    const VectorId replica_local = replicas_[target][r].Insert(v);
    PPANNS_CHECK(replica_local == local);
  }
  const VectorId global_id =
      manifest_.Append(static_cast<ShardId>(target), local);
  PPANNS_CHECK(local == local_to_global_[target].size());
  local_to_global_[target].push_back(global_id);
  return global_id;
}

Status ShardedCloudServer::Delete(VectorId global_id) {
  DrainAsyncWork();  // see Insert
  if (global_id >= manifest_.size()) {
    return Status::InvalidArgument("Delete: global id " +
                                   std::to_string(global_id) +
                                   " was never assigned");
  }
  const ShardRef& ref = manifest_.at(global_id);
  Status st = replicas_[ref.shard].front().Delete(ref.local);
  if (st.ok()) {
    // Replicas mirror the primary exactly, so the tombstone must land on
    // every one of them.
    for (std::size_t r = 1; r < replicas_[ref.shard].size(); ++r) {
      PPANNS_CHECK(replicas_[ref.shard][r].Delete(ref.local).ok());
    }
    return st;
  }
  // The per-shard status names the local id, which the caller never saw;
  // restate it in global terms.
  const std::string where = "Delete: global id " + std::to_string(global_id) +
                            " (shard " + std::to_string(ref.shard) +
                            ", local " + std::to_string(ref.local) + "): ";
  switch (st.code()) {
    case Status::Code::kNotFound:
      return Status::NotFound(where + st.message());
    case Status::Code::kInvalidArgument:
      return Status::InvalidArgument(where + st.message());
    default:
      return st;
  }
}

std::size_t ShardedCloudServer::size() const {
  std::size_t total = 0;
  for (const std::vector<CloudServer>& group : replicas_) {
    total += group.front().size();
  }
  return total;
}

std::size_t ShardedCloudServer::StorageBytes() const {
  std::size_t total = manifest_.size() * sizeof(ShardRef);
  for (const std::vector<CloudServer>& group : replicas_) {
    for (const CloudServer& replica : group) total += replica.StorageBytes();
  }
  return total;
}

void ShardedCloudServer::SerializeDatabase(BinaryWriter* out) const {
  ShardedEncryptedDatabase::WriteEnvelopeHeader(
      out, static_cast<std::uint32_t>(replicas_.size()),
      static_cast<std::uint32_t>(replication_factor()));
  for (const std::vector<CloudServer>& group : replicas_) {
    for (const CloudServer& replica : group) replica.SerializeDatabase(out);
  }
  manifest_.Serialize(out);
}

}  // namespace ppanns
