#include "core/sharded_cloud_server.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <limits>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>

#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/comparison_heap.h"
#include "core/query_client.h"

namespace ppanns {

// The epoch-swapped serving state. A ShardSet owns (through shared
// ShardGroups) everything a query touches: replica CloudServers, the
// local-to-global rows, the transports and the per-replica health/load
// cells. Searches pin the set once and read only it; compaction/split build
// a NEW set that shares every untouched group by shared_ptr and swap it in,
// so an in-flight query — including an abandoned hedge loser — keeps its
// graph alive through the pin until it finishes.
struct ShardedCloudServer::ShardSet {
  /// Per-replica health, fault-injection and load cells. Atomic so every
  /// search path reads them lock-free; grouped per shard so a compaction
  /// replaces exactly one shard's cells (down/delay/request values carry
  /// over; in-flight resets — old dispatches drain against the old group).
  struct ReplicaState {
    std::atomic<bool> down{false};
    std::atomic<int> delay_ms{0};
    /// Outstanding filter dispatches (queued + executing, plus any
    /// AddReplicaLoad bias) — what the load-aware dispatcher minimizes.
    std::atomic<int> inflight{0};
    /// Filter scans actually started (observability).
    std::atomic<std::size_t> requests{0};
  };

  /// One shard: its replicas, its local-id translation row, its transports
  /// and its per-replica state. Self-contained — the transports point only
  /// at objects inside the same group — so sets can share groups and a
  /// compaction allocates exactly one new group.
  struct ShardGroup {
    std::vector<CloudServer> replicas;      ///< empty when remote
    std::vector<VectorId> local_to_global;  ///< empty when remote
    std::unique_ptr<ReplicaState[]> state;  ///< [num_replicas]
    std::vector<std::unique_ptr<ShardTransport>> transports;
    /// Times this shard has been structurally rebuilt.
    std::uint64_t compaction_epoch = 0;
  };

  std::vector<std::shared_ptr<ShardGroup>> groups;
  ShardManifest manifest;
  /// Monotonic count of structural maintenance ops; 0 = never compacted.
  std::uint64_t state_version = 0;
  std::size_t num_replicas = 1;
};

// Global counters that survive swaps at a stable heap address: async work
// items outlive SearchAsync (hedge losers may still be draining when the
// winner returned) and may even outlive a move of the server object, so
// they capture Runtime* — stable — never `this`.
struct ShardedCloudServer::Runtime {
  /// Async work items still on the pool (including abandoned hedge losers);
  /// the destructor drains this before the shards are released.
  std::atomic<std::size_t> inflight{0};
  /// Lifetime totals of hedge work that lost the claim race: nodes the
  /// losers scored before aborting, and how many losing scans there were.
  /// The mid-scan-abort win is this counter staying near zero.
  std::atomic<std::size_t> cancelled_nodes{0};
  std::atomic<std::size_t> cancelled_scans{0};
};

// The maintenance seam: one mutex serializes every mutation (Insert,
// Delete, compaction, split, serialization snapshots) against the others —
// searches never take it — plus the background worker.
struct ShardedCloudServer::Maintenance {
  std::mutex mu;
  MaintenanceOptions options;  // guarded by mu
  std::thread worker;
  std::atomic<bool> stop{false};
};

namespace {

using ReplicaState = ShardedCloudServer::ShardSet::ReplicaState;
using ShardGroup = ShardedCloudServer::ShardSet::ShardGroup;

/// Simulated straggler: the injected latency of a filter work item, served
/// in 1 ms slices so a cancelled item (lost hedge, expired deadline) wakes
/// out of it at the next slice instead of sleeping uselessly to the end.
void InterruptibleDelay(int delay_ms, SearchContext* ctx) {
  for (int slice = 0; slice < delay_ms; ++slice) {
    if (ctx != nullptr && ctx->ShouldStop(ctx->stats.nodes_visited)) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

/// The in-process ShardTransport: one replica behind a function call. Holds
/// pointers only into its own ShardGroup — a dispatch that outlives a
/// compaction swap keeps the group alive through the coordinator's pinned
/// ShardSet, so these never dangle.
class LocalShardTransport final : public ShardTransport {
 public:
  LocalShardTransport(const CloudServer* replica,
                      const std::vector<VectorId>* local_to_global,
                      const std::atomic<int>* delay_ms)
      : replica_(replica),
        local_to_global_(local_to_global),
        delay_ms_(delay_ms) {}

  Status Filter(const QueryToken& token, const ShardFilterOptions& options,
                SearchContext* ctx, ShardFilterResult* out) const override {
    InterruptibleDelay(delay_ms_->load(std::memory_order_acquire), ctx);
    if (replica_->index().size() == 0 ||
        (ctx != nullptr && ctx->ShouldStop(ctx->stats.nodes_visited))) {
      return Status::OK();  // cancelled/empty before any scan work
    }
    out->scanned = true;
    out->candidates = replica_->index().Search(
        token.sap.data(), options.k_prime, options.ef_search, ctx);
    for (Neighbor& nb : out->candidates) {
      nb.id = (*local_to_global_)[nb.id];
    }
    // want_dce is ignored: a local gather reads ciphertexts in place
    // (FilterShard attaches them for the RPC server path).
    return Status::OK();
  }

  bool remote() const override { return false; }

 private:
  const CloudServer* replica_;
  const std::vector<VectorId>* local_to_global_;
  const std::atomic<int>* delay_ms_;
};

/// Allocates a group's state cells and in-process transports once its
/// replicas and local_to_global vector objects exist (the transports hold
/// the vector's address, so the rows may still be filled afterwards).
void WireLocalGroup(ShardGroup* group, std::size_t num_replicas) {
  group->state = std::make_unique<ReplicaState[]>(num_replicas);
  group->transports.reserve(num_replicas);
  for (std::size_t r = 0; r < num_replicas; ++r) {
    group->transports.push_back(std::make_unique<LocalShardTransport>(
        &group->replicas[r], &group->local_to_global,
        &group->state[r].delay_ms));
  }
}

/// A fresh compacted shard: the live rows of `old_index` (in local-id
/// order, so rank = new local id) rebuilt into an empty index of the same
/// kind and parameters, plus the matching compacted DCE array.
EncryptedDatabase BuildCompactedShard(const SecureFilterIndex& old_index,
                                      const std::vector<DceCiphertext>& old_dce,
                                      std::span<const VectorId> live,
                                      std::size_t build_threads) {
  FloatMatrix sap(live.size(), old_index.dim());
  for (std::size_t i = 0; i < live.size(); ++i) {
    std::memcpy(sap.row(i), old_index.data().row(live[i]),
                old_index.dim() * sizeof(float));
  }
  EncryptedDatabase db;
  db.index = old_index.MakeEmptyLike();
  db.index->BuildParallel(sap, &ThreadPool::Global(),
                          std::max<std::size_t>(build_threads, 1));
  db.dce.reserve(live.size());
  for (VectorId l : live) db.dce.push_back(old_dce[l]);
  return db;
}

/// R replicas of one freshly built shard, byte-identical by construction:
/// the primary serializes once and the others deserialize that image —
/// cheaper than re-running the (deterministic) build R times, and exactly
/// how an owner-built package stamps its replicas.
std::vector<CloudServer> ReplicateShard(EncryptedDatabase primary,
                                        std::size_t num_replicas) {
  std::vector<CloudServer> replicas;
  replicas.reserve(num_replicas);
  BinaryWriter image;
  if (num_replicas > 1) primary.Serialize(&image);
  replicas.emplace_back(std::move(primary));
  for (std::size_t r = 1; r < num_replicas; ++r) {
    BinaryReader in(image.buffer());
    Result<EncryptedDatabase> copy = EncryptedDatabase::Deserialize(&in);
    PPANNS_CHECK(copy.ok());
    replicas.emplace_back(std::move(*copy));
  }
  return replicas;
}

/// Carries the admin-visible replica flags (down, injected delay, request
/// totals) from a replaced group onto its rebuilt successor. In-flight
/// counts reset: outstanding dispatches decrement the OLD group's cells, so
/// copying them would leave phantom load steering the dispatcher forever.
void CarryReplicaState(const ShardGroup& from, ShardGroup* to,
                       std::size_t num_replicas) {
  for (std::size_t r = 0; r < num_replicas; ++r) {
    to->state[r].down.store(from.state[r].down.load(std::memory_order_acquire),
                            std::memory_order_release);
    to->state[r].delay_ms.store(
        from.state[r].delay_ms.load(std::memory_order_acquire),
        std::memory_order_release);
    to->state[r].requests.store(
        from.state[r].requests.load(std::memory_order_acquire),
        std::memory_order_release);
  }
}

/// Live local ids of a shard's primary index, ascending — the rank order a
/// compaction assigns new local ids in.
std::vector<VectorId> LiveLocals(const SecureFilterIndex& index) {
  std::vector<VectorId> live;
  live.reserve(index.size());
  for (std::size_t l = 0; l < index.capacity(); ++l) {
    if (!index.IsDeleted(static_cast<VectorId>(l))) {
      live.push_back(static_cast<VectorId>(l));
    }
  }
  return live;
}

}  // namespace

ShardedCloudServer::ShardedCloudServer(ShardedEncryptedDatabase db)
    : runtime_(std::make_unique<Runtime>()),
      maintenance_(std::make_unique<Maintenance>()) {
  PPANNS_CHECK(!db.shards.empty());
  const std::size_t num_replicas = db.shards.front().size();
  PPANNS_CHECK(num_replicas >= 1);

  auto set = std::make_shared<ShardSet>();
  set->num_replicas = num_replicas;
  set->manifest = std::move(db.manifest);
  set->state_version = db.state_version;

  std::vector<std::size_t> capacities;
  capacities.reserve(db.shards.size());
  set->groups.reserve(db.shards.size());
  for (std::size_t s = 0; s < db.shards.size(); ++s) {
    // Uniform replica groups whose members agree on the local id space —
    // Deserialize enforces this on load, owner builds satisfy it by
    // construction.
    PPANNS_CHECK(db.shards[s].size() == num_replicas);
    auto group = std::make_shared<ShardGroup>();
    group->replicas.reserve(num_replicas);
    for (EncryptedDatabase& replica : db.shards[s]) {
      if (!group->replicas.empty()) {
        PPANNS_CHECK(replica.index->capacity() ==
                     group->replicas.front().index().capacity());
      }
      group->replicas.emplace_back(std::move(replica));
    }
    capacities.push_back(group->replicas.front().index().capacity());
    group->compaction_epoch =
        s < db.compaction_epochs.size() ? db.compaction_epochs[s] : 0;
    group->local_to_global.resize(capacities[s], kInvalidVectorId);
    WireLocalGroup(group.get(), num_replicas);
    set->groups.push_back(std::move(group));
  }
  // Owner-built packages are consistent by construction and Deserialize
  // revalidates on load; an inconsistent manifest here is a programmer error.
  PPANNS_CHECK(set->manifest.Validate(capacities).ok());
  for (std::size_t g = 0; g < set->manifest.size(); ++g) {
    const ShardRef& ref = set->manifest.at(static_cast<VectorId>(g));
    if (IsDeadRef(ref)) continue;  // compacted-away id: no slot
    set->groups[ref.shard]->local_to_global[ref.local] =
        static_cast<VectorId>(g);
  }

  set_ = std::make_unique<EpochPtr<ShardSet>>(std::move(set));
}

ShardedCloudServer::ShardedCloudServer(
    const RemoteTopology& topology,
    std::vector<std::vector<std::unique_ptr<ShardTransport>>> transports)
    : topology_(topology),
      remote_(true),
      runtime_(std::make_unique<Runtime>()),
      maintenance_(std::make_unique<Maintenance>()) {
  PPANNS_CHECK(!transports.empty());
  PPANNS_CHECK(transports.size() == topology.num_shards);
  auto set = std::make_shared<ShardSet>();
  set->num_replicas = topology.num_replicas;
  set->groups.reserve(transports.size());
  for (auto& group_transports : transports) {
    PPANNS_CHECK(group_transports.size() == topology.num_replicas);
    for (const auto& transport : group_transports) {
      PPANNS_CHECK(transport != nullptr);
    }
    auto group = std::make_shared<ShardGroup>();
    group->state = std::make_unique<ReplicaState[]>(topology.num_replicas);
    group->transports = std::move(group_transports);
    set->groups.push_back(std::move(group));
  }
  set_ = std::make_unique<EpochPtr<ShardSet>>(std::move(set));
}

// Out of line: ShardSet/Runtime/Maintenance are incomplete in the header.
ShardedCloudServer::ShardedCloudServer(ShardedCloudServer&&) noexcept = default;

ShardedCloudServer& ShardedCloudServer::operator=(
    ShardedCloudServer&& other) noexcept {
  if (this != &other) {
    // Our background worker captures `this`; it must die before the state it
    // polls. The shards and runtime about to be released may still be read
    // by abandoned async work items; wait them out like the destructor does.
    StopMaintenance();
    DrainAsyncWork();
    set_ = std::move(other.set_);
    topology_ = other.topology_;
    remote_ = other.remote_;
    runtime_ = std::move(other.runtime_);
    maintenance_ = std::move(other.maintenance_);
    mutation_transports_ = std::move(other.mutation_transports_);
    remote_epoch_ = std::move(other.remote_epoch_);
  }
  return *this;
}

void ShardedCloudServer::AttachMutationTransports(
    std::vector<std::unique_ptr<MutationTransport>> transports) {
  PPANNS_CHECK(remote_);
  for (const auto& transport : transports) PPANNS_CHECK(transport != nullptr);
  std::lock_guard<std::mutex> lock(maintenance_->mu);
  mutation_transports_ = std::move(transports);
}

void ShardedCloudServer::AttachRemoteEpochFence(
    std::shared_ptr<std::atomic<std::uint64_t>> fence) {
  PPANNS_CHECK(remote_);
  std::lock_guard<std::mutex> lock(maintenance_->mu);
  remote_epoch_ = std::move(fence);
}

Result<MutationOutcome> ShardedCloudServer::BroadcastMutation(
    const char* what,
    const std::function<Result<MutationOutcome>(MutationTransport&)>& apply) {
  // Serialized against concurrent remote mutations by the same mutex the
  // local path uses; searches never take it.
  std::lock_guard<std::mutex> lock(maintenance_->mu);
  if (mutation_transports_.empty()) {
    return Status::NotSupported(
        std::string(what) +
        ": this gather node serves remote shards without a mutation path; "
        "attach mutation transports (ConnectCluster) or apply maintenance on "
        "the shard servers' own database");
  }
  // Broadcast to every endpoint — each holds the full package, so agreement
  // on the post-apply observables is what keeps them byte-identical.
  std::vector<MutationOutcome> outcomes;
  outcomes.reserve(mutation_transports_.size());
  for (const auto& transport : mutation_transports_) {
    auto outcome = apply(*transport);
    if (!outcome.ok()) {
      // The command never reached this endpoint. Earlier endpoints may have
      // applied it already — surface that, it is the operator's cue to
      // restore the endpoint (the re-dialing pool will) and re-converge.
      return Status::IOError(
          std::string(what) + ": endpoint " + transport->endpoint() +
          " unreachable after " + std::to_string(outcomes.size()) + " of " +
          std::to_string(mutation_transports_.size()) +
          " endpoints already applied: " + outcome.status().ToString());
    }
    outcomes.push_back(std::move(*outcome));
  }
  const MutationOutcome& first = outcomes.front();
  for (std::size_t i = 1; i < outcomes.size(); ++i) {
    const MutationOutcome& other = outcomes[i];
    if (other.status.code() != first.status.code() || other.id != first.id ||
        other.state_version != first.state_version ||
        other.size != first.size) {
      return Status::FailedPrecondition(
          std::string(what) + ": endpoints diverged — " +
          mutation_transports_.front()->endpoint() + " reports (id " +
          std::to_string(first.id) + ", state_version " +
          std::to_string(first.state_version) + ", size " +
          std::to_string(first.size) + "), " +
          mutation_transports_[i]->endpoint() + " reports (id " +
          std::to_string(other.id) + ", state_version " +
          std::to_string(other.state_version) + ", size " +
          std::to_string(other.size) + ")");
    }
  }
  if (remote_epoch_ != nullptr) {
    // Fold the agreed post-apply epoch into the cluster fence (monotonic
    // max) so the gather's cache invalidation epoch advances with it.
    std::uint64_t cur = remote_epoch_->load(std::memory_order_acquire);
    while (first.state_version > cur &&
           !remote_epoch_->compare_exchange_weak(cur, first.state_version,
                                                 std::memory_order_acq_rel)) {
    }
  }
  // The agreed post-apply size refreshes the handshake-time snapshot, so
  // size() on the gather tracks the cluster across mutations (still under
  // maintenance_->mu — callers sequence reads against their own mutations,
  // the same contract as the local path).
  topology_.size = static_cast<std::size_t>(first.size);
  return first;
}

ShardedCloudServer::~ShardedCloudServer() {
  StopMaintenance();
  DrainAsyncWork();
}

void ShardedCloudServer::DrainAsyncWork() const {
  if (runtime_ == nullptr) return;  // moved-from
  while (runtime_->inflight.load(std::memory_order_acquire) != 0) {
    std::this_thread::yield();
  }
}

// ---- Maintenance ------------------------------------------------------------

Status ShardedCloudServer::CompactShardLocked(std::size_t s,
                                              std::size_t build_threads) {
  const std::shared_ptr<ShardSet> cur = set_->Current();
  if (s >= cur->groups.size()) {
    return Status::InvalidArgument("CompactShard: shard " + std::to_string(s) +
                                   " is outside the " +
                                   std::to_string(cur->groups.size()) +
                                   "-shard topology");
  }
  const ShardGroup& old_group = *cur->groups[s];
  const CloudServer& primary = old_group.replicas.front();
  const std::vector<VectorId> live = LiveLocals(primary.index());

  // The expensive part — gathering rows and rebuilding the index — reads
  // the old group const while searches keep serving it. Nothing is
  // published until the single Swap below.
  auto group = std::make_shared<ShardGroup>();
  group->replicas = ReplicateShard(
      BuildCompactedShard(primary.index(), primary.dce_ciphertexts(), live,
                          build_threads),
      cur->num_replicas);
  group->compaction_epoch = old_group.compaction_epoch + 1;
  group->local_to_global.resize(live.size(), kInvalidVectorId);
  WireLocalGroup(group.get(), cur->num_replicas);
  CarryReplicaState(old_group, group.get(), cur->num_replicas);

  auto next = std::make_shared<ShardSet>();
  next->num_replicas = cur->num_replicas;
  next->state_version = cur->state_version + 1;
  next->groups = cur->groups;  // every other shard is shared, not copied
  next->manifest = cur->manifest;
  for (std::size_t i = 0; i < live.size(); ++i) {
    const VectorId g = old_group.local_to_global[live[i]];
    group->local_to_global[i] = g;
    next->manifest.entries[g] =
        ShardRef{static_cast<ShardId>(s), static_cast<VectorId>(i)};
  }
  // Tombstoned slots are physically gone: their global ids become dead refs
  // (forever — ids are never reused), so Delete reports NotFound and a
  // reloaded package validates.
  for (std::size_t l = 0; l < old_group.local_to_global.size(); ++l) {
    if (!primary.index().IsDeleted(static_cast<VectorId>(l))) continue;
    const VectorId g = old_group.local_to_global[l];
    if (g != kInvalidVectorId) next->manifest.entries[g] = kDeadShardRef;
  }
  next->groups[s] = std::move(group);

  set_->Swap(std::move(next));
  return Status::OK();
}

Status ShardedCloudServer::SplitShardLocked(std::size_t s,
                                            std::size_t build_threads) {
  const std::shared_ptr<ShardSet> cur = set_->Current();
  if (s >= cur->groups.size()) {
    return Status::InvalidArgument("SplitShard: shard " + std::to_string(s) +
                                   " is outside the " +
                                   std::to_string(cur->groups.size()) +
                                   "-shard topology");
  }
  const ShardGroup& old_group = *cur->groups[s];
  const CloudServer& primary = old_group.replicas.front();
  const std::vector<VectorId> live = LiveLocals(primary.index());
  if (live.size() < 2) {
    return Status::FailedPrecondition("SplitShard: shard " +
                                      std::to_string(s) + " has " +
                                      std::to_string(live.size()) +
                                      " live vectors; nothing to split");
  }

  // Deterministic split by live rank: the first ceil(n/2) stay on shard s,
  // the rest move to a new shard appended at the end. Both halves are built
  // compacted, so the split doubles as a compaction of s.
  const std::size_t keep = (live.size() + 1) / 2;
  const std::span<const VectorId> keep_live(live.data(), keep);
  const std::span<const VectorId> move_live(live.data() + keep,
                                            live.size() - keep);
  const ShardId new_shard = static_cast<ShardId>(cur->groups.size());

  auto build_half = [&](std::span<const VectorId> half) {
    auto group = std::make_shared<ShardGroup>();
    group->replicas = ReplicateShard(
        BuildCompactedShard(primary.index(), primary.dce_ciphertexts(), half,
                            build_threads),
        cur->num_replicas);
    group->compaction_epoch = old_group.compaction_epoch + 1;
    group->local_to_global.resize(half.size(), kInvalidVectorId);
    WireLocalGroup(group.get(), cur->num_replicas);
    return group;
  };
  auto group_a = build_half(keep_live);
  auto group_b = build_half(move_live);
  // The surviving shard id keeps its admin flags; the new shard starts with
  // clean state (it did not exist when the flags were set).
  CarryReplicaState(old_group, group_a.get(), cur->num_replicas);

  auto next = std::make_shared<ShardSet>();
  next->num_replicas = cur->num_replicas;
  next->state_version = cur->state_version + 1;
  next->groups = cur->groups;
  next->manifest = cur->manifest;
  for (std::size_t i = 0; i < keep_live.size(); ++i) {
    const VectorId g = old_group.local_to_global[keep_live[i]];
    group_a->local_to_global[i] = g;
    next->manifest.entries[g] =
        ShardRef{static_cast<ShardId>(s), static_cast<VectorId>(i)};
  }
  for (std::size_t i = 0; i < move_live.size(); ++i) {
    const VectorId g = old_group.local_to_global[move_live[i]];
    group_b->local_to_global[i] = g;
    next->manifest.entries[g] = ShardRef{new_shard, static_cast<VectorId>(i)};
  }
  for (std::size_t l = 0; l < old_group.local_to_global.size(); ++l) {
    if (!primary.index().IsDeleted(static_cast<VectorId>(l))) continue;
    const VectorId g = old_group.local_to_global[l];
    if (g != kInvalidVectorId) next->manifest.entries[g] = kDeadShardRef;
  }
  next->groups[s] = std::move(group_a);
  next->groups.push_back(std::move(group_b));

  set_->Swap(std::move(next));
  return Status::OK();
}

Status ShardedCloudServer::CompactShard(std::size_t s) {
  if (remote_) {
    MaintenanceCommand cmd;
    cmd.op = MaintenanceCommand::Op::kCompactShard;
    cmd.shard = static_cast<std::uint32_t>(s);
    auto outcome = BroadcastMutation(
        "CompactShard",
        [&cmd](MutationTransport& t) { return t.Maintain(cmd); });
    if (!outcome.ok()) return outcome.status();
    return outcome->status;
  }
  std::lock_guard<std::mutex> lock(maintenance_->mu);
  return CompactShardLocked(s, maintenance_->options.build_threads);
}

Status ShardedCloudServer::SplitShard(std::size_t s) {
  if (remote_) {
    MaintenanceCommand cmd;
    cmd.op = MaintenanceCommand::Op::kSplitShard;
    cmd.shard = static_cast<std::uint32_t>(s);
    auto outcome = BroadcastMutation(
        "SplitShard",
        [&cmd](MutationTransport& t) { return t.Maintain(cmd); });
    if (!outcome.ok()) return outcome.status();
    return outcome->status;
  }
  std::lock_guard<std::mutex> lock(maintenance_->mu);
  return SplitShardLocked(s, maintenance_->options.build_threads);
}

Result<std::size_t> ShardedCloudServer::MaybeCompact(
    const MaintenanceOptions& options) {
  if (remote_) {
    MaintenanceCommand cmd;
    cmd.op = MaintenanceCommand::Op::kSweep;
    cmd.compact_threshold = options.compact_threshold;
    cmd.split_skew = options.split_skew;
    cmd.min_split_size = options.min_split_size;
    cmd.build_threads = options.build_threads;
    auto outcome = BroadcastMutation(
        "MaybeCompact",
        [&cmd](MutationTransport& t) { return t.Maintain(cmd); });
    if (!outcome.ok()) return outcome.status();
    PPANNS_RETURN_IF_ERROR(outcome->status);
    return static_cast<std::size_t>(outcome->ops);
  }
  std::lock_guard<std::mutex> lock(maintenance_->mu);
  std::size_t ops = 0;

  // Compaction pass: sweep the shard list once; each CompactShardLocked
  // swaps a fresh set, so re-read the current one per decision.
  const std::size_t shard_count = set_->Current()->groups.size();
  for (std::size_t s = 0; s < shard_count; ++s) {
    const std::shared_ptr<ShardSet> cur = set_->Current();
    const SecureFilterIndex& index = cur->groups[s]->replicas.front().index();
    if (index.capacity() == 0) continue;
    const std::size_t dead = index.capacity() - index.size();
    if (dead == 0) continue;
    const double ratio =
        static_cast<double>(dead) / static_cast<double>(index.capacity());
    if (ratio <= options.compact_threshold) continue;
    if (CompactShardLocked(s, options.build_threads).ok()) ++ops;
  }

  // Split pass: one split per sweep keeps the background worker's swaps
  // paced (the next sweep re-evaluates the new topology).
  if (options.split_skew > 0.0) {
    const std::shared_ptr<ShardSet> cur = set_->Current();
    std::size_t total = 0, heaviest = 0, heaviest_size = 0;
    for (std::size_t s = 0; s < cur->groups.size(); ++s) {
      const std::size_t live = cur->groups[s]->replicas.front().size();
      total += live;
      if (live > heaviest_size) {
        heaviest_size = live;
        heaviest = s;
      }
    }
    const double mean =
        static_cast<double>(total) / static_cast<double>(cur->groups.size());
    if (heaviest_size >= options.min_split_size &&
        static_cast<double>(heaviest_size) > options.split_skew * mean) {
      if (SplitShardLocked(heaviest, options.build_threads).ok()) ++ops;
    }
  }
  return ops;
}

void ShardedCloudServer::StartMaintenance(const MaintenanceOptions& options) {
  PPANNS_CHECK(!remote_);
  StopMaintenance();  // at most one worker
  {
    std::lock_guard<std::mutex> lock(maintenance_->mu);
    maintenance_->options = options;
  }
  maintenance_->stop.store(false, std::memory_order_release);
  Maintenance* const m = maintenance_.get();
  maintenance_->worker = std::thread([this, m, options] {
    while (!m->stop.load(std::memory_order_acquire)) {
      MaybeCompact(options);
      // Sleep the poll interval in 1 ms slices so StopMaintenance returns
      // promptly.
      for (int slice = 0; slice < std::max(options.poll_ms, 1); ++slice) {
        if (m->stop.load(std::memory_order_acquire)) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
  });
}

void ShardedCloudServer::StopMaintenance() {
  if (maintenance_ == nullptr) return;  // moved-from
  maintenance_->stop.store(true, std::memory_order_release);
  if (maintenance_->worker.joinable()) maintenance_->worker.join();
}

double ShardedCloudServer::tombstone_ratio(std::size_t s) const {
  PPANNS_CHECK(!remote_);
  const std::shared_ptr<const ShardSet> set = set_->Pin();
  const SecureFilterIndex& index = set->groups[s]->replicas.front().index();
  if (index.capacity() == 0) return 0.0;
  return static_cast<double>(index.capacity() - index.size()) /
         static_cast<double>(index.capacity());
}

std::uint64_t ShardedCloudServer::last_compaction_epoch(std::size_t s) const {
  PPANNS_CHECK(!remote_);
  return set_->Pin()->groups[s]->compaction_epoch;
}

std::uint64_t ShardedCloudServer::state_version() const {
  if (remote_) {
    // The epoch fence: the max post-apply state_version any mutation
    // response or health ping has reported. 0 before a fence is attached.
    return remote_epoch_ != nullptr
               ? remote_epoch_->load(std::memory_order_acquire)
               : 0;
  }
  return set_->Pin()->state_version;
}

// ---- Accessors --------------------------------------------------------------

std::size_t ShardedCloudServer::size() const {
  if (remote_) return topology_.size;
  const std::shared_ptr<const ShardSet> set = set_->Pin();
  std::size_t total = 0;
  for (const auto& group : set->groups) total += group->replicas.front().size();
  return total;
}

std::size_t ShardedCloudServer::capacity() const {
  if (remote_) return topology_.capacity;
  return set_->Pin()->manifest.size();
}

std::size_t ShardedCloudServer::dim() const {
  if (remote_) return topology_.dim;
  return set_->Pin()->groups.front()->replicas.front().index().dim();
}

IndexKind ShardedCloudServer::index_kind() const {
  if (remote_) return topology_.index_kind;
  return set_->Pin()->groups.front()->replicas.front().index().kind();
}

std::size_t ShardedCloudServer::num_shards() const {
  return set_->Pin()->groups.size();
}

std::size_t ShardedCloudServer::replication_factor() const {
  return set_->Pin()->num_replicas;
}

const CloudServer& ShardedCloudServer::shard(std::size_t s) const {
  PPANNS_CHECK(!remote_);
  return set_->Pin()->groups[s]->replicas.front();
}

const CloudServer& ShardedCloudServer::replica(std::size_t s,
                                               std::size_t r) const {
  PPANNS_CHECK(!remote_);
  return set_->Pin()->groups[s]->replicas[r];
}

const ShardManifest& ShardedCloudServer::manifest() const {
  return set_->Pin()->manifest;
}

// ---- Replica health / load surface ------------------------------------------

void ShardedCloudServer::SetReplicaDown(std::size_t s, std::size_t r,
                                        bool down) {
  set_->Pin()->groups[s]->state[r].down.store(down, std::memory_order_release);
}

bool ShardedCloudServer::ReplicaDown(const ShardSet& set, std::size_t s,
                                     std::size_t r) {
  return set.groups[s]->state[r].down.load(std::memory_order_acquire) ||
         !set.groups[s]->transports[r]->Healthy();
}

bool ShardedCloudServer::replica_down(std::size_t s, std::size_t r) const {
  return ReplicaDown(*set_->Pin(), s, r);
}

void ShardedCloudServer::SetReplicaDelayMs(std::size_t s, std::size_t r,
                                           int delay_ms) {
  set_->Pin()->groups[s]->state[r].delay_ms.store(delay_ms,
                                                  std::memory_order_release);
}

void ShardedCloudServer::AddReplicaLoad(std::size_t s, std::size_t r,
                                        int delta) {
  set_->Pin()->groups[s]->state[r].inflight.fetch_add(
      delta, std::memory_order_acq_rel);
}

int ShardedCloudServer::replica_inflight(std::size_t s, std::size_t r) const {
  return set_->Pin()->groups[s]->state[r].inflight.load(
      std::memory_order_acquire);
}

std::size_t ShardedCloudServer::replica_requests(std::size_t s,
                                                 std::size_t r) const {
  return set_->Pin()->groups[s]->state[r].requests.load(
      std::memory_order_acquire);
}

std::size_t ShardedCloudServer::CancelledWorkNodes() const {
  DrainAsyncWork();
  return runtime_->cancelled_nodes.load(std::memory_order_acquire);
}

std::size_t ShardedCloudServer::CancelledScans() const {
  DrainAsyncWork();
  return runtime_->cancelled_scans.load(std::memory_order_acquire);
}

std::size_t ShardedCloudServer::live_replicas(std::size_t s) const {
  const std::shared_ptr<const ShardSet> set = set_->Pin();
  std::size_t live = 0;
  for (std::size_t r = 0; r < set->num_replicas; ++r) {
    if (!ReplicaDown(*set, s, r)) ++live;
  }
  return live;
}

int ShardedCloudServer::FirstLiveReplica(const ShardSet& set, std::size_t s,
                                         std::size_t* skipped) {
  for (std::size_t r = 0; r < set.num_replicas; ++r) {
    if (!ReplicaDown(set, s, r)) return static_cast<int>(r);
    if (skipped != nullptr) ++*skipped;
  }
  return -1;
}

int ShardedCloudServer::PickReplica(const ShardSet& set, std::size_t s,
                                    std::size_t* skipped) {
  int best = -1;
  int best_load = std::numeric_limits<int>::max();
  bool seen_live = false;
  for (std::size_t r = 0; r < set.num_replicas; ++r) {
    if (ReplicaDown(set, s, r)) {
      // Down replicas ahead of the first live one count as skipped, matching
      // the first-live accounting the counters have always reported.
      if (!seen_live && skipped != nullptr) ++*skipped;
      continue;
    }
    seen_live = true;
    const int load =
        set.groups[s]->state[r].inflight.load(std::memory_order_acquire);
    if (load < best_load) {
      best_load = load;
      best = static_cast<int>(r);
    }
  }
  return best;
}

ShardFilterOptions ShardedCloudServer::MakeFilterOptions(
    std::size_t k_prime, const SearchSettings& settings) const {
  ShardFilterOptions options;
  options.k_prime = k_prime;
  options.ef_search = settings.ef_search;
  options.want_dce = remote_ && settings.refine;
  options.admission_ms = settings.admission_ms;
  return options;
}

Status ShardedCloudServer::FilterVia(const ShardSet& set, std::size_t s,
                                     std::size_t r, const QueryToken& token,
                                     const ShardFilterOptions& options,
                                     SearchContext* ctx,
                                     ShardFilterResult* out) {
  ReplicaState& state = set.groups[s]->state[r];
  state.inflight.fetch_add(1, std::memory_order_acq_rel);
  const Status st = set.groups[s]->transports[r]->Filter(token, options, ctx, out);
  if (out->scanned) state.requests.fetch_add(1, std::memory_order_acq_rel);
  state.inflight.fetch_sub(1, std::memory_order_acq_rel);
  return st;
}

Status ShardedCloudServer::FilterShard(std::size_t s, std::size_t r,
                                       const QueryToken& token,
                                       const ShardFilterOptions& options,
                                       SearchContext* ctx,
                                       ShardFilterResult* out) const {
  PPANNS_CHECK(!remote_);
  const std::shared_ptr<const ShardSet> set = set_->Pin();
  if (s >= set->groups.size() || r >= set->num_replicas) {
    return Status::InvalidArgument(
        "FilterShard: replica (" + std::to_string(s) + ", " +
        std::to_string(r) + ") is outside the " +
        std::to_string(set->groups.size()) + "x" +
        std::to_string(set->num_replicas) + " topology");
  }
  if (options.k_prime == 0) {
    return Status::InvalidArgument("FilterShard: k' must be positive");
  }
  PPANNS_RETURN_IF_ERROR(FilterVia(*set, s, r, token, options, ctx, out));
  if (options.want_dce) {
    // Ship the candidates' ciphertexts for the remote refine phase. Any
    // replica of the shard serves (ciphertexts are byte-identical); use the
    // one that answered.
    const CloudServer& source = set->groups[s]->replicas[r];
    out->dce.reserve(out->candidates.size());
    for (const Neighbor& nb : out->candidates) {
      const ShardRef& ref = set->manifest.at(nb.id);
      out->dce.push_back(source.dce_ciphertexts()[ref.local]);
    }
  }
  return Status::OK();
}

SearchResult ShardedCloudServer::MergeAndRefine(
    const ShardSet& set, const QueryToken& token, std::size_t k,
    const SearchSettings& settings, std::size_t k_prime,
    std::vector<ShardFilterResult> per_shard, SearchContext* ctx) const {
  SearchResult result;

  // A remote gather refines over ciphertexts shipped in the answers; index
  // them by global id up front. (The map points into per_shard, which stays
  // alive through the refine below.)
  std::unordered_map<VectorId, const DceCiphertext*> shipped_dce;
  if (remote_ && settings.refine) {
    for (const ShardFilterResult& shard_result : per_shard) {
      const std::size_t n = std::min(shard_result.candidates.size(),
                                     shard_result.dce.size());
      for (std::size_t i = 0; i < n; ++i) {
        shipped_dce.emplace(shard_result.candidates[i].id,
                            &shard_result.dce[i]);
      }
    }
  }

  // ---- Gather: merge to the global SAP-top-k' under the same
  // (distance, global id) order an unsharded filter phase produces. Each
  // shard's top-k' is complete for that shard, so the merged prefix equals
  // the unsharded candidate list whenever the backends are exact.
  std::vector<Neighbor> merged;
  for (const ShardFilterResult& shard_result : per_shard) {
    merged.insert(merged.end(), shard_result.candidates.begin(),
                  shard_result.candidates.end());
  }
  std::sort(merged.begin(), merged.end());
  if (merged.size() > k_prime) merged.resize(k_prime);
  result.counters.filter_candidates = merged.size();

  if (!settings.refine) {
    const std::size_t out_k = std::min(k, merged.size());
    result.ids.reserve(out_k);
    for (std::size_t i = 0; i < out_k; ++i) result.ids.push_back(merged[i].id);
    if (ctx != nullptr) FillCounters(&result.counters, *ctx);
    return result;
  }

  // ---- Refine: one DCE ComparisonHeap over the merged budget. A local
  // server resolves each global id to its shard's ciphertext through the
  // manifest (any live replica serves the lookup — ciphertexts are identical
  // across replicas; the choice is pinned per shard up front so the
  // comparison hot loop does no health checks). A remote gather looks up the
  // shipped ciphertexts instead — same comparisons, same ids.
  std::vector<const CloudServer*> dce_source;
  if (!remote_) {
    dce_source.resize(set.groups.size());
    for (std::size_t s = 0; s < set.groups.size(); ++s) {
      const int r = FirstLiveReplica(set, s);
      dce_source[s] = r >= 0 ? &set.groups[s]->replicas[r]
                             : &set.groups[s]->replicas.front();
    }
  }

  Timer refine_timer;
  std::size_t* comparisons = &result.counters.dce_comparisons;
  const ShardManifest& manifest = set.manifest;
  ComparisonHeap heap(
      k, [this, &token, &dce_source, &shipped_dce, &manifest,
          comparisons](VectorId a, VectorId b) {
        ++*comparisons;
        if (remote_) {
          return DceScheme::Closer(*shipped_dce.at(a), *shipped_dce.at(b),
                                   token.trapdoor);
        }
        const ShardRef& ra = manifest.at(a);
        const ShardRef& rb = manifest.at(b);
        return DceScheme::Closer(
            dce_source[ra.shard]->dce_ciphertexts()[ra.local],
            dce_source[rb.shard]->dce_ciphertexts()[rb.local], token.trapdoor);
      });
  // Blocked offers: gather a block of eligible candidates, prefetching each
  // one's DCE ciphertext payload, then run the comparison-heavy offers over
  // warm lines. Offers apply in candidate order, so ids match the unblocked
  // loop.
  VectorId block[kKernelBlock];
  std::size_t ci = 0;
  bool abandoned = false;
  while (ci < merged.size() && !abandoned) {
    std::size_t bn = 0;
    for (; ci < merged.size() && bn < kKernelBlock; ++ci) {
      // Candidate-granularity probe: DCE comparisons dwarf a row scan. A
      // spent filter budget does not abandon refinement — only cancellation
      // or the deadline does.
      if (ctx != nullptr && ctx->ShouldAbandon()) {
        abandoned = true;
        break;
      }
      const VectorId id = merged[ci].id;
      if (remote_) {
        // Defensive: never offer a candidate whose ciphertext did not ship
        // (a malformed remote answer) — the comparator must not throw.
        const auto it = shipped_dce.find(id);
        if (it == shipped_dce.end()) continue;
        PrefetchRead(it->second->data.data());
      } else {
        const ShardRef& ref = manifest.at(id);
        PrefetchRead(
            dce_source[ref.shard]->dce_ciphertexts()[ref.local].data.data());
      }
      block[bn++] = id;
    }
    heap.OfferBatch(block, bn);
  }
  result.ids = heap.ExtractSorted();
  result.counters.refine_seconds = refine_timer.ElapsedSeconds();
  if (ctx != nullptr) {
    ctx->stats.dce_comparisons += result.counters.dce_comparisons;
    FillCounters(&result.counters, *ctx);
  }
  return result;
}

SearchResult ShardedCloudServer::Search(const QueryToken& token, std::size_t k,
                                        const SearchSettings& settings,
                                        SearchContext* ctx) const {
  SearchResult result;
  if (k == 0 || size() == 0) return result;
  SearchContext local_ctx;
  if (ctx == nullptr) ctx = &local_ctx;
  ApplyContextSettings(ctx, settings);
  const std::size_t k_prime = ResolveKPrime(settings, k);

  // Pin the serving state once: the whole query — scatter, merge, refine —
  // reads this set even if a compaction swaps a new one in meanwhile.
  const std::shared_ptr<const ShardSet> set = set_->Pin();

  // ---- Scatter (filter phase): every shard answers the full k'-ANNS over
  // its least-loaded live replica. Inside a batch worker the fan-out runs
  // inline; standalone calls parallelize across shards. The gather below is
  // a barrier — the synchronous path's tail latency is the slowest replica.
  // Each shard scans under its own Child context (contexts are single-
  // threaded by design); the parent merges them after the barrier.
  Timer filter_timer;
  const std::size_t num_shards = set->groups.size();
  const ShardFilterOptions options = MakeFilterOptions(k_prime, settings);
  std::vector<ShardFilterResult> per_shard(num_shards);
  std::vector<std::size_t> skipped(num_shards, 0);
  std::vector<char> shard_down(num_shards, 0);
  std::vector<SearchContext> children;
  children.reserve(num_shards);
  for (std::size_t s = 0; s < num_shards; ++s) children.push_back(ctx->Child());
  ThreadPool::Global().ParallelFor(
      num_shards, [&](std::size_t begin, std::size_t end) {
        for (std::size_t s = begin; s < end; ++s) {
          const int r = PickReplica(*set, s, &skipped[s]);
          if (r < 0) {
            shard_down[s] = 1;
            continue;
          }
          // A failed dispatch (dead remote connection, server-side shed)
          // degrades like a dead shard: partial result, not a crash.
          if (!FilterVia(*set, s, static_cast<std::size_t>(r), token, options,
                         &children[s], &per_shard[s])
                   .ok()) {
            shard_down[s] = 1;
          }
        }
      });
  for (const SearchContext& child : children) ctx->MergeChild(child);
  const double filter_seconds = filter_timer.ElapsedSeconds();

  result = MergeAndRefine(*set, token, k, settings, k_prime,
                          std::move(per_shard), ctx);
  result.counters.filter_seconds = filter_seconds;
  for (std::size_t s = 0; s < num_shards; ++s) {
    result.counters.replicas_skipped += skipped[s];
    if (shard_down[s]) result.partial = true;
  }
  return result;
}

ShardedCloudServer::ScatterOutcome ShardedCloudServer::RunHedgedScatter(
    std::shared_ptr<const ShardSet> set, std::span<const QueryToken> tokens,
    std::span<const ScatterItem> items, const ShardFilterOptions& options,
    const AsyncOptions& async, SearchContext* parent_ctx) const {
  ThreadPool& pool = ThreadPool::Global();
  const std::size_t num_items = items.size();
  const std::size_t num_replicas = set->num_replicas;
  Runtime* const rt = runtime_.get();

  ScatterOutcome outcome;
  outcome.answers.resize(num_items);
  outcome.stats.resize(num_items);
  outcome.exits.assign(num_items, EarlyExit::kNone);
  outcome.item_seconds.assign(num_items, 0.0);
  outcome.hedges.assign(num_items, 0);

  // Everything an abandoned work item may touch after this call returns
  // lives here, behind a shared_ptr: the token copies, the claim flags, the
  // answer slots — and the pinned ShardSet, so a compaction swap mid-query
  // can never free a group a straggler still reads.
  struct ItemSlot {
    /// Raised by the first dispatch to finish — and, with mid_scan_cancel,
    /// registered as a cancellation source in every later dispatch's
    /// context, so losers abort mid-scan at their next probe. A remote
    /// loser's probe fires inside the RPC wait, turning into one CANCEL
    /// frame on the wire.
    std::atomic<bool> claimed{false};
    bool answered = false;         // guarded by Coordinator::mu
    ShardFilterResult answer;      // guarded by mu
    SearchStats stats;             // winner's scan stats, guarded by mu
    EarlyExit exit = EarlyExit::kNone;  // winner's reason, guarded by mu
    double seconds = 0.0;          // winner's delay + scan time, guarded by mu
  };
  struct Coordinator {
    std::shared_ptr<const ShardSet> set;  ///< keeps every group alive
    std::vector<QueryToken> tokens;
    std::mutex mu;
    std::condition_variable cv;
    std::size_t pending = 0;  // items dispatched but not yet answered
    std::unique_ptr<ItemSlot[]> slots;
    /// Wasted work of losers that had already finished when the gather
    /// completed; the Runtime counters additionally catch late losers.
    std::atomic<std::size_t> wasted_nodes{0};
  };
  auto co = std::make_shared<Coordinator>();
  co->set = set;
  co->tokens.assign(tokens.begin(), tokens.end());
  co->slots = std::make_unique<ItemSlot[]>(num_items);
  co->pending = num_items;

  // One dispatch of one (query, shard) item on a chosen replica, through its
  // transport — in-process scan or remote RPC, the hedging machinery cannot
  // tell. The context is assembled at dispatch time: the caller's deadline
  // and cancellation flags (Child), plus — when mid-scan cancellation is on
  // — the item's claim flag. The item carries everything it touches through
  // the coordinator (which pins the ShardSet) or the stable Runtime, never
  // `this`, because a loser can outlive the calling search (its in-flight
  // count is what the destructor drains).
  struct Dispatch {
    std::shared_ptr<Coordinator> co;
    const ShardTransport* transport;
    ReplicaState* state;  // the dispatched replica's counters (in co->set)
    Runtime* rt;
    std::size_t item;
    std::size_t token_index;
    ShardFilterOptions options;
    SearchContext ctx;  // pre-assembled; stats stay local to this dispatch

    void operator()() {
      ItemSlot& slot = co->slots[item];
      if (slot.claimed.load(std::memory_order_acquire)) {
        // Lost before starting: nothing was wasted, nothing to record.
        Finish();
        return;
      }
      Timer item_timer;
      ShardFilterResult answer;
      const Status st = transport->Filter(co->tokens[token_index], options,
                                          &ctx, &answer);
      if (answer.scanned) {
        state->requests.fetch_add(1, std::memory_order_acq_rel);
      }
      // A kCancelled exit means we lost only if the *claim* flag is up
      // (another dispatch won). A caller-raised flag with no claim yet
      // must still publish its partial answer — otherwise every dispatch
      // of the item would walk away and the gather would wait on
      // `pending` forever.
      const bool lost_race =
          ctx.early_exit() == EarlyExit::kCancelled &&
          slot.claimed.load(std::memory_order_acquire);
      if (lost_race) {
        if (answer.scanned) {
          // Lost the race after burning real work: account it. This counter
          // staying near zero is what mid-scan cancellation buys — locally
          // through the claim-flag probe, remotely through the CANCEL frame
          // (the response's partial stats land in `ctx`).
          rt->cancelled_nodes.fetch_add(ctx.stats.nodes_visited,
                                        std::memory_order_acq_rel);
          rt->cancelled_scans.fetch_add(1, std::memory_order_acq_rel);
          co->wasted_nodes.fetch_add(ctx.stats.nodes_visited,
                                     std::memory_order_acq_rel);
        }
        Finish();
        return;
      }
      if (!slot.claimed.exchange(true, std::memory_order_acq_rel)) {
        // First finisher wins — including a failed dispatch (dead remote
        // connection), which publishes its empty answer so the gather never
        // hangs; the transport's health flag steers future dispatches away.
        if (!st.ok()) answer = ShardFilterResult{};
        std::lock_guard<std::mutex> lock(co->mu);
        slot.answered = true;
        slot.answer = std::move(answer);
        slot.stats = ctx.stats;
        slot.exit = ctx.early_exit();
        slot.seconds = item_timer.ElapsedSeconds();
        --co->pending;
        co->cv.notify_all();
      } else if (answer.scanned) {
        // Claimed between our probe and the exchange: a straggler loss.
        rt->cancelled_nodes.fetch_add(ctx.stats.nodes_visited,
                                      std::memory_order_acq_rel);
        rt->cancelled_scans.fetch_add(1, std::memory_order_acq_rel);
        co->wasted_nodes.fetch_add(ctx.stats.nodes_visited,
                                   std::memory_order_acq_rel);
      }
      Finish();
    }

    void Finish() {
      state->inflight.fetch_sub(1, std::memory_order_acq_rel);
      rt->inflight.fetch_sub(1, std::memory_order_acq_rel);
    }
  };

  const auto make_dispatch = [&](std::size_t item, std::size_t s,
                                 std::size_t r) {
    SearchContext ctx =
        parent_ctx != nullptr ? parent_ctx->Child() : SearchContext{};
    if (async.mid_scan_cancel) ctx.AddCancelFlag(&co->slots[item].claimed);
    ReplicaState* const state = &co->set->groups[s]->state[r];
    state->inflight.fetch_add(1, std::memory_order_acq_rel);
    rt->inflight.fetch_add(1, std::memory_order_acq_rel);
    return Dispatch{co,
                    co->set->groups[s]->transports[r].get(),
                    state,
                    rt,
                    item,
                    items[item].token_index,
                    options,
                    std::move(ctx)};
  };

  // ---- Initial scatter: every item to the least-loaded live replica of
  // its shard, on the pool.
  std::vector<std::vector<std::uint8_t>> dispatched(
      num_items, std::vector<std::uint8_t>(num_replicas, 0));
  for (std::size_t i = 0; i < num_items; ++i) {
    const int r = PickReplica(*set, items[i].shard, &outcome.replicas_skipped);
    if (r < 0) {
      // Callers exclude shards with no live replica, but SetReplicaDown is
      // an admin knob usable concurrently with serving: the shard's last
      // replica may have died between the caller's liveness scan and this
      // dispatch. Degrade like a dead shard — an empty answer — instead of
      // crashing the server.
      std::lock_guard<std::mutex> lock(co->mu);
      co->slots[i].answered = true;
      --co->pending;
      continue;
    }
    dispatched[i][static_cast<std::size_t>(r)] = 1;
    pool.Submit(make_dispatch(i, items[i].shard, static_cast<std::size_t>(r)));
  }

  // ---- Gather with hedging: wait in hedge_ms steps; at each missed
  // deadline, run the unanswered items on their shard's next-best live
  // replica INLINE on this thread. The gather thread is otherwise idle, so
  // a hedge makes progress even when every pool worker is stuck behind a
  // straggler (including on a single-worker pool); the loser aborts at its
  // next cancellation probe once the inline run claims the slot.
  const bool hedging = async.hedge_ms > 0.0;
  const bool has_deadline =
      parent_ctx != nullptr && parent_ctx->has_deadline();
  const auto query_deadline = has_deadline
                                  ? parent_ctx->deadline()
                                  : SearchContext::Clock::time_point::max();
  {
    std::unique_lock<std::mutex> lock(co->mu);
    const auto start = std::chrono::steady_clock::now();
    std::size_t level = 1;
    bool escalation_left = true;
    for (;;) {
      auto wake = query_deadline;
      if (hedging && escalation_left) {
        const auto hedge_deadline =
            start +
            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double, std::milli>(
                    async.hedge_ms * static_cast<double>(level)));
        wake = std::min(wake, hedge_deadline);
      }
      bool done;
      if (wake == SearchContext::Clock::time_point::max()) {
        co->cv.wait(lock, [&co] { return co->pending == 0; });
        done = true;
      } else {
        done = co->cv.wait_until(lock, wake,
                                 [&co] { return co->pending == 0; });
      }
      if (done) break;
      if (has_deadline && SearchContext::Clock::now() >= query_deadline) {
        // Query deadline: abandon the gather. In-flight dispatches observe
        // the same deadline through their contexts and stop on their own.
        parent_ctx->ShouldStop();
        break;
      }
      if (!hedging || !escalation_left) continue;

      // Escalate every unanswered item to its shard's next-best live
      // replica, inline. The lock is dropped while scanning so finishing
      // pool items can deliver their answers meanwhile.
      std::vector<std::pair<std::size_t, std::size_t>> to_run;  // (item, r)
      escalation_left = false;
      for (std::size_t i = 0; i < num_items; ++i) {
        if (co->slots[i].answered) continue;
        int best = -1;
        int best_load = std::numeric_limits<int>::max();
        std::size_t undispatched_live = 0;
        for (std::size_t r = 0; r < num_replicas; ++r) {
          if (dispatched[i][r] || ReplicaDown(*set, items[i].shard, r)) {
            continue;
          }
          ++undispatched_live;
          const int load = set->groups[items[i].shard]->state[r].inflight.load(
              std::memory_order_acquire);
          if (load < best_load) {
            best_load = load;
            best = static_cast<int>(r);
          }
        }
        if (best < 0) continue;
        dispatched[i][static_cast<std::size_t>(best)] = 1;
        ++outcome.hedges[i];
        ++outcome.hedged_requests;
        if (undispatched_live > 1) escalation_left = true;
        to_run.emplace_back(i, static_cast<std::size_t>(best));
      }
      ++level;
      if (to_run.empty()) continue;
      lock.unlock();
      for (const auto& [item, r] : to_run) {
        Dispatch hedge = make_dispatch(item, items[item].shard, r);
        hedge();
      }
      lock.lock();
    }

    // ---- Collect under the same lock that guards the answer slots. Losers
    // may still be running; they can no longer win the claim, so answered
    // slots are stable.
    for (std::size_t i = 0; i < num_items; ++i) {
      if (!co->slots[i].answered) continue;
      outcome.answers[i] = std::move(co->slots[i].answer);
      outcome.stats[i] = co->slots[i].stats;
      outcome.exits[i] = co->slots[i].exit;
      outcome.item_seconds[i] = co->slots[i].seconds;
    }
  }
  outcome.wasted_nodes = co->wasted_nodes.load(std::memory_order_acquire);
  return outcome;
}

Result<SearchResult> ShardedCloudServer::SearchAsync(
    const QueryToken& token, std::size_t k, const SearchSettings& settings,
    const AsyncOptions& async, SearchContext* ctx) const {
  ThreadPool& pool = ThreadPool::Global();
  if (pool.InWorker()) {
    // The gather thread doubles as the inline hedge executor; a pool worker
    // cannot play that role for itself, so fall back to the inline
    // synchronous scatter (ParallelFor's nested rule), which already avoids
    // the straggler wait across *queries* at the batch level.
    SearchResult result = Search(token, k, settings, ctx);
    if (result.partial && !async.allow_partial) {
      return Status::FailedPrecondition(
          "SearchAsync: a shard has no live replica and partial results are "
          "disabled");
    }
    return result;
  }

  SearchResult result;
  if (k == 0 || size() == 0) return result;
  SearchContext local_ctx;
  if (ctx == nullptr) ctx = &local_ctx;
  ApplyContextSettings(ctx, settings);
  const std::size_t k_prime = ResolveKPrime(settings, k);

  const std::shared_ptr<const ShardSet> set = set_->Pin();
  const std::size_t num_shards = set->groups.size();

  // Resolve serveable shards; dead shards are excluded from the scatter.
  std::vector<ScatterItem> items;
  std::vector<int> item_of_shard(num_shards, -1);
  items.reserve(num_shards);
  bool partial = false;
  for (std::size_t s = 0; s < num_shards; ++s) {
    if (FirstLiveReplica(*set, s) < 0) {
      partial = true;
      continue;
    }
    item_of_shard[s] = static_cast<int>(items.size());
    items.push_back(ScatterItem{0, s});
  }
  if (items.empty()) {
    return Status::FailedPrecondition(
        "SearchAsync: every replica of every shard is down");
  }
  if (partial && !async.allow_partial) {
    return Status::FailedPrecondition(
        "SearchAsync: a shard has no live replica and partial results are "
        "disabled");
  }

  Timer filter_timer;
  ScatterOutcome outcome =
      RunHedgedScatter(set, std::span(&token, 1), items,
                       MakeFilterOptions(k_prime, settings), async, ctx);
  const double filter_seconds = filter_timer.ElapsedSeconds();

  std::vector<ShardFilterResult> per_shard(num_shards);
  for (std::size_t s = 0; s < num_shards; ++s) {
    if (item_of_shard[s] < 0) continue;
    const std::size_t i = static_cast<std::size_t>(item_of_shard[s]);
    per_shard[s] = std::move(outcome.answers[i]);
    ctx->stats.Merge(outcome.stats[i]);
    ctx->AdoptEarlyExit(outcome.exits[i]);
  }

  result = MergeAndRefine(*set, token, k, settings, k_prime,
                          std::move(per_shard), ctx);
  result.counters.filter_seconds = filter_seconds;
  result.counters.hedged_requests = outcome.hedged_requests;
  result.counters.replicas_skipped = outcome.replicas_skipped;
  result.counters.hedge_wasted_nodes = outcome.wasted_nodes;
  result.partial = partial;
  return result;
}

std::vector<SearchResult> ShardedCloudServer::SearchBatchScattered(
    std::span<const QueryToken> tokens, std::size_t k,
    const SearchSettings& settings) const {
  const std::size_t num_queries = tokens.size();
  std::vector<SearchResult> results(num_queries);
  if (num_queries == 0 || k == 0 || size() == 0) return results;
  const std::size_t k_prime = ResolveKPrime(settings, k);
  const ShardFilterOptions options = MakeFilterOptions(k_prime, settings);

  const std::shared_ptr<const ShardSet> set = set_->Pin();
  const std::size_t num_shards = set->groups.size();

  // Per-query contexts: the deadline/budget knobs bound every query of the
  // batch independently; stats land in that query's counters.
  std::vector<SearchContext> query_ctx(num_queries);
  for (SearchContext& ctx : query_ctx) ApplyContextSettings(&ctx, settings);

  // Resolve the serving replica of every shard once per batch (load-aware;
  // on an idle cluster this is the first live replica, as before).
  std::vector<int> serving(num_shards, -1);
  std::size_t skipped = 0;
  bool partial = false;
  for (std::size_t s = 0; s < num_shards; ++s) {
    serving[s] = PickReplica(*set, s, &skipped);
    if (serving[s] < 0) partial = true;
  }

  // ---- Phase 1: one flat fan-out over all Q*S (query, shard) work items.
  // Work item (q, s) is independent of every other, so a small batch still
  // spreads across every core instead of leaving (cores - Q) idle. Each
  // item scans under a Child of its query's context.
  std::vector<std::vector<ShardFilterResult>> candidates(num_queries);
  for (auto& per_query : candidates) per_query.resize(num_shards);
  std::vector<double> item_seconds(num_queries * num_shards, 0.0);
  std::vector<SearchContext> item_ctx;
  item_ctx.reserve(num_queries * num_shards);
  for (std::size_t q = 0; q < num_queries; ++q) {
    for (std::size_t s = 0; s < num_shards; ++s) {
      item_ctx.push_back(query_ctx[q].Child());
    }
  }
  ThreadPool::Global().ParallelFor(
      num_queries * num_shards, [&](std::size_t begin, std::size_t end) {
        for (std::size_t item = begin; item < end; ++item) {
          const std::size_t q = item / num_shards;
          const std::size_t s = item % num_shards;
          if (serving[s] < 0) continue;
          Timer item_timer;
          // A failed dispatch leaves this (query, shard) answer empty — the
          // merge degrades like a dead shard.
          static_cast<void>(FilterVia(*set, s,
                                      static_cast<std::size_t>(serving[s]),
                                      tokens[q], options, &item_ctx[item],
                                      &candidates[q][s]));
          item_seconds[item] = item_timer.ElapsedSeconds();
        }
      });
  for (std::size_t q = 0; q < num_queries; ++q) {
    for (std::size_t s = 0; s < num_shards; ++s) {
      query_ctx[q].MergeChild(item_ctx[q * num_shards + s]);
    }
  }

  // ---- Phase 2: per-query merge + refine, fanned across queries.
  ThreadPool::Global().ParallelFor(
      num_queries, [&](std::size_t begin, std::size_t end) {
        for (std::size_t q = begin; q < end; ++q) {
          results[q] = MergeAndRefine(*set, tokens[q], k, settings, k_prime,
                                      std::move(candidates[q]), &query_ctx[q]);
          double filter_seconds = 0.0;
          for (std::size_t s = 0; s < num_shards; ++s) {
            filter_seconds += item_seconds[q * num_shards + s];
          }
          results[q].counters.filter_seconds = filter_seconds;
          results[q].counters.replicas_skipped = skipped;
          results[q].partial = partial;
        }
      });
  return results;
}

std::vector<SearchResult> ShardedCloudServer::SearchBatchScattered(
    std::span<const QueryToken> tokens, std::size_t k,
    const SearchSettings& settings, const AsyncOptions& async) const {
  // Hedging needs this thread as the gather/inline-hedge executor; from a
  // pool worker (or with hedging off) the flat ParallelFor path serves.
  if (async.hedge_ms <= 0.0 || ThreadPool::Global().InWorker()) {
    return SearchBatchScattered(tokens, k, settings);
  }
  const std::size_t num_queries = tokens.size();
  std::vector<SearchResult> results(num_queries);
  if (num_queries == 0 || k == 0 || size() == 0) return results;
  const std::size_t k_prime = ResolveKPrime(settings, k);

  const std::shared_ptr<const ShardSet> set = set_->Pin();
  const std::size_t num_shards = set->groups.size();

  std::vector<SearchContext> query_ctx(num_queries);
  for (SearchContext& ctx : query_ctx) ApplyContextSettings(&ctx, settings);

  // Dead shards are excluded once for the whole batch.
  bool partial = false;
  std::vector<char> shard_live(num_shards, 0);
  for (std::size_t s = 0; s < num_shards; ++s) {
    if (FirstLiveReplica(*set, s) >= 0) {
      shard_live[s] = 1;
    } else {
      partial = true;
    }
  }

  // All Q*S (query, live shard) work items through the same hedged
  // claim-flag scatter SearchAsync uses — one coordinator, one gather.
  std::vector<ScatterItem> items;
  items.reserve(num_queries * num_shards);
  for (std::size_t q = 0; q < num_queries; ++q) {
    for (std::size_t s = 0; s < num_shards; ++s) {
      if (shard_live[s]) items.push_back(ScatterItem{q, s});
    }
  }
  if (items.empty()) return results;

  // The batch shares one deadline context source: every query's context
  // carries the same settings-derived deadline, so the first query's stands
  // in for the gather bound.
  ScatterOutcome outcome =
      RunHedgedScatter(set, tokens, items, MakeFilterOptions(k_prime, settings),
                       async, &query_ctx.front());

  std::vector<std::vector<ShardFilterResult>> candidates(num_queries);
  for (auto& per_query : candidates) per_query.resize(num_shards);
  std::vector<std::size_t> hedges_per_query(num_queries, 0);
  std::vector<double> seconds_per_query(num_queries, 0.0);
  for (std::size_t i = 0; i < items.size(); ++i) {
    candidates[items[i].token_index][items[i].shard] =
        std::move(outcome.answers[i]);
    query_ctx[items[i].token_index].stats.Merge(outcome.stats[i]);
    query_ctx[items[i].token_index].AdoptEarlyExit(outcome.exits[i]);
    hedges_per_query[items[i].token_index] += outcome.hedges[i];
    // Per-query attribution from the winning dispatches, matching the
    // unhedged path's item_seconds accounting (not the batch wall time,
    // which would inflate BatchCounters totals Q-fold).
    seconds_per_query[items[i].token_index] += outcome.item_seconds[i];
  }

  ThreadPool::Global().ParallelFor(
      num_queries, [&](std::size_t begin, std::size_t end) {
        for (std::size_t q = begin; q < end; ++q) {
          results[q] = MergeAndRefine(*set, tokens[q], k, settings, k_prime,
                                      std::move(candidates[q]), &query_ctx[q]);
          results[q].counters.filter_seconds = seconds_per_query[q];
          results[q].counters.replicas_skipped = outcome.replicas_skipped;
          results[q].counters.hedged_requests = hedges_per_query[q];
          // Wasted loser work is a batch-wide observation; attribute it to
          // the batch's first result rather than replicating it Q times.
          results[q].counters.hedge_wasted_nodes =
              q == 0 ? outcome.wasted_nodes : 0;
          results[q].partial = partial;
        }
      });
  return results;
}

Result<VectorId> ShardedCloudServer::Insert(const EncryptedVector& v) {
  if (remote_) {
    auto outcome = BroadcastMutation(
        "Insert", [&v](MutationTransport& t) { return t.Insert(v); });
    if (!outcome.ok()) return outcome.status();
    PPANNS_RETURN_IF_ERROR(outcome->status);
    return static_cast<VectorId>(outcome->id);
  }
  // In-place mutation of the current set: exclusive against structural
  // maintenance (the mutex — a compaction reads the primary it is about to
  // replace), and callers serialize it against their own searches as they
  // always had to. Abandoned hedge losers may still be reading the indexes
  // this mutation is about to touch; they cancel fast (claim flag / context
  // probe), so wait them out before mutating.
  std::lock_guard<std::mutex> lock(maintenance_->mu);
  DrainAsyncWork();
  const std::shared_ptr<ShardSet> set = set_->Current();
  // Least-loaded routing by live count; ties go to the lowest shard id so
  // routing is deterministic (and WAL replay reproduces it).
  std::size_t target = 0;
  for (std::size_t s = 1; s < set->groups.size(); ++s) {
    if (set->groups[s]->replicas.front().size() <
        set->groups[target]->replicas.front().size()) {
      target = s;
    }
  }
  ShardGroup& group = *set->groups[target];
  // Every replica of the target shard applies the insert, so replicas stay
  // identical and any of them can serve or fail over afterwards.
  const VectorId local = group.replicas.front().Insert(v);
  for (std::size_t r = 1; r < group.replicas.size(); ++r) {
    const VectorId replica_local = group.replicas[r].Insert(v);
    PPANNS_CHECK(replica_local == local);
  }
  const VectorId global_id =
      set->manifest.Append(static_cast<ShardId>(target), local);
  PPANNS_CHECK(local == group.local_to_global.size());
  group.local_to_global.push_back(global_id);
  return global_id;
}

Status ShardedCloudServer::Delete(VectorId global_id) {
  if (remote_) {
    auto outcome = BroadcastMutation(
        "Delete",
        [global_id](MutationTransport& t) { return t.Delete(global_id); });
    if (!outcome.ok()) return outcome.status();
    return outcome->status;
  }
  std::lock_guard<std::mutex> lock(maintenance_->mu);
  DrainAsyncWork();
  const std::shared_ptr<ShardSet> set = set_->Current();
  if (global_id >= set->manifest.size()) {
    return Status::InvalidArgument("Delete: global id " +
                                   std::to_string(global_id) +
                                   " was never assigned");
  }
  const ShardRef& ref = set->manifest.at(global_id);
  if (IsDeadRef(ref)) {
    // The tombstone was physically dropped by a compaction; the id behaves
    // like any other already-removed id.
    return Status::NotFound("Delete: global id " + std::to_string(global_id) +
                            " was already removed (compacted away)");
  }
  ShardGroup& group = *set->groups[ref.shard];
  Status st = group.replicas.front().Delete(ref.local);
  if (st.ok()) {
    // Replicas mirror the primary exactly, so the tombstone must land on
    // every one of them.
    for (std::size_t r = 1; r < group.replicas.size(); ++r) {
      PPANNS_CHECK(group.replicas[r].Delete(ref.local).ok());
    }
    return st;
  }
  // The per-shard status names the local id, which the caller never saw;
  // restate it in global terms.
  const std::string where = "Delete: global id " + std::to_string(global_id) +
                            " (shard " + std::to_string(ref.shard) +
                            ", local " + std::to_string(ref.local) + "): ";
  switch (st.code()) {
    case Status::Code::kNotFound:
      return Status::NotFound(where + st.message());
    case Status::Code::kInvalidArgument:
      return Status::InvalidArgument(where + st.message());
    default:
      return st;
  }
}

std::size_t ShardedCloudServer::StorageBytes() const {
  if (remote_) return topology_.storage_bytes;
  const std::shared_ptr<const ShardSet> set = set_->Pin();
  std::size_t total = set->manifest.size() * sizeof(ShardRef);
  for (const auto& group : set->groups) {
    for (const CloudServer& replica : group->replicas) {
      total += replica.StorageBytes();
    }
  }
  return total;
}

void ShardedCloudServer::SerializeDatabase(BinaryWriter* out) const {
  PPANNS_CHECK(!remote_);  // see Insert
  // Serialize under the maintenance mutex: a snapshot must not interleave
  // with an Insert/Delete/compaction half-applied (searches are fine — they
  // only read).
  std::lock_guard<std::mutex> lock(maintenance_->mu);
  const std::shared_ptr<const ShardSet> set = set_->Pin();
  const auto num_shards = static_cast<std::uint32_t>(set->groups.size());
  const auto num_replicas = static_cast<std::uint32_t>(set->num_replicas);
  if (set->state_version > 0) {
    std::vector<std::uint64_t> epochs;
    epochs.reserve(set->groups.size());
    for (const auto& group : set->groups) {
      epochs.push_back(group->compaction_epoch);
    }
    const std::size_t crc_begin = ShardedEncryptedDatabase::WriteEnvelopeHeaderV3(
        out, num_shards, num_replicas, set->state_version, epochs);
    for (const auto& group : set->groups) {
      for (const CloudServer& replica : group->replicas) {
        replica.SerializeDatabase(out);
      }
    }
    set->manifest.Serialize(out);
    ShardedEncryptedDatabase::FinishEnvelopeV3(out, crc_begin);
    return;
  }
  ShardedEncryptedDatabase::WriteEnvelopeHeader(out, num_shards, num_replicas);
  for (const auto& group : set->groups) {
    for (const CloudServer& replica : group->replicas) {
      replica.SerializeDatabase(out);
    }
  }
  set->manifest.Serialize(out);
}

}  // namespace ppanns
