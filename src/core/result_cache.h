// ResultCache — the trapdoor-keyed hot-query result cache behind
// PpannsService.
//
// The serving pipeline recomputes the full filter/refine search for every
// request, but realistic traffic is heavily skewed: under a Zipfian key
// distribution the same query tokens arrive over and over, and re-running
// Algorithm 2 for them is pure wasted work. Search is deterministic in
// (token bytes, k, result-shaping settings) for a fixed database state, so
// a byte-identical repeat can be answered from a cache without changing a
// single result id.
//
// Design:
//  * Entries are keyed on a 128-bit hash of the token's SAP + trapdoor
//    bytes plus a fingerprint of the settings that shape the id list
//    (k, k_prime, ef_search, refine, node_budget). Deadlines, admission
//    floors, and hedging knobs are excluded — they never change the ids of
//    a query that ran to completion, and only completed queries are cached.
//  * Every entry is stamped with the database epoch it was computed
//    against. The epoch is the sum of the facade's mutation counter
//    (Insert/Delete/WAL replay) and the sharded server's state_version
//    (compaction/split/rebalance), so ANY mutation path invalidates the
//    whole cache: a lookup whose stamp disagrees with the current epoch is
//    a stale miss and the entry is dropped. Cached answers are therefore
//    always id-identical to a fresh search (pinned by test).
//  * The table is striped: kStripes independent LRU lists, each under its
//    own mutex, selected by key bits — concurrent searches on different
//    stripes never contend.
//
// Thread-safe. Owned and driven by PpannsService; the cache itself knows
// nothing about tokens beyond their bytes.

#ifndef PPANNS_CORE_RESULT_CACHE_H_
#define PPANNS_CORE_RESULT_CACHE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace ppanns {

struct QueryToken;
struct SearchSettings;

struct ResultCacheOptions {
  /// Maximum cached entries across all stripes (split evenly; at least one
  /// per stripe). Each entry holds k ids plus the key/stamp — tiny next to
  /// the database, so generous capacities are cheap.
  std::size_t capacity = 1 << 14;
  /// Lock stripes (rounded up to a power of two). More stripes = less
  /// contention between concurrent lookups that map to different stripes.
  std::size_t stripes = 16;
};

/// Monotonic counters over the cache's lifetime (Clear resets entries, not
/// counters). stale_evictions counts entries dropped because their epoch
/// stamp no longer matched — the invalidation path — and is disjoint from
/// (capacity) evictions.
struct ResultCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::uint64_t stale_evictions = 0;
  std::size_t entries = 0;  ///< currently resident
};

class ResultCache {
 public:
  explicit ResultCache(const ResultCacheOptions& options = {});

  /// 128-bit cache key; compared in full on lookup so a 64-bit hash
  /// collision cannot alias two distinct queries within a stripe.
  struct Key {
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;
    bool operator==(const Key& other) const {
      return lo == other.lo && hi == other.hi;
    }
  };

  /// Hashes the token bytes and the id-shaping settings into a key. Two
  /// byte-identical (token, k, shaping-settings) triples always collide to
  /// the same key; any differing byte separates them (up to 128-bit hash
  /// collision odds).
  static Key MakeKey(const QueryToken& token, std::size_t k,
                     const SearchSettings& settings);

  /// Returns true and fills `ids` when the key is resident with a stamp
  /// equal to `epoch` (and promotes the entry to most-recently-used). A
  /// resident entry with any other stamp is removed (stale eviction) and
  /// reported as a miss.
  bool Lookup(const Key& key, std::uint64_t epoch, std::vector<VectorId>* ids);

  /// Caches `ids` under the key, stamped with `epoch`, evicting the
  /// stripe's least-recently-used entry if its slice of the capacity is
  /// full. Re-inserting a resident key overwrites its value and stamp.
  void Insert(const Key& key, std::uint64_t epoch,
              const std::vector<VectorId>& ids);

  /// Drops every entry. Counters survive; the mutation epoch is untouched
  /// (epochs only ever move forward).
  void Clear();

  /// The facade's mutation-epoch counter. Bumped on every accepted
  /// Insert/Delete/WAL-replay; an entry stamped before the bump can never
  /// match again, which is wholesale invalidation without touching the
  /// stripes.
  std::uint64_t mutation_epoch() const {
    return mutation_epoch_.load(std::memory_order_acquire);
  }
  void BumpMutationEpoch() {
    mutation_epoch_.fetch_add(1, std::memory_order_acq_rel);
  }

  ResultCacheStats Stats() const;

  std::size_t capacity() const { return capacity_; }

 private:
  struct KeyHash {
    std::size_t operator()(const Key& key) const {
      // lo is already a full-width hash of the query bytes.
      return static_cast<std::size_t>(key.lo);
    }
  };

  struct Entry {
    Key key;
    std::uint64_t epoch = 0;
    std::vector<VectorId> ids;
  };

  /// One LRU shard: list front = most recently used; the map indexes list
  /// iterators (stable under splice).
  struct Stripe {
    std::mutex mu;
    std::list<Entry> lru;
    std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> map;
  };

  Stripe& StripeFor(const Key& key) {
    // hi is an independent hash of the same bytes, so stripe choice and
    // in-stripe bucket choice (lo) are decorrelated.
    return stripes_[key.hi & (stripes_.size() - 1)];
  }

  std::size_t capacity_ = 0;
  std::size_t per_stripe_capacity_ = 0;
  std::vector<Stripe> stripes_;

  std::atomic<std::uint64_t> mutation_epoch_{0};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> insertions_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> stale_evictions_{0};
};

}  // namespace ppanns

#endif  // PPANNS_CORE_RESULT_CACHE_H_
