// A bounded max-heap ordered only by a three-way comparison oracle — the
// data structure of the refine phase (Algorithm 2).
//
// The server never sees distance *values* during refinement: DCE yields only
// the sign of dist(a,q) - dist(b,q). This heap therefore runs entirely on a
// "closer(a, b)" predicate. Each insertion into a heap of k elements costs
// O(log k) predicate calls, matching the paper's O(k' log k) refine bound.

#ifndef PPANNS_CORE_COMPARISON_HEAP_H_
#define PPANNS_CORE_COMPARISON_HEAP_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace ppanns {

/// Bounded max-heap over VectorIds: the root is the FARTHEST element under
/// the supplied closer(a,b) predicate ("a strictly closer to q than b").
class ComparisonHeap {
 public:
  using CloserFn = std::function<bool(VectorId, VectorId)>;

  ComparisonHeap(std::size_t capacity, CloserFn closer)
      : capacity_(capacity), closer_(std::move(closer)) {
    PPANNS_CHECK(capacity > 0);
    heap_.reserve(capacity + 1);
  }

  std::size_t size() const { return heap_.size(); }
  bool full() const { return heap_.size() >= capacity_; }

  /// The current farthest element (requires non-empty).
  VectorId Top() const {
    PPANNS_CHECK(!heap_.empty());
    return heap_.front();
  }

  /// Algorithm 2 insertion: if not full, insert; otherwise replace the
  /// farthest element iff `id` is closer than it. Returns true if inserted.
  bool Offer(VectorId id) {
    if (!full()) {
      Push(id);
      return true;
    }
    // Line 8: DistanceComp(C_top, C_id, T_q) > 0 <=> top is farther.
    if (closer_(id, heap_.front())) {
      PopTop();
      Push(id);
      return true;
    }
    return false;
  }

  /// Offers a block of candidates in order — the oracle sees exactly the
  /// comparison sequence of `n` sequential Offer calls, so the contents are
  /// identical; exists so callers can gather a block and prefetch the
  /// ciphertexts it will compare before the comparison-heavy offers run.
  /// Returns the number inserted.
  std::size_t OfferBatch(const VectorId* ids, std::size_t n) {
    std::size_t inserted = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (Offer(ids[i])) ++inserted;
    }
    return inserted;
  }

  /// Extracts all elements, closest first. Costs O(k log k) comparisons.
  std::vector<VectorId> ExtractSorted() {
    std::vector<VectorId> out(heap_.size());
    for (std::size_t i = heap_.size(); i > 0; --i) {
      out[i - 1] = heap_.front();
      PopTop();
    }
    return out;
  }

  /// Unordered view of the current contents.
  const std::vector<VectorId>& contents() const { return heap_; }

 private:
  /// true if a has lower priority than b in the max-heap, i.e. a closer.
  bool Lower(VectorId a, VectorId b) const { return closer_(a, b); }

  void Push(VectorId id) {
    heap_.push_back(id);
    std::size_t i = heap_.size() - 1;
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (Lower(heap_[parent], heap_[i])) {  // parent closer than child: swap up
        std::swap(heap_[parent], heap_[i]);
        i = parent;
      } else {
        break;
      }
    }
  }

  void PopTop() {
    heap_.front() = heap_.back();
    heap_.pop_back();
    std::size_t i = 0;
    const std::size_t n = heap_.size();
    for (;;) {
      const std::size_t l = 2 * i + 1, r = 2 * i + 2;
      std::size_t farthest = i;
      if (l < n && Lower(heap_[farthest], heap_[l])) farthest = l;
      if (r < n && Lower(heap_[farthest], heap_[r])) farthest = r;
      if (farthest == i) break;
      std::swap(heap_[i], heap_[farthest]);
      i = farthest;
    }
  }

  std::size_t capacity_;
  CloserFn closer_;
  std::vector<VectorId> heap_;
};

}  // namespace ppanns

#endif  // PPANNS_CORE_COMPARISON_HEAP_H_
