// The sharded, replicated cloud server: S replica groups of per-shard
// CloudServers behind the single-shard result contract.
//
// Search is scatter-gather. Every shard answers the full k'-ANNS filter
// phase over its own SecureFilterIndex (the scatter fans across the global
// ThreadPool), the per-shard candidates merge into the global SAP-top-k'
// (the same ciphertext-distance ranking the filter phase already exposes to
// the server, so no new leakage class), and exactly those k' candidates
// stream through a single DCE ComparisonHeap. The refine phase therefore
// spends the identical candidate budget as an unsharded server — with the
// exact (brute-force) filter backend and the same SAP layer (a sharded
// build's SAP ciphertexts match EncryptAndIndexParallel's row for row) the
// merged candidate set equals the unsharded one and the returned ids are
// identical.
//
// Replication makes the tier latency-hiding and loss-tolerant. Every shard
// may carry R byte-identical replicas; any replica answers for the shard
// with identical results, so
//  * replica loss fails over to the next live replica without changing a
//    single result id;
//  * SearchAsync fans (query, shard-replica) work items through ThreadPool
//    futures-style tasks and, when a shard misses the hedging deadline,
//    dispatches the same work to the next replica — first answer wins, the
//    loser is discarded (it checks the claim flag and skips the search if it
//    lost before starting);
//  * a shard whose every replica is down degrades to a partial result (flag
//    on SearchResult) or a Status, per AsyncOptions.
//
// Maintenance keeps the manifest authoritative and the replicas identical:
// Insert routes to the least-loaded shard and applies to every replica of
// it; Delete resolves the global id through the manifest and tombstones all
// replicas.

#ifndef PPANNS_CORE_SHARDED_CLOUD_SERVER_H_
#define PPANNS_CORE_SHARDED_CLOUD_SERVER_H_

#include <atomic>
#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "core/cloud_server.h"
#include "core/sharded_database.h"

namespace ppanns {

/// Knobs of the asynchronous scatter-gather path (SearchAsync).
struct AsyncOptions {
  /// Hedging deadline in milliseconds. When a shard has not answered this
  /// long after the scatter, the same (query, shard) work item is dispatched
  /// to the shard's next live replica and the first answer wins; every
  /// further multiple of the deadline escalates to the replica after that.
  /// <= 0 disables hedging (the gather waits on the initial dispatch only).
  double hedge_ms = 5.0;
  /// What to do when every replica of a shard is down: true serves the
  /// remaining shards and sets SearchResult::partial; false fails the whole
  /// query with FailedPrecondition. A query is always failed when *no* shard
  /// has a live replica.
  bool allow_partial = true;
};

/// The sharded, replicated serving tier: scatter-gathers Algorithm 2 across
/// S shards of R byte-identical replicas each, behind the single-shard
/// result contract. Offers a synchronous barrier gather (Search), an async
/// hedged gather that hides stragglers (SearchAsync), and a batch-level
/// (query, shard) fan-out (SearchBatchScattered); fails over on replica
/// loss with identical result ids.
class ShardedCloudServer {
 public:
  /// Takes ownership of a validated package (Deserialize has already checked
  /// the manifest and replica-group consistency; owner-built packages are
  /// consistent by construction).
  explicit ShardedCloudServer(ShardedEncryptedDatabase db);

  /// Waits for any abandoned async work items (hedge losers still running on
  /// the pool) before releasing the shards they read.
  ~ShardedCloudServer();

  ShardedCloudServer(ShardedCloudServer&&) noexcept;
  ShardedCloudServer& operator=(ShardedCloudServer&&) noexcept;

  /// Algorithm 2 over every shard, merged through one DCE heap. Synchronous:
  /// the scatter still fans across the pool (inline inside a batch worker)
  /// but the gather is a barrier — one slow replica stalls the query, which
  /// is exactly what SearchAsync exists to avoid. Skips down replicas (fails
  /// over in shard order); a shard with no live replica is excluded and the
  /// result is marked partial. Thread-safe for concurrent const calls, like
  /// CloudServer::Search.
  SearchResult Search(const QueryToken& token, std::size_t k,
                      const SearchSettings& settings = {}) const;

  /// The asynchronous serving path: fans (query, shard-replica) work items
  /// across the global ThreadPool, hedges shards that miss
  /// `async.hedge_ms` onto their next live replica (first answer wins), and
  /// merges through the same DCE heap as Search. Results are identical to
  /// Search on a healthy cluster — replicas are byte-identical, so *which*
  /// replica answers never changes the ids. Degrades per AsyncOptions when
  /// every replica of a shard is down; fails with FailedPrecondition when no
  /// shard is serveable. Falls back to the inline synchronous scatter when
  /// called from a pool worker (hedging needs free workers).
  Result<SearchResult> SearchAsync(const QueryToken& token, std::size_t k,
                                   const SearchSettings& settings = {},
                                   const AsyncOptions& async = {}) const;

  /// Batch-level scatter: fans Q*S (query, shard) filter work items across
  /// the pool in one flat ParallelFor, then merges/refines per query — for
  /// small batches on many-core hosts this keeps every core busy where the
  /// per-query fan-out would leave (cores - S) idle. Results are identical
  /// to a sequential Search loop over the tokens (same candidates, same
  /// merge order); per-query filter_seconds is attributed from the
  /// (query, shard) items of that query.
  std::vector<SearchResult> SearchBatchScattered(
      std::span<const QueryToken> tokens, std::size_t k,
      const SearchSettings& settings = {}) const;

  /// Links a freshly encrypted vector into every replica of the least-loaded
  /// shard and returns its dense *global* id.
  VectorId Insert(const EncryptedVector& v);

  /// Removes the vector behind a global id (manifest lookup + per-replica
  /// delete on its shard). InvalidArgument if the id was never assigned.
  Status Delete(VectorId global_id);

  std::size_t size() const;           ///< live vectors across all shards
  std::size_t capacity() const { return manifest_.size(); }  ///< next global id
  std::size_t dim() const { return shard(0).index().dim(); }
  IndexKind index_kind() const { return shard(0).index().kind(); }
  std::size_t num_shards() const { return replicas_.size(); }
  /// Replicas per shard (uniform; 1 for an unreplicated package).
  std::size_t replication_factor() const { return replicas_.front().size(); }
  /// The primary replica of shard s (the PR-2 accessor).
  const CloudServer& shard(std::size_t s) const { return replicas_[s].front(); }
  const CloudServer& replica(std::size_t s, std::size_t r) const {
    return replicas_[s][r];
  }
  const ShardManifest& manifest() const { return manifest_; }

  // ---- Replica health & fault injection (admin / test / bench surface).
  // In a multi-process deployment these flags would be driven by health
  // checks; in-process they simulate loss and stragglers deterministically.

  /// Marks a replica up/down. Down replicas are skipped at dispatch time by
  /// every search path and by hedging.
  void SetReplicaDown(std::size_t s, std::size_t r, bool down);
  bool replica_down(std::size_t s, std::size_t r) const;
  /// Injects a fixed artificial latency into every filter-phase execution on
  /// replica (s, r) — the straggler knob behind bench/fig11_tail_latency.
  void SetReplicaDelayMs(std::size_t s, std::size_t r, int delay_ms);
  /// Live replicas of shard s (R minus the ones marked down).
  std::size_t live_replicas(std::size_t s) const;

  std::size_t StorageBytes() const;

  /// Snapshots the whole package (including maintenance mutations) in the
  /// sharded envelope format (v1 when unreplicated, v2 otherwise).
  void SerializeDatabase(BinaryWriter* out) const;

 private:
  /// Mutable serving-tier state that must survive moves at a stable address:
  /// async work items capture a raw pointer to it (and to the CloudServers,
  /// whose heap slots are stable under vector move).
  struct Runtime;

  /// Waits until no abandoned async work item (hedge loser) is still
  /// touching the shards — losers cancel at their next claim-flag check, so
  /// this is short. Called before anything that mutates or releases shard
  /// state: Insert, Delete, move-assignment, destruction.
  void DrainAsyncWork() const;

  /// First live replica of shard s in replica order, or -1 if all are down.
  /// `skipped`, when non-null, accumulates how many down replicas were
  /// passed over.
  int FirstLiveReplica(std::size_t s, std::size_t* skipped = nullptr) const;

  /// One (query, shard) filter work item on a chosen replica: applies the
  /// injected delay, runs the k'-ANNS, and translates local ids to global.
  std::vector<Neighbor> FilterOnReplica(std::size_t s, std::size_t r,
                                        const QueryToken& token,
                                        std::size_t k_prime,
                                        std::size_t ef_search) const;

  /// The gather + refine shared by every search path: merges per-shard
  /// global-id candidates to the SAP-top-k', then (unless settings.refine is
  /// off) streams them through one DCE ComparisonHeap. Fills ids,
  /// filter_candidates, dce_comparisons, refine_seconds.
  SearchResult MergeAndRefine(const QueryToken& token, std::size_t k,
                              const SearchSettings& settings,
                              std::size_t k_prime,
                              std::vector<std::vector<Neighbor>> per_shard) const;

  std::vector<std::vector<CloudServer>> replicas_;  ///< [shard][replica]
  ShardManifest manifest_;
  /// Reverse of the manifest, per shard: local_to_global_[s][local] is the
  /// global id of shard s's local vector. Rebuilt at construction, extended
  /// by Insert. Shared by all replicas of a shard (identical id spaces).
  std::vector<std::vector<VectorId>> local_to_global_;
  std::unique_ptr<Runtime> runtime_;
};

}  // namespace ppanns

#endif  // PPANNS_CORE_SHARDED_CLOUD_SERVER_H_
