// The sharded, replicated cloud server: S replica groups of per-shard
// CloudServers behind the single-shard result contract.
//
// Search is scatter-gather. Every shard answers the full k'-ANNS filter
// phase over its own SecureFilterIndex (the scatter fans across the global
// ThreadPool), the per-shard candidates merge into the global SAP-top-k'
// (the same ciphertext-distance ranking the filter phase already exposes to
// the server, so no new leakage class), and exactly those k' candidates
// stream through a single DCE ComparisonHeap. The refine phase therefore
// spends the identical candidate budget as an unsharded server — with the
// exact (brute-force) filter backend and the same SAP layer (a sharded
// build's SAP ciphertexts match EncryptAndIndexParallel's row for row) the
// merged candidate set equals the unsharded one and the returned ids are
// identical.
//
// Replication makes the tier latency-hiding and loss-tolerant. Every shard
// may carry R byte-identical replicas; any replica answers for the shard
// with identical results, so
//  * replica loss fails over to the next live replica without changing a
//    single result id;
//  * SearchAsync fans (query, shard-replica) work items through ThreadPool
//    tasks and, when a shard misses the hedging deadline, runs the same work
//    on the shard's next-best live replica *inline on the gather thread* —
//    first answer wins, and the loser aborts mid-scan: the winner's claim
//    flag is registered as a cancellation source in the loser's
//    SearchContext, so its index hot loop stops at the next probe instead
//    of finishing a scan nobody will read;
//  * a shard whose every replica is down degrades to a partial result (flag
//    on SearchResult) or a Status, per AsyncOptions.
//
// Live mutation (the epoch-swap path). The whole serving state — replica
// groups, manifest, transports — lives in an immutable-on-swap ShardSet
// behind an EpochPtr. Every search pins the current set once and reads only
// it; structural maintenance (tombstone compaction, shard split) builds a
// NEW set off to the side and swaps the pointer, so in-flight searches
// finish on the old graph and never block, never crash, never see a
// half-state. Insert/Delete mutate the current set in place under the
// maintenance mutex (they keep the pre-existing contract: callers serialize
// mutation against their own searches); only compaction/split enjoy the
// stronger search-concurrent guarantee. See docs/architecture.md,
// "Live mutation path".

#ifndef PPANNS_CORE_SHARDED_CLOUD_SERVER_H_
#define PPANNS_CORE_SHARDED_CLOUD_SERVER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "common/epoch.h"
#include "common/status.h"
#include "common/types.h"
#include "core/cloud_server.h"
#include "core/sharded_database.h"
#include "net/shard_transport.h"

namespace ppanns {

/// Knobs of the asynchronous scatter-gather path (SearchAsync and the
/// hedged SearchBatchScattered overload).
struct AsyncOptions {
  /// Hedging deadline in milliseconds. When a work item has not answered
  /// this long after the scatter, the same work is dispatched to the
  /// shard's next-best live replica and the first answer wins; every
  /// further multiple of the deadline escalates to the replica after that.
  /// <= 0 disables hedging (the gather waits on the initial dispatch only).
  double hedge_ms = 5.0;
  /// What to do when every replica of a shard is down: true serves the
  /// remaining shards and sets SearchResult::partial; false fails the whole
  /// query with FailedPrecondition. A query is always failed when *no* shard
  /// has a live replica.
  bool allow_partial = true;
  /// Thread the hedge claim flag into every work item's SearchContext so a
  /// lost hedge aborts *mid-scan* (and mid-injected-delay) at its next
  /// cancellation probe. False restores pre-scan-only cancellation — the
  /// loser checks the claim once when its work item starts and then runs to
  /// completion, like a remote server that cannot be recalled — kept as the
  /// measurable baseline for bench/fig11's wasted-work comparison. Winner
  /// ids are identical either way; only the losers' wasted work differs.
  bool mid_scan_cancel = true;
};

/// The sharded, replicated serving tier: scatter-gathers Algorithm 2 across
/// S shards of R byte-identical replicas each, behind the single-shard
/// result contract. Offers a synchronous barrier gather (Search), an async
/// hedged gather that hides stragglers (SearchAsync), and a batch-level
/// (query, shard) fan-out (SearchBatchScattered); fails over on replica
/// loss with identical result ids; and keeps itself healthy under churn via
/// epoch-swapped tombstone compaction and shard splits.
class ShardedCloudServer {
 public:
  /// Knobs of the background/explicit maintenance path.
  struct MaintenanceOptions {
    /// Compact a shard once (capacity - live) / capacity crosses this.
    /// <= 0 compacts any shard with at least one tombstone; > 1 disables.
    double compact_threshold = 0.3;
    /// Split the heaviest shard when its live count exceeds `split_skew`
    /// times the mean live count across shards. <= 0 disables splitting.
    double split_skew = 0.0;
    /// Never split a shard below this many live vectors (splitting tiny
    /// shards buys nothing and costs a rebuild).
    std::size_t min_split_size = 64;
    /// Build threads for the off-thread index rebuild (the deterministic
    /// wave builder; any value >= 2 yields identical bytes).
    std::size_t build_threads = 1;
    /// Background worker poll interval, milliseconds.
    int poll_ms = 25;
  };

  /// Takes ownership of a validated package (Deserialize has already checked
  /// the manifest and replica-group consistency; owner-built packages are
  /// consistent by construction).
  explicit ShardedCloudServer(ShardedEncryptedDatabase db);

  /// Topology of a package whose shards live behind remote transports — what
  /// a ShardServer advertises in its handshake. A remote gather node holds no
  /// shard data, so these figures are the handshake-time snapshot.
  struct RemoteTopology {
    std::size_t num_shards = 0;
    std::size_t num_replicas = 0;
    std::size_t dim = 0;
    IndexKind index_kind = IndexKind::kHnsw;
    std::size_t size = 0;
    std::size_t capacity = 0;
    std::size_t storage_bytes = 0;
  };

  /// A gather node over remote shards: every (shard, replica) dispatches
  /// through the given transport (e.g. a RemoteShardClient) instead of an
  /// in-process CloudServer. All search paths — hedging, failover,
  /// load-aware dispatch, deadlines, cancellation — behave identically;
  /// maintenance (Insert/Delete/compaction/SerializeDatabase) is
  /// unavailable, and the refine phase runs over DCE ciphertexts shipped in
  /// the responses. `transports` must be a full num_shards x num_replicas
  /// grid.
  ShardedCloudServer(
      const RemoteTopology& topology,
      std::vector<std::vector<std::unique_ptr<ShardTransport>>> transports);

  /// Arms the remote mutation path of a gather node: every Insert/Delete/
  /// maintenance call broadcasts through ALL attached transports (each
  /// endpoint loads the full package, so replicated endpoints stay
  /// byte-identical the way in-process replicas do) and requires their
  /// outcomes to agree. Remote servers only; without transports the mutation
  /// surface stays NotSupported.
  void AttachMutationTransports(
      std::vector<std::unique_ptr<MutationTransport>> transports);

  /// Shares the cluster's epoch fence with this gather node: every remote
  /// mutation folds its post-apply state_version into the fence (monotonic
  /// max), and `state_version()` reads it — so the ResultCache invalidation
  /// epoch (mutation_epoch + state_version) tracks remote structural changes
  /// exactly like local ones. The same fence is fed by the channel pools'
  /// health pings. Remote servers only.
  void AttachRemoteEpochFence(
      std::shared_ptr<std::atomic<std::uint64_t>> fence);

  /// Stops the background maintenance worker, then waits for any abandoned
  /// async work items (hedge losers still running on the pool) before
  /// releasing the shards they read.
  ~ShardedCloudServer();

  /// Movable while quiescent: stop maintenance before moving (the
  /// background worker captures the object address).
  ShardedCloudServer(ShardedCloudServer&&) noexcept;
  ShardedCloudServer& operator=(ShardedCloudServer&&) noexcept;

  /// Algorithm 2 over every shard, merged through one DCE heap. Synchronous:
  /// the scatter still fans across the pool (inline inside a batch worker)
  /// but the gather is a barrier — one slow replica stalls the query, which
  /// is exactly what SearchAsync exists to avoid. Dispatch is load-aware:
  /// each shard serves from its least-inflight live replica (ties go to the
  /// lowest replica id, so an idle cluster behaves like the old
  /// first-live-in-order rule); a shard with no live replica is excluded and
  /// the result is marked partial. Thread-safe for concurrent const calls,
  /// like CloudServer::Search — including concurrently with a compaction or
  /// split swap (the query pins the pre-swap set and finishes on it). The
  /// `ctx` overload threads the caller's SearchContext into every per-shard
  /// scan (each shard runs a Child context; stats merge back), making the
  /// whole query cancellable and deadline-bounded.
  SearchResult Search(const QueryToken& token, std::size_t k,
                      const SearchSettings& settings = {}) const {
    return Search(token, k, settings, nullptr);
  }
  SearchResult Search(const QueryToken& token, std::size_t k,
                      const SearchSettings& settings, SearchContext* ctx) const;

  /// The asynchronous serving path: fans (query, shard-replica) work items
  /// across the global ThreadPool, hedges shards that miss
  /// `async.hedge_ms` onto their next-best live replica (first answer
  /// wins), and merges through the same DCE heap as Search. Hedge
  /// dispatches run inline on the gather thread — which was otherwise
  /// idle-waiting — so a hedge makes progress even when every pool worker
  /// is stuck behind a straggler. A lost hedge aborts mid-scan through the
  /// claim flag in its SearchContext (AsyncOptions::mid_scan_cancel).
  /// Results are identical to Search on a healthy cluster — replicas are
  /// byte-identical, so *which* replica answers never changes the ids.
  /// Degrades per AsyncOptions when every replica of a shard is down; fails
  /// with FailedPrecondition when no shard is serveable. Falls back to the
  /// inline synchronous scatter when called from a pool worker.
  Result<SearchResult> SearchAsync(const QueryToken& token, std::size_t k,
                                   const SearchSettings& settings = {},
                                   const AsyncOptions& async = {}) const {
    return SearchAsync(token, k, settings, async, nullptr);
  }
  Result<SearchResult> SearchAsync(const QueryToken& token, std::size_t k,
                                   const SearchSettings& settings,
                                   const AsyncOptions& async,
                                   SearchContext* ctx) const;

  /// Batch-level scatter: fans Q*S (query, shard) filter work items across
  /// the pool in one flat ParallelFor, then merges/refines per query — for
  /// small batches on many-core hosts this keeps every core busy where the
  /// per-query fan-out would leave (cores - S) idle. Results are identical
  /// to a sequential Search loop over the tokens (same candidates, same
  /// merge order); per-query filter_seconds is attributed from the
  /// (query, shard) items of that query. Honors the settings' deadline/node
  /// budget per query through per-item contexts.
  std::vector<SearchResult> SearchBatchScattered(
      std::span<const QueryToken> tokens, std::size_t k,
      const SearchSettings& settings = {}) const;

  /// Hedged batch scatter: the same Q*S fan-out, but every (query, shard)
  /// work item goes through the hedged claim-flag machinery SearchAsync
  /// uses — items that miss `async.hedge_ms` are re-dispatched to the
  /// shard's next-best live replica, first answer wins, losers abort
  /// mid-scan. Ids are identical to the unhedged overload. Falls back to
  /// the unhedged path when hedging is disabled or when called from a pool
  /// worker.
  std::vector<SearchResult> SearchBatchScattered(
      std::span<const QueryToken> tokens, std::size_t k,
      const SearchSettings& settings, const AsyncOptions& async) const;

  /// Links a freshly encrypted vector into every replica of the least-loaded
  /// shard and returns its dense *global* id. Serialized against maintenance
  /// by the maintenance mutex; callers serialize it against their own
  /// searches (the pre-existing mutation contract). On a remote server with
  /// attached MutationTransports the insert broadcasts to every endpoint and
  /// the endpoints must agree on (id, state_version, size) — a divergence
  /// fails with FailedPrecondition; without transports: NotSupported.
  Result<VectorId> Insert(const EncryptedVector& v);

  /// Removes the vector behind a global id (manifest lookup + per-replica
  /// delete on its shard). InvalidArgument if the id was never assigned;
  /// NotFound if it was already removed — including when a compaction has
  /// since physically dropped the tombstoned slot (a dead manifest ref).
  /// Broadcasts like Insert on a remote server with transports.
  Status Delete(VectorId global_id);

  // ---- Structural maintenance (the live-mutation tentpole). Runs locally
  // on a local server; on a remote server with attached MutationTransports
  // each op broadcasts the matching MaintenanceRequest to every endpoint.

  /// Rebuilds shard s without its tombstones: gathers the live rows in
  /// local-id order, builds a fresh filter index (deterministic wave
  /// builder) plus the compacted DCE array, stamps byte-identical replicas,
  /// rewrites the manifest (live ids relocate, tombstoned ids become dead
  /// refs) and swaps the new ShardSet in under the epoch pointer. In-flight
  /// searches finish on the old set; new ones see only the compacted shard.
  /// Result ids for live vectors are identical before and after.
  Status CompactShard(std::size_t s);

  /// Splits shard s in two by live rank: the first half keeps shard id s,
  /// the second half becomes a new shard appended at the end (global ids
  /// never change — only their (shard, local) locations). Both halves are
  /// rebuilt compacted, so a split also collects s's tombstones. Insert
  /// routing sees the new topology immediately.
  Status SplitShard(std::size_t s);

  /// One maintenance sweep: compacts every shard whose tombstone ratio
  /// crosses options.compact_threshold, then (when options.split_skew > 0)
  /// splits the heaviest shard if it exceeds split_skew times the mean live
  /// count and min_split_size. Returns the number of structural ops applied.
  Result<std::size_t> MaybeCompact(const MaintenanceOptions& options);

  /// Starts (or restarts) the background maintenance worker: a thread that
  /// runs MaybeCompact(options) every options.poll_ms. Searches never block
  /// on it — swaps are the only synchronization. Stop before destroying or
  /// moving the server (the destructor stops it too). Local only — a remote
  /// gather's maintenance is driven explicitly (or by the shard servers
  /// themselves).
  void StartMaintenance(const MaintenanceOptions& options);
  void StopMaintenance();

  // ---- Maintenance observability (admin / CLI surface).

  /// Tombstoned fraction of shard s: (capacity - live) / capacity of its
  /// primary index; 0 for an empty shard. Local only.
  double tombstone_ratio(std::size_t s) const;
  /// How many times shard s has been structurally rebuilt (compaction or
  /// split), surviving serialization round-trips. Local only.
  std::uint64_t last_compaction_epoch(std::size_t s) const;
  /// Monotonic count of structural maintenance ops applied to the package.
  /// 0 = never compacted (serializes as the byte-stable v1/v2 envelope);
  /// > 0 serializes as the checksummed v3 envelope. On a remote server this
  /// reads the attached epoch fence (the max post-apply state_version any
  /// mutation response or health ping has reported), 0 without a fence.
  std::uint64_t state_version() const;

  /// Live vectors across all shards (handshake-time snapshot when remote).
  std::size_t size() const;
  /// Next global id (dead refs still count — global ids are never reused).
  std::size_t capacity() const;
  std::size_t dim() const;
  IndexKind index_kind() const;
  std::size_t num_shards() const;
  /// Replicas per shard (uniform; 1 for an unreplicated package).
  std::size_t replication_factor() const;
  /// True when the shards live behind remote transports — no local replicas,
  /// no manifest, no maintenance.
  bool remote() const { return remote_; }
  /// The primary replica of shard s (the PR-2 accessor). Local servers only.
  /// The reference is into the *current* ShardSet: valid until the next
  /// structural maintenance op replaces it (exactly like iterators under
  /// mutation) — don't hold it across CompactShard/SplitShard/MaybeCompact.
  const CloudServer& shard(std::size_t s) const;
  const CloudServer& replica(std::size_t s, std::size_t r) const;
  /// Same currency caveat as shard().
  const ShardManifest& manifest() const;

  /// The server-side entry of the RPC boundary: one filter scan on replica
  /// (s, r), exactly as a gather-side transport dispatches it — injected
  /// delay, context-bounded scan, global-id translation — plus the
  /// candidates' DCE ciphertexts when options.want_dce is set (the remote
  /// gather holds no shard data to refine against). Local servers only.
  Status FilterShard(std::size_t s, std::size_t r, const QueryToken& token,
                     const ShardFilterOptions& options, SearchContext* ctx,
                     ShardFilterResult* out) const;

  // ---- Replica health & fault injection (admin / test / bench surface).
  // In a multi-process deployment these flags would be driven by health
  // checks; in-process they simulate loss and stragglers deterministically.
  // Compaction carries the down/delay flags onto the rebuilt group, so a
  // fault injection survives maintenance.

  /// Marks a replica up/down. Down replicas are skipped at dispatch time by
  /// every search path and by hedging.
  void SetReplicaDown(std::size_t s, std::size_t r, bool down);
  bool replica_down(std::size_t s, std::size_t r) const;
  /// Injects a fixed artificial latency into every filter-phase execution on
  /// replica (s, r) — the straggler knob behind bench/fig11_tail_latency.
  /// The delay is served in interruptible slices: a cancelled work item
  /// (lost hedge, expired deadline) wakes out of it within ~1 ms.
  void SetReplicaDelayMs(std::size_t s, std::size_t r, int delay_ms);
  /// Live replicas of shard s (R minus the ones marked down).
  std::size_t live_replicas(std::size_t s) const;

  // ---- Load-aware dispatch observability (admin / test / bench surface).

  /// Biases the load-aware dispatcher by `delta` outstanding requests on
  /// replica (s, r) — an external load hint. In a multi-process deployment
  /// this would be fed by the dispatcher's own outstanding-request counts;
  /// in-process it makes load-aware routing deterministic to test. The bias
  /// does not survive a compaction of the shard (the rebuilt group starts
  /// with zero in-flight — old dispatches drain against the old group).
  void AddReplicaLoad(std::size_t s, std::size_t r, int delta);
  /// Filter scans currently in flight (plus any AddReplicaLoad bias) on
  /// replica (s, r) — the quantity the dispatcher minimizes.
  int replica_inflight(std::size_t s, std::size_t r) const;
  /// Filter scans that actually started on replica (s, r) since
  /// construction (cancelled-before-scan work items do not count).
  std::size_t replica_requests(std::size_t s, std::size_t r) const;

  // ---- Wasted-work accounting (the mid-scan-abort win, bench/fig11).

  /// Cumulative nodes scored by hedge work items that lost the claim race,
  /// across the server's lifetime. Drains in-flight async work first so
  /// late losers are counted; read deltas around a workload to attribute.
  std::size_t CancelledWorkNodes() const;
  /// Cumulative count of lost hedge work items (same draining rule).
  std::size_t CancelledScans() const;

  std::size_t StorageBytes() const;

  /// Snapshots the whole package (including maintenance mutations) in the
  /// sharded envelope format: v1 when unreplicated, v2 when replicated, and
  /// the checksummed v3 once any structural maintenance has run
  /// (state_version > 0).
  void SerializeDatabase(BinaryWriter* out) const;

  // Implementation-detail types, forward-declared here so the .cc's
  // file-local helpers can name them; the definitions never leave the .cc.
  /// The immutable-on-swap serving state: replica groups, manifest,
  /// transports. Searches pin it through the EpochPtr; maintenance swaps a
  /// new one in.
  struct ShardSet;
  /// Global counters that must survive swaps at a stable address (async
  /// work items capture a raw pointer to it).
  struct Runtime;
  /// Maintenance mutex, options and the background worker thread.
  struct Maintenance;

 private:
  /// Waits until no abandoned async work item (hedge loser) is still
  /// touching the shards — losers cancel at their next claim-flag check, so
  /// this is short. Called before in-place mutation (Insert/Delete),
  /// move-assignment and destruction. Structural maintenance does NOT need
  /// it: old-set readers keep their pin.
  void DrainAsyncWork() const;

  /// A replica is unserveable when the admin flagged it down OR its
  /// transport can no longer reach it; failover treats both identically.
  static bool ReplicaDown(const ShardSet& set, std::size_t s, std::size_t r);

  /// First live replica of shard s in replica order, or -1 if all are down.
  /// `skipped`, when non-null, accumulates how many down replicas were
  /// passed over.
  static int FirstLiveReplica(const ShardSet& set, std::size_t s,
                              std::size_t* skipped = nullptr);

  /// Load-aware dispatch: the least-inflight live replica of shard s (ties
  /// to the lowest replica id), or -1 if all are down. `skipped` accumulates
  /// the down replicas ahead of the first live one, preserving the
  /// first-live accounting of SearchCounters::replicas_skipped.
  static int PickReplica(const ShardSet& set, std::size_t s,
                         std::size_t* skipped = nullptr);

  /// One (query, shard) filter work item through the replica's transport —
  /// in-process scan or remote RPC, interchangeably — maintaining the
  /// replica's inflight/request counters around the dispatch. A non-OK
  /// Status means the scan could not run (dead connection, server shed);
  /// `out` is then empty.
  static Status FilterVia(const ShardSet& set, std::size_t s, std::size_t r,
                          const QueryToken& token,
                          const ShardFilterOptions& options, SearchContext* ctx,
                          ShardFilterResult* out);

  /// The per-scan knobs every dispatch of a query shares. want_dce is set
  /// only on remote servers with refinement on — a local gather reads
  /// ciphertexts in place.
  ShardFilterOptions MakeFilterOptions(std::size_t k_prime,
                                       const SearchSettings& settings) const;

  /// The gather + refine shared by every search path: merges per-shard
  /// global-id candidates to the SAP-top-k', then (unless settings.refine is
  /// off) streams them through one DCE ComparisonHeap, probing `ctx`
  /// between comparisons. A local server resolves ciphertexts through the
  /// pinned set's manifest; a remote one refines over the ciphertexts
  /// shipped in the per-shard answers. Fills ids, filter_candidates,
  /// dce_comparisons, refine_seconds, and the context-derived counters.
  SearchResult MergeAndRefine(const ShardSet& set, const QueryToken& token,
                              std::size_t k, const SearchSettings& settings,
                              std::size_t k_prime,
                              std::vector<ShardFilterResult> per_shard,
                              SearchContext* ctx) const;

  /// One hedged work item: tokens[token_index] scattered to `shard`.
  struct ScatterItem {
    std::size_t token_index = 0;
    std::size_t shard = 0;
  };
  /// What a hedged scatter produced, indexed like `items`.
  struct ScatterOutcome {
    std::vector<ShardFilterResult> answers;  ///< global-id candidates (+ DCE)
    std::vector<SearchStats> stats;          ///< the winning scan's stats
    std::vector<EarlyExit> exits;                ///< the winning scan's reason
    std::vector<double> item_seconds;            ///< winning dispatch's time
    std::vector<std::size_t> hedges;             ///< hedge dispatches per item
    std::size_t hedged_requests = 0;             ///< sum of `hedges`
    std::size_t replicas_skipped = 0;
    /// Loser nodes observed by the time the gather finished (late losers
    /// land only in the Runtime-wide cumulative counters).
    std::size_t wasted_nodes = 0;
  };

  /// The hedged claim-flag scatter shared by SearchAsync (one item per
  /// shard) and the hedged SearchBatchScattered (one item per query-shard
  /// pair). Dispatches every item to its load-aware replica on the pool,
  /// escalates items that miss async.hedge_ms to the shard's next-best live
  /// replica *inline on the gather thread*, and aborts losers mid-scan via
  /// the claim flag when async.mid_scan_cancel is set. The coordinator
  /// keeps `set` pinned until the last loser finishes, so a compaction swap
  /// mid-query can never free state a straggler still reads. `parent_ctx`
  /// contributes the deadline and external cancellation flags every work
  /// item inherits (Child contexts); its own stats are not written. Items
  /// must target shards with at least one live replica.
  ScatterOutcome RunHedgedScatter(std::shared_ptr<const ShardSet> set,
                                  std::span<const QueryToken> tokens,
                                  std::span<const ScatterItem> items,
                                  const ShardFilterOptions& options,
                                  const AsyncOptions& async,
                                  SearchContext* parent_ctx) const;

  /// CompactShard/SplitShard bodies, caller holds the maintenance mutex.
  Status CompactShardLocked(std::size_t s, std::size_t build_threads);
  Status SplitShardLocked(std::size_t s, std::size_t build_threads);

  /// The remote broadcast core: runs `apply` against every attached
  /// MutationTransport under the maintenance mutex, requires the outcomes to
  /// agree on (status code, id, state_version, size), folds the agreed
  /// state_version into the epoch fence, and returns the agreed outcome.
  /// Caller must hold no locks. NotSupported without transports.
  Result<MutationOutcome> BroadcastMutation(
      const char* what,
      const std::function<Result<MutationOutcome>(MutationTransport&)>& apply);

  /// The epoch-swapped serving state. unique_ptr so ShardSet can stay
  /// incomplete in the header; never null after construction.
  std::unique_ptr<EpochPtr<ShardSet>> set_;
  RemoteTopology topology_{};  ///< meaningful only when remote_
  bool remote_ = false;
  std::unique_ptr<Runtime> runtime_;
  std::unique_ptr<Maintenance> maintenance_;
  /// Remote mutation fan-out (empty on local servers and on remote gathers
  /// whose caller never attached one — mutations then stay NotSupported).
  std::vector<std::unique_ptr<MutationTransport>> mutation_transports_;
  /// Cluster-wide structural-epoch fence (remote only; may be null).
  std::shared_ptr<std::atomic<std::uint64_t>> remote_epoch_;
};

}  // namespace ppanns

#endif  // PPANNS_CORE_SHARDED_CLOUD_SERVER_H_
