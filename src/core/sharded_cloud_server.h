// The sharded cloud server: S per-shard CloudServers behind the single-shard
// result contract.
//
// Search is scatter-gather. Every shard answers the full k'-ANNS filter
// phase over its own SecureFilterIndex (the scatter fans across the global
// ThreadPool), the per-shard candidates merge into the global SAP-top-k'
// (the same ciphertext-distance ranking the filter phase already exposes to
// the server, so no new leakage class), and exactly those k' candidates
// stream through a single DCE ComparisonHeap. The refine phase therefore
// spends the identical candidate budget as an unsharded server — with the
// exact (brute-force) filter backend and the same SAP layer (a sharded
// build's SAP ciphertexts match EncryptAndIndexParallel's row for row) the
// merged candidate set equals the unsharded one and the returned ids are
// identical.
//
// Maintenance keeps the manifest authoritative: Insert routes to the
// least-loaded shard and appends the new (shard, local) location under the
// next dense global id; Delete resolves the global id through the manifest.

#ifndef PPANNS_CORE_SHARDED_CLOUD_SERVER_H_
#define PPANNS_CORE_SHARDED_CLOUD_SERVER_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "core/cloud_server.h"
#include "core/sharded_database.h"

namespace ppanns {

class ShardedCloudServer {
 public:
  /// Takes ownership of a validated package (Deserialize has already checked
  /// the manifest; owner-built packages are consistent by construction).
  explicit ShardedCloudServer(ShardedEncryptedDatabase db);

  /// Algorithm 2 over every shard, merged through one DCE heap. Thread-safe
  /// for concurrent const calls, like CloudServer::Search.
  SearchResult Search(const QueryToken& token, std::size_t k,
                      const SearchSettings& settings = {}) const;

  /// Links a freshly encrypted vector into the least-loaded shard and
  /// returns its dense *global* id.
  VectorId Insert(const EncryptedVector& v);

  /// Removes the vector behind a global id (manifest lookup + per-shard
  /// delete). InvalidArgument if the id was never assigned.
  Status Delete(VectorId global_id);

  std::size_t size() const;           ///< live vectors across all shards
  std::size_t capacity() const { return manifest_.size(); }  ///< next global id
  std::size_t dim() const { return shards_.front().index().dim(); }
  IndexKind index_kind() const { return shards_.front().index().kind(); }
  std::size_t num_shards() const { return shards_.size(); }
  const CloudServer& shard(std::size_t s) const { return shards_[s]; }
  const ShardManifest& manifest() const { return manifest_; }

  std::size_t StorageBytes() const;

  /// Snapshots the whole package (including maintenance mutations) in the
  /// sharded envelope format.
  void SerializeDatabase(BinaryWriter* out) const;

 private:
  std::vector<CloudServer> shards_;
  ShardManifest manifest_;
  /// Reverse of the manifest, per shard: local_to_global_[s][local] is the
  /// global id of shard s's local vector. Rebuilt at construction, extended
  /// by Insert.
  std::vector<std::vector<VectorId>> local_to_global_;
};

}  // namespace ppanns

#endif  // PPANNS_CORE_SHARDED_CLOUD_SERVER_H_
