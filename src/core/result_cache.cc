#include "core/result_cache.h"

#include <cstring>

#include "core/cloud_server.h"
#include "core/query_client.h"

namespace ppanns {
namespace {

std::size_t RoundUpPow2(std::size_t x) {
  std::size_t p = 1;
  while (p < x) p <<= 1;
  return p;
}

/// Streaming 128-bit mixer: lo is FNV-1a (byte-serial, well studied), hi is
/// a splitmix-style multiply-xorshift over the same stream with a different
/// seed. The two halves are computed from independent recurrences, so a
/// collision in one is uncorrelated with the other — the full 128-bit key is
/// compared on lookup, making accidental aliasing astronomically unlikely.
class Mix128 {
 public:
  void Bytes(const void* data, std::size_t len) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < len; ++i) {
      lo_ = (lo_ ^ p[i]) * 0x100000001B3ull;           // FNV-1a 64 prime
      hi_ = (hi_ ^ (p[i] + 0x9E3779B97F4A7C15ull));    // golden-ratio seed
      hi_ *= 0xBF58476D1CE4E5B9ull;
      hi_ ^= hi_ >> 27;
    }
  }

  void U64(std::uint64_t v) { Bytes(&v, sizeof(v)); }

  ResultCache::Key Finish() {
    // Final avalanche so short inputs still spread across stripe bits.
    hi_ ^= hi_ >> 31;
    hi_ *= 0x94D049BB133111EBull;
    hi_ ^= hi_ >> 31;
    return ResultCache::Key{lo_, hi_};
  }

 private:
  std::uint64_t lo_ = 0xCBF29CE484222325ull;  // FNV-1a 64 offset basis
  std::uint64_t hi_ = 0x2545F4914F6CDD1Dull;
};

}  // namespace

ResultCache::ResultCache(const ResultCacheOptions& options) {
  const std::size_t n = RoundUpPow2(options.stripes == 0 ? 1 : options.stripes);
  stripes_ = std::vector<Stripe>(n);
  per_stripe_capacity_ =
      options.capacity < n ? 1 : (options.capacity + n - 1) / n;
  capacity_ = per_stripe_capacity_ * n;
}

ResultCache::Key ResultCache::MakeKey(const QueryToken& token, std::size_t k,
                                      const SearchSettings& settings) {
  Mix128 mix;
  // Only the id-shaping knobs: deadline/admission/hedging never change the
  // ids of a completed query, and only completed queries are cached.
  mix.U64(static_cast<std::uint64_t>(k));
  mix.U64(static_cast<std::uint64_t>(settings.k_prime));
  mix.U64(static_cast<std::uint64_t>(settings.ef_search));
  mix.U64(settings.refine ? 1 : 0);
  mix.U64(static_cast<std::uint64_t>(settings.node_budget));
  // Length prefixes keep (sap, trapdoor) framing unambiguous.
  mix.U64(static_cast<std::uint64_t>(token.sap.size()));
  mix.Bytes(token.sap.data(), token.sap.size() * sizeof(float));
  mix.U64(static_cast<std::uint64_t>(token.trapdoor.data.size()));
  mix.Bytes(token.trapdoor.data.data(),
            token.trapdoor.data.size() * sizeof(double));
  return mix.Finish();
}

bool ResultCache::Lookup(const Key& key, std::uint64_t epoch,
                         std::vector<VectorId>* ids) {
  Stripe& stripe = StripeFor(key);
  {
    std::lock_guard<std::mutex> lock(stripe.mu);
    auto it = stripe.map.find(key);
    if (it != stripe.map.end()) {
      if (it->second->epoch == epoch) {
        *ids = it->second->ids;
        stripe.lru.splice(stripe.lru.begin(), stripe.lru, it->second);
        hits_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
      // Stamped against a database state that no longer exists: the answer
      // may differ from a fresh search, so it must never be served.
      stripe.lru.erase(it->second);
      stripe.map.erase(it);
      stale_evictions_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void ResultCache::Insert(const Key& key, std::uint64_t epoch,
                         const std::vector<VectorId>& ids) {
  Stripe& stripe = StripeFor(key);
  std::lock_guard<std::mutex> lock(stripe.mu);
  auto it = stripe.map.find(key);
  if (it != stripe.map.end()) {
    // A concurrent search of the same token finished first; refresh in
    // place (the newer epoch wins — stamps only move forward).
    it->second->epoch = epoch;
    it->second->ids = ids;
    stripe.lru.splice(stripe.lru.begin(), stripe.lru, it->second);
    return;
  }
  if (stripe.lru.size() >= per_stripe_capacity_) {
    stripe.map.erase(stripe.lru.back().key);
    stripe.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  stripe.lru.push_front(Entry{key, epoch, ids});
  stripe.map.emplace(key, stripe.lru.begin());
  insertions_.fetch_add(1, std::memory_order_relaxed);
}

void ResultCache::Clear() {
  for (Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mu);
    stripe.lru.clear();
    stripe.map.clear();
  }
}

ResultCacheStats ResultCache::Stats() const {
  ResultCacheStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.insertions = insertions_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.stale_evictions = stale_evictions_.load(std::memory_order_relaxed);
  for (const Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(const_cast<Stripe&>(stripe).mu);
    stats.entries += stripe.lru.size();
  }
  return stats;
}

}  // namespace ppanns
