// Typed payload codecs for the WAL record types (common/wal.h keeps the
// framing generic — the common layer cannot depend on core's ciphertext
// types, so the encode/decode of what an Insert/Remove actually carries
// lives here).
//
// An Insert payload is the full EncryptedVector (the SAP row plus the DCE
// ciphertext) — exactly what `PpannsService::Insert` was handed, so replay
// needs no keys and no re-encryption. A Remove payload is the u64 global id.
// Every codec round-trips with exact ByteSize (pinned by
// tests/core/wal_test.cc, mirroring the wire-message contract in src/net).

#ifndef PPANNS_CORE_WAL_RECORDS_H_
#define PPANNS_CORE_WAL_RECORDS_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "core/encrypted_database.h"

namespace ppanns {

/// [vec<f32> sap][u64 block][vec<f64> data]
std::vector<std::uint8_t> EncodeWalInsert(const EncryptedVector& ev);
Result<EncryptedVector> DecodeWalInsert(const std::vector<std::uint8_t>& payload);
std::size_t WalInsertByteSize(const EncryptedVector& ev);

/// [u64 global_id]
std::vector<std::uint8_t> EncodeWalRemove(VectorId global_id);
Result<VectorId> DecodeWalRemove(const std::vector<std::uint8_t>& payload);
std::size_t WalRemoveByteSize();

}  // namespace ppanns

#endif  // PPANNS_CORE_WAL_RECORDS_H_
