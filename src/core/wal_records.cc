#include "core/wal_records.h"

#include "common/serialize.h"

namespace ppanns {

std::vector<std::uint8_t> EncodeWalInsert(const EncryptedVector& ev) {
  BinaryWriter w;
  w.PutVector(ev.sap);
  w.Put<std::uint64_t>(ev.dce.block);
  w.PutVector(ev.dce.data);
  return w.TakeBuffer();
}

Result<EncryptedVector> DecodeWalInsert(const std::vector<std::uint8_t>& payload) {
  BinaryReader r(payload);
  EncryptedVector ev;
  PPANNS_RETURN_IF_ERROR(r.GetVector(&ev.sap));
  std::uint64_t block = 0;
  PPANNS_RETURN_IF_ERROR(r.Get(&block));
  ev.dce.block = static_cast<std::size_t>(block);
  PPANNS_RETURN_IF_ERROR(r.GetVector(&ev.dce.data));
  if (!r.AtEnd()) {
    return Status::IOError("wal insert record: trailing bytes");
  }
  return ev;
}

std::size_t WalInsertByteSize(const EncryptedVector& ev) {
  return sizeof(std::uint64_t) + ev.sap.size() * sizeof(float) +
         sizeof(std::uint64_t) + sizeof(std::uint64_t) +
         ev.dce.data.size() * sizeof(double);
}

std::vector<std::uint8_t> EncodeWalRemove(VectorId global_id) {
  BinaryWriter w;
  w.Put<std::uint64_t>(global_id);
  return w.TakeBuffer();
}

Result<VectorId> DecodeWalRemove(const std::vector<std::uint8_t>& payload) {
  BinaryReader r(payload);
  std::uint64_t id = 0;
  PPANNS_RETURN_IF_ERROR(r.Get(&id));
  if (!r.AtEnd()) {
    return Status::IOError("wal remove record: trailing bytes");
  }
  if (id > 0xFFFFFFFFull) {
    return Status::IOError("wal remove record: id out of range");
  }
  return static_cast<VectorId>(id);
}

std::size_t WalRemoveByteSize() { return sizeof(std::uint64_t); }

}  // namespace ppanns
