// The server-side encrypted database: SAP ciphertexts (inside the filter
// index), DCE ciphertexts, and nothing else. Produced by the data owner,
// consumed by the cloud server (Fig. 3, B1/B2).

#ifndef PPANNS_CORE_ENCRYPTED_DATABASE_H_
#define PPANNS_CORE_ENCRYPTED_DATABASE_H_

#include <memory>
#include <vector>

#include "common/serialize.h"
#include "common/status.h"
#include "crypto/dce.h"
#include "index/secure_filter_index.h"

namespace ppanns {

/// One vector's outsourceable ciphertext pair (used for insertions).
struct EncryptedVector {
  std::vector<float> sap;  ///< SAP ciphertext, length d
  DceCiphertext dce;       ///< DCE ciphertext, 4 x (2 d_pad + 16)
};

/// The complete outsourced package. The filter index is built over the SAP
/// ciphertexts (it owns them; `index->data()` is C_P^SAP), `dce` holds
/// C_P^DCE aligned by VectorId. The backend kind travels inside the index's
/// serialized envelope, so Deserialize reconstructs the right substrate.
struct EncryptedDatabase {
  std::unique_ptr<SecureFilterIndex> index;
  std::vector<DceCiphertext> dce;

  /// Bytes of the DCE layer (space accounting, Section V-C).
  std::size_t DceBytes() const {
    std::size_t total = 0;
    for (const auto& c : dce) total += c.data.size() * sizeof(double);
    return total;
  }

  void Serialize(BinaryWriter* out) const;
  static Result<EncryptedDatabase> Deserialize(BinaryReader* in);
};

}  // namespace ppanns

#endif  // PPANNS_CORE_ENCRYPTED_DATABASE_H_
