// PpannsService — the serving facade over a CloudServer.
//
// CloudServer is the paper-faithful core: it trusts its inputs (malformed
// tokens are programmer errors) and answers one query at a time. The service
// wraps it with what production serving needs:
//  * input validation — dimension mismatches, k = 0, an empty database, or a
//    malformed trapdoor come back as Status instead of undefined behavior;
//  * batched execution — SearchBatch fans a token batch across the global
//    ThreadPool and aggregates per-query counters into a BatchCounters
//    summary, returning results bitwise identical to a sequential loop.
//
// Every future scaling layer (sharding, caching, async) composes on this
// seam rather than on CloudServer directly.

#ifndef PPANNS_CORE_PPANNS_SERVICE_H_
#define PPANNS_CORE_PPANNS_SERVICE_H_

#include <cstddef>
#include <span>
#include <vector>

#include "common/status.h"
#include "core/cloud_server.h"

namespace ppanns {

/// Aggregated instrumentation for one SearchBatch call.
struct BatchCounters {
  std::size_t num_queries = 0;
  std::size_t total_filter_candidates = 0;
  std::size_t total_dce_comparisons = 0;
  /// Per-query seconds summed across the batch (CPU view; exceeds wall time
  /// under parallel execution).
  double total_filter_seconds = 0.0;
  double total_refine_seconds = 0.0;
  /// End-to-end wall seconds of the batch, including fan-out overhead.
  double wall_seconds = 0.0;
};

/// Results for one token batch, aligned with the input order.
struct BatchSearchResult {
  std::vector<SearchResult> results;
  BatchCounters counters;
};

class PpannsService {
 public:
  explicit PpannsService(CloudServer server) : server_(std::move(server)) {}

  /// Validated single-query search (Algorithm 2 through CloudServer).
  ///   InvalidArgument  — k = 0, SAP/trapdoor dimension mismatch
  ///   FailedPrecondition — empty database
  Result<SearchResult> Search(const QueryToken& token, std::size_t k,
                              const SearchSettings& settings = {}) const;

  /// Runs every token through Search semantics, fanned across the global
  /// ThreadPool. All tokens are validated before any work starts; the result
  /// vector is aligned with `tokens` and bitwise identical to a sequential
  /// Search loop (each query is independent and deterministic).
  Result<BatchSearchResult> SearchBatch(std::span<const QueryToken> tokens,
                                        std::size_t k,
                                        const SearchSettings& settings = {}) const;

  /// Validated maintenance (Section V-D).
  Result<VectorId> Insert(const EncryptedVector& v);
  Status Delete(VectorId id);

  std::size_t size() const { return server_.size(); }
  std::size_t dim() const { return server_.index().dim(); }
  IndexKind index_kind() const { return server_.index().kind(); }
  std::size_t StorageBytes() const { return server_.StorageBytes(); }
  const CloudServer& server() const { return server_; }

 private:
  /// Shared validation for Search/SearchBatch.
  Status ValidateQuery(const QueryToken& token, std::size_t k,
                       const SearchSettings& settings) const;

  CloudServer server_;
};

}  // namespace ppanns

#endif  // PPANNS_CORE_PPANNS_SERVICE_H_
