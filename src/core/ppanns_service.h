// PpannsService — the serving facade over a CloudServer or a
// ShardedCloudServer.
//
// The server cores are paper-faithful: they trust their inputs (malformed
// tokens are programmer errors) and answer one query at a time. The service
// wraps either topology behind one validated API:
//  * input validation — dimension mismatches, k = 0, an empty database, a
//    malformed trapdoor, or a mis-shaped insert come back as Status instead
//    of undefined behavior;
//  * batched execution — SearchBatch fans a token batch across the global
//    ThreadPool and aggregates per-query counters into a BatchCounters
//    summary, returning results bitwise identical to a sequential loop;
//  * topology transparency — Search/SearchBatch/Insert/Delete behave
//    identically over one index or over S shards (inserts route to the
//    least-loaded shard, deletes resolve through the manifest), so scaling
//    out is a deployment decision, not an API change;
//  * durability — with a WAL attached (AttachWal), every accepted mutation
//    is logged before it is applied, Checkpoint snapshots atomically and
//    truncates the log, and ReplayWal reconstructs a crashed process's
//    state from its last checkpoint plus the surviving log.

#ifndef PPANNS_CORE_PPANNS_SERVICE_H_
#define PPANNS_CORE_PPANNS_SERVICE_H_

#include <cstddef>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "common/search_context.h"
#include "common/status.h"
#include "common/wal.h"
#include "core/cloud_server.h"
#include "core/result_cache.h"
#include "core/sharded_cloud_server.h"

namespace ppanns {

/// Aggregated instrumentation for one SearchBatch call.
struct BatchCounters {
  std::size_t num_queries = 0;
  std::size_t total_filter_candidates = 0;
  std::size_t total_dce_comparisons = 0;
  /// SearchStats totals across the batch: rows scored and distance
  /// computations spent by the winning scans.
  std::size_t total_nodes_visited = 0;
  std::size_t total_distance_computations = 0;
  /// Hedge dispatches issued by the hedged batch scatter (0 without one).
  std::size_t total_hedged_requests = 0;
  /// Per-query seconds summed across the batch (CPU view; exceeds wall time
  /// under parallel execution).
  double total_filter_seconds = 0.0;
  double total_refine_seconds = 0.0;
  /// Queries answered from the result cache (0 with the cache disabled).
  /// Cached queries contribute nothing to the work totals above — no
  /// filter/refine ran for them.
  std::size_t total_cache_hits = 0;
  /// End-to-end wall seconds of the batch, including fan-out overhead.
  double wall_seconds = 0.0;
};

/// Results for one token batch, aligned with the input order.
struct BatchSearchResult {
  std::vector<SearchResult> results;
  BatchCounters counters;
};

/// The validated, batched serving facade over either server topology (one
/// CloudServer or a ShardedCloudServer). Turns malformed input into Status
/// instead of undefined behavior, fans batches across the global
/// ThreadPool, exposes the async hedged path on sharded deployments, and
/// keeps Search/SearchBatch/Insert/Delete semantics identical across
/// topologies — scaling out is a deployment decision, not an API change.
class PpannsService {
 public:
  explicit PpannsService(CloudServer server) : server_(std::move(server)) {}
  explicit PpannsService(ShardedCloudServer server)
      : server_(std::move(server)) {}

  /// Validated single-query search (Algorithm 2 through the server core).
  ///   InvalidArgument  — k = 0, SAP/trapdoor dimension mismatch
  ///   FailedPrecondition — empty database
  ///   DeadlineExceeded — settings.deadline_ms (or a caller-context
  ///       deadline) expired before the query finished; every layer stopped
  ///       cooperatively mid-scan
  /// Every result's counters carry the query's SearchStats (nodes visited,
  /// distance computations, DCE comparisons, early-exit reason). The `ctx`
  /// overload lets the caller own the context — register a cancellation
  /// flag, set a deadline or node budget up front, read the stats back; a
  /// caller-cancelled query returns its partial result with
  /// counters.early_exit == kCancelled rather than a Status.
  Result<SearchResult> Search(const QueryToken& token, std::size_t k,
                              const SearchSettings& settings = {}) const {
    return Search(token, k, settings, nullptr);
  }
  Result<SearchResult> Search(const QueryToken& token, std::size_t k,
                              const SearchSettings& settings,
                              SearchContext* ctx) const;

  /// Validated asynchronous search. On a sharded topology this is the
  /// latency-hiding path: (query, shard-replica) work items fan across the
  /// ThreadPool, shards that miss `async.hedge_ms` are hedged onto their
  /// next live replica (first answer wins), and a shard with no live
  /// replica degrades per AsyncOptions (partial flag or Status). On the
  /// single-index topology it behaves exactly like Search (there is nothing
  /// to hedge). Result ids are identical to Search on a healthy cluster.
  Result<SearchResult> SearchAsync(const QueryToken& token, std::size_t k,
                                   const SearchSettings& settings = {},
                                   const AsyncOptions& async = {}) const {
    return SearchAsync(token, k, settings, async, nullptr);
  }
  Result<SearchResult> SearchAsync(const QueryToken& token, std::size_t k,
                                   const SearchSettings& settings,
                                   const AsyncOptions& async,
                                   SearchContext* ctx) const;

  /// Runs every token through Search semantics, fanned across the global
  /// ThreadPool. All tokens are validated before any work starts; the result
  /// vector is aligned with `tokens` and bitwise identical to a sequential
  /// Search loop (each query is independent and deterministic).
  ///
  /// On a sharded topology the fan-out is batch-level: all Q*S
  /// (query, shard) filter work items spread across the pool as one flat
  /// list, so a batch smaller than the core count still fills the machine
  /// and one slow shard only stalls its own work items, not a whole worker's
  /// query queue.
  Result<BatchSearchResult> SearchBatch(std::span<const QueryToken> tokens,
                                        std::size_t k,
                                        const SearchSettings& settings = {}) const;

  /// SearchBatch with hedging: on a sharded topology the Q*S (query, shard)
  /// work items run through the same hedged claim-flag scatter SearchAsync
  /// uses — items missing `async.hedge_ms` re-dispatch to the shard's
  /// next-best live replica, first answer wins, losers abort mid-scan. Ids
  /// are identical to the unhedged SearchBatch. On the single-index
  /// topology (nothing to hedge) it behaves exactly like SearchBatch.
  Result<BatchSearchResult> SearchBatch(std::span<const QueryToken> tokens,
                                        std::size_t k,
                                        const SearchSettings& settings,
                                        const AsyncOptions& async) const;

  /// Validated maintenance (Section V-D). Insert rejects an EncryptedVector
  /// whose SAP length differs from dim() or whose DCE payload is not the
  /// four blocks of 2*d_pad+16 doubles the dimension dictates; on a sharded
  /// server the accepted vector routes to the least-loaded shard and the
  /// returned id is global. On a gather node over remote shards the
  /// mutation broadcasts through the cluster's MutationTransports
  /// (ConnectCluster attaches them) — identical semantics over the wire, or
  /// NotSupported when the connection predates the mutation protocol.
  Result<VectorId> Insert(const EncryptedVector& v);
  Status Delete(VectorId id);

  /// Attaches a write-ahead log under `dir`: from here on, every accepted
  /// Insert/Delete appends a checksummed record *before* mutating in-memory
  /// state, so durable state is always "last checkpoint + current log". The
  /// directory is created if needed; existing segments are never appended to
  /// (a fresh segment opens at the recovered lsn), so attaching to a
  /// directory that still holds records is safe — but replay them FIRST
  /// (ReplayWal), or the recovered mutations are lost from this process's
  /// view. NotSupported on a remote gather node (mutations live on the shard
  /// servers).
  Status AttachWal(const std::string& dir, WalOptions options = {});

  /// Crash recovery: re-applies every intact record in `dir` against the
  /// currently loaded package, in lsn order, stopping cleanly at the first
  /// torn record. Apply bypasses the attached WAL (no re-logging). A Delete
  /// that fails with NotFound/InvalidArgument is skipped — append-before-
  /// apply means a logged op may have failed identically in the original
  /// run. Returns the number of records applied. Call before AttachWal when
  /// reopening the same directory.
  Result<std::size_t> ReplayWal(const std::string& dir);

  /// Durably snapshots the package to `path` (write-temp-then-rename, so a
  /// crash mid-checkpoint leaves the old file intact) and truncates the
  /// attached WAL — the log only needs to reconstruct mutations after the
  /// last checkpoint. Works without a WAL attached (plain atomic snapshot).
  Status Checkpoint(const std::string& path);

  bool wal_attached() const { return wal_.has_value(); }
  /// Segment/byte/lsn stats of the attached WAL (PPANNS_CHECK if none).
  WalStats wal_stats() const;

  /// Enables the trapdoor-keyed hot-query result cache. From here on, a
  /// Search/SearchAsync/SearchBatch query whose token bytes and id-shaping
  /// settings (k, k_prime, ef_search, refine, node_budget) match an earlier
  /// query against the same database epoch is answered from the cache —
  /// counters.cache_hit is set and no filter/refine work runs. Only
  /// completed, non-partial results are cached (an early-exited or degraded
  /// answer is never replayed), and ANY mutation — Insert, Delete, WAL
  /// replay, or a compaction/split/rebalance bumping the sharded
  /// state_version — invalidates the whole cache, so a cached answer is
  /// always id-identical to a fresh search. Calling again replaces the
  /// cache (fresh entries, fresh counters).
  void EnableResultCache(const ResultCacheOptions& options = {});
  void DisableResultCache() { cache_.reset(); }
  bool result_cache_enabled() const { return cache_ != nullptr; }
  /// Lifetime counters of the enabled cache (PPANNS_CHECK if disabled).
  ResultCacheStats result_cache_stats() const;

  std::size_t size() const;
  std::size_t dim() const;
  IndexKind index_kind() const;
  std::size_t StorageBytes() const;

  /// Number of shards behind the facade (1 for the single-index topology).
  std::size_t num_shards() const;
  /// Replicas per shard (1 for the single-index topology).
  std::size_t num_replicas() const;
  bool sharded() const {
    return std::holds_alternative<ShardedCloudServer>(server_);
  }

  /// Topology-specific accessors; calling the wrong one is a programmer
  /// error (PPANNS_CHECK).
  const CloudServer& server() const;
  const ShardedCloudServer& sharded_server() const;
  /// Mutable sharded accessor for the replica health / fault-injection
  /// surface (SetReplicaDown, SetReplicaDelayMs).
  ShardedCloudServer& sharded_server_mutable();

  /// Snapshots the current package (including maintenance mutations) in the
  /// matching on-disk format: the single-shard envelope or the sharded one.
  void SerializeDatabase(BinaryWriter* out) const;

 private:
  /// Shared validation for Search/SearchBatch.
  Status ValidateQuery(const QueryToken& token, std::size_t k,
                       const SearchSettings& settings) const;

  /// Shared validation for Insert and WAL replay: SAP dimension and DCE
  /// shape against the loaded package.
  Status ValidateInsert(const EncryptedVector& v) const;

  /// NotSupported when this facade fronts remote shards (mutations and WAL
  /// state live on the shard servers).
  Status CheckMutable(const char* op) const;

  /// The DCE block length dim() dictates: 2 * (dim rounded up to even) + 16.
  std::size_t ExpectedDceBlock() const;

  /// The database epoch cache entries are stamped with: the facade's
  /// mutation counter plus the sharded server's state_version, so both
  /// facade mutations and background compaction/split invalidate. On a
  /// remote gather state_version() is the cluster epoch fence — advanced by
  /// every mutation response and health ping — so remote mutations (even
  /// ones applied directly on a shard server) invalidate too.
  std::uint64_t CacheEpoch() const;

  /// Only a completed, non-degraded answer may be replayed later: an early
  /// exit (deadline/budget/cancel) or a partial gather truncated the ids.
  static bool CacheEligible(const SearchResult& result) {
    return result.counters.early_exit == EarlyExit::kNone && !result.partial;
  }

  std::variant<CloudServer, ShardedCloudServer> server_;
  std::optional<WalWriter> wal_;
  /// Present iff the result cache is enabled. unique_ptr keeps the facade
  /// movable (the cache itself holds mutexes and atomics).
  std::unique_ptr<ResultCache> cache_;
};

}  // namespace ppanns

#endif  // PPANNS_CORE_PPANNS_SERVICE_H_
