#include "crypto/paillier.h"

namespace ppanns {

Result<Paillier> Paillier::KeyGen(std::size_t modulus_bits, Rng& rng) {
  if (modulus_bits < 64) {
    return Status::InvalidArgument("Paillier: modulus too small");
  }
  const std::size_t prime_bits = modulus_bits / 2;
  Paillier out;
  for (;;) {
    const BigUint p = BigUint::RandomPrime(prime_bits, rng);
    const BigUint q = BigUint::RandomPrime(prime_bits, rng);
    if (p == q) continue;
    out.n_ = p.Mul(q);
    out.n2_ = out.n_.Mul(out.n_);
    // lambda = lcm(p-1, q-1).
    const BigUint p1 = p.Sub(BigUint(1));
    const BigUint q1 = q.Sub(BigUint(1));
    const BigUint gcd = BigUint::Gcd(p1, q1);
    out.lambda_ = p1.Mul(q1).Div(gcd);
    // With g = n+1: g^lambda mod n^2 = 1 + lambda*n (binomial), so
    // L(g^lambda) = lambda mod n and mu = lambda^{-1} mod n.
    out.mu_ = BigUint::InverseMod(out.lambda_.Mod(out.n_), out.n_);
    if (!out.mu_.IsZero()) return out;
    // gcd(lambda, n) != 1 is vanishingly rare; resample primes.
  }
}

PaillierCiphertext Paillier::Encrypt(const BigUint& m, Rng& rng) const {
  PPANNS_CHECK(m < n_);
  // r uniform in Z_n^* (gcd check; retry on the negligible failure case).
  BigUint r;
  do {
    r = BigUint::RandomBelow(n_, rng);
  } while (r.IsZero() || !(BigUint::Gcd(r, n_) == BigUint(1)));

  // c = (1 + m*n) * r^n mod n^2.
  const BigUint gm = BigUint(1).Add(m.Mul(n_)).Mod(n2_);
  const BigUint rn = BigUint::PowMod(r, n_, n2_);
  return PaillierCiphertext{BigUint::MulMod(gm, rn, n2_)};
}

BigUint Paillier::Decrypt(const PaillierCiphertext& c) const {
  // m = L(c^lambda mod n^2) * mu mod n, L(x) = (x - 1) / n.
  const BigUint x = BigUint::PowMod(c.value, lambda_, n2_);
  const BigUint l = x.Sub(BigUint(1)).Div(n_);
  return BigUint::MulMod(l, mu_, n_);
}

PaillierCiphertext Paillier::Add(const PaillierCiphertext& a,
                                 const PaillierCiphertext& b) const {
  return PaillierCiphertext{BigUint::MulMod(a.value, b.value, n2_)};
}

PaillierCiphertext Paillier::AddPlain(const PaillierCiphertext& a,
                                      const BigUint& b, Rng& rng) const {
  return Add(a, Encrypt(b.Mod(n_), rng));
}

PaillierCiphertext Paillier::ScalarMul(const PaillierCiphertext& a,
                                       const BigUint& k) const {
  return PaillierCiphertext{BigUint::PowMod(a.value, k, n2_)};
}

BigUint Paillier::EncodeSigned(std::int64_t v) const {
  if (v >= 0) return BigUint(static_cast<std::uint64_t>(v));
  return n_.Sub(BigUint(static_cast<std::uint64_t>(-v)));
}

std::int64_t Paillier::DecodeSigned(const BigUint& m) const {
  const BigUint half = n_.ShiftRight(1);
  if (m <= half) {
    return static_cast<std::int64_t>(m.ToUint64());
  }
  return -static_cast<std::int64_t>(n_.Sub(m).ToUint64());
}

HeDistanceProtocol::EncryptedVector HeDistanceProtocol::EncryptVector(
    const std::vector<std::int64_t>& p, Rng& rng) const {
  EncryptedVector out;
  out.coords.reserve(p.size());
  std::int64_t norm2 = 0;
  for (std::int64_t v : p) {
    out.coords.push_back(he_->Encrypt(he_->EncodeSigned(v), rng));
    norm2 += v * v;
  }
  out.norm2 = he_->Encrypt(he_->EncodeSigned(norm2), rng);
  return out;
}

PaillierCiphertext HeDistanceProtocol::DistanceCiphertext(
    const EncryptedVector& p, const std::vector<std::int64_t>& q,
    Rng& rng) const {
  PPANNS_CHECK(p.coords.size() == q.size());
  // Enc(dist^2) = Enc(||p||^2) * prod_i Enc(p_i)^{-2 q_i} * Enc(||q||^2).
  PaillierCiphertext acc = p.norm2;
  std::int64_t q_norm2 = 0;
  for (std::size_t i = 0; i < q.size(); ++i) {
    q_norm2 += q[i] * q[i];
    const BigUint k = he_->EncodeSigned(-2 * q[i]);
    acc = he_->Add(acc, he_->ScalarMul(p.coords[i], k));  // d modexps total
  }
  return he_->AddPlain(acc, he_->EncodeSigned(q_norm2), rng);
}

std::int64_t HeDistanceProtocol::DecryptDistance(
    const PaillierCiphertext& c) const {
  return he_->DecodeSigned(he_->Decrypt(c));
}

}  // namespace ppanns
