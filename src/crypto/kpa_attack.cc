#include "crypto/kpa_attack.h"

#include <cmath>

namespace ppanns {

std::size_t AspeKpaAttack::RequiredLeaks() const {
  if (variant_ == AspeVariant::kSquare) {
    // (d+2)(d+3)/2 - 1: the paper's lift minus the redundant ||p||^2
    // coordinate (see header).
    return (dim_ + 2) * (dim_ + 3) / 2 - 1;
  }
  return dim_ + 2;
}

double AspeKpaAttack::InverseTransform(double leaked) const {
  switch (variant_) {
    case AspeVariant::kLinear:
      return leaked;
    case AspeVariant::kExponential:
      // L = exp(v / norm)  =>  v = norm * ln(L)   (Corollary 1).
      return exp_norm_ * std::log(leaked);
    case AspeVariant::kLogarithmic:
      // L = log(v + shift) =>  v = exp(L) - shift (Corollary 2).
      return std::exp(leaked) - log_shift_;
    case AspeVariant::kSquare:
      PPANNS_CHECK(false);  // handled by the lifted system, not here
  }
  return leaked;
}

std::vector<double> AspeKpaAttack::SquareLiftData(const double* p) const {
  const std::size_t d = dim_;
  std::vector<double> out;
  out.reserve(RequiredLeaks());
  double norm2 = 0.0;
  for (std::size_t i = 0; i < d; ++i) norm2 += p[i] * p[i];

  out.push_back(norm2 * norm2);                              // ||p||^4
  for (std::size_t i = 0; i < d; ++i) out.push_back(norm2 * p[i]);
  // No separate ||p||^2 coordinate: it is linearly dependent on the p^2
  // block and would make every attack system singular (see header).
  for (std::size_t i = 0; i < d; ++i) out.push_back(4.0 * p[i] * p[i]);
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = i + 1; j < d; ++j) out.push_back(8.0 * p[i] * p[j]);
  }
  for (std::size_t i = 0; i < d; ++i) out.push_back(-4.0 * p[i]);
  out.push_back(1.0);
  return out;
}

std::vector<double> AspeKpaAttack::SquareLiftQuery(const double* q, double r1,
                                                   double r2,
                                                   double r3) const {
  const std::size_t d = dim_;
  std::vector<double> out;
  out.reserve(RequiredLeaks());
  out.push_back(r1);
  for (std::size_t i = 0; i < d; ++i) out.push_back(-4.0 * r1 * q[i]);
  // The 2 r1 r2 * ||p||^2 term rides on the p^2 block:
  // 2 r1 r2 ||p||^2 = sum_i (4 p_i^2) * (r1 r2 / 2).
  for (std::size_t i = 0; i < d; ++i) {
    out.push_back(r1 * q[i] * q[i] + r1 * r2 / 2.0);
  }
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = i + 1; j < d; ++j) out.push_back(r1 * q[i] * q[j]);
  }
  for (std::size_t i = 0; i < d; ++i) out.push_back(r1 * r2 * q[i]);
  out.push_back(r1 * r2 * r2 + r3);
  return out;
}

Result<RecoveredQuery> AspeKpaAttack::RecoverQuery(
    const Matrix& leaked_points, const std::vector<double>& leakage) const {
  const std::size_t need = RequiredLeaks();
  if (leaked_points.rows() < need || leakage.size() < need) {
    return Status::InvalidArgument("KPA: not enough leaked pairs");
  }
  PPANNS_CHECK(leaked_points.cols() == dim_);
  const std::size_t d = dim_;

  if (variant_ != AspeVariant::kSquare) {
    // Theorem 1: rows [-2 p_i^T, ||p_i||^2, 1], unknown x = [r1 q; r1; r2].
    Matrix mc(need, d + 2);
    std::vector<double> b(need);
    for (std::size_t i = 0; i < need; ++i) {
      const double* p = leaked_points.row(i);
      double norm2 = 0.0;
      for (std::size_t j = 0; j < d; ++j) {
        mc.at(i, j) = -2.0 * p[j];
        norm2 += p[j] * p[j];
      }
      mc.at(i, d) = norm2;
      mc.at(i, d + 1) = 1.0;
      b[i] = InverseTransform(leakage[i]);
    }
    std::vector<double> x;
    PPANNS_RETURN_IF_ERROR(SolveLinearSystem(mc, b, &x));
    RecoveredQuery out;
    out.r1 = x[d];
    if (out.r1 == 0.0) return Status::FailedPrecondition("KPA: r1 == 0");
    out.r2 = x[d + 1];
    out.q.resize(d);
    for (std::size_t j = 0; j < d; ++j) out.q[j] = x[j] / out.r1;
    return out;
  }

  // Theorem 2: lifted system in 0.5 d^2 + 2.5 d + 3 unknowns.
  Matrix mc(need, need);
  std::vector<double> b(need);
  for (std::size_t i = 0; i < need; ++i) {
    const std::vector<double> lift = SquareLiftData(leaked_points.row(i));
    PPANNS_CHECK(lift.size() == need);
    for (std::size_t j = 0; j < need; ++j) mc.at(i, j) = lift[j];
    b[i] = leakage[i];
  }
  std::vector<double> x;
  PPANNS_RETURN_IF_ERROR(SolveLinearSystem(mc, b, &x));

  RecoveredQuery out;
  out.r1 = x[0];
  if (out.r1 == 0.0) return Status::FailedPrecondition("KPA: r1 == 0");
  out.q.resize(d);
  for (std::size_t j = 0; j < d; ++j) out.q[j] = -x[1 + j] / (4.0 * out.r1);
  // The p^2 block carries r1*q_i^2 + r1*r2/2; average the r2 estimates.
  double r2_sum = 0.0;
  for (std::size_t j = 0; j < d; ++j) {
    r2_sum += 2.0 * (x[d + 1 + j] / out.r1 - out.q[j] * out.q[j]);
  }
  out.r2 = r2_sum / static_cast<double>(d);
  out.r3 = x[need - 1] - out.r1 * out.r2 * out.r2;
  return out;
}

Result<std::vector<double>> AspeKpaAttack::RecoverDataVector(
    const std::vector<RecoveredQuery>& queries,
    const std::vector<double>& leakage) const {
  const std::size_t need = RequiredLeaks();
  if (queries.size() < need || leakage.size() < need) {
    return Status::InvalidArgument("KPA: not enough recovered queries");
  }
  const std::size_t d = dim_;

  if (variant_ != AspeVariant::kSquare) {
    // Dual of Theorem 1: rows [r1_j q_j^T, r1_j, r2_j], unknown
    // y = [-2p; ||p||^2; 1].
    Matrix mc(need, d + 2);
    std::vector<double> b(need);
    for (std::size_t i = 0; i < need; ++i) {
      const RecoveredQuery& rq = queries[i];
      PPANNS_CHECK(rq.q.size() == d);
      for (std::size_t j = 0; j < d; ++j) mc.at(i, j) = rq.r1 * rq.q[j];
      mc.at(i, d) = rq.r1;
      mc.at(i, d + 1) = rq.r2;
      b[i] = InverseTransform(leakage[i]);
    }
    std::vector<double> y;
    PPANNS_RETURN_IF_ERROR(SolveLinearSystem(mc, b, &y));
    std::vector<double> p(d);
    for (std::size_t j = 0; j < d; ++j) p[j] = -y[j] / 2.0;
    return p;
  }

  // Dual of Theorem 2: rows are the lifted recovered queries, unknown is the
  // lifted p; p is read off the -4p block.
  Matrix mc(need, need);
  std::vector<double> b(need);
  for (std::size_t i = 0; i < need; ++i) {
    const RecoveredQuery& rq = queries[i];
    const std::vector<double> lift =
        SquareLiftQuery(rq.q.data(), rq.r1, rq.r2, rq.r3);
    PPANNS_CHECK(lift.size() == need);
    for (std::size_t j = 0; j < need; ++j) mc.at(i, j) = lift[j];
    b[i] = leakage[i];
  }
  std::vector<double> x;
  PPANNS_RETURN_IF_ERROR(SolveLinearSystem(mc, b, &x));
  const std::size_t minus4p_offset = 2 * d + 1 + d * (d - 1) / 2;
  std::vector<double> p(d);
  for (std::size_t j = 0; j < d; ++j) p[j] = -x[minus4p_offset + j] / 4.0;
  return p;
}

}  // namespace ppanns
