// AES-128 block cipher with CTR mode — the "distance incomparable
// encryption" substrate for the RS-SANN baseline (Section VII-B): database
// vectors are AES-CTR encrypted at rest; the user must download and decrypt
// candidates before computing any distance.
//
// Straightforward table-based FIPS-197 implementation (encrypt direction
// only; CTR needs no block decryption). Not constant-time — adequate for the
// honest-but-curious benchmark setting, not for production side-channel
// resistance.

#ifndef PPANNS_CRYPTO_AES_H_
#define PPANNS_CRYPTO_AES_H_

#include <array>
#include <cstdint>
#include <cstddef>
#include <vector>

namespace ppanns {

/// AES-128 with a 16-byte key. Encrypt-only core + CTR keystream mode.
class Aes128 {
 public:
  static constexpr std::size_t kBlockSize = 16;
  static constexpr std::size_t kKeySize = 16;

  explicit Aes128(const std::array<std::uint8_t, kKeySize>& key);

  /// Encrypts one 16-byte block in place (out may alias in).
  void EncryptBlock(const std::uint8_t in[kBlockSize],
                    std::uint8_t out[kBlockSize]) const;

  /// CTR mode: XORs `len` bytes of keystream derived from (nonce, counter=0)
  /// into `data`. Applying twice with the same nonce decrypts.
  void CtrXor(std::uint64_t nonce, std::uint8_t* data, std::size_t len) const;

  /// Convenience: CTR-encrypts a float vector into an opaque byte blob.
  std::vector<std::uint8_t> EncryptFloats(std::uint64_t nonce,
                                          const float* v, std::size_t n) const;

  /// Inverse of EncryptFloats.
  void DecryptFloats(std::uint64_t nonce, const std::vector<std::uint8_t>& blob,
                     float* out, std::size_t n) const;

 private:
  static constexpr std::size_t kRounds = 10;
  // Round keys: (kRounds + 1) * 16 bytes.
  std::array<std::uint8_t, (kRounds + 1) * kBlockSize> round_keys_;
};

}  // namespace ppanns

#endif  // PPANNS_CRYPTO_AES_H_
