// AME — asymmetric matrix encryption (Zheng et al., IEEE TDSC 2024),
// revisited in Section III-C of the paper as the exact-but-costly secure
// distance comparison baseline.
//
// The TDSC construction itself is closed-source and not fully specified in
// this paper; per DESIGN.md we implement a faithful-COST emulation with the
// exact shapes and operation counts Section III-C states:
//
//   * secret key: 32 random invertible matrices in R^{(2d+6) x (2d+6)}
//     (here: 16 pairs (ML_i, MR_i)),
//   * each database vector  -> 32 vectors in R^{2d+6}
//     (16 "row" forms + 16 "column" forms, fresh randomness each),
//   * each query vector     -> 16 matrices in R^{(2d+6) x (2d+6)},
//   * one comparison        -> 16 vector-matrix products + 16 inner
//     products ~ 64 d^2 + O(d) multiply-accumulates.
//
// Correctness: with the lift phi(p) = r_p * [p; ||p||^2; 1; random padding]
// and the rank-2 query form G(q) picking out (||o||^2 - 2 o.q) -
// (||p||^2 - 2 p.q), each of the 16 blinded terms equals
// (positive) * (dist(o,q) - dist(p,q)), so the sum's sign answers the
// comparison exactly — like the original AME, and like DCE, but at O(d^2)
// per comparison instead of O(d).

#ifndef PPANNS_CRYPTO_AME_H_
#define PPANNS_CRYPTO_AME_H_

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "linalg/matrix.h"

namespace ppanns {

/// Number of (row, column) ciphertext pairs / trapdoor matrices.
inline constexpr std::size_t kAmeSplits = 16;

/// Database-vector ciphertext: 16 row forms + 16 column forms, each a
/// (2d+6)-vector — the "32 vectors" of Section III-C.
struct AmeCiphertext {
  Matrix rows;  ///< kAmeSplits x (2d+6)
  Matrix cols;  ///< kAmeSplits x (2d+6)
};

/// Query trapdoor: 16 matrices in R^{(2d+6) x (2d+6)}.
struct AmeTrapdoor {
  std::vector<Matrix> mats;
};

/// The AME scheme (cost-faithful emulation; see file header).
class AmeScheme {
 public:
  static Result<AmeScheme> KeyGen(std::size_t dim, Rng& rng,
                                  double scale_hint = 1.0);

  AmeCiphertext Encrypt(const double* p, Rng& rng) const;
  AmeCiphertext Encrypt(const float* p, Rng& rng) const;

  AmeTrapdoor GenTrapdoor(const double* q, Rng& rng) const;
  AmeTrapdoor GenTrapdoor(const float* q, Rng& rng) const;

  /// Z = sum_i row_i(o) * T_i * col_i(p); sign(Z) = sign(dist(o,q) -
  /// dist(p,q)). Server-side, no key required.
  static double DistanceComp(const AmeCiphertext& o, const AmeCiphertext& p,
                             const AmeTrapdoor& tq);

  static bool Closer(const AmeCiphertext& o, const AmeCiphertext& p,
                     const AmeTrapdoor& tq) {
    return DistanceComp(o, p, tq) < 0.0;
  }

  std::size_t dim() const { return dim_; }
  /// Lifted dimension 2d+6.
  std::size_t lifted_dim() const { return 2 * dim_ + 6; }

 private:
  AmeScheme(std::size_t dim, double scale_hint) : dim_(dim), scale_(scale_hint) {}

  /// phi(p) = [p; ||p||^2; 1; random padding] scaled by a positive r.
  void Lift(const double* p, double r, Rng& rng, double* out) const;

  std::size_t dim_;
  double scale_;
  std::vector<InvertibleMatrix> left_;   // ML_i, i < kAmeSplits
  std::vector<InvertibleMatrix> right_;  // MR_i
};

}  // namespace ppanns

#endif  // PPANNS_CRYPTO_AME_H_
