#include "crypto/dce.h"

#include <algorithm>
#include <cmath>

namespace ppanns {

namespace {

// Step 1 of vector randomization (Eq. 1): pairwise sum/difference mixing.
// For the query side the result is negated so that <p_check, q_check> =
// -2 <p, q>.
void PairwiseMix(const double* x, std::size_t d_pad, double sign, double* out) {
  for (std::size_t i = 0; i + 1 < d_pad; i += 2) {
    out[i] = sign * (x[i] + x[i + 1]);
    out[i + 1] = sign * (x[i] - x[i + 1]);
  }
}

}  // namespace

Result<DceScheme> DceScheme::KeyGen(std::size_t dim, Rng& rng,
                                    double scale_hint) {
  if (dim == 0) return Status::InvalidArgument("DCE: dim must be positive");
  if (!(scale_hint > 0.0)) {
    return Status::InvalidArgument("DCE: scale_hint must be positive");
  }

  DceSecretKey key;
  key.dim = dim;
  key.dim_pad = (dim % 2 == 0) ? dim : dim + 1;
  key.scale = scale_hint;

  const std::size_t half = key.dim_pad / 2 + 4;      // block size after split
  const std::size_t dr = key.dim_pad + 8;            // randomized dimension
  const std::size_t dt = 2 * key.dim_pad + 16;       // transformed dimension

  key.m1 = InvertibleMatrix::Random(half, rng);
  key.m2 = InvertibleMatrix::Random(half, rng);

  InvertibleMatrix m3 = InvertibleMatrix::Random(dt, rng);
  key.m_up = m3.m.SliceRows(0, dr);
  key.m_down = m3.m.SliceRows(dr, dt);
  key.m3_inv = std::move(m3.m_inv);

  key.pi1 = Permutation::Random(key.dim_pad, rng);
  key.pi2 = Permutation::Random(dr, rng);

  // Shared blinding scalars at the data's magnitude so gamma_p =
  // (||p||^2 - sum r'_i r_i) / r4 stays comparable to the other coordinates.
  key.r1 = rng.SignedUniform(0.5, 2.0) * scale_hint;
  key.r2 = rng.SignedUniform(0.5, 2.0) * scale_hint;
  key.r3 = rng.SignedUniform(0.5, 2.0) * scale_hint;
  key.r4 = rng.SignedUniform(0.5, 2.0) * scale_hint;

  key.kv1.resize(dt);
  key.kv2.resize(dt);
  key.kv3.resize(dt);
  key.kv4.resize(dt);
  for (std::size_t i = 0; i < dt; ++i) {
    key.kv1[i] = rng.SignedUniform(0.5, 2.0);
    key.kv2[i] = rng.SignedUniform(0.5, 2.0);
    key.kv4[i] = rng.SignedUniform(0.5, 2.0);
    // Enforce the key invariant kv1 o kv3 = kv2 o kv4 (Section IV-A).
    key.kv3[i] = key.kv2[i] * key.kv4[i] / key.kv1[i];
  }
  return DceScheme(std::move(key));
}

std::vector<double> DceScheme::RandomizeData(const double* p, Rng& rng) const {
  const std::size_t d_pad = key_.dim_pad;
  const std::size_t half_data = d_pad / 2;
  const std::size_t half = half_data + 4;
  const double s = key_.scale;

  // Zero-pad to even dimension (preserves distances).
  std::vector<double> padded(d_pad, 0.0);
  std::copy(p, p + key_.dim, padded.begin());

  double norm2 = 0.0;
  for (double v : padded) norm2 += v * v;

  // Steps 1-2: pairwise mix, permute.
  std::vector<double> check(d_pad);
  PairwiseMix(padded.data(), d_pad, 1.0, check.data());
  std::vector<double> hat = key_.pi1.Apply(check);

  // Step 3: split and append blinding scalars (Eq. 2).
  const double alpha1 = rng.SignedUniform(0.5, 2.0) * s;
  const double alpha2 = rng.SignedUniform(0.5, 2.0) * s;
  const double rp1 = rng.SignedUniform(0.5, 2.0) * s;
  const double rp2 = rng.SignedUniform(0.5, 2.0) * s;
  const double rp3 = rng.SignedUniform(0.5, 2.0) * s;
  const double gamma =
      (norm2 - rp1 * key_.r1 - rp2 * key_.r2 - rp3 * key_.r3) / key_.r4;

  std::vector<double> bp1(half), bp2(half);
  std::copy(hat.begin(), hat.begin() + half_data, bp1.begin());
  bp1[half_data] = alpha1;
  bp1[half_data + 1] = -alpha1;
  bp1[half_data + 2] = rp1;
  bp1[half_data + 3] = rp2;
  std::copy(hat.begin() + half_data, hat.end(), bp2.begin());
  bp2[half_data] = alpha2;
  bp2[half_data + 1] = alpha2;
  bp2[half_data + 2] = rp3;
  bp2[half_data + 3] = gamma;

  // Step 4: per-half matrix encryption (row-vector times M), then permute
  // the concatenation (Eq. 4).
  std::vector<double> cat(2 * half);
  VecMat(bp1.data(), key_.m1.m, cat.data());
  VecMat(bp2.data(), key_.m2.m, cat.data() + half);
  return key_.pi2.Apply(cat);
}

std::vector<double> DceScheme::RandomizeQuery(const double* q, Rng& rng) const {
  const std::size_t d_pad = key_.dim_pad;
  const std::size_t half_data = d_pad / 2;
  const std::size_t half = half_data + 4;
  const double s = key_.scale;

  std::vector<double> padded(d_pad, 0.0);
  std::copy(q, q + key_.dim, padded.begin());

  // Steps 1-2 with negation: q_check = -[q1+q2, q1-q2, ...].
  std::vector<double> check(d_pad);
  PairwiseMix(padded.data(), d_pad, -1.0, check.data());
  std::vector<double> hat = key_.pi1.Apply(check);

  // Step 3: split with beta blinders and the shared r1..r4 (Eq. 3).
  const double beta1 = rng.SignedUniform(0.5, 2.0) * s;
  const double beta2 = rng.SignedUniform(0.5, 2.0) * s;

  std::vector<double> bq1(half), bq2(half);
  std::copy(hat.begin(), hat.begin() + half_data, bq1.begin());
  bq1[half_data] = beta1;
  bq1[half_data + 1] = beta1;
  bq1[half_data + 2] = key_.r1;
  bq1[half_data + 3] = key_.r2;
  std::copy(hat.begin() + half_data, hat.end(), bq2.begin());
  bq2[half_data] = beta2;
  bq2[half_data + 1] = -beta2;
  bq2[half_data + 2] = key_.r3;
  bq2[half_data + 3] = key_.r4;

  // Step 4: per-half inverse-matrix encryption (M^{-1} times column vector).
  std::vector<double> cat(2 * half);
  MatVec(key_.m1.m_inv, bq1.data(), cat.data());
  MatVec(key_.m2.m_inv, bq2.data(), cat.data() + half);
  return key_.pi2.Apply(cat);
}

DceCiphertext DceScheme::Encrypt(const double* p, Rng& rng) const {
  const std::size_t dt = transformed_dim();
  const std::vector<double> p_bar = RandomizeData(p, rng);

  // Vector transformation (Eq. 10 + 13): project through Mup / Mdown, shift
  // by +-1, mask by kv_i and the positive per-vector randomizer r_p.
  std::vector<double> up(dt), down(dt);
  VecMat(p_bar.data(), key_.m_up, up.data());
  VecMat(p_bar.data(), key_.m_down, down.data());

  const double rp = rng.Uniform(0.5, 2.0);  // strictly positive

  DceCiphertext c;
  c.block = dt;
  c.data.resize(4 * dt);
  double* p1 = c.data.data();
  double* p2 = c.data.data() + dt;
  double* p3 = c.data.data() + 2 * dt;
  double* p4 = c.data.data() + 3 * dt;
  for (std::size_t i = 0; i < dt; ++i) {
    p1[i] = rp * (up[i] + 1.0) / key_.kv1[i];
    p2[i] = rp * (up[i] - 1.0) / key_.kv2[i];
    p3[i] = rp * (down[i] + 1.0) / key_.kv3[i];
    p4[i] = rp * (down[i] - 1.0) / key_.kv4[i];
  }
  return c;
}

DceCiphertext DceScheme::Encrypt(const float* p, Rng& rng) const {
  std::vector<double> tmp(key_.dim);
  std::copy(p, p + key_.dim, tmp.begin());
  return Encrypt(tmp.data(), rng);
}

DceTrapdoor DceScheme::GenTrapdoor(const double* q, Rng& rng) const {
  const std::size_t dr = key_.dim_pad + 8;
  const std::size_t dt = transformed_dim();
  const std::vector<double> q_bar = RandomizeQuery(q, rng);

  // Eq. 15: q' = r_q * (M3^{-1} [q_bar; -q_bar]) o (kv2 o kv4).
  std::vector<double> stacked(dt);
  std::copy(q_bar.begin(), q_bar.end(), stacked.begin());
  for (std::size_t i = 0; i < dr; ++i) stacked[dr + i] = -q_bar[i];

  DceTrapdoor t;
  t.data.resize(dt);
  MatVec(key_.m3_inv, stacked.data(), t.data.data());

  const double rq = rng.Uniform(0.5, 2.0);  // strictly positive
  for (std::size_t i = 0; i < dt; ++i) {
    t.data[i] *= rq * key_.kv2[i] * key_.kv4[i];
  }
  return t;
}

DceTrapdoor DceScheme::GenTrapdoor(const float* q, Rng& rng) const {
  std::vector<double> tmp(key_.dim);
  std::copy(q, q + key_.dim, tmp.begin());
  return GenTrapdoor(tmp.data(), rng);
}

double DceScheme::DistanceComp(const DceCiphertext& o, const DceCiphertext& p,
                               const DceTrapdoor& tq) {
  // Z = [o'_1 o p'_3 - o'_2 o p'_4] . q'   (Eq. 16). Fused single pass:
  // 4 multiplies + 2 adds per coordinate, O(d) total.
  const std::size_t n = o.block;
  const double* o1 = o.p1();
  const double* o2 = o.p2();
  const double* p3 = p.p3();
  const double* p4 = p.p4();
  const double* t = tq.data.data();
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += (o1[i] * p3[i] - o2[i] * p4[i]) * t[i];
  }
  return acc;
}

}  // namespace ppanns
