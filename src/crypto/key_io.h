// Serialization of the scheme's secret keys — the "authorized secret key
// sk" hand-off of Fig. 1 (step 0). The data owner persists/export keys to
// authorized query users over a secure channel; the serialized form never
// goes to the cloud.

#ifndef PPANNS_CRYPTO_KEY_IO_H_
#define PPANNS_CRYPTO_KEY_IO_H_

#include "common/serialize.h"
#include "common/status.h"
#include "crypto/dce.h"
#include "crypto/dcpe.h"

namespace ppanns {

void SerializeMatrix(const Matrix& m, BinaryWriter* out);
Result<Matrix> DeserializeMatrix(BinaryReader* in);

void SerializeDceKey(const DceSecretKey& key, BinaryWriter* out);
Result<DceSecretKey> DeserializeDceKey(BinaryReader* in);

void SerializeDcpeKey(const DcpeSecretKey& key, BinaryWriter* out);
Result<DcpeSecretKey> DeserializeDcpeKey(BinaryReader* in);

}  // namespace ppanns

#endif  // PPANNS_CRYPTO_KEY_IO_H_
