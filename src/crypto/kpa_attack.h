// Known-plaintext attacks against ASPE and its enhanced variants —
// Section III-A of the paper (Theorem 1, Corollaries 1-2, Theorem 2).
//
// Setting: the attacker holds the encrypted database C_P, encrypted queries
// C_Q, a leaked subset P_leak of plaintexts, and observes the per-pair
// leakage L(C_p, T_q). The transformation family (linear / exponential /
// logarithmic / square) and its public parameters are known (Kerckhoffs);
// the matrix key M and the per-query randomizers r1, r2, r3 are not.
//
// Attack shape (Theorem 1): each leaked plaintext p_i yields one linear
// equation [-2 p_i^T, ||p_i||^2, 1] * x = v_i in the unknown
// x = [r1*q; r1; r2], where v_i is the (inverse-transformed) leakage. With
// d+2 leaked plaintexts the system is square and q = x[0..d)/x[d]. Once d+2
// queries (with their r's) are recovered, every remaining database vector
// falls to the dual system. The square variant (Theorem 2) lifts to
// 0.5 d^2 + 2.5 d + 3 unknowns but is otherwise identical.

#ifndef PPANNS_CRYPTO_KPA_ATTACK_H_
#define PPANNS_CRYPTO_KPA_ATTACK_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "crypto/aspe.h"
#include "linalg/matrix.h"

namespace ppanns {

/// A query recovered by the attack, including its blinding scalars (needed
/// for the second-stage database recovery).
struct RecoveredQuery {
  std::vector<double> q;
  double r1 = 0.0;
  double r2 = 0.0;
  double r3 = 0.0;  ///< square variant only
};

/// Implements the attacks of Section III-A against a given ASPE variant.
class AspeKpaAttack {
 public:
  /// The attacker knows the scheme's public transformation parameters but
  /// not its secret key; `scheme` is only consulted for variant / exp_norm /
  /// log_shift.
  explicit AspeKpaAttack(const AspeScheme& scheme)
      : variant_(scheme.variant()),
        dim_(scheme.dim()),
        exp_norm_(scheme.exp_norm()),
        log_shift_(scheme.log_shift()) {}

  /// Number of (leaked plaintext, leakage) pairs the attack needs: d+2 for
  /// linear/exp/log, 0.5 d^2 + 2.5 d + 2 for square.
  ///
  /// Note on the square count: the paper's Theorem-2 lift has 0.5 d^2 +
  /// 2.5 d + 3 coordinates, but it is rank-deficient by exactly one — the
  /// ||p||^2 coordinate is a fixed linear combination of the p^2 block
  /// (||p||^2 = sum_i p_i^2), so the induced linear system is singular for
  /// EVERY choice of leaked points. The attacker resolves this by folding
  /// the ||p||^2 column into the p^2 block (shifting the matching query
  /// coefficients by r1*r2/2), which drops one unknown and makes the system
  /// generically invertible. The recovered q, r1, r2, r3 are unchanged.
  std::size_t RequiredLeaks() const;

  /// Stage 1 (Theorem 1 / Corollaries 1-2 / Theorem 2): recovers a query
  /// vector from `RequiredLeaks()` leaked plaintexts (rows of
  /// `leaked_points`, m x d) and the corresponding leakage values for one
  /// query. Fails with FailedPrecondition if the induced system is singular
  /// (attacker then resamples leaks).
  Result<RecoveredQuery> RecoverQuery(const Matrix& leaked_points,
                                      const std::vector<double>& leakage) const;

  /// Stage 2: recovers a database vector from `RequiredLeaks()` recovered
  /// queries and the leakage values L(C_p, T_qj). For the square variant the
  /// recovered queries must carry exact r1/r2 (as produced by RecoverQuery).
  Result<std::vector<double>> RecoverDataVector(
      const std::vector<RecoveredQuery>& queries,
      const std::vector<double>& leakage) const;

  /// The (rank-repaired) Theorem-2 lift of a data vector p:
  /// [||p||^4; ||p||^2 p; 4 p^2; {8 p_i p_j}_{i<j}; -4p; 1].
  std::vector<double> SquareLiftData(const double* p) const;

  /// The matching query lift:
  /// [r1; -4 r1 q; r1 q^2 + r1 r2/2; {r1 q_i q_j}_{i<j}; r1 r2 q;
  ///  r1 r2^2 + r3].
  std::vector<double> SquareLiftQuery(const double* q, double r1, double r2,
                                      double r3) const;

 private:
  /// Inverts the variant's transformation, recovering the linear leakage
  /// v = r1*(||p||^2 - 2 p.q) + r2 (not used for kSquare).
  double InverseTransform(double leaked) const;

  AspeVariant variant_;
  std::size_t dim_;
  double exp_norm_;
  double log_shift_;
};

}  // namespace ppanns

#endif  // PPANNS_CRYPTO_KPA_ATTACK_H_
