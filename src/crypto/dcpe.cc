#include "crypto/dcpe.h"

#include <cmath>

namespace ppanns {

Result<DcpeScheme> DcpeScheme::Create(std::size_t dim, double s, double beta) {
  if (dim == 0) return Status::InvalidArgument("DCPE: dim must be positive");
  if (!(s > 0.0)) return Status::InvalidArgument("DCPE: s must be positive");
  if (beta < 0.0) return Status::InvalidArgument("DCPE: beta must be >= 0");
  DcpeSecretKey key;
  key.dim = dim;
  key.s = s;
  key.beta = beta;
  return DcpeScheme(key);
}

double DcpeScheme::MinBeta(double max_abs_coord) {
  return std::sqrt(max_abs_coord);
}

double DcpeScheme::MaxBeta(double max_abs_coord, std::size_t dim) {
  return 2.0 * max_abs_coord * std::sqrt(static_cast<double>(dim));
}

void DcpeScheme::Encrypt(const float* p, float* out, Rng& rng) const {
  const std::size_t d = key_.dim;
  if (key_.beta == 0.0) {
    for (std::size_t i = 0; i < d; ++i) {
      out[i] = static_cast<float>(key_.s * p[i]);
    }
    return;
  }
  // Algorithm 1: u ~ N(0, I_d); x' ~ U(0,1); x = (s*beta/4) * x'^(1/d);
  // lambda = x * u/||u||; C = s*p + lambda. The x'^(1/d) radial correction
  // makes lambda uniform in the ball B(0, s*beta/4).
  std::vector<double> u(d);
  rng.GaussianVector(0.0, 1.0, u.data(), d);
  double norm2 = 0.0;
  for (double v : u) norm2 += v * v;
  const double norm = std::sqrt(norm2);
  const double x_prime = rng.Uniform(0.0, 1.0);
  const double x = NoiseRadius() * std::pow(x_prime, 1.0 / static_cast<double>(d));
  const double scale = (norm > 0.0) ? x / norm : 0.0;
  for (std::size_t i = 0; i < d; ++i) {
    out[i] = static_cast<float>(key_.s * p[i] + scale * u[i]);
  }
}

FloatMatrix DcpeScheme::EncryptMatrix(const FloatMatrix& data, Rng& rng) const {
  PPANNS_CHECK(data.dim() == key_.dim);
  FloatMatrix out(data.size(), data.dim());
  for (std::size_t i = 0; i < data.size(); ++i) {
    Encrypt(data.row(i), out.row(i), rng);
  }
  return out;
}

}  // namespace ppanns
