#include "crypto/key_io.h"

namespace ppanns {

namespace {
constexpr std::uint32_t kDceKeyMagic = 0x44434531;   // "DCE1"
constexpr std::uint32_t kDcpeKeyMagic = 0x44435045;  // "DCPE"
}  // namespace

void SerializeMatrix(const Matrix& m, BinaryWriter* out) {
  out->Put<std::uint64_t>(m.rows());
  out->Put<std::uint64_t>(m.cols());
  out->PutVector(m.data());
}

Result<Matrix> DeserializeMatrix(BinaryReader* in) {
  std::uint64_t rows = 0, cols = 0;
  PPANNS_RETURN_IF_ERROR(in->Get(&rows));
  PPANNS_RETURN_IF_ERROR(in->Get(&cols));
  std::vector<double> data;
  PPANNS_RETURN_IF_ERROR(in->GetVector(&data));
  if (data.size() != rows * cols) {
    return Status::IOError("matrix: size mismatch");
  }
  Matrix m(rows, cols);
  m.data() = std::move(data);
  return m;
}

namespace {

void SerializePermutation(const Permutation& p, BinaryWriter* out) {
  out->PutVector(p.indices());
}

Result<Permutation> DeserializePermutation(BinaryReader* in) {
  std::vector<std::uint32_t> indices;
  PPANNS_RETURN_IF_ERROR(in->GetVector(&indices));
  // Validate bijectivity: a corrupted permutation would silently break
  // every future ciphertext.
  std::vector<bool> seen(indices.size(), false);
  for (std::uint32_t v : indices) {
    if (v >= indices.size() || seen[v]) {
      return Status::IOError("permutation: not a bijection");
    }
    seen[v] = true;
  }
  return Permutation(std::move(indices));
}

void SerializeInvertible(const InvertibleMatrix& im, BinaryWriter* out) {
  SerializeMatrix(im.m, out);
  SerializeMatrix(im.m_inv, out);
}

Result<InvertibleMatrix> DeserializeInvertible(BinaryReader* in) {
  Result<Matrix> m = DeserializeMatrix(in);
  if (!m.ok()) return m.status();
  Result<Matrix> m_inv = DeserializeMatrix(in);
  if (!m_inv.ok()) return m_inv.status();
  InvertibleMatrix out;
  out.m = std::move(*m);
  out.m_inv = std::move(*m_inv);
  return out;
}

}  // namespace

void SerializeDceKey(const DceSecretKey& key, BinaryWriter* out) {
  out->Put(kDceKeyMagic);
  out->Put<std::uint32_t>(1);  // version
  out->Put<std::uint64_t>(key.dim);
  out->Put<std::uint64_t>(key.dim_pad);
  out->Put(key.scale);
  SerializeInvertible(key.m1, out);
  SerializeInvertible(key.m2, out);
  SerializeMatrix(key.m_up, out);
  SerializeMatrix(key.m_down, out);
  SerializeMatrix(key.m3_inv, out);
  SerializePermutation(key.pi1, out);
  SerializePermutation(key.pi2, out);
  out->Put(key.r1);
  out->Put(key.r2);
  out->Put(key.r3);
  out->Put(key.r4);
  out->PutVector(key.kv1);
  out->PutVector(key.kv2);
  out->PutVector(key.kv3);
  out->PutVector(key.kv4);
}

Result<DceSecretKey> DeserializeDceKey(BinaryReader* in) {
  std::uint32_t magic = 0, version = 0;
  PPANNS_RETURN_IF_ERROR(in->Get(&magic));
  if (magic != kDceKeyMagic) return Status::IOError("DCE key: bad magic");
  PPANNS_RETURN_IF_ERROR(in->Get(&version));
  if (version != 1) return Status::IOError("DCE key: unsupported version");

  DceSecretKey key;
  std::uint64_t dim = 0, dim_pad = 0;
  PPANNS_RETURN_IF_ERROR(in->Get(&dim));
  PPANNS_RETURN_IF_ERROR(in->Get(&dim_pad));
  key.dim = dim;
  key.dim_pad = dim_pad;
  PPANNS_RETURN_IF_ERROR(in->Get(&key.scale));

  auto m1 = DeserializeInvertible(in);
  if (!m1.ok()) return m1.status();
  key.m1 = std::move(*m1);
  auto m2 = DeserializeInvertible(in);
  if (!m2.ok()) return m2.status();
  key.m2 = std::move(*m2);
  auto up = DeserializeMatrix(in);
  if (!up.ok()) return up.status();
  key.m_up = std::move(*up);
  auto down = DeserializeMatrix(in);
  if (!down.ok()) return down.status();
  key.m_down = std::move(*down);
  auto m3_inv = DeserializeMatrix(in);
  if (!m3_inv.ok()) return m3_inv.status();
  key.m3_inv = std::move(*m3_inv);

  auto pi1 = DeserializePermutation(in);
  if (!pi1.ok()) return pi1.status();
  key.pi1 = std::move(*pi1);
  auto pi2 = DeserializePermutation(in);
  if (!pi2.ok()) return pi2.status();
  key.pi2 = std::move(*pi2);

  PPANNS_RETURN_IF_ERROR(in->Get(&key.r1));
  PPANNS_RETURN_IF_ERROR(in->Get(&key.r2));
  PPANNS_RETURN_IF_ERROR(in->Get(&key.r3));
  PPANNS_RETURN_IF_ERROR(in->Get(&key.r4));
  PPANNS_RETURN_IF_ERROR(in->GetVector(&key.kv1));
  PPANNS_RETURN_IF_ERROR(in->GetVector(&key.kv2));
  PPANNS_RETURN_IF_ERROR(in->GetVector(&key.kv3));
  PPANNS_RETURN_IF_ERROR(in->GetVector(&key.kv4));

  // Structural validation before anything gets encrypted under this key.
  const std::size_t half = key.dim_pad / 2 + 4;
  const std::size_t dr = key.dim_pad + 8;
  const std::size_t dt = 2 * key.dim_pad + 16;
  if (key.dim == 0 || key.dim_pad < key.dim || key.dim_pad > key.dim + 1 ||
      key.m1.m.rows() != half || key.m2.m.rows() != half ||
      key.m_up.rows() != dr || key.m_up.cols() != dt ||
      key.m_down.rows() != dr || key.m3_inv.rows() != dt ||
      key.pi1.size() != key.dim_pad || key.pi2.size() != dr ||
      key.kv1.size() != dt || key.kv2.size() != dt ||
      key.kv3.size() != dt || key.kv4.size() != dt) {
    return Status::IOError("DCE key: inconsistent shapes");
  }
  return key;
}

void SerializeDcpeKey(const DcpeSecretKey& key, BinaryWriter* out) {
  out->Put(kDcpeKeyMagic);
  out->Put<std::uint32_t>(1);
  out->Put<std::uint64_t>(key.dim);
  out->Put(key.s);
  out->Put(key.beta);
}

Result<DcpeSecretKey> DeserializeDcpeKey(BinaryReader* in) {
  std::uint32_t magic = 0, version = 0;
  PPANNS_RETURN_IF_ERROR(in->Get(&magic));
  if (magic != kDcpeKeyMagic) return Status::IOError("DCPE key: bad magic");
  PPANNS_RETURN_IF_ERROR(in->Get(&version));
  if (version != 1) return Status::IOError("DCPE key: unsupported version");
  DcpeSecretKey key;
  std::uint64_t dim = 0;
  PPANNS_RETURN_IF_ERROR(in->Get(&dim));
  key.dim = dim;
  PPANNS_RETURN_IF_ERROR(in->Get(&key.s));
  PPANNS_RETURN_IF_ERROR(in->Get(&key.beta));
  if (key.dim == 0 || key.s <= 0 || key.beta < 0) {
    return Status::IOError("DCPE key: invalid parameters");
  }
  return key;
}

}  // namespace ppanns
