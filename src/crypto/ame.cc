#include "crypto/ame.h"

#include <algorithm>
#include <cmath>

namespace ppanns {

namespace {

/// Index of the constant-1 slot in the lift [p (d); ||p||^2; 1; padding].
std::size_t OneSlot(std::size_t dim) { return dim + 1; }

}  // namespace

Result<AmeScheme> AmeScheme::KeyGen(std::size_t dim, Rng& rng,
                                    double scale_hint) {
  if (dim == 0) return Status::InvalidArgument("AME: dim must be positive");
  AmeScheme s(dim, scale_hint);
  const std::size_t n = s.lifted_dim();
  s.left_.reserve(kAmeSplits);
  s.right_.reserve(kAmeSplits);
  for (std::size_t i = 0; i < kAmeSplits; ++i) {
    // Fast conditioned keys: 32 full QRs at (2d+6)^2 would take minutes at
    // GIST dims; AME is a cost-model baseline, so key-structure fidelity is
    // not load-bearing (see ame.h header).
    s.left_.push_back(InvertibleMatrix::RandomFast(n, rng));
    s.right_.push_back(InvertibleMatrix::RandomFast(n, rng));
  }
  return s;
}

void AmeScheme::Lift(const double* p, double r, Rng& rng, double* out) const {
  const std::size_t n = lifted_dim();
  double norm2 = 0.0;
  for (std::size_t i = 0; i < dim_; ++i) {
    out[i] = r * p[i];
    norm2 += p[i] * p[i];
  }
  out[dim_] = r * norm2;
  out[dim_ + 1] = r;  // the constant-1 slot, scaled
  // d+4 random padding slots; they meet zero weights in G(q), so they blind
  // the ciphertext without perturbing the comparison.
  for (std::size_t i = dim_ + 2; i < n; ++i) {
    out[i] = rng.SignedUniform(0.5, 2.0) * scale_ * r;
  }
}

AmeCiphertext AmeScheme::Encrypt(const double* p, Rng& rng) const {
  const std::size_t n = lifted_dim();
  AmeCiphertext c;
  c.rows = Matrix(kAmeSplits, n);
  c.cols = Matrix(kAmeSplits, n);
  std::vector<double> phi(n);
  for (std::size_t i = 0; i < kAmeSplits; ++i) {
    // Fresh positive randomizer and fresh padding per split and per side.
    Lift(p, rng.Uniform(0.5, 2.0), rng, phi.data());
    VecMat(phi.data(), left_[i].m_inv, c.rows.row(i));  // phi^T ML_i^{-1}
    Lift(p, rng.Uniform(0.5, 2.0), rng, phi.data());
    MatVec(right_[i].m_inv, phi.data(), c.cols.row(i));  // MR_i^{-1} phi
  }
  return c;
}

AmeCiphertext AmeScheme::Encrypt(const float* p, Rng& rng) const {
  std::vector<double> tmp(dim_);
  std::copy(p, p + dim_, tmp.begin());
  return Encrypt(tmp.data(), rng);
}

AmeTrapdoor AmeScheme::GenTrapdoor(const double* q, Rng& rng) const {
  const std::size_t n = lifted_dim();
  const std::size_t one = OneSlot(dim_);

  // G(q) = a(q) e_one^T + e_one d(q)^T with a(q) = [-2q; 1; 0...] and
  // d(q) = [2q; -1; 0...]:
  //   phi(o)^T G(q) phi(p) = r_o r_p [ (||o||^2 - 2 o.q) - (||p||^2 - 2 p.q) ]
  //                        = r_o r_p (dist(o,q) - dist(p,q)).
  std::vector<double> a(n, 0.0), d_vec(n, 0.0);
  for (std::size_t i = 0; i < dim_; ++i) {
    a[i] = -2.0 * q[i];
    d_vec[i] = 2.0 * q[i];
  }
  a[dim_] = 1.0;
  d_vec[dim_] = -1.0;

  AmeTrapdoor t;
  t.mats.reserve(kAmeSplits);
  std::vector<double> la(n), rb(n), lc(n), rd(n);
  for (std::size_t i = 0; i < kAmeSplits; ++i) {
    const double lambda = rng.Uniform(0.5, 2.0);  // positive blinding
    // T_i = lambda * ML_i (a e^T + e d^T) MR_i
    //     = lambda * (ML_i a)(e^T MR_i) + lambda * (ML_i e)(d^T MR_i):
    // two rank-1 outer products — O(n^2) per trapdoor matrix.
    MatVec(left_[i].m, a.data(), la.data());
    VecMat(d_vec.data(), right_[i].m, rd.data());
    // ML_i e_one is column `one` of ML_i; e_one^T MR_i is row `one` of MR_i.
    for (std::size_t r = 0; r < n; ++r) lc[r] = left_[i].m.at(r, one);
    const double* mr_row = right_[i].m.row(one);
    std::copy(mr_row, mr_row + n, rb.begin());

    Matrix ti(n, n);
    for (std::size_t r = 0; r < n; ++r) {
      double* out = ti.row(r);
      const double va = lambda * la[r];
      const double vc = lambda * lc[r];
      for (std::size_t cidx = 0; cidx < n; ++cidx) {
        out[cidx] = va * rb[cidx] + vc * rd[cidx];
      }
    }
    t.mats.push_back(std::move(ti));
  }
  return t;
}

AmeTrapdoor AmeScheme::GenTrapdoor(const float* q, Rng& rng) const {
  std::vector<double> tmp(dim_);
  std::copy(q, q + dim_, tmp.begin());
  return GenTrapdoor(tmp.data(), rng);
}

double AmeScheme::DistanceComp(const AmeCiphertext& o, const AmeCiphertext& p,
                               const AmeTrapdoor& tq) {
  PPANNS_CHECK(tq.mats.size() == kAmeSplits);
  const std::size_t n = tq.mats[0].rows();
  std::vector<double> tmp(n);
  double acc = 0.0;
  // 16 vector-matrix products + 16 inner products (Section III-C cost).
  // Every term is (positive) * (dist(o,q) - dist(p,q)): the sum keeps the
  // exact comparison sign.
  for (std::size_t i = 0; i < kAmeSplits; ++i) {
    VecMat(o.rows.row(i), tq.mats[i], tmp.data());
    acc += Dot(tmp.data(), p.cols.row(i), n);
  }
  return acc;
}

}  // namespace ppanns
