#include "crypto/aspe.h"

#include <cmath>

namespace ppanns {

AspeScheme::AspeScheme(std::size_t dim, AspeVariant variant,
                       InvertibleMatrix m, double scale_hint)
    : dim_(dim),
      variant_(variant),
      m_(std::move(m)),
      // exp(v / exp_norm) must stay in double range for v up to a few times
      // the squared data scale; log(v + log_shift) must have a positive
      // argument. Both are public parameters in the threat model.
      exp_norm_(scale_hint * scale_hint * static_cast<double>(dim)),
      log_shift_(8.0 * scale_hint * scale_hint * static_cast<double>(dim)) {}

Result<AspeScheme> AspeScheme::KeyGen(std::size_t dim, AspeVariant variant,
                                      Rng& rng, double scale_hint) {
  if (dim == 0) return Status::InvalidArgument("ASPE: dim must be positive");
  return AspeScheme(dim, variant, InvertibleMatrix::Random(dim + 2, rng),
                    scale_hint);
}

AspeCiphertext AspeScheme::Encrypt(const double* p) const {
  // a(p) = [-2p; ||p||^2; 1]; Enc_d(p) = M^T a(p) = (a(p)^T M)^T.
  std::vector<double> lift(dim_ + 2);
  double norm2 = 0.0;
  for (std::size_t i = 0; i < dim_; ++i) {
    lift[i] = -2.0 * p[i];
    norm2 += p[i] * p[i];
  }
  lift[dim_] = norm2;
  lift[dim_ + 1] = 1.0;

  AspeCiphertext c;
  c.data.resize(dim_ + 2);
  VecMat(lift.data(), m_.m, c.data.data());
  return c;
}

AspeTrapdoor AspeScheme::GenTrapdoor(const double* q, Rng& rng) const {
  AspeTrapdoor t;
  t.r1 = rng.Uniform(0.5, 2.0);  // positive: preserves comparison order
  t.r2 = rng.SignedUniform(0.5, 2.0);
  t.r3 = rng.SignedUniform(0.5, 2.0);

  // b(q) = [r1*q; r1; r2]; Enc_q(q) = M^{-1} b(q).
  std::vector<double> lift(dim_ + 2);
  for (std::size_t i = 0; i < dim_; ++i) lift[i] = t.r1 * q[i];
  lift[dim_] = t.r1;
  lift[dim_ + 1] = t.r2;

  t.data.resize(dim_ + 2);
  MatVec(m_.m_inv, lift.data(), t.data.data());
  return t;
}

double AspeScheme::Leakage(const AspeCiphertext& cp,
                           const AspeTrapdoor& tq) const {
  // v = <Enc_d(p), Enc_q(q)> = r1*(||p||^2 - 2 p.q) + r2.
  const double v = Dot(cp.data.data(), tq.data.data(), dim_ + 2);
  switch (variant_) {
    case AspeVariant::kLinear:
      return v;
    case AspeVariant::kExponential:
      return std::exp(v / exp_norm_);
    case AspeVariant::kLogarithmic:
      return std::log(v + log_shift_);
    case AspeVariant::kSquare: {
      // Theorem 2 form: L = r1*(v0 + r2)^2 + r3 with v0 = ||p||^2 - 2 p.q.
      const double v0 = (v - tq.r2) / tq.r1;
      const double base = v0 + tq.r2;
      return tq.r1 * base * base + tq.r3;
    }
  }
  return v;
}

}  // namespace ppanns
