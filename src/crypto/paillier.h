// Paillier additively homomorphic encryption — the "homomorphic encryption"
// family of distance-comparable encryption the paper cites (Section I /
// Section III) and excludes from its evaluation "due to their significant
// computational overhead". This implementation exists to *reproduce that
// exclusion quantitatively*: bench/he_exclusion measures a Paillier-based
// secure distance computation against DCE/AME on the same data.
//
// Standard construction with g = n + 1:
//   KeyGen:  n = p*q (distinct primes), lambda = lcm(p-1, q-1),
//            mu = (L(g^lambda mod n^2))^{-1} mod n, L(x) = (x-1)/n.
//   Enc(m):  c = (1 + m*n) * r^n mod n^2, r uniform in Z_n^*.
//   Dec(c):  m = L(c^lambda mod n^2) * mu mod n.
//   Add:     Enc(m1) * Enc(m2) mod n^2        = Enc(m1 + m2)
//   ScalarMul: Enc(m)^k mod n^2               = Enc(k * m)
//
// The substitution for SEAL/HElib (unavailable offline) is documented in
// DESIGN.md; Paillier is the classic instantiation of the HE-based secure
// kNN protocols the paper cites ([34], [42], [43]).

#ifndef PPANNS_CRYPTO_PAILLIER_H_
#define PPANNS_CRYPTO_PAILLIER_H_

#include <cstdint>
#include <vector>

#include "common/bigint.h"
#include "common/rng.h"
#include "common/status.h"

namespace ppanns {

/// A Paillier ciphertext: an element of Z_{n^2}.
struct PaillierCiphertext {
  BigUint value;
};

class Paillier {
 public:
  /// Generates a keypair with `modulus_bits`-bit n (each prime gets half).
  /// 512-bit keys are fine for cost benchmarking; real deployments need
  /// >= 2048.
  static Result<Paillier> KeyGen(std::size_t modulus_bits, Rng& rng);

  /// Encrypts m in [0, n). Randomized.
  PaillierCiphertext Encrypt(const BigUint& m, Rng& rng) const;
  PaillierCiphertext Encrypt(std::uint64_t m, Rng& rng) const {
    return Encrypt(BigUint(m), rng);
  }

  /// Decrypts to m in [0, n).
  BigUint Decrypt(const PaillierCiphertext& c) const;

  /// Homomorphic addition: Enc(a) (+) Enc(b) = Enc(a + b mod n).
  PaillierCiphertext Add(const PaillierCiphertext& a,
                         const PaillierCiphertext& b) const;

  /// Homomorphic plaintext addition: Enc(a) (+) b.
  PaillierCiphertext AddPlain(const PaillierCiphertext& a, const BigUint& b,
                              Rng& rng) const;

  /// Homomorphic scalar multiplication: Enc(a) (*) k = Enc(k * a mod n).
  PaillierCiphertext ScalarMul(const PaillierCiphertext& a,
                               const BigUint& k) const;

  /// Encodes a signed 64-bit integer into Z_n (negatives wrap to n - |v|).
  BigUint EncodeSigned(std::int64_t v) const;
  /// Decodes assuming |value| < n/2.
  std::int64_t DecodeSigned(const BigUint& m) const;

  const BigUint& n() const { return n_; }
  const BigUint& n_squared() const { return n2_; }

 private:
  Paillier() = default;

  BigUint n_, n2_, lambda_, mu_;
};

/// The HE-based secure squared-distance protocol used by the exclusion
/// benchmark: the server holds coordinate-wise Paillier ciphertexts of a
/// database vector p (integer-quantized), receives the plaintext-encoded
/// query expansion, and homomorphically assembles
/// Enc(||p||^2 - 2 p.q + ||q||^2) — d scalar multiplications (modexp each)
/// plus d homomorphic additions per distance. The (authorized) user decrypts
/// and compares. This mirrors the structure of the HE secure-kNN schemes
/// the paper cites.
class HeDistanceProtocol {
 public:
  explicit HeDistanceProtocol(const Paillier& paillier) : he_(&paillier) {}

  /// Owner-side: encrypts p coordinate-wise plus Enc(||p||^2).
  struct EncryptedVector {
    std::vector<PaillierCiphertext> coords;
    PaillierCiphertext norm2;
  };
  EncryptedVector EncryptVector(const std::vector<std::int64_t>& p,
                                Rng& rng) const;

  /// Server-side: Enc(dist^2(p, q)) from the encrypted p and plaintext q.
  /// (q is visible to the server in this simplified protocol variant; the
  /// cost — d modexps — is what the benchmark measures, and blinding q
  /// only adds further cost.)
  PaillierCiphertext DistanceCiphertext(const EncryptedVector& p,
                                        const std::vector<std::int64_t>& q,
                                        Rng& rng) const;

  /// User-side: decrypt and decode the squared distance.
  std::int64_t DecryptDistance(const PaillierCiphertext& c) const;

 private:
  const Paillier* he_;
};

}  // namespace ppanns

#endif  // PPANNS_CRYPTO_PAILLIER_H_
