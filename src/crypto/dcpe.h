// Distance-Comparison-Preserving Encryption (DCPE), Scale-and-Perturb (SAP)
// instance — Section III-B / V-A of the paper, construction from Fuchsbauer
// et al. (SCN 2022), Algorithm 1.
//
// C_p = s*p + lambda_p, where lambda_p is drawn uniformly from the ball
// B(0, s*beta/4): lambda = x * u/||u||, u ~ N(0, I_d),
// x = (s*beta/4) * (x')^{1/d}, x' ~ U(0,1).
//
// SAP is a beta-DCP function: for all o,p,q, if dist(o,q) < dist(p,q) - beta
// (Euclidean, not squared) then dist(C_o,C_q) < dist(C_p,C_q). Ciphertexts
// keep dimension d, so a distance computation over SAP ciphertexts costs
// exactly the same as over plaintexts — this is why the filter phase of the
// PP-ANNS scheme runs on SAP ciphertexts.
//
// As in the paper (Section V-A) the decryption information is deliberately
// not retained: the server-side ciphertexts are never decrypted.

#ifndef PPANNS_CRYPTO_DCPE_H_
#define PPANNS_CRYPTO_DCPE_H_

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/types.h"

namespace ppanns {

/// SAP secret key: scaling factor s and perturbation bound beta.
struct DcpeSecretKey {
  std::size_t dim = 0;
  double s = 1024.0;  ///< scaling factor (paper uses s = 1024)
  double beta = 0.0;  ///< noise bound; valid range [sqrt(M), 2*M*sqrt(d)]
};

/// The SAP scheme (EncSAP of Algorithm 1). beta = 0 yields pure scaling
/// (no noise), used as the leakage-maximal reference point in Fig. 4.
class DcpeScheme {
 public:
  /// Creates a scheme. `beta` may be 0 (no perturbation).
  static Result<DcpeScheme> Create(std::size_t dim, double s, double beta);

  /// Reconstructs a scheme from an existing key.
  static Result<DcpeScheme> FromKey(const DcpeSecretKey& key) {
    return Create(key.dim, key.s, key.beta);
  }

  /// Paper-recommended beta range endpoints for data with max absolute
  /// coordinate M: [sqrt(M), 2*M*sqrt(d)].
  static double MinBeta(double max_abs_coord);
  static double MaxBeta(double max_abs_coord, std::size_t dim);

  /// Encrypts `p` into `out` (length dim). Fresh randomness per call.
  void Encrypt(const float* p, float* out, Rng& rng) const;

  /// Encrypts a whole matrix row-by-row.
  FloatMatrix EncryptMatrix(const FloatMatrix& data, Rng& rng) const;

  /// Upper bound on the noise norm: s*beta/4.
  double NoiseRadius() const { return key_.s * key_.beta / 4.0; }

  const DcpeSecretKey& key() const { return key_; }
  std::size_t dim() const { return key_.dim; }

 private:
  explicit DcpeScheme(DcpeSecretKey key) : key_(key) {}

  DcpeSecretKey key_;
};

}  // namespace ppanns

#endif  // PPANNS_CRYPTO_DCPE_H_
