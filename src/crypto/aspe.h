// ASPE (asymmetric scalar-product-preserving encryption, Wong et al.
// SIGMOD'09) and its "enhanced" variants — Section III-A of the paper.
//
// These schemes are implemented as *attack targets*: the paper proves
// (Theorem 1, Corollaries 1-2, Theorem 2) that every variant that leaks a
// fixed transformation of distances is breakable under a known-plaintext
// attack, which motivates DCE. kpa_attack.h implements the attacks.
//
// Base construction: with invertible M in R^{(d+2)x(d+2)} and the lifts
//   a(p) = [-2p; ||p||^2; 1]             (database side)
//   b(q) = [r1*q; r1; r2]                (query side, r1 > 0)
// the ciphertexts Enc_d(p) = M^T a(p) and Enc_q(q) = M^{-1} b(q) satisfy
//   <Enc_d(p), Enc_q(q)> = <a(p), b(q)> = r1*(||p||^2 - 2 p.q) + r2,
// a per-query linear transformation of dist(p,q) (the ||q||^2 term is a
// per-query constant absorbed into the comparison).
//
// Variants transform that leaked value v:
//   kLinear      L = v
//   kExponential L = exp(v / norm)   (norm keeps exp in range; invertible)
//   kLogarithmic L = log(v + shift)  (shift keeps the argument positive)
//   kSquare      L = r1*(v0 + r2)^2 + r3, v0 = ||p||^2 - 2 p.q (Theorem 2)

#ifndef PPANNS_CRYPTO_ASPE_H_
#define PPANNS_CRYPTO_ASPE_H_

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "linalg/matrix.h"

namespace ppanns {

enum class AspeVariant {
  kLinear,
  kExponential,
  kLogarithmic,
  kSquare,
};

/// ASPE database-vector ciphertext (length d+2).
struct AspeCiphertext {
  std::vector<double> data;
};

/// ASPE query trapdoor. Carries the per-query randomizers so the scheme can
/// compute the leaked transformation; a real deployment would fold them into
/// the ciphertext, the attack surface is identical.
struct AspeTrapdoor {
  std::vector<double> data;  ///< M^{-1} b(q), length d+2
  double r1 = 1.0;
  double r2 = 0.0;
  double r3 = 0.0;  ///< square variant only
};

/// The ASPE scheme with a configurable leakage variant.
class AspeScheme {
 public:
  static Result<AspeScheme> KeyGen(std::size_t dim, AspeVariant variant,
                                   Rng& rng, double scale_hint = 1.0);

  AspeCiphertext Encrypt(const double* p) const;
  AspeTrapdoor GenTrapdoor(const double* q, Rng& rng) const;

  /// The value the server observes for the pair (C_p, T_q): the variant's
  /// transformation of r1*(||p||^2 - 2 p.q) + r2. Monotone in dist(p,q) for
  /// a fixed query, so the server can rank candidates — and, per Section
  /// III-A, an attacker can recover plaintexts from enough of these values.
  double Leakage(const AspeCiphertext& cp, const AspeTrapdoor& tq) const;

  AspeVariant variant() const { return variant_; }
  std::size_t dim() const { return dim_; }
  /// Normalization constant used by the exponential variant.
  double exp_norm() const { return exp_norm_; }
  /// Shift used by the logarithmic variant.
  double log_shift() const { return log_shift_; }

 private:
  AspeScheme(std::size_t dim, AspeVariant variant, InvertibleMatrix m,
             double scale_hint);

  std::size_t dim_;
  AspeVariant variant_;
  InvertibleMatrix m_;
  double exp_norm_;
  double log_shift_;
};

}  // namespace ppanns

#endif  // PPANNS_CRYPTO_ASPE_H_
