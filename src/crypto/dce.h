// Distance Comparison Encryption (DCE) — Section IV of the paper.
//
// DCE encrypts vectors so that an untrusted server, given ciphertexts C_o and
// C_p of database vectors o, p and a trapdoor T_q of a query q, can compute
//
//   Z(o,p,q) = DistanceComp(C_o, C_p, T_q)
//            = 2 r_o r_p r_q (dist(o,q) - dist(p,q)),     r_o, r_p, r_q > 0
//
// whose *sign* answers the distance comparison exactly (Theorem 3) while the
// magnitudes are blinded by per-vector positive randomizers. One comparison
// costs 4*(2d+16) = 8d+64 multiplies ~ O(d) (the paper counts 4d+32 MACs for
// the two fused element-wise products).
//
// Construction (two phases):
//  * Vector randomization (Eq. 1-5): pairwise sum/difference mixing, random
//    permutation pi_1, split into two halves padded with blinding scalars
//    (alpha, r', gamma), per-half matrix encryption by M1 / M2, permutation
//    pi_2; produces p_bar in R^{d+8} with <p_bar, q_bar> = ||p||^2 - 2 p.q.
//  * Vector transformation (Eq. 8-16): a (2d+16)x(2d+16) invertible M3 split
//    into Mup / Mdown, the polarization identity (Eq. 6) and the key vectors
//    kv1..kv4 with kv1 o kv3 = kv2 o kv4 turn the matrix product into four
//    element-wise-maskable vectors per database vector and a single trapdoor
//    vector per query.
//
// Shapes: database ciphertext = 4 vectors in R^{2d+16} (8d+64 doubles);
// trapdoor = 1 vector in R^{2d+16}.
//
// Odd dimensions: step 1 pairs adjacent coordinates, so d must be even; odd
// inputs are zero-padded to d+1, which preserves all Euclidean distances.

#ifndef PPANNS_CRYPTO_DCE_H_
#define PPANNS_CRYPTO_DCE_H_

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "linalg/matrix.h"
#include "linalg/permutation.h"

namespace ppanns {

/// Database-vector ciphertext: the four masked vectors (p'_1..p'_4 of Eq. 13)
/// stored contiguously, each of length 2*d_pad+16.
struct DceCiphertext {
  std::vector<double> data;  ///< 4 * (2*d_pad + 16) doubles
  std::size_t block = 0;     ///< length of each of the four blocks

  const double* p1() const { return data.data(); }
  const double* p2() const { return data.data() + block; }
  const double* p3() const { return data.data() + 2 * block; }
  const double* p4() const { return data.data() + 3 * block; }
};

/// Query trapdoor (q_bar' of Eq. 15), length 2*d_pad+16.
struct DceTrapdoor {
  std::vector<double> data;
};

/// Secret key SK = {M1, M2, M3, pi1, pi2, r1..r4, kv1..kv4}.
/// Held by the data owner and (for TrapGen) the authorized user; never by the
/// server.
struct DceSecretKey {
  std::size_t dim = 0;      ///< original vector dimension d
  std::size_t dim_pad = 0;  ///< d rounded up to even
  double scale = 1.0;       ///< magnitude hint used to size blinding scalars

  InvertibleMatrix m1;  ///< (d_pad/2+4)^2, vector randomization step 4
  InvertibleMatrix m2;  ///< (d_pad/2+4)^2
  Matrix m_up;          ///< first d_pad+8 rows of M3
  Matrix m_down;        ///< last d_pad+8 rows of M3
  Matrix m3_inv;        ///< (2*d_pad+16)^2
  Permutation pi1;      ///< on d_pad coordinates
  Permutation pi2;      ///< on d_pad+8 coordinates
  double r1 = 0, r2 = 0, r3 = 0, r4 = 0;  ///< shared blinding scalars
  std::vector<double> kv1, kv2, kv3, kv4;  ///< kv1 o kv3 == kv2 o kv4
};

/// The DCE scheme: KeyGen / Enc / TrapGen / DistanceComp (Section IV-B).
class DceScheme {
 public:
  /// Generates a secret key for d-dimensional vectors.
  ///
  /// `scale_hint` should be a rough estimate of the typical vector norm
  /// (e.g. sqrt(mean ||p||^2)); blinding scalars are drawn at that magnitude
  /// so that no coordinate of the randomized vector dominates the others,
  /// which both helps security (no coordinate is identifiable by magnitude)
  /// and keeps the comparison numerically well-conditioned.
  static Result<DceScheme> KeyGen(std::size_t dim, Rng& rng,
                                  double scale_hint = 1.0);

  /// Reconstructs a scheme from a previously generated key (e.g. one
  /// deserialized via crypto/key_io.h). The key is trusted to be
  /// structurally valid; DeserializeDceKey performs that validation.
  static DceScheme FromKey(DceSecretKey key) { return DceScheme(std::move(key)); }

  /// Encrypts a database vector (Enc). Fresh randomness per call: encrypting
  /// the same vector twice yields different ciphertexts.
  DceCiphertext Encrypt(const float* p, Rng& rng) const;
  DceCiphertext Encrypt(const double* p, Rng& rng) const;

  /// Produces the trapdoor for a query vector (TrapGen). Randomized.
  DceTrapdoor GenTrapdoor(const float* q, Rng& rng) const;
  DceTrapdoor GenTrapdoor(const double* q, Rng& rng) const;

  /// Z(o,p,q) = 2 r_o r_p r_q (dist(o,q) - dist(p,q)). Negative iff o is
  /// strictly closer to q than p (Theorem 3). Static: requires no key, this
  /// is the server-side operation.
  static double DistanceComp(const DceCiphertext& o, const DceCiphertext& p,
                             const DceTrapdoor& tq);

  /// Convenience predicate: true iff dist(o,q) < dist(p,q).
  static bool Closer(const DceCiphertext& o, const DceCiphertext& p,
                     const DceTrapdoor& tq) {
    return DistanceComp(o, p, tq) < 0.0;
  }

  const DceSecretKey& key() const { return key_; }
  std::size_t dim() const { return key_.dim; }
  /// The block/trapdoor length `dim` dictates, without a key: keyless
  /// validators (e.g. the serving facade checking an EncryptedVector's
  /// shape) must agree with KeyGen on the padding rule, so it is defined
  /// here once.
  static std::size_t TransformedDim(std::size_t dim) {
    const std::size_t dim_pad = (dim % 2 == 0) ? dim : dim + 1;
    return 2 * dim_pad + 16;
  }
  /// Length of each ciphertext block / the trapdoor: 2*d_pad + 16.
  std::size_t transformed_dim() const { return TransformedDim(key_.dim); }
  /// Total doubles per database ciphertext: 8*d_pad + 64.
  std::size_t ciphertext_size() const { return 4 * transformed_dim(); }

 private:
  explicit DceScheme(DceSecretKey key) : key_(std::move(key)) {}

  /// Phase 1 (vector randomization) for a database vector: returns
  /// p_bar in R^{d_pad+8}.
  std::vector<double> RandomizeData(const double* p, Rng& rng) const;
  /// Phase 1 for a query vector: returns q_bar in R^{d_pad+8}.
  std::vector<double> RandomizeQuery(const double* q, Rng& rng) const;

  DceSecretKey key_;
};

}  // namespace ppanns

#endif  // PPANNS_CRYPTO_DCE_H_
