#include "index/nsw.h"

#include <algorithm>
#include <queue>

namespace ppanns {

namespace {

struct FartherFirst {
  bool operator()(const Neighbor& a, const Neighbor& b) const {
    return a.distance > b.distance || (a.distance == b.distance && a.id > b.id);
  }
};

}  // namespace

NswGraph::NswGraph(std::size_t dim, NswParams params)
    : dim_(dim), params_(params), data_(0, dim) {
  PPANNS_CHECK(dim > 0);
  PPANNS_CHECK(params.m >= 2);
}

std::vector<Neighbor> NswGraph::BeamSearch(const float* query,
                                           std::size_t ef) const {
  std::vector<std::uint8_t> visited(data_.size(), 0);
  std::priority_queue<Neighbor, std::vector<Neighbor>, FartherFirst> frontier;
  std::priority_queue<Neighbor> results;

  const float entry_dist = Distance(query, entry_point_);
  frontier.push(Neighbor{entry_point_, entry_dist});
  results.push(Neighbor{entry_point_, entry_dist});
  visited[entry_point_] = 1;

  while (!frontier.empty()) {
    const Neighbor cand = frontier.top();
    if (results.size() >= ef && cand.distance > results.top().distance) break;
    frontier.pop();
    for (VectorId nb : adjacency_[cand.id]) {
      if (visited[nb]) continue;
      visited[nb] = 1;
      const float d = Distance(query, nb);
      if (results.size() < ef || d < results.top().distance) {
        frontier.push(Neighbor{nb, d});
        results.push(Neighbor{nb, d});
        if (results.size() > ef) results.pop();
      }
    }
  }
  std::vector<Neighbor> out(results.size());
  for (std::size_t i = results.size(); i > 0; --i) {
    out[i - 1] = results.top();
    results.pop();
  }
  return out;
}

std::vector<VectorId> NswGraph::SelectDiverse(const float* base,
                                              std::vector<Neighbor> candidates,
                                              std::size_t m) const {
  std::sort(candidates.begin(), candidates.end());
  std::vector<VectorId> selected;
  for (const Neighbor& c : candidates) {
    if (selected.size() >= m) break;
    bool diverse = true;
    for (VectorId s : selected) {
      if (SquaredL2(data_.row(c.id), data_.row(s), dim_) < c.distance) {
        diverse = false;
        break;
      }
    }
    if (diverse) selected.push_back(c.id);
  }
  for (const Neighbor& c : candidates) {
    if (selected.size() >= m) break;
    if (std::find(selected.begin(), selected.end(), c.id) == selected.end()) {
      selected.push_back(c.id);
    }
  }
  return selected;
}

VectorId NswGraph::Add(const float* v) {
  const VectorId id = data_.Append(v);
  adjacency_.emplace_back();
  if (entry_point_ == kInvalidVectorId) {
    entry_point_ = id;
    return id;
  }

  std::vector<Neighbor> cands = BeamSearch(v, params_.ef_construction);
  cands.erase(std::remove_if(cands.begin(), cands.end(),
                             [&](const Neighbor& c) { return c.id == id; }),
              cands.end());
  const std::vector<VectorId> neighbors = SelectDiverse(v, cands, params_.m);
  adjacency_[id] = neighbors;
  for (VectorId nb : neighbors) {
    auto& back = adjacency_[nb];
    if (std::find(back.begin(), back.end(), id) != back.end()) continue;
    if (back.size() < params_.m) {
      back.push_back(id);
    } else {
      std::vector<Neighbor> refresh;
      const float* nb_vec = data_.row(nb);
      refresh.reserve(back.size() + 1);
      for (VectorId existing : back) {
        refresh.push_back(
            Neighbor{existing, SquaredL2(nb_vec, data_.row(existing), dim_)});
      }
      refresh.push_back(Neighbor{id, SquaredL2(nb_vec, data_.row(id), dim_)});
      back = SelectDiverse(nb_vec, std::move(refresh), params_.m);
    }
  }
  return id;
}

void NswGraph::AddBatch(const FloatMatrix& batch) {
  PPANNS_CHECK(batch.dim() == dim_);
  for (std::size_t i = 0; i < batch.size(); ++i) Add(batch.row(i));
}

void NswGraph::ReseatEntryPoint(Rng& rng, std::size_t samples) {
  if (data_.size() < 2) return;
  // Approximate medoid: among `samples` random nodes, pick the one with the
  // smallest mean distance to another sampled set.
  const auto probes = rng.Sample(data_.size(), std::min(samples, data_.size()));
  const auto refs = rng.Sample(data_.size(), std::min(samples, data_.size()));
  double best = -1.0;
  for (VectorId cand : probes) {
    double sum = 0.0;
    for (VectorId ref : refs) {
      sum += SquaredL2(data_.row(cand), data_.row(ref), dim_);
    }
    if (best < 0.0 || sum < best) {
      best = sum;
      entry_point_ = cand;
    }
  }
}

std::vector<Neighbor> NswGraph::Search(const float* query, std::size_t k,
                                       std::size_t ef_search) const {
  if (entry_point_ == kInvalidVectorId) return {};
  std::vector<Neighbor> results = BeamSearch(query, std::max(ef_search, k));
  if (results.size() > k) results.resize(k);
  return results;
}

}  // namespace ppanns
