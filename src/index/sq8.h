// Int8 scalar quantization (per-dimension minmax) for the filter-stage fast
// tier of the flat backends (brute force, IVF).
//
// The paper's filter/refine split makes lossy filter distances free
// recall-wise: the filter phase only has to surface a shortlist that contains
// the true neighbors, and the refine phase re-ranks with exact distances. The
// SQ tier exploits that — rows are quantized to one byte per dimension at
// build time (4x smaller than float, and the shuffle-free int8 kernel scans
// them several times faster), the scan keeps an oversampled shortlist of
// `refine_factor * k` candidates by int32 code distance, and the shortlist is
// re-ranked with exact float SquaredL2 before anything is returned. Returned
// ids and distances are therefore the exact-scan answers whenever the true
// top-k fall inside the shortlist (pinned at recall@10 == exact by
// tests/linalg/kernels_test.cc).
//
// Since DCPE applies a random rotation before the SAP ciphertexts reach the
// index, dimensions are statistically homogeneous and the unweighted int32
// code distance ranks candidates faithfully.

#ifndef PPANNS_INDEX_SQ8_H_
#define PPANNS_INDEX_SQ8_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/serialize.h"
#include "common/status.h"
#include "common/types.h"

namespace ppanns {

/// Filter-tier scalar-quantization knobs, threaded from PpannsParams down to
/// the flat backends through SecureFilterIndexOptions.
struct SqParams {
  /// Off by default: the SQ sidecar changes the serialized format (version 2)
  /// and packages must stay byte-identical unless the owner opts in (--sq).
  bool enabled = false;
  /// Shortlist size as a multiple of k; the refine stage re-ranks
  /// max(refine_factor * k, 32) candidates with exact float distances.
  std::size_t refine_factor = 8;
  /// Train the quantizer once this many rows have accumulated; until then
  /// searches use the exact float scan.
  std::size_t train_min = 256;
};

/// Per-dimension minmax scalar quantizer with 7-bit codes stored as int8,
/// offset so code -64 is the dimension's minimum:
/// encode(v) = round((v - min) / scale) - 64 clamped to [-64, 63].
/// The 7-bit range is deliberate: any code difference then fits in int8
/// (|a-b| <= 127), which is SquaredL2Int8's range contract and what lets the
/// SIMD backends square byte differences without widening shuffles.
class Sq8Quantizer {
 public:
  Sq8Quantizer() = default;

  bool trained() const { return dim_ > 0; }
  std::size_t dim() const { return dim_; }

  /// Fits min/scale per dimension over `rows` (must be non-empty).
  void Train(RowView rows);

  /// Quantizes one row into `out` (dim int8 codes). Out-of-range values
  /// (rows added after training) clamp to the grid edge.
  void Encode(const float* v, std::int8_t* out) const;

  /// Reconstructs the grid point of a code; |Decode(Encode(x)) - x| is at
  /// most scale/2 per dimension for in-range x.
  void Decode(const std::int8_t* code, float* out) const;

  float min_at(std::size_t j) const { return min_[j]; }
  float scale_at(std::size_t j) const { return scale_[j]; }

  void Serialize(BinaryWriter* out) const;
  static Result<Sq8Quantizer> Deserialize(BinaryReader* in);

 private:
  std::size_t dim_ = 0;
  std::vector<float> min_;
  std::vector<float> scale_;  ///< (max - min) / 127, floored at a tiny epsilon
};

/// Shortlist size the SQ scan keeps for a top-k request.
inline std::size_t SqShortlistSize(const SqParams& sq, std::size_t k) {
  return std::max<std::size_t>(sq.refine_factor * k, 32);
}

/// Deterministic bounded selector for the SQ filter scan: keeps the `cap`
/// smallest (code distance, id) pairs seen so far. Accepted offers append to
/// a flat buffer that is pruned back to `cap` with nth_element whenever it
/// fills — amortized O(1) per accept, against O(log cap) per accept for a
/// binary heap. The shortlist cap is refine_factor * k (an order of
/// magnitude above the float scans' k), so with concentrated code
/// distances the heap's sift-downs were the dominant non-kernel cost of the
/// filter stage. Selection depends only on the integer code distances and
/// the offer sequence, so it is identical across kernel backends.
class SqShortlist {
 public:
  explicit SqShortlist(std::size_t cap) : cap_(cap) {
    buf_.reserve(2 * cap_);
  }

  /// Offers with dist >= this are no-ops; hot loops can pre-check it and
  /// skip the call. Tightens as the buffer prunes.
  std::int32_t threshold() const { return limit_; }

  void Offer(VectorId id, std::int32_t dist) {
    if (dist >= limit_) return;
    buf_.push_back(Entry{dist, id});
    if (buf_.size() >= 2 * cap_) Prune();
  }

  /// Drains the selector: the kept ids sorted ascending by (dist, id).
  std::vector<VectorId> ExtractIds() {
    if (buf_.size() > cap_) Prune();
    std::sort(buf_.begin(), buf_.end(), Less);
    std::vector<VectorId> ids;
    ids.reserve(buf_.size());
    for (const Entry& e : buf_) ids.push_back(e.id);
    buf_.clear();
    return ids;
  }

 private:
  struct Entry {
    std::int32_t dist;
    VectorId id;
  };
  static bool Less(const Entry& a, const Entry& b) {
    return a.dist != b.dist ? a.dist < b.dist : a.id < b.id;
  }

  void Prune() {
    std::nth_element(buf_.begin(), buf_.begin() + (cap_ - 1), buf_.end(),
                     Less);
    limit_ = buf_[cap_ - 1].dist;
    buf_.resize(cap_);
  }

  std::size_t cap_;
  std::int32_t limit_ = std::numeric_limits<std::int32_t>::max();
  std::vector<Entry> buf_;
};

/// Refine stage shared by the flat backends: re-ranks `shortlist` (ids into
/// `data`) with exact float distances through the batched kernel and returns
/// the top-k ascending by (distance, id) — exactly what the float scan would
/// have returned for any true neighbor that made the shortlist.
std::vector<Neighbor> RefineExact(const FloatMatrix& data, const float* query,
                                  const std::vector<VectorId>& shortlist,
                                  std::size_t k);

}  // namespace ppanns

#endif  // PPANNS_INDEX_SQ8_H_
