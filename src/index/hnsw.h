// Hierarchical Navigable Small World proximity graph (Malkov & Yashunin,
// TPAMI 2020) — the k-ANNS substrate of the paper's privacy-preserving index
// (Section V-A). Implemented from scratch.
//
// In the PP-ANNS scheme the HNSW graph is built over DCPE/SAP *ciphertexts*
// (never plaintexts), so its edges encode only approximate neighborhoods;
// the index itself is agnostic to what the float vectors are.
//
// Supported operations:
//  * Add            — incremental insertion (Algorithm 1 of the HNSW paper,
//                     with the diversifying neighbor-selection heuristic),
//  * Search         — ef-bounded best-first search (Algorithms 2 & 5),
//  * Remove         — deletion with in-neighbor repair, the maintenance
//                     strategy of Section V-D of the PP-ANNS paper,
//  * Serialize/Deserialize — byte-exact persistence.

#ifndef PPANNS_INDEX_HNSW_H_
#define PPANNS_INDEX_HNSW_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/rng.h"
#include "common/search_context.h"
#include "common/serialize.h"
#include "common/status.h"
#include "common/types.h"

namespace ppanns {

/// HNSW construction parameters (paper defaults in parentheses follow the
/// evaluation setup of Section VII-A: m=40, ef_construction=600; the library
/// defaults are the common general-purpose values).
struct HnswParams {
  std::size_t m = 16;                ///< max out-degree on levels > 0
  std::size_t ef_construction = 200; ///< beam width during insertion
  std::uint64_t seed = 0x5eed;       ///< level-assignment randomness

  /// Max out-degree at level 0 (2*m per the HNSW paper).
  std::size_t max_m0() const { return 2 * m; }
};

/// Aggregate graph statistics (used by tests and DESIGN.md ablations).
struct HnswStats {
  std::size_t num_nodes = 0;       ///< live (non-deleted) nodes
  std::size_t num_deleted = 0;
  int max_level = -1;
  std::size_t total_edges_level0 = 0;
  double avg_out_degree_level0 = 0.0;
};

/// The HNSW index. Owns a copy of the inserted vectors.
class HnswIndex {
 public:
  HnswIndex(std::size_t dim, HnswParams params);

  /// Inserts a vector, returning its id (dense, monotonically increasing;
  /// ids of removed vectors are not reused).
  VectorId Add(const float* v);

  /// Inserts all rows of `data` in order.
  void AddBatch(const FloatMatrix& data);

  /// Returns up to k (id, distance) pairs ascending by squared L2 distance.
  /// `ef_search` is the result-set beam width (clamped to >= k). If
  /// `visited_out` is non-null it receives the number of distance
  /// computations performed (used by interactive-baseline cost models).
  /// `ctx`, when non-null, is probed as the beam expands: the search stops
  /// early on cancellation / deadline / node budget (returning the
  /// best-so-far beam) and its stats accumulate nodes visited and distance
  /// computations. A null context is the zero-overhead legacy path and the
  /// returned ids are bit-for-bit identical either way unless the context
  /// trips.
  std::vector<Neighbor> Search(const float* query, std::size_t k,
                               std::size_t ef_search,
                               std::size_t* visited_out = nullptr,
                               SearchContext* ctx = nullptr) const;

  /// Removes a vector and repairs the graph: every in-neighbor of `id` gets
  /// its edge dropped and is re-linked by a fresh neighbor search, per the
  /// deletion strategy of Section V-D (server-only, no data-owner help).
  Status Remove(VectorId id);

  bool IsDeleted(VectorId id) const;
  std::size_t size() const { return data_.size() - num_deleted_; }
  std::size_t capacity() const { return data_.size(); }
  std::size_t dim() const { return dim_; }
  const HnswParams& params() const { return params_; }
  const FloatMatrix& data() const { return data_; }

  /// Out-neighbors of `id` at `level` (for tests / graph analyses).
  const std::vector<VectorId>& NeighborsAt(VectorId id, std::size_t level) const;
  int LevelOf(VectorId id) const;

  HnswStats ComputeStats() const;

  void Serialize(BinaryWriter* out) const;
  static Result<HnswIndex> Deserialize(BinaryReader* in);

 private:
  struct Node {
    int level = 0;
    bool deleted = false;
    /// adjacency[l] = out-neighbors at level l, 0 <= l <= level.
    std::vector<std::vector<VectorId>> adjacency;
  };

  /// Epoch-tagged visited set; one borrowed per search via a free-list so
  /// concurrent const searches are safe.
  struct VisitedList {
    std::vector<std::uint32_t> tags;
    std::uint32_t epoch = 0;
  };
  class VisitedPool {
   public:
    std::unique_ptr<VisitedList> Acquire(std::size_t n);
    void Release(std::unique_ptr<VisitedList> vl);

   private:
    std::mutex mu_;
    std::vector<std::unique_ptr<VisitedList>> free_;
  };

  float Distance(const float* a, VectorId b) const {
    return SquaredL2(a, data_.row(b), dim_);
  }

  /// Draws the level for a new node: floor(-ln(U) * (1/ln m)).
  int RandomLevel();

  /// Greedy descent at one level: repeatedly move to the closest neighbor.
  /// `dist_count` accumulates distance computations when non-null.
  VectorId GreedyClosest(const float* query, VectorId start, int level,
                         std::size_t* dist_count = nullptr) const;

  /// Best-first beam search at one level (Algorithm 2). Returns up to `ef`
  /// nearest candidates sorted ascending. Deleted nodes stay traversable but
  /// are not returned. `dist_count` accumulates distance computations;
  /// `ctx` (nullable) makes the expansion loop cancellable.
  std::vector<Neighbor> SearchLayer(const float* query, VectorId entry,
                                    std::size_t ef, int level,
                                    VisitedList* visited,
                                    std::size_t* dist_count = nullptr,
                                    SearchContext* ctx = nullptr) const;

  /// The diversifying heuristic (Algorithm 4): selects up to `m` neighbors
  /// such that each kept candidate is closer to the base vector than to any
  /// already-kept neighbor.
  std::vector<VectorId> SelectNeighbors(const float* base,
                                        std::vector<Neighbor> candidates,
                                        std::size_t m) const;

  /// Links `id` at `level` to `neighbors` and back, shrinking overflowing
  /// adjacency lists with the heuristic.
  void Connect(VectorId id, int level, const std::vector<VectorId>& neighbors);

  /// Re-links node `v` at `level` after one of its out-edges was removed.
  void RepairNode(VectorId v, int level);

  std::size_t dim_;
  HnswParams params_;
  double level_mult_;
  Rng level_rng_;
  FloatMatrix data_;
  std::vector<Node> nodes_;
  VectorId entry_point_ = kInvalidVectorId;
  int max_level_ = -1;
  std::size_t num_deleted_ = 0;
  // Behind unique_ptr: the pool's mutex would otherwise make the index
  // non-movable.
  mutable std::unique_ptr<VisitedPool> visited_pool_;
};

}  // namespace ppanns

#endif  // PPANNS_INDEX_HNSW_H_
