// Hierarchical Navigable Small World proximity graph (Malkov & Yashunin,
// TPAMI 2020) — the k-ANNS substrate of the paper's privacy-preserving index
// (Section V-A). Implemented from scratch.
//
// In the PP-ANNS scheme the HNSW graph is built over DCPE/SAP *ciphertexts*
// (never plaintexts), so its edges encode only approximate neighborhoods;
// the index itself is agnostic to what the float vectors are.
//
// Supported operations:
//  * Add            — incremental insertion (Algorithm 1 of the HNSW paper,
//                     with the diversifying neighbor-selection heuristic),
//  * AddBatchParallel — bulk insertion fanned across build threads with
//                     fine-grained (striped per-node) locking; one graph's
//                     construction scales with cores, compounding with the
//                     cross-shard parallelism of the sharded builder,
//  * Search         — ef-bounded best-first search (Algorithms 2 & 5),
//  * Remove         — deletion with in-neighbor repair, the maintenance
//                     strategy of Section V-D of the PP-ANNS paper,
//  * Serialize/Deserialize — byte-exact persistence.

#ifndef PPANNS_INDEX_HNSW_H_
#define PPANNS_INDEX_HNSW_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/rng.h"
#include "common/search_context.h"
#include "common/serialize.h"
#include "common/status.h"
#include "common/types.h"

namespace ppanns {

class ThreadPool;

/// HNSW construction parameters (paper defaults in parentheses follow the
/// evaluation setup of Section VII-A: m=40, ef_construction=600; the library
/// defaults are the common general-purpose values).
struct HnswParams {
  std::size_t m = 16;                ///< max out-degree on levels > 0
  std::size_t ef_construction = 200; ///< beam width during insertion
  std::uint64_t seed = 0x5eed;       ///< level-assignment randomness

  /// Max out-degree at level 0 (2*m per the HNSW paper).
  std::size_t max_m0() const { return 2 * m; }
};

/// Aggregate graph statistics (used by tests and DESIGN.md ablations).
struct HnswStats {
  std::size_t num_nodes = 0;       ///< live (non-deleted) nodes
  std::size_t num_deleted = 0;
  int max_level = -1;
  std::size_t total_edges_level0 = 0;
  double avg_out_degree_level0 = 0.0;
};

/// The HNSW index. Owns a copy of the inserted vectors.
///
/// Thread-safety contract: `Search` is const and safe to call concurrently
/// with other `Search` calls. `AddBatchParallel` synchronizes its own build
/// stripes internally (striped per-node adjacency locks, atomic entry
/// state) but is exclusive against everything else: no Search (its
/// adjacency reads are lock-free), no other mutation (Add/Remove/another
/// batch), and no move of the index object may overlap it.
class HnswIndex {
 public:
  HnswIndex(std::size_t dim, HnswParams params);

  // The entry state is an atomic member, so the compiler-generated moves are
  // deleted; these move the packed value. Never move mid-build.
  HnswIndex(HnswIndex&& other) noexcept;
  HnswIndex& operator=(HnswIndex&& other) noexcept;
  HnswIndex(const HnswIndex&) = delete;
  HnswIndex& operator=(const HnswIndex&) = delete;

  /// Inserts a vector, returning its id (dense, monotonically increasing;
  /// ids of removed vectors are not reused).
  VectorId Add(const float* v);

  /// Inserts all rows of `data` in order.
  void AddBatch(const FloatMatrix& data);

  /// Inserts all rows of `data` with the construction fanned across
  /// `num_threads` workers (0 picks the pool's width, or 1 without a pool).
  ///
  /// Determinism contract: the build is byte-reproducible regardless of the
  /// thread count. Every node's level comes from ONE stream seeded
  /// `params.seed` (mixed with the batch's base id so successive batches get
  /// fresh streams), and num_threads >= 2 runs a wave-barrier schedule —
  /// each wave's items search the *frozen* committed graph in parallel
  /// (read-only; their edge selections depend only on that snapshot), then
  /// commit sequentially in ascending id order. Any T >= 2 therefore
  /// produces the identical graph, and a serialized package built with
  /// build_threads=8 equals one built with build_threads=2 bit for bit
  /// (pinned by tests/index/hnsw_parallel_build_test.cc). num_threads == 1
  /// keeps the original one-at-a-time insertion order and stays
  /// bit-identical to AddBatch on an empty index; its graph differs from the
  /// wave-built one (each insert sees all previous ones, a wave's items do
  /// not see each other), with recall within noise of sequential.
  ///
  /// `pool` is used for the stripes when calling from outside it; from
  /// inside one of its workers (the per-shard sharded build) or with a
  /// single-worker pool, dedicated threads are spawned instead so
  /// shards x build_threads stripes genuinely overlap and queued stripes can
  /// never deadlock behind blocked shard tasks. A null pool always uses
  /// dedicated threads.
  ///
  /// Takes a RowView so strided callers (the round-robin sharded build)
  /// insert straight from the interleaved SAP matrix without materializing a
  /// per-shard copy; a FloatMatrix converts implicitly.
  void AddBatchParallel(RowView data, ThreadPool* pool,
                        std::size_t num_threads = 0);

  /// Returns up to k (id, distance) pairs ascending by squared L2 distance.
  /// `ef_search` is the result-set beam width (clamped to >= k). If
  /// `visited_out` is non-null it receives the number of distance
  /// computations performed (used by interactive-baseline cost models).
  /// `ctx`, when non-null, is probed as the beam expands: the search stops
  /// early on cancellation / deadline / node budget (returning the
  /// best-so-far beam) and its stats accumulate nodes visited and distance
  /// computations. A null context is the zero-overhead legacy path and the
  /// returned ids are bit-for-bit identical either way unless the context
  /// trips.
  std::vector<Neighbor> Search(const float* query, std::size_t k,
                               std::size_t ef_search,
                               std::size_t* visited_out = nullptr,
                               SearchContext* ctx = nullptr) const;

  /// Removes a vector and repairs the graph: every in-neighbor of `id` gets
  /// its edge dropped and is re-linked by a fresh neighbor search, per the
  /// deletion strategy of Section V-D (server-only, no data-owner help).
  ///
  /// The in-neighbor sweep — the O(n) part — fans across the global pool:
  /// unlinking partitions the nodes (no locks needed), then the repairs run
  /// concurrently through the same striped per-node locks as
  /// AddBatchParallel. Like the parallel build, Remove is exclusive against
  /// Search and all other mutation; repaired edge sets can vary with thread
  /// interleaving (the tests pin recall and reachability, not exact edges).
  Status Remove(VectorId id);

  bool IsDeleted(VectorId id) const;
  std::size_t size() const { return data_.size() - num_deleted_; }
  std::size_t capacity() const { return data_.size(); }
  std::size_t dim() const { return dim_; }
  const HnswParams& params() const { return params_; }
  const FloatMatrix& data() const { return data_; }

  /// Out-neighbors of `id` at `level` (for tests / graph analyses).
  const std::vector<VectorId>& NeighborsAt(VectorId id, std::size_t level) const;
  int LevelOf(VectorId id) const;

  HnswStats ComputeStats() const;

  void Serialize(BinaryWriter* out) const;
  static Result<HnswIndex> Deserialize(BinaryReader* in);

  /// Test hook: plants `epoch` in a pooled visited list so the next scans
  /// cross the uint32 epoch wrap. Regression surface for the wrap-aliasing
  /// reorder (the wrap-safe advance now happens before a scan tags anything,
  /// never after).
  void PrimeVisitedEpochForTest(std::uint32_t epoch);

 private:
  struct Node {
    int level = 0;
    bool deleted = false;
    /// adjacency[l] = out-neighbors at level l, 0 <= l <= level. During a
    /// parallel build every access goes through the node's stripe lock;
    /// `level` and `deleted` are immutable while a build runs.
    std::vector<std::vector<VectorId>> adjacency;
  };

  /// Epoch-tagged visited set; one borrowed per search via a free-list so
  /// concurrent const searches are safe.
  struct VisitedList {
    std::vector<std::uint32_t> tags;
    std::uint32_t epoch = 0;

    /// Advances to a fresh epoch *before* a scan uses it. On wrap the tags
    /// are cleared first, so a recycled tag value can never alias a visited
    /// mark within the scan (or within one multi-level insert).
    std::uint32_t NextEpoch() {
      if (++epoch == 0) {
        std::fill(tags.begin(), tags.end(), 0u);
        epoch = 1;
      }
      return epoch;
    }
  };
  class VisitedPool {
   public:
    std::unique_ptr<VisitedList> Acquire(std::size_t n);
    void Release(std::unique_ptr<VisitedList> vl);

   private:
    std::mutex mu_;
    std::vector<std::unique_ptr<VisitedList>> free_;
  };

  /// Fine-grained build synchronization: adjacency mutations and snapshots
  /// take the owning node's stripe; `promote_mu` serializes entry-point
  /// promotions (the only global lock left in the build, taken once per
  /// level-exceeding insert).
  struct BuildLocks {
    static constexpr std::size_t kStripes = 1024;
    std::mutex stripes[kStripes];
    std::mutex promote_mu;

    std::mutex& ForNode(VectorId id) { return stripes[id % kStripes]; }
  };

  /// (entry point, max level) packed into one word so concurrent readers can
  /// never observe a torn pair (e.g. a promoted level with the old entry,
  /// whose adjacency would be too shallow for the descent).
  struct EntryState {
    VectorId entry = kInvalidVectorId;
    int level = -1;
  };
  static std::uint64_t PackEntry(EntryState s) {
    return (static_cast<std::uint64_t>(s.entry) << 32) |
           static_cast<std::uint32_t>(s.level);
  }
  EntryState LoadEntry() const {
    const std::uint64_t packed = entry_state_.load(std::memory_order_acquire);
    return EntryState{static_cast<VectorId>(packed >> 32),
                      static_cast<std::int32_t>(packed & 0xFFFFFFFFull)};
  }
  void StoreEntry(EntryState s) {
    entry_state_.store(PackEntry(s), std::memory_order_release);
  }

  float Distance(const float* a, VectorId b) const {
    return SquaredL2(a, data_.row(b), dim_);
  }

  /// Draws the level for a new node: floor(-ln(U) * (1/ln m)). The stream
  /// comes from `rng` so per-stripe generators reproduce the sequential
  /// distribution.
  int LevelFromRng(Rng& rng) const;
  int RandomLevel() { return LevelFromRng(level_rng_); }

  /// Registers a live node at `level` in the per-level population counts
  /// (what lets Remove recompute the max level in O(levels), not O(n)).
  void CountLevel(int level);

  /// Greedy descent at one level: repeatedly move to the closest neighbor.
  /// `dist_count` accumulates distance computations when non-null.
  VectorId GreedyClosest(const float* query, VectorId start, int level,
                         std::size_t* dist_count = nullptr) const;

  /// Best-first beam search at one level (Algorithm 2). Returns up to `ef`
  /// nearest candidates sorted ascending. Deleted nodes stay traversable but
  /// are not returned. `dist_count` accumulates distance computations;
  /// `ctx` (nullable) makes the expansion loop cancellable. Advances the
  /// visited list to a fresh epoch itself (wrap-safe, before any tagging).
  std::vector<Neighbor> SearchLayer(const float* query, VectorId entry,
                                    std::size_t ef, int level,
                                    VisitedList* visited,
                                    std::size_t* dist_count = nullptr,
                                    SearchContext* ctx = nullptr) const;

  /// The diversifying heuristic (Algorithm 4): selects up to `m` neighbors
  /// such that each kept candidate is closer to the base vector than to any
  /// already-kept neighbor.
  std::vector<VectorId> SelectNeighbors(const float* base,
                                        std::vector<Neighbor> candidates,
                                        std::size_t m) const;

  /// Links `id` at `level` to `neighbors` and back, shrinking overflowing
  /// adjacency lists with the heuristic.
  void Connect(VectorId id, int level, const std::vector<VectorId>& neighbors);

  /// Re-links node `v` at `level` after one of its out-edges was removed
  /// (Remove's parallel sweep): a fresh neighborhood search merged with the
  /// surviving adjacency, re-selected by the heuristic. Every adjacency read
  /// is snapshotted and every write made through the striped build locks, so
  /// many repairs run concurrently.
  void RepairNodeConcurrent(VectorId v, int level, VisitedList* visited,
                            std::vector<VectorId>* scratch);

  // ---- Concurrent-build variants (AddBatchParallel only). -------------------
  // Same algorithms as the sequential functions above, with every adjacency
  // read snapshotted (and every write made) under the owning node's stripe
  // lock. At most one stripe lock is ever held at a time, so lock order can
  // never deadlock. `scratch` is the caller's reusable snapshot buffer.

  /// Inserts pre-registered node `id` (slot, level, and vector row already
  /// exist) into the graph concurrently with other inserts.
  void InsertConcurrent(VectorId id);
  VectorId GreedyClosestBuild(const float* query, VectorId start, int level,
                              std::vector<VectorId>* scratch);
  /// `self` = the node being inserted: concurrently-wired back-links can
  /// make it reachable mid-insert, so it stays traversable but is never
  /// returned (a distance-0 self match would otherwise become a self-loop).
  std::vector<Neighbor> SearchLayerBuild(const float* query, VectorId entry,
                                         std::size_t ef, int level,
                                         VectorId self, VisitedList* visited,
                                         std::vector<VectorId>* scratch);
  void ConnectBuild(VectorId id, int level,
                    const std::vector<VectorId>& neighbors);

  std::size_t dim_;
  HnswParams params_;
  double level_mult_;
  Rng level_rng_;
  FloatMatrix data_;
  std::vector<Node> nodes_;
  /// Packed EntryState. Single source of truth for (entry point, max level).
  std::atomic<std::uint64_t> entry_state_;
  std::size_t num_deleted_ = 0;
  /// level_counts_[l] = live nodes whose top level is l. Lets Remove find
  /// the new max level without rescanning every node per tombstone.
  std::vector<std::size_t> level_counts_;
  // Behind unique_ptr: the pool's mutex would otherwise make the index
  // non-movable.
  mutable std::unique_ptr<VisitedPool> visited_pool_;
  std::unique_ptr<BuildLocks> build_locks_;
};

}  // namespace ppanns

#endif  // PPANNS_INDEX_HNSW_H_
