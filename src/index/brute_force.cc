#include "index/brute_force.h"

#include <algorithm>
#include <queue>

#include "common/thread_pool.h"

namespace ppanns {

std::vector<Neighbor> BruteForceKnn(const FloatMatrix& data, const float* query,
                                    std::size_t k) {
  // Bounded max-heap of the current best k.
  std::priority_queue<Neighbor> heap;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const float dist = SquaredL2(data.row(i), query, data.dim());
    if (heap.size() < k) {
      heap.push(Neighbor{static_cast<VectorId>(i), dist});
    } else if (!heap.empty() && dist < heap.top().distance) {
      heap.pop();
      heap.push(Neighbor{static_cast<VectorId>(i), dist});
    }
  }
  std::vector<Neighbor> out(heap.size());
  for (std::size_t i = heap.size(); i > 0; --i) {
    out[i - 1] = heap.top();
    heap.pop();
  }
  return out;
}

std::vector<std::vector<Neighbor>> BruteForceKnnBatch(const FloatMatrix& data,
                                                      const FloatMatrix& queries,
                                                      std::size_t k,
                                                      bool parallel) {
  std::vector<std::vector<Neighbor>> out(queries.size());
  auto work = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      out[i] = BruteForceKnn(data, queries.row(i), k);
    }
  };
  if (parallel && queries.size() > 1) {
    ThreadPool::Global().ParallelFor(queries.size(), work);
  } else {
    work(0, queries.size());
  }
  return out;
}

}  // namespace ppanns
