#include "index/brute_force.h"

#include <algorithm>

#include "common/thread_pool.h"
#include "index/top_k.h"

namespace ppanns {

std::vector<Neighbor> BruteForceKnn(const FloatMatrix& data, const float* query,
                                    std::size_t k) {
  TopK top(k);
  for (std::size_t i = 0; i < data.size(); ++i) {
    top.Offer(Neighbor{static_cast<VectorId>(i),
                       SquaredL2(data.row(i), query, data.dim())});
  }
  return top.ExtractSorted();
}

std::vector<std::vector<Neighbor>> BruteForceKnnBatch(const FloatMatrix& data,
                                                      const FloatMatrix& queries,
                                                      std::size_t k,
                                                      bool parallel) {
  std::vector<std::vector<Neighbor>> out(queries.size());
  auto work = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      out[i] = BruteForceKnn(data, queries.row(i), k);
    }
  };
  if (parallel && queries.size() > 1) {
    ThreadPool::Global().ParallelFor(queries.size(), work);
  } else {
    work(0, queries.size());
  }
  return out;
}

BruteForceIndex::BruteForceIndex(std::size_t dim) : dim_(dim), data_(0, dim) {
  PPANNS_CHECK(dim > 0);
}

VectorId BruteForceIndex::Add(const float* v) {
  deleted_.push_back(0);
  return data_.Append(v);
}

void BruteForceIndex::AddBatch(const FloatMatrix& batch) {
  PPANNS_CHECK(batch.dim() == dim_);
  for (std::size_t i = 0; i < batch.size(); ++i) Add(batch.row(i));
}

Status BruteForceIndex::Remove(VectorId id) {
  if (id >= data_.size()) return Status::InvalidArgument("BruteForce: bad id");
  if (deleted_[id]) return Status::NotFound("BruteForce: already deleted");
  deleted_[id] = 1;
  ++num_deleted_;
  return Status::OK();
}

std::vector<Neighbor> BruteForceIndex::Search(const float* query, std::size_t k,
                                              SearchContext* ctx) const {
  TopK top(k);
  CancelProbe probe(ctx);
  std::size_t scanned = 0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    if (deleted_[i]) continue;
    if (probe.ShouldStop(scanned)) break;
    ++scanned;
    top.Offer(Neighbor{static_cast<VectorId>(i),
                       SquaredL2(data_.row(i), query, dim_)});
  }
  if (ctx != nullptr) {
    ctx->stats.nodes_visited += scanned;
    ctx->stats.distance_computations += scanned;
  }
  return top.ExtractSorted();
}

std::size_t BruteForceIndex::StorageBytes() const {
  return data_.data().size() * sizeof(float) + deleted_.size();
}

void BruteForceIndex::Serialize(BinaryWriter* out) const {
  out->Put<std::uint32_t>(0x50424649);  // "PBFI"
  out->Put<std::uint32_t>(1);
  out->Put<std::uint64_t>(dim_);
  PutMatrix(data_, out);
  out->PutVector(deleted_);
}

Result<BruteForceIndex> BruteForceIndex::Deserialize(BinaryReader* in) {
  std::uint32_t magic = 0, version = 0;
  PPANNS_RETURN_IF_ERROR(in->Get(&magic));
  if (magic != 0x50424649) return Status::IOError("BruteForce: bad magic");
  PPANNS_RETURN_IF_ERROR(in->Get(&version));
  if (version != 1) return Status::IOError("BruteForce: unsupported version");
  std::uint64_t dim = 0;
  PPANNS_RETURN_IF_ERROR(in->Get(&dim));
  if (dim == 0) return Status::IOError("BruteForce: zero dimension");

  BruteForceIndex index(dim);
  PPANNS_RETURN_IF_ERROR(GetMatrix(in, &index.data_));
  PPANNS_RETURN_IF_ERROR(in->GetVector(&index.deleted_));
  if (index.data_.dim() != dim || index.deleted_.size() != index.data_.size()) {
    return Status::IOError("BruteForce: inconsistent payload");
  }
  for (std::uint8_t d : index.deleted_) index.num_deleted_ += (d != 0);
  return index;
}

}  // namespace ppanns
