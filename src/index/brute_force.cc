#include "index/brute_force.h"

#include <algorithm>
#include <chrono>

#include "common/thread_pool.h"
#include "index/top_k.h"

namespace ppanns {

std::vector<Neighbor> BruteForceKnn(const FloatMatrix& data, const float* query,
                                    std::size_t k) {
  TopK top(k);
  const float* rows[kKernelBlock];
  float dists[kKernelBlock];
  float limit = top.Threshold();
  for (std::size_t i = 0; i < data.size(); i += kKernelBlock) {
    const std::size_t bn = std::min(kKernelBlock, data.size() - i);
    for (std::size_t j = 0; j < bn; ++j) rows[j] = data.row(i + j);
    L2Batch(query, rows, bn, data.dim(), dists);
    for (std::size_t j = 0; j < bn; ++j) {
      // Threshold pre-check: Offer rejects exactly when dist >= threshold, so
      // skipping those calls leaves the heap (and final ids) unchanged.
      if (dists[j] < limit) {
        top.Offer(Neighbor{static_cast<VectorId>(i + j), dists[j]});
        limit = top.Threshold();
      }
    }
  }
  return top.ExtractSorted();
}

std::vector<std::vector<Neighbor>> BruteForceKnnBatch(const FloatMatrix& data,
                                                      const FloatMatrix& queries,
                                                      std::size_t k,
                                                      bool parallel) {
  std::vector<std::vector<Neighbor>> out(queries.size());
  auto work = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      out[i] = BruteForceKnn(data, queries.row(i), k);
    }
  };
  if (parallel && queries.size() > 1) {
    ThreadPool::Global().ParallelFor(queries.size(), work);
  } else {
    work(0, queries.size());
  }
  return out;
}

BruteForceIndex::BruteForceIndex(std::size_t dim, SqParams sq)
    : dim_(dim), sq_params_(sq), data_(0, dim) {
  PPANNS_CHECK(dim > 0);
}

VectorId BruteForceIndex::Add(const float* v) {
  deleted_.push_back(0);
  const VectorId id = data_.Append(v);
  if (sq_params_.enabled) {
    if (sq_.trained()) {
      codes_.resize(codes_.size() + dim_);
      sq_.Encode(v, codes_.data() + static_cast<std::size_t>(id) * dim_);
    } else if (data_.size() >= std::max<std::size_t>(sq_params_.train_min, 1)) {
      TrainSq();
    }
  }
  return id;
}

void BruteForceIndex::AddBatch(const FloatMatrix& batch) {
  PPANNS_CHECK(batch.dim() == dim_);
  for (std::size_t i = 0; i < batch.size(); ++i) Add(batch.row(i));
}

void BruteForceIndex::TrainSq() {
  sq_.Train(data_);
  codes_.resize(data_.size() * dim_);
  for (std::size_t i = 0; i < data_.size(); ++i) {
    sq_.Encode(data_.row(i), codes_.data() + i * dim_);
  }
}

Status BruteForceIndex::Remove(VectorId id) {
  if (id >= data_.size()) return Status::InvalidArgument("BruteForce: bad id");
  if (deleted_[id]) return Status::NotFound("BruteForce: already deleted");
  deleted_[id] = 1;
  ++num_deleted_;
  return Status::OK();
}

namespace {
inline double SecondsSince(SearchContext::Clock::time_point t0) {
  return std::chrono::duration<double>(SearchContext::Clock::now() - t0)
      .count();
}
}  // namespace

std::vector<Neighbor> BruteForceIndex::Search(const float* query, std::size_t k,
                                              SearchContext* ctx) const {
  if (sq_.trained()) return SearchSq(query, k, ctx);

  const auto t0 = ctx != nullptr ? SearchContext::Clock::now()
                                 : SearchContext::Clock::time_point{};
  TopK top(k);

  // Fast path: no deletions and nothing that could stop the scan means every
  // row is scored in order, so the gather loop (deleted check, probe,
  // per-row prefetch) collapses to arithmetic row pointers straight into the
  // batch kernel. Offers happen in the same order as the guarded path, so
  // ids match.
  if (num_deleted_ == 0 && (ctx == nullptr || ctx->OnlyCollectsStats())) {
    const float* rows[kKernelBlock];
    float dists[kKernelBlock];
    float limit = top.Threshold();
    for (std::size_t i = 0; i < data_.size(); i += kKernelBlock) {
      const std::size_t bn = std::min(kKernelBlock, data_.size() - i);
      for (std::size_t j = 0; j < bn; ++j) rows[j] = data_.row(i + j);
      L2Batch(query, rows, bn, dim_, dists);
      for (std::size_t j = 0; j < bn; ++j) {
        // Offer rejects exactly when dist >= threshold; skipping those calls
        // leaves the heap unchanged.
        if (dists[j] < limit) {
          top.Offer(Neighbor{static_cast<VectorId>(i + j), dists[j]});
          limit = top.Threshold();
        }
      }
    }
    if (ctx != nullptr) {
      ctx->stats.nodes_visited += data_.size();
      ctx->stats.distance_computations += data_.size();
      ctx->stats.filter_seconds += SecondsSince(t0);
    }
    return top.ExtractSorted();
  }

  CancelProbe probe(ctx);
  std::size_t scanned = 0;
  // Blocked scan: collect up to kKernelBlock live rows (prefetching them),
  // score the block in one batched kernel call, offer in row order. The probe
  // keeps row granularity — slot bn answers exactly the probe the unblocked
  // loop would have asked for that row — so ids are unchanged.
  VectorId ids[kKernelBlock];
  const float* rows[kKernelBlock];
  float dists[kKernelBlock];
  std::size_t i = 0;
  bool stopped = false;
  while (i < data_.size() && !stopped) {
    std::size_t bn = 0;
    for (; i < data_.size() && bn < kKernelBlock; ++i) {
      if (deleted_[i]) continue;
      if (probe.ShouldStop(scanned + bn)) {
        stopped = true;
        break;
      }
      ids[bn] = static_cast<VectorId>(i);
      rows[bn] = data_.row(i);
      PrefetchRead(rows[bn]);
      ++bn;
    }
    if (bn == 0) continue;
    L2Batch(query, rows, bn, dim_, dists);
    scanned += bn;
    for (std::size_t j = 0; j < bn; ++j) top.Offer(Neighbor{ids[j], dists[j]});
  }
  if (ctx != nullptr) {
    ctx->stats.nodes_visited += scanned;
    ctx->stats.distance_computations += scanned;
    ctx->stats.filter_seconds += SecondsSince(t0);
  }
  return top.ExtractSorted();
}

std::vector<Neighbor> BruteForceIndex::SearchSq(const float* query,
                                                std::size_t k,
                                                SearchContext* ctx) const {
  const auto t0 = ctx != nullptr ? SearchContext::Clock::now()
                                 : SearchContext::Clock::time_point{};
  std::vector<std::int8_t> qcode(dim_);
  sq_.Encode(query, qcode.data());

  // Filter: scan the int8 code mirror, keeping an oversampled shortlist
  // ranked by (int32 code distance, id).
  SqShortlist shortlist_top(SqShortlistSize(sq_params_, k));
  std::size_t scanned = 0;

  if (num_deleted_ == 0 && (ctx == nullptr || ctx->OnlyCollectsStats())) {
    // Fast path mirroring Search(): contiguous code scan with no per-row
    // deleted/probe branches. Offer order matches the guarded path.
    const std::int8_t* rows[kKernelBlock];
    std::int32_t dists[kKernelBlock];
    std::int32_t limit = shortlist_top.threshold();
    for (std::size_t i = 0; i < data_.size(); i += kKernelBlock) {
      const std::size_t bn = std::min(kKernelBlock, data_.size() - i);
      for (std::size_t j = 0; j < bn; ++j) {
        rows[j] = codes_.data() + (i + j) * dim_;
      }
      L2BatchInt8(qcode.data(), rows, bn, dim_, dists);
      for (std::size_t j = 0; j < bn; ++j) {
        // Offer rejects exactly when dist >= threshold; skipping those calls
        // leaves the shortlist unchanged.
        if (dists[j] < limit) {
          shortlist_top.Offer(static_cast<VectorId>(i + j), dists[j]);
          limit = shortlist_top.threshold();
        }
      }
    }
    scanned = data_.size();
  } else {
    CancelProbe probe(ctx);
    VectorId ids[kKernelBlock];
    const std::int8_t* rows[kKernelBlock];
    std::int32_t dists[kKernelBlock];
    std::size_t i = 0;
    bool stopped = false;
    while (i < data_.size() && !stopped) {
      std::size_t bn = 0;
      for (; i < data_.size() && bn < kKernelBlock; ++i) {
        if (deleted_[i]) continue;
        if (probe.ShouldStop(scanned + bn)) {
          stopped = true;
          break;
        }
        ids[bn] = static_cast<VectorId>(i);
        rows[bn] = codes_.data() + i * dim_;
        PrefetchRead(rows[bn]);
        ++bn;
      }
      if (bn == 0) continue;
      L2BatchInt8(qcode.data(), rows, bn, dim_, dists);
      scanned += bn;
      for (std::size_t j = 0; j < bn; ++j) {
        // int32 rank keys: deterministic, and only used to pick the
        // shortlist — the refine stage below restores exact float distances.
        shortlist_top.Offer(ids[j], dists[j]);
      }
    }
  }

  const std::vector<VectorId> shortlist = shortlist_top.ExtractIds();
  const auto t1 = ctx != nullptr ? SearchContext::Clock::now()
                                 : SearchContext::Clock::time_point{};
  std::vector<Neighbor> out = RefineExact(data_, query, shortlist, k);
  if (ctx != nullptr) {
    ctx->stats.nodes_visited += scanned;
    ctx->stats.distance_computations += scanned + shortlist.size();
    ctx->stats.filter_seconds +=
        std::chrono::duration<double>(t1 - t0).count();
    ctx->stats.refine_seconds += SecondsSince(t1);
  }
  return out;
}

std::size_t BruteForceIndex::StorageBytes() const {
  return data_.data().size() * sizeof(float) + deleted_.size() + codes_.size();
}

void BruteForceIndex::Serialize(BinaryWriter* out) const {
  // Version 1 stays byte-identical for non-SQ indexes (replica byte-equality
  // is pinned by the sharded tests); the SQ sidecar bumps to version 2.
  out->Put<std::uint32_t>(0x50424649);  // "PBFI"
  out->Put<std::uint32_t>(sq_params_.enabled ? 2 : 1);
  out->Put<std::uint64_t>(dim_);
  PutMatrix(data_, out);
  out->PutVector(deleted_);
  if (sq_params_.enabled) {
    out->Put<std::uint64_t>(sq_params_.refine_factor);
    out->Put<std::uint64_t>(sq_params_.train_min);
    out->Put<std::uint8_t>(sq_.trained() ? 1 : 0);
    if (sq_.trained()) {
      sq_.Serialize(out);
      out->PutVector(codes_);
    }
  }
}

Result<BruteForceIndex> BruteForceIndex::Deserialize(BinaryReader* in) {
  std::uint32_t magic = 0, version = 0;
  PPANNS_RETURN_IF_ERROR(in->Get(&magic));
  if (magic != 0x50424649) return Status::IOError("BruteForce: bad magic");
  PPANNS_RETURN_IF_ERROR(in->Get(&version));
  if (version != 1 && version != 2) {
    return Status::IOError("BruteForce: unsupported version");
  }
  std::uint64_t dim = 0;
  PPANNS_RETURN_IF_ERROR(in->Get(&dim));
  if (dim == 0) return Status::IOError("BruteForce: zero dimension");

  BruteForceIndex index(dim);
  PPANNS_RETURN_IF_ERROR(GetMatrix(in, &index.data_));
  PPANNS_RETURN_IF_ERROR(in->GetVector(&index.deleted_));
  if (index.data_.dim() != dim || index.deleted_.size() != index.data_.size()) {
    return Status::IOError("BruteForce: inconsistent payload");
  }
  for (std::uint8_t d : index.deleted_) index.num_deleted_ += (d != 0);
  if (version == 2) {
    index.sq_params_.enabled = true;
    std::uint64_t refine_factor = 0, train_min = 0;
    PPANNS_RETURN_IF_ERROR(in->Get(&refine_factor));
    PPANNS_RETURN_IF_ERROR(in->Get(&train_min));
    index.sq_params_.refine_factor = refine_factor;
    index.sq_params_.train_min = train_min;
    std::uint8_t sq_trained = 0;
    PPANNS_RETURN_IF_ERROR(in->Get(&sq_trained));
    if (sq_trained != 0) {
      Result<Sq8Quantizer> q = Sq8Quantizer::Deserialize(in);
      if (!q.ok()) return q.status();
      index.sq_ = std::move(q).value();
      PPANNS_RETURN_IF_ERROR(in->GetVector(&index.codes_));
      if (index.sq_.dim() != dim ||
          index.codes_.size() != index.data_.size() * dim) {
        return Status::IOError("BruteForce: inconsistent SQ sidecar");
      }
    }
  }
  return index;
}

}  // namespace ppanns
