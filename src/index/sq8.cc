#include "index/sq8.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "index/top_k.h"

namespace ppanns {

namespace {
// Degenerate (constant) dimensions get a tiny positive scale so encode's
// division is well-defined; every value then maps to code -64 and decodes
// back to the dimension minimum exactly.
constexpr float kMinScale = 1e-20f;
}  // namespace

void Sq8Quantizer::Train(RowView rows) {
  PPANNS_CHECK(!rows.empty());
  dim_ = rows.dim();
  min_.assign(dim_, std::numeric_limits<float>::max());
  std::vector<float> max(dim_, std::numeric_limits<float>::lowest());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const float* r = rows.row(i);
    for (std::size_t j = 0; j < dim_; ++j) {
      min_[j] = std::min(min_[j], r[j]);
      max[j] = std::max(max[j], r[j]);
    }
  }
  scale_.resize(dim_);
  for (std::size_t j = 0; j < dim_; ++j) {
    scale_[j] = std::max((max[j] - min_[j]) / 127.0f, kMinScale);
  }
}

void Sq8Quantizer::Encode(const float* v, std::int8_t* out) const {
  // Codes live in [-64, 63]: 7-bit resolution so any code difference fits in
  // int8, which is what lets the SIMD int8 kernel square byte differences
  // without widening shuffles (see SquaredL2Int8's range contract).
  for (std::size_t j = 0; j < dim_; ++j) {
    const float t = (v[j] - min_[j]) / scale_[j];
    const float r = std::nearbyintf(std::clamp(t, 0.0f, 127.0f));
    out[j] = static_cast<std::int8_t>(static_cast<int>(r) - 64);
  }
}

void Sq8Quantizer::Decode(const std::int8_t* code, float* out) const {
  for (std::size_t j = 0; j < dim_; ++j) {
    out[j] = min_[j] + (static_cast<int>(code[j]) + 64) * scale_[j];
  }
}

void Sq8Quantizer::Serialize(BinaryWriter* out) const {
  out->Put<std::uint64_t>(dim_);
  out->PutVector(min_);
  out->PutVector(scale_);
}

Result<Sq8Quantizer> Sq8Quantizer::Deserialize(BinaryReader* in) {
  Sq8Quantizer q;
  std::uint64_t dim = 0;
  PPANNS_RETURN_IF_ERROR(in->Get(&dim));
  PPANNS_RETURN_IF_ERROR(in->GetVector(&q.min_));
  PPANNS_RETURN_IF_ERROR(in->GetVector(&q.scale_));
  if (q.min_.size() != dim || q.scale_.size() != dim) {
    return Status::IOError("Sq8: inconsistent quantizer payload");
  }
  for (float s : q.scale_) {
    if (!(s > 0.0f)) return Status::IOError("Sq8: non-positive scale");
  }
  q.dim_ = dim;
  return q;
}

std::vector<Neighbor> RefineExact(const FloatMatrix& data, const float* query,
                                  const std::vector<VectorId>& shortlist,
                                  std::size_t k) {
  TopK top(k);
  const float* rows[kKernelBlock];
  float dists[kKernelBlock];
  const std::size_t d = data.dim();
  for (std::size_t i = 0; i < shortlist.size(); i += kKernelBlock) {
    const std::size_t bn = std::min(kKernelBlock, shortlist.size() - i);
    for (std::size_t j = 0; j < bn; ++j) {
      rows[j] = data.row(shortlist[i + j]);
      PrefetchRead(rows[j]);
    }
    L2Batch(query, rows, bn, d, dists);
    for (std::size_t j = 0; j < bn; ++j) {
      top.Offer(Neighbor{shortlist[i + j], dists[j]});
    }
  }
  return top.ExtractSorted();
}

}  // namespace ppanns
