// E2LSH-style locality-sensitive hashing index for Euclidean distance —
// the candidate-generation substrate of the RS-SANN and PRI-ANN baselines
// (Section VII-B). p-stable projections: h(x) = floor((a.x + b) / w) with
// a ~ N(0, I_d), b ~ U[0, w); one composite key per table concatenates
// `num_hashes` such values. Optional multi-probe perturbs one hash at a time
// by +-1 to harvest adjacent buckets.

#ifndef PPANNS_INDEX_LSH_H_
#define PPANNS_INDEX_LSH_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/search_context.h"
#include "common/serialize.h"
#include "common/status.h"
#include "common/types.h"

namespace ppanns {

struct LshParams {
  std::size_t num_tables = 8;   ///< L independent hash tables
  std::size_t num_hashes = 8;   ///< m concatenated projections per table
  double bucket_width = 4.0;    ///< w, in units of the data scale
  std::uint64_t seed = 0x15a;
};

/// Euclidean LSH index over a borrowed-copy of the dataset.
class LshIndex {
 public:
  LshIndex(std::size_t dim, LshParams params, Rng& rng);

  /// Self-seeded variant: projections drawn from Rng(params.seed).
  LshIndex(std::size_t dim, LshParams params);

  /// Inserts one vector; returns its id.
  VectorId Add(const float* v);
  void AddBatch(const FloatMatrix& data);

  /// Tombstones `id` and unhooks it from every hash table, so it can never
  /// surface as a candidate again. InvalidArgument if out of range, NotFound
  /// if already deleted (matching HnswIndex::Remove).
  Status Remove(VectorId id);

  /// Ids in buckets matching the query across all tables (deduplicated).
  /// `probes_per_table` > 0 additionally probes that many +-1 perturbations
  /// of single hash coordinates per table (multi-probe LSH).
  std::vector<VectorId> Candidates(const float* query,
                                   std::size_t probes_per_table = 0) const;

  /// Full search: rank candidates by exact distance over the stored vectors
  /// and return the top k. (Baselines instead ship candidates to the user.)
  /// `ctx` (nullable) makes the candidate-scoring loop cancellable and
  /// accumulates nodes_visited / distance_computations (rows scored; hash
  /// projections are not counted) into its stats.
  std::vector<Neighbor> Search(const float* query, std::size_t k,
                               std::size_t probes_per_table = 0,
                               SearchContext* ctx = nullptr) const;

  bool IsDeleted(VectorId id) const { return deleted_[id] != 0; }
  std::size_t size() const { return data_.size() - num_deleted_; }
  std::size_t capacity() const { return data_.size(); }
  std::size_t dim() const { return dim_; }
  const LshParams& params() const { return params_; }
  const FloatMatrix& data() const { return data_; }

  /// Average bucket occupancy of table 0 (distribution sanity in tests).
  double AvgBucketSize() const;

  /// Resident bytes: rows, projections/offsets, buckets, tombstone bitmap.
  std::size_t StorageBytes() const;

  void Serialize(BinaryWriter* out) const;
  static Result<LshIndex> Deserialize(BinaryReader* in);

 private:
  /// Draws the per-table projection vectors and offsets from `rng`.
  void InitProjections(Rng& rng);
  /// Composite 64-bit key of `query` in `table`.
  std::uint64_t HashKey(const float* v, std::size_t table) const;
  /// Raw per-hash integer values (before mixing), for multi-probe.
  void RawHashes(const float* v, std::size_t table,
                 std::vector<std::int64_t>* out) const;
  static std::uint64_t MixKey(const std::vector<std::int64_t>& hashes);

  std::size_t dim_;
  LshParams params_;
  FloatMatrix data_;
  /// projections_[t] is an (num_hashes x dim) row-major block; offsets_[t]
  /// the corresponding b values.
  std::vector<std::vector<float>> projections_;
  std::vector<std::vector<float>> offsets_;
  std::vector<std::unordered_map<std::uint64_t, std::vector<VectorId>>> tables_;
  std::vector<std::uint8_t> deleted_;
  std::size_t num_deleted_ = 0;
};

}  // namespace ppanns

#endif  // PPANNS_INDEX_LSH_H_
