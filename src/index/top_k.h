// Bounded top-k accumulator shared by the scan-style indexes: keeps the k
// closest (id, distance) pairs seen so far in a max-heap and extracts them
// ascending. Ties at the boundary keep the first-seen entry (strict `<` on
// distance), matching the historical behavior of every call site.

#ifndef PPANNS_INDEX_TOP_K_H_
#define PPANNS_INDEX_TOP_K_H_

#include <cstddef>
#include <limits>
#include <queue>
#include <vector>

#include "common/types.h"

namespace ppanns {

class TopK {
 public:
  explicit TopK(std::size_t k) : k_(k) {}

  void Offer(Neighbor n) {
    if (heap_.size() < k_) {
      heap_.push(n);
    } else if (!heap_.empty() && n.distance < heap_.top().distance) {
      heap_.pop();
      heap_.push(n);
    }
  }

  /// Current rejection threshold: an Offer with distance >= this is a no-op,
  /// so hot loops can pre-check it and skip the call. +inf while the heap is
  /// below capacity (every offer is accepted until then).
  float Threshold() const {
    return heap_.size() < k_ || heap_.empty()
               ? std::numeric_limits<float>::infinity()
               : heap_.top().distance;
  }

  /// Drains the heap, ascending by (distance, id).
  std::vector<Neighbor> ExtractSorted() {
    std::vector<Neighbor> out(heap_.size());
    for (std::size_t i = heap_.size(); i > 0; --i) {
      out[i - 1] = heap_.top();
      heap_.pop();
    }
    return out;
  }

 private:
  std::size_t k_;
  std::priority_queue<Neighbor> heap_;
};

}  // namespace ppanns

#endif  // PPANNS_INDEX_TOP_K_H_
