#include "index/ivf.h"

#include <algorithm>
#include <queue>

namespace ppanns {

IvfIndex::IvfIndex(std::size_t dim, IvfParams params)
    : dim_(dim), params_(params), data_(0, dim) {
  PPANNS_CHECK(dim > 0);
  PPANNS_CHECK(params.num_lists > 0);
}

double IvfIndex::Train(const FloatMatrix& sample, Rng& rng) {
  PPANNS_CHECK(sample.dim() == dim_);
  PPANNS_CHECK(sample.size() >= params_.num_lists);
  const std::size_t k = params_.num_lists;

  // Init: k distinct random sample points.
  centroids_ = FloatMatrix(k, dim_);
  const auto seeds = rng.Sample(sample.size(), k);
  for (std::size_t c = 0; c < k; ++c) {
    std::copy(sample.row(seeds[c]), sample.row(seeds[c]) + dim_,
              centroids_.row(c));
  }

  std::vector<std::size_t> assignment(sample.size());
  std::vector<double> sums(k * dim_);
  std::vector<std::size_t> counts(k);
  double mean_err = 0.0;
  for (std::size_t iter = 0; iter < params_.train_iters; ++iter) {
    // Assign.
    double err = 0.0;
    for (std::size_t i = 0; i < sample.size(); ++i) {
      std::size_t best = 0;
      float best_dist = SquaredL2(sample.row(i), centroids_.row(0), dim_);
      for (std::size_t c = 1; c < k; ++c) {
        const float d = SquaredL2(sample.row(i), centroids_.row(c), dim_);
        if (d < best_dist) {
          best_dist = d;
          best = c;
        }
      }
      assignment[i] = best;
      err += best_dist;
    }
    mean_err = err / sample.size();

    // Update.
    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0u);
    for (std::size_t i = 0; i < sample.size(); ++i) {
      const std::size_t c = assignment[i];
      ++counts[c];
      const float* row = sample.row(i);
      for (std::size_t j = 0; j < dim_; ++j) sums[c * dim_ + j] += row[j];
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Empty cluster: re-seed at a random sample point.
        const auto idx = static_cast<std::size_t>(
            rng.UniformInt(0, static_cast<std::int64_t>(sample.size()) - 1));
        std::copy(sample.row(idx), sample.row(idx) + dim_, centroids_.row(c));
        continue;
      }
      for (std::size_t j = 0; j < dim_; ++j) {
        centroids_.at(c, j) =
            static_cast<float>(sums[c * dim_ + j] / counts[c]);
      }
    }
  }
  lists_.assign(k, {});
  return mean_err;
}

std::size_t IvfIndex::NearestCentroid(const float* v) const {
  std::size_t best = 0;
  float best_dist = SquaredL2(v, centroids_.row(0), dim_);
  for (std::size_t c = 1; c < centroids_.size(); ++c) {
    const float d = SquaredL2(v, centroids_.row(c), dim_);
    if (d < best_dist) {
      best_dist = d;
      best = c;
    }
  }
  return best;
}

VectorId IvfIndex::Add(const float* v) {
  PPANNS_CHECK(trained());
  const VectorId id = data_.Append(v);
  lists_[NearestCentroid(v)].push_back(id);
  return id;
}

void IvfIndex::AddBatch(const FloatMatrix& batch) {
  PPANNS_CHECK(batch.dim() == dim_);
  for (std::size_t i = 0; i < batch.size(); ++i) Add(batch.row(i));
}

std::vector<Neighbor> IvfIndex::Search(const float* query, std::size_t k,
                                       std::size_t nprobe) const {
  PPANNS_CHECK(trained());
  nprobe = std::min(nprobe, centroids_.size());

  // Rank centroids by distance, take the closest nprobe.
  std::vector<Neighbor> cents(centroids_.size());
  for (std::size_t c = 0; c < centroids_.size(); ++c) {
    cents[c] = Neighbor{static_cast<VectorId>(c),
                        SquaredL2(query, centroids_.row(c), dim_)};
  }
  std::partial_sort(cents.begin(), cents.begin() + nprobe, cents.end());

  std::priority_queue<Neighbor> heap;  // bounded max-heap of the best k
  for (std::size_t p = 0; p < nprobe; ++p) {
    for (VectorId id : lists_[cents[p].id]) {
      const float dist = SquaredL2(query, data_.row(id), dim_);
      if (heap.size() < k) {
        heap.push(Neighbor{id, dist});
      } else if (dist < heap.top().distance) {
        heap.pop();
        heap.push(Neighbor{id, dist});
      }
    }
  }
  std::vector<Neighbor> out(heap.size());
  for (std::size_t i = heap.size(); i > 0; --i) {
    out[i - 1] = heap.top();
    heap.pop();
  }
  return out;
}

}  // namespace ppanns
