#include "index/ivf.h"

#include <algorithm>

#include "index/top_k.h"

namespace ppanns {

IvfIndex::IvfIndex(std::size_t dim, IvfParams params)
    : dim_(dim), params_(params), data_(0, dim) {
  PPANNS_CHECK(dim > 0);
  PPANNS_CHECK(params.num_lists > 0);
}

double IvfIndex::RunKmeans(const FloatMatrix& sample, Rng& rng) {
  PPANNS_CHECK(sample.dim() == dim_);
  PPANNS_CHECK(sample.size() >= params_.num_lists);
  const std::size_t k = params_.num_lists;

  // Init: k distinct random sample points.
  centroids_ = FloatMatrix(k, dim_);
  const auto seeds = rng.Sample(sample.size(), k);
  for (std::size_t c = 0; c < k; ++c) {
    std::copy(sample.row(seeds[c]), sample.row(seeds[c]) + dim_,
              centroids_.row(c));
  }

  std::vector<std::size_t> assignment(sample.size());
  std::vector<double> sums(k * dim_);
  std::vector<std::size_t> counts(k);
  double mean_err = 0.0;
  for (std::size_t iter = 0; iter < params_.train_iters; ++iter) {
    // Assign.
    double err = 0.0;
    for (std::size_t i = 0; i < sample.size(); ++i) {
      std::size_t best = 0;
      float best_dist = SquaredL2(sample.row(i), centroids_.row(0), dim_);
      for (std::size_t c = 1; c < k; ++c) {
        const float d = SquaredL2(sample.row(i), centroids_.row(c), dim_);
        if (d < best_dist) {
          best_dist = d;
          best = c;
        }
      }
      assignment[i] = best;
      err += best_dist;
    }
    mean_err = err / sample.size();

    // Update.
    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0u);
    for (std::size_t i = 0; i < sample.size(); ++i) {
      const std::size_t c = assignment[i];
      ++counts[c];
      const float* row = sample.row(i);
      for (std::size_t j = 0; j < dim_; ++j) sums[c * dim_ + j] += row[j];
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Empty cluster: re-seed at a random sample point.
        const auto idx = static_cast<std::size_t>(
            rng.UniformInt(0, static_cast<std::int64_t>(sample.size()) - 1));
        std::copy(sample.row(idx), sample.row(idx) + dim_, centroids_.row(c));
        continue;
      }
      for (std::size_t j = 0; j < dim_; ++j) {
        centroids_.at(c, j) =
            static_cast<float>(sums[c * dim_ + j] / counts[c]);
      }
    }
  }
  return mean_err;
}

void IvfIndex::RouteAll() {
  lists_.assign(params_.num_lists, {});
  for (std::size_t i = 0; i < data_.size(); ++i) {
    if (deleted_[i]) continue;
    lists_[NearestCentroid(data_.row(i))].push_back(static_cast<VectorId>(i));
  }
}

double IvfIndex::Train(const FloatMatrix& sample, Rng& rng) {
  const double err = RunKmeans(sample, rng);
  RouteAll();
  return err;
}

std::size_t IvfIndex::NearestCentroid(const float* v) const {
  std::size_t best = 0;
  float best_dist = SquaredL2(v, centroids_.row(0), dim_);
  for (std::size_t c = 1; c < centroids_.size(); ++c) {
    const float d = SquaredL2(v, centroids_.row(c), dim_);
    if (d < best_dist) {
      best_dist = d;
      best = c;
    }
  }
  return best;
}

VectorId IvfIndex::Add(const float* v) {
  const VectorId id = data_.Append(v);
  deleted_.push_back(0);
  if (trained()) {
    lists_[NearestCentroid(v)].push_back(id);
    return id;
  }
  const std::size_t train_min = params_.auto_train_min > 0
                                    ? std::max(params_.auto_train_min,
                                               params_.num_lists)
                                    : 4 * params_.num_lists;
  if (data_.size() >= train_min) {
    Rng rng(params_.seed);
    RunKmeans(data_, rng);
    RouteAll();
  }
  return id;
}

void IvfIndex::AddBatch(const FloatMatrix& batch) {
  PPANNS_CHECK(batch.dim() == dim_);
  for (std::size_t i = 0; i < batch.size(); ++i) Add(batch.row(i));
}

Status IvfIndex::Remove(VectorId id) {
  if (id >= data_.size()) return Status::InvalidArgument("IVF: bad id");
  if (deleted_[id]) return Status::NotFound("IVF: already deleted");
  deleted_[id] = 1;
  ++num_deleted_;
  if (trained()) {
    auto& list = lists_[NearestCentroid(data_.row(id))];
    list.erase(std::remove(list.begin(), list.end(), id), list.end());
  }
  return Status::OK();
}

std::vector<Neighbor> IvfIndex::Search(const float* query, std::size_t k,
                                       std::size_t nprobe,
                                       SearchContext* ctx) const {
  TopK top(k);
  CancelProbe probe(ctx);
  std::size_t scored = 0;  // rows scored by this scan
  auto offer = [&](VectorId id) {
    ++scored;
    top.Offer(Neighbor{id, SquaredL2(query, data_.row(id), dim_)});
  };

  std::size_t centroid_dists = 0;
  if (!trained()) {
    // Not enough vectors to have auto-trained yet: exact scan of live rows.
    for (std::size_t i = 0; i < data_.size(); ++i) {
      if (probe.ShouldStop(scored)) break;
      if (!deleted_[i]) offer(static_cast<VectorId>(i));
    }
  } else {
    nprobe = std::min(nprobe, centroids_.size());

    // Rank centroids by distance, take the closest nprobe.
    std::vector<Neighbor> cents(centroids_.size());
    for (std::size_t c = 0; c < centroids_.size(); ++c) {
      cents[c] = Neighbor{static_cast<VectorId>(c),
                          SquaredL2(query, centroids_.row(c), dim_)};
    }
    centroid_dists = centroids_.size();
    std::partial_sort(cents.begin(), cents.begin() + nprobe, cents.end());

    for (std::size_t p = 0; p < nprobe && !probe.ShouldStop(scored); ++p) {
      for (VectorId id : lists_[cents[p].id]) {
        if (probe.ShouldStop(scored)) break;
        offer(id);
      }
    }
  }
  if (ctx != nullptr) {
    ctx->stats.nodes_visited += scored;
    ctx->stats.distance_computations += scored + centroid_dists;
  }
  return top.ExtractSorted();
}

std::size_t IvfIndex::StorageBytes() const {
  std::size_t bytes = data_.data().size() * sizeof(float) +
                      centroids_.data().size() * sizeof(float) +
                      deleted_.size();
  for (const auto& list : lists_) bytes += list.size() * sizeof(VectorId);
  return bytes;
}

void IvfIndex::Serialize(BinaryWriter* out) const {
  out->Put<std::uint32_t>(0x50495646);  // "PIVF"
  out->Put<std::uint32_t>(1);
  out->Put<std::uint64_t>(dim_);
  out->Put<std::uint64_t>(params_.num_lists);
  out->Put<std::uint64_t>(params_.train_iters);
  out->Put<std::uint64_t>(params_.seed);
  out->Put<std::uint64_t>(params_.auto_train_min);
  out->Put<std::uint8_t>(trained() ? 1 : 0);
  if (trained()) PutMatrix(centroids_, out);
  PutMatrix(data_, out);
  out->PutVector(deleted_);
}

Result<IvfIndex> IvfIndex::Deserialize(BinaryReader* in) {
  std::uint32_t magic = 0, version = 0;
  PPANNS_RETURN_IF_ERROR(in->Get(&magic));
  if (magic != 0x50495646) return Status::IOError("IVF: bad magic");
  PPANNS_RETURN_IF_ERROR(in->Get(&version));
  if (version != 1) return Status::IOError("IVF: unsupported version");

  std::uint64_t dim = 0;
  IvfParams params;
  std::uint64_t num_lists = 0, train_iters = 0, auto_train_min = 0;
  PPANNS_RETURN_IF_ERROR(in->Get(&dim));
  PPANNS_RETURN_IF_ERROR(in->Get(&num_lists));
  PPANNS_RETURN_IF_ERROR(in->Get(&train_iters));
  PPANNS_RETURN_IF_ERROR(in->Get(&params.seed));
  PPANNS_RETURN_IF_ERROR(in->Get(&auto_train_min));
  if (dim == 0 || num_lists == 0) return Status::IOError("IVF: bad header");
  params.num_lists = num_lists;
  params.train_iters = train_iters;
  params.auto_train_min = auto_train_min;

  std::uint8_t trained = 0;
  PPANNS_RETURN_IF_ERROR(in->Get(&trained));

  IvfIndex index(dim, params);
  if (trained) {
    PPANNS_RETURN_IF_ERROR(GetMatrix(in, &index.centroids_));
    if (index.centroids_.size() != params.num_lists ||
        index.centroids_.dim() != dim) {
      return Status::IOError("IVF: bad centroid shape");
    }
  }
  PPANNS_RETURN_IF_ERROR(GetMatrix(in, &index.data_));
  PPANNS_RETURN_IF_ERROR(in->GetVector(&index.deleted_));
  if (index.data_.dim() != dim || index.deleted_.size() != index.data_.size()) {
    return Status::IOError("IVF: inconsistent payload");
  }
  for (std::uint8_t d : index.deleted_) index.num_deleted_ += (d != 0);
  // Posting lists are rebuilt, not persisted: routing is deterministic given
  // the centroids.
  if (trained) index.RouteAll();
  return index;
}

}  // namespace ppanns
