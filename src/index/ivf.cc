#include "index/ivf.h"

#include <algorithm>
#include <chrono>
#include <limits>

#include "index/top_k.h"

namespace ppanns {

IvfIndex::IvfIndex(std::size_t dim, IvfParams params, SqParams sq)
    : dim_(dim), params_(params), sq_params_(sq), data_(0, dim) {
  PPANNS_CHECK(dim > 0);
  PPANNS_CHECK(params.num_lists > 0);
}

double IvfIndex::RunKmeans(const FloatMatrix& sample, Rng& rng) {
  PPANNS_CHECK(sample.dim() == dim_);
  PPANNS_CHECK(sample.size() >= params_.num_lists);
  const std::size_t k = params_.num_lists;

  // Init: k distinct random sample points.
  centroids_ = FloatMatrix(k, dim_);
  const auto seeds = rng.Sample(sample.size(), k);
  for (std::size_t c = 0; c < k; ++c) {
    std::copy(sample.row(seeds[c]), sample.row(seeds[c]) + dim_,
              centroids_.row(c));
  }

  // Row pointers into centroids_ are stable across iterations (the storage
  // never reallocates); only the values move.
  std::vector<const float*> crows(k);
  for (std::size_t c = 0; c < k; ++c) crows[c] = centroids_.row(c);
  std::vector<float> cdists(k);

  std::vector<std::size_t> assignment(sample.size());
  std::vector<double> sums(k * dim_);
  std::vector<std::size_t> counts(k);
  double mean_err = 0.0;
  for (std::size_t iter = 0; iter < params_.train_iters; ++iter) {
    // Assign: one-to-many kernel scores every centroid per sample point,
    // then the same first-wins strict argmin as the scalar loop.
    double err = 0.0;
    for (std::size_t i = 0; i < sample.size(); ++i) {
      L2Batch(sample.row(i), crows.data(), k, dim_, cdists.data());
      std::size_t best = 0;
      float best_dist = cdists[0];
      for (std::size_t c = 1; c < k; ++c) {
        if (cdists[c] < best_dist) {
          best_dist = cdists[c];
          best = c;
        }
      }
      assignment[i] = best;
      err += best_dist;
    }
    mean_err = err / sample.size();

    // Update.
    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0u);
    for (std::size_t i = 0; i < sample.size(); ++i) {
      const std::size_t c = assignment[i];
      ++counts[c];
      const float* row = sample.row(i);
      for (std::size_t j = 0; j < dim_; ++j) sums[c * dim_ + j] += row[j];
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Empty cluster: re-seed at a random sample point.
        const auto idx = static_cast<std::size_t>(
            rng.UniformInt(0, static_cast<std::int64_t>(sample.size()) - 1));
        std::copy(sample.row(idx), sample.row(idx) + dim_, centroids_.row(c));
        continue;
      }
      for (std::size_t j = 0; j < dim_; ++j) {
        centroids_.at(c, j) =
            static_cast<float>(sums[c * dim_ + j] / counts[c]);
      }
    }
  }
  return mean_err;
}

void IvfIndex::RouteAll() {
  lists_.assign(params_.num_lists, {});
  for (std::size_t i = 0; i < data_.size(); ++i) {
    if (deleted_[i]) continue;
    lists_[NearestCentroid(data_.row(i))].push_back(static_cast<VectorId>(i));
  }
}

void IvfIndex::TrainSq(const FloatMatrix& sample) {
  if (!sq_params_.enabled || sq_.trained() || sample.empty()) return;
  sq_.Train(sample);
  codes_.resize(data_.size() * dim_);
  for (std::size_t i = 0; i < data_.size(); ++i) {
    sq_.Encode(data_.row(i), codes_.data() + i * dim_);
  }
}

double IvfIndex::Train(const FloatMatrix& sample, Rng& rng) {
  const double err = RunKmeans(sample, rng);
  RouteAll();
  TrainSq(sample);
  return err;
}

std::size_t IvfIndex::NearestCentroid(const float* v) const {
  const float* rows[kKernelBlock];
  float dists[kKernelBlock];
  std::size_t best = 0;
  float best_dist = std::numeric_limits<float>::max();
  for (std::size_t c = 0; c < centroids_.size(); c += kKernelBlock) {
    const std::size_t bn = std::min(kKernelBlock, centroids_.size() - c);
    for (std::size_t j = 0; j < bn; ++j) rows[j] = centroids_.row(c + j);
    L2Batch(v, rows, bn, dim_, dists);
    for (std::size_t j = 0; j < bn; ++j) {
      if (dists[j] < best_dist) {
        best_dist = dists[j];
        best = c + j;
      }
    }
  }
  return best;
}

VectorId IvfIndex::Add(const float* v) {
  const VectorId id = data_.Append(v);
  deleted_.push_back(0);
  if (sq_.trained()) {
    codes_.resize(codes_.size() + dim_);
    sq_.Encode(v, codes_.data() + static_cast<std::size_t>(id) * dim_);
  }
  if (trained()) {
    lists_[NearestCentroid(v)].push_back(id);
    return id;
  }
  const std::size_t train_min = params_.auto_train_min > 0
                                    ? std::max(params_.auto_train_min,
                                               params_.num_lists)
                                    : 4 * params_.num_lists;
  if (data_.size() >= train_min) {
    Rng rng(params_.seed);
    RunKmeans(data_, rng);
    RouteAll();
    TrainSq(data_);
  }
  return id;
}

void IvfIndex::AddBatch(const FloatMatrix& batch) {
  PPANNS_CHECK(batch.dim() == dim_);
  for (std::size_t i = 0; i < batch.size(); ++i) Add(batch.row(i));
}

Status IvfIndex::Remove(VectorId id) {
  if (id >= data_.size()) return Status::InvalidArgument("IVF: bad id");
  if (deleted_[id]) return Status::NotFound("IVF: already deleted");
  deleted_[id] = 1;
  ++num_deleted_;
  if (trained()) {
    auto& list = lists_[NearestCentroid(data_.row(id))];
    list.erase(std::remove(list.begin(), list.end(), id), list.end());
  }
  return Status::OK();
}

std::vector<Neighbor> IvfIndex::Search(const float* query, std::size_t k,
                                       std::size_t nprobe,
                                       SearchContext* ctx) const {
  const auto t0 = ctx != nullptr ? SearchContext::Clock::now()
                                 : SearchContext::Clock::time_point{};
  CancelProbe probe(ctx);
  std::size_t scored = 0;  // rows scored by this scan
  std::size_t refined = 0;
  std::size_t centroid_dists = 0;
  const bool use_sq = sq_.trained();

  // The float top-k (exact path) and the oversampled int shortlist (SQ path);
  // only one is used per search.
  TopK top(k);
  SqShortlist shortlist_top(use_sq ? SqShortlistSize(sq_params_, k) : k);
  std::vector<std::int8_t> qcode;
  if (use_sq) {
    qcode.resize(dim_);
    sq_.Encode(query, qcode.data());
  }

  // Blocked scan over one posting list (or the untrained full range): batch
  // of kKernelBlock rows per kernel call, row-granular budget probes (slot bn
  // answers the probe the unblocked loop would have asked for that row).
  VectorId ids[kKernelBlock];
  const float* rows[kKernelBlock];
  float dists[kKernelBlock];
  const std::int8_t* crows[kKernelBlock];
  std::int32_t cdists[kKernelBlock];
  bool stopped = false;
  auto scan_block = [&](std::size_t bn) {
    scored += bn;
    if (use_sq) {
      L2BatchInt8(qcode.data(), crows, bn, dim_, cdists);
      const std::int32_t limit = shortlist_top.threshold();
      for (std::size_t j = 0; j < bn; ++j) {
        // int32 rank keys pick the shortlist; RefineExact restores exact
        // float distances before anything is returned. The threshold
        // pre-check skips only offers the selector would reject anyway.
        if (cdists[j] < limit) shortlist_top.Offer(ids[j], cdists[j]);
      }
    } else {
      L2Batch(query, rows, bn, dim_, dists);
      for (std::size_t j = 0; j < bn; ++j) {
        top.Offer(Neighbor{ids[j], dists[j]});
      }
    }
  };
  auto collect = [&](VectorId id, std::size_t bn) {
    ids[bn] = id;
    if (use_sq) {
      crows[bn] = codes_.data() + static_cast<std::size_t>(id) * dim_;
      PrefetchRead(crows[bn]);
    } else {
      rows[bn] = data_.row(id);
      PrefetchRead(rows[bn]);
    }
  };

  if (!trained()) {
    // Not enough vectors to have auto-trained yet: exact scan of live rows.
    std::size_t i = 0;
    while (i < data_.size() && !stopped) {
      std::size_t bn = 0;
      for (; i < data_.size() && bn < kKernelBlock; ++i) {
        if (deleted_[i]) continue;
        if (probe.ShouldStop(scored + bn)) {
          stopped = true;
          break;
        }
        collect(static_cast<VectorId>(i), bn);
        ++bn;
      }
      if (bn > 0) scan_block(bn);
    }
  } else {
    nprobe = std::min(nprobe, centroids_.size());

    // Rank centroids by distance through the batched kernel, take the
    // closest nprobe.
    std::vector<Neighbor> cents(centroids_.size());
    for (std::size_t c = 0; c < centroids_.size(); c += kKernelBlock) {
      const std::size_t bn = std::min(kKernelBlock, centroids_.size() - c);
      for (std::size_t j = 0; j < bn; ++j) rows[j] = centroids_.row(c + j);
      L2Batch(query, rows, bn, dim_, dists);
      for (std::size_t j = 0; j < bn; ++j) {
        cents[c + j] = Neighbor{static_cast<VectorId>(c + j), dists[j]};
      }
    }
    centroid_dists = centroids_.size();
    std::partial_sort(cents.begin(), cents.begin() + nprobe, cents.end());

    for (std::size_t p = 0;
         p < nprobe && !stopped && !probe.ShouldStop(scored); ++p) {
      const auto& list = lists_[cents[p].id];
      std::size_t li = 0;
      while (li < list.size() && !stopped) {
        std::size_t bn = 0;
        for (; li < list.size() && bn < kKernelBlock; ++li) {
          if (probe.ShouldStop(scored + bn)) {
            stopped = true;
            break;
          }
          collect(list[li], bn);
          ++bn;
        }
        if (bn > 0) scan_block(bn);
      }
    }
  }

  std::vector<Neighbor> out;
  const auto t1 = ctx != nullptr ? SearchContext::Clock::now()
                                 : SearchContext::Clock::time_point{};
  if (use_sq) {
    const std::vector<VectorId> shortlist = shortlist_top.ExtractIds();
    refined = shortlist.size();
    out = RefineExact(data_, query, shortlist, k);
  } else {
    out = top.ExtractSorted();
  }
  if (ctx != nullptr) {
    ctx->stats.nodes_visited += scored;
    ctx->stats.distance_computations += scored + centroid_dists + refined;
    ctx->stats.filter_seconds += std::chrono::duration<double>(t1 - t0).count();
    if (use_sq) {
      ctx->stats.refine_seconds +=
          std::chrono::duration<double>(SearchContext::Clock::now() - t1)
              .count();
    }
  }
  return out;
}

std::size_t IvfIndex::StorageBytes() const {
  std::size_t bytes = data_.data().size() * sizeof(float) +
                      centroids_.data().size() * sizeof(float) +
                      deleted_.size() + codes_.size();
  for (const auto& list : lists_) bytes += list.size() * sizeof(VectorId);
  return bytes;
}

void IvfIndex::Serialize(BinaryWriter* out) const {
  // Version 1 stays byte-identical for non-SQ indexes; the SQ sidecar bumps
  // to version 2 (params + quantizer + code mirror).
  out->Put<std::uint32_t>(0x50495646);  // "PIVF"
  out->Put<std::uint32_t>(sq_params_.enabled ? 2 : 1);
  out->Put<std::uint64_t>(dim_);
  out->Put<std::uint64_t>(params_.num_lists);
  out->Put<std::uint64_t>(params_.train_iters);
  out->Put<std::uint64_t>(params_.seed);
  out->Put<std::uint64_t>(params_.auto_train_min);
  out->Put<std::uint8_t>(trained() ? 1 : 0);
  if (trained()) PutMatrix(centroids_, out);
  PutMatrix(data_, out);
  out->PutVector(deleted_);
  if (sq_params_.enabled) {
    out->Put<std::uint64_t>(sq_params_.refine_factor);
    out->Put<std::uint64_t>(sq_params_.train_min);
    out->Put<std::uint8_t>(sq_.trained() ? 1 : 0);
    if (sq_.trained()) {
      sq_.Serialize(out);
      out->PutVector(codes_);
    }
  }
}

Result<IvfIndex> IvfIndex::Deserialize(BinaryReader* in) {
  std::uint32_t magic = 0, version = 0;
  PPANNS_RETURN_IF_ERROR(in->Get(&magic));
  if (magic != 0x50495646) return Status::IOError("IVF: bad magic");
  PPANNS_RETURN_IF_ERROR(in->Get(&version));
  if (version != 1 && version != 2) {
    return Status::IOError("IVF: unsupported version");
  }

  std::uint64_t dim = 0;
  IvfParams params;
  std::uint64_t num_lists = 0, train_iters = 0, auto_train_min = 0;
  PPANNS_RETURN_IF_ERROR(in->Get(&dim));
  PPANNS_RETURN_IF_ERROR(in->Get(&num_lists));
  PPANNS_RETURN_IF_ERROR(in->Get(&train_iters));
  PPANNS_RETURN_IF_ERROR(in->Get(&params.seed));
  PPANNS_RETURN_IF_ERROR(in->Get(&auto_train_min));
  if (dim == 0 || num_lists == 0) return Status::IOError("IVF: bad header");
  params.num_lists = num_lists;
  params.train_iters = train_iters;
  params.auto_train_min = auto_train_min;

  std::uint8_t trained = 0;
  PPANNS_RETURN_IF_ERROR(in->Get(&trained));

  IvfIndex index(dim, params);
  if (trained) {
    PPANNS_RETURN_IF_ERROR(GetMatrix(in, &index.centroids_));
    if (index.centroids_.size() != params.num_lists ||
        index.centroids_.dim() != dim) {
      return Status::IOError("IVF: bad centroid shape");
    }
  }
  PPANNS_RETURN_IF_ERROR(GetMatrix(in, &index.data_));
  PPANNS_RETURN_IF_ERROR(in->GetVector(&index.deleted_));
  if (index.data_.dim() != dim || index.deleted_.size() != index.data_.size()) {
    return Status::IOError("IVF: inconsistent payload");
  }
  for (std::uint8_t d : index.deleted_) index.num_deleted_ += (d != 0);
  if (version == 2) {
    index.sq_params_.enabled = true;
    std::uint64_t refine_factor = 0, train_min = 0;
    PPANNS_RETURN_IF_ERROR(in->Get(&refine_factor));
    PPANNS_RETURN_IF_ERROR(in->Get(&train_min));
    index.sq_params_.refine_factor = refine_factor;
    index.sq_params_.train_min = train_min;
    std::uint8_t sq_trained = 0;
    PPANNS_RETURN_IF_ERROR(in->Get(&sq_trained));
    if (sq_trained != 0) {
      Result<Sq8Quantizer> q = Sq8Quantizer::Deserialize(in);
      if (!q.ok()) return q.status();
      index.sq_ = std::move(q).value();
      PPANNS_RETURN_IF_ERROR(in->GetVector(&index.codes_));
      if (index.sq_.dim() != dim ||
          index.codes_.size() != index.data_.size() * dim) {
        return Status::IOError("IVF: inconsistent SQ sidecar");
      }
    }
  }
  // Posting lists are rebuilt, not persisted: routing is deterministic given
  // the centroids.
  if (trained) index.RouteAll();
  return index;
}

}  // namespace ppanns
