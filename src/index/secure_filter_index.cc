#include "index/secure_filter_index.h"

#include <algorithm>
#include <utility>

namespace ppanns {
namespace {

constexpr std::uint32_t kEnvelopeMagic = 0x53464958;  // "SFIX"
constexpr std::uint32_t kEnvelopeVersion = 1;

void WriteEnvelope(IndexKind kind, BinaryWriter* out) {
  out->Put<std::uint32_t>(kEnvelopeMagic);
  out->Put<std::uint32_t>(kEnvelopeVersion);
  out->Put<std::uint8_t>(static_cast<std::uint8_t>(kind));
}

// ---- HNSW: the paper's default substrate (Section V-A). ---------------------
class HnswFilterIndex final : public SecureFilterIndex {
 public:
  explicit HnswFilterIndex(HnswIndex index) : index_(std::move(index)) {}

  IndexKind kind() const override { return IndexKind::kHnsw; }
  VectorId Add(const float* v) override { return index_.Add(v); }
  Status Remove(VectorId id) override { return index_.Remove(id); }

  void BuildParallel(RowView data, ThreadPool* pool,
                     std::size_t build_threads) override {
    index_.AddBatchParallel(data, pool, build_threads);
  }

  std::vector<Neighbor> Search(const float* query, std::size_t k,
                               std::size_t breadth,
                               SearchContext* ctx) const override {
    const std::size_t ef = breadth > 0 ? breadth : std::max<std::size_t>(k, 64);
    return index_.Search(query, k, ef, nullptr, ctx);
  }

  std::size_t size() const override { return index_.size(); }
  std::size_t capacity() const override { return index_.capacity(); }
  std::size_t dim() const override { return index_.dim(); }
  bool IsDeleted(VectorId id) const override { return index_.IsDeleted(id); }
  const FloatMatrix& data() const override { return index_.data(); }

  std::size_t StorageBytes() const override {
    // SAP rows + level-0 graph edges.
    return index_.data().data().size() * sizeof(float) +
           index_.ComputeStats().total_edges_level0 * sizeof(VectorId);
  }

  void Serialize(BinaryWriter* out) const override {
    WriteEnvelope(kind(), out);
    index_.Serialize(out);
  }

  const HnswIndex* AsHnsw() const override { return &index_; }

  std::unique_ptr<SecureFilterIndex> MakeEmptyLike() const override {
    return std::make_unique<HnswFilterIndex>(
        HnswIndex(index_.dim(), index_.params()));
  }

 private:
  HnswIndex index_;
};

// ---- IVF: inverted-file substrate. ------------------------------------------
class IvfFilterIndex final : public SecureFilterIndex {
 public:
  explicit IvfFilterIndex(IvfIndex index) : index_(std::move(index)) {}

  IndexKind kind() const override { return IndexKind::kIvf; }
  VectorId Add(const float* v) override { return index_.Add(v); }
  Status Remove(VectorId id) override { return index_.Remove(id); }

  std::vector<Neighbor> Search(const float* query, std::size_t k,
                               std::size_t breadth,
                               SearchContext* ctx) const override {
    // `breadth` maps onto nprobe; the default probes a quarter of the lists,
    // floored so small k still sees several clusters.
    const std::size_t nprobe =
        breadth > 0 ? breadth
                    : std::max<std::size_t>(index_.params().num_lists / 4, 4);
    return index_.Search(query, k, nprobe, ctx);
  }

  std::size_t size() const override { return index_.size(); }
  std::size_t capacity() const override { return index_.capacity(); }
  std::size_t dim() const override { return index_.dim(); }
  bool IsDeleted(VectorId id) const override { return index_.IsDeleted(id); }
  const FloatMatrix& data() const override { return index_.data(); }
  std::size_t StorageBytes() const override { return index_.StorageBytes(); }

  void Serialize(BinaryWriter* out) const override {
    WriteEnvelope(kind(), out);
    index_.Serialize(out);
  }

  std::unique_ptr<SecureFilterIndex> MakeEmptyLike() const override {
    return std::make_unique<IvfFilterIndex>(
        IvfIndex(index_.dim(), index_.params(), index_.sq_params()));
  }

 private:
  IvfIndex index_;
};

// ---- LSH: hashing substrate (the QALSH/Riazi-style filter). -----------------
class LshFilterIndex final : public SecureFilterIndex {
 public:
  explicit LshFilterIndex(LshIndex index) : index_(std::move(index)) {}

  IndexKind kind() const override { return IndexKind::kLsh; }
  VectorId Add(const float* v) override { return index_.Add(v); }
  Status Remove(VectorId id) override { return index_.Remove(id); }

  std::vector<Neighbor> Search(const float* query, std::size_t k,
                               std::size_t breadth,
                               SearchContext* ctx) const override {
    // `breadth` maps onto multi-probe perturbations per table; the default
    // probes every +-1 single-hash perturbation.
    const std::size_t probes =
        breadth > 0 ? breadth : 2 * index_.params().num_hashes;
    return index_.Search(query, k, probes, ctx);
  }

  std::size_t size() const override { return index_.size(); }
  std::size_t capacity() const override { return index_.capacity(); }
  std::size_t dim() const override { return index_.dim(); }
  bool IsDeleted(VectorId id) const override { return index_.IsDeleted(id); }
  const FloatMatrix& data() const override { return index_.data(); }
  std::size_t StorageBytes() const override { return index_.StorageBytes(); }

  void Serialize(BinaryWriter* out) const override {
    WriteEnvelope(kind(), out);
    index_.Serialize(out);
  }

  std::unique_ptr<SecureFilterIndex> MakeEmptyLike() const override {
    // The self-seeded constructor redraws projections from params.seed, so
    // the clone hashes identically to a fresh build with these params.
    return std::make_unique<LshFilterIndex>(
        LshIndex(index_.dim(), index_.params()));
  }

 private:
  LshIndex index_;
};

// ---- Brute force: the exact reference substrate. ----------------------------
class BruteForceFilterIndex final : public SecureFilterIndex {
 public:
  explicit BruteForceFilterIndex(BruteForceIndex index)
      : index_(std::move(index)) {}

  IndexKind kind() const override { return IndexKind::kBruteForce; }
  VectorId Add(const float* v) override { return index_.Add(v); }
  Status Remove(VectorId id) override { return index_.Remove(id); }

  std::vector<Neighbor> Search(const float* query, std::size_t k,
                               std::size_t breadth,
                               SearchContext* ctx) const override {
    (void)breadth;  // the scan is always exhaustive
    return index_.Search(query, k, ctx);
  }

  std::size_t size() const override { return index_.size(); }
  std::size_t capacity() const override { return index_.capacity(); }
  std::size_t dim() const override { return index_.dim(); }
  bool IsDeleted(VectorId id) const override { return index_.IsDeleted(id); }
  const FloatMatrix& data() const override { return index_.data(); }
  std::size_t StorageBytes() const override { return index_.StorageBytes(); }

  void Serialize(BinaryWriter* out) const override {
    WriteEnvelope(kind(), out);
    index_.Serialize(out);
  }

  std::unique_ptr<SecureFilterIndex> MakeEmptyLike() const override {
    return std::make_unique<BruteForceFilterIndex>(
        BruteForceIndex(index_.dim(), index_.sq_params()));
  }

 private:
  BruteForceIndex index_;
};

}  // namespace

Result<std::unique_ptr<SecureFilterIndex>> MakeSecureFilterIndex(
    IndexKind kind, std::size_t dim, const SecureFilterIndexOptions& options) {
  if (dim == 0) {
    return Status::InvalidArgument("SecureFilterIndex: zero dimension");
  }
  switch (kind) {
    case IndexKind::kHnsw:
      return std::unique_ptr<SecureFilterIndex>(
          new HnswFilterIndex(HnswIndex(dim, options.hnsw)));
    case IndexKind::kIvf:
      return std::unique_ptr<SecureFilterIndex>(
          new IvfFilterIndex(IvfIndex(dim, options.ivf, options.sq)));
    case IndexKind::kLsh:
      return std::unique_ptr<SecureFilterIndex>(
          new LshFilterIndex(LshIndex(dim, options.lsh)));
    case IndexKind::kBruteForce:
      return std::unique_ptr<SecureFilterIndex>(
          new BruteForceFilterIndex(BruteForceIndex(dim, options.sq)));
  }
  return Status::InvalidArgument("SecureFilterIndex: unknown kind");
}

std::unique_ptr<SecureFilterIndex> WrapHnswIndex(HnswIndex index) {
  return std::make_unique<HnswFilterIndex>(std::move(index));
}

Result<std::unique_ptr<SecureFilterIndex>> DeserializeSecureFilterIndex(
    BinaryReader* in) {
  std::uint32_t magic = 0, version = 0;
  PPANNS_RETURN_IF_ERROR(in->Get(&magic));
  if (magic != kEnvelopeMagic) {
    return Status::IOError("SecureFilterIndex: bad magic");
  }
  PPANNS_RETURN_IF_ERROR(in->Get(&version));
  if (version != kEnvelopeVersion) {
    return Status::IOError("SecureFilterIndex: unsupported version");
  }
  std::uint8_t kind_byte = 0;
  PPANNS_RETURN_IF_ERROR(in->Get(&kind_byte));
  switch (static_cast<IndexKind>(kind_byte)) {
    case IndexKind::kHnsw: {
      Result<HnswIndex> index = HnswIndex::Deserialize(in);
      if (!index.ok()) return index.status();
      return std::unique_ptr<SecureFilterIndex>(
          new HnswFilterIndex(std::move(*index)));
    }
    case IndexKind::kIvf: {
      Result<IvfIndex> index = IvfIndex::Deserialize(in);
      if (!index.ok()) return index.status();
      return std::unique_ptr<SecureFilterIndex>(
          new IvfFilterIndex(std::move(*index)));
    }
    case IndexKind::kLsh: {
      Result<LshIndex> index = LshIndex::Deserialize(in);
      if (!index.ok()) return index.status();
      return std::unique_ptr<SecureFilterIndex>(
          new LshFilterIndex(std::move(*index)));
    }
    case IndexKind::kBruteForce: {
      Result<BruteForceIndex> index = BruteForceIndex::Deserialize(in);
      if (!index.ok()) return index.status();
      return std::unique_ptr<SecureFilterIndex>(
          new BruteForceFilterIndex(std::move(*index)));
    }
  }
  return Status::IOError("SecureFilterIndex: unknown backend kind");
}

const char* IndexKindName(IndexKind kind) {
  switch (kind) {
    case IndexKind::kHnsw: return "hnsw";
    case IndexKind::kIvf: return "ivf";
    case IndexKind::kLsh: return "lsh";
    case IndexKind::kBruteForce: return "brute";
  }
  return "unknown";
}

Result<IndexKind> ParseIndexKind(const std::string& name) {
  if (name == "hnsw") return IndexKind::kHnsw;
  if (name == "ivf") return IndexKind::kIvf;
  if (name == "lsh") return IndexKind::kLsh;
  if (name == "brute" || name == "bruteforce") return IndexKind::kBruteForce;
  return Status::InvalidArgument("unknown index kind '" + name +
                                 "' (expected hnsw|ivf|lsh|brute)");
}

}  // namespace ppanns
