// The pluggable filter-phase contract of the PP-ANNS scheme.
//
// Algorithm 2 fixes only what the filter phase must do — k'-ANNS over SAP
// ciphertexts — not how. This interface abstracts the substrate so the
// encrypted database can be backed by any of the index families the paper
// names (proximity graphs, inverted files, locality-sensitive hashing) or by
// an exact linear scan, chosen per deployment via PpannsParams::index_kind
// and reconstructed transparently on load (the serialized envelope records
// the backend).
//
// Contract highlights every adapter upholds:
//  * Ids are dense, assigned in insertion order, and never reused; removed
//    ids keep their slot (capacity() counts them, size() does not) so the
//    DCE ciphertext array stays aligned by VectorId.
//  * Search never returns a removed id.
//  * Search is const and safe to call concurrently from many threads
//    (the batched PpannsService facade relies on this).
//  * Serialize/Deserialize round-trips to an identical index: the same
//    queries return the same results before and after.

#ifndef PPANNS_INDEX_SECURE_FILTER_INDEX_H_
#define PPANNS_INDEX_SECURE_FILTER_INDEX_H_

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common/search_context.h"
#include "common/serialize.h"
#include "common/status.h"
#include "common/types.h"
#include "index/brute_force.h"
#include "index/hnsw.h"
#include "index/ivf.h"
#include "index/lsh.h"

namespace ppanns {

class ThreadPool;

/// Per-backend construction knobs, bundled so call sites can configure every
/// backend up front and switch kinds freely.
struct SecureFilterIndexOptions {
  HnswParams hnsw;
  IvfParams ivf;
  LshParams lsh;
  /// Int8 scalar-quantized filter tier for the flat backends (ivf, brute);
  /// ignored by hnsw/lsh. See index/sq8.h.
  SqParams sq;
};

/// Abstract k'-ANNS index over SAP ciphertexts (the filter phase substrate).
class SecureFilterIndex {
 public:
  virtual ~SecureFilterIndex() = default;

  virtual IndexKind kind() const = 0;

  /// Inserts a vector (length dim()), returning its dense id.
  virtual VectorId Add(const float* v) = 0;

  /// Inserts all rows of `data` in order.
  void AddBatch(const FloatMatrix& data) {
    for (std::size_t i = 0; i < data.size(); ++i) Add(data.row(i));
  }

  /// Bulk-builds over all rows of `data` (ids assigned in row order, exactly
  /// like AddBatch). `data` is a RowView, so sharded callers can hand a
  /// strided view straight into the shared SAP matrix instead of
  /// materializing a per-shard copy. Backends with an internally-synchronized
  /// builder (HNSW) fan the construction across `build_threads` logical
  /// stripes — see HnswIndex::AddBatchParallel for the locking and
  /// reproducibility contract; ivf/lsh/brute fall back to a sequential
  /// Add loop (their insert is already cheap, so parallel build is a no-op
  /// there). `pool` may be null or busy; backends then use dedicated threads.
  virtual void BuildParallel(RowView data, ThreadPool* pool,
                             std::size_t build_threads) {
    (void)pool;
    (void)build_threads;
    for (std::size_t i = 0; i < data.size(); ++i) Add(data.row(i));
  }

  /// Removes a vector. The id keeps its slot; it never appears in Search
  /// results again. InvalidArgument if out of range, NotFound if already
  /// removed.
  virtual Status Remove(VectorId id) = 0;

  /// Up to k (id, distance) pairs ascending by squared L2 distance over the
  /// stored (ciphertext) vectors. `breadth` is the backend's search-width
  /// knob — HNSW ef_search, IVF nprobe, LSH probes per table; the exact scan
  /// ignores it. 0 picks a backend default scaled to k.
  ///
  /// The context-free overload is the legacy API: it forwards a null
  /// context, costs nothing extra, and returns ids bit-for-bit identical to
  /// pre-context builds. The `ctx` overload is the cancellable pipeline:
  /// every backend probes the context from inside its hot loop (every
  /// kCancelCheckStride steps at most), stops early on cancellation /
  /// deadline / node budget with the best-so-far prefix, and accumulates
  /// SearchStats into ctx->stats.
  std::vector<Neighbor> Search(const float* query, std::size_t k,
                               std::size_t breadth) const {
    return Search(query, k, breadth, nullptr);
  }
  virtual std::vector<Neighbor> Search(const float* query, std::size_t k,
                                       std::size_t breadth,
                                       SearchContext* ctx) const = 0;

  virtual std::size_t size() const = 0;      ///< live vectors
  virtual std::size_t capacity() const = 0;  ///< live + removed (= next id)
  virtual std::size_t dim() const = 0;
  virtual bool IsDeleted(VectorId id) const = 0;

  /// The stored SAP ciphertext rows, aligned by VectorId (removed rows keep
  /// their slot).
  virtual const FloatMatrix& data() const = 0;

  /// Total resident bytes of the index (space accounting, Section V-C).
  virtual std::size_t StorageBytes() const = 0;

  /// Writes a self-describing envelope (backend kind + payload) that
  /// DeserializeSecureFilterIndex can reconstruct without external context.
  virtual void Serialize(BinaryWriter* out) const = 0;

  /// A fresh, empty index of the same kind, dimension and construction
  /// parameters (including the SQ tier configuration) as this one — the
  /// rebuild target of tombstone compaction: the maintenance path gathers
  /// the live rows and BuildParallel()s them into the clone, then swaps it
  /// in. Only *parameters* carry over, never contents.
  virtual std::unique_ptr<SecureFilterIndex> MakeEmptyLike() const = 0;

  /// Downcast hook for graph-specific diagnostics (edge inspection, HNSW
  /// stats). Null for non-graph backends.
  virtual const HnswIndex* AsHnsw() const { return nullptr; }
};

/// Creates an empty index of `kind` for d-dimensional vectors.
Result<std::unique_ptr<SecureFilterIndex>> MakeSecureFilterIndex(
    IndexKind kind, std::size_t dim, const SecureFilterIndexOptions& options = {});

/// Wraps an already-built HNSW index (legacy v1 packages, graph tooling).
std::unique_ptr<SecureFilterIndex> WrapHnswIndex(HnswIndex index);

/// Reads the envelope written by SecureFilterIndex::Serialize and
/// reconstructs the matching backend.
Result<std::unique_ptr<SecureFilterIndex>> DeserializeSecureFilterIndex(
    BinaryReader* in);

/// "hnsw" | "ivf" | "lsh" | "brute".
const char* IndexKindName(IndexKind kind);

/// Inverse of IndexKindName; InvalidArgument on unknown names.
Result<IndexKind> ParseIndexKind(const std::string& name);

}  // namespace ppanns

#endif  // PPANNS_INDEX_SECURE_FILTER_INDEX_H_
