// Exact k-nearest-neighbor search by linear scan — the ground-truth oracle
// for recall measurement, optionally multi-threaded over the database.

#ifndef PPANNS_INDEX_BRUTE_FORCE_H_
#define PPANNS_INDEX_BRUTE_FORCE_H_

#include <cstddef>
#include <vector>

#include "common/types.h"

namespace ppanns {

/// Exact top-k by squared L2 over `data` for a single query, ascending by
/// distance (ties broken by id).
std::vector<Neighbor> BruteForceKnn(const FloatMatrix& data, const float* query,
                                    std::size_t k);

/// Exact top-k for a batch of queries; parallelized over queries with the
/// global thread pool when `parallel` is true.
std::vector<std::vector<Neighbor>> BruteForceKnnBatch(const FloatMatrix& data,
                                                      const FloatMatrix& queries,
                                                      std::size_t k,
                                                      bool parallel = true);

}  // namespace ppanns

#endif  // PPANNS_INDEX_BRUTE_FORCE_H_
