// Exact k-nearest-neighbor search by linear scan — the ground-truth oracle
// for recall measurement, optionally multi-threaded over the database.
// BruteForceIndex wraps the scan as a maintainable index (tombstone deletes,
// persistence) so it can back the filter phase as the exact reference point.

#ifndef PPANNS_INDEX_BRUTE_FORCE_H_
#define PPANNS_INDEX_BRUTE_FORCE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/search_context.h"
#include "common/serialize.h"
#include "common/status.h"
#include "common/types.h"
#include "index/sq8.h"

namespace ppanns {

/// Exact top-k by squared L2 over `data` for a single query, ascending by
/// distance (ties broken by id).
std::vector<Neighbor> BruteForceKnn(const FloatMatrix& data, const float* query,
                                    std::size_t k);

/// Exact top-k for a batch of queries; parallelized over queries with the
/// global thread pool when `parallel` is true.
std::vector<std::vector<Neighbor>> BruteForceKnnBatch(const FloatMatrix& data,
                                                      const FloatMatrix& queries,
                                                      std::size_t k,
                                                      bool parallel = true);

/// Linear-scan index with stable dense ids and tombstone deletion. Removed
/// rows keep their slot (ids are never reused) but are skipped by Search.
///
/// With `sq.enabled`, an int8 scalar-quantized fast tier rides along: once
/// `sq.train_min` rows have accumulated, a per-dimension minmax quantizer is
/// fitted and every row is mirrored as one-byte codes. Search then scans the
/// codes with the widened-accumulator int8 kernel, keeps an oversampled
/// shortlist of `sq.refine_factor * k` candidates, and re-ranks it with exact
/// float distances — returned ids and distances stay the exact-scan answers.
class BruteForceIndex {
 public:
  explicit BruteForceIndex(std::size_t dim, SqParams sq = {});

  VectorId Add(const float* v);
  void AddBatch(const FloatMatrix& data);

  /// Tombstones `id`. InvalidArgument if out of range, NotFound if already
  /// deleted (matching HnswIndex::Remove).
  Status Remove(VectorId id);

  /// Exact top-k over the live rows, ascending by (distance, id). `ctx`,
  /// when non-null, is probed every few rows: the scan stops early on
  /// cancellation / deadline / node budget (returning the best-so-far
  /// prefix) and nodes_visited / distance_computations accumulate into its
  /// stats. A null context is the zero-overhead legacy path.
  std::vector<Neighbor> Search(const float* query, std::size_t k,
                               SearchContext* ctx = nullptr) const;

  bool IsDeleted(VectorId id) const { return deleted_[id] != 0; }
  std::size_t size() const { return data_.size() - num_deleted_; }
  std::size_t capacity() const { return data_.size(); }
  std::size_t dim() const { return dim_; }
  const FloatMatrix& data() const { return data_; }
  const SqParams& sq_params() const { return sq_params_; }
  /// True once the SQ tier is trained and answering searches.
  bool sq_active() const { return sq_.trained(); }

  /// Resident bytes: the row storage, the tombstone bitmap, and (when the SQ
  /// tier is trained) the int8 code mirror.
  std::size_t StorageBytes() const;

  void Serialize(BinaryWriter* out) const;
  static Result<BruteForceIndex> Deserialize(BinaryReader* in);

 private:
  /// Fits the quantizer over everything added so far and encodes all rows.
  void TrainSq();
  std::vector<Neighbor> SearchSq(const float* query, std::size_t k,
                                 SearchContext* ctx) const;

  std::size_t dim_;
  SqParams sq_params_;
  FloatMatrix data_;
  std::vector<std::uint8_t> deleted_;
  std::size_t num_deleted_ = 0;
  Sq8Quantizer sq_;
  std::vector<std::int8_t> codes_;  ///< capacity * dim, parallel to data_
};

}  // namespace ppanns

#endif  // PPANNS_INDEX_BRUTE_FORCE_H_
