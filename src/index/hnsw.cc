#include "index/hnsw.h"

#include <algorithm>
#include <cmath>
#include <future>
#include <queue>
#include <thread>

#include "common/thread_pool.h"

namespace ppanns {

namespace {

/// Min-heap comparator on distance (closest on top).
struct FartherFirst {
  bool operator()(const Neighbor& a, const Neighbor& b) const {
    return a.distance > b.distance || (a.distance == b.distance && a.id > b.id);
  }
};

}  // namespace

std::unique_ptr<HnswIndex::VisitedList> HnswIndex::VisitedPool::Acquire(
    std::size_t n) {
  std::unique_ptr<VisitedList> vl;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!free_.empty()) {
      vl = std::move(free_.back());
      free_.pop_back();
    }
  }
  if (!vl) vl = std::make_unique<VisitedList>();
  if (vl->tags.size() < n) vl->tags.resize(n, 0);
  // The epoch is NOT advanced here: every scan calls VisitedList::NextEpoch
  // at its own start, so the wrap-clearing reset always precedes the first
  // tag write of the epoch that uses it.
  return vl;
}

void HnswIndex::VisitedPool::Release(std::unique_ptr<VisitedList> vl) {
  std::lock_guard<std::mutex> lock(mu_);
  free_.push_back(std::move(vl));
}

HnswIndex::HnswIndex(std::size_t dim, HnswParams params)
    : dim_(dim),
      params_(params),
      level_mult_(1.0 / std::log(static_cast<double>(std::max<std::size_t>(params.m, 2)))),
      level_rng_(params.seed),
      data_(0, dim),
      entry_state_(PackEntry(EntryState{})),
      visited_pool_(std::make_unique<VisitedPool>()),
      build_locks_(std::make_unique<BuildLocks>()) {
  PPANNS_CHECK(dim > 0);
  PPANNS_CHECK(params.m >= 2);
}

HnswIndex::HnswIndex(HnswIndex&& other) noexcept
    : dim_(other.dim_),
      params_(other.params_),
      level_mult_(other.level_mult_),
      level_rng_(std::move(other.level_rng_)),
      data_(std::move(other.data_)),
      nodes_(std::move(other.nodes_)),
      entry_state_(other.entry_state_.load(std::memory_order_relaxed)),
      num_deleted_(other.num_deleted_),
      level_counts_(std::move(other.level_counts_)),
      visited_pool_(std::move(other.visited_pool_)),
      build_locks_(std::move(other.build_locks_)) {}

HnswIndex& HnswIndex::operator=(HnswIndex&& other) noexcept {
  if (this == &other) return *this;
  dim_ = other.dim_;
  params_ = other.params_;
  level_mult_ = other.level_mult_;
  level_rng_ = std::move(other.level_rng_);
  data_ = std::move(other.data_);
  nodes_ = std::move(other.nodes_);
  entry_state_.store(other.entry_state_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
  num_deleted_ = other.num_deleted_;
  level_counts_ = std::move(other.level_counts_);
  visited_pool_ = std::move(other.visited_pool_);
  build_locks_ = std::move(other.build_locks_);
  return *this;
}

int HnswIndex::LevelFromRng(Rng& rng) const {
  const double u = rng.Uniform(0.0, 1.0);
  const double r = -std::log(std::max(u, 1e-300)) * level_mult_;
  return static_cast<int>(r);
}

void HnswIndex::CountLevel(int level) {
  if (static_cast<std::size_t>(level) >= level_counts_.size()) {
    level_counts_.resize(level + 1, 0);
  }
  ++level_counts_[level];
}

VectorId HnswIndex::GreedyClosest(const float* query, VectorId start,
                                  int level, std::size_t* dist_count) const {
  VectorId cur = start;
  float cur_dist = Distance(query, cur);
  if (dist_count != nullptr) ++*dist_count;
  const float* rows[kKernelBlock];
  float dists[kKernelBlock];
  bool improved = true;
  while (improved) {
    improved = false;
    // Score the whole adjacency through the batched kernel, then apply the
    // same sequential improve rule — identical hops, fewer pointer chases.
    const auto& adj = nodes_[cur].adjacency[level];
    for (std::size_t i = 0; i < adj.size(); i += kKernelBlock) {
      const std::size_t bn = std::min(kKernelBlock, adj.size() - i);
      for (std::size_t j = 0; j < bn; ++j) rows[j] = data_.row(adj[i + j]);
      L2Batch(query, rows, bn, dim_, dists);
      if (dist_count != nullptr) *dist_count += bn;
      for (std::size_t j = 0; j < bn; ++j) {
        if (dists[j] < cur_dist) {
          cur_dist = dists[j];
          cur = adj[i + j];
          improved = true;
        }
      }
    }
  }
  return cur;
}

std::vector<Neighbor> HnswIndex::SearchLayer(const float* query, VectorId entry,
                                             std::size_t ef, int level,
                                             VisitedList* visited,
                                             std::size_t* dist_count,
                                             SearchContext* ctx) const {
  // Fresh epoch first, tags second: the wrap reset can therefore never alias
  // a mark made earlier in the same insert or search.
  const std::uint32_t epoch = visited->NextEpoch();
  auto& tags = visited->tags;

  // candidates: min-heap by distance (expansion frontier);
  // results: max-heap of the ef best found so far.
  std::priority_queue<Neighbor, std::vector<Neighbor>, FartherFirst> candidates;
  std::priority_queue<Neighbor> results;

  const float entry_dist = Distance(query, entry);
  if (dist_count != nullptr) ++*dist_count;
  std::size_t scored = 1;  // nodes whose distance this scan computed
  // Nodes scored before this scan started (greedy descent / upper layers)
  // count against the query-wide node budget.
  const std::size_t prior = ctx != nullptr ? ctx->stats.nodes_visited : 0;
  CancelProbe probe(ctx);
  candidates.push(Neighbor{entry, entry_dist});
  tags[entry] = epoch;
  if (!nodes_[entry].deleted) results.push(Neighbor{entry, entry_dist});

  bool stopped = false;
  while (!candidates.empty() && !stopped) {
    const Neighbor cand = candidates.top();
    if (results.size() >= ef && cand.distance > results.top().distance) break;
    candidates.pop();

    // Blocked expansion: collect up to kKernelBlock unvisited neighbors
    // (prefetching their rows), score them in one batched kernel call, then
    // offer them to the heaps in the original adjacency order. The budget
    // probe keeps node granularity — collection slot bn answers exactly the
    // probe the unblocked loop would have asked for that node — so blocked
    // and unblocked scans stop on the same node and return identical ids.
    const auto& adj = nodes_[cand.id].adjacency[level];
    VectorId block[kKernelBlock];
    const float* rows[kKernelBlock];
    float dists[kKernelBlock];
    std::size_t ai = 0;
    while (ai < adj.size() && !stopped) {
      std::size_t bn = 0;
      for (; ai < adj.size() && bn < kKernelBlock; ++ai) {
        const VectorId nb = adj[ai];
        if (tags[nb] == epoch) continue;
        // Node granularity, not pop granularity: a pop can score up to 2m
        // neighbors, which would stretch the stride by that factor.
        if (probe.ShouldStop(prior + scored + bn)) {
          stopped = true;
          break;
        }
        tags[nb] = epoch;
        block[bn] = nb;
        rows[bn] = data_.row(nb);
        PrefetchRead(rows[bn]);
        ++bn;
      }
      if (bn == 0) continue;
      L2Batch(query, rows, bn, dim_, dists);
      if (dist_count != nullptr) *dist_count += bn;
      scored += bn;
      for (std::size_t j = 0; j < bn; ++j) {
        const float d = dists[j];
        const VectorId nb = block[j];
        if (results.size() < ef || d < results.top().distance) {
          candidates.push(Neighbor{nb, d});
          // Deleted nodes stay traversable (their edges hold the graph
          // together mid-repair) but are not returned.
          if (!nodes_[nb].deleted) {
            results.push(Neighbor{nb, d});
            if (results.size() > ef) results.pop();
          }
        }
      }
    }
  }

  if (ctx != nullptr) {
    ctx->stats.nodes_visited += scored;
    ctx->stats.distance_computations += scored;
  }
  std::vector<Neighbor> out(results.size());
  for (std::size_t i = results.size(); i > 0; --i) {
    out[i - 1] = results.top();
    results.pop();
  }
  return out;  // ascending by distance
}

std::vector<VectorId> HnswIndex::SelectNeighbors(
    const float* base, std::vector<Neighbor> candidates, std::size_t m) const {
  std::sort(candidates.begin(), candidates.end());
  std::vector<VectorId> selected;
  selected.reserve(m);
  // Algorithm 4 heuristic: keep c only if it is closer to the base than to
  // every already-selected neighbor; this spreads edges across directions.
  for (const Neighbor& c : candidates) {
    if (selected.size() >= m) break;
    bool diverse = true;
    for (VectorId s : selected) {
      if (SquaredL2(data_.row(c.id), data_.row(s), dim_) < c.distance) {
        diverse = false;
        break;
      }
    }
    if (diverse) selected.push_back(c.id);
  }
  // Fill remaining slots with the closest rejected candidates
  // (keepPrunedConnections of the HNSW paper).
  if (selected.size() < m) {
    for (const Neighbor& c : candidates) {
      if (selected.size() >= m) break;
      if (std::find(selected.begin(), selected.end(), c.id) == selected.end()) {
        selected.push_back(c.id);
      }
    }
  }
  return selected;
}

void HnswIndex::Connect(VectorId id, int level,
                        const std::vector<VectorId>& neighbors) {
  const std::size_t max_degree = (level == 0) ? params_.max_m0() : params_.m;
  nodes_[id].adjacency[level] = neighbors;

  for (VectorId nb : neighbors) {
    auto& back = nodes_[nb].adjacency[level];
    if (std::find(back.begin(), back.end(), id) != back.end()) continue;
    if (back.size() < max_degree) {
      back.push_back(id);
      continue;
    }
    // Overflow: re-select the neighbor's adjacency with the heuristic over
    // existing edges + the new node.
    std::vector<Neighbor> cands;
    cands.reserve(back.size() + 1);
    const float* nb_vec = data_.row(nb);
    for (VectorId existing : back) {
      cands.push_back(Neighbor{existing, SquaredL2(nb_vec, data_.row(existing), dim_)});
    }
    cands.push_back(Neighbor{id, SquaredL2(nb_vec, data_.row(id), dim_)});
    back = SelectNeighbors(nb_vec, std::move(cands), max_degree);
  }
}

VectorId HnswIndex::Add(const float* v) {
  const VectorId id = data_.Append(v);
  const int level = RandomLevel();
  Node node;
  node.level = level;
  node.adjacency.resize(level + 1);
  nodes_.push_back(std::move(node));
  CountLevel(level);

  const EntryState state = LoadEntry();
  if (state.entry == kInvalidVectorId) {
    StoreEntry(EntryState{id, level});
    return id;
  }

  const float* query = data_.row(id);
  VectorId cur = state.entry;

  // Greedy descent through layers above the new node's level.
  for (int l = state.level; l > level; --l) {
    cur = GreedyClosest(query, cur, l);
  }

  // Beam search + heuristic linking at each level the node occupies. Each
  // SearchLayer call advances the visited list to its own fresh epoch.
  auto visited = visited_pool_->Acquire(nodes_.size());
  for (int l = std::min(level, state.level); l >= 0; --l) {
    std::vector<Neighbor> cands =
        SearchLayer(query, cur, params_.ef_construction, l, visited.get());
    if (cands.empty()) continue;
    cur = cands.front().id;  // closest found feeds the next level down
    const std::size_t max_degree = (l == 0) ? params_.max_m0() : params_.m;
    Connect(id, l, SelectNeighbors(query, std::move(cands),
                                   std::min(params_.m, max_degree)));
  }
  visited_pool_->Release(std::move(visited));

  if (level > state.level) {
    StoreEntry(EntryState{id, level});
  }
  return id;
}

void HnswIndex::AddBatch(const FloatMatrix& batch) {
  PPANNS_CHECK(batch.dim() == dim_);
  for (std::size_t i = 0; i < batch.size(); ++i) Add(batch.row(i));
}

void HnswIndex::AddBatchParallel(RowView batch, ThreadPool* pool,
                                 std::size_t num_threads) {
  PPANNS_CHECK(batch.dim() == dim_);
  const std::size_t n = batch.size();
  if (n == 0) return;
  std::size_t threads = num_threads;
  if (threads == 0) {
    threads = pool != nullptr ? std::max<std::size_t>(pool->num_threads(), 1) : 1;
  }
  threads = std::min(threads, n);

  // Pre-phase (sequential): reserve every slot up front so the build phases
  // never resize data_/nodes_ (the rows and the level/deleted fields are
  // immutable while workers run). One level stream, seeded params.seed and
  // mixed with the batch's base id so successive batches draw fresh
  // sequences, assigns every node's level regardless of the thread count —
  // half of the byte-reproducibility contract (the wave schedule below is
  // the other half). On an empty index the mix is zero and the stream
  // reproduces the sequential AddBatch skeleton exactly.
  const VectorId base = static_cast<VectorId>(nodes_.size());
  std::vector<int> levels(n);
  const std::uint64_t batch_mix =
      0x9E3779B97F4A7C15ull * static_cast<std::uint64_t>(base);
  {
    Rng level_stream(params_.seed ^ batch_mix);
    for (std::size_t i = 0; i < n; ++i) levels[i] = LevelFromRng(level_stream);
  }
  // Advance the sequential level stream too: a later incremental Add must
  // draw fresh levels, not replay this batch's sequence.
  level_rng_ = Rng(level_rng_.NextUint64() ^ batch_mix ^ n);
  nodes_.reserve(nodes_.size() + n);
  data_.data().reserve((static_cast<std::size_t>(base) + n) * dim_);
  for (std::size_t i = 0; i < n; ++i) {
    data_.Append(batch.row(i));
    Node node;
    node.level = levels[i];
    node.adjacency.resize(levels[i] + 1);
    nodes_.push_back(std::move(node));
    CountLevel(levels[i]);
  }

  // An empty index takes its first element as the seed entry point; it is
  // then fully inserted (there are no peers to link it to yet).
  VectorId first = base;
  if (LoadEntry().entry == kInvalidVectorId) {
    StoreEntry(EntryState{base, levels[0]});
    ++first;
  }

  if (threads <= 1) {
    // Sequential path: one-at-a-time insertion, bit-identical to AddBatch on
    // an empty index (each insert sees every previous one).
    for (std::size_t i = first - base; i < n; ++i) {
      InsertConcurrent(base + static_cast<VectorId>(i));
    }
    return;
  }

  // Wave-barrier schedule, independent of the thread count: each wave's
  // items run a read-only search over the graph as committed at the wave
  // start (same-wave peers are still edgeless, hence unreachable), planning
  // per-level neighbor selections that depend only on that frozen snapshot;
  // the plans then commit sequentially in ascending id order. Any T >= 2
  // therefore produces identical bytes. Waves grow with the committed count
  // (each insert still sees >= 2/3 of the graph a sequential insert would),
  // so recall stays within noise of the sequential build while the search
  // phase — the bulk of construction cost — parallelizes fully.
  struct Planned {
    VectorId id = kInvalidVectorId;
    int top = -1;  // min(node level, entry level at wave start)
    std::vector<std::vector<VectorId>> chosen;  // per level 0..top
  };
  std::size_t next = first - base;
  while (next < n) {
    std::size_t committed = static_cast<std::size_t>(base) + next;
    const std::size_t wave =
        std::min(n - next, std::max<std::size_t>(1, committed / 2));
    const EntryState state = LoadEntry();
    std::vector<Planned> plan(wave);
    auto plan_item = [&](std::size_t w) {
      const VectorId id = base + static_cast<VectorId>(next + w);
      Planned& p = plan[w];
      p.id = id;
      const int level = nodes_[id].level;
      p.top = std::min(level, state.level);
      p.chosen.resize(p.top + 1);
      const float* query = data_.row(id);
      VectorId cur = state.entry;
      for (int l = state.level; l > level; --l) {
        cur = GreedyClosest(query, cur, l);
      }
      auto visited = visited_pool_->Acquire(nodes_.size());
      for (int l = p.top; l >= 0; --l) {
        std::vector<Neighbor> cands =
            SearchLayer(query, cur, params_.ef_construction, l, visited.get());
        if (cands.empty()) continue;
        cur = cands.front().id;
        const std::size_t max_degree = (l == 0) ? params_.max_m0() : params_.m;
        p.chosen[l] = SelectNeighbors(query, std::move(cands),
                                      std::min(params_.m, max_degree));
      }
      visited_pool_->Release(std::move(visited));
    };

    const std::size_t wave_threads = std::min(threads, wave);
    auto run_span = [&plan_item, wave, wave_threads](std::size_t t) {
      for (std::size_t w = t; w < wave; w += wave_threads) plan_item(w);
    };
    if (wave_threads <= 1) {
      run_span(0);
    } else if (pool != nullptr && !pool->InWorker() && pool->num_threads() > 1) {
      std::vector<std::future<void>> futures;
      futures.reserve(wave_threads);
      for (std::size_t t = 0; t < wave_threads; ++t) {
        futures.push_back(pool->Async([&run_span, t] { run_span(t); }));
      }
      for (auto& f : futures) f.get();
    } else {
      // Inside a pool worker (the sharded build) or without a usable pool:
      // dedicated threads can never deadlock behind blocked shard tasks.
      std::vector<std::thread> workers;
      workers.reserve(wave_threads - 1);
      for (std::size_t t = 1; t < wave_threads; ++t) {
        workers.emplace_back(run_span, t);
      }
      run_span(0);
      for (auto& w : workers) w.join();
    }

    // Commit phase (sequential, ascending id): link each planned node and
    // promote the entry point as levels rise. Back-links from Connect only
    // touch frozen-graph nodes, so a same-wave peer's adjacency is never
    // read before its own commit.
    for (Planned& p : plan) {
      for (int l = p.top; l >= 0; --l) {
        if (!p.chosen[l].empty()) Connect(p.id, l, p.chosen[l]);
      }
      const int level = nodes_[p.id].level;
      if (level > LoadEntry().level) StoreEntry(EntryState{p.id, level});
    }
    next += wave;
  }
}

void HnswIndex::InsertConcurrent(VectorId id) {
  const int level = nodes_[id].level;
  const float* query = data_.row(id);
  const EntryState state = LoadEntry();
  PPANNS_CHECK(state.entry != kInvalidVectorId);

  std::vector<VectorId> scratch;  // adjacency snapshots, reused across levels
  VectorId cur = state.entry;
  for (int l = state.level; l > level; --l) {
    cur = GreedyClosestBuild(query, cur, l, &scratch);
  }

  auto visited = visited_pool_->Acquire(nodes_.size());
  for (int l = std::min(level, state.level); l >= 0; --l) {
    std::vector<Neighbor> cands = SearchLayerBuild(
        query, cur, params_.ef_construction, l, id, visited.get(), &scratch);
    if (cands.empty()) continue;
    cur = cands.front().id;
    const std::size_t max_degree = (l == 0) ? params_.max_m0() : params_.m;
    ConnectBuild(id, l, SelectNeighbors(query, std::move(cands),
                                        std::min(params_.m, max_degree)));
  }
  visited_pool_->Release(std::move(visited));

  // Level promotion is the only globally-serialized step: re-check under the
  // small lock so racing promotions keep the highest node.
  if (level > state.level) {
    std::lock_guard<std::mutex> lock(build_locks_->promote_mu);
    if (level > LoadEntry().level) StoreEntry(EntryState{id, level});
  }
}

VectorId HnswIndex::GreedyClosestBuild(const float* query, VectorId start,
                                       int level,
                                       std::vector<VectorId>* scratch) {
  VectorId cur = start;
  float cur_dist = Distance(query, cur);
  bool improved = true;
  while (improved) {
    improved = false;
    {
      std::lock_guard<std::mutex> lock(build_locks_->ForNode(cur));
      *scratch = nodes_[cur].adjacency[level];
    }
    const float* rows[kKernelBlock];
    float dists[kKernelBlock];
    for (std::size_t i = 0; i < scratch->size(); i += kKernelBlock) {
      const std::size_t bn = std::min(kKernelBlock, scratch->size() - i);
      for (std::size_t j = 0; j < bn; ++j) {
        rows[j] = data_.row((*scratch)[i + j]);
      }
      L2Batch(query, rows, bn, dim_, dists);
      for (std::size_t j = 0; j < bn; ++j) {
        if (dists[j] < cur_dist) {
          cur_dist = dists[j];
          cur = (*scratch)[i + j];
          improved = true;
        }
      }
    }
  }
  return cur;
}

std::vector<Neighbor> HnswIndex::SearchLayerBuild(
    const float* query, VectorId entry, std::size_t ef, int level,
    VectorId self, VisitedList* visited, std::vector<VectorId>* scratch) {
  const std::uint32_t epoch = visited->NextEpoch();
  auto& tags = visited->tags;

  std::priority_queue<Neighbor, std::vector<Neighbor>, FartherFirst> candidates;
  std::priority_queue<Neighbor> results;

  // `self` is the node being inserted. Unlike the sequential build it can
  // already be reachable here (a concurrent insert that saw its wired upper
  // levels may have linked to it), so it is kept traversable but excluded
  // from results — otherwise SelectNeighbors would pick the distance-0 self
  // match and create a permanent self-loop.
  const float entry_dist = Distance(query, entry);
  candidates.push(Neighbor{entry, entry_dist});
  tags[entry] = epoch;
  if (entry != self && !nodes_[entry].deleted) {
    results.push(Neighbor{entry, entry_dist});
  }

  while (!candidates.empty()) {
    const Neighbor cand = candidates.top();
    if (results.size() >= ef && cand.distance > results.top().distance) break;
    candidates.pop();

    // Snapshot under the stripe lock, score outside it: distance work never
    // serializes other inserts touching the same stripe.
    {
      std::lock_guard<std::mutex> lock(build_locks_->ForNode(cand.id));
      *scratch = nodes_[cand.id].adjacency[level];
    }
    // Same blocked expansion as the query-path SearchLayer (no budget probe
    // on the build path): batch-score unvisited snapshot entries, then offer
    // in snapshot order.
    VectorId block[kKernelBlock];
    const float* rows[kKernelBlock];
    float dists[kKernelBlock];
    std::size_t si = 0;
    while (si < scratch->size()) {
      std::size_t bn = 0;
      for (; si < scratch->size() && bn < kKernelBlock; ++si) {
        const VectorId nb = (*scratch)[si];
        if (tags[nb] == epoch) continue;
        tags[nb] = epoch;
        block[bn] = nb;
        rows[bn] = data_.row(nb);
        PrefetchRead(rows[bn]);
        ++bn;
      }
      if (bn == 0) continue;
      L2Batch(query, rows, bn, dim_, dists);
      for (std::size_t j = 0; j < bn; ++j) {
        const float d = dists[j];
        const VectorId nb = block[j];
        if (results.size() < ef || d < results.top().distance) {
          candidates.push(Neighbor{nb, d});
          if (nb != self && !nodes_[nb].deleted) {
            results.push(Neighbor{nb, d});
            if (results.size() > ef) results.pop();
          }
        }
      }
    }
  }

  std::vector<Neighbor> out(results.size());
  for (std::size_t i = results.size(); i > 0; --i) {
    out[i - 1] = results.top();
    results.pop();
  }
  return out;
}

void HnswIndex::ConnectBuild(VectorId id, int level,
                             const std::vector<VectorId>& neighbors) {
  const std::size_t max_degree = (level == 0) ? params_.max_m0() : params_.m;
  {
    // Once `id`'s upper levels are wired, a concurrent insert can reach it
    // as its next-level search entry and back-link into this (still empty)
    // lower level before we get here — merge rather than assign wholesale so
    // those edges survive. (Sequential/T=1 builds always hit the empty
    // fast path, preserving bit-equality with AddBatch.)
    std::lock_guard<std::mutex> lock(build_locks_->ForNode(id));
    auto& own = nodes_[id].adjacency[level];
    if (own.empty()) {
      own = neighbors;
    } else {
      for (VectorId nb : neighbors) {
        if (std::find(own.begin(), own.end(), nb) == own.end()) {
          own.push_back(nb);
        }
      }
      if (own.size() > max_degree) {
        std::vector<Neighbor> cands;
        cands.reserve(own.size());
        const float* vec = data_.row(id);
        for (VectorId existing : own) {
          cands.push_back(
              Neighbor{existing, SquaredL2(vec, data_.row(existing), dim_)});
        }
        own = SelectNeighbors(vec, std::move(cands), max_degree);
      }
    }
  }

  for (VectorId nb : neighbors) {
    std::lock_guard<std::mutex> lock(build_locks_->ForNode(nb));
    auto& back = nodes_[nb].adjacency[level];
    if (std::find(back.begin(), back.end(), id) != back.end()) continue;
    if (back.size() < max_degree) {
      back.push_back(id);
      continue;
    }
    // Overflow re-selection runs under nb's stripe lock (it reads only
    // immutable vector rows besides `back`, and takes no other lock, so the
    // single-lock-at-a-time rule holds).
    std::vector<Neighbor> cands;
    cands.reserve(back.size() + 1);
    const float* nb_vec = data_.row(nb);
    for (VectorId existing : back) {
      cands.push_back(Neighbor{existing, SquaredL2(nb_vec, data_.row(existing), dim_)});
    }
    cands.push_back(Neighbor{id, SquaredL2(nb_vec, data_.row(id), dim_)});
    back = SelectNeighbors(nb_vec, std::move(cands), max_degree);
  }
}

std::vector<Neighbor> HnswIndex::Search(const float* query, std::size_t k,
                                        std::size_t ef_search,
                                        std::size_t* visited_out,
                                        SearchContext* ctx) const {
  if (visited_out != nullptr) *visited_out = 0;
  const EntryState state = LoadEntry();
  if (state.entry == kInvalidVectorId) return {};
  const std::size_t ef = std::max(ef_search, k);

  // Greedy descent through the upper layers. Its hops are few (O(log n)),
  // so the context is only charged for them, not probed.
  std::size_t descent = 0;
  VectorId cur = state.entry;
  for (int l = state.level; l > 0; --l) {
    cur = GreedyClosest(query, cur, l, &descent);
  }
  if (visited_out != nullptr) *visited_out += descent;
  if (ctx != nullptr) {
    ctx->stats.nodes_visited += descent;
    ctx->stats.distance_computations += descent;
  }
  auto visited = visited_pool_->Acquire(nodes_.size());
  std::vector<Neighbor> results =
      SearchLayer(query, cur, ef, 0, visited.get(), visited_out, ctx);
  visited_pool_->Release(std::move(visited));
  if (results.size() > k) results.resize(k);
  return results;
}

Status HnswIndex::Remove(VectorId id) {
  if (id >= nodes_.size()) return Status::InvalidArgument("HNSW: bad id");
  if (nodes_[id].deleted) return Status::NotFound("HNSW: already deleted");

  nodes_[id].deleted = true;
  ++num_deleted_;
  PPANNS_CHECK(static_cast<std::size_t>(nodes_[id].level) < level_counts_.size() &&
               level_counts_[nodes_[id].level] > 0);
  --level_counts_[nodes_[id].level];

  // Collect in-neighbors per level and drop their edge to `id` (Section V-D:
  // deletion is repaired server-side by reinserting the affected
  // in-neighbors' edge sets). The unlink scan partitions the nodes across
  // the pool — each node is touched by exactly one chunk and nothing else
  // mutates yet, so this phase needs no locks. Repairs are deferred so the
  // next phase can run them concurrently.
  struct RepairItem {
    VectorId v;
    int level;
  };
  std::vector<RepairItem> repairs;
  std::mutex repairs_mu;
  ThreadPool::Global().ParallelFor(
      nodes_.size(), [&](std::size_t begin, std::size_t end) {
        std::vector<RepairItem> local;
        for (std::size_t v = begin; v < end; ++v) {
          if (v == id || nodes_[v].deleted) continue;
          Node& node = nodes_[v];
          for (int l = 0; l <= node.level; ++l) {
            auto& adj = node.adjacency[l];
            auto it = std::find(adj.begin(), adj.end(), id);
            if (it == adj.end()) continue;
            adj.erase(it);
            local.push_back(RepairItem{static_cast<VectorId>(v), l});
          }
        }
        if (!local.empty()) {
          std::lock_guard<std::mutex> lock(repairs_mu);
          repairs.insert(repairs.end(), local.begin(), local.end());
        }
      });

  // Re-link the orphaned in-neighbors concurrently through the striped build
  // locks. `id`'s own out-edges stay intact until every repair is done: if it
  // was the entry point, repair descents still route through it (deleted
  // nodes are traversable, never returned).
  ThreadPool::Global().ParallelFor(
      repairs.size(), [&](std::size_t begin, std::size_t end) {
        std::vector<VectorId> scratch;
        auto visited = visited_pool_->Acquire(nodes_.size());
        for (std::size_t i = begin; i < end; ++i) {
          RepairNodeConcurrent(repairs[i].v, repairs[i].level, visited.get(),
                               &scratch);
        }
        visited_pool_->Release(std::move(visited));
      });
  nodes_[id].adjacency.assign(nodes_[id].adjacency.size(), {});

  // Re-seat the entry point if it was deleted: the per-level live counts
  // give the new max level in O(levels) (no full rescan per tombstone), and
  // the scan for a representative stops at the first live node on it.
  if (LoadEntry().entry == id) {
    int new_max = -1;
    for (int l = static_cast<int>(level_counts_.size()) - 1; l >= 0; --l) {
      if (level_counts_[l] > 0) {
        new_max = l;
        break;
      }
    }
    VectorId new_entry = kInvalidVectorId;
    if (new_max >= 0) {
      for (std::size_t v = 0; v < nodes_.size(); ++v) {
        if (!nodes_[v].deleted && nodes_[v].level == new_max) {
          new_entry = static_cast<VectorId>(v);
          break;
        }
      }
      PPANNS_CHECK(new_entry != kInvalidVectorId);
    }
    StoreEntry(EntryState{new_entry, new_max});
  }
  return Status::OK();
}

void HnswIndex::RepairNodeConcurrent(VectorId v, int level,
                                     VisitedList* visited,
                                     std::vector<VectorId>* scratch) {
  // Re-run a neighborhood search from v and refill its adjacency at `level`
  // with the selection heuristic (skipping v itself and deleted nodes; the
  // build-path search excludes `self` from results already).
  const EntryState state = LoadEntry();
  if (state.entry == kInvalidVectorId || state.entry == v) return;
  const float* vec = data_.row(v);
  VectorId cur = state.entry;
  for (int l = state.level; l > level; --l) {
    cur = GreedyClosestBuild(vec, cur, l, scratch);
  }

  std::vector<Neighbor> cands = SearchLayerBuild(
      vec, cur, params_.ef_construction, level, v, visited, scratch);
  if (cands.empty()) return;

  const std::size_t max_degree = (level == 0) ? params_.max_m0() : params_.m;
  // Merge with surviving adjacency so repair never loses good edges.
  {
    std::lock_guard<std::mutex> lock(build_locks_->ForNode(v));
    for (VectorId existing : nodes_[v].adjacency[level]) {
      cands.push_back(
          Neighbor{existing, SquaredL2(vec, data_.row(existing), dim_)});
    }
  }
  std::sort(cands.begin(), cands.end());
  cands.erase(std::unique(cands.begin(), cands.end(),
                          [](const Neighbor& a, const Neighbor& b) {
                            return a.id == b.id;
                          }),
              cands.end());
  ConnectBuild(v, level, SelectNeighbors(vec, std::move(cands), max_degree));
}

bool HnswIndex::IsDeleted(VectorId id) const {
  PPANNS_CHECK(id < nodes_.size());
  return nodes_[id].deleted;
}

const std::vector<VectorId>& HnswIndex::NeighborsAt(VectorId id,
                                                    std::size_t level) const {
  PPANNS_CHECK(id < nodes_.size());
  PPANNS_CHECK(static_cast<int>(level) <= nodes_[id].level);
  return nodes_[id].adjacency[level];
}

int HnswIndex::LevelOf(VectorId id) const {
  PPANNS_CHECK(id < nodes_.size());
  return nodes_[id].level;
}

HnswStats HnswIndex::ComputeStats() const {
  HnswStats s;
  s.num_deleted = num_deleted_;
  s.max_level = LoadEntry().level;
  for (const Node& node : nodes_) {
    if (node.deleted) continue;
    ++s.num_nodes;
    s.total_edges_level0 += node.adjacency[0].size();
  }
  if (s.num_nodes > 0) {
    s.avg_out_degree_level0 =
        static_cast<double>(s.total_edges_level0) / s.num_nodes;
  }
  return s;
}

void HnswIndex::PrimeVisitedEpochForTest(std::uint32_t epoch) {
  auto vl = visited_pool_->Acquire(nodes_.size());
  vl->epoch = epoch;  // stale tags are left in place on purpose
  visited_pool_->Release(std::move(vl));
}

void HnswIndex::Serialize(BinaryWriter* out) const {
  const EntryState state = LoadEntry();
  out->Put<std::uint32_t>(0x484E5357);  // "HNSW"
  out->Put<std::uint32_t>(1);           // version
  out->Put<std::uint64_t>(dim_);
  out->Put<std::uint64_t>(params_.m);
  out->Put<std::uint64_t>(params_.ef_construction);
  out->Put<std::uint64_t>(params_.seed);
  out->Put<std::uint32_t>(state.entry);
  out->Put<std::int32_t>(state.level);
  out->Put<std::uint64_t>(num_deleted_);
  out->PutVector(data_.data());
  out->Put<std::uint64_t>(nodes_.size());
  for (const Node& node : nodes_) {
    out->Put<std::int32_t>(node.level);
    out->Put<std::uint8_t>(node.deleted ? 1 : 0);
    for (int l = 0; l <= node.level; ++l) out->PutVector(node.adjacency[l]);
  }
}

Result<HnswIndex> HnswIndex::Deserialize(BinaryReader* in) {
  std::uint32_t magic = 0, version = 0;
  PPANNS_RETURN_IF_ERROR(in->Get(&magic));
  if (magic != 0x484E5357) return Status::IOError("HNSW: bad magic");
  PPANNS_RETURN_IF_ERROR(in->Get(&version));
  if (version != 1) return Status::IOError("HNSW: unsupported version");

  std::uint64_t dim = 0;
  HnswParams params;
  PPANNS_RETURN_IF_ERROR(in->Get(&dim));
  std::uint64_t m = 0, efc = 0, seed = 0;
  PPANNS_RETURN_IF_ERROR(in->Get(&m));
  PPANNS_RETURN_IF_ERROR(in->Get(&efc));
  PPANNS_RETURN_IF_ERROR(in->Get(&seed));
  params.m = m;
  params.ef_construction = efc;
  params.seed = seed;

  HnswIndex index(dim, params);
  std::uint32_t entry = kInvalidVectorId;
  PPANNS_RETURN_IF_ERROR(in->Get(&entry));
  std::int32_t max_level = -1;
  PPANNS_RETURN_IF_ERROR(in->Get(&max_level));
  std::uint64_t num_deleted = 0;
  PPANNS_RETURN_IF_ERROR(in->Get(&num_deleted));
  index.num_deleted_ = num_deleted;
  index.StoreEntry(EntryState{entry, max_level});

  std::vector<float> raw;
  PPANNS_RETURN_IF_ERROR(in->GetVector(&raw));
  if (raw.size() % dim != 0) return Status::IOError("HNSW: bad data size");
  const std::size_t n = raw.size() / dim;
  index.data_ = FloatMatrix(n, dim);
  index.data_.data() = std::move(raw);

  std::uint64_t num_nodes = 0;
  PPANNS_RETURN_IF_ERROR(in->Get(&num_nodes));
  if (num_nodes != n) return Status::IOError("HNSW: node/data mismatch");
  index.nodes_.resize(num_nodes);
  for (auto& node : index.nodes_) {
    PPANNS_RETURN_IF_ERROR(in->Get(&node.level));
    std::uint8_t deleted = 0;
    PPANNS_RETURN_IF_ERROR(in->Get(&deleted));
    node.deleted = deleted != 0;
    if (node.level < 0 || node.level > 64) {
      return Status::IOError("HNSW: bad level");
    }
    node.adjacency.resize(node.level + 1);
    for (int l = 0; l <= node.level; ++l) {
      PPANNS_RETURN_IF_ERROR(in->GetVector(&node.adjacency[l]));
    }
    if (!node.deleted) index.CountLevel(node.level);
  }
  return index;
}

}  // namespace ppanns
