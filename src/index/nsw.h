// Single-layer navigable small world graph (Malkov et al., 2014) — an
// alternative proximity-graph substrate for the privacy-preserving index.
// Section V-A of the paper notes the scheme can swap HNSW for other
// proximity graphs (NSG, tau-MNG); this flat graph demonstrates that
// substitutability (see bench/ablation_graphs).
//
// Construction is incremental like HNSW's level 0: beam search for
// candidates, diversify with the pruning heuristic, connect bidirectionally
// with bounded degree. Search is best-first beam from a fixed entry point
// (the first inserted vector, with an optional medoid reseat).

#ifndef PPANNS_INDEX_NSW_H_
#define PPANNS_INDEX_NSW_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/types.h"

namespace ppanns {

struct NswParams {
  std::size_t m = 24;                ///< max out-degree
  std::size_t ef_construction = 200; ///< construction beam width
};

/// Flat navigable small world index. Owns a copy of the inserted vectors.
class NswGraph {
 public:
  NswGraph(std::size_t dim, NswParams params);

  VectorId Add(const float* v);
  void AddBatch(const FloatMatrix& data);

  /// Re-seats the entry point at the (approximate, sampled) medoid —
  /// improves routing like NSG's navigating node. Call after bulk load.
  void ReseatEntryPoint(Rng& rng, std::size_t samples = 64);

  std::vector<Neighbor> Search(const float* query, std::size_t k,
                               std::size_t ef_search) const;

  std::size_t size() const { return data_.size(); }
  std::size_t dim() const { return dim_; }
  const std::vector<VectorId>& NeighborsOf(VectorId id) const {
    return adjacency_[id];
  }

 private:
  float Distance(const float* a, VectorId b) const {
    return SquaredL2(a, data_.row(b), dim_);
  }

  std::vector<Neighbor> BeamSearch(const float* query, std::size_t ef) const;
  std::vector<VectorId> SelectDiverse(const float* base,
                                      std::vector<Neighbor> candidates,
                                      std::size_t m) const;

  std::size_t dim_;
  NswParams params_;
  FloatMatrix data_;
  std::vector<std::vector<VectorId>> adjacency_;
  VectorId entry_point_ = kInvalidVectorId;
};

}  // namespace ppanns

#endif  // PPANNS_INDEX_NSW_H_
