#include "index/lsh.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <unordered_set>

namespace ppanns {

LshIndex::LshIndex(std::size_t dim, LshParams params, Rng& rng)
    : dim_(dim), params_(params), data_(0, dim) {
  PPANNS_CHECK(dim > 0);
  PPANNS_CHECK(params.num_tables > 0 && params.num_hashes > 0);
  PPANNS_CHECK(params.bucket_width > 0.0);
  projections_.resize(params.num_tables);
  offsets_.resize(params.num_tables);
  tables_.resize(params.num_tables);
  for (std::size_t t = 0; t < params.num_tables; ++t) {
    projections_[t].resize(params.num_hashes * dim);
    offsets_[t].resize(params.num_hashes);
    for (auto& v : projections_[t]) v = static_cast<float>(rng.Gaussian());
    for (auto& b : offsets_[t]) {
      b = static_cast<float>(rng.Uniform(0.0, params.bucket_width));
    }
  }
}

void LshIndex::RawHashes(const float* v, std::size_t table,
                         std::vector<std::int64_t>* out) const {
  out->resize(params_.num_hashes);
  for (std::size_t h = 0; h < params_.num_hashes; ++h) {
    const float* a = projections_[table].data() + h * dim_;
    const double proj = InnerProduct(a, v, dim_) + offsets_[table][h];
    (*out)[h] = static_cast<std::int64_t>(std::floor(proj / params_.bucket_width));
  }
}

std::uint64_t LshIndex::MixKey(const std::vector<std::int64_t>& hashes) {
  // FNV-1a over the raw hash integers.
  std::uint64_t key = 0xcbf29ce484222325ull;
  for (std::int64_t h : hashes) {
    for (int b = 0; b < 8; ++b) {
      key ^= static_cast<std::uint64_t>((h >> (8 * b)) & 0xff);
      key *= 0x100000001b3ull;
    }
  }
  return key;
}

std::uint64_t LshIndex::HashKey(const float* v, std::size_t table) const {
  std::vector<std::int64_t> hashes;
  RawHashes(v, table, &hashes);
  return MixKey(hashes);
}

VectorId LshIndex::Add(const float* v) {
  const VectorId id = data_.Append(v);
  for (std::size_t t = 0; t < params_.num_tables; ++t) {
    tables_[t][HashKey(v, t)].push_back(id);
  }
  return id;
}

void LshIndex::AddBatch(const FloatMatrix& batch) {
  PPANNS_CHECK(batch.dim() == dim_);
  for (std::size_t i = 0; i < batch.size(); ++i) Add(batch.row(i));
}

std::vector<VectorId> LshIndex::Candidates(const float* query,
                                           std::size_t probes_per_table) const {
  std::unordered_set<VectorId> seen;
  std::vector<VectorId> out;
  std::vector<std::int64_t> hashes;

  auto collect = [&](std::size_t table, const std::vector<std::int64_t>& h) {
    const auto it = tables_[table].find(MixKey(h));
    if (it == tables_[table].end()) return;
    for (VectorId id : it->second) {
      if (seen.insert(id).second) out.push_back(id);
    }
  };

  for (std::size_t t = 0; t < params_.num_tables; ++t) {
    RawHashes(query, t, &hashes);
    collect(t, hashes);
    // Multi-probe: perturb single coordinates by +-1, round-robin until the
    // probe budget is spent.
    std::size_t probes = 0;
    for (std::size_t h = 0; h < params_.num_hashes && probes < probes_per_table;
         ++h) {
      for (int delta : {+1, -1}) {
        if (probes >= probes_per_table) break;
        hashes[h] += delta;
        collect(t, hashes);
        hashes[h] -= delta;
        ++probes;
      }
    }
  }
  return out;
}

std::vector<Neighbor> LshIndex::Search(const float* query, std::size_t k,
                                       std::size_t probes_per_table) const {
  const std::vector<VectorId> cands = Candidates(query, probes_per_table);
  std::priority_queue<Neighbor> heap;  // bounded max-heap
  for (VectorId id : cands) {
    const float dist = SquaredL2(data_.row(id), query, dim_);
    if (heap.size() < k) {
      heap.push(Neighbor{id, dist});
    } else if (dist < heap.top().distance) {
      heap.pop();
      heap.push(Neighbor{id, dist});
    }
  }
  std::vector<Neighbor> out(heap.size());
  for (std::size_t i = heap.size(); i > 0; --i) {
    out[i - 1] = heap.top();
    heap.pop();
  }
  return out;
}

double LshIndex::AvgBucketSize() const {
  if (tables_.empty() || tables_[0].empty()) return 0.0;
  std::size_t total = 0;
  for (const auto& [key, bucket] : tables_[0]) total += bucket.size();
  return static_cast<double>(total) / tables_[0].size();
}

}  // namespace ppanns
