#include "index/lsh.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "index/top_k.h"

namespace ppanns {

LshIndex::LshIndex(std::size_t dim, LshParams params, Rng& rng)
    : dim_(dim), params_(params), data_(0, dim) {
  PPANNS_CHECK(dim > 0);
  PPANNS_CHECK(params.num_tables > 0 && params.num_hashes > 0);
  PPANNS_CHECK(params.bucket_width > 0.0);
  InitProjections(rng);
}

LshIndex::LshIndex(std::size_t dim, LshParams params)
    : dim_(dim), params_(params), data_(0, dim) {
  PPANNS_CHECK(dim > 0);
  PPANNS_CHECK(params.num_tables > 0 && params.num_hashes > 0);
  PPANNS_CHECK(params.bucket_width > 0.0);
  Rng rng(params.seed);
  InitProjections(rng);
}

void LshIndex::InitProjections(Rng& rng) {
  projections_.resize(params_.num_tables);
  offsets_.resize(params_.num_tables);
  tables_.resize(params_.num_tables);
  for (std::size_t t = 0; t < params_.num_tables; ++t) {
    projections_[t].resize(params_.num_hashes * dim_);
    offsets_[t].resize(params_.num_hashes);
    for (auto& v : projections_[t]) v = static_cast<float>(rng.Gaussian());
    for (auto& b : offsets_[t]) {
      b = static_cast<float>(rng.Uniform(0.0, params_.bucket_width));
    }
  }
}

void LshIndex::RawHashes(const float* v, std::size_t table,
                         std::vector<std::int64_t>* out) const {
  const std::size_t m = params_.num_hashes;
  out->resize(m);
  // All m projections of one table go through the one-to-many kernel: the
  // projection block is row-major, so row h is a contiguous dim_ stripe.
  const float* rows[kKernelBlock];
  float projs[kKernelBlock];
  const float* block = projections_[table].data();
  for (std::size_t h = 0; h < m; h += kKernelBlock) {
    const std::size_t bn = std::min(kKernelBlock, m - h);
    for (std::size_t j = 0; j < bn; ++j) rows[j] = block + (h + j) * dim_;
    IpBatch(v, rows, bn, dim_, projs);
    for (std::size_t j = 0; j < bn; ++j) {
      const double proj =
          static_cast<double>(projs[j]) + offsets_[table][h + j];
      (*out)[h + j] =
          static_cast<std::int64_t>(std::floor(proj / params_.bucket_width));
    }
  }
}

std::uint64_t LshIndex::MixKey(const std::vector<std::int64_t>& hashes) {
  // FNV-1a over the raw hash integers.
  std::uint64_t key = 0xcbf29ce484222325ull;
  for (std::int64_t h : hashes) {
    for (int b = 0; b < 8; ++b) {
      key ^= static_cast<std::uint64_t>((h >> (8 * b)) & 0xff);
      key *= 0x100000001b3ull;
    }
  }
  return key;
}

std::uint64_t LshIndex::HashKey(const float* v, std::size_t table) const {
  std::vector<std::int64_t> hashes;
  RawHashes(v, table, &hashes);
  return MixKey(hashes);
}

VectorId LshIndex::Add(const float* v) {
  const VectorId id = data_.Append(v);
  deleted_.push_back(0);
  for (std::size_t t = 0; t < params_.num_tables; ++t) {
    tables_[t][HashKey(v, t)].push_back(id);
  }
  return id;
}

Status LshIndex::Remove(VectorId id) {
  if (id >= data_.size()) return Status::InvalidArgument("LSH: bad id");
  if (deleted_[id]) return Status::NotFound("LSH: already deleted");
  deleted_[id] = 1;
  ++num_deleted_;
  // The tombstoned row keeps its slot (ids stay dense), but its bucket
  // entries are unhooked so it can never be a candidate again. Hashing is
  // deterministic, so the keys are recoverable from the stored row.
  for (std::size_t t = 0; t < params_.num_tables; ++t) {
    const std::uint64_t key = HashKey(data_.row(id), t);
    auto it = tables_[t].find(key);
    if (it == tables_[t].end()) continue;
    auto& bucket = it->second;
    bucket.erase(std::remove(bucket.begin(), bucket.end(), id), bucket.end());
    if (bucket.empty()) tables_[t].erase(it);
  }
  return Status::OK();
}

void LshIndex::AddBatch(const FloatMatrix& batch) {
  PPANNS_CHECK(batch.dim() == dim_);
  for (std::size_t i = 0; i < batch.size(); ++i) Add(batch.row(i));
}

std::vector<VectorId> LshIndex::Candidates(const float* query,
                                           std::size_t probes_per_table) const {
  std::unordered_set<VectorId> seen;
  std::vector<VectorId> out;
  std::vector<std::int64_t> hashes;

  auto collect = [&](std::size_t table, const std::vector<std::int64_t>& h) {
    const auto it = tables_[table].find(MixKey(h));
    if (it == tables_[table].end()) return;
    for (VectorId id : it->second) {
      if (seen.insert(id).second) out.push_back(id);
    }
  };

  for (std::size_t t = 0; t < params_.num_tables; ++t) {
    RawHashes(query, t, &hashes);
    collect(t, hashes);
    // Multi-probe: perturb single coordinates by +-1, round-robin until the
    // probe budget is spent.
    std::size_t probes = 0;
    for (std::size_t h = 0; h < params_.num_hashes && probes < probes_per_table;
         ++h) {
      for (int delta : {+1, -1}) {
        if (probes >= probes_per_table) break;
        hashes[h] += delta;
        collect(t, hashes);
        hashes[h] -= delta;
        ++probes;
      }
    }
  }
  return out;
}

std::vector<Neighbor> LshIndex::Search(const float* query, std::size_t k,
                                       std::size_t probes_per_table,
                                       SearchContext* ctx) const {
  TopK top(k);
  CancelProbe probe(ctx);
  std::size_t scored = 0;
  // Blocked candidate scoring: up to kKernelBlock bucket hits per batched
  // kernel call, with row-granular budget probes (slot bn answers the probe
  // the unblocked loop would have asked for that candidate).
  const std::vector<VectorId> cands = Candidates(query, probes_per_table);
  VectorId ids[kKernelBlock];
  const float* rows[kKernelBlock];
  float dists[kKernelBlock];
  std::size_t i = 0;
  bool stopped = false;
  while (i < cands.size() && !stopped) {
    std::size_t bn = 0;
    for (; i < cands.size() && bn < kKernelBlock; ++i) {
      if (probe.ShouldStop(scored + bn)) {
        stopped = true;
        break;
      }
      ids[bn] = cands[i];
      rows[bn] = data_.row(cands[i]);
      PrefetchRead(rows[bn]);
      ++bn;
    }
    if (bn == 0) continue;
    L2Batch(query, rows, bn, dim_, dists);
    scored += bn;
    for (std::size_t j = 0; j < bn; ++j) top.Offer(Neighbor{ids[j], dists[j]});
  }
  if (ctx != nullptr) {
    ctx->stats.nodes_visited += scored;
    ctx->stats.distance_computations += scored;
  }
  return top.ExtractSorted();
}

double LshIndex::AvgBucketSize() const {
  if (tables_.empty() || tables_[0].empty()) return 0.0;
  std::size_t total = 0;
  for (const auto& [key, bucket] : tables_[0]) total += bucket.size();
  return static_cast<double>(total) / tables_[0].size();
}

std::size_t LshIndex::StorageBytes() const {
  std::size_t bytes = data_.data().size() * sizeof(float) + deleted_.size();
  for (const auto& proj : projections_) bytes += proj.size() * sizeof(float);
  for (const auto& off : offsets_) bytes += off.size() * sizeof(float);
  for (const auto& table : tables_) {
    for (const auto& [key, bucket] : table) {
      bytes += sizeof(key) + bucket.size() * sizeof(VectorId);
    }
  }
  return bytes;
}

void LshIndex::Serialize(BinaryWriter* out) const {
  out->Put<std::uint32_t>(0x504c5348);  // "PLSH"
  out->Put<std::uint32_t>(1);
  out->Put<std::uint64_t>(dim_);
  out->Put<std::uint64_t>(params_.num_tables);
  out->Put<std::uint64_t>(params_.num_hashes);
  out->Put<double>(params_.bucket_width);
  out->Put<std::uint64_t>(params_.seed);
  // Projections are persisted (not re-derived from the seed): the index may
  // have been constructed with an external Rng stream.
  for (std::size_t t = 0; t < params_.num_tables; ++t) {
    out->PutVector(projections_[t]);
    out->PutVector(offsets_[t]);
  }
  PutMatrix(data_, out);
  out->PutVector(deleted_);
}

Result<LshIndex> LshIndex::Deserialize(BinaryReader* in) {
  std::uint32_t magic = 0, version = 0;
  PPANNS_RETURN_IF_ERROR(in->Get(&magic));
  if (magic != 0x504c5348) return Status::IOError("LSH: bad magic");
  PPANNS_RETURN_IF_ERROR(in->Get(&version));
  if (version != 1) return Status::IOError("LSH: unsupported version");

  std::uint64_t dim = 0, num_tables = 0, num_hashes = 0;
  LshParams params;
  PPANNS_RETURN_IF_ERROR(in->Get(&dim));
  PPANNS_RETURN_IF_ERROR(in->Get(&num_tables));
  PPANNS_RETURN_IF_ERROR(in->Get(&num_hashes));
  PPANNS_RETURN_IF_ERROR(in->Get(&params.bucket_width));
  PPANNS_RETURN_IF_ERROR(in->Get(&params.seed));
  if (dim == 0 || num_tables == 0 || num_hashes == 0 ||
      !(params.bucket_width > 0.0)) {
    return Status::IOError("LSH: bad header");
  }
  // The serialized payload must actually hold num_tables x num_hashes x dim
  // projection floats; a crafted header must not trigger a huge allocation
  // in the constructor before the payload reads would catch it.
  const std::uint64_t max_floats = in->remaining() / sizeof(float);
  if (num_hashes > max_floats / dim ||                    // per-table block
      num_tables > max_floats / (num_hashes * dim)) {     // all tables
    return Status::IOError("LSH: header exceeds payload");
  }
  params.num_tables = num_tables;
  params.num_hashes = num_hashes;

  LshIndex index(dim, params);
  for (std::size_t t = 0; t < num_tables; ++t) {
    PPANNS_RETURN_IF_ERROR(in->GetVector(&index.projections_[t]));
    PPANNS_RETURN_IF_ERROR(in->GetVector(&index.offsets_[t]));
    if (index.projections_[t].size() != num_hashes * dim ||
        index.offsets_[t].size() != num_hashes) {
      return Status::IOError("LSH: bad projection shape");
    }
  }
  PPANNS_RETURN_IF_ERROR(GetMatrix(in, &index.data_));
  PPANNS_RETURN_IF_ERROR(in->GetVector(&index.deleted_));
  if (index.data_.dim() != dim || index.deleted_.size() != index.data_.size()) {
    return Status::IOError("LSH: inconsistent payload");
  }
  // Buckets are rebuilt, not persisted: hashing is deterministic given the
  // projections.
  for (std::size_t i = 0; i < index.data_.size(); ++i) {
    if (index.deleted_[i]) {
      ++index.num_deleted_;
      continue;
    }
    for (std::size_t t = 0; t < num_tables; ++t) {
      const auto id = static_cast<VectorId>(i);
      index.tables_[t][index.HashKey(index.data_.row(i), t)].push_back(id);
    }
  }
  return index;
}

}  // namespace ppanns
