// IVF (inverted file) index with from-scratch Lloyd k-means — the third
// index family the paper names alongside LSH and proximity graphs
// (Section I: "index structures like locality-sensitive hashing, inverted
// files, and proximity graphs"). Used by bench/ablation_graphs to show how
// the filter-phase substrate choice affects the encrypted search, and as a
// filter backend for the encrypted database.
//
// Train: k-means over a sample; Add: route each vector to its nearest
// centroid's posting list; Search: scan the `nprobe` nearest lists.
//
// Training may be explicit (Train) or automatic: vectors added to an
// untrained index are buffered, and once enough have accumulated the index
// trains itself on them (seeded by IvfParams::seed, so the result is
// deterministic). Until then Search falls back to an exact linear scan.

#ifndef PPANNS_INDEX_IVF_H_
#define PPANNS_INDEX_IVF_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/search_context.h"
#include "common/serialize.h"
#include "common/status.h"
#include "common/types.h"
#include "index/sq8.h"

namespace ppanns {

struct IvfParams {
  std::size_t num_lists = 64;   ///< k-means cluster count
  std::size_t train_iters = 10; ///< Lloyd iterations
  std::uint64_t seed = 0x1cf;   ///< auto-training randomness
  /// Auto-train once this many vectors have been added (0 => 4 * num_lists).
  std::size_t auto_train_min = 0;
};

/// With `sq.enabled`, the posting-list scan runs over an int8 scalar-quantized
/// code mirror (trained alongside k-means) and an oversampled shortlist is
/// re-ranked with exact float distances — see index/sq8.h.
class IvfIndex {
 public:
  IvfIndex(std::size_t dim, IvfParams params, SqParams sq = {});

  /// Runs k-means on `sample` to position the centroids, then routes any
  /// already-added vectors. Returns the final mean quantization error.
  double Train(const FloatMatrix& sample, Rng& rng);

  /// Appends a vector. If the index is trained it is routed to a posting
  /// list immediately; otherwise it is buffered, and once the auto-train
  /// threshold is reached the index trains itself on everything buffered.
  VectorId Add(const float* v);
  void AddBatch(const FloatMatrix& data);

  /// Tombstones `id` and drops it from its posting list. InvalidArgument if
  /// out of range, NotFound if already deleted (matching HnswIndex::Remove).
  Status Remove(VectorId id);

  /// Scans the `nprobe` closest posting lists; exact ranking within them.
  /// Untrained indexes fall back to an exact scan of the live rows. `ctx`
  /// (nullable) makes the posting-list scan cancellable and accumulates
  /// nodes_visited (rows scored) and distance_computations (rows scored +
  /// centroid ranking) into its stats.
  std::vector<Neighbor> Search(const float* query, std::size_t k,
                               std::size_t nprobe,
                               SearchContext* ctx = nullptr) const;

  bool trained() const { return !centroids_.empty(); }
  const SqParams& sq_params() const { return sq_params_; }
  /// True once the SQ tier is trained and answering posting scans.
  bool sq_active() const { return sq_.trained(); }
  bool IsDeleted(VectorId id) const { return deleted_[id] != 0; }
  std::size_t size() const { return data_.size() - num_deleted_; }
  std::size_t capacity() const { return data_.size(); }
  std::size_t dim() const { return dim_; }
  const IvfParams& params() const { return params_; }
  const FloatMatrix& centroids() const { return centroids_; }
  const FloatMatrix& data() const { return data_; }
  /// Occupancy of list `i` (balance diagnostics).
  std::size_t ListSize(std::size_t i) const { return lists_[i].size(); }

  /// Resident bytes: rows, centroids, posting lists, tombstone bitmap.
  std::size_t StorageBytes() const;

  void Serialize(BinaryWriter* out) const;
  static Result<IvfIndex> Deserialize(BinaryReader* in);

 private:
  std::size_t NearestCentroid(const float* v) const;
  /// Routes every live row into its posting list (post-training).
  void RouteAll();
  /// The Lloyd iterations shared by Train and auto-training.
  double RunKmeans(const FloatMatrix& sample, Rng& rng);
  /// Fits the SQ quantizer on `sample` and encodes all stored rows.
  void TrainSq(const FloatMatrix& sample);

  std::size_t dim_;
  IvfParams params_;
  SqParams sq_params_;
  FloatMatrix centroids_;
  FloatMatrix data_;
  std::vector<std::vector<VectorId>> lists_;
  std::vector<std::uint8_t> deleted_;
  std::size_t num_deleted_ = 0;
  Sq8Quantizer sq_;
  std::vector<std::int8_t> codes_;  ///< capacity * dim, parallel to data_
};

}  // namespace ppanns

#endif  // PPANNS_INDEX_IVF_H_
