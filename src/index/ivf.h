// IVF (inverted file) index with from-scratch Lloyd k-means — the third
// index family the paper names alongside LSH and proximity graphs
// (Section I: "index structures like locality-sensitive hashing, inverted
// files, and proximity graphs"). Used by bench/ablation_graphs to show how
// the filter-phase substrate choice affects the encrypted search, and as a
// plaintext comparison point.
//
// Train: k-means over a sample; Add: route each vector to its nearest
// centroid's posting list; Search: scan the `nprobe` nearest lists.

#ifndef PPANNS_INDEX_IVF_H_
#define PPANNS_INDEX_IVF_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/types.h"

namespace ppanns {

struct IvfParams {
  std::size_t num_lists = 64;   ///< k-means cluster count
  std::size_t train_iters = 10; ///< Lloyd iterations
};

class IvfIndex {
 public:
  IvfIndex(std::size_t dim, IvfParams params);

  /// Runs k-means on `sample` to position the centroids. Must be called
  /// before Add. Returns the final mean quantization error.
  double Train(const FloatMatrix& sample, Rng& rng);

  VectorId Add(const float* v);
  void AddBatch(const FloatMatrix& data);

  /// Scans the `nprobe` closest posting lists; exact ranking within them.
  std::vector<Neighbor> Search(const float* query, std::size_t k,
                               std::size_t nprobe) const;

  bool trained() const { return !centroids_.empty(); }
  std::size_t size() const { return data_.size(); }
  std::size_t dim() const { return dim_; }
  const FloatMatrix& centroids() const { return centroids_; }
  /// Occupancy of list `i` (balance diagnostics).
  std::size_t ListSize(std::size_t i) const { return lists_[i].size(); }

 private:
  std::size_t NearestCentroid(const float* v) const;

  std::size_t dim_;
  IvfParams params_;
  FloatMatrix centroids_;
  FloatMatrix data_;
  std::vector<std::vector<VectorId>> lists_;
};

}  // namespace ppanns

#endif  // PPANNS_INDEX_IVF_H_
