#include "datagen/synthetic.h"

#include <algorithm>
#include <cmath>

#include "common/io.h"
#include "index/brute_force.h"

namespace ppanns {

namespace {

/// Per-kind mixture geometry: the centers live in [lo, hi]^d with cluster
/// radius sigma (pre-post-processing).
struct KindProfile {
  double lo;
  double hi;
  double sigma;
  std::size_t dim;
  const char* name;
};

KindProfile ProfileOf(SyntheticKind kind) {
  switch (kind) {
    case SyntheticKind::kSiftLike:
      return {0.0, 255.0, 24.0, 128, "Sift1M"};
    case SyntheticKind::kGistLike:
      return {0.0, 1.0, 0.08, 960, "Gist"};
    case SyntheticKind::kGloveLike:
      return {-4.0, 4.0, 0.9, 100, "Glove"};
    case SyntheticKind::kDeepLike:
      return {-1.0, 1.0, 0.25, 96, "Deep1M"};
  }
  PPANNS_CHECK(false);
  return {};
}

void PostProcess(SyntheticKind kind, float* v, std::size_t dim) {
  switch (kind) {
    case SyntheticKind::kSiftLike:
      // SIFT descriptors are non-negative integers capped at 255.
      for (std::size_t i = 0; i < dim; ++i) {
        v[i] = std::round(std::clamp(v[i], 0.0f, 255.0f));
      }
      break;
    case SyntheticKind::kGistLike:
      for (std::size_t i = 0; i < dim; ++i) v[i] = std::clamp(v[i], 0.0f, 1.0f);
      break;
    case SyntheticKind::kGloveLike:
      break;  // unbounded dense embeddings
    case SyntheticKind::kDeepLike: {
      double norm2 = 0.0;
      for (std::size_t i = 0; i < dim; ++i) norm2 += double(v[i]) * v[i];
      const double inv = norm2 > 0 ? 1.0 / std::sqrt(norm2) : 0.0;
      for (std::size_t i = 0; i < dim; ++i) v[i] = static_cast<float>(v[i] * inv);
      break;
    }
  }
}

}  // namespace

std::size_t PaperDim(SyntheticKind kind) { return ProfileOf(kind).dim; }
std::string PaperName(SyntheticKind kind) { return ProfileOf(kind).name; }

DatasetStats ComputeStats(const FloatMatrix& data, Rng& rng,
                          std::size_t pair_samples) {
  DatasetStats s;
  s.n = data.size();
  s.dim = data.dim();
  double norm_sum = 0.0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    double norm2 = 0.0;
    for (std::size_t j = 0; j < data.dim(); ++j) {
      const double v = data.at(i, j);
      s.max_abs_coord = std::max(s.max_abs_coord, std::fabs(v));
      norm2 += v * v;
    }
    norm_sum += std::sqrt(norm2);
  }
  if (data.size() > 0) s.mean_norm = norm_sum / data.size();

  if (data.size() >= 2 && pair_samples > 0) {
    double dist_sum = 0.0;
    for (std::size_t t = 0; t < pair_samples; ++t) {
      const auto i = static_cast<std::size_t>(rng.UniformInt(0, data.size() - 1));
      auto j = static_cast<std::size_t>(rng.UniformInt(0, data.size() - 1));
      if (j == i) j = (j + 1) % data.size();
      dist_sum += std::sqrt(SquaredL2(data.row(i), data.row(j), data.dim()));
    }
    s.mean_dist = dist_sum / pair_samples;
  }
  return s;
}

FloatMatrix GenerateSynthetic(SyntheticKind kind, std::size_t n,
                              std::size_t dim, Rng& rng,
                              std::size_t num_clusters) {
  const KindProfile prof = ProfileOf(kind);
  if (dim == 0) dim = prof.dim;
  num_clusters = std::max<std::size_t>(1, std::min(num_clusters, n));

  // Cluster centers uniform in the data box; cluster weights mildly skewed
  // (Zipf-ish) like real descriptor corpora.
  FloatMatrix centers(num_clusters, dim);
  for (std::size_t c = 0; c < num_clusters; ++c) {
    for (std::size_t j = 0; j < dim; ++j) {
      centers.at(c, j) = static_cast<float>(rng.Uniform(prof.lo, prof.hi));
    }
  }
  std::vector<double> cum_weight(num_clusters);
  double total = 0.0;
  for (std::size_t c = 0; c < num_clusters; ++c) {
    total += 1.0 / std::sqrt(static_cast<double>(c + 1));
    cum_weight[c] = total;
  }

  FloatMatrix out(n, dim);
  std::vector<double> noise(dim);
  for (std::size_t i = 0; i < n; ++i) {
    const double u = rng.Uniform(0.0, total);
    const std::size_t c =
        std::lower_bound(cum_weight.begin(), cum_weight.end(), u) -
        cum_weight.begin();
    rng.GaussianVector(0.0, prof.sigma, noise.data(), dim);
    float* row = out.row(i);
    for (std::size_t j = 0; j < dim; ++j) {
      row[j] = static_cast<float>(centers.at(std::min(c, num_clusters - 1), j) +
                                  noise[j]);
    }
    PostProcess(kind, row, dim);
  }
  return out;
}

Dataset MakeDataset(SyntheticKind kind, std::size_t n, std::size_t num_queries,
                    std::size_t gt_k, std::uint64_t seed,
                    std::size_t dim_override) {
  Rng rng(seed);
  const std::size_t dim = dim_override ? dim_override : PaperDim(kind);
  // Generate base and queries from one mixture draw so queries follow the
  // data distribution, then split.
  FloatMatrix all = GenerateSynthetic(kind, n + num_queries, dim, rng);
  Dataset ds;
  ds.name = PaperName(kind) + "-like";
  ds.base = FloatMatrix(n, dim);
  ds.queries = FloatMatrix(num_queries, dim);
  std::copy(all.data().begin(), all.data().begin() + n * dim,
            ds.base.data().begin());
  std::copy(all.data().begin() + n * dim, all.data().end(),
            ds.queries.data().begin());
  if (gt_k > 0) {
    ds.ground_truth = BruteForceKnnBatch(ds.base, ds.queries, gt_k);
  }
  return ds;
}

Dataset MakeOrLoadDataset(SyntheticKind kind, std::size_t n,
                          std::size_t num_queries, std::size_t gt_k,
                          std::uint64_t seed) {
  struct Paths {
    const char* base;
    const char* query;
    bool bvecs;
  };
  Paths paths{};
  switch (kind) {
    case SyntheticKind::kSiftLike:
      paths = {"data/sift/sift_base.fvecs", "data/sift/sift_query.fvecs", false};
      break;
    case SyntheticKind::kGistLike:
      paths = {"data/gist/gist_base.fvecs", "data/gist/gist_query.fvecs", false};
      break;
    case SyntheticKind::kGloveLike:
      paths = {"data/glove/glove_base.fvecs", "data/glove/glove_query.fvecs",
               false};
      break;
    case SyntheticKind::kDeepLike:
      paths = {"data/deep/deep_base.fvecs", "data/deep/deep_query.fvecs", false};
      break;
  }
  if (FileExists(paths.base) && FileExists(paths.query)) {
    auto base = ReadFvecs(paths.base, n);
    auto queries = ReadFvecs(paths.query, num_queries);
    if (base.ok() && queries.ok()) {
      Dataset ds;
      ds.name = PaperName(kind);
      ds.base = std::move(*base);
      ds.queries = std::move(*queries);
      if (gt_k > 0) {
        ds.ground_truth = BruteForceKnnBatch(ds.base, ds.queries, gt_k);
      }
      return ds;
    }
  }
  return MakeDataset(kind, n, num_queries, gt_k, seed);
}

}  // namespace ppanns
