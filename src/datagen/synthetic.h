// Synthetic dataset generators matched to the paper's evaluation datasets
// (Table I). The real SIFT1M/GIST/GloVe/Deep1M files are public but not
// available offline; per the substitution table in DESIGN.md we generate
// Gaussian-mixture data matched on dimension, value range and cluster
// structure, and fall back to the real .fvecs/.bvecs files when present.
//
//   Sift1M-like : d=128, integer coordinates in [0,255] (SIFT descriptors)
//   Gist-like   : d=960, floats in [0,1] (GIST global descriptors)
//   Glove-like  : d=100, zero-mean dense word embeddings
//   Deep1M-like : d=96,  L2-normalized CNN descriptors

#ifndef PPANNS_DATAGEN_SYNTHETIC_H_
#define PPANNS_DATAGEN_SYNTHETIC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/types.h"

namespace ppanns {

enum class SyntheticKind {
  kSiftLike,
  kGistLike,
  kGloveLike,
  kDeepLike,
};

/// A base set, query set and (optionally) exact ground truth.
struct Dataset {
  std::string name;
  FloatMatrix base;
  FloatMatrix queries;
  /// ground_truth[i] = exact k nearest neighbors of queries[i] in base.
  std::vector<std::vector<Neighbor>> ground_truth;
};

/// Summary statistics consumed by key tuning (DCPE beta range needs M = max
/// |coordinate|; DCE scale hints use the mean norm).
struct DatasetStats {
  std::size_t n = 0;
  std::size_t dim = 0;
  double max_abs_coord = 0.0;  ///< M in the DCPE beta range [sqrt(M), 2M sqrt(d)]
  double mean_norm = 0.0;      ///< average ||p||
  double mean_dist = 0.0;      ///< average pairwise distance (sampled)
};

DatasetStats ComputeStats(const FloatMatrix& data, Rng& rng,
                          std::size_t pair_samples = 1000);

/// Gaussian-mixture generator: `num_clusters` centers, isotropic noise.
/// Post-processing per `kind` (clipping / rounding / normalization).
FloatMatrix GenerateSynthetic(SyntheticKind kind, std::size_t n,
                              std::size_t dim, Rng& rng,
                              std::size_t num_clusters = 64);

/// Paper dimension for each kind (Table I).
std::size_t PaperDim(SyntheticKind kind);
/// Paper dataset name for each kind.
std::string PaperName(SyntheticKind kind);

/// Builds a full dataset (base + queries drawn from the same mixture +
/// exact ground truth for `gt_k` neighbors). Queries are generated jointly
/// with the base so they follow the data distribution, as in the real
/// benchmark query sets.
Dataset MakeDataset(SyntheticKind kind, std::size_t n, std::size_t num_queries,
                    std::size_t gt_k, std::uint64_t seed,
                    std::size_t dim_override = 0);

/// Loads the real dataset from `data/<name>/` if the fvecs/bvecs files exist
/// (e.g. data/sift/sift_base.fvecs), else generates the synthetic stand-in.
/// Ground truth is always recomputed exactly for the loaded subset.
Dataset MakeOrLoadDataset(SyntheticKind kind, std::size_t n,
                          std::size_t num_queries, std::size_t gt_k,
                          std::uint64_t seed);

}  // namespace ppanns

#endif  // PPANNS_DATAGEN_SYNTHETIC_H_
