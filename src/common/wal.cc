#include "common/wal.h"

#include <algorithm>
#include <cinttypes>
#include <cstring>
#include <filesystem>

#include "common/io.h"
#include "common/serialize.h"

namespace ppanns {
namespace {

namespace fs = std::filesystem;

constexpr std::uint32_t kWalMagic = 0x5050574C;  // "PPWL" little-endian
constexpr std::uint32_t kWalVersion = 1;
constexpr std::size_t kSegmentHeaderBytes = 4 + 4 + 8;

std::string SegmentName(std::uint64_t start_lsn) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "wal-%016" PRIx64 ".log", start_lsn);
  return buf;
}

/// Segment files of `dir` sorted by name — which is lsn order, because the
/// start lsn is zero-padded hex.
Result<std::vector<std::string>> ListSegments(const std::string& dir) {
  std::vector<std::string> out;
  std::error_code ec;
  if (!fs::exists(dir, ec)) return out;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.size() == 24 && name.rfind("wal-", 0) == 0 &&
        name.compare(20, 4, ".log") == 0) {
      out.push_back(entry.path().string());
    }
  }
  if (ec) return Status::IOError("wal: cannot list " + dir + ": " + ec.message());
  std::sort(out.begin(), out.end());
  return out;
}

struct SegmentScan {
  std::vector<WalRecord> records;
  bool clean_stop = false;  ///< hit a torn/corrupt record (replay must stop)
};

/// Decodes one segment's records, stopping cleanly at the first bad one.
/// `expect_lsn` carries the cross-segment continuity check; nullptr skips it
/// (first segment establishes the base).
Result<SegmentScan> ScanSegment(const std::string& path,
                                std::uint64_t* expect_lsn, bool first_segment) {
  auto bytes = ReadFile(path);
  if (!bytes.ok()) return bytes.status();
  SegmentScan scan;
  BinaryReader r(*bytes);
  std::uint32_t magic = 0, version = 0;
  std::uint64_t start_lsn = 0;
  if (!r.Get(&magic).ok() || !r.Get(&version).ok() || !r.Get(&start_lsn).ok() ||
      magic != kWalMagic || version != kWalVersion) {
    // A torn header on a later segment is tail corruption (clean stop); a
    // broken first segment means the directory is not a WAL at all.
    if (first_segment) {
      return Status::IOError("wal: bad segment header in " + path);
    }
    scan.clean_stop = true;
    return scan;
  }
  if (expect_lsn != nullptr && start_lsn != *expect_lsn) {
    scan.clean_stop = true;  // gap: a segment between them was lost
    return scan;
  }
  std::uint64_t lsn = start_lsn;
  while (r.remaining() > 0) {
    std::uint32_t len = 0, crc = 0;
    if (!r.Get(&len).ok() || !r.Get(&crc).ok() || len < 1 + 8 ||
        r.remaining() < len) {
      scan.clean_stop = true;  // torn tail
      break;
    }
    std::vector<std::uint8_t> body;
    body.resize(len);
    // remaining() was checked above; GetVector would add its own length
    // prefix, so copy raw bytes through a fixed-size read loop instead.
    for (std::size_t i = 0; i < len; ++i) {
      std::uint8_t b = 0;
      (void)r.Get(&b);
      body[i] = b;
    }
    if (Crc32(body.data(), body.size()) != crc) {
      scan.clean_stop = true;  // flipped bit
      break;
    }
    WalRecord rec;
    rec.type = static_cast<WalRecordType>(body[0]);
    std::uint64_t rec_lsn = 0;
    std::memcpy(&rec_lsn, body.data() + 1, sizeof(rec_lsn));
    if (rec_lsn != lsn) {
      scan.clean_stop = true;  // discontinuity inside a segment
      break;
    }
    rec.lsn = rec_lsn;
    rec.payload.assign(body.begin() + 1 + 8, body.end());
    scan.records.push_back(std::move(rec));
    ++lsn;
  }
  if (expect_lsn != nullptr) *expect_lsn = lsn;
  return scan;
}

Result<std::vector<WalRecord>> ReadWalImpl(const std::string& dir,
                                           std::uint64_t* next_lsn_out) {
  auto segments = ListSegments(dir);
  if (!segments.ok()) return segments.status();
  std::vector<WalRecord> records;
  std::uint64_t expect_lsn = 0;
  bool have_base = false;
  for (std::size_t i = 0; i < segments->size(); ++i) {
    auto scan = ScanSegment((*segments)[i], have_base ? &expect_lsn : nullptr,
                            /*first_segment=*/i == 0);
    if (!scan.ok()) return scan.status();
    if (!have_base && !scan->records.empty()) {
      expect_lsn = scan->records.back().lsn + 1;
      have_base = true;
    } else if (!have_base && !scan->clean_stop) {
      // Empty but well-formed segment: its start lsn is the base. Re-derive
      // it from the filename (the header was already validated).
      const std::string name = fs::path((*segments)[i]).filename().string();
      expect_lsn = std::strtoull(name.c_str() + 4, nullptr, 16);
      have_base = true;
    }
    for (auto& rec : scan->records) records.push_back(std::move(rec));
    if (scan->clean_stop) break;  // everything after the tear is unusable
  }
  if (next_lsn_out != nullptr) {
    *next_lsn_out = records.empty() ? (have_base ? expect_lsn : 0)
                                    : records.back().lsn + 1;
  }
  return records;
}

}  // namespace

std::uint32_t Crc32(const std::uint8_t* data, std::size_t n) {
  static const std::uint32_t* table = [] {
    static std::uint32_t t[256];
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

Result<WalWriter> WalWriter::Open(const std::string& dir, WalOptions options) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) return Status::IOError("wal: cannot create " + dir + ": " + ec.message());
  std::uint64_t next_lsn = 0;
  auto records = ReadWalImpl(dir, &next_lsn);
  if (!records.ok()) return records.status();
  WalWriter writer(dir, options, next_lsn);
  PPANNS_RETURN_IF_ERROR(writer.OpenFreshSegment());
  return writer;
}

WalWriter::WalWriter(std::string dir, WalOptions options, std::uint64_t next_lsn)
    : dir_(std::move(dir)), options_(options), next_lsn_(next_lsn) {}

WalWriter::WalWriter(WalWriter&& other) noexcept
    : dir_(std::move(other.dir_)),
      options_(other.options_),
      next_lsn_(other.next_lsn_),
      segment_(other.segment_),
      segment_path_(std::move(other.segment_path_)),
      segment_size_(other.segment_size_) {
  other.segment_ = nullptr;
}

WalWriter& WalWriter::operator=(WalWriter&& other) noexcept {
  if (this != &other) {
    CloseSegment();
    dir_ = std::move(other.dir_);
    options_ = other.options_;
    next_lsn_ = other.next_lsn_;
    segment_ = other.segment_;
    segment_path_ = std::move(other.segment_path_);
    segment_size_ = other.segment_size_;
    other.segment_ = nullptr;
  }
  return *this;
}

WalWriter::~WalWriter() { CloseSegment(); }

void WalWriter::CloseSegment() {
  if (segment_ != nullptr) {
    std::fclose(segment_);
    segment_ = nullptr;
  }
}

Status WalWriter::OpenFreshSegment() {
  CloseSegment();
  segment_path_ = (fs::path(dir_) / SegmentName(next_lsn_)).string();
  segment_ = std::fopen(segment_path_.c_str(), "wb");
  if (segment_ == nullptr) {
    return Status::IOError("wal: cannot open segment " + segment_path_);
  }
  BinaryWriter header;
  header.Put<std::uint32_t>(kWalMagic);
  header.Put<std::uint32_t>(kWalVersion);
  header.Put<std::uint64_t>(next_lsn_);
  if (std::fwrite(header.buffer().data(), 1, header.buffer().size(),
                  segment_) != header.buffer().size() ||
      std::fflush(segment_) != 0) {
    return Status::IOError("wal: cannot write segment header " + segment_path_);
  }
  segment_size_ = header.buffer().size();
  return Status::OK();
}

Result<std::uint64_t> WalWriter::Append(WalRecordType type,
                                        const std::vector<std::uint8_t>& payload) {
  if (segment_ == nullptr) {
    return Status::FailedPrecondition("wal: writer has no open segment");
  }
  const std::uint64_t lsn = next_lsn_;
  BinaryWriter body;
  body.Put<std::uint8_t>(static_cast<std::uint8_t>(type));
  body.Put<std::uint64_t>(lsn);
  body.PutBytes(payload.data(), payload.size());
  BinaryWriter frame;
  frame.Put<std::uint32_t>(static_cast<std::uint32_t>(body.buffer().size()));
  frame.Put<std::uint32_t>(Crc32(body.buffer().data(), body.buffer().size()));
  frame.PutBytes(body.buffer().data(), body.buffer().size());
  if (std::fwrite(frame.buffer().data(), 1, frame.buffer().size(), segment_) !=
          frame.buffer().size() ||
      std::fflush(segment_) != 0) {
    return Status::IOError("wal: short write to " + segment_path_);
  }
  segment_size_ += frame.buffer().size();
  ++next_lsn_;
  if (segment_size_ >= options_.segment_bytes) {
    PPANNS_RETURN_IF_ERROR(OpenFreshSegment());
  }
  return lsn;
}

Status WalWriter::Truncate() {
  CloseSegment();
  auto segments = ListSegments(dir_);
  if (!segments.ok()) return segments.status();
  for (const std::string& path : *segments) {
    std::error_code ec;
    fs::remove(path, ec);
    if (ec) return Status::IOError("wal: cannot delete " + path + ": " + ec.message());
  }
  return OpenFreshSegment();
}

WalStats WalWriter::Stats() const {
  WalStats stats;
  auto segments = ListSegments(dir_);
  if (segments.ok()) {
    stats.segments = segments->size();
    for (const std::string& path : *segments) {
      std::error_code ec;
      const auto size = fs::file_size(path, ec);
      if (!ec) stats.bytes += static_cast<std::size_t>(size);
    }
  }
  stats.next_lsn = next_lsn_;
  return stats;
}

Result<std::vector<WalRecord>> ReadWal(const std::string& dir) {
  return ReadWalImpl(dir, nullptr);
}

Result<WalStats> ReadWalStats(const std::string& dir) {
  WalStats stats;
  auto segments = ListSegments(dir);
  if (!segments.ok()) return segments.status();
  stats.segments = segments->size();
  for (const std::string& path : *segments) {
    std::error_code ec;
    const auto size = fs::file_size(path, ec);
    if (!ec) stats.bytes += static_cast<std::size_t>(size);
  }
  auto records = ReadWalImpl(dir, &stats.next_lsn);
  if (!records.ok()) return records.status();
  return stats;
}

}  // namespace ppanns
