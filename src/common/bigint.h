// Arbitrary-precision unsigned integer arithmetic — the substrate for the
// Paillier cryptosystem (crypto/paillier.h). Implemented from scratch:
// 64-bit limbs, schoolbook multiplication, shift-subtract division,
// square-and-multiply modular exponentiation, binary extended GCD, and
// Miller-Rabin primality for key generation.
//
// Scope: correctness and honest cost for the HE-exclusion benchmark
// (Section III of the paper argues HE-based secure distance comparison is
// orders of magnitude too slow; bench/he_exclusion measures that with this
// implementation). Not constant-time; not for production key material.

#ifndef PPANNS_COMMON_BIGINT_H_
#define PPANNS_COMMON_BIGINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"

namespace ppanns {

/// Unsigned big integer, little-endian 64-bit limbs, normalized (no
/// trailing zero limbs; zero is the empty limb vector).
class BigUint {
 public:
  BigUint() = default;
  BigUint(std::uint64_t v);  // NOLINT(runtime/explicit)

  /// Parses a hexadecimal string (no 0x prefix).
  static BigUint FromHex(const std::string& hex);
  std::string ToHex() const;

  /// Uniform in [0, 2^bits).
  static BigUint Random(std::size_t bits, Rng& rng);
  /// Uniform in [0, bound).
  static BigUint RandomBelow(const BigUint& bound, Rng& rng);
  /// Random probable prime with exactly `bits` bits (top bit set, odd),
  /// `mr_rounds` Miller-Rabin rounds.
  static BigUint RandomPrime(std::size_t bits, Rng& rng, int mr_rounds = 24);

  bool IsZero() const { return limbs_.empty(); }
  bool IsOdd() const { return !limbs_.empty() && (limbs_[0] & 1); }
  std::size_t BitLength() const;
  bool Bit(std::size_t i) const;

  int Compare(const BigUint& other) const;
  bool operator==(const BigUint& o) const { return Compare(o) == 0; }
  bool operator<(const BigUint& o) const { return Compare(o) < 0; }
  bool operator<=(const BigUint& o) const { return Compare(o) <= 0; }

  BigUint Add(const BigUint& other) const;
  /// Requires *this >= other.
  BigUint Sub(const BigUint& other) const;
  BigUint Mul(const BigUint& other) const;
  BigUint ShiftLeft(std::size_t bits) const;
  BigUint ShiftRight(std::size_t bits) const;

  /// Quotient and remainder via Knuth Algorithm D long division. Either
  /// output may be null.
  void Divide(const BigUint& divisor, BigUint* quotient,
              BigUint* remainder) const;
  BigUint Div(const BigUint& divisor) const {
    BigUint q;
    Divide(divisor, &q, nullptr);
    return q;
  }
  BigUint Mod(const BigUint& modulus) const {
    BigUint r;
    Divide(modulus, nullptr, &r);
    return r;
  }

  /// (a * b) mod m.
  static BigUint MulMod(const BigUint& a, const BigUint& b, const BigUint& m);
  /// (base ^ exp) mod m, square-and-multiply.
  static BigUint PowMod(const BigUint& base, const BigUint& exp,
                        const BigUint& m);
  static BigUint Gcd(BigUint a, BigUint b);
  /// Modular inverse; fails (returns zero) when gcd(a, m) != 1.
  static BigUint InverseMod(const BigUint& a, const BigUint& m);

  /// Miller-Rabin probable-prime test.
  static bool IsProbablePrime(const BigUint& n, Rng& rng, int rounds = 24);

  /// Value as uint64 (requires BitLength() <= 64).
  std::uint64_t ToUint64() const;

  const std::vector<std::uint64_t>& limbs() const { return limbs_; }

 private:
  void Normalize();

  std::vector<std::uint64_t> limbs_;
};

}  // namespace ppanns

#endif  // PPANNS_COMMON_BIGINT_H_
