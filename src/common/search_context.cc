#include "common/search_context.h"

#include "common/status.h"

namespace ppanns {

const char* EarlyExitName(EarlyExit reason) {
  switch (reason) {
    case EarlyExit::kNone:
      return "none";
    case EarlyExit::kCancelled:
      return "cancelled";
    case EarlyExit::kDeadlineExpired:
      return "deadline";
    case EarlyExit::kBudgetExhausted:
      return "budget";
  }
  return "unknown";
}

SearchContext SearchContext::WithDeadlineMs(double ms) {
  SearchContext ctx;
  if (ms > 0.0) {
    ctx.set_deadline(
        Clock::now() +
        std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double, std::milli>(ms)));
  }
  return ctx;
}

void SearchContext::AddCancelFlag(const std::atomic<bool>* flag) {
  for (const std::atomic<bool>*& slot : flags_) {
    if (slot == nullptr) {
      slot = flag;
      return;
    }
  }
  // Two caller flags plus the serving tier's additions fit in four slots;
  // overflowing them is a programmer error (collapse flags before
  // registering), not a load-dependent condition.
  PPANNS_CHECK(false);
}

}  // namespace ppanns
