// Core vector-database value types shared across all modules.

#ifndef PPANNS_COMMON_TYPES_H_
#define PPANNS_COMMON_TYPES_H_

#include <cstddef>
#include <cstdint>
#include <vector>

// SquaredL2 / InnerProduct (float and double) are defined by the
// runtime-dispatched distance-kernel layer; types.h re-exports them so every
// existing call site keeps compiling against one header.
#include "linalg/kernels.h"

namespace ppanns {

/// Identifier of a database vector. Dense in [0, n).
using VectorId = std::uint32_t;

/// Identifier of a shard in a sharded encrypted database. Dense in [0, S).
using ShardId = std::uint32_t;

/// Location of a global vector inside a sharded database: the shard that
/// holds it and its dense local id within that shard. Trivially copyable so
/// manifests serialize as flat arrays.
struct ShardRef {
  ShardId shard = 0;
  VectorId local = 0;

  friend bool operator==(const ShardRef& a, const ShardRef& b) {
    return a.shard == b.shard && a.local == b.local;
  }
};

/// Which k'-ANNS substrate backs the filter phase (Algorithm 2, line 1).
/// The paper fixes only the filter contract — k'-ANNS over SAP ciphertexts —
/// so any of the index families it names (proximity graphs, inverted files,
/// locality-sensitive hashing) can fill the slot; brute force is the exact
/// reference point. Serialized with the encrypted database, so keep values
/// stable.
enum class IndexKind : std::uint8_t {
  kHnsw = 0,
  kIvf = 1,
  kLsh = 2,
  kBruteForce = 3,
};

/// Sentinel for "no vector".
inline constexpr VectorId kInvalidVectorId = 0xFFFFFFFFu;

/// A (vector id, squared L2 distance) search result entry.
struct Neighbor {
  VectorId id = kInvalidVectorId;
  float distance = 0.0f;  ///< squared Euclidean distance

  friend bool operator<(const Neighbor& a, const Neighbor& b) {
    if (a.distance != b.distance) return a.distance < b.distance;
    return a.id < b.id;
  }
  friend bool operator==(const Neighbor& a, const Neighbor& b) {
    return a.id == b.id && a.distance == b.distance;
  }
};

/// Row-major dense collection of n d-dimensional float vectors.
///
/// The canonical in-memory representation of a plaintext or SAP-encrypted
/// database. Cheap to index, trivially serializable.
class FloatMatrix {
 public:
  FloatMatrix() = default;
  FloatMatrix(std::size_t n, std::size_t dim)
      : n_(n), dim_(dim), data_(n * dim, 0.0f) {}

  std::size_t size() const { return n_; }
  std::size_t dim() const { return dim_; }
  bool empty() const { return n_ == 0; }

  float* row(std::size_t i) { return data_.data() + i * dim_; }
  const float* row(std::size_t i) const { return data_.data() + i * dim_; }

  float& at(std::size_t i, std::size_t j) { return data_[i * dim_ + j]; }
  float at(std::size_t i, std::size_t j) const { return data_[i * dim_ + j]; }

  std::vector<float>& data() { return data_; }
  const std::vector<float>& data() const { return data_; }

  /// Appends one row (must have length dim()); returns its id.
  VectorId Append(const float* v) {
    data_.insert(data_.end(), v, v + dim_);
    return static_cast<VectorId>(n_++);
  }

 private:
  std::size_t n_ = 0;
  std::size_t dim_ = 0;
  std::vector<float> data_;
};

/// Non-owning view of n d-dimensional float rows laid out `base + i*stride`.
///
/// Generalizes FloatMatrix for bulk-build consumers: a round-robin shard
/// partition of a SAP matrix is just a RowView with `base = sap.row(s)` and
/// `stride = num_shards * dim`, so the sharded parallel build reads shard
/// rows in place instead of materializing a per-shard copy (~2x peak SAP
/// memory). Implicitly constructible from FloatMatrix (stride == dim), so
/// every existing dense call site keeps working unchanged.
class RowView {
 public:
  RowView() = default;
  RowView(const float* base, std::size_t n, std::size_t dim,
          std::size_t stride)
      : base_(base), n_(n), dim_(dim), stride_(stride) {}
  /*implicit*/ RowView(const FloatMatrix& m)
      : base_(m.data().data()), n_(m.size()), dim_(m.dim()), stride_(m.dim()) {}

  std::size_t size() const { return n_; }
  std::size_t dim() const { return dim_; }
  std::size_t stride() const { return stride_; }
  bool empty() const { return n_ == 0; }

  const float* row(std::size_t i) const { return base_ + i * stride_; }

 private:
  const float* base_ = nullptr;
  std::size_t n_ = 0;
  std::size_t dim_ = 0;
  std::size_t stride_ = 0;
};

}  // namespace ppanns

#endif  // PPANNS_COMMON_TYPES_H_
