// Core vector-database value types shared across all modules.

#ifndef PPANNS_COMMON_TYPES_H_
#define PPANNS_COMMON_TYPES_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ppanns {

/// Identifier of a database vector. Dense in [0, n).
using VectorId = std::uint32_t;

/// Identifier of a shard in a sharded encrypted database. Dense in [0, S).
using ShardId = std::uint32_t;

/// Location of a global vector inside a sharded database: the shard that
/// holds it and its dense local id within that shard. Trivially copyable so
/// manifests serialize as flat arrays.
struct ShardRef {
  ShardId shard = 0;
  VectorId local = 0;

  friend bool operator==(const ShardRef& a, const ShardRef& b) {
    return a.shard == b.shard && a.local == b.local;
  }
};

/// Which k'-ANNS substrate backs the filter phase (Algorithm 2, line 1).
/// The paper fixes only the filter contract — k'-ANNS over SAP ciphertexts —
/// so any of the index families it names (proximity graphs, inverted files,
/// locality-sensitive hashing) can fill the slot; brute force is the exact
/// reference point. Serialized with the encrypted database, so keep values
/// stable.
enum class IndexKind : std::uint8_t {
  kHnsw = 0,
  kIvf = 1,
  kLsh = 2,
  kBruteForce = 3,
};

/// Sentinel for "no vector".
inline constexpr VectorId kInvalidVectorId = 0xFFFFFFFFu;

/// A (vector id, squared L2 distance) search result entry.
struct Neighbor {
  VectorId id = kInvalidVectorId;
  float distance = 0.0f;  ///< squared Euclidean distance

  friend bool operator<(const Neighbor& a, const Neighbor& b) {
    if (a.distance != b.distance) return a.distance < b.distance;
    return a.id < b.id;
  }
  friend bool operator==(const Neighbor& a, const Neighbor& b) {
    return a.id == b.id && a.distance == b.distance;
  }
};

/// Row-major dense collection of n d-dimensional float vectors.
///
/// The canonical in-memory representation of a plaintext or SAP-encrypted
/// database. Cheap to index, trivially serializable.
class FloatMatrix {
 public:
  FloatMatrix() = default;
  FloatMatrix(std::size_t n, std::size_t dim)
      : n_(n), dim_(dim), data_(n * dim, 0.0f) {}

  std::size_t size() const { return n_; }
  std::size_t dim() const { return dim_; }
  bool empty() const { return n_ == 0; }

  float* row(std::size_t i) { return data_.data() + i * dim_; }
  const float* row(std::size_t i) const { return data_.data() + i * dim_; }

  float& at(std::size_t i, std::size_t j) { return data_[i * dim_ + j]; }
  float at(std::size_t i, std::size_t j) const { return data_[i * dim_ + j]; }

  std::vector<float>& data() { return data_; }
  const std::vector<float>& data() const { return data_; }

  /// Appends one row (must have length dim()); returns its id.
  VectorId Append(const float* v) {
    data_.insert(data_.end(), v, v + dim_);
    return static_cast<VectorId>(n_++);
  }

 private:
  std::size_t n_ = 0;
  std::size_t dim_ = 0;
  std::vector<float> data_;
};

/// Squared Euclidean distance between two d-dimensional float vectors.
inline float SquaredL2(const float* a, const float* b, std::size_t d) {
  float acc0 = 0.0f, acc1 = 0.0f, acc2 = 0.0f, acc3 = 0.0f;
  std::size_t i = 0;
  for (; i + 4 <= d; i += 4) {
    const float d0 = a[i] - b[i];
    const float d1 = a[i + 1] - b[i + 1];
    const float d2 = a[i + 2] - b[i + 2];
    const float d3 = a[i + 3] - b[i + 3];
    acc0 += d0 * d0;
    acc1 += d1 * d1;
    acc2 += d2 * d2;
    acc3 += d3 * d3;
  }
  float acc = acc0 + acc1 + acc2 + acc3;
  for (; i < d; ++i) {
    const float di = a[i] - b[i];
    acc += di * di;
  }
  return acc;
}

/// Inner product between two d-dimensional float vectors.
inline float InnerProduct(const float* a, const float* b, std::size_t d) {
  float acc = 0.0f;
  for (std::size_t i = 0; i < d; ++i) acc += a[i] * b[i];
  return acc;
}

}  // namespace ppanns

#endif  // PPANNS_COMMON_TYPES_H_
