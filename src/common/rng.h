// Deterministic random number generation.
//
// Every stochastic component in the library draws from an explicitly seeded
// Rng so that tests, benchmarks and experiments are reproducible. Rng also
// provides the distributions the paper's constructions need (Gaussian vectors,
// random permutations, uniform reals bounded away from zero).

#ifndef PPANNS_COMMON_RNG_H_
#define PPANNS_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

#include "common/status.h"

namespace ppanns {

/// Seeded pseudo-random generator wrapping std::mt19937_64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Creates an independent child stream; useful for giving each component
  /// its own reproducible stream derived from one master seed.
  Rng Fork() { return Rng(engine_()); }

  std::uint64_t NextUint64() { return engine_(); }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi) {
    std::uniform_int_distribution<std::int64_t> dist(lo, hi);
    return dist(engine_);
  }

  /// Uniform real in [lo, hi).
  double Uniform(double lo = 0.0, double hi = 1.0) {
    std::uniform_real_distribution<double> dist(lo, hi);
    return dist(engine_);
  }

  /// Uniform magnitude in [lo, hi) with a random sign. Used for DCE key
  /// vectors whose elements must be bounded away from zero (they divide).
  double SignedUniform(double lo, double hi) {
    const double mag = Uniform(lo, hi);
    return (engine_() & 1u) ? mag : -mag;
  }

  /// Standard normal draw.
  double Gaussian(double mean = 0.0, double stddev = 1.0) {
    std::normal_distribution<double> dist(mean, stddev);
    return dist(engine_);
  }

  /// Fills `out` with iid N(mean, stddev^2) draws.
  void GaussianVector(double mean, double stddev, double* out, std::size_t n) {
    std::normal_distribution<double> dist(mean, stddev);
    for (std::size_t i = 0; i < n; ++i) out[i] = dist(engine_);
  }

  /// Random permutation of {0, ..., n-1} (Fisher-Yates).
  std::vector<std::uint32_t> Permutation(std::size_t n) {
    std::vector<std::uint32_t> perm(n);
    for (std::size_t i = 0; i < n; ++i) perm[i] = static_cast<std::uint32_t>(i);
    for (std::size_t i = n; i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(UniformInt(0, i - 1));
      std::swap(perm[i - 1], perm[j]);
    }
    return perm;
  }

  /// Samples k distinct indices from [0, n) (k <= n).
  std::vector<std::uint32_t> Sample(std::size_t n, std::size_t k);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace ppanns

#endif  // PPANNS_COMMON_RNG_H_
