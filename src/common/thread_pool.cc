#include "common/thread_pool.h"

#include <algorithm>

namespace ppanns {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  task_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

namespace {
// The pool whose worker is executing on this thread (null outside workers),
// so a nested ParallelFor can detect it must not block on the pool it is
// running inside — fanning out to a *different* pool stays parallel.
thread_local const ThreadPool* t_worker_pool = nullptr;
}  // namespace

bool ThreadPool::InWorker() const { return t_worker_pool == this; }

void ThreadPool::ParallelFor(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  if (t_worker_pool == this || n == 1) {
    // Nested call (or nothing to split): run inline. Submitting and waiting
    // from a worker deadlocks once every worker is the one waiting.
    fn(0, n);
    return;
  }

  const std::size_t chunks = std::min(n, num_threads() * 4);
  const std::size_t step = (n + chunks - 1) / chunks;

  // Per-call completion latch: Wait()-style global tracking would make two
  // concurrent ParallelFor callers block on each other's unrelated tasks.
  struct Latch {
    std::mutex mu;
    std::condition_variable cv;
    std::size_t remaining;
  } latch;
  latch.remaining = (n + step - 1) / step;

  for (std::size_t begin = 0; begin < n; begin += step) {
    const std::size_t end = std::min(begin + step, n);
    Submit([&fn, &latch, begin, end] {
      fn(begin, end);
      std::lock_guard<std::mutex> lock(latch.mu);
      if (--latch.remaining == 0) latch.cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(latch.mu);
  latch.cv.wait(lock, [&latch] { return latch.remaining == 0; });
}

void ThreadPool::WorkerLoop() {
  t_worker_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--in_flight_ == 0) done_cv_.notify_all();
    }
  }
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool* pool =
      new ThreadPool(std::max(1u, std::thread::hardware_concurrency()));
  return *pool;
}

}  // namespace ppanns
