#include "common/thread_pool.h"

#include <algorithm>

namespace ppanns {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  task_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t chunks = std::min(n, num_threads() * 4);
  const std::size_t step = (n + chunks - 1) / chunks;
  for (std::size_t begin = 0; begin < n; begin += step) {
    const std::size_t end = std::min(begin + step, n);
    Submit([&fn, begin, end] { fn(begin, end); });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--in_flight_ == 0) done_cv_.notify_all();
    }
  }
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool* pool =
      new ThreadPool(std::max(1u, std::thread::hardware_concurrency()));
  return *pool;
}

}  // namespace ppanns
