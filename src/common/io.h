// Readers/writers for the standard ANN benchmark file formats (.fvecs /
// .bvecs / .ivecs, as used by SIFT1M/GIST/Deep) plus whole-file helpers.
//
// When real dataset files are present under data/, bench binaries load them;
// otherwise the synthetic generators in src/datagen are used (see DESIGN.md
// substitution table).

#ifndef PPANNS_COMMON_IO_H_
#define PPANNS_COMMON_IO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace ppanns {

/// Reads an .fvecs file: each record is [int32 d][d x float32].
/// `max_rows` = 0 means "all".
Result<FloatMatrix> ReadFvecs(const std::string& path, std::size_t max_rows = 0);

/// Reads a .bvecs file: each record is [int32 d][d x uint8], widened to float.
Result<FloatMatrix> ReadBvecs(const std::string& path, std::size_t max_rows = 0);

/// Reads an .ivecs file (ground truth lists): [int32 k][k x int32] per row.
Result<std::vector<std::vector<std::int32_t>>> ReadIvecs(
    const std::string& path, std::size_t max_rows = 0);

/// Writes a FloatMatrix as .fvecs.
Status WriteFvecs(const std::string& path, const FloatMatrix& m);

/// Writes/reads a raw byte blob (for serialized indexes and ciphertexts).
Status WriteFile(const std::string& path, const std::vector<std::uint8_t>& buf);
Result<std::vector<std::uint8_t>> ReadFile(const std::string& path);

/// True if `path` exists and is a regular file.
bool FileExists(const std::string& path);

}  // namespace ppanns

#endif  // PPANNS_COMMON_IO_H_
