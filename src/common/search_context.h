// SearchContext — the per-query execution context threaded from the serving
// facade (PpannsService) down to every index hot loop.
//
// It bundles the three things a query-execution pipeline needs to be a
// first-class citizen of a loaded serving tier:
//  * cooperative cancellation — up to two external atomic flags (e.g. the
//    hedge claim flag of the shard slot plus a caller-owned kill switch);
//    a scan that observes a raised flag abandons mid-loop instead of
//    burning pool capacity on an answer nobody will read;
//  * an absolute deadline and a filter-phase node budget — the explicit
//    per-query work bound the ROADMAP calls for (Riazi-style bounded server
//    work): hot loops stop when either trips;
//  * SearchStats counters — nodes visited, distance computations, DCE
//    comparisons — so every SearchResult can report what the query actually
//    cost, not just how long it took.
//
// Threading model: a SearchContext is written by exactly one scanning
// thread. Cross-thread signalling happens only through the registered
// std::atomic<bool> flags (set by the canceller, read here). Fan-out paths
// (one query scattered over S shards) give every shard a Child() context and
// MergeChild() the stats back — contexts are never shared between scanning
// threads.
//
// Cost model: a null context is free (backends take SearchContext* defaulted
// to nullptr and CancelProbe short-circuits on it); a live context costs one
// predictable branch per loop step plus one atomic-load/clock-read per
// kCancelCheckStride steps, which is not measurable against a distance
// computation. The context never alters traversal order, so result ids are
// bit-for-bit identical with and without one — unless it trips.

#ifndef PPANNS_COMMON_SEARCH_CONTEXT_H_
#define PPANNS_COMMON_SEARCH_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>

namespace ppanns {

/// Per-query work counters, accumulated by every layer the query crosses.
struct SearchStats {
  /// Database rows scored against the query (the filter-phase unit of work;
  /// the node-budget bound applies to this counter).
  std::size_t nodes_visited = 0;
  /// All vector-distance evaluations, including IVF centroid ranking — a
  /// superset of nodes_visited. LSH hash projections are not counted.
  std::size_t distance_computations = 0;
  /// Trapdoor comparisons spent in the DCE refine phase.
  std::size_t dce_comparisons = 0;
  /// Wall time the flat backends spent in the filter-stage scan (the float
  /// or int8 code scan plus shortlist selection). Local profiling only —
  /// these do not travel over the shard RPC wire.
  double filter_seconds = 0.0;
  /// Wall time spent re-ranking the SQ shortlist with exact distances; zero
  /// on the non-SQ paths.
  double refine_seconds = 0.0;

  void Merge(const SearchStats& other) {
    nodes_visited += other.nodes_visited;
    distance_computations += other.distance_computations;
    dce_comparisons += other.dce_comparisons;
    filter_seconds += other.filter_seconds;
    refine_seconds += other.refine_seconds;
  }
};

/// Why a search stopped before exhausting its normal traversal.
enum class EarlyExit : std::uint8_t {
  kNone = 0,             ///< ran to completion
  kCancelled = 1,        ///< a cancellation flag was raised (e.g. lost hedge)
  kDeadlineExpired = 2,  ///< the absolute deadline passed mid-scan
  kBudgetExhausted = 3,  ///< the node budget was spent
};

/// "none" | "cancelled" | "deadline" | "budget".
const char* EarlyExitName(EarlyExit reason);

/// How many loop steps a hot loop may take between full cancellation/deadline
/// probes. The node budget is checked exactly (every step); only the atomic
/// flag loads and the clock read are amortized.
inline constexpr std::uint32_t kCancelCheckStride = 64;

class SearchContext {
 public:
  using Clock = std::chrono::steady_clock;

  SearchContext() = default;

  /// Context whose deadline is `ms` milliseconds from now; ms <= 0 yields an
  /// unbounded context.
  static SearchContext WithDeadlineMs(double ms);

  /// Registers an external cancellation flag; the scan stops once any
  /// registered flag reads true. The flag must outlive every scan using
  /// this context. Callers may register at most two — the remaining slots
  /// are reserved for flags the serving tier adds on derived (Child)
  /// contexts, e.g. the hedge claim flag.
  void AddCancelFlag(const std::atomic<bool>* flag);

  void set_deadline(Clock::time_point deadline) {
    deadline_ = deadline;
    has_deadline_ = true;
  }
  bool has_deadline() const { return has_deadline_; }
  Clock::time_point deadline() const { return deadline_; }

  /// Filter-phase node budget (rows scored per query); 0 = unlimited.
  void set_node_budget(std::size_t budget) { node_budget_ = budget; }
  std::size_t node_budget() const { return node_budget_; }

  /// Full probe: cancellation flags, deadline, and the node budget against
  /// `nodes_so_far`. Sticky — once it returns true it keeps returning true
  /// and early_exit() names the first reason. Called by hot loops through
  /// CancelProbe, which amortizes the expensive parts.
  bool ShouldStop(std::size_t nodes_so_far = 0) {
    if (early_exit_ != EarlyExit::kNone) return true;
    for (const std::atomic<bool>* flag : flags_) {
      if (flag != nullptr && flag->load(std::memory_order_acquire)) {
        early_exit_ = EarlyExit::kCancelled;
        return true;
      }
    }
    if (has_deadline_ && Clock::now() >= deadline_) {
      early_exit_ = EarlyExit::kDeadlineExpired;
      return true;
    }
    if (node_budget_ > 0 && nodes_so_far >= node_budget_) {
      early_exit_ = EarlyExit::kBudgetExhausted;
      return true;
    }
    return false;
  }

  bool stopped() const { return early_exit_ != EarlyExit::kNone; }
  EarlyExit early_exit() const { return early_exit_; }

  /// True when this context can never stop a scan — no cancellation flags,
  /// no deadline, no node budget. Such a context only collects stats, so
  /// hot loops are free to take their unprobed fast paths with it.
  bool OnlyCollectsStats() const {
    if (has_deadline_ || node_budget_ > 0) return false;
    for (const std::atomic<bool>* flag : flags_) {
      if (flag != nullptr) return false;
    }
    return true;
  }

  /// Like ShouldStop but without the node budget: the refine phase still
  /// runs over the (possibly truncated) candidate set when the filter
  /// budget was spent — a budget-bound query returns its best prefix, not
  /// nothing. Only cancellation and the deadline abandon refinement; either
  /// overrides a budget early-exit as the reported reason (the Status
  /// contract keys off the deadline).
  bool ShouldAbandon() {
    if (early_exit_ == EarlyExit::kCancelled ||
        early_exit_ == EarlyExit::kDeadlineExpired) {
      return true;
    }
    for (const std::atomic<bool>* flag : flags_) {
      if (flag != nullptr && flag->load(std::memory_order_acquire)) {
        early_exit_ = EarlyExit::kCancelled;
        return true;
      }
    }
    if (has_deadline_ && Clock::now() >= deadline_) {
      early_exit_ = EarlyExit::kDeadlineExpired;
      return true;
    }
    return false;
  }

  /// Marks the budget as spent without a probe (exact budget enforcement in
  /// CancelProbe).
  void TripBudget() {
    if (early_exit_ == EarlyExit::kNone) {
      early_exit_ = EarlyExit::kBudgetExhausted;
    }
  }

  /// A context for one branch of a fan-out: same flags, deadline, and
  /// budget, fresh stats and early-exit state. Each scanning thread gets its
  /// own child; the parent merges them back with MergeChild.
  SearchContext Child() const {
    SearchContext child;
    for (const std::atomic<bool>* flag : flags_) {
      if (flag != nullptr) child.AddCancelFlag(flag);
    }
    child.has_deadline_ = has_deadline_;
    child.deadline_ = deadline_;
    child.node_budget_ = node_budget_;
    return child;
  }

  /// Folds a finished child's stats (and its early-exit reason, if this
  /// context has none yet) back into the parent.
  void MergeChild(const SearchContext& child) {
    stats.Merge(child.stats);
    AdoptEarlyExit(child.early_exit_);
  }

  /// Folds another scan's early-exit reason in (first reason wins) — for
  /// fan-outs whose results travel as data instead of Child contexts.
  void AdoptEarlyExit(EarlyExit reason) {
    if (early_exit_ == EarlyExit::kNone) early_exit_ = reason;
  }

  SearchStats stats;

 private:
  /// Two caller slots plus headroom for serving-tier flags added on Child
  /// contexts (the hedge claim flag); null entries cost one predictable
  /// branch per strided probe.
  const std::atomic<bool>* flags_[4] = {nullptr, nullptr, nullptr, nullptr};
  Clock::time_point deadline_{};
  bool has_deadline_ = false;
  std::size_t node_budget_ = 0;
  EarlyExit early_exit_ = EarlyExit::kNone;
};

/// The hot-loop companion: one CancelProbe per scan, one ShouldStop call per
/// loop step. Free when the context is null; otherwise the budget is checked
/// exactly and the flags/deadline every kCancelCheckStride steps.
class CancelProbe {
 public:
  explicit CancelProbe(SearchContext* ctx,
                       std::uint32_t stride = kCancelCheckStride)
      : ctx_(ctx), stride_(stride) {}

  /// True when the enclosing scan must stop now.
  bool ShouldStop(std::size_t nodes_so_far) {
    if (ctx_ == nullptr) return false;
    if (ctx_->stopped()) return true;
    if (ctx_->node_budget() > 0 && nodes_so_far >= ctx_->node_budget()) {
      ctx_->TripBudget();
      return true;
    }
    if (++tick_ < stride_) return false;
    tick_ = 0;
    return ctx_->ShouldStop(nodes_so_far);
  }

 private:
  SearchContext* ctx_;
  const std::uint32_t stride_;
  std::uint32_t tick_ = 0;
};

}  // namespace ppanns

#endif  // PPANNS_COMMON_SEARCH_CONTEXT_H_
