// Minimal binary (de)serialization for index/ciphertext persistence.
//
// Little-endian, no framing; each module writes a magic + version header of
// its own. Writers append to a byte buffer; readers consume from a view with
// range checks returning Status.

#ifndef PPANNS_COMMON_SERIALIZE_H_
#define PPANNS_COMMON_SERIALIZE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace ppanns {

/// Appends fixed-width scalars and vectors to a growable byte buffer.
class BinaryWriter {
 public:
  template <typename T>
  void Put(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
    buf_.insert(buf_.end(), p, p + sizeof(T));
  }

  template <typename T>
  void PutVector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    Put<std::uint64_t>(v.size());
    if (v.empty()) return;  // data() may be null for an empty vector
    const auto* p = reinterpret_cast<const std::uint8_t*>(v.data());
    buf_.insert(buf_.end(), p, p + v.size() * sizeof(T));
  }

  void PutString(const std::string& s) {
    Put<std::uint64_t>(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  /// Appends `n` raw bytes with no length prefix — for payloads that are
  /// already encoded (e.g. a framed RPC message body).
  void PutBytes(const std::uint8_t* data, std::size_t n) {
    if (n == 0) return;  // data may be null for an empty payload
    buf_.insert(buf_.end(), data, data + n);
  }

  const std::vector<std::uint8_t>& buffer() const { return buf_; }
  std::vector<std::uint8_t> TakeBuffer() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Consumes scalars and vectors from a byte span with bounds checking.
class BinaryReader {
 public:
  BinaryReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit BinaryReader(const std::vector<std::uint8_t>& buf)
      : data_(buf.data()), size_(buf.size()) {}

  template <typename T>
  Status Get(T* out) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (pos_ + sizeof(T) > size_) {
      return Status::OutOfRange("BinaryReader: truncated input");
    }
    std::memcpy(out, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return Status::OK();
  }

  template <typename T>
  Status GetVector(std::vector<T>* out) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::uint64_t n = 0;
    PPANNS_RETURN_IF_ERROR(Get(&n));
    // Divide instead of multiplying: n * sizeof(T) can wrap for a crafted
    // length, which would pass the bounds check and abort in resize().
    if (n > (size_ - pos_) / sizeof(T)) {
      return Status::OutOfRange("BinaryReader: truncated vector");
    }
    out->resize(n);
    if (n > 0) {  // an empty vector's data() may be null: skip the memcpy
      std::memcpy(out->data(), data_ + pos_, n * sizeof(T));
    }
    pos_ += n * sizeof(T);
    return Status::OK();
  }

  Status GetString(std::string* out) {
    std::uint64_t n = 0;
    PPANNS_RETURN_IF_ERROR(Get(&n));
    if (pos_ + n > size_) {
      return Status::OutOfRange("BinaryReader: truncated string");
    }
    out->assign(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return Status::OK();
  }

  std::size_t remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }

  /// Current read offset and the underlying bytes — for readers that must
  /// checksum a region they just consumed (the v3 "PPSH" envelope CRC).
  std::size_t position() const { return pos_; }
  const std::uint8_t* bytes() const { return data_; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// Writes a FloatMatrix as [n][dim][n*dim floats].
inline void PutMatrix(const FloatMatrix& m, BinaryWriter* out) {
  out->Put<std::uint64_t>(m.size());
  out->Put<std::uint64_t>(m.dim());
  out->PutVector(m.data());
}

/// Reads a FloatMatrix written by PutMatrix, with shape validation. The
/// shape is cross-checked against the (bounds-checked) payload length by
/// division, so crafted n/dim headers cannot pass via n*dim overflow.
inline Status GetMatrix(BinaryReader* in, FloatMatrix* out) {
  std::uint64_t n = 0, dim = 0;
  PPANNS_RETURN_IF_ERROR(in->Get(&n));
  PPANNS_RETURN_IF_ERROR(in->Get(&dim));
  std::vector<float> data;
  PPANNS_RETURN_IF_ERROR(in->GetVector(&data));
  const bool shape_ok =
      dim == 0 ? (n == 0 && data.empty())
               : (data.size() % dim == 0 && data.size() / dim == n);
  if (!shape_ok) {
    return Status::IOError("FloatMatrix: shape/payload mismatch");
  }
  FloatMatrix m(n, dim);
  m.data() = std::move(data);
  *out = std::move(m);
  return Status::OK();
}

}  // namespace ppanns

#endif  // PPANNS_COMMON_SERIALIZE_H_
