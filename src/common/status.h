// Status / Result error-handling primitives (RocksDB/Arrow style).
//
// The library does not throw exceptions across public API boundaries;
// fallible operations return a Status, or a Result<T> when they produce a
// value. Internal invariant violations use PPANNS_CHECK, which aborts.

#ifndef PPANNS_COMMON_STATUS_H_
#define PPANNS_COMMON_STATUS_H_

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>

namespace ppanns {

/// Outcome of a fallible operation, carrying an error code and message.
class Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kOutOfRange,
    kFailedPrecondition,
    kInternal,
    kIOError,
    kNotSupported,
    kDeadlineExceeded,
    kResourceExhausted,
  };

  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(Code::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(Code::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(Code::kIOError, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(Code::kNotSupported, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(Code::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(Code::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable "CODE: message" string for logs and test failures.
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_;
  std::string message_;
};

/// A value-or-error sum type. `ok()` implies `value()` is valid.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}          // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {}  // NOLINT(runtime/explicit)

  bool ok() const { return status_.ok() && value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return std::move(*value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  Status status_ = Status::OK();
  std::optional<T> value_;
};

}  // namespace ppanns

/// Abort with a message if `cond` is false. For programmer errors only.
#define PPANNS_CHECK(cond)                                                   \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "PPANNS_CHECK failed at %s:%d: %s\n", __FILE__,   \
                   __LINE__, #cond);                                         \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

/// Early-return the status if it is not OK.
#define PPANNS_RETURN_IF_ERROR(expr)             \
  do {                                           \
    ::ppanns::Status _st = (expr);               \
    if (!_st.ok()) return _st;                   \
  } while (0)

#endif  // PPANNS_COMMON_STATUS_H_
