#include "common/bigint.h"

#include <algorithm>

#include "common/status.h"

namespace ppanns {

namespace {

using u128 = unsigned __int128;

constexpr std::uint64_t kLimbMax = ~0ull;

// Small primes for the pre-sieve in prime generation.
constexpr std::uint32_t kSmallPrimes[] = {
    3,  5,  7,  11, 13, 17, 19, 23, 29, 31, 37,  41,  43,  47,  53,
    59, 61, 67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127,
    131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193,
    197, 199, 211, 223, 227, 229, 233, 239, 241, 251};

}  // namespace

BigUint::BigUint(std::uint64_t v) {
  if (v != 0) limbs_.push_back(v);
}

void BigUint::Normalize() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

std::size_t BigUint::BitLength() const {
  if (limbs_.empty()) return 0;
  std::size_t bits = (limbs_.size() - 1) * 64;
  std::uint64_t top = limbs_.back();
  while (top != 0) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

bool BigUint::Bit(std::size_t i) const {
  const std::size_t limb = i / 64;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 64)) & 1;
}

int BigUint::Compare(const BigUint& other) const {
  if (limbs_.size() != other.limbs_.size()) {
    return limbs_.size() < other.limbs_.size() ? -1 : 1;
  }
  for (std::size_t i = limbs_.size(); i > 0; --i) {
    if (limbs_[i - 1] != other.limbs_[i - 1]) {
      return limbs_[i - 1] < other.limbs_[i - 1] ? -1 : 1;
    }
  }
  return 0;
}

BigUint BigUint::Add(const BigUint& other) const {
  BigUint out;
  const std::size_t n = std::max(limbs_.size(), other.limbs_.size());
  out.limbs_.resize(n + 1, 0);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const u128 sum = u128(i < limbs_.size() ? limbs_[i] : 0) +
                     (i < other.limbs_.size() ? other.limbs_[i] : 0) + carry;
    out.limbs_[i] = static_cast<std::uint64_t>(sum);
    carry = static_cast<std::uint64_t>(sum >> 64);
  }
  out.limbs_[n] = carry;
  out.Normalize();
  return out;
}

BigUint BigUint::Sub(const BigUint& other) const {
  PPANNS_CHECK(Compare(other) >= 0);
  BigUint out;
  out.limbs_.resize(limbs_.size(), 0);
  std::uint64_t borrow = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    const std::uint64_t rhs = (i < other.limbs_.size() ? other.limbs_[i] : 0);
    const u128 lhs = u128(limbs_[i]);
    const u128 need = u128(rhs) + borrow;
    if (lhs >= need) {
      out.limbs_[i] = static_cast<std::uint64_t>(lhs - need);
      borrow = 0;
    } else {
      out.limbs_[i] = static_cast<std::uint64_t>((u128(1) << 64) + lhs - need);
      borrow = 1;
    }
  }
  out.Normalize();
  return out;
}

BigUint BigUint::Mul(const BigUint& other) const {
  if (IsZero() || other.IsZero()) return BigUint();
  BigUint out;
  out.limbs_.assign(limbs_.size() + other.limbs_.size(), 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    std::uint64_t carry = 0;
    const std::uint64_t a = limbs_[i];
    if (a == 0) continue;
    for (std::size_t j = 0; j < other.limbs_.size(); ++j) {
      const u128 cur = u128(a) * other.limbs_[j] + out.limbs_[i + j] + carry;
      out.limbs_[i + j] = static_cast<std::uint64_t>(cur);
      carry = static_cast<std::uint64_t>(cur >> 64);
    }
    std::size_t k = i + other.limbs_.size();
    while (carry != 0) {
      const u128 cur = u128(out.limbs_[k]) + carry;
      out.limbs_[k] = static_cast<std::uint64_t>(cur);
      carry = static_cast<std::uint64_t>(cur >> 64);
      ++k;
    }
  }
  out.Normalize();
  return out;
}

BigUint BigUint::ShiftLeft(std::size_t bits) const {
  if (IsZero() || bits == 0) return *this;
  const std::size_t limb_shift = bits / 64;
  const std::size_t bit_shift = bits % 64;
  BigUint out;
  out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    out.limbs_[i + limb_shift] |= limbs_[i] << bit_shift;
    if (bit_shift != 0) {
      out.limbs_[i + limb_shift + 1] |= limbs_[i] >> (64 - bit_shift);
    }
  }
  out.Normalize();
  return out;
}

BigUint BigUint::ShiftRight(std::size_t bits) const {
  const std::size_t limb_shift = bits / 64;
  if (limb_shift >= limbs_.size()) return BigUint();
  const std::size_t bit_shift = bits % 64;
  BigUint out;
  out.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (std::size_t i = 0; i < out.limbs_.size(); ++i) {
    out.limbs_[i] = limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < limbs_.size()) {
      out.limbs_[i] |= limbs_[i + limb_shift + 1] << (64 - bit_shift);
    }
  }
  out.Normalize();
  return out;
}

void BigUint::Divide(const BigUint& divisor, BigUint* quotient,
                     BigUint* remainder) const {
  PPANNS_CHECK(!divisor.IsZero());
  if (Compare(divisor) < 0) {
    if (quotient != nullptr) *quotient = BigUint();
    if (remainder != nullptr) *remainder = *this;
    return;
  }
  // Single-limb divisor: straight division.
  if (divisor.limbs_.size() == 1) {
    const std::uint64_t d = divisor.limbs_[0];
    BigUint q;
    q.limbs_.assign(limbs_.size(), 0);
    u128 rem = 0;
    for (std::size_t i = limbs_.size(); i > 0; --i) {
      const u128 cur = (rem << 64) | limbs_[i - 1];
      q.limbs_[i - 1] = static_cast<std::uint64_t>(cur / d);
      rem = cur % d;
    }
    q.Normalize();
    if (quotient != nullptr) *quotient = std::move(q);
    if (remainder != nullptr) {
      *remainder = BigUint(static_cast<std::uint64_t>(rem));
    }
    return;
  }

  // Knuth Algorithm D. Normalize so the divisor's top bit is set.
  int shift = 0;
  {
    std::uint64_t top = divisor.limbs_.back();
    while ((top & (1ull << 63)) == 0) {
      top <<= 1;
      ++shift;
    }
  }
  const BigUint u_norm = ShiftLeft(shift);
  const BigUint v_norm = divisor.ShiftLeft(shift);
  const std::size_t n = v_norm.limbs_.size();
  std::vector<std::uint64_t> u = u_norm.limbs_;
  u.resize(std::max(u.size(), n) + 1, 0);  // u[m+n] slot
  const std::size_t m = u.size() - n - 1;
  const std::vector<std::uint64_t>& v = v_norm.limbs_;

  BigUint q_out;
  q_out.limbs_.assign(m + 1, 0);
  for (std::size_t jj = m + 1; jj > 0; --jj) {
    const std::size_t j = jj - 1;
    // Estimate qhat from the top two dividend limbs and top divisor limb.
    const u128 num = (u128(u[j + n]) << 64) | u[j + n - 1];
    u128 qhat = num / v[n - 1];
    u128 rhat = num % v[n - 1];
    while (qhat > kLimbMax ||
           qhat * v[n - 2] > ((rhat << 64) | u[j + n - 2])) {
      --qhat;
      rhat += v[n - 1];
      if (rhat > kLimbMax) break;
    }
    // Multiply-subtract qhat * v from u[j .. j+n].
    u128 borrow = 0, carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const u128 prod = qhat * v[i] + carry;
      carry = prod >> 64;
      const std::uint64_t plo = static_cast<std::uint64_t>(prod);
      const u128 sub = u128(u[j + i]) - plo - borrow;
      u[j + i] = static_cast<std::uint64_t>(sub);
      borrow = (sub >> 64) ? 1 : 0;  // wrapped => borrow
    }
    const u128 sub = u128(u[j + n]) - carry - borrow;
    u[j + n] = static_cast<std::uint64_t>(sub);
    const bool negative = (sub >> 64) != 0;

    if (negative) {
      // qhat was one too large: add v back once.
      --qhat;
      u128 c = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const u128 sum = u128(u[j + i]) + v[i] + c;
        u[j + i] = static_cast<std::uint64_t>(sum);
        c = sum >> 64;
      }
      u[j + n] = static_cast<std::uint64_t>(u128(u[j + n]) + c);
    }
    q_out.limbs_[j] = static_cast<std::uint64_t>(qhat);
  }
  q_out.Normalize();
  if (quotient != nullptr) *quotient = std::move(q_out);

  if (remainder != nullptr) {
    BigUint rem;
    rem.limbs_.assign(u.begin(), u.begin() + n);
    rem.Normalize();
    *remainder = rem.ShiftRight(shift);
  }
}

BigUint BigUint::MulMod(const BigUint& a, const BigUint& b, const BigUint& m) {
  return a.Mul(b).Mod(m);
}

BigUint BigUint::PowMod(const BigUint& base, const BigUint& exp,
                        const BigUint& m) {
  PPANNS_CHECK(!m.IsZero());
  BigUint result(1);
  result = result.Mod(m);
  BigUint b = base.Mod(m);
  const std::size_t bits = exp.BitLength();
  for (std::size_t i = bits; i > 0; --i) {
    result = MulMod(result, result, m);
    if (exp.Bit(i - 1)) result = MulMod(result, b, m);
  }
  return result;
}

BigUint BigUint::Gcd(BigUint a, BigUint b) {
  while (!b.IsZero()) {
    BigUint r = a.Mod(b);
    a = b;
    b = r;
  }
  return a;
}

BigUint BigUint::InverseMod(const BigUint& a, const BigUint& m) {
  // Extended Euclid with coefficients tracked modulo m (signed via flag).
  BigUint old_r = a.Mod(m), r = m;
  BigUint old_s(1), s(0);
  bool old_s_neg = false, s_neg = false;

  while (!r.IsZero()) {
    BigUint q, rem;
    old_r.Divide(r, &q, &rem);
    // (old_r, r) <- (r, old_r - q*r)
    old_r = r;
    r = std::move(rem);
    // (old_s, s) <- (s, old_s - q*s) with sign bookkeeping.
    BigUint qs = q.Mul(s);
    BigUint new_s;
    bool new_s_neg;
    if (old_s_neg == s_neg) {
      // old_s - q*s where both share sign: magnitude subtraction.
      if (old_s.Compare(qs) >= 0) {
        new_s = old_s.Sub(qs);
        new_s_neg = old_s_neg;
      } else {
        new_s = qs.Sub(old_s);
        new_s_neg = !old_s_neg;
      }
    } else {
      new_s = old_s.Add(qs);
      new_s_neg = old_s_neg;
    }
    old_s = s;
    old_s_neg = s_neg;
    s = std::move(new_s);
    s_neg = new_s_neg;
  }
  if (!(old_r == BigUint(1))) return BigUint();  // not invertible
  BigUint inv = old_s.Mod(m);
  if (old_s_neg && !inv.IsZero()) inv = m.Sub(inv);
  return inv;
}

bool BigUint::IsProbablePrime(const BigUint& n, Rng& rng, int rounds) {
  if (n.BitLength() <= 1) return false;  // 0, 1
  if (n == BigUint(2) || n == BigUint(3)) return true;
  if (!n.IsOdd()) return false;
  for (std::uint32_t p : kSmallPrimes) {
    const BigUint bp(p);
    if (n == bp) return true;
    if (n.Mod(bp).IsZero()) return false;
  }

  // n - 1 = d * 2^s with d odd.
  const BigUint n_minus_1 = n.Sub(BigUint(1));
  BigUint d = n_minus_1;
  std::size_t s = 0;
  while (!d.IsOdd()) {
    d = d.ShiftRight(1);
    ++s;
  }

  for (int round = 0; round < rounds; ++round) {
    // Witness in [2, n-2].
    BigUint a = RandomBelow(n.Sub(BigUint(3)), rng).Add(BigUint(2));
    BigUint x = PowMod(a, d, n);
    if (x == BigUint(1) || x == n_minus_1) continue;
    bool composite = true;
    for (std::size_t i = 1; i < s; ++i) {
      x = MulMod(x, x, n);
      if (x == n_minus_1) {
        composite = false;
        break;
      }
    }
    if (composite) return false;
  }
  return true;
}

BigUint BigUint::Random(std::size_t bits, Rng& rng) {
  BigUint out;
  if (bits == 0) return out;
  const std::size_t limbs = (bits + 63) / 64;
  out.limbs_.resize(limbs);
  for (auto& limb : out.limbs_) limb = rng.NextUint64();
  const std::size_t excess = limbs * 64 - bits;
  if (excess != 0) out.limbs_.back() >>= excess;
  out.Normalize();
  return out;
}

BigUint BigUint::RandomBelow(const BigUint& bound, Rng& rng) {
  PPANNS_CHECK(!bound.IsZero());
  const std::size_t bits = bound.BitLength();
  for (;;) {
    BigUint candidate = Random(bits, rng);
    if (candidate < bound) return candidate;
  }
}

BigUint BigUint::RandomPrime(std::size_t bits, Rng& rng, int mr_rounds) {
  PPANNS_CHECK(bits >= 8);
  for (;;) {
    BigUint candidate = Random(bits, rng);
    // Force exact bit length and oddness.
    candidate.limbs_.resize((bits + 63) / 64, 0);
    candidate.limbs_[(bits - 1) / 64] |= 1ull << ((bits - 1) % 64);
    candidate.limbs_[0] |= 1;
    candidate.Normalize();
    if (IsProbablePrime(candidate, rng, mr_rounds)) return candidate;
  }
}

std::uint64_t BigUint::ToUint64() const {
  PPANNS_CHECK(BitLength() <= 64);
  return limbs_.empty() ? 0 : limbs_[0];
}

BigUint BigUint::FromHex(const std::string& hex) {
  BigUint out;
  for (char c : hex) {
    std::uint64_t digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = c - 'A' + 10;
    } else {
      continue;  // permissive: skip separators
    }
    out = out.ShiftLeft(4).Add(BigUint(digit));
  }
  return out;
}

std::string BigUint::ToHex() const {
  if (IsZero()) return "0";
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  for (std::size_t i = limbs_.size(); i > 0; --i) {
    for (int nib = 15; nib >= 0; --nib) {
      out.push_back(kDigits[(limbs_[i - 1] >> (nib * 4)) & 0xF]);
    }
  }
  const std::size_t first = out.find_first_not_of('0');
  return out.substr(first);
}

}  // namespace ppanns
