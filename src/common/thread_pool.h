// A small fixed-size thread pool used for parallel ground-truth computation
// and batch encryption. Search benchmarks remain single-threaded to match the
// paper's measurement methodology (Section VII, "single thread").

#ifndef PPANNS_COMMON_THREAD_POOL_H_
#define PPANNS_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace ppanns {

/// Fixed-size worker pool with a blocking Wait() for all submitted tasks.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Thread-safe.
  void Submit(std::function<void()> task);

  /// Enqueues a value-returning task and hands back its future — the
  /// building block of the async scatter-gather serving path, where the
  /// gather waits on per-(shard, replica) work items with a hedging
  /// deadline instead of a barrier. The callable runs exactly once on a
  /// worker; exceptions propagate through the future.
  template <typename F>
  auto Async(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    Submit([task]() { (*task)(); });
    return future;
  }

  /// Blocks until every submitted task has finished.
  void Wait();

  /// True when the calling thread is one of *this* pool's workers. Blocking
  /// waits (future.wait, ParallelFor) from inside a worker can deadlock once
  /// every worker is the one waiting; callers use this to fall back to
  /// inline execution (ParallelFor does so automatically).
  bool InWorker() const;

  /// Splits [0, n) into contiguous chunks and runs `fn(begin, end)` on the
  /// pool, blocking until all chunks complete. Hardened edge cases:
  ///  * n == 0 returns immediately without invoking `fn`;
  ///  * n < num_threads() produces exactly n single-element chunks (never an
  ///    empty chunk);
  ///  * completion is tracked per call, so concurrent ParallelFor calls from
  ///    different threads do not wait on each other's work;
  ///  * a call from inside a pool worker runs inline on the calling thread
  ///    (nested fan-out would otherwise deadlock with every worker blocked
  ///    in a wait).
  void ParallelFor(std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn);

  std::size_t num_threads() const { return workers_.size(); }

  /// A process-wide pool sized to the hardware concurrency.
  static ThreadPool& Global();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_cv_;   // signals workers
  std::condition_variable done_cv_;   // signals Wait()
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

}  // namespace ppanns

#endif  // PPANNS_COMMON_THREAD_POOL_H_
