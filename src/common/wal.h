// Write-ahead log for the live-mutation path.
//
// Every Insert/Remove against a served package appends one checksummed,
// length-prefixed record here *before* mutating in-memory state, so a
// crashed owner/server replays the log against its last checkpoint instead
// of re-encrypting the corpus. The log is a directory of bounded segments:
//
//   wal-<start_lsn as 16 hex digits>.log
//     u32 magic   0x5050574C ("PPWL")
//     u32 version 1
//     u64 start_lsn            lsn of the first record in this segment
//     record*                  until EOF
//
//   record:
//     u32 len                  bytes that follow the crc field (1 + 8 + payload)
//     u32 crc                  CRC-32 (IEEE) over those `len` bytes
//     u8  type                 WalRecordType
//     u64 lsn                  strictly sequential across segments
//     payload                  type-specific bytes (src/core/wal_records.h)
//
// Recovery (`ReadWal`) replays segments in filename order and stops
// *cleanly* at the first torn/corrupt record — a truncated tail, a flipped
// bit, or an lsn discontinuity ends the replay with everything before it,
// never with a crash or an error for the well-formed prefix. A writer
// reopening a directory never appends to an existing segment (its tail may
// be torn); it always starts a fresh segment at the recovered next lsn.
// `Truncate` deletes all segments at a compaction/serialization checkpoint,
// bounding log growth: durable state = last checkpoint + current log.

#ifndef PPANNS_COMMON_WAL_H_
#define PPANNS_COMMON_WAL_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/status.h"

namespace ppanns {

/// CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320) — the checksum of WAL
/// records and of the v3 "PPSH" envelope footer.
std::uint32_t Crc32(const std::uint8_t* data, std::size_t n);

enum class WalRecordType : std::uint8_t {
  kInsert = 1,  ///< payload: an encoded EncryptedVector (core/wal_records.h)
  kRemove = 2,  ///< payload: the u64 global id being tombstoned
};

struct WalRecord {
  WalRecordType type = WalRecordType::kInsert;
  std::uint64_t lsn = 0;
  std::vector<std::uint8_t> payload;
};

/// On-disk size of one record: the framing plus the payload.
inline std::size_t WalRecordByteSize(std::size_t payload_size) {
  return 4 + 4 + 1 + 8 + payload_size;  // len + crc + type + lsn + payload
}

struct WalOptions {
  /// A segment rotates once its size reaches this many bytes (checked after
  /// each append, so one oversized record never splits).
  std::size_t segment_bytes = 1 << 20;
};

struct WalStats {
  std::size_t segments = 0;   ///< live segment files in the directory
  std::size_t bytes = 0;      ///< total bytes across them
  std::uint64_t next_lsn = 0; ///< lsn the next append will be assigned
};

/// Appends records to bounded segments under one directory. Move-only; one
/// writer per directory (single-writer ownership mirrors the maintenance
/// contract of the serving tier).
class WalWriter {
 public:
  /// Creates `dir` if needed, scans existing segments to recover the next
  /// lsn (stopping at the first corrupt record, like replay does), and
  /// opens a fresh segment at that lsn.
  static Result<WalWriter> Open(const std::string& dir, WalOptions options = {});

  WalWriter(WalWriter&& other) noexcept;
  WalWriter& operator=(WalWriter&& other) noexcept;
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;
  ~WalWriter();

  /// Appends one record, assigns it the next lsn, and flushes it to the OS
  /// before returning (append-before-apply: the caller mutates in-memory
  /// state only after this succeeds). Returns the record's lsn.
  Result<std::uint64_t> Append(WalRecordType type,
                               const std::vector<std::uint8_t>& payload);

  /// Checkpoint: deletes every segment and starts a fresh one at the
  /// current lsn. Called after the serialized package has been persisted —
  /// the log no longer needs to reconstruct anything before this point.
  Status Truncate();

  WalStats Stats() const;
  const std::string& dir() const { return dir_; }
  std::uint64_t next_lsn() const { return next_lsn_; }

 private:
  WalWriter(std::string dir, WalOptions options, std::uint64_t next_lsn);
  Status OpenFreshSegment();
  void CloseSegment();

  std::string dir_;
  WalOptions options_;
  std::uint64_t next_lsn_ = 0;
  std::FILE* segment_ = nullptr;
  std::string segment_path_;
  std::size_t segment_size_ = 0;
};

/// Replays a WAL directory: all records, in lsn order, up to (not
/// including) the first torn/corrupt/discontinuous record. A missing or
/// empty directory replays to an empty vector. Only an unreadable file or
/// a malformed *segment header* (wrong magic/version on the first segment)
/// is an error — tail corruption is a clean stop by design.
Result<std::vector<WalRecord>> ReadWal(const std::string& dir);

/// Segment count / byte totals / recovered next lsn for a directory,
/// without opening a writer — the `ppanns_cli info` observability surface.
Result<WalStats> ReadWalStats(const std::string& dir);

}  // namespace ppanns

#endif  // PPANNS_COMMON_WAL_H_
