// Wall-clock timing helpers for benchmarks and cost accounting.

#ifndef PPANNS_COMMON_TIMER_H_
#define PPANNS_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace ppanns {

/// Monotonic stopwatch. Construction starts it; Restart() resets it.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ppanns

#endif  // PPANNS_COMMON_TIMER_H_
