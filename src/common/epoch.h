// EpochPtr — an epoch-counted RCU-style published pointer.
//
// The live-mutation path (tombstone compaction, shard split) rebuilds a
// shard's index off-thread and swaps the whole serving snapshot in one
// pointer store. Readers Pin() the current snapshot for the duration of a
// query and never block: a reader that pinned the old snapshot keeps it
// alive through its shared_ptr refcount, and the old epoch's memory is
// reclaimed when the last pinned reference drops. Writers serialize among
// themselves externally (the maintenance mutex in ShardedCloudServer); the
// only contended state here is the brief lock protecting the refcount copy.
//
// Why a mutex and not a lock-free hazard scheme: Pin() holds the lock just
// long enough to copy a shared_ptr (a refcount increment), which is
// nanoseconds against a multi-millisecond encrypted search. Swap() is
// equally brief. Compared to std::atomic<std::shared_ptr> this is portable
// to every toolchain the repo builds on, and compared to raw epochs it
// needs no quiescence tracking.

#ifndef PPANNS_COMMON_EPOCH_H_
#define PPANNS_COMMON_EPOCH_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>

namespace ppanns {

template <typename T>
class EpochPtr {
 public:
  EpochPtr() = default;
  explicit EpochPtr(std::shared_ptr<T> initial) : current_(std::move(initial)) {}

  EpochPtr(const EpochPtr&) = delete;
  EpochPtr& operator=(const EpochPtr&) = delete;

  /// Read-side entry: a const view of the current snapshot, valid for as
  /// long as the caller holds the returned pointer. Never blocks a writer
  /// beyond the refcount copy.
  std::shared_ptr<const T> Pin() const {
    std::lock_guard<std::mutex> lock(mu_);
    return current_;
  }

  /// Write-side view of the current snapshot (for in-place mutation under
  /// the caller's own writer exclusion — Insert/Delete mutate the current
  /// set, only compaction/split publish a new one).
  std::shared_ptr<T> Current() {
    std::lock_guard<std::mutex> lock(mu_);
    return current_;
  }

  /// Publishes `next` as the new snapshot, bumps the epoch, and returns the
  /// displaced snapshot (which callers may drop — in-flight readers that
  /// pinned it keep it alive until they finish).
  std::shared_ptr<T> Swap(std::shared_ptr<T> next) {
    std::lock_guard<std::mutex> lock(mu_);
    std::shared_ptr<T> old = std::move(current_);
    current_ = std::move(next);
    epoch_.fetch_add(1, std::memory_order_acq_rel);
    return old;
  }

  /// Number of swaps since construction — the snapshot generation.
  std::uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

 private:
  mutable std::mutex mu_;
  std::shared_ptr<T> current_;
  std::atomic<std::uint64_t> epoch_{0};
};

}  // namespace ppanns

#endif  // PPANNS_COMMON_EPOCH_H_
