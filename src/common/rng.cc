#include "common/rng.h"

#include <unordered_set>

namespace ppanns {

std::vector<std::uint32_t> Rng::Sample(std::size_t n, std::size_t k) {
  PPANNS_CHECK(k <= n);
  if (k * 3 >= n) {
    // Dense case: shuffle a full permutation and truncate.
    std::vector<std::uint32_t> perm = Permutation(n);
    perm.resize(k);
    return perm;
  }
  // Sparse case: rejection sampling.
  std::unordered_set<std::uint32_t> seen;
  std::vector<std::uint32_t> out;
  out.reserve(k);
  while (out.size() < k) {
    const auto v = static_cast<std::uint32_t>(UniformInt(0, n - 1));
    if (seen.insert(v).second) out.push_back(v);
  }
  return out;
}

}  // namespace ppanns
