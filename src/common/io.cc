#include "common/io.h"

#include <sys/stat.h>

#include <cstdio>
#include <memory>

namespace ppanns {

namespace {

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

FilePtr OpenFile(const std::string& path, const char* mode) {
  return FilePtr(std::fopen(path.c_str(), mode));
}

}  // namespace

bool FileExists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

Result<FloatMatrix> ReadFvecs(const std::string& path, std::size_t max_rows) {
  FilePtr f = OpenFile(path, "rb");
  if (!f) return Status::IOError("cannot open " + path);

  FloatMatrix m;
  std::vector<float> row;
  std::size_t rows = 0;
  while (max_rows == 0 || rows < max_rows) {
    std::int32_t d = 0;
    if (std::fread(&d, sizeof(d), 1, f.get()) != 1) break;  // EOF
    if (d <= 0 || d > (1 << 20)) {
      return Status::IOError(path + ": bad fvecs dimension");
    }
    if (m.empty() && m.dim() == 0) m = FloatMatrix(0, static_cast<std::size_t>(d));
    if (static_cast<std::size_t>(d) != m.dim()) {
      return Status::IOError(path + ": inconsistent fvecs dimension");
    }
    row.resize(d);
    if (std::fread(row.data(), sizeof(float), d, f.get()) !=
        static_cast<std::size_t>(d)) {
      return Status::IOError(path + ": truncated fvecs record");
    }
    m.Append(row.data());
    ++rows;
  }
  return m;
}

Result<FloatMatrix> ReadBvecs(const std::string& path, std::size_t max_rows) {
  FilePtr f = OpenFile(path, "rb");
  if (!f) return Status::IOError("cannot open " + path);

  FloatMatrix m;
  std::vector<std::uint8_t> raw;
  std::vector<float> row;
  std::size_t rows = 0;
  while (max_rows == 0 || rows < max_rows) {
    std::int32_t d = 0;
    if (std::fread(&d, sizeof(d), 1, f.get()) != 1) break;
    if (d <= 0 || d > (1 << 20)) {
      return Status::IOError(path + ": bad bvecs dimension");
    }
    if (m.empty() && m.dim() == 0) m = FloatMatrix(0, static_cast<std::size_t>(d));
    if (static_cast<std::size_t>(d) != m.dim()) {
      return Status::IOError(path + ": inconsistent bvecs dimension");
    }
    raw.resize(d);
    if (std::fread(raw.data(), 1, d, f.get()) != static_cast<std::size_t>(d)) {
      return Status::IOError(path + ": truncated bvecs record");
    }
    row.resize(d);
    for (std::int32_t i = 0; i < d; ++i) row[i] = static_cast<float>(raw[i]);
    m.Append(row.data());
    ++rows;
  }
  return m;
}

Result<std::vector<std::vector<std::int32_t>>> ReadIvecs(
    const std::string& path, std::size_t max_rows) {
  FilePtr f = OpenFile(path, "rb");
  if (!f) return Status::IOError("cannot open " + path);

  std::vector<std::vector<std::int32_t>> rows;
  while (max_rows == 0 || rows.size() < max_rows) {
    std::int32_t k = 0;
    if (std::fread(&k, sizeof(k), 1, f.get()) != 1) break;
    if (k < 0 || k > (1 << 20)) {
      return Status::IOError(path + ": bad ivecs length");
    }
    std::vector<std::int32_t> row(k);
    if (std::fread(row.data(), sizeof(std::int32_t), k, f.get()) !=
        static_cast<std::size_t>(k)) {
      return Status::IOError(path + ": truncated ivecs record");
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

Status WriteFvecs(const std::string& path, const FloatMatrix& m) {
  FilePtr f = OpenFile(path, "wb");
  if (!f) return Status::IOError("cannot open " + path + " for writing");
  const auto d = static_cast<std::int32_t>(m.dim());
  for (std::size_t i = 0; i < m.size(); ++i) {
    if (std::fwrite(&d, sizeof(d), 1, f.get()) != 1 ||
        std::fwrite(m.row(i), sizeof(float), m.dim(), f.get()) != m.dim()) {
      return Status::IOError(path + ": short write");
    }
  }
  return Status::OK();
}

Status WriteFile(const std::string& path, const std::vector<std::uint8_t>& buf) {
  FilePtr f = OpenFile(path, "wb");
  if (!f) return Status::IOError("cannot open " + path + " for writing");
  if (!buf.empty() &&
      std::fwrite(buf.data(), 1, buf.size(), f.get()) != buf.size()) {
    return Status::IOError(path + ": short write");
  }
  return Status::OK();
}

Result<std::vector<std::uint8_t>> ReadFile(const std::string& path) {
  FilePtr f = OpenFile(path, "rb");
  if (!f) return Status::IOError("cannot open " + path);
  std::fseek(f.get(), 0, SEEK_END);
  const long size = std::ftell(f.get());
  if (size < 0) return Status::IOError(path + ": ftell failed");
  std::fseek(f.get(), 0, SEEK_SET);
  std::vector<std::uint8_t> buf(static_cast<std::size_t>(size));
  if (!buf.empty() && std::fread(buf.data(), 1, buf.size(), f.get()) != buf.size()) {
    return Status::IOError(path + ": short read");
  }
  return buf;
}

}  // namespace ppanns
