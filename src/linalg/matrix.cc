#include "linalg/matrix.h"

#include <algorithm>
#include <cmath>

namespace ppanns {

Matrix Matrix::Identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.at(i, i) = 1.0;
  return m;
}

Matrix Matrix::Gaussian(std::size_t rows, std::size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  rng.GaussianVector(0.0, 1.0, m.data().data(), rows * cols);
  return m;
}

Matrix Matrix::RandomOrthogonal(std::size_t n, Rng& rng) {
  // Householder QR of a Gaussian matrix; Q is returned. Sign-correct the
  // diagonal of R so Q is Haar-ish distributed rather than biased.
  Matrix a = Gaussian(n, n, rng);
  Matrix q = Identity(n);

  std::vector<double> v(n);
  for (std::size_t k = 0; k < n; ++k) {
    // Build Householder vector for column k of the trailing submatrix.
    double norm = 0.0;
    for (std::size_t i = k; i < n; ++i) norm += a.at(i, k) * a.at(i, k);
    norm = std::sqrt(norm);
    if (norm < 1e-300) continue;

    const double alpha = (a.at(k, k) >= 0.0) ? -norm : norm;
    double vnorm2 = 0.0;
    for (std::size_t i = k; i < n; ++i) {
      v[i] = a.at(i, k);
      if (i == k) v[i] -= alpha;
      vnorm2 += v[i] * v[i];
    }
    if (vnorm2 < 1e-300) continue;

    // Apply H = I - 2 v v^T / (v^T v) to A (left) and accumulate into Q.
    for (std::size_t j = k; j < n; ++j) {
      double dot = 0.0;
      for (std::size_t i = k; i < n; ++i) dot += v[i] * a.at(i, j);
      const double f = 2.0 * dot / vnorm2;
      for (std::size_t i = k; i < n; ++i) a.at(i, j) -= f * v[i];
    }
    for (std::size_t j = 0; j < n; ++j) {
      double dot = 0.0;
      for (std::size_t i = k; i < n; ++i) dot += v[i] * q.at(i, j);
      const double f = 2.0 * dot / vnorm2;
      for (std::size_t i = k; i < n; ++i) q.at(i, j) -= f * v[i];
    }
  }
  // Q currently holds the product of Householder reflections = Q^T of the
  // factorization; flip rows where R's diagonal is negative, then transpose.
  for (std::size_t i = 0; i < n; ++i) {
    if (a.at(i, i) < 0.0) {
      for (std::size_t j = 0; j < n; ++j) q.at(i, j) = -q.at(i, j);
    }
  }
  return q.Transpose();
}

Matrix Matrix::Transpose() const {
  Matrix t(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) t.at(j, i) = at(i, j);
  }
  return t;
}

Matrix Matrix::Multiply(const Matrix& other) const {
  PPANNS_CHECK(cols_ == other.rows_);
  Matrix out(rows_, other.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double aik = at(i, k);
      if (aik == 0.0) continue;
      const double* brow = other.row(k);
      double* orow = out.row(i);
      for (std::size_t j = 0; j < other.cols_; ++j) orow[j] += aik * brow[j];
    }
  }
  return out;
}

Matrix Matrix::SliceRows(std::size_t row_begin, std::size_t row_end) const {
  PPANNS_CHECK(row_begin <= row_end && row_end <= rows_);
  Matrix out(row_end - row_begin, cols_);
  std::copy(data_.begin() + row_begin * cols_, data_.begin() + row_end * cols_,
            out.data().begin());
  return out;
}

double Matrix::FrobeniusNorm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

void MatVec(const Matrix& a, const double* x, double* y) {
  for (std::size_t i = 0; i < a.rows(); ++i) {
    y[i] = Dot(a.row(i), x, a.cols());
  }
}

void VecMat(const double* x, const Matrix& a, double* y) {
  std::fill(y, y + a.cols(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double xi = x[i];
    if (xi == 0.0) continue;
    const double* arow = a.row(i);
    for (std::size_t j = 0; j < a.cols(); ++j) y[j] += xi * arow[j];
  }
}

LuDecomposition::LuDecomposition(const Matrix& a, double pivot_tol)
    : n_(a.rows()), lu_(a), perm_(a.rows()) {
  PPANNS_CHECK(a.rows() == a.cols());
  for (std::size_t i = 0; i < n_; ++i) perm_[i] = i;

  ok_ = true;
  for (std::size_t k = 0; k < n_; ++k) {
    // Partial pivoting: find the largest magnitude in column k at/below row k.
    std::size_t pivot = k;
    double pmax = std::fabs(lu_.at(k, k));
    for (std::size_t i = k + 1; i < n_; ++i) {
      const double v = std::fabs(lu_.at(i, k));
      if (v > pmax) {
        pmax = v;
        pivot = i;
      }
    }
    if (pmax < pivot_tol) {
      ok_ = false;
      return;
    }
    if (pivot != k) {
      for (std::size_t j = 0; j < n_; ++j) {
        std::swap(lu_.at(k, j), lu_.at(pivot, j));
      }
      std::swap(perm_[k], perm_[pivot]);
      perm_sign_ = -perm_sign_;
    }
    const double inv_pivot = 1.0 / lu_.at(k, k);
    for (std::size_t i = k + 1; i < n_; ++i) {
      const double factor = lu_.at(i, k) * inv_pivot;
      lu_.at(i, k) = factor;
      if (factor == 0.0) continue;
      for (std::size_t j = k + 1; j < n_; ++j) {
        lu_.at(i, j) -= factor * lu_.at(k, j);
      }
    }
  }
}

Status LuDecomposition::Solve(const double* b, double* x) const {
  if (!ok_) return Status::FailedPrecondition("LU: matrix is singular");
  // Forward substitution with permuted b (L has unit diagonal).
  for (std::size_t i = 0; i < n_; ++i) {
    double s = b[perm_[i]];
    for (std::size_t j = 0; j < i; ++j) s -= lu_.at(i, j) * x[j];
    x[i] = s;
  }
  // Back substitution.
  for (std::size_t ii = n_; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    double s = x[i];
    for (std::size_t j = i + 1; j < n_; ++j) s -= lu_.at(i, j) * x[j];
    x[i] = s / lu_.at(i, i);
  }
  return Status::OK();
}

Result<Matrix> LuDecomposition::Inverse() const {
  if (!ok_) return Status::FailedPrecondition("LU: matrix is singular");
  Matrix inv(n_, n_);
  std::vector<double> e(n_, 0.0), col(n_);
  for (std::size_t j = 0; j < n_; ++j) {
    e[j] = 1.0;
    PPANNS_RETURN_IF_ERROR(Solve(e.data(), col.data()));
    for (std::size_t i = 0; i < n_; ++i) inv.at(i, j) = col[i];
    e[j] = 0.0;
  }
  return inv;
}

double LuDecomposition::Determinant() const {
  if (!ok_) return 0.0;
  double det = perm_sign_;
  for (std::size_t i = 0; i < n_; ++i) det *= lu_.at(i, i);
  return det;
}

Status SolveLinearSystem(const Matrix& a, const std::vector<double>& b,
                         std::vector<double>* x) {
  PPANNS_CHECK(a.rows() == b.size());
  LuDecomposition lu(a);
  if (!lu.ok()) return Status::FailedPrecondition("singular system");
  x->resize(a.rows());
  return lu.Solve(b.data(), x->data());
}

InvertibleMatrix InvertibleMatrix::RandomFast(std::size_t n, Rng& rng,
                                              std::size_t reflections) {
  // Draw k unit vectors for the Householder reflections H_i = I - 2 v v^T.
  std::vector<std::vector<double>> vs(reflections, std::vector<double>(n));
  for (auto& v : vs) {
    rng.GaussianVector(0.0, 1.0, v.data(), n);
    double norm2 = 0.0;
    for (double x : v) norm2 += x * x;
    const double inv = 1.0 / std::sqrt(norm2);
    for (double& x : v) x *= inv;
  }
  std::vector<double> d1(n), d2(n);
  for (std::size_t i = 0; i < n; ++i) {
    d1[i] = rng.SignedUniform(0.5, 2.0);
    d2[i] = rng.SignedUniform(0.5, 2.0);
  }

  // Left-applies H = I - 2 v v^T: M <- M - 2 v (v^T M).
  auto apply_reflection = [n](const std::vector<double>& v, Matrix* m) {
    std::vector<double> vtm(n);
    VecMat(v.data(), *m, vtm.data());
    for (std::size_t i = 0; i < n; ++i) {
      const double f = 2.0 * v[i];
      if (f == 0.0) continue;
      double* row = m->row(i);
      for (std::size_t j = 0; j < n; ++j) row[j] -= f * vtm[j];
    }
  };

  InvertibleMatrix out;
  // m = D1 * H_k ... H_1 * D2.
  out.m = Matrix(n, n);
  for (std::size_t i = 0; i < n; ++i) out.m.at(i, i) = d2[i];
  for (const auto& v : vs) apply_reflection(v, &out.m);
  for (std::size_t i = 0; i < n; ++i) {
    double* row = out.m.row(i);
    for (std::size_t j = 0; j < n; ++j) row[j] *= d1[i];
  }
  // m_inv = D2^{-1} * H_1 ... H_k * D1^{-1} (H self-inverse).
  out.m_inv = Matrix(n, n);
  for (std::size_t i = 0; i < n; ++i) out.m_inv.at(i, i) = 1.0 / d1[i];
  for (std::size_t r = reflections; r > 0; --r) {
    apply_reflection(vs[r - 1], &out.m_inv);
  }
  for (std::size_t i = 0; i < n; ++i) {
    double* row = out.m_inv.row(i);
    for (std::size_t j = 0; j < n; ++j) row[j] /= d2[i];
  }
  return out;
}

InvertibleMatrix InvertibleMatrix::Random(std::size_t n, Rng& rng) {
  Matrix q = Matrix::RandomOrthogonal(n, rng);
  std::vector<double> d1(n), d2(n);
  for (std::size_t i = 0; i < n; ++i) {
    d1[i] = rng.SignedUniform(0.5, 2.0);
    d2[i] = rng.SignedUniform(0.5, 2.0);
  }
  // M = D1 Q D2  =>  M^{-1} = D2^{-1} Q^T D1^{-1}. Both built directly so the
  // pair is exact to rounding (no LU inversion error enters the keys).
  InvertibleMatrix out;
  out.m = Matrix(n, n);
  out.m_inv = Matrix(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      out.m.at(i, j) = d1[i] * q.at(i, j) * d2[j];
      out.m_inv.at(i, j) = (1.0 / d2[i]) * q.at(j, i) * (1.0 / d1[j]);
    }
  }
  return out;
}

}  // namespace ppanns
