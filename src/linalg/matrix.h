// Dense double-precision matrix/vector algebra for the cryptographic
// transforms (DCE, ASPE, AME) and the KPA attack solvers.
//
// All cryptographic math runs in double: the DCE comparison telescopes a sum
// of magnitude ~ ||p||^2 * ||M|| down to 2*r_o*r_p*r_q*(dist diff), so sign
// decisions need every bit of double's 1e-16 relative precision.

#ifndef PPANNS_LINALG_MATRIX_H_
#define PPANNS_LINALG_MATRIX_H_

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "linalg/kernels.h"

namespace ppanns {

/// Row-major dense matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& at(std::size_t i, std::size_t j) { return data_[i * cols_ + j]; }
  double at(std::size_t i, std::size_t j) const { return data_[i * cols_ + j]; }

  double* row(std::size_t i) { return data_.data() + i * cols_; }
  const double* row(std::size_t i) const { return data_.data() + i * cols_; }

  std::vector<double>& data() { return data_; }
  const std::vector<double>& data() const { return data_; }

  /// Identity matrix of size n.
  static Matrix Identity(std::size_t n);

  /// Matrix with iid N(0,1) entries.
  static Matrix Gaussian(std::size_t rows, std::size_t cols, Rng& rng);

  /// Random orthogonal matrix via Householder QR of a Gaussian matrix
  /// (Haar-ish distributed; exactly invertible by transpose).
  static Matrix RandomOrthogonal(std::size_t n, Rng& rng);

  Matrix Transpose() const;

  /// this * other. Dimensions must agree (CHECKed).
  Matrix Multiply(const Matrix& other) const;

  /// Returns rows [row_begin, row_end) as a new matrix.
  Matrix SliceRows(std::size_t row_begin, std::size_t row_end) const;

  /// Frobenius norm.
  double FrobeniusNorm() const;

  bool operator==(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_ && data_ == other.data_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// y = A x (A: m x n, x: n, y: m).
void MatVec(const Matrix& a, const double* x, double* y);

/// y = x^T A (A: m x n, x: m, y: n).
void VecMat(const double* x, const Matrix& a, double* y);

// Dot(double) and SquaredL2(double) live in linalg/kernels.h: all distance /
// inner-product code — float filter-stage and double crypto alike — sits
// behind the one runtime-dispatched kernel layer.

/// LU decomposition with partial pivoting. Factorizes a copy of `a`;
/// Solve() then answers A x = b in O(n^2) per right-hand side.
class LuDecomposition {
 public:
  /// Factorizes `a` (must be square). `ok()` is false if singular
  /// (pivot magnitude below `pivot_tol`).
  explicit LuDecomposition(const Matrix& a, double pivot_tol = 1e-12);

  bool ok() const { return ok_; }

  /// Solves A x = b. Requires ok().
  Status Solve(const double* b, double* x) const;

  /// Computes A^{-1}. Requires ok().
  Result<Matrix> Inverse() const;

  /// |det A| is the product of |pivots|; sign tracking included.
  double Determinant() const;

 private:
  std::size_t n_ = 0;
  Matrix lu_;
  std::vector<std::size_t> perm_;
  int perm_sign_ = 1;
  bool ok_ = false;
};

/// Convenience wrapper: solves A x = b once. Returns an error Status for
/// singular systems (used by the KPA attacks, where singularity means the
/// attacker must resample leaked points).
Status SolveLinearSystem(const Matrix& a, const std::vector<double>& b,
                         std::vector<double>* x);

/// A random invertible matrix together with its exact inverse.
///
/// Constructed as M = D1 * Q * D2 with Q orthogonal (Householder QR of a
/// Gaussian matrix) and D1, D2 diagonal with entries of magnitude in
/// [0.5, 2). This keeps the condition number <= 16 so that the DCE / AME
/// sign computations are numerically reliable, while M itself has no
/// exploitable structure (it is dense and non-orthogonal).
struct InvertibleMatrix {
  Matrix m;
  Matrix m_inv;

  static InvertibleMatrix Random(std::size_t n, Rng& rng);

  /// O(k n^2) variant: M = D1 * (H_k ... H_1) * D2 with k Householder
  /// reflections (each orthogonal and self-inverse), so the inverse is
  /// exact and the condition number is still <= cond(D1) * cond(D2) <= 16.
  /// Used where key generation cost dominates and the key's statistical
  /// structure is not security-relevant (the AME cost-model baseline
  /// generates 32 keys of dimension 2d+6; full QR would take minutes at
  /// GIST's d=960).
  static InvertibleMatrix RandomFast(std::size_t n, Rng& rng,
                                     std::size_t reflections = 16);
};

}  // namespace ppanns

#endif  // PPANNS_LINALG_MATRIX_H_
