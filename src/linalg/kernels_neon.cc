// NEON (aarch64) kernel table. Two 128-bit accumulators emulate the canonical
// 8-lane float order (lanes 0-3 in the low register, 4-7 in the high one) and
// two double accumulators emulate the 4-lane double order, so results match
// the scalar reference bit-for-bit. Explicit vmul+vadd (never vfma) plus
// -ffp-contract=off keep both this TU and the scalar TU un-contracted on
// FMA-capable ARM cores.

#include "linalg/kernels.h"

#if defined(__aarch64__) && defined(__ARM_NEON)

#include <arm_neon.h>

namespace ppanns {
namespace kernel_detail {
namespace {

// ((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7)), given lanes 0-3 / 4-7.
inline float HSum8(float32x4_t lo, float32x4_t hi) {
  const float32x4_t s = vaddq_f32(lo, hi);             // {l0+l4,...,l3+l7}
  const float32x2_t t = vadd_f32(vget_low_f32(s), vget_high_f32(s));
  return vget_lane_f32(t, 0) + vget_lane_f32(t, 1);
}

// (l0+l2) + (l1+l3), given lanes 0-1 / 2-3.
inline double HSum4d(float64x2_t lo, float64x2_t hi) {
  const float64x2_t s = vaddq_f64(lo, hi);             // {l0+l2, l1+l3}
  return vgetq_lane_f64(s, 0) + vgetq_lane_f64(s, 1);
}

float NeonL2F32(const float* a, const float* b, std::size_t d) {
  float32x4_t acc_lo = vdupq_n_f32(0.0f);
  float32x4_t acc_hi = vdupq_n_f32(0.0f);
  std::size_t i = 0;
  for (; i + 8 <= d; i += 8) {
    const float32x4_t d_lo = vsubq_f32(vld1q_f32(a + i), vld1q_f32(b + i));
    const float32x4_t d_hi =
        vsubq_f32(vld1q_f32(a + i + 4), vld1q_f32(b + i + 4));
    acc_lo = vaddq_f32(acc_lo, vmulq_f32(d_lo, d_lo));
    acc_hi = vaddq_f32(acc_hi, vmulq_f32(d_hi, d_hi));
  }
  float sum = HSum8(acc_lo, acc_hi);
  for (; i < d; ++i) {
    const float di = a[i] - b[i];
    sum = sum + di * di;
  }
  return sum;
}

float NeonIpF32(const float* a, const float* b, std::size_t d) {
  float32x4_t acc_lo = vdupq_n_f32(0.0f);
  float32x4_t acc_hi = vdupq_n_f32(0.0f);
  std::size_t i = 0;
  for (; i + 8 <= d; i += 8) {
    acc_lo = vaddq_f32(acc_lo, vmulq_f32(vld1q_f32(a + i), vld1q_f32(b + i)));
    acc_hi = vaddq_f32(acc_hi,
                       vmulq_f32(vld1q_f32(a + i + 4), vld1q_f32(b + i + 4)));
  }
  float sum = HSum8(acc_lo, acc_hi);
  for (; i < d; ++i) sum = sum + a[i] * b[i];
  return sum;
}

double NeonL2F64(const double* a, const double* b, std::size_t n) {
  float64x2_t acc_lo = vdupq_n_f64(0.0);
  float64x2_t acc_hi = vdupq_n_f64(0.0);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float64x2_t d_lo = vsubq_f64(vld1q_f64(a + i), vld1q_f64(b + i));
    const float64x2_t d_hi =
        vsubq_f64(vld1q_f64(a + i + 2), vld1q_f64(b + i + 2));
    acc_lo = vaddq_f64(acc_lo, vmulq_f64(d_lo, d_lo));
    acc_hi = vaddq_f64(acc_hi, vmulq_f64(d_hi, d_hi));
  }
  double sum = HSum4d(acc_lo, acc_hi);
  for (; i < n; ++i) {
    const double di = a[i] - b[i];
    sum = sum + di * di;
  }
  return sum;
}

double NeonDotF64(const double* a, const double* b, std::size_t n) {
  float64x2_t acc_lo = vdupq_n_f64(0.0);
  float64x2_t acc_hi = vdupq_n_f64(0.0);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc_lo = vaddq_f64(acc_lo, vmulq_f64(vld1q_f64(a + i), vld1q_f64(b + i)));
    acc_hi = vaddq_f64(acc_hi,
                       vmulq_f64(vld1q_f64(a + i + 2), vld1q_f64(b + i + 2)));
  }
  double sum = HSum4d(acc_lo, acc_hi);
  for (; i < n; ++i) sum = sum + a[i] * b[i];
  return sum;
}

// Widened-accumulator int8 L2: widen 8 codes to int16, subtract, multiply
// into int32 via vmull — exact integer arithmetic in any order.
std::int32_t NeonL2I8(const std::int8_t* a, const std::int8_t* b,
                      std::size_t d) {
  int32x4_t acc = vdupq_n_s32(0);
  std::size_t i = 0;
  for (; i + 8 <= d; i += 8) {
    const int16x8_t va = vmovl_s8(vld1_s8(a + i));
    const int16x8_t vb = vmovl_s8(vld1_s8(b + i));
    const int16x8_t diff = vsubq_s16(va, vb);
    acc = vmlal_s16(acc, vget_low_s16(diff), vget_low_s16(diff));
    acc = vmlal_s16(acc, vget_high_s16(diff), vget_high_s16(diff));
  }
  std::int32_t sum = vaddvq_s32(acc);
  for (; i < d; ++i) {
    const std::int32_t di =
        static_cast<std::int32_t>(a[i]) - static_cast<std::int32_t>(b[i]);
    sum += di * di;
  }
  return sum;
}

inline void PrefetchRowBytes(const void* p, std::size_t bytes) {
  const auto* c = static_cast<const char*>(p);
  const std::size_t span = bytes < 256 ? bytes : 256;
  for (std::size_t off = 0; off < span; off += 64) PrefetchRead(c + off);
}

void NeonL2BatchF32(const float* q, const float* const* rows, std::size_t n,
                    std::size_t d, float* out) {
  for (std::size_t i = 0; i < n; ++i) {
    if (i + 2 < n) PrefetchRowBytes(rows[i + 2], d * sizeof(float));
    out[i] = NeonL2F32(q, rows[i], d);
  }
}

void NeonIpBatchF32(const float* q, const float* const* rows, std::size_t n,
                    std::size_t d, float* out) {
  for (std::size_t i = 0; i < n; ++i) {
    if (i + 2 < n) PrefetchRowBytes(rows[i + 2], d * sizeof(float));
    out[i] = NeonIpF32(q, rows[i], d);
  }
}

void NeonL2BatchI8(const std::int8_t* q, const std::int8_t* const* rows,
                   std::size_t n, std::size_t d, std::int32_t* out) {
  for (std::size_t i = 0; i < n; ++i) {
    if (i + 2 < n) PrefetchRowBytes(rows[i + 2], d);
    out[i] = NeonL2I8(q, rows[i], d);
  }
}

constexpr KernelOps kNeonOps = {
    "neon",         NeonL2F32,      NeonIpF32,    NeonL2F64,
    NeonDotF64,     NeonL2I8,       NeonL2BatchF32,
    NeonIpBatchF32, NeonL2BatchI8,
};

}  // namespace

const KernelOps* NeonTable() { return &kNeonOps; }

}  // namespace kernel_detail
}  // namespace ppanns

#else  // !aarch64

namespace ppanns {
namespace kernel_detail {
const KernelOps* NeonTable() { return nullptr; }
}  // namespace kernel_detail
}  // namespace ppanns

#endif
